package hybridqos

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"hybridqos/internal/sim"
	"hybridqos/internal/span"
	"hybridqos/internal/trace"
)

// spanTraceConfig is the shared workload for the exemplar-resolution tests:
// telemetry snapshots and span sampling on, a lossy downlink so retries and
// failed-service segments appear in the sampled population.
func spanTraceConfig() Config {
	c := PaperConfig()
	c.Horizon = 2000
	c.Replications = 1
	c.Faults = &FaultsConfig{LossProb: 0.1, MaxRetries: 2}
	c.Telemetry = &TelemetryConfig{SnapshotEvery: 250}
	c.Spans = &SpanTraceConfig{Rates: []float64{1, 0.5, 0.25}, Exemplars: 3}
	return c
}

// exemplarIDs collects every exemplar span ID embedded in the trace's
// telemetry snapshots, sorted and deduplicated.
func exemplarIDs(events []trace.Event) []int64 {
	seen := map[int64]bool{}
	for _, s := range trace.Snapshots(events) {
		for _, ex := range s.Exemplars {
			for _, id := range ex.Spans {
				seen[id] = true
			}
		}
	}
	ids := make([]int64, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestExemplarSpanIDsResolve runs the full pipeline at worker counts 1 and
// 4: every exemplar span ID a telemetry snapshot carries must resolve to a
// reconstructed served span of the same class, and the exemplar sets must
// be identical at both worker counts (the reservoir stream is split from
// the run's seed, not from scheduling).
func TestExemplarSpanIDsResolve(t *testing.T) {
	dir := t.TempDir()
	var perWorkers [][]int64
	for _, workers := range []int{1, 4} {
		prev := sim.SetWorkers(workers)
		path := filepath.Join(dir, "run.jsonl")
		_, err := WriteTrace(spanTraceConfig(), path)
		sim.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		events, err := trace.Read(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}

		ids := exemplarIDs(events)
		if len(ids) == 0 {
			t.Fatalf("workers=%d: no exemplar span IDs in any snapshot", workers)
		}
		spans, err := span.Build(events)
		if err != nil {
			t.Fatal(err)
		}
		if err := span.Verify(spans); err != nil {
			t.Fatal(err)
		}
		idx := span.Index(spans)
		classOf := map[int64]int{}
		for _, s := range trace.Snapshots(events) {
			for _, ex := range s.Exemplars {
				for _, id := range ex.Spans {
					classOf[id] = ex.Class
				}
			}
		}
		for _, id := range ids {
			sp := idx[id]
			if sp == nil {
				t.Fatalf("workers=%d: exemplar span %d not in the reconstructed index", workers, id)
			}
			if sp.Outcome != trace.EndServed {
				t.Errorf("workers=%d: exemplar span %d outcome %q, want served (exemplars sample delay observations)",
					workers, id, sp.Outcome)
			}
			if int(sp.Class) != classOf[id] {
				t.Errorf("workers=%d: exemplar span %d class %d, reservoir filed it under class %d",
					workers, id, sp.Class, classOf[id])
			}
		}
		perWorkers = append(perWorkers, ids)
	}
	if !reflect.DeepEqual(perWorkers[0], perWorkers[1]) {
		t.Errorf("exemplar sets diverge across worker counts:\nworkers=1: %v\nworkers=4: %v",
			perWorkers[0], perWorkers[1])
	}
}
