package hybridqos

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hybridqos/internal/trace"
)

// TestTelemetryConfigValidation covers the facade-level cadence checks.
func TestTelemetryConfigValidation(t *testing.T) {
	for _, every := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		c := quickConfig()
		c.Telemetry = &TelemetryConfig{SnapshotEvery: every}
		if _, err := Simulate(c); err == nil {
			t.Errorf("SnapshotEvery=%g accepted", every)
		}
	}
}

// TestSimulateWithTelemetryMatchesWithout pins the facade-level no-op
// guarantee: enabling telemetry must not change any aggregated result, even
// with multiple parallel replications (the collector rides replication 0).
func TestSimulateWithTelemetryMatchesWithout(t *testing.T) {
	base := quickConfig()
	off, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	withTel := base
	withTel.Telemetry = &TelemetryConfig{SnapshotEvery: 200}
	on, err := Simulate(withTel)
	if err != nil {
		t.Fatal(err)
	}
	if off.OverallDelay != on.OverallDelay || off.TotalCost != on.TotalCost {
		t.Fatalf("telemetry changed results: delay %v vs %v, cost %v vs %v",
			off.OverallDelay, on.OverallDelay, off.TotalCost, on.TotalCost)
	}
	for i := range off.PerClass {
		if off.PerClass[i].MeanDelay != on.PerClass[i].MeanDelay {
			t.Errorf("class %d mean delay %v vs %v", i, off.PerClass[i].MeanDelay, on.PerClass[i].MeanDelay)
		}
	}
}

// TestOnSnapshotDeliversProm checks the live-exposition hook: every snapshot
// arrives rendered in the Prometheus text format at the configured cadence.
func TestOnSnapshotDeliversProm(t *testing.T) {
	c := quickConfig()
	c.Replications = 2
	var times []float64
	var last string
	c.Telemetry = &TelemetryConfig{
		SnapshotEvery: 500,
		OnSnapshot: func(simTime float64, prom []byte) {
			times = append(times, simTime)
			last = string(prom)
		},
	}
	if _, err := Simulate(c); err != nil {
		t.Fatal(err)
	}
	want := int(c.Horizon / 500)
	if len(times) != want {
		t.Fatalf("hook fired %d times, want %d (one trajectory only)", len(times), want)
	}
	for i, ts := range times {
		if got := 500 * float64(i+1); ts != got {
			t.Fatalf("snapshot %d at t=%g, want %g", i, ts, got)
		}
	}
	for _, needle := range []string{"hybridqos_sim_time", "hybridqos_arrivals_total", "hybridqos_delay_bucket"} {
		if !strings.Contains(last, needle) {
			t.Errorf("exposition missing %q", needle)
		}
	}
}

// TestWriteTraceEmbedsVerifiableSnapshots runs the full pipeline an operator
// would: write a faulty run's trace with telemetry, read it back, and audit
// the embedded snapshots against the event replay.
func TestWriteTraceEmbedsVerifiableSnapshots(t *testing.T) {
	c := quickConfig()
	c.Replications = 1
	c.Faults = &FaultsConfig{LossProb: 0.2, MaxRetries: 2, ShedHigh: 50, ShedLow: 25}
	c.Telemetry = &TelemetryConfig{SnapshotEvery: 400}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if _, err := WriteTrace(c, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	want := int(c.Horizon / 400)
	if got := len(trace.Snapshots(events)); got != want {
		t.Fatalf("trace embeds %d snapshots, want %d", got, want)
	}
	n, err := trace.VerifySnapshots(events)
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if n != want {
		t.Fatalf("audited %d snapshots, want %d", n, want)
	}
}

// TestExportTimeline drives the public trace-to-artefacts path end to end:
// WriteTrace with telemetry, then ExportTimeline audits the snapshots and
// writes the CSV and both SVGs.
func TestExportTimeline(t *testing.T) {
	c := quickConfig()
	c.Replications = 1
	c.Faults = &FaultsConfig{LossProb: 0.15, MaxRetries: 2}
	c.Telemetry = &TelemetryConfig{SnapshotEvery: 250}
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	if _, err := WriteTrace(c, path); err != nil {
		t.Fatal(err)
	}
	a, err := ExportTimeline(path, filepath.Join(dir, "tl"))
	if err != nil {
		t.Fatal(err)
	}
	want := int(c.Horizon / 250)
	if a.Snapshots != want || a.Ticks != want {
		t.Fatalf("snapshots/ticks = %d/%d, want %d", a.Snapshots, a.Ticks, want)
	}
	if a.Classes == 0 {
		t.Error("no classes in timeline")
	}
	for _, p := range []string{a.CSV, a.DelaySVG, a.QueueSVG} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	if !strings.HasPrefix(filepath.Base(a.CSV), "tl") {
		t.Errorf("unexpected CSV path %s", a.CSV)
	}
}

// TestExportTimelineRequiresSnapshots: a trace without telemetry snapshots is
// rejected with a pointer at the fix.
func TestExportTimelineRequiresSnapshots(t *testing.T) {
	c := quickConfig()
	dir := t.TempDir()
	path := filepath.Join(dir, "plain.jsonl")
	if _, err := WriteTrace(c, path); err != nil {
		t.Fatal(err)
	}
	_, err := ExportTimeline(path, filepath.Join(dir, "tl"))
	if err == nil || !strings.Contains(err.Error(), "no telemetry snapshots") {
		t.Fatalf("err = %v, want missing-snapshot error", err)
	}
}
