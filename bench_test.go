// Benchmarks regenerating every evaluation artefact of the paper (one bench
// per figure — the paper has no numbered tables; Figures 3–7 are its entire
// evaluation) plus the ablation benches DESIGN.md lists. Figure benches
// report the headline domain metric via b.ReportMetric so `go test -bench`
// output carries the reproduced numbers alongside the timing.
//
// Benchmark parameters are deliberately smaller than cmd/figures defaults so
// the suite completes quickly; cmd/figures regenerates the full-fidelity
// series.
package hybridqos

import (
	"testing"

	"hybridqos/internal/analytic"
	"hybridqos/internal/bandwidth"
	"hybridqos/internal/cache"
	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/core"
	"hybridqos/internal/experiments"
	"hybridqos/internal/pullqueue"
	"hybridqos/internal/rng"
	"hybridqos/internal/workload"
)

// benchParams are the reduced-fidelity experiment parameters for benches.
func benchParams() experiments.Params {
	p := experiments.Defaults()
	p.Horizon = 3000
	p.Replications = 1
	p.CutoffStep = 20
	return p
}

// BenchmarkFig3DelayVsCutoffAlpha0 regenerates Figure 3 (per-class delay vs
// cutoff at α=0 for four skew coefficients) and reports Class-A's minimum
// delay across the sweep.
func BenchmarkFig3DelayVsCutoffAlpha0(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig3(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(minY(b, f.Series[0].Y), "classA-min-delay")
	}
}

// BenchmarkFig4DelayVsCutoffAlpha1 regenerates Figure 4 (α=1, stretch-only).
func BenchmarkFig4DelayVsCutoffAlpha1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig4(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(minY(b, f.Series[0].Y), "classA-min-delay")
	}
}

// BenchmarkFig5PrioritizedCost regenerates Figure 5 (per-class prioritised
// cost vs cutoff, α∈{0.25,0.75}, θ=0.6).
func BenchmarkFig5PrioritizedCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig5(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(minY(b, f.Series[0].Y), "classA-min-cost")
	}
}

// BenchmarkFig6OptimalCost regenerates Figure 6 (total optimal prioritised
// cost vs α for three skews) and reports the θ=0.6 cost gap between α=1 and
// α=0 (positive = priority influence pays, the paper's claim).
func BenchmarkFig6OptimalCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig6(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		mid := f.Series[1].Y // θ=0.60
		b.ReportMetric(mid[len(mid)-1]-mid[0], "cost-gap-alpha1-vs-0")
	}
}

// BenchmarkFig7AnalyticVsSim regenerates Figure 7 (analytic vs simulated
// per-class delay, θ=0.6, α=0.75) and reports the worst relative deviation.
func BenchmarkFig7AnalyticVsSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		p.Horizon = 8000 // deviation metric needs statistical depth
		f, err := experiments.Fig7(p)
		if err != nil {
			b.Fatal(err)
		}
		if !f.Claims[0].Pass {
			b.Fatalf("deviation claim failed: %s", f.Claims[0].Detail)
		}
		b.ReportMetric(1, "deviation-claim-pass")
	}
}

// BenchmarkExtBlocking regenerates the bandwidth-blocking extension
// experiment (drop rate vs premium bandwidth share).
func BenchmarkExtBlocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.ExtBlocking(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Series[0].Y[len(f.Series[0].Y)-1], "classA-drop-at-max-share")
	}
}

func minY(b *testing.B, ys []float64) float64 {
	b.Helper()
	if len(ys) == 0 {
		b.Fatal("empty series: experiment produced no data points")
	}
	m := ys[0]
	for _, y := range ys[1:] {
		if y < m {
			m = y
		}
	}
	return m
}

// --- Ablation benches (DESIGN.md) ---

func benchWorkload(n int) []pullqueue.Request {
	r := rng.New(7)
	reqs := make([]pullqueue.Request, n)
	for i := range reqs {
		reqs[i] = pullqueue.Request{
			Item:     r.Intn(60) + 41,
			Class:    clients.Class(r.Intn(3)),
			Priority: float64(3 - r.Intn(3)),
			Arrival:  float64(i) * 0.2,
		}
	}
	return reqs
}

// BenchmarkPullQueueHeap (ABL-PULLQ): indexed-heap pull queue.
func BenchmarkPullQueueHeap(b *testing.B) {
	reqs := benchWorkload(2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := pullqueue.NewHeap(0.5)
		if err != nil {
			b.Fatal(err)
		}
		for _, rq := range reqs {
			q.Add(rq, 2)
		}
		for q.Items() > 0 {
			q.ExtractMax(0)
		}
	}
}

// BenchmarkPullQueueLinear (ABL-PULLQ): linear-scan reference pull queue.
func BenchmarkPullQueueLinear(b *testing.B) {
	reqs := benchWorkload(2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := pullqueue.NewLinear(0.5)
		if err != nil {
			b.Fatal(err)
		}
		for _, rq := range reqs {
			q.Add(rq, 2)
		}
		for q.Items() > 0 {
			q.ExtractMax(0)
		}
	}
}

func benchCoreConfig(b *testing.B) core.Config {
	b.Helper()
	cat, err := catalog.Generate(catalog.PaperConfig(0.6, 42))
	if err != nil {
		b.Fatal(err)
	}
	cl, err := clients.New(clients.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	return core.Config{
		Catalog:        cat,
		Classes:        cl,
		Lambda:         5,
		Cutoff:         40,
		Alpha:          0.5,
		Horizon:        3000,
		WarmupFraction: 0.1,
		Seed:           9,
	}
}

// BenchmarkPullPolicies (ABL-POLICY): full simulations under each registered
// pull policy, reporting each policy's overall delay.
func BenchmarkPullPolicies(b *testing.B) {
	for _, name := range []string{
		"gamma", "stretch", "priority", "fcfs", "edf", "mrf", "rxw", "classic-stretch",
	} {
		b.Run(name, func(b *testing.B) {
			cfg := benchCoreConfig(b)
			cfg.PullPolicyName = name
			for i := 0; i < b.N; i++ {
				m, err := core.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(m.OverallMeanDelay(), "mean-delay")
			}
		})
	}
}

// BenchmarkPushSchedulers (ABL-PUSH): full simulations under each registered
// push scheduler.
func BenchmarkPushSchedulers(b *testing.B) {
	for _, name := range []string{"roundrobin", "broadcast-disk", "square-root", "none"} {
		b.Run(name, func(b *testing.B) {
			cfg := benchCoreConfig(b)
			cfg.PushPolicyName = name
			for i := 0; i < b.N; i++ {
				m, err := core.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(m.OverallMeanDelay(), "mean-delay")
			}
		})
	}
}

// BenchmarkCutoffOptimizers (ABL-CUTOFF): analytic model sweep vs simulated
// sweep for choosing K.
func BenchmarkCutoffOptimizers(b *testing.B) {
	b.Run("analytic", func(b *testing.B) {
		cfg := benchCoreConfig(b)
		model := analytic.Model{
			Catalog: cfg.Catalog, Classes: cfg.Classes,
			LambdaTotal: cfg.Lambda, Alpha: cfg.Alpha, Variant: analytic.Refined,
		}
		for i := 0; i < b.N; i++ {
			best, err := model.OptimalCutoff(10, 90, analytic.ByTotalCost)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(best.K), "optimal-K")
		}
	})
	b.Run("simulated", func(b *testing.B) {
		cfg := benchCoreConfig(b)
		cfg.Horizon = 1500
		for i := 0; i < b.N; i++ {
			best, err := core.OptimizeCutoff(cfg, 10, 90, 20, core.ByTotalCost)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(best.K), "optimal-K")
		}
	})
}

// BenchmarkBandwidthBlocking (ABL-BW): blocking under strict partitioning vs
// borrow mode.
func BenchmarkBandwidthBlocking(b *testing.B) {
	for _, mode := range []struct {
		name   string
		borrow bool
	}{{"strict", false}, {"borrow", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := benchCoreConfig(b)
			cfg.Bandwidth = &bandwidth.Config{
				Total:       8,
				Fractions:   []float64{0.5, 0.3, 0.2},
				DemandMean:  1.5,
				AllowBorrow: mode.borrow,
			}
			for i := 0; i < b.N; i++ {
				m, err := core.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(m.BlockedTransmissions), "blocked")
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (events are
// dominated by arrivals at λ=5 per broadcast unit).
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := benchCoreConfig(b)
	cfg.Horizon = 10000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cfg.Horizon*cfg.Lambda*float64(b.N)/b.Elapsed().Seconds(), "requests/sec")
}

// BenchmarkExtMultiClass regenerates the five-class extension experiment.
func BenchmarkExtMultiClass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.ExtMultiClass(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		// Spread between premium and free tier at α=0.
		b.ReportMetric(f.Series[4].Y[0]-f.Series[0].Y[0], "five-class-spread-alpha0")
	}
}

// BenchmarkExtChannels regenerates the multi-channel split experiment.
func BenchmarkExtChannels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.ExtChannels(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		overall := f.Series[len(f.Series)-1].Y
		b.ReportMetric(minY(b, overall), "best-split-delay")
	}
}

// BenchmarkCachePolicies (ABL-CACHE): full simulations under each
// client-cache replacement policy, reporting the cache hit rate.
func BenchmarkCachePolicies(b *testing.B) {
	for _, pol := range []cache.PolicyKind{cache.LRU, cache.LFU, cache.PIX} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := benchCoreConfig(b)
			cfg.ClientCache = &core.CacheConfig{NumClients: 15, Capacity: 8, Policy: pol}
			for i := 0; i < b.N; i++ {
				s, err := core.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				m := s.Run()
				b.ReportMetric(s.CacheHitRate(), "hit-rate")
				b.ReportMetric(m.OverallMeanDelay(), "mean-delay")
			}
		})
	}
}

// BenchmarkArrivalProcesses: simulator throughput and delay under the three
// workload shapes at equal mean rate.
func BenchmarkArrivalProcesses(b *testing.B) {
	shapes := map[string]func() workload.ArrivalProcess{
		"poisson": func() workload.ArrivalProcess {
			p, _ := workload.NewPoisson(5)
			return p
		},
		"bursty-mmpp": func() workload.ArrivalProcess {
			m, err := workload.Bursty(5, 3, 0.01)
			if err != nil {
				b.Fatal(err)
			}
			return m
		},
		"batch": func() workload.ArrivalProcess {
			bp, err := workload.NewBatchPoisson(5.0/3, 3)
			if err != nil {
				b.Fatal(err)
			}
			return bp
		},
	}
	for name, mk := range shapes {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCoreConfig(b)
				cfg.Arrivals = mk() // stateful: fresh per iteration
				m, err := core.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(m.OverallMeanDelay(), "mean-delay")
			}
		})
	}
}

// BenchmarkExtIndexing regenerates the air-indexing experiment (analytic —
// this measures the sweep itself).
func BenchmarkExtIndexing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.ExtIndexing(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(minY(b, f.Series[0].Y), "best-access-time")
	}
}

// BenchmarkExtLoad regenerates the offered-load robustness experiment.
func BenchmarkExtLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.ExtLoad(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		ys := f.Series[2].Y
		b.ReportMetric(ys[len(ys)-1]/ys[0], "classC-delay-ratio-20x-load")
	}
}
