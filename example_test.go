package hybridqos_test

import (
	"fmt"
	"log"

	"hybridqos"
)

// ExampleSimulate runs the paper's configuration at reduced fidelity and
// prints the class ordering the scheduler guarantees.
func ExampleSimulate() {
	cfg := hybridqos.PaperConfig()
	cfg.Horizon = 5000
	cfg.Replications = 2
	cfg.Alpha = 0.25

	res, err := hybridqos.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ordered := res.PerClass[0].MeanDelay < res.PerClass[1].MeanDelay &&
		res.PerClass[1].MeanDelay < res.PerClass[2].MeanDelay
	fmt.Printf("classes: %d\n", len(res.PerClass))
	fmt.Printf("premium waits least: %v\n", ordered)
	// Output:
	// classes: 3
	// premium waits least: true
}

// ExamplePredict evaluates the analytic model — no simulation time at all.
func ExamplePredict() {
	cfg := hybridqos.PaperConfig()
	p, err := hybridqos.Predict(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cutoff: %d\n", p.Cutoff)
	fmt.Printf("per-class predictions: %d\n", len(p.PerClass))
	fmt.Printf("finite delay: %v\n", p.OverallDelay > 0)
	// Output:
	// cutoff: 40
	// per-class predictions: 3
	// finite delay: true
}

// ExamplePredictOptimalCutoff picks K by model sweep — the paper's periodic
// re-optimisation, done in microseconds.
func ExamplePredictOptimalCutoff() {
	cfg := hybridqos.PaperConfig()
	cfg.Theta = 1.4 // concentrated demand wants a small push set

	best, err := hybridqos.PredictOptimalCutoff(cfg, 1, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("small push set optimal: %v\n", best.Cutoff < 30)
	// Output:
	// small push set optimal: true
}
