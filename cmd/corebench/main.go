// Command corebench measures the simulator hot path and writes the results
// as machine-readable JSON (BENCH_core.json at the repo root is a committed
// baseline). Three families:
//
//   - engine throughput: requests simulated per wall-clock second for one
//     core.Run at the paper's workload, exact and bounded delay histograms;
//   - allocation profile: steady-state heap allocations per simulated
//     request via testing.AllocsPerRun (the quantity the CI gate bounds);
//   - sweep scaling: wall-clock for a full cutoff sweep with 1 worker vs
//     the machine's worker count (the two sweeps are asserted bit-identical
//     before timing is reported);
//   - cluster scaling: wall-clock for a 64-cell mobile federation with 1
//     worker vs the machine's worker count, asserted bit-identical the same
//     way.
//
// Usage:
//
//	corebench [-o BENCH_core.json] [-quick] [-workers N]
//	corebench -verify BENCH_core.json [-max-allocs-per-request N]
//	corebench -verify fresh.json -baseline BENCH_core.json
//
// -verify parses an existing results file and (optionally) enforces an
// allocations-per-request ceiling; it runs no benchmarks, exits non-zero on
// a parse failure or a ceiling breach, and is what CI uses to gate alloc
// regressions against the committed baseline. With -baseline it additionally
// compares a freshly measured results file against the committed one: the
// engine's allocs/request must not grow past -max-allocs-growth and its
// throughput must not fall below -min-throughput-frac of the baseline
// (generous margins — CI machines are slower and noisier than the machine
// that wrote the baseline). The benchmark workload never enables span
// sampling, so this doubles as the spans-off overhead gate: span plumbing
// on the hot path shows up as an alloc or throughput regression here.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/cluster"
	"hybridqos/internal/core"
	"hybridqos/internal/sim"
	"hybridqos/internal/workpool"
)

// Result is one benchmark's measurement.
type Result struct {
	// Name identifies the benchmark (family/variant).
	Name string `json:"name"`
	// Iterations is testing.Benchmark's chosen b.N (1 for one-shot timings).
	Iterations int `json:"iterations"`
	// NsPerOp is nanoseconds per benchmark iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// OpsPerSec is the headline rate: simulated requests per second for the
	// engine family, sweep points per second for the sweep family.
	OpsPerSec float64 `json:"ops_per_sec"`
	// AllocsPerOp is heap allocations per iteration (0 when not measured).
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
	// BytesPerOp is heap bytes allocated per iteration (0 when not measured).
	BytesPerOp int64 `json:"bytes_per_op,omitempty"`
	// AllocsPerRequest is heap allocations per simulated request, measured
	// with testing.AllocsPerRun (only on the allocation-profile results).
	AllocsPerRequest float64 `json:"allocs_per_request,omitempty"`
	// Workers is the worker count used (sweep family only).
	Workers int `json:"workers,omitempty"`
}

// report is the committed JSON document.
type report struct {
	Description string   `json:"description"`
	Results     []Result `json:"results"`
}

func main() {
	var (
		out       = flag.String("o", "BENCH_core.json", "output JSON path (- for stdout)")
		quick     = flag.Bool("quick", false, "reduced horizons for CI smoke runs")
		workers   = flag.Int("workers", 0, "sweep worker override (0 = one per spare CPU)")
		verify    = flag.String("verify", "", "parse an existing results file instead of benchmarking")
		maxAllocs = flag.Float64("max-allocs-per-request", 0, "with -verify: fail if allocs/request exceeds this (0 = no gate)")
		baseline  = flag.String("baseline", "", "with -verify: committed results file to compare against")
		allocGrow = flag.Float64("max-allocs-growth", 1.25, "with -baseline: fail if allocs/request exceeds baseline times this")
		minThru   = flag.Float64("min-throughput-frac", 0.4, "with -baseline: fail if engine throughput falls below this fraction of baseline")
	)
	flag.Parse()

	if *verify != "" {
		verifyFile(*verify, *maxAllocs, *baseline, *allocGrow, *minThru)
		return
	}

	if *workers > 0 {
		sim.SetWorkers(*workers)
	}
	horizon, sweepHorizon := 10000.0, 2000.0
	if *quick {
		horizon, sweepHorizon = 1500.0, 600.0
	}

	var results []Result
	results = append(results,
		engineBench("engine/throughput", horizon, 0),
		engineBench("engine/throughput-bounded-hist", horizon, 512),
		allocBench(horizon),
	)
	seq, par, err := sweepBenches(sweepHorizon)
	if err != nil {
		fatal("%v", err)
	}
	results = append(results, seq, par)
	cseq, cpar, err := clusterBenches(sweepHorizon)
	if err != nil {
		fatal("%v", err)
	}
	results = append(results, cseq, cpar)

	blob, err := json.MarshalIndent(report{
		Description: "simulator hot-path benchmarks; regenerate with `go run ./cmd/corebench`",
		Results:     results,
	}, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal("writing %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d results to %s\n", len(results), *out)
}

// benchConfig is the paper's workload at the benchmark seed — the same shape
// BenchmarkSimulatorThroughput uses, so the committed numbers line up with
// `go test -bench`.
func benchConfig(horizon float64, histBound int) core.Config {
	cat, err := catalog.Generate(catalog.PaperConfig(0.6, 42))
	if err != nil {
		fatal("catalog: %v", err)
	}
	cl, err := clients.New(clients.PaperConfig())
	if err != nil {
		fatal("clients: %v", err)
	}
	return core.Config{
		Catalog:        cat,
		Classes:        cl,
		Lambda:         5,
		Cutoff:         40,
		Alpha:          0.5,
		Horizon:        horizon,
		WarmupFraction: 0.1,
		Seed:           9,
		DelayHistBound: histBound,
	}
}

// engineBench measures one core.Run's throughput and allocation counters.
func engineBench(name string, horizon float64, histBound int) Result {
	cfg := benchConfig(horizon, histBound)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	ns := float64(res.NsPerOp())
	return Result{
		Name:        name,
		Iterations:  res.N,
		NsPerOp:     ns,
		OpsPerSec:   cfg.Horizon * cfg.Lambda / (ns / 1e9),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
}

// allocBench reports steady-state heap allocations per simulated request —
// the ratio the CI regression gate bounds.
func allocBench(horizon float64) Result {
	cfg := benchConfig(horizon, 0)
	requests := cfg.Horizon * cfg.Lambda
	perRun := testing.AllocsPerRun(3, func() {
		if _, err := core.Run(cfg); err != nil {
			fatal("alloc bench: %v", err)
		}
	})
	return Result{
		Name:             "engine/allocs",
		Iterations:       3,
		AllocsPerRequest: perRun / requests,
	}
}

// sweepBenches times a full cutoff sweep sequentially and with the worker
// pool, asserting the two produce bit-identical summaries before reporting.
func sweepBenches(horizon float64) (seq, par Result, err error) {
	cfg := benchConfig(horizon, 0)
	var cutoffs []int
	for k := 10; k <= 90; k += 10 {
		cutoffs = append(cutoffs, k)
	}
	const reps = 2

	run := func(workers int) ([]sim.SweepPoint, Result, error) {
		prev := sim.SetWorkers(workers)
		defer sim.SetWorkers(prev)
		start := time.Now()
		pts, err := sim.SweepCutoffs(cfg, cutoffs, reps)
		elapsed := time.Since(start)
		if err != nil {
			return nil, Result{}, err
		}
		ns := float64(elapsed.Nanoseconds())
		return pts, Result{
			Iterations: 1,
			NsPerOp:    ns,
			OpsPerSec:  float64(len(cutoffs)) / (ns / 1e9),
			Workers:    workers,
		}, nil
	}

	seqPts, seq, err := run(1)
	if err != nil {
		return seq, par, fmt.Errorf("sequential sweep: %w", err)
	}
	seq.Name = "sweep/cutoff/workers=1"
	parWorkers := sim.Workers()
	parPts, par, err := run(parWorkers)
	if err != nil {
		return seq, par, fmt.Errorf("parallel sweep: %w", err)
	}
	par.Name = fmt.Sprintf("sweep/cutoff/workers=%d", parWorkers)

	for i := range seqPts {
		a, b := seqPts[i].Summary, parPts[i].Summary
		if a.OverallDelay != b.OverallDelay || a.TotalCost != b.TotalCost {
			return seq, par, fmt.Errorf("sweep diverged at K=%d: workers=1 delay %v vs workers=%d delay %v",
				seqPts[i].K, a.OverallDelay, parWorkers, b.OverallDelay)
		}
	}
	return seq, par, nil
}

// clusterBenches times a 64-cell federation with mobility sequentially and
// with the worker pool, asserting the two runs are bit-identical before
// reporting (the cluster's barrier design makes worker count invisible to
// the results; this is the committed proof).
func clusterBenches(horizon float64) (seq, par Result, err error) {
	cfg := cluster.Config{
		Cells:          64,
		Base:           benchConfig(horizon, 0),
		CatalogOverlap: 0.8,
		Mobility:       cluster.Mobility{Rate: 0.02, AttachDelay: 2},
		Routing:        "least-loaded",
		HandoffEvery:   horizon / 20,
	}

	run := func(workers int) (*cluster.Result, Result, error) {
		prev := workpool.SetWorkers(workers)
		defer workpool.SetWorkers(prev)
		cl, err := cluster.New(cfg)
		if err != nil {
			return nil, Result{}, err
		}
		start := time.Now()
		res, err := cl.Run()
		elapsed := time.Since(start)
		if err != nil {
			return nil, Result{}, err
		}
		ns := float64(elapsed.Nanoseconds())
		return res, Result{
			Iterations: 1,
			NsPerOp:    ns,
			OpsPerSec:  float64(cfg.Cells) / (ns / 1e9),
			Workers:    workers,
		}, nil
	}

	seqRes, seq, err := run(1)
	if err != nil {
		return seq, par, fmt.Errorf("sequential cluster sweep: %w", err)
	}
	seq.Name = "cluster/sweep/workers=1"
	parWorkers := workpool.Workers()
	parRes, par, err := run(parWorkers)
	if err != nil {
		return seq, par, fmt.Errorf("parallel cluster sweep: %w", err)
	}
	par.Name = fmt.Sprintf("cluster/sweep/workers=%d", parWorkers)

	if !reflect.DeepEqual(seqRes, parRes) {
		return seq, par, fmt.Errorf("cluster sweep diverged between workers=1 and workers=%d", parWorkers)
	}
	return seq, par, nil
}

// verifyFile parses a results file, optionally enforces the
// allocations-per-request ceiling, and optionally compares allocs/request
// and engine throughput against a committed baseline file.
func verifyFile(path string, maxAllocs float64, baselinePath string, allocGrow, minThru float64) {
	rep := loadReport(path)
	allocs, thru := keyNumbers(path, rep)
	if maxAllocs > 0 && allocs > maxAllocs {
		fatal("%s: %.2f allocs/request exceeds ceiling %.2f", path, allocs, maxAllocs)
	}
	if baselinePath != "" {
		base := loadReport(baselinePath)
		baseAllocs, baseThru := keyNumbers(baselinePath, base)
		// The growth gate has an absolute floor: with the arena-based hot
		// path the steady-state ratio is a few hundredths of an alloc per
		// request, so at quick horizons one-time setup (arena growth, bucket
		// arrays) dominates and a pure ratio test is noise. Below the floor
		// the absolute -max-allocs-per-request ceiling is the binding gate.
		const growthFloor = 0.25
		if allocGrow > 0 && allocs > baseAllocs*allocGrow && allocs > growthFloor {
			fatal("%s: %.2f allocs/request exceeds baseline %.2f by more than %gx",
				path, allocs, baseAllocs, allocGrow)
		}
		if minThru > 0 && thru < baseThru*minThru {
			fatal("%s: throughput %.0f req/s below %.0f%% of baseline %.0f req/s",
				path, thru, minThru*100, baseThru)
		}
		fmt.Fprintf(os.Stderr, "%s vs %s: allocs %.2f/%.2f, throughput %.0f/%.0f req/s ok\n",
			path, baselinePath, allocs, baseAllocs, thru, baseThru)
	}
	fmt.Fprintf(os.Stderr, "%s: %d results, %.2f allocs/request ok\n", path, len(rep.Results), allocs)
}

// loadReport reads and parses one results file.
func loadReport(path string) report {
	blob, err := os.ReadFile(path)
	if err != nil {
		fatal("%v", err)
	}
	var rep report
	if err := json.Unmarshal(blob, &rep); err != nil {
		fatal("parsing %s: %v", path, err)
	}
	if len(rep.Results) == 0 {
		fatal("%s: no results", path)
	}
	return rep
}

// keyNumbers extracts the two gated quantities from a report: steady-state
// allocations per request and the headline engine throughput.
func keyNumbers(path string, rep report) (allocs, thru float64) {
	allocsFound, thruFound := false, false
	for _, r := range rep.Results {
		switch r.Name {
		case "engine/allocs":
			allocs, allocsFound = r.AllocsPerRequest, true
		case "engine/throughput":
			thru, thruFound = r.OpsPerSec, true
		}
	}
	if !allocsFound {
		fatal("%s: missing engine/allocs result", path)
	}
	if !thruFound {
		fatal("%s: missing engine/throughput result", path)
	}
	return allocs, thru
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "corebench: "+format+"\n", args...)
	os.Exit(1)
}
