// Command qosd serves the hybrid push/pull scheduler in real time: the same
// deterministic engine the simulator runs, mounted on a wall clock behind
// class-aware admission control and an HTTP API.
//
// Usage:
//
//	qosd -config qosd.json [-addr 127.0.0.1:8080] [-debug-addr 127.0.0.1:6060]
//
// Endpoints: POST /request (X-API-Key), GET /metrics, /debug/spans,
// /healthz, /readyz. -debug-addr serves /debug/pprof/ on a separate
// listener, off by default.
// SIGTERM or SIGINT triggers a graceful drain: admission stops immediately,
// every in-flight request is answered by its deadline, then the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hybridqos/internal/clock"
	"hybridqos/internal/httpserve"
	"hybridqos/internal/qosd"
)

func main() {
	var (
		confPath  = flag.String("config", "", "JSON daemon configuration (required)")
		addr      = flag.String("addr", "127.0.0.1:8080", "HTTP listen address (port 0 picks a free port)")
		debugAddr = flag.String("debug-addr", "", "optional listen address for /debug/pprof/ profiling endpoints")
	)
	flag.Parse()
	if *confPath == "" {
		fatal("-config is required")
	}
	data, err := os.ReadFile(*confPath)
	if err != nil {
		fatal("%v", err)
	}
	cfg, err := qosd.ParseConfig(data)
	if err != nil {
		fatal("%v", err)
	}

	wall, err := clock.NewWall(time.Duration(cfg.UnitMillis * float64(time.Millisecond)))
	if err != nil {
		fatal("%v", err)
	}
	d, err := qosd.New(cfg, wall, wall.Submit)
	if err != nil {
		fatal("%v", err)
	}

	go wall.Run()
	d.Start()

	srv, err := httpserve.Start(*addr, d.Handler())
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "qosd: serving on http://%s (unit = %gms)\n", srv.Addr, cfg.UnitMillis)
	if *debugAddr != "" {
		dbg, err := httpserve.StartDebug(*debugAddr)
		if err != nil {
			fatal("%v", err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "qosd: profiling on http://%s/debug/pprof/\n", dbg.Addr)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "qosd: %v: draining (deadlines bound the wait)\n", sig)
	case err := <-srv.Err:
		// The accept loop died under us; drain what was admitted and exit
		// nonzero below.
		fmt.Fprintf(os.Stderr, "qosd: listener failed: %v\n", err)
		drainAndStop(d, wall, srv, true)
		os.Exit(1)
	}
	drainAndStop(d, wall, srv, false)
	fmt.Fprintln(os.Stderr, "qosd: drained, exiting")
}

// drainAndStop runs the graceful shutdown sequence: stop admitting, resolve
// every in-flight request to its deadline, close the HTTP server (waiting
// for handlers to flush their answers), then stop the clock loop.
func drainAndStop(d *qosd.Daemon, wall *clock.Wall, srv *httpserve.Server, listenerDead bool) {
	drained := make(chan struct{})
	d.Drain(func() { close(drained) })
	<-drained
	if !listenerDead {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "qosd: shutdown: %v\n", err)
		}
	}
	wall.Stop()
	<-wall.Done()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qosd: "+format+"\n", args...)
	os.Exit(1)
}
