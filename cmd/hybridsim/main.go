// Command hybridsim runs one configuration of the hybrid scheduler and
// prints per-class access times, prioritised costs and blocking statistics.
//
// Usage:
//
//	hybridsim [flags]
//
// Examples:
//
//	hybridsim -theta 0.6 -alpha 0.25 -cutoff 40
//	hybridsim -bandwidth 8 -fractions 0.5,0.3,0.2 -demand 1.5
//	hybridsim -policy rxw -push square-root
//	hybridsim -policy edf -ttl 300 -push none
//	hybridsim -push broadcast-disk -disks 4
//	hybridsim -loss 0.2 -gilbert 5 -retries 3 -backoff 1 -shed-high 260 -shed-low 200
//	hybridsim -telemetry-addr 127.0.0.1:9090 -horizon 200000 -reps 1
//	hybridsim -telemetry-every 100 -trace run.jsonl   # snapshots embedded in the trace
//	hybridsim -spans 1,0.5,0.1 -perfetto spans.json   # per-request span tracing
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"hybridqos"
	"hybridqos/internal/httpserve"
	"hybridqos/internal/report"
)

// policyHelp derives the flag help from the live registry so externally
// registered policies and future built-ins show up without editing this file.
func policyHelp(kind string, names []string) string {
	return kind + ": " + strings.Join(names, "|")
}

func main() {
	var (
		d         = flag.Int("items", 100, "catalog size D")
		theta     = flag.Float64("theta", 0.6, "Zipf access skew θ")
		lambda    = flag.Float64("lambda", 5, "aggregate request rate λ'")
		cutoff    = flag.Int("cutoff", 40, "push/pull cutoff K")
		alpha     = flag.Float64("alpha", 0.5, "importance-factor mixing α")
		weights   = flag.String("weights", "3,2,1", "class priority weights, premium first")
		popSkew   = flag.Float64("popskew", 1.0, "client population Zipf skew")
		policy    = flag.String("policy", "", policyHelp("pull policy", hybridqos.PullPolicies()))
		push      = flag.String("push", "", policyHelp("push scheduler", hybridqos.PushSchedulers()))
		disks     = flag.Int("disks", 0, "speed tiers for -push broadcast-disk (0 = 3)")
		ttl       = flag.Float64("ttl", 0, "request deadline for -policy edf and expiry stats (0 disables)")
		horizon   = flag.Float64("horizon", 20000, "simulated duration (broadcast units)")
		warmup    = flag.Float64("warmup", 0.1, "warmup fraction discarded from stats")
		reps      = flag.Int("reps", 3, "independent replications")
		seed      = flag.Uint64("seed", 1, "base random seed")
		bw        = flag.Float64("bandwidth", 0, "total bandwidth units (0 disables blocking)")
		fracs     = flag.String("fractions", "", "per-class bandwidth fractions, e.g. 0.5,0.3,0.2")
		demand    = flag.Float64("demand", 1.5, "Poisson bandwidth demand mean per length unit")
		borrow    = flag.Bool("borrow", false, "allow borrowing from lower-priority pools")
		loss      = flag.Float64("loss", 0, "mean downlink corruption probability (0 disables)")
		gilbert   = flag.Float64("gilbert", 0, "mean loss-burst length ≥1 (Gilbert–Elliott; 0 = i.i.d. loss)")
		retries   = flag.Int("retries", 0, "client re-requests allowed after a corrupted pull delivery")
		backoff   = flag.Float64("backoff", 1, "base retry backoff (broadcast units, doubling per attempt)")
		jitter    = flag.Float64("jitter", 0, "retry backoff jitter in [0,1]")
		shedHigh  = flag.Int("shed-high", 0, "pending-load high-water mark for class shedding (0 disables)")
		shedLow   = flag.Int("shed-low", 0, "pending-load low-water mark restoring admission")
		cells     = flag.Int("cells", 0, "federate into this many broadcast cells (0 = single-cell mode)")
		mobility  = flag.Float64("mobility", 0, "client roam intensity per pending request per broadcast unit")
		routing   = flag.String("routing", "", policyHelp("cross-cell routing", hybridqos.RoutingPolicies()))
		overlap   = flag.Float64("overlap", 1, "fraction of catalog ranks replicated in every cell")
		handoffEv = flag.Float64("handoff-every", 0, "epoch length between cross-cell barriers (0 = horizon/100 when -cells > 1)")
		attach    = flag.Float64("attach-delay", 1, "inter-cell transit time (broadcast units)")
		hotCell   = flag.Int("hot-cell", 0, "index of the hot cell for -hot-factor")
		hotFactor = flag.Float64("hot-factor", 0, "request-rate multiplier for -hot-cell (0 disables)")
		telAddr   = flag.String("telemetry-addr", "", "serve live Prometheus /metrics on this address during the run (port 0 picks a free port)")
		telEvery  = flag.Float64("telemetry-every", 0, "telemetry snapshot cadence in broadcast units (0 with -telemetry-addr defaults to horizon/100)")
		predict   = flag.Bool("predict", false, "also print the analytic model's prediction")
		traceOut  = flag.String("trace", "", "write a JSONL event trace of one run to this file")
		confIn    = flag.String("config", "", "load configuration from a JSON file (flags are ignored)")
		confOut   = flag.String("saveconfig", "", "write the effective configuration to a JSON file")
		workers   = flag.Int("workers", 0, "replication worker count (0 = one per spare CPU)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile after the simulation to this file")
		spansIn   = flag.String("spans", "", "per-class span sampling rates (e.g. 1 or 1,0.5,0.1); enables span tracing")
		perfetto  = flag.String("perfetto", "", "write sampled spans as Perfetto/Chrome trace-event JSON (needs -spans)")
		otlp      = flag.String("otlp", "", "write sampled spans as compact OTLP-style JSON (needs -spans)")
		debugAddr = flag.String("debug-addr", "", "serve /debug/pprof/ profiling endpoints on this address during the run")
	)
	flag.Parse()

	w, err := parseFloats(*weights)
	if err != nil {
		fatal("parsing -weights: %v", err)
	}
	cfg := hybridqos.Config{
		NumItems:       *d,
		Theta:          *theta,
		Lambda:         *lambda,
		Cutoff:         *cutoff,
		Alpha:          *alpha,
		ClassWeights:   w,
		PopulationSkew: *popSkew,
		PullPolicy:     *policy,
		PushScheduler:  *push,
		PushDisks:      *disks,
		RequestTTL:     *ttl,
		Horizon:        *horizon,
		WarmupFraction: *warmup,
		Replications:   *reps,
		Seed:           *seed,
	}
	if *bw > 0 {
		fr, err := parseFloats(*fracs)
		if err != nil {
			fatal("parsing -fractions: %v", err)
		}
		cfg.Bandwidth = &hybridqos.BandwidthConfig{
			Total:       *bw,
			Fractions:   fr,
			DemandMean:  *demand,
			AllowBorrow: *borrow,
		}
	}

	if *loss > 0 || *gilbert > 0 || *retries > 0 || *shedHigh > 0 {
		cfg.Faults = &hybridqos.FaultsConfig{
			LossProb:     *loss,
			MeanBurst:    *gilbert,
			MaxRetries:   *retries,
			RetryBackoff: *backoff,
			RetryJitter:  *jitter,
			ShedHigh:     *shedHigh,
			ShedLow:      *shedLow,
		}
	}

	if *confIn != "" {
		loaded, err := hybridqos.LoadConfig(*confIn)
		if err != nil {
			fatal("loading -config: %v", err)
		}
		cfg = loaded
	}
	// Telemetry applies on top of a loaded -config too (so the flags stay
	// usable with canned configurations) and before -saveconfig (so the
	// snapshot cadence persists; the OnSnapshot hook never does).
	if !(*telEvery >= 0) { // negative or NaN
		fatal("telemetry: snapshot cadence %g, want positive", *telEvery)
	}
	if *telAddr != "" || *telEvery > 0 {
		every := *telEvery
		if every <= 0 {
			every = cfg.Horizon / 100
		}
		tc := &hybridqos.TelemetryConfig{SnapshotEvery: every}
		if *telAddr != "" {
			srv, stop, err := serveMetrics(*telAddr)
			if err != nil {
				fatal("telemetry: %v", err)
			}
			defer stop()
			tc.OnSnapshot = srv.update
		}
		cfg.Telemetry = tc
	}
	// Cluster mode applies on top of a loaded -config too, and before
	// -saveconfig so the federation persists in canned configurations.
	if *cells > 0 {
		every := *handoffEv
		if every <= 0 {
			every = cfg.Horizon / 100
		}
		cfg.Cluster = &hybridqos.ClusterOptions{
			Cells:          *cells,
			CatalogOverlap: *overlap,
			MobilityRate:   *mobility,
			AttachDelay:    *attach,
			Routing:        *routing,
			HandoffEvery:   every,
			HotCell:        *hotCell,
			HotFactor:      *hotFactor,
		}
	}
	if *confOut != "" {
		if err := hybridqos.SaveConfig(cfg, *confOut); err != nil {
			fatal("writing -saveconfig: %v", err)
		}
	}

	// Span tracing applies on top of a loaded -config too, like telemetry.
	if *spansIn != "" {
		rates, err := parseFloats(*spansIn)
		if err != nil {
			fatal("parsing -spans: %v", err)
		}
		cfg.Spans = &hybridqos.SpanTraceConfig{Rates: rates}
	}
	if (*perfetto != "" || *otlp != "") && cfg.Spans == nil {
		fatal("-perfetto and -otlp need span tracing (-spans)")
	}

	if *debugAddr != "" {
		dbg, err := httpserve.StartDebug(*debugAddr)
		if err != nil {
			fatal("debug: %v", err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "serving profiling on http://%s/debug/pprof/\n", dbg.Addr)
	}

	if *workers > 0 {
		hybridqos.SetWorkers(*workers)
	}
	if cfg.Cluster != nil {
		if *perfetto != "" || *otlp != "" {
			fatal("span export (-perfetto/-otlp) is single-cell; use -trace and traceinfo -spans for cluster runs")
		}
		stopCPU := startCPUProfile(*cpuProf)
		cres, err := hybridqos.SimulateCluster(cfg)
		stopCPU()
		if err != nil {
			fatal("simulate: %v", err)
		}
		writeMemProfile(*memProf)
		if *traceOut != "" {
			n, err := hybridqos.WriteClusterTrace(cfg, *traceOut)
			if err != nil {
				fatal("trace: %v", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", n, *traceOut)
		}
		printClusterResult(cfg, cres)
		return
	}
	stopCPU := startCPUProfile(*cpuProf)
	res, err := hybridqos.Simulate(cfg)
	stopCPU()
	if err != nil {
		fatal("simulate: %v", err)
	}
	writeMemProfile(*memProf)

	if *traceOut != "" {
		n, err := hybridqos.WriteTrace(cfg, *traceOut)
		if err != nil {
			fatal("trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", n, *traceOut)
	}

	if *perfetto != "" || *otlp != "" {
		sums, err := hybridqos.WriteSpans(cfg, *perfetto, *otlp)
		if err != nil {
			fatal("spans: %v", err)
		}
		for _, path := range []string{*perfetto, *otlp} {
			if path != "" {
				fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", len(sums), path)
			}
		}
	}

	fmt.Printf("hybridqos %s — D=%d θ=%.2f λ'=%.1f K=%d α=%.2f horizon=%.0f reps=%d\n\n",
		hybridqos.Version, cfg.NumItems, cfg.Theta, cfg.Lambda, cfg.Cutoff, cfg.Alpha,
		cfg.Horizon, cfg.Replications)

	tbl := report.NewTable("Per-class results",
		"class", "weight", "mean delay", "±95% CI", "p95", "cost", "drop rate",
		"served", "dropped", "expired", "cache hits", "uplink lost",
		"retries", "failed", "shed", "failure rate")
	for _, c := range res.PerClass {
		tbl.AddRow(c.Class,
			report.FormatFloat(c.Weight, "%.0f"),
			report.FormatFloat(c.MeanDelay, "%.2f"),
			report.FormatFloat(c.DelayCI95, "%.2f"),
			report.FormatFloat(c.P95Delay, "%.2f"),
			report.FormatFloat(c.Cost, "%.2f"),
			report.FormatFloat(c.DropRate, "%.4f"),
			strconv.FormatInt(c.Served, 10),
			strconv.FormatInt(c.Dropped, 10),
			strconv.FormatInt(c.Expired, 10),
			strconv.FormatInt(c.CacheHits, 10),
			strconv.FormatInt(c.UplinkLost, 10),
			strconv.FormatInt(c.Retries, 10),
			strconv.FormatInt(c.Failed, 10),
			strconv.FormatInt(c.Shed, 10),
			report.FormatFloat(c.FailureRate, "%.4f"))
	}
	fmt.Println(tbl.String())

	fmt.Printf("overall delay: %.2f ± %.2f broadcast units\n", res.OverallDelay, res.OverallDelayCI95)
	fmt.Printf("total prioritised cost: %.2f\n", res.TotalCost)
	fmt.Printf("push broadcasts: %d, pull transmissions: %d, blocked: %d\n",
		res.PushBroadcasts, res.PullTransmissions, res.BlockedTransmissions)
	if cfg.Faults != nil {
		fmt.Printf("corrupted: %d push, %d pull (goodput %d of %d transmissions)\n",
			res.CorruptedPushes, res.CorruptedPulls,
			res.PushBroadcasts+res.PullTransmissions-res.CorruptedPushes-res.CorruptedPulls,
			res.PushBroadcasts+res.PullTransmissions)
	}
	fmt.Printf("mean distinct items queued: %.2f\n", res.MeanQueueItems)

	if *predict {
		p, err := hybridqos.Predict(cfg)
		if err != nil {
			fatal("predict: %v", err)
		}
		fmt.Printf("\nAnalytic prediction (refined model): overall %.2f, cost %.2f\n",
			p.OverallDelay, p.TotalCost)
		for _, c := range p.PerClass {
			fmt.Printf("  %s: delay %.2f, cost %.2f\n", c.Class, c.Delay, c.Cost)
		}
		dev, err := hybridqos.DeviationFromPrediction(res, p)
		if err == nil {
			fmt.Printf("worst per-class deviation from simulation: %.1f%%\n", dev*100)
		}
	}
}

// printClusterResult renders a cluster run: pooled per-class QoS, then the
// per-cell breakdown with the roaming traffic.
func printClusterResult(cfg hybridqos.Config, res *hybridqos.ClusterResult) {
	o := cfg.Cluster
	fmt.Printf("hybridqos %s — cluster of %d cells, D=%d (%d shared), θ=%.2f λ'=%.1f K=%d α=%.2f\n",
		hybridqos.Version, res.Cells, cfg.NumItems, res.SharedRanks, cfg.Theta, cfg.Lambda, cfg.Cutoff, cfg.Alpha)
	fmt.Printf("mobility rate %.3g, attach delay %.3g, routing %q, barrier every %.4g units\n\n",
		o.MobilityRate, o.AttachDelay, o.Routing, o.HandoffEvery)

	tbl := report.NewTable("Per-class results (pooled across cells)",
		"class", "weight", "mean delay", "p95", "cost", "served", "dropped",
		"expired", "shed")
	for _, c := range res.PerClass {
		tbl.AddRow(c.Class,
			report.FormatFloat(c.Weight, "%.0f"),
			report.FormatFloat(c.MeanDelay, "%.2f"),
			report.FormatFloat(c.P95Delay, "%.2f"),
			report.FormatFloat(c.Cost, "%.2f"),
			strconv.FormatInt(c.Served, 10),
			strconv.FormatInt(c.Dropped, 10),
			strconv.FormatInt(c.Expired, 10),
			strconv.FormatInt(c.Shed, 10))
	}
	fmt.Println(tbl.String())

	cells := report.NewTable("Per-cell breakdown",
		"cell", "overall delay", "served", "handoffs in", "handoffs out",
		"refused", "final load", "saturated at")
	for _, pc := range res.PerCell {
		sat := "-"
		if pc.Saturated {
			sat = fmt.Sprintf("%.0f", pc.SaturatedAt)
		}
		cells.AddRow(strconv.Itoa(pc.Cell),
			report.FormatFloat(pc.OverallDelay, "%.2f"),
			strconv.FormatInt(pc.Served, 10),
			strconv.FormatInt(pc.HandoffsIn, 10),
			strconv.FormatInt(pc.HandoffsOut, 10),
			strconv.FormatInt(pc.HandoffRefusals, 10),
			strconv.Itoa(pc.FinalLoad),
			sat)
	}
	fmt.Println(cells.String())

	fmt.Printf("overall delay: %.2f broadcast units, total prioritised cost: %.2f\n",
		res.OverallDelay, res.TotalCost)
	fmt.Printf("handoffs accepted: %d, refused: %d, saturated cells: %d of %d\n",
		res.Handoffs, res.HandoffRefusals, res.SaturatedCells, res.Cells)
}

// metricsServer holds the latest telemetry snapshot rendered in Prometheus
// text format and serves it over HTTP. All wall-clock and network machinery
// lives here in the command layer; the simulation behind it stays
// deterministic — the hook only hands over pre-rendered bytes.
type metricsServer struct {
	mu   sync.Mutex
	body []byte
}

// update is the TelemetryConfig.OnSnapshot hook: it replaces the served
// exposition with the latest snapshot's.
func (m *metricsServer) update(_ float64, prom []byte) {
	m.mu.Lock()
	m.body = append(m.body[:0], prom...)
	m.mu.Unlock()
}

func (m *metricsServer) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	m.mu.Lock()
	body := append([]byte(nil), m.body...)
	m.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if len(body) == 0 {
		fmt.Fprintln(w, "# waiting for first snapshot")
		return
	}
	w.Write(body)
}

// serveMetrics binds addr and serves /metrics in the background on a
// managed server (the same internal/httpserve lifecycle cmd/qosd uses). The
// resolved address is announced on stderr so scripts can scrape a port-0
// listener. The returned stop function shuts the listener down cleanly and
// reports any accept-loop error that would otherwise vanish.
func serveMetrics(addr string) (*metricsServer, func(), error) {
	srv := &metricsServer{}
	mux := http.NewServeMux()
	mux.Handle("/metrics", srv)
	hs, err := httpserve.Start(addr, mux)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "serving /metrics on http://%s/metrics\n", hs.Addr)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "hybridsim: metrics listener: %v\n", err)
		}
	}
	return srv, stop, nil
}

func parseFloats(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty list")
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// startCPUProfile begins CPU profiling to path ("" disables) and returns the
// stop function. Called explicitly rather than deferred because fatal exits
// with os.Exit, which would skip a deferred stop.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fatal("cpuprofile: %v", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fatal("cpuprofile: %v", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// writeMemProfile writes a post-GC heap profile to path ("" disables).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal("memprofile: %v", err)
	}
	defer f.Close()
	runtime.GC() // materialise final heap state
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal("memprofile: %v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hybridsim: "+format+"\n", args...)
	os.Exit(1)
}
