// Command figures regenerates the paper's evaluation figures (3–7) and the
// extension experiments as text tables and optional CSV files, and checks
// each figure's qualitative claims.
//
// Usage:
//
//	figures                    # all figures, table output
//	figures -fig 7             # one figure
//	figures -csv out/          # also write CSV files
//	figures -horizon 40000 -reps 5   # higher fidelity
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"hybridqos/internal/experiments"
	"hybridqos/internal/sim"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 3|4|5|6|7|blocking|multiclass|channels|indexing|load|faults|policy|cluster|all")
		csvDir  = flag.String("csv", "", "directory to write per-figure CSV files (optional)")
		svgDir  = flag.String("svg", "", "directory to write per-figure SVG charts (optional)")
		horizon = flag.Float64("horizon", 20000, "simulated duration per replication")
		reps    = flag.Int("reps", 3, "replications per configuration")
		step    = flag.Int("step", 10, "cutoff sweep step")
		seed    = flag.Uint64("seed", 1, "base seed")
		workers = flag.Int("workers", 0, "sweep worker count (0 = one per spare CPU)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the generation to this file")
		memProf = flag.String("memprofile", "", "write a heap profile after generation to this file")
	)
	flag.Parse()

	if *workers > 0 {
		sim.SetWorkers(*workers)
	}
	stopCPU := startCPUProfile(*cpuProf)

	p := experiments.Defaults()
	p.Horizon = *horizon
	p.Replications = *reps
	p.CutoffStep = *step
	p.Seed = *seed

	gens := map[string]func(experiments.Params) (*experiments.Figure, error){
		"3":          experiments.Fig3,
		"4":          experiments.Fig4,
		"5":          experiments.Fig5,
		"6":          experiments.Fig6,
		"7":          experiments.Fig7,
		"blocking":   experiments.ExtBlocking,
		"multiclass": experiments.ExtMultiClass,
		"channels":   experiments.ExtChannels,
		"indexing":   experiments.ExtIndexing,
		"load":       experiments.ExtLoad,
		"faults":     experiments.ExtFaults,
		"policy":     experiments.ExtPolicy,
		"cluster":    experiments.ExtCluster,
	}
	order := []string{"3", "4", "5", "6", "7", "blocking", "multiclass", "channels", "indexing", "load", "faults", "policy", "cluster"}

	var selected []string
	if *fig == "all" {
		selected = order
	} else {
		if _, ok := gens[*fig]; !ok {
			fatal("unknown figure %q (want 3|4|5|6|7|blocking|multiclass|channels|indexing|load|faults|policy|cluster|all)", *fig)
		}
		selected = []string{*fig}
	}

	failures := 0
	for _, id := range selected {
		fmt.Printf("=== generating %s ===\n", name(id))
		f, err := gens[id](p)
		if err != nil {
			fatal("%s: %v", name(id), err)
		}
		fmt.Println(f.Table().String())
		for _, c := range f.Claims {
			mark := "PASS"
			if !c.Pass {
				mark = "FAIL"
				failures++
			}
			fmt.Printf("  [%s] %s — %s\n", mark, c.Name, c.Detail)
		}
		fmt.Println()
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal("mkdir %s: %v", *csvDir, err)
			}
			path := filepath.Join(*csvDir, strings.ToLower(f.ID)+".csv")
			if err := os.WriteFile(path, []byte(f.CSV().String()), 0o644); err != nil {
				fatal("writing %s: %v", path, err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
		if *svgDir != "" {
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				fatal("mkdir %s: %v", *svgDir, err)
			}
			svg, err := f.SVG()
			if err != nil {
				fatal("rendering %s: %v", f.ID, err)
			}
			path := filepath.Join(*svgDir, strings.ToLower(f.ID)+".svg")
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				fatal("writing %s: %v", path, err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	// Profiles are flushed before the claims gate: fatal exits with os.Exit,
	// and a failing claim is exactly the run one wants a profile of.
	stopCPU()
	writeMemProfile(*memProf)
	if failures > 0 {
		fatal("%d claim(s) failed", failures)
	}
}

// startCPUProfile begins CPU profiling to path ("" disables) and returns the
// stop function.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fatal("cpuprofile: %v", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fatal("cpuprofile: %v", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// writeMemProfile writes a post-GC heap profile to path ("" disables).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal("memprofile: %v", err)
	}
	defer f.Close()
	runtime.GC() // materialise final heap state
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal("memprofile: %v", err)
	}
}

func name(id string) string {
	switch id {
	case "blocking":
		return "EXT-BLOCK"
	case "multiclass":
		return "EXT-MULTI"
	case "channels":
		return "EXT-CHAN"
	case "indexing":
		return "EXT-INDEX"
	case "load":
		return "EXT-LOAD"
	case "faults":
		return "EXT-FAULTS"
	case "policy":
		return "EXT-POLICY"
	}
	return "Figure " + id
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "figures: "+format+"\n", args...)
	os.Exit(1)
}
