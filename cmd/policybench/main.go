// Command policybench measures the scheduling-policy layer in isolation and
// writes the results as machine-readable JSON (BENCH_policy.json at the repo
// root is a committed baseline). Two families:
//
//   - pull-queue microbenches: Add + ExtractMax throughput of the indexed
//     heap vs the linear-scan queue at 10²–10⁵ entries (the linear queue is
//     skipped at 10⁵ — its O(n²) drain would take minutes);
//   - engine benches: whole-simulation transmissions/sec under each built-in
//     pull policy, push scheduling fixed to the paper's round-robin.
//
// Usage:
//
//	policybench [-o BENCH_policy.json] [-horizon 3000]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/core"
	"hybridqos/internal/policy"
	"hybridqos/internal/pullqueue"
	"hybridqos/internal/rng"
)

// Result is one benchmark's measurement.
type Result struct {
	// Name identifies the benchmark (family/variant/size).
	Name string `json:"name"`
	// Iterations is testing.Benchmark's chosen b.N.
	Iterations int `json:"iterations"`
	// NsPerOp is nanoseconds per benchmark iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// OpsPerSec is the headline throughput: queue operations (one Add or
	// ExtractMax) per second for the queue family, completed transmissions
	// per second for the engine family.
	OpsPerSec float64 `json:"ops_per_sec"`
}

func main() {
	var (
		out     = flag.String("o", "BENCH_policy.json", "output JSON path (- for stdout)")
		horizon = flag.Float64("horizon", 3000, "engine bench simulated duration")
	)
	flag.Parse()

	var results []Result
	for _, n := range []int{100, 1000, 10000, 100000} {
		results = append(results, queueBench("heap", n))
		if n <= 10000 {
			results = append(results, queueBench("linear", n))
		}
	}
	for _, name := range policy.PullNames() {
		r, err := engineBench(name, *horizon)
		if err != nil {
			fatal("engine bench %s: %v", name, err)
		}
		results = append(results, r)
	}

	blob, err := json.MarshalIndent(struct {
		Description string   `json:"description"`
		Results     []Result `json:"results"`
	}{
		Description: "scheduling-policy layer benchmarks; regenerate with `go run ./cmd/policybench`",
		Results:     results,
	}, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal("writing %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d results to %s\n", len(results), *out)
}

// queueBench fills a fresh γ(0.5) queue with n random requests and drains
// it, counting 2n queue operations per iteration.
func queueBench(kind string, n int) Result {
	reqs := workload(n)
	mk := func() pullqueue.Queue {
		var q pullqueue.Queue
		var err error
		if kind == "heap" {
			q, err = pullqueue.NewHeap(0.5)
		} else {
			q, err = pullqueue.NewLinear(0.5)
		}
		if err != nil {
			fatal("%s: %v", kind, err)
		}
		return q
	}
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := mk()
			for _, rq := range reqs {
				q.Add(rq, 2)
			}
			for q.Items() > 0 {
				q.ExtractMax(0)
			}
		}
	})
	ns := float64(res.NsPerOp())
	return Result{
		Name:       fmt.Sprintf("pullqueue/%s/n=%d", kind, n),
		Iterations: res.N,
		NsPerOp:    ns,
		OpsPerSec:  float64(2*n) / (ns / 1e9),
	}
}

func workload(n int) []pullqueue.Request {
	r := rng.New(7)
	reqs := make([]pullqueue.Request, n)
	items := max(n/2, 10)
	for i := range reqs {
		reqs[i] = pullqueue.Request{
			Item:     r.Intn(items) + 1,
			Class:    clients.Class(r.Intn(3)),
			Priority: float64(3 - r.Intn(3)),
			Arrival:  float64(i) * 0.2,
		}
	}
	return reqs
}

// engineBench runs the full simulator under one named pull policy and
// reports completed transmissions (push + pull) per wall-clock second.
func engineBench(pullName string, horizon float64) (Result, error) {
	cat, err := catalog.Generate(catalog.PaperConfig(0.6, 42))
	if err != nil {
		return Result{}, err
	}
	cl, err := clients.New(clients.PaperConfig())
	if err != nil {
		return Result{}, err
	}
	cfg := core.Config{
		Catalog: cat, Classes: cl, Lambda: 5, Cutoff: 40, Alpha: 0.5,
		Horizon: horizon, WarmupFraction: 0.1, Seed: 9,
		PullPolicyName: pullName,
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	var transmissions int64
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := core.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			transmissions = m.PushBroadcasts + m.PullTransmissions
		}
	})
	ns := float64(res.NsPerOp())
	return Result{
		Name:       "engine/pull=" + pullName,
		Iterations: res.N,
		NsPerOp:    ns,
		OpsPerSec:  float64(transmissions) / (ns / 1e9),
	}, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "policybench: "+format+"\n", args...)
	os.Exit(1)
}
