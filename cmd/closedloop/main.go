// Command closedloop runs the paper's §3 periodic cutoff re-optimisation
// as a closed loop against a drifting workload, side by side with the
// frozen baseline: each epoch the controller fits the observed workload
// (Zipf-θ by maximum likelihood, arrival rate), re-ranks the push set by
// observed demand and re-plans the cutoff with the analytic model.
//
// Usage:
//
//	closedloop -epochs 8 -shift 5 -theta 1.0
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridqos"
	"hybridqos/internal/report"
)

func main() {
	var (
		theta    = flag.Float64("theta", 1.0, "true Zipf skew of the drifting popularity")
		lambda   = flag.Float64("lambda", 5, "aggregate request rate λ'")
		alpha    = flag.Float64("alpha", 0.5, "importance-factor mixing α")
		cutoff   = flag.Int("cutoff", 40, "initial push/pull cutoff K")
		epochs   = flag.Int("epochs", 8, "number of epochs")
		epochLen = flag.Float64("epochlen", 6000, "epoch duration (broadcast units)")
		shift    = flag.Int("shift", 5, "true-ranking rotation per epoch")
		seed     = flag.Uint64("seed", 11, "random seed")
	)
	flag.Parse()

	cfg := hybridqos.PaperConfig()
	cfg.Theta = *theta
	cfg.Lambda = *lambda
	cfg.Alpha = *alpha
	cfg.Cutoff = *cutoff
	cfg.Seed = *seed

	fmt.Printf("closed-loop adaptation vs frozen baseline: θ=%.2f drift=%d ranks/epoch, %d epochs × %.0f units\n\n",
		*theta, *shift, *epochs, *epochLen)

	adaptiveRun, err := hybridqos.RunClosedLoop(cfg, *epochs, *epochLen, *shift, true)
	if err != nil {
		fatal("adaptive run: %v", err)
	}
	frozenRun, err := hybridqos.RunClosedLoop(cfg, *epochs, *epochLen, *shift, false)
	if err != nil {
		fatal("frozen run: %v", err)
	}

	tbl := report.NewTable("Per-epoch total prioritised cost",
		"epoch", "adaptive K", "adaptive cost", "frozen cost", "θ̂", "λ̂")
	var adaptSum, frozenSum float64
	for i := range adaptiveRun {
		a, f := adaptiveRun[i], frozenRun[i]
		adaptSum += a.TotalCost
		frozenSum += f.TotalCost
		tbl.AddRow(fmt.Sprint(i),
			fmt.Sprint(a.Cutoff),
			report.FormatFloat(a.TotalCost, "%.1f"),
			report.FormatFloat(f.TotalCost, "%.1f"),
			report.FormatFloat(a.ThetaHat, "%.2f"),
			report.FormatFloat(a.LambdaHat, "%.2f"))
	}
	fmt.Println(tbl.String())
	n := float64(len(adaptiveRun))
	fmt.Printf("mean cost: adaptive %.1f vs frozen %.1f (%.1f%% saved)\n",
		adaptSum/n, frozenSum/n, 100*(frozenSum-adaptSum)/frozenSum)
	fmt.Println("\nthe controller's fitted θ̂/λ̂ track the truth each epoch; re-ranking keeps")
	fmt.Println("the push set one epoch behind the drift instead of falling ever further back.")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "closedloop: "+format+"\n", args...)
	os.Exit(1)
}
