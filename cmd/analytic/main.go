// Command analytic prints the paper's queueing models: the §4.1 hybrid
// birth–death chain (numeric vs closed form), Cobham's per-class waits
// (Eq. 18), the §4.2.1 two-class chain, and the Eq. 19 access-time sweep in
// all three variants (literal / engineering / refined).
//
// Usage:
//
//	analytic                       # everything at the paper's defaults
//	analytic -theta 1.4 -alpha 0   # different operating point
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridqos/internal/analytic"
	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/report"
)

func main() {
	var (
		theta  = flag.Float64("theta", 0.6, "Zipf access skew θ")
		lambda = flag.Float64("lambda", 5, "aggregate request rate λ'")
		alpha  = flag.Float64("alpha", 0.75, "importance-factor mixing α")
		seed   = flag.Uint64("seed", 42, "catalog seed")
		step   = flag.Int("step", 10, "cutoff sweep step")
	)
	flag.Parse()

	cat, err := catalog.Generate(catalog.PaperConfig(*theta, *seed))
	if err != nil {
		fatal("catalog: %v", err)
	}
	cl, err := clients.New(clients.PaperConfig())
	if err != nil {
		fatal("classes: %v", err)
	}

	// §4.1 birth–death chain at a stable operating point.
	fmt.Println("== §4.1 hybrid birth–death chain ==")
	hp := analytic.HybridChainParams{Lambda: 0.2, Mu1: 2, Mu2: 1, C: 400}
	hs, err := analytic.SolveHybridChain(hp)
	if err != nil {
		fatal("hybrid chain: %v", err)
	}
	fmt.Printf("λ=%.2f μ1=%.2f μ2=%.2f: p(0,0) numeric %.4f vs closed form %.4f\n",
		hp.Lambda, hp.Mu1, hp.Mu2, hs.P00, analytic.ClosedFormIdle(hp.Lambda, hp.Mu1, hp.Mu2))
	fmt.Printf("E[L_pull]=%.4f  N (push-phase partial mean)=%.4f  W_pull=%.4f\n\n",
		hs.ELPull, hs.NPushPhase, hs.WPull)

	// Eq. 18: Cobham waits for a three-class example.
	fmt.Println("== §4.2.2 Cobham non-preemptive priority waits (Eq. 18) ==")
	classes := []analytic.PriorityClass{{Lambda: 0.5, Mu: 3}, {Lambda: 0.8, Mu: 3}, {Lambda: 1.0, Mu: 3}}
	waits, err := analytic.CobhamWaits(classes)
	if err != nil {
		fatal("cobham: %v", err)
	}
	for i, w := range waits {
		fmt.Printf("class %d (λ=%.1f): W_q = %.4f\n", i+1, classes[i].Lambda, w)
	}
	overall, _ := analytic.OverallPullWait(classes, waits)
	fmt.Printf("overall E[W_pull^q] = %.4f\n\n", overall)

	// §4.2.1 two-class chain vs Cobham.
	fmt.Println("== §4.2.1 two-class chain (numeric) vs Cobham ==")
	tp := analytic.TwoClassParams{Lambda1: 1, Lambda2: 1, Mu: 4, C: 60}
	tr, err := analytic.SolveTwoClassChain(tp)
	if err != nil {
		fatal("two-class: %v", err)
	}
	cw, _ := analytic.CobhamWaits([]analytic.PriorityClass{
		{Lambda: tp.Lambda1, Mu: tp.Mu},
		{Lambda: tp.Lambda2, Mu: tp.Mu},
	})
	fmt.Printf("chain:  W1=%.4f W2=%.4f (system times)\n", tr.W1, tr.W2)
	fmt.Printf("cobham: W1=%.4f W2=%.4f (queue + service)\n\n", cw[0]+1/tp.Mu, cw[1]+1/tp.Mu)

	// Eq. 19 sweep in all variants.
	fmt.Println("== Eq. 19 access-time sweep ==")
	tbl := report.NewTable(
		fmt.Sprintf("Expected access time vs K (θ=%.2f, α=%.2f, λ'=%.1f)", *theta, *alpha, *lambda),
		"K", "literal", "engineering", "refined", "refined A", "refined B", "refined C")
	for k := 10; k <= cat.D()-10; k += *step {
		row := []float64{}
		var refined analytic.Result
		for _, v := range []analytic.Variant{analytic.Literal, analytic.Engineering, analytic.Refined} {
			m := analytic.Model{Catalog: cat, Classes: cl, LambdaTotal: *lambda, Alpha: *alpha, Variant: v}
			r, err := m.AccessTime(k)
			if err != nil {
				fatal("variant %s at K=%d: %v", v, k, err)
			}
			row = append(row, r.Overall)
			if v == analytic.Refined {
				refined = r
			}
		}
		tbl.AddFloats(fmt.Sprint(k), "%.2f",
			row[0], row[1], row[2],
			refined.PerClass[0].Wait, refined.PerClass[1].Wait, refined.PerClass[2].Wait)
	}
	fmt.Println(tbl.String())
	fmt.Println("note: the literal variant reproduces the paper's Eq. 19 verbatim (its push")
	fmt.Println("term degenerates to 0.5 — see DESIGN.md inconsistency #1); the refined")
	fmt.Println("variant is the one validated against simulation (Figure 7).")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "analytic: "+format+"\n", args...)
	os.Exit(1)
}
