// Command compare runs the same workload under every pull policy and push
// scheduler and prints a side-by-side comparison — the ABL-POLICY and
// ABL-PUSH ablation studies as a CLI.
//
// Usage:
//
//	compare                       # both ablations at the paper defaults
//	compare -what pull -alpha 0.25
//	compare -what push -theta 1.0
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridqos"
	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/multichannel"
	"hybridqos/internal/report"
)

func main() {
	var (
		what    = flag.String("what", "both", "pull|push|channels|both")
		theta   = flag.Float64("theta", 0.6, "Zipf access skew θ")
		alpha   = flag.Float64("alpha", 0.5, "importance-factor mixing α")
		cutoff  = flag.Int("cutoff", 40, "push/pull cutoff K")
		horizon = flag.Float64("horizon", 15000, "simulated duration")
		reps    = flag.Int("reps", 3, "replications")
		seed    = flag.Uint64("seed", 1, "base seed")
	)
	flag.Parse()

	base := hybridqos.PaperConfig()
	base.Theta = *theta
	base.Alpha = *alpha
	base.Cutoff = *cutoff
	base.Horizon = *horizon
	base.Replications = *reps
	base.Seed = *seed

	if *what == "pull" || *what == "both" {
		fmt.Printf("=== pull policies (θ=%.2f, K=%d, α=%.2f for importance-factor) ===\n",
			*theta, *cutoff, *alpha)
		tbl := report.NewTable("",
			"policy", "overall delay", "Class-A", "Class-B", "Class-C", "total cost")
		for _, policy := range []string{
			hybridqos.PolicyGamma,
			hybridqos.PolicyPriority,
			hybridqos.PolicyStretch,
			hybridqos.PolicyFCFS,
			hybridqos.PolicyEDF,
			hybridqos.PolicyMRF,
			hybridqos.PolicyRxW,
			hybridqos.PolicyClassicStretch,
		} {
			cfg := base
			cfg.PullPolicy = policy
			res, err := hybridqos.Simulate(cfg)
			if err != nil {
				fatal("policy %s: %v", policy, err)
			}
			tbl.AddRow(policy,
				report.FormatFloat(res.OverallDelay, "%.2f"),
				report.FormatFloat(res.PerClass[0].MeanDelay, "%.2f"),
				report.FormatFloat(res.PerClass[1].MeanDelay, "%.2f"),
				report.FormatFloat(res.PerClass[2].MeanDelay, "%.2f"),
				report.FormatFloat(res.TotalCost, "%.1f"))
		}
		fmt.Println(tbl.String())
	}

	if *what == "push" || *what == "both" {
		fmt.Printf("=== push schedulers (θ=%.2f, K=%d, α=%.2f) ===\n", *theta, *cutoff, *alpha)
		tbl := report.NewTable("",
			"scheduler", "overall delay", "Class-A", "Class-B", "Class-C", "total cost")
		for _, scheduler := range []string{
			hybridqos.PushRoundRobin,
			hybridqos.PushBroadcastDisk,
			hybridqos.PushSquareRoot,
			hybridqos.PushNone,
		} {
			cfg := base
			cfg.PushScheduler = scheduler
			res, err := hybridqos.Simulate(cfg)
			if err != nil {
				fatal("scheduler %s: %v", scheduler, err)
			}
			tbl.AddRow(scheduler,
				report.FormatFloat(res.OverallDelay, "%.2f"),
				report.FormatFloat(res.PerClass[0].MeanDelay, "%.2f"),
				report.FormatFloat(res.PerClass[1].MeanDelay, "%.2f"),
				report.FormatFloat(res.PerClass[2].MeanDelay, "%.2f"),
				report.FormatFloat(res.TotalCost, "%.1f"))
		}
		fmt.Println(tbl.String())
		fmt.Println("note: the paper uses flat round-robin on the push side; popularity-")
		fmt.Println("aware push schedules (broadcast-disk, square-root rule) shorten the")
		fmt.Println("wait for hot push items at the cost of longer cold-item recurrence.")
	}

	if *what == "channels" {
		fmt.Printf("=== multi-channel splits (4 channels, fixed total capacity, θ=%.2f, K=%d) ===\n",
			*theta, *cutoff)
		tbl := report.NewTable("",
			"push/pull split", "overall delay", "Class-A", "Class-B", "Class-C")
		cat, err := catalog.Generate(catalog.PaperConfig(*theta, *seed))
		if err != nil {
			fatal("catalog: %v", err)
		}
		cl, err := clients.New(clients.PaperConfig())
		if err != nil {
			fatal("classes: %v", err)
		}
		for push := 1; push <= 3; push++ {
			m, err := multichannel.Run(multichannel.Config{
				Catalog:        cat,
				Classes:        cl,
				Lambda:         base.Lambda,
				Cutoff:         *cutoff,
				Alpha:          *alpha,
				PushChannels:   push,
				PullChannels:   4 - push,
				Horizon:        *horizon,
				WarmupFraction: 0.1,
				Seed:           *seed,
			})
			if err != nil {
				fatal("split %d: %v", push, err)
			}
			tbl.AddRow(fmt.Sprintf("%d push / %d pull", push, 4-push),
				report.FormatFloat(m.OverallMeanDelay(), "%.2f"),
				report.FormatFloat(m.PerClass[0].MeanDelay(), "%.2f"),
				report.FormatFloat(m.PerClass[1].MeanDelay(), "%.2f"),
				report.FormatFloat(m.PerClass[2].MeanDelay(), "%.2f"))
		}
		fmt.Println(tbl.String())
	}

	switch *what {
	case "pull", "push", "both", "channels":
	default:
		fatal("unknown -what %q", *what)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "compare: "+format+"\n", args...)
	os.Exit(1)
}
