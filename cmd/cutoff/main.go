// Command cutoff finds the optimal push/pull cutoff point K for a
// configuration — the paper's periodic re-optimisation step (§3) — by
// analytic model, by simulation sweep, or both for comparison.
//
// Usage:
//
//	cutoff -theta 0.6 -alpha 0.5                 # both methods
//	cutoff -method analytic -objective cost      # model only (fast)
//	cutoff -method sim -kmin 10 -kmax 90 -step 5 # simulation only
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hybridqos"
	"hybridqos/internal/report"
)

func main() {
	var (
		theta     = flag.Float64("theta", 0.6, "Zipf access skew θ")
		lambda    = flag.Float64("lambda", 5, "aggregate request rate λ'")
		alpha     = flag.Float64("alpha", 0.5, "importance-factor mixing α")
		kMin      = flag.Int("kmin", 5, "sweep lower bound")
		kMax      = flag.Int("kmax", 95, "sweep upper bound")
		step      = flag.Int("step", 5, "simulation sweep step")
		method    = flag.String("method", "both", "analytic|sim|both")
		objective = flag.String("objective", "cost", "sim objective: cost|delay")
		horizon   = flag.Float64("horizon", 8000, "sim horizon per replication")
		reps      = flag.Int("reps", 2, "sim replications")
		seed      = flag.Uint64("seed", 1, "base seed")
	)
	flag.Parse()

	cfg := hybridqos.PaperConfig()
	cfg.Theta = *theta
	cfg.Lambda = *lambda
	cfg.Alpha = *alpha
	cfg.Horizon = *horizon
	cfg.Replications = *reps
	cfg.Seed = *seed

	fmt.Printf("optimising cutoff for θ=%.2f λ'=%.1f α=%.2f over K∈[%d,%d]\n\n",
		*theta, *lambda, *alpha, *kMin, *kMax)

	if *method == "analytic" || *method == "both" {
		start := time.Now()
		p, err := hybridqos.PredictOptimalCutoff(cfg, *kMin, *kMax)
		if err != nil {
			fatal("analytic: %v", err)
		}
		fmt.Printf("analytic (refined model): optimal K = %d\n", p.Cutoff)
		fmt.Printf("  predicted overall delay %.2f, total cost %.2f  (%.0f ms)\n",
			p.OverallDelay, p.TotalCost, float64(time.Since(start).Milliseconds()))
		for _, c := range p.PerClass {
			fmt.Printf("  %s: delay %.2f cost %.2f\n", c.Class, c.Delay, c.Cost)
		}
		fmt.Println()
	}

	if *method == "sim" || *method == "both" {
		start := time.Now()
		r, err := hybridqos.OptimizeCutoff(cfg, *kMin, *kMax, *step, *objective)
		if err != nil {
			fatal("sim: %v", err)
		}
		fmt.Printf("simulation sweep (objective=%s): optimal K = %d\n", *objective, r.Cutoff)
		fmt.Printf("  measured overall delay %.2f ± %s, total cost %.2f  (%.0f ms)\n",
			r.OverallDelay, report.FormatFloat(r.OverallDelayCI95, "%.2f"),
			r.TotalCost, float64(time.Since(start).Milliseconds()))
		for _, c := range r.PerClass {
			fmt.Printf("  %s: delay %.2f cost %.2f\n", c.Class, c.MeanDelay, c.Cost)
		}
		fmt.Println()
	}

	if *method != "analytic" && *method != "sim" && *method != "both" {
		fatal("unknown method %q", *method)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cutoff: "+format+"\n", args...)
	os.Exit(1)
}
