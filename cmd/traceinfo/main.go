// Command traceinfo analyses a JSONL event trace written by
// `hybridsim -trace` (or hybridqos.WriteTrace): event counts, per-class
// delay statistics recomputed independently of the simulator's live
// collectors, transmission mix, and a coarse timeline of queue pressure.
//
// Usage:
//
//	hybridsim -horizon 5000 -reps 1 -trace run.jsonl
//	traceinfo run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hybridqos/internal/clients"
	"hybridqos/internal/report"
	"hybridqos/internal/stats"
	"hybridqos/internal/trace"
)

func main() {
	classes := flag.Int("classes", 3, "number of service classes in the trace")
	buckets := flag.Int("buckets", 10, "timeline buckets")
	flag.Parse()
	if flag.NArg() != 1 {
		fatal("usage: traceinfo [-classes n] <trace.jsonl>")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		fatal("%v", err)
	}
	if len(events) == 0 {
		fatal("empty trace")
	}

	// Event census.
	counts := map[trace.Kind]int64{}
	for _, e := range events {
		counts[e.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	fmt.Printf("trace: %d events over [%.1f, %.1f] broadcast units\n\n",
		len(events), events[0].T, events[len(events)-1].T)
	census := report.NewTable("Event census", "kind", "count")
	for _, k := range kinds {
		census.AddRow(k, fmt.Sprint(counts[trace.Kind(k)]))
	}
	fmt.Println(census.String())

	// Per-class replay.
	perClass, err := trace.Replay(events, *classes)
	if err != nil {
		fatal("%v", err)
	}
	// Percentiles need the raw delays.
	hists := make([]stats.Histogram, *classes)
	for _, e := range events {
		if e.Kind == trace.KindServed {
			hists[e.Class].Add(e.T - e.Arrival)
		}
	}
	tbl := report.NewTable("Per-class delays (replayed from trace)",
		"class", "served", "mean", "p50", "p95", "max")
	for c := 0; c < *classes; c++ {
		h := &hists[c]
		tbl.AddRow(clients.Class(c).String(),
			fmt.Sprint(perClass[c].Served),
			report.FormatFloat(perClass[c].MeanDelay(), "%.2f"),
			report.FormatFloat(h.Percentile(50), "%.2f"),
			report.FormatFloat(h.Percentile(95), "%.2f"),
			report.FormatFloat(h.Percentile(100), "%.2f"))
	}
	fmt.Println(tbl.String())

	// Transmission mix and multicast efficiency.
	var pullTx, pullReqs int64
	for _, e := range events {
		if e.Kind == trace.KindPullComplete {
			pullTx++
			pullReqs += int64(e.Requests)
		}
	}
	if pullTx > 0 {
		fmt.Printf("pull multicast efficiency: %.2f requests satisfied per transmission\n\n",
			float64(pullReqs)/float64(pullTx))
	}

	// Coarse timeline: arrivals and pull transmissions per bucket.
	span := events[len(events)-1].T - events[0].T
	if span <= 0 || *buckets <= 0 {
		return
	}
	arr := make([]int, *buckets)
	pull := make([]int, *buckets)
	for _, e := range events {
		b := int((e.T - events[0].T) / span * float64(*buckets))
		if b >= *buckets {
			b = *buckets - 1
		}
		switch e.Kind {
		case trace.KindArrival:
			arr[b]++
		case trace.KindPullComplete:
			pull[b]++
		}
	}
	tl := report.NewTable("Timeline", "bucket", "arrivals", "pull transmissions")
	for b := 0; b < *buckets; b++ {
		tl.AddRow(fmt.Sprintf("%2d", b), fmt.Sprint(arr[b]), fmt.Sprint(pull[b]))
	}
	fmt.Println(tl.String())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceinfo: "+format+"\n", args...)
	os.Exit(1)
}
