// Command traceinfo analyses a JSONL event trace written by
// `hybridsim -trace` (or hybridqos.WriteTrace): event counts, per-class
// delay statistics recomputed independently of the simulator's live
// collectors, fault-event summaries, transmission mix, and a coarse timeline
// of queue pressure. With -timeline it additionally lowers the trace's
// embedded telemetry snapshots (see `hybridsim -telemetry-every`) to
// per-class delay-percentile and queue-depth time series — after auditing
// every snapshot against an independent event replay — and writes them as
// CSV plus two SVG charts. With -spans it reconstructs the sampled
// per-request spans embedded in the trace (see `hybridsim -spans`), audits
// them against the event replay, prints outcome and segment summaries, and
// can export them as Perfetto or OTLP-style JSON — the only span-export path
// for multi-cell cluster traces.
//
// Usage:
//
//	hybridsim -horizon 5000 -reps 1 -telemetry-every 100 -trace run.jsonl
//	traceinfo run.jsonl
//	traceinfo -timeline run run.jsonl    # writes run.csv, run-delay.svg, run-queue.svg
//	traceinfo -spans -perfetto spans.json run.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"hybridqos/internal/clients"
	"hybridqos/internal/report"
	"hybridqos/internal/span"
	"hybridqos/internal/stats"
	"hybridqos/internal/telemetry"
	"hybridqos/internal/trace"
)

// options bundles the command's flags.
type options struct {
	classes  int
	buckets  int
	timeline string // artefact path prefix; empty disables the timeline export
	spans    bool   // reconstruct and summarise per-request spans
	perfetto string // span export paths; empty disables (both imply -spans)
	otlp     string
}

func main() {
	var opts options
	flag.IntVar(&opts.classes, "classes", 3, "number of service classes in the trace")
	flag.IntVar(&opts.buckets, "buckets", 10, "timeline buckets")
	flag.StringVar(&opts.timeline, "timeline", "", "write snapshot time series to <prefix>.csv, <prefix>-delay.svg and <prefix>-queue.svg")
	flag.BoolVar(&opts.spans, "spans", false, "reconstruct per-request spans (recorded with hybridsim -spans), audit them against the event replay, and print summaries")
	flag.StringVar(&opts.perfetto, "perfetto", "", "write reconstructed spans as Perfetto/Chrome trace-event JSON (implies -spans)")
	flag.StringVar(&opts.otlp, "otlp", "", "write reconstructed spans as compact OTLP-style JSON (implies -spans)")
	flag.Parse()
	if flag.NArg() != 1 {
		fatal("usage: traceinfo [-classes n] [-timeline prefix] [-spans] [-perfetto out.json] [-otlp out.json] <trace.jsonl>")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		fatal("%v", err)
	}
	if err := run(os.Stdout, events, opts); err != nil {
		fatal("%v", err)
	}
}

// run performs the whole analysis, printing to w and (for -timeline) writing
// artefact files. Split from main so tests can drive it.
func run(w io.Writer, events []trace.Event, opts options) error {
	if len(events) == 0 {
		return fmt.Errorf("empty trace")
	}
	writeCensus(w, events)
	if err := writeDelays(w, events, opts.classes); err != nil {
		return err
	}
	writeFaults(w, events, opts.classes)
	writeCells(w, events, opts.classes)
	writeMix(w, events)
	writeCoarseTimeline(w, events, opts.buckets)
	if opts.timeline != "" {
		if err := writeTimeline(w, events, opts.timeline); err != nil {
			return err
		}
	}
	if opts.spans || opts.perfetto != "" || opts.otlp != "" {
		if err := writeSpans(w, events, opts); err != nil {
			return err
		}
	}
	return nil
}

// writeCensus prints the per-kind event counts.
func writeCensus(w io.Writer, events []trace.Event) {
	counts := map[trace.Kind]int64{}
	for _, e := range events {
		counts[e.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	fmt.Fprintf(w, "trace: %d events over [%.1f, %.1f] broadcast units\n\n",
		len(events), events[0].T, events[len(events)-1].T)
	census := report.NewTable("Event census", "kind", "count")
	for _, k := range kinds {
		census.AddRow(k, fmt.Sprint(counts[trace.Kind(k)]))
	}
	fmt.Fprintln(w, census.String())
}

// writeDelays prints the per-class delay statistics replayed from the trace.
func writeDelays(w io.Writer, events []trace.Event, classes int) error {
	perClass, err := trace.Replay(events, classes)
	if err != nil {
		return err
	}
	// Percentiles need the raw delays.
	hists := make([]stats.Histogram, classes)
	for _, e := range events {
		if e.Kind == trace.KindServed {
			hists[e.Class].Add(e.T - e.Arrival)
		}
	}
	tbl := report.NewTable("Per-class delays (replayed from trace)",
		"class", "served", "mean", "p50", "p95", "max")
	for c := 0; c < classes; c++ {
		h := &hists[c]
		tbl.AddRow(clients.Class(c).String(),
			fmt.Sprint(perClass[c].Served),
			report.FormatFloat(perClass[c].MeanDelay(), "%.2f"),
			report.FormatFloat(h.Percentile(50), "%.2f"),
			report.FormatFloat(h.Percentile(95), "%.2f"),
			report.FormatFloat(h.Percentile(100), "%.2f"))
	}
	fmt.Fprintln(w, tbl.String())
	return nil
}

// writeFaults prints the per-class fault-event summary (corruptions, client
// retries, admission sheds), skipped entirely when the trace has no fault
// events. Corrupted push broadcasts carry no class (class −1 in the trace)
// and appear as the "broadcast" row.
func writeFaults(w io.Writer, events []trace.Event, classes int) {
	const broadcastRow = -1
	corrupt := map[int]int64{}
	retries := map[int]int64{}
	shed := map[int]int64{}
	var total int64
	for _, e := range events {
		c := int(e.Class)
		switch e.Kind {
		case trace.KindCorrupt:
			corrupt[c]++
		case trace.KindRetry:
			retries[c]++
		case trace.KindShed:
			shed[c]++
		default:
			continue
		}
		total++
	}
	if total == 0 {
		return
	}
	label := func(c int) string {
		if c == broadcastRow {
			return "broadcast"
		}
		return clients.Class(c).String()
	}
	tbl := report.NewTable("Fault events by class", "class", "corrupt", "retries", "shed")
	for c := broadcastRow; c < classes; c++ {
		if corrupt[c] == 0 && retries[c] == 0 && shed[c] == 0 {
			continue
		}
		tbl.AddRow(label(c),
			fmt.Sprint(corrupt[c]), fmt.Sprint(retries[c]), fmt.Sprint(shed[c]))
	}
	fmt.Fprintln(w, tbl.String())
}

// writeCells prints the per-cell breakdown of a multi-cell (cluster) trace:
// requests, accepted handoffs and refused handoffs by class. Single-cell
// traces — no cell stamps, no handoff events — skip the table entirely.
func writeCells(w io.Writer, events []trace.Event, classes int) {
	multi := false
	for _, e := range events {
		if e.Cell != 0 || e.Kind == trace.KindHandoff || e.Kind == trace.KindHandoffRefused {
			multi = true
			break
		}
	}
	if !multi {
		return
	}
	// refusalReasons is the fixed handoff-refusal taxonomy (trace.Event.Reason
	// on KindHandoffRefused), in display order.
	refusalReasons := []string{"expired", "shed", "horizon", "no-item"}
	reasonCol := map[string]int{}
	for i, r := range refusalReasons {
		reasonCol[r] = i
	}
	type cellRow struct {
		arrivals, handoffs, refusals []int64
		byReason                     []int64
	}
	rows := map[int]*cellRow{}
	get := func(cell int) *cellRow {
		r := rows[cell]
		if r == nil {
			r = &cellRow{
				arrivals: make([]int64, classes),
				handoffs: make([]int64, classes),
				refusals: make([]int64, classes),
				byReason: make([]int64, len(refusalReasons)),
			}
			rows[cell] = r
		}
		return r
	}
	for _, e := range events {
		c := int(e.Class)
		if c < 0 || c >= classes {
			continue
		}
		switch e.Kind {
		case trace.KindArrival:
			get(e.Cell).arrivals[c]++
		case trace.KindHandoff:
			get(e.Cell).handoffs[c]++
		case trace.KindHandoffRefused:
			r := get(e.Cell)
			r.refusals[c]++
			if col, known := reasonCol[e.Reason]; known {
				r.byReason[col]++
			}
		}
	}
	ids := make([]int, 0, len(rows))
	for id := range rows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	perClass := func(counts []int64) string {
		s := ""
		for c, n := range counts {
			if c > 0 {
				s += "/"
			}
			s += fmt.Sprint(n)
		}
		return s
	}
	sum := func(counts []int64) int64 {
		var n int64
		for _, v := range counts {
			n += v
		}
		return n
	}
	cols := []string{"cell", "requests", "by class", "handoffs", "by class", "refused", "by class"}
	cols = append(cols, refusalReasons...)
	tbl := report.NewTable("Per-cell breakdown (class A/B/C...)", cols...)
	for _, id := range ids {
		r := rows[id]
		row := []string{fmt.Sprint(id),
			fmt.Sprint(sum(r.arrivals)), perClass(r.arrivals),
			fmt.Sprint(sum(r.handoffs)), perClass(r.handoffs),
			fmt.Sprint(sum(r.refusals)), perClass(r.refusals)}
		for _, n := range r.byReason {
			row = append(row, fmt.Sprint(n))
		}
		tbl.AddRow(row...)
	}
	fmt.Fprintln(w, tbl.String())
}

// writeMix prints the pull multicast efficiency.
func writeMix(w io.Writer, events []trace.Event) {
	var pullTx, pullReqs int64
	for _, e := range events {
		if e.Kind == trace.KindPullComplete {
			pullTx++
			pullReqs += int64(e.Requests)
		}
	}
	if pullTx > 0 {
		fmt.Fprintf(w, "pull multicast efficiency: %.2f requests satisfied per transmission\n\n",
			float64(pullReqs)/float64(pullTx))
	}
}

// writeCoarseTimeline prints arrivals and pull transmissions per bucket.
func writeCoarseTimeline(w io.Writer, events []trace.Event, buckets int) {
	span := events[len(events)-1].T - events[0].T
	if span <= 0 || buckets <= 0 {
		return
	}
	arr := make([]int, buckets)
	pull := make([]int, buckets)
	for _, e := range events {
		b := int((e.T - events[0].T) / span * float64(buckets))
		if b >= buckets {
			b = buckets - 1
		}
		switch e.Kind {
		case trace.KindArrival:
			arr[b]++
		case trace.KindPullComplete:
			pull[b]++
		}
	}
	tl := report.NewTable("Timeline", "bucket", "arrivals", "pull transmissions")
	for b := 0; b < buckets; b++ {
		tl.AddRow(fmt.Sprintf("%2d", b), fmt.Sprint(arr[b]), fmt.Sprint(pull[b]))
	}
	fmt.Fprintln(w, tl.String())
}

// writeTimeline audits the trace's embedded telemetry snapshots against an
// event replay, lowers them to time series, and writes <prefix>.csv plus
// the delay and queue SVG charts.
func writeTimeline(w io.Writer, events []trace.Event, prefix string) error {
	snaps := trace.Snapshots(events)
	if len(snaps) == 0 {
		return fmt.Errorf("no telemetry snapshots in trace; record one with hybridsim -telemetry-every")
	}
	n, err := trace.VerifySnapshots(events)
	if err != nil {
		return fmt.Errorf("snapshot audit FAILED: %w", err)
	}
	fmt.Fprintf(w, "snapshot audit: %d snapshots reproduced exactly by event replay\n", n)

	tl, err := telemetry.BuildTimeline(snaps)
	if err != nil {
		return err
	}
	a, err := telemetry.WriteArtifacts(tl, prefix)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "timeline: %d ticks, %d classes -> %s, %s, %s\n",
		tl.Ticks(), len(tl.PerClass), a.CSV, a.DelaySVG, a.QueueSVG)
	return nil
}

// writeSpans reconstructs the trace's sampled per-request spans, audits them
// (segment tiling, terminal consistency, decision attachment), prints outcome
// and segment summaries, and optionally exports Perfetto / OTLP JSON files.
func writeSpans(w io.Writer, events []trace.Event, opts options) error {
	spans, err := span.Build(events)
	if err != nil {
		return fmt.Errorf("span reconstruction: %w", err)
	}
	if len(spans) == 0 {
		return fmt.Errorf("no span events in trace; record them with hybridsim -spans")
	}
	if err := span.Verify(spans); err != nil {
		return fmt.Errorf("span audit FAILED: %w", err)
	}
	var open int
	for _, sp := range spans {
		if sp.Open {
			open++
		}
	}
	fmt.Fprintf(w, "span audit: %d spans reconstructed (%d still open at trace end); segments tile every lifetime\n\n",
		len(spans), open)

	// Outcome table: count, mean effective delay, provenance volume.
	type outRow struct {
		count, retries, losses, crossCell int64
		delaySum                          float64
	}
	byOutcome := map[string]*outRow{}
	for _, sp := range spans {
		key := sp.Outcome
		if sp.Open {
			key = "(open)"
		}
		r := byOutcome[key]
		if r == nil {
			r = &outRow{}
			byOutcome[key] = r
		}
		r.count++
		r.retries += int64(sp.Retries)
		r.losses += int64(sp.Losses)
		if len(sp.Cells) > 1 {
			r.crossCell++
		}
		r.delaySum += sp.Delay()
	}
	outcomes := make([]string, 0, len(byOutcome))
	for k := range byOutcome {
		outcomes = append(outcomes, k)
	}
	sort.Strings(outcomes)
	ot := report.NewTable("Sampled spans by outcome",
		"outcome", "spans", "mean delay", "retries", "losses", "cross-cell")
	for _, k := range outcomes {
		r := byOutcome[k]
		ot.AddRow(k, fmt.Sprint(r.count),
			report.FormatFloat(r.delaySum/float64(r.count), "%.2f"),
			fmt.Sprint(r.retries), fmt.Sprint(r.losses), fmt.Sprint(r.crossCell))
	}
	fmt.Fprintln(w, ot.String())

	// Segment table: where sampled requests spent their time.
	type segRow struct {
		count    int64
		duration float64
	}
	bySeg := map[string]*segRow{}
	for _, sp := range spans {
		for _, seg := range sp.Segments {
			r := bySeg[seg.Kind]
			if r == nil {
				r = &segRow{}
				bySeg[seg.Kind] = r
			}
			r.count++
			r.duration += seg.Duration()
		}
	}
	kinds := make([]string, 0, len(bySeg))
	for k := range bySeg {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	st := report.NewTable("Span segments", "kind", "count", "total units", "mean units")
	for _, k := range kinds {
		r := bySeg[k]
		st.AddRow(k, fmt.Sprint(r.count),
			report.FormatFloat(r.duration, "%.2f"),
			report.FormatFloat(r.duration/float64(r.count), "%.3f"))
	}
	fmt.Fprintln(w, st.String())

	if opts.perfetto != "" {
		if err := exportSpans(opts.perfetto, spans, span.WritePerfetto); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d spans as Perfetto trace-event JSON to %s\n", len(spans), opts.perfetto)
	}
	if opts.otlp != "" {
		if err := exportSpans(opts.otlp, spans, span.WriteOTLP); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d spans as OTLP-style JSON to %s\n", len(spans), opts.otlp)
	}
	return nil
}

// exportSpans writes one span export file through the given encoder.
func exportSpans(path string, spans []*span.Span, write func(io.Writer, []*span.Span) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// timelineHasData reports whether any class produced at least one finite
// windowed percentile — a guard the tests use.
func timelineHasData(tl *telemetry.Timeline) bool {
	for _, ct := range tl.PerClass {
		for _, v := range ct.P95 {
			if !math.IsNaN(v) {
				return true
			}
		}
	}
	return false
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceinfo: "+format+"\n", args...)
	os.Exit(1)
}
