package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hybridqos"
	"hybridqos/internal/span"
	"hybridqos/internal/telemetry"
	"hybridqos/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden output files")

// syntheticEvents is a tiny hand-built trace exercising every table the
// command prints: arrivals, served requests, fault events of all three kinds
// (including a class-less corrupted broadcast) and a pull completion.
func syntheticEvents() []trace.Event {
	return []trace.Event{
		{T: 0, Kind: trace.KindArrival, Item: 50, Class: 0},
		{T: 0.5, Kind: trace.KindArrival, Item: 51, Class: 1},
		{T: 1, Kind: trace.KindPushStart, Item: 1, Class: -1},
		{T: 2, Kind: trace.KindCorrupt, Item: 1, Class: -1, Push: true},
		{T: 3, Kind: trace.KindPullStart, Item: 50, Class: 0, Requests: 1},
		{T: 4, Kind: trace.KindPullComplete, Item: 50, Class: 0, Requests: 1},
		{T: 4, Kind: trace.KindServed, Class: 0, Arrival: 0},
		{T: 5, Kind: trace.KindPullStart, Item: 51, Class: 1, Requests: 1},
		{T: 6, Kind: trace.KindCorrupt, Item: 51, Class: 1, Requests: 1},
		{T: 6, Kind: trace.KindRetry, Item: 51, Class: 1, Attempt: 1},
		{T: 8, Kind: trace.KindShed, Item: 52, Class: 2},
		{T: 9, Kind: trace.KindPullComplete, Item: 51, Class: 1, Requests: 1},
		{T: 9, Kind: trace.KindServed, Class: 1, Arrival: 0.5},
		{T: 10, Kind: trace.KindArrival, Item: 52, Class: 2},
	}
}

// TestRunGolden pins the full text report for a fixed synthetic trace,
// including the fault-events-by-class table.
func TestRunGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, syntheticEvents(), options{classes: 3, buckets: 2}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// clusterEvents is a hand-built two-cell trace: cell-stamped arrivals, an
// accepted handoff in each direction, and refusals of every reason.
func clusterEvents() []trace.Event {
	return []trace.Event{
		{T: 0, Kind: trace.KindArrival, Item: 50, Class: 0, Cell: 0},
		{T: 0.5, Kind: trace.KindArrival, Item: 51, Class: 1, Cell: 1},
		{T: 1, Kind: trace.KindArrival, Item: 52, Class: 2, Cell: 1},
		{T: 2, Kind: trace.KindHandoff, Item: 50, Class: 0, Cell: 1},
		{T: 3, Kind: trace.KindHandoffRefused, Item: 90, Class: 2, Cell: 0, Reason: "no-item"},
		{T: 4, Kind: trace.KindHandoff, Item: 51, Class: 1, Cell: 0},
		{T: 5, Kind: trace.KindHandoffRefused, Item: 52, Class: 2, Cell: 0, Reason: "expired"},
		{T: 5.5, Kind: trace.KindHandoffRefused, Item: 60, Class: 1, Cell: 1, Reason: "shed"},
		{T: 6, Kind: trace.KindServed, Class: 0, Arrival: 0, Cell: 1},
		{T: 6.5, Kind: trace.KindHandoffRefused, Item: 61, Class: 0, Cell: 1, Reason: "horizon"},
		{T: 7, Kind: trace.KindArrival, Item: 53, Class: 0, Cell: 0},
	}
}

// TestRunGoldenCluster pins the report for a multi-cell trace, including
// the per-cell breakdown table.
func TestRunGoldenCluster(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, clusterEvents(), options{classes: 3, buckets: 2}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_cluster.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// spanEvents is a hand-built trace with span provenance: one pull-served
// request (with its enqueue score and the extraction decision that won) and
// one push-registered request that expired waiting.
func spanEvents() []trace.Event {
	return []trace.Event{
		{T: 0, Kind: trace.KindArrival, Item: 50, Class: 0},
		{T: 0, Kind: trace.KindSpanStart, Item: 50, Class: 0, Req: 7, Reason: trace.VerdictPull},
		{T: 0, Kind: trace.KindSpanEnqueue, Item: 50, Class: 0, Req: 7, Score: 2.5, Requests: 1},
		{T: 1, Kind: trace.KindDecision, Item: 50, Class: 0, Score: 2.5, RunnerUp: 51, RunnerUpScore: 1.25, Requests: 1},
		{T: 1, Kind: trace.KindPullStart, Item: 50, Class: 0, Requests: 1},
		{T: 2, Kind: trace.KindPullComplete, Item: 50, Class: 0, Requests: 1},
		{T: 2, Kind: trace.KindServed, Class: 0, Arrival: 0},
		{T: 2, Kind: trace.KindSpanEnd, Item: 50, Class: 0, Req: 7, Reason: trace.EndServed, Arrival: 0, Start: 1},
		{T: 3, Kind: trace.KindArrival, Item: 2, Class: 1},
		{T: 3, Kind: trace.KindSpanStart, Item: 2, Class: 1, Req: 8, Reason: trace.VerdictPush},
		{T: 5, Kind: trace.KindSpanEnd, Item: 2, Class: 1, Req: 8, Reason: trace.EndExpired, Arrival: 3},
	}
}

// TestRunGoldenSpans pins the -spans report: audit line, outcome table and
// segment table.
func TestRunGoldenSpans(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, spanEvents(), options{classes: 3, buckets: 2, spans: true}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_spans.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestSpansRequireSpanEvents pins the error for a trace recorded without
// -spans sampling.
func TestSpansRequireSpanEvents(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, syntheticEvents(), options{classes: 3, buckets: 2, spans: true})
	if err == nil || !strings.Contains(err.Error(), "no span events") {
		t.Fatalf("err = %v, want missing-span-events error", err)
	}
}

// TestSpanExportFiles drives the -perfetto / -otlp export paths and
// schema-validates both artefacts.
func TestSpanExportFiles(t *testing.T) {
	dir := t.TempDir()
	pf := filepath.Join(dir, "spans-perfetto.json")
	ot := filepath.Join(dir, "spans-otlp.json")
	var buf bytes.Buffer
	if err := run(&buf, spanEvents(), options{classes: 3, buckets: 2, perfetto: pf, otlp: ot}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(pf)
	if err != nil {
		t.Fatal(err)
	}
	if err := span.ValidatePerfetto(data); err != nil {
		t.Errorf("perfetto export invalid: %v", err)
	}
	otBytes, err := os.ReadFile(ot)
	if err != nil {
		t.Fatal(err)
	}
	var otlp struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []map[string]any `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(otBytes, &otlp); err != nil {
		t.Fatalf("otlp export not JSON: %v", err)
	}
	if len(otlp.ResourceSpans) == 0 || len(otlp.ResourceSpans[0].ScopeSpans) == 0 ||
		len(otlp.ResourceSpans[0].ScopeSpans[0].Spans) == 0 {
		t.Error("otlp export carries no spans")
	}
	for _, want := range []string{"wrote 2 spans as Perfetto", "wrote 2 spans as OTLP"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestCellTableSkippedOnSingleCellTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, syntheticEvents(), options{classes: 3, buckets: 2}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Per-cell breakdown") {
		t.Error("per-cell table printed for a single-cell trace")
	}
}

func TestFaultTableSkippedOnCleanTrace(t *testing.T) {
	events := []trace.Event{
		{T: 0, Kind: trace.KindArrival, Item: 1, Class: 0},
		{T: 1, Kind: trace.KindServed, Class: 0, Arrival: 0},
	}
	var buf bytes.Buffer
	if err := run(&buf, events, options{classes: 3, buckets: 2}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Fault events") {
		t.Error("fault table printed for a trace with no fault events")
	}
}

func TestTimelineRequiresSnapshots(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, syntheticEvents(), options{classes: 3, buckets: 2, timeline: filepath.Join(t.TempDir(), "tl")})
	if err == nil || !strings.Contains(err.Error(), "no telemetry snapshots") {
		t.Fatalf("err = %v, want missing-snapshot error", err)
	}
}

// TestTimelineArtifacts drives the full pipeline: simulate a faulty run with
// telemetry, write its trace, and render the timeline artefacts from it.
func TestTimelineArtifacts(t *testing.T) {
	cfg := hybridqos.PaperConfig()
	cfg.Horizon = 4000
	cfg.Replications = 1
	cfg.Faults = &hybridqos.FaultsConfig{LossProb: 0.15, MaxRetries: 2}
	cfg.Telemetry = &hybridqos.TelemetryConfig{SnapshotEvery: 250}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.jsonl")
	if _, err := hybridqos.WriteTrace(cfg, tracePath); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}

	prefix := filepath.Join(dir, "tl")
	var buf bytes.Buffer
	if err := run(&buf, events, options{classes: 3, buckets: 4, timeline: prefix}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "snapshot audit: 16 snapshots reproduced exactly") {
		t.Errorf("missing audit line in:\n%s", out)
	}
	csvBytes, err := os.ReadFile(prefix + ".csv")
	if err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(string(csvBytes), "\n", 2)[0]
	for _, col := range []string{"t", "queue_requests", "Class-A_p95", "Class-C_served"} {
		if !strings.Contains(head, col) {
			t.Errorf("CSV header %q missing column %q", head, col)
		}
	}
	for _, p := range []string{prefix + "-delay.svg", prefix + "-queue.svg"} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(b), "<svg") {
			t.Errorf("%s is not an SVG", p)
		}
	}

	tl, err := telemetry.BuildTimeline(trace.Snapshots(events))
	if err != nil {
		t.Fatal(err)
	}
	if !timelineHasData(tl) {
		t.Error("timeline has no finite windowed percentiles at all")
	}
}
