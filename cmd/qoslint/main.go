// qoslint walks the repository and enforces the simulator's determinism,
// allocation and concurrency-containment contracts (see internal/lint).
// Packages are analysed in parallel on internal/workpool; diagnostics are
// sorted by (file, line, column, rule) so output is identical at any worker
// count. It exits 1 if anything is found, so it can gate CI alongside go vet.
//
// Usage:
//
//	go run ./cmd/qoslint ./...                  # lint the whole module
//	go run ./cmd/qoslint ./internal/sched       # lint one package
//	go run ./cmd/qoslint -format sarif ./...    # SARIF 2.1.0 for code scanning
//	go run ./cmd/qoslint -format json ./...     # machine-readable findings
//
// A finding is waived in place with //lint:allow <rule> <reason> on the
// offending line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hybridqos/internal/lint"
)

func main() {
	root := flag.String("root", "", "module root (default: nearest dir with go.mod, walking up from cwd)")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: qoslint [-root dir] [-format text|json|sarif] <packages>\n")
		fmt.Fprintf(flag.CommandLine.Output(), "e.g.   qoslint -format sarif ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	moduleRoot, err := resolveRoot(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qoslint:", err)
		os.Exit(2)
	}

	runner := &lint.Runner{Root: moduleRoot}
	diags, err := runner.Run(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qoslint:", err)
		os.Exit(2)
	}

	switch *format {
	case "text":
		for _, d := range diags {
			rel := d.Pos.Filename
			if r, err := filepath.Rel(moduleRoot, rel); err == nil {
				rel = r
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", rel, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
		}
	case "json":
		if err := lint.WriteJSON(os.Stdout, moduleRoot, diags); err != nil {
			fmt.Fprintln(os.Stderr, "qoslint:", err)
			os.Exit(2)
		}
	case "sarif":
		// The SARIF log is emitted whether or not there are findings, so CI
		// always has a file to upload; the exit code still gates the job.
		if err := lint.WriteSARIF(os.Stdout, moduleRoot, diags); err != nil {
			fmt.Fprintln(os.Stderr, "qoslint:", err)
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "qoslint: unknown -format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}

	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "qoslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// resolveRoot returns the explicit root, or walks up from the working
// directory to the nearest go.mod.
func resolveRoot(explicit string) (string, error) {
	if explicit != "" {
		return filepath.Abs(explicit)
	}
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s (use -root)", dir)
		}
		dir = parent
	}
}
