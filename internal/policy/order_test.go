package policy

import (
	"reflect"
	"sort"
	"testing"
)

// TestNamesStableOrder: registry listings feed error messages, CLI help and
// report headers, so they must be sorted and identical call-to-call even
// though the backing store is a map. A regression here means some code path
// started leaking map iteration order.
func TestNamesStableOrder(t *testing.T) {
	for _, tc := range []struct {
		kind  string
		names func() []string
	}{
		{"pull", PullNames},
		{"push", PushNames},
	} {
		first := tc.names()
		if len(first) == 0 {
			t.Fatalf("%s registry is empty", tc.kind)
		}
		if !sort.StringsAreSorted(first) {
			t.Errorf("%sNames() not sorted: %v", tc.kind, first)
		}
		for i := 0; i < 10; i++ {
			if again := tc.names(); !reflect.DeepEqual(first, again) {
				t.Fatalf("%sNames() unstable across calls: %v then %v", tc.kind, first, again)
			}
		}
	}
}

// TestUnknownErrorListsSortedNames: the Known list carried by an
// UnknownError comes from the same map; it must be sorted too so the error
// text is deterministic.
func TestUnknownErrorListsSortedNames(t *testing.T) {
	_, err := NewPull("no-such-policy", Params{})
	ue, ok := err.(*UnknownError)
	if !ok {
		t.Fatalf("want *UnknownError, got %T (%v)", err, err)
	}
	if !sort.StringsAreSorted(ue.Known) {
		t.Errorf("UnknownError.Known not sorted: %v", ue.Known)
	}
	if !reflect.DeepEqual(ue.Known, PullNames()) {
		t.Errorf("UnknownError.Known = %v, want PullNames() = %v", ue.Known, PullNames())
	}
}
