// Package policy is the named registry that decouples the simulation engine
// from its scheduling policies. The engine (internal/core) asks for policies
// by name; this package owns the name → constructor mapping for both policy
// kinds:
//
//   - pull policies (sched.PullPolicy): score the pull queue. Built-ins:
//     gamma (the paper's γ(α) importance factor — the default), stretch,
//     priority, fcfs, edf, mrf, rxw, classic-stretch.
//   - push schedulers (sched.PushScheduler): order the broadcast cycle.
//     Built-ins: roundrobin (the paper's flat cycle — the default),
//     broadcast-disk, square-root, none (pure pull).
//
// Factories receive a Params snapshot taken from the engine configuration,
// so a policy can consume whichever knobs it needs (α for gamma, the TTL
// for edf, the catalog and cutoff for push programs) while ignoring the
// rest. External packages can add policies with RegisterPull/RegisterPush;
// registration is safe for concurrent use and duplicate names are typed
// errors, as are lookups of unknown names.
package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hybridqos/internal/catalog"
	"hybridqos/internal/sched"
)

// Params carries the engine-configuration knobs a policy factory may need.
// Each factory reads only the fields relevant to its policy.
type Params struct {
	// Alpha is the γ(α) stretch/priority mixing fraction (pull: gamma).
	Alpha float64
	// TTL is the request time-to-live; edf derives deadlines from it
	// (≤ 0 means no deadlines and edf degenerates to fcfs order).
	TTL float64
	// Disks is the broadcast-disk count (push: broadcast-disk); 0 selects
	// the default of 3 disks.
	Disks int
	// Catalog is the item catalog (push schedulers that weight by
	// popularity or length need it).
	Catalog *catalog.Catalog
	// Cutoff is the push set size K (push schedulers broadcast ranks 1..K).
	Cutoff int
}

// DefaultDisks is the broadcast-disk count used when Params.Disks is 0.
const DefaultDisks = 3

// Default policy names: the paper's own configuration.
const (
	DefaultPull = "gamma"
	DefaultPush = "roundrobin"
)

// PullFactory builds a pull policy from engine parameters.
type PullFactory func(p Params) (sched.PullPolicy, error)

// PushFactory builds a push scheduler from engine parameters.
type PushFactory func(p Params) (sched.PushScheduler, error)

// UnknownError reports a lookup of a name that is not registered.
type UnknownError struct {
	Kind  string // "pull" or "push"
	Name  string
	Known []string
}

func (e *UnknownError) Error() string {
	return fmt.Sprintf("policy: unknown %s policy %q (known: %s)",
		e.Kind, e.Name, strings.Join(e.Known, ", "))
}

// DuplicateError reports a registration under an already-taken name.
type DuplicateError struct {
	Kind string
	Name string
}

func (e *DuplicateError) Error() string {
	return fmt.Sprintf("policy: duplicate %s policy registration %q", e.Kind, e.Name)
}

// registry is a concurrency-safe name → factory map with alias support.
type registry[F any] struct {
	kind      string
	mu        sync.RWMutex
	factories map[string]F
	aliases   map[string]string
}

func newRegistry[F any](kind string) *registry[F] {
	return &registry[F]{
		kind:      kind,
		factories: make(map[string]F),
		aliases:   make(map[string]string),
	}
}

func (r *registry[F]) taken(name string) bool {
	if _, ok := r.factories[name]; ok {
		return true
	}
	_, ok := r.aliases[name]
	return ok
}

func (r *registry[F]) register(name string, f F) error {
	if name == "" {
		return fmt.Errorf("policy: empty %s policy name", r.kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.taken(name) {
		return &DuplicateError{Kind: r.kind, Name: name}
	}
	r.factories[name] = f
	return nil
}

func (r *registry[F]) alias(alias, canonical string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.taken(alias) {
		panic(&DuplicateError{Kind: r.kind, Name: alias})
	}
	if _, ok := r.factories[canonical]; !ok {
		panic(fmt.Sprintf("policy: alias %q to unknown %s policy %q", alias, r.kind, canonical))
	}
	r.aliases[alias] = canonical
}

func (r *registry[F]) lookup(name string) (F, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if canonical, ok := r.aliases[name]; ok {
		name = canonical
	}
	f, ok := r.factories[name]
	if !ok {
		var zero F
		return zero, &UnknownError{Kind: r.kind, Name: name, Known: r.namesLocked()}
	}
	return f, nil
}

// namesLocked returns the sorted canonical names; callers hold at least a
// read lock.
func (r *registry[F]) namesLocked() []string {
	names := make([]string, 0, len(r.factories))
	for name := range r.factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (r *registry[F]) known(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.taken(name)
}

func (r *registry[F]) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.namesLocked()
}

var (
	pulls  = newRegistry[PullFactory]("pull")
	pushes = newRegistry[PushFactory]("push")
)

// RegisterPull adds a pull-policy factory under a new name. Registering an
// empty or already-taken name is a typed error.
func RegisterPull(name string, f PullFactory) error { return pulls.register(name, f) }

// RegisterPush adds a push-scheduler factory under a new name.
func RegisterPush(name string, f PushFactory) error { return pushes.register(name, f) }

// NewPull builds the named pull policy. An empty name selects DefaultPull.
func NewPull(name string, p Params) (sched.PullPolicy, error) {
	if name == "" {
		name = DefaultPull
	}
	f, err := pulls.lookup(name)
	if err != nil {
		return nil, err
	}
	return f(p)
}

// NewPush builds the named push scheduler. An empty name selects DefaultPush.
func NewPush(name string, p Params) (sched.PushScheduler, error) {
	if name == "" {
		name = DefaultPush
	}
	f, err := pushes.lookup(name)
	if err != nil {
		return nil, err
	}
	return f(p)
}

// KnownPull reports whether a pull-policy name (or alias) is registered;
// the empty string names the default and is always known.
func KnownPull(name string) bool { return name == "" || pulls.known(name) }

// KnownPush reports whether a push-scheduler name (or alias) is registered.
func KnownPush(name string) bool { return name == "" || pushes.known(name) }

// PullNames returns the sorted canonical pull-policy names.
func PullNames() []string { return pulls.names() }

// PushNames returns the sorted canonical push-scheduler names.
func PushNames() []string { return pushes.names() }

func mustRegisterPull(name string, f PullFactory) {
	if err := pulls.register(name, f); err != nil {
		panic(fmt.Errorf("policy: built-in pull registration: %w", err))
	}
}

func mustRegisterPush(name string, f PushFactory) {
	if err := pushes.register(name, f); err != nil {
		panic(fmt.Errorf("policy: built-in push registration: %w", err))
	}
}

func init() {
	// Pull policies. The paper's γ(α) and its two degenerate α endpoints,
	// plus the baselines it is evaluated against.
	mustRegisterPull("gamma", func(p Params) (sched.PullPolicy, error) {
		return sched.NewImportanceFactor(p.Alpha)
	})
	mustRegisterPull("stretch", func(Params) (sched.PullPolicy, error) {
		return sched.StretchOptimal{}, nil
	})
	mustRegisterPull("priority", func(Params) (sched.PullPolicy, error) {
		return sched.PriorityOnly{}, nil
	})
	mustRegisterPull("fcfs", func(Params) (sched.PullPolicy, error) {
		return sched.FCFS{}, nil
	})
	mustRegisterPull("edf", func(p Params) (sched.PullPolicy, error) {
		return sched.EDF{TTL: p.TTL}, nil
	})
	mustRegisterPull("mrf", func(Params) (sched.PullPolicy, error) {
		return sched.MRF{}, nil
	})
	mustRegisterPull("rxw", func(Params) (sched.PullPolicy, error) {
		return sched.RxW{}, nil
	})
	mustRegisterPull("classic-stretch", func(Params) (sched.PullPolicy, error) {
		return sched.ClassicStretch{}, nil
	})
	// Historical facade spellings.
	pulls.alias("importance-factor", "gamma")
	pulls.alias("stretch-optimal", "stretch")
	pulls.alias("priority-only", "priority")

	// Push schedulers.
	mustRegisterPush("roundrobin", func(p Params) (sched.PushScheduler, error) {
		if p.Cutoff < 1 {
			return nil, fmt.Errorf("policy: roundrobin push needs cutoff ≥ 1, got %d", p.Cutoff)
		}
		return sched.NewFlatRoundRobin(p.Cutoff), nil
	})
	mustRegisterPush("broadcast-disk", func(p Params) (sched.PushScheduler, error) {
		disks := p.Disks
		if disks == 0 {
			disks = DefaultDisks
		}
		return sched.NewBroadcastDisk(p.Catalog, p.Cutoff, disks)
	})
	mustRegisterPush("square-root", func(p Params) (sched.PushScheduler, error) {
		return sched.NewSquareRootRule(p.Catalog, p.Cutoff)
	})
	mustRegisterPush("none", func(Params) (sched.PushScheduler, error) {
		return sched.NoPush{}, nil
	})
	pushes.alias("flat", "roundrobin")
	pushes.alias("square-root-rule", "square-root")
}
