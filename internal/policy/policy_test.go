package policy

import (
	"errors"
	"fmt"
	"testing"

	"hybridqos/internal/catalog"
	"hybridqos/internal/pullqueue"
	"hybridqos/internal/sched"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat, err := catalog.Generate(catalog.Config{
		D: 50, Theta: 0.6, MinLen: 1, MaxLen: 5,
		LengthWeights: catalog.PaperLengthWeights(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestBuiltinPullPolicies(t *testing.T) {
	p := Params{Alpha: 0.5, TTL: 100}
	for _, name := range PullNames() {
		pol, err := NewPull(name, p)
		if err != nil {
			t.Errorf("NewPull(%q): %v", name, err)
			continue
		}
		if pol.Name() == "" {
			t.Errorf("%q built a policy with an empty name", name)
		}
	}
	// Empty name resolves to the default (gamma with Params.Alpha).
	pol, err := NewPull("", p)
	if err != nil {
		t.Fatal(err)
	}
	gamma, ok := pol.(sched.ImportanceFactor)
	if !ok || gamma.Alpha != 0.5 {
		t.Fatalf("default pull policy = %#v, want ImportanceFactor{0.5}", pol)
	}
}

func TestBuiltinPushSchedulers(t *testing.T) {
	p := Params{Catalog: testCatalog(t), Cutoff: 20}
	for _, name := range PushNames() {
		ps, err := NewPush(name, p)
		if err != nil {
			t.Errorf("NewPush(%q): %v", name, err)
			continue
		}
		if ps.Name() == "" {
			t.Errorf("%q built a scheduler with an empty name", name)
		}
	}
	ps, err := NewPush("", p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ps.(*sched.FlatRoundRobin); !ok {
		t.Fatalf("default push scheduler = %#v, want FlatRoundRobin", ps)
	}
}

func TestAliasesResolve(t *testing.T) {
	p := Params{Alpha: 0.25, Catalog: testCatalog(t), Cutoff: 10}
	pol, err := NewPull("importance-factor", p)
	if err != nil {
		t.Fatal(err)
	}
	if g, ok := pol.(sched.ImportanceFactor); !ok || g.Alpha != 0.25 {
		t.Fatalf("alias importance-factor built %#v", pol)
	}
	ps, err := NewPush("flat", p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ps.(*sched.FlatRoundRobin); !ok {
		t.Fatalf("alias flat built %#v", ps)
	}
}

func TestUnknownNameError(t *testing.T) {
	var ue *UnknownError
	if _, err := NewPull("nonsense", Params{}); !errors.As(err, &ue) {
		t.Fatalf("pull error = %v, want UnknownError", err)
	} else if ue.Kind != "pull" || len(ue.Known) == 0 {
		t.Fatalf("UnknownError = %+v", ue)
	}
	if _, err := NewPush("nonsense", Params{}); !errors.As(err, &ue) {
		t.Fatalf("push error = %v, want UnknownError", err)
	}
	if KnownPull("nonsense") || KnownPush("nonsense") {
		t.Fatal("nonsense reported known")
	}
	if !KnownPull("gamma") || !KnownPull("importance-factor") ||
		!KnownPush("roundrobin") || !KnownPush("flat") || !KnownPush("none") {
		t.Fatal("built-in name reported unknown")
	}
}

func TestDuplicateRegistrationError(t *testing.T) {
	name := "test-dup-policy"
	f := func(Params) (sched.PullPolicy, error) { return sched.FCFS{}, nil }
	if err := RegisterPull(name, f); err != nil {
		t.Fatal(err)
	}
	var de *DuplicateError
	if err := RegisterPull(name, f); !errors.As(err, &de) {
		t.Fatalf("duplicate registration error = %v, want DuplicateError", err)
	}
	// Canonical and alias names are equally protected.
	if err := RegisterPull("gamma", f); !errors.As(err, &de) {
		t.Fatalf("re-registering gamma: %v", err)
	}
	if err := RegisterPull("importance-factor", f); !errors.As(err, &de) {
		t.Fatalf("re-registering alias: %v", err)
	}
	if err := RegisterPush("roundrobin", func(Params) (sched.PushScheduler, error) {
		return sched.NoPush{}, nil
	}); !errors.As(err, &de) {
		t.Fatalf("re-registering push: %v", err)
	}
	if err := RegisterPull("", f); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestExternalRegistrationUsable(t *testing.T) {
	name := "test-reverse-fcfs"
	if err := RegisterPull(name, func(Params) (sched.PullPolicy, error) {
		return reverseFCFS{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	pol, err := NewPull(name, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != "reverse-fcfs" {
		t.Fatalf("external policy Name = %q", pol.Name())
	}
}

type reverseFCFS struct{}

func (reverseFCFS) Name() string                                { return "reverse-fcfs" }
func (reverseFCFS) Score(e *pullqueue.Entry, _ float64) float64 { return e.FirstArrival }
func (reverseFCFS) TimeDependent() bool                         { return false }

func TestGammaFactoryValidatesAlpha(t *testing.T) {
	if _, err := NewPull("gamma", Params{Alpha: 1.5}); err == nil {
		t.Fatal("alpha 1.5 accepted")
	}
	var ae *pullqueue.AlphaError
	if _, err := NewPull("gamma", Params{Alpha: -0.1}); !errors.As(err, &ae) {
		t.Fatal("gamma factory error is not pullqueue.AlphaError")
	}
}

func TestPushFactoryParamValidation(t *testing.T) {
	cat := testCatalog(t)
	if _, err := NewPush("roundrobin", Params{Cutoff: 0}); err == nil {
		t.Fatal("roundrobin with cutoff 0 accepted")
	}
	if _, err := NewPush("broadcast-disk", Params{Catalog: cat, Cutoff: 0}); err == nil {
		t.Fatal("broadcast-disk with cutoff 0 accepted")
	}
	if _, err := NewPush("broadcast-disk", Params{Catalog: nil, Cutoff: 10}); err == nil {
		t.Fatal("broadcast-disk with nil catalog accepted")
	}
	// Disks 0 → default; explicit disks respected.
	for _, disks := range []int{0, 2, 5} {
		if _, err := NewPush("broadcast-disk", Params{Catalog: cat, Cutoff: 20, Disks: disks}); err != nil {
			t.Fatalf("broadcast-disk disks=%d: %v", disks, err)
		}
	}
}

func TestEDFFactoryThreadsTTL(t *testing.T) {
	pol, err := NewPull("edf", Params{TTL: 42})
	if err != nil {
		t.Fatal(err)
	}
	edf, ok := pol.(sched.EDF)
	if !ok || edf.TTL != 42 {
		t.Fatalf("edf policy = %#v, want EDF{TTL:42}", pol)
	}
	if !edf.TimeDependent() {
		t.Fatal("edf with TTL should be time-dependent")
	}
}

func TestNamesSortedAndStable(t *testing.T) {
	pullNames := PullNames()
	for i := 1; i < len(pullNames); i++ {
		if pullNames[i-1] >= pullNames[i] {
			t.Fatalf("PullNames not strictly sorted: %v", pullNames)
		}
	}
	for _, want := range []string{"gamma", "stretch", "priority", "fcfs", "edf", "mrf", "rxw", "classic-stretch"} {
		found := false
		for _, n := range pullNames {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in pull policy %q missing from PullNames %v", want, pullNames)
		}
	}
	pushNames := PushNames()
	for _, want := range []string{"roundrobin", "broadcast-disk", "square-root", "none"} {
		found := false
		for _, n := range pushNames {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in push scheduler %q missing from PushNames %v", want, pushNames)
		}
	}
}

func TestConcurrentRegistrationAndLookup(t *testing.T) {
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			name := fmt.Sprintf("test-conc-%d", i)
			_ = RegisterPull(name, func(Params) (sched.PullPolicy, error) {
				return sched.FCFS{}, nil
			})
			for j := 0; j < 100; j++ {
				if _, err := NewPull("gamma", Params{Alpha: 0.5}); err != nil {
					t.Errorf("lookup during registration: %v", err)
					return
				}
				_ = PullNames()
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
