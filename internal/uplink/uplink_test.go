package uplink

import (
	"math"
	"testing"

	"hybridqos/internal/rng"
)

func TestUnlimited(t *testing.T) {
	var u Unlimited
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		if !u.TryRequest(float64(i), r) {
			t.Fatal("unlimited channel lost a request")
		}
	}
	if u.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestNewTokenBucketValidation(t *testing.T) {
	cases := [][2]float64{{0, 5}, {-1, 5}, {math.NaN(), 5}, {1, 0.5}, {1, math.Inf(1)}}
	for i, c := range cases {
		if _, err := NewTokenBucket(c[0], c[1]); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTokenBucketBurstThenThrottle(t *testing.T) {
	tb, err := NewTokenBucket(1, 3) // 1/unit sustained, burst 3
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	// Burst of 5 at t=0: first 3 admitted, next 2 lost.
	admitted := 0
	for i := 0; i < 5; i++ {
		if tb.TryRequest(0, r) {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("burst admitted %d, want 3", admitted)
	}
	if tb.Lost != 2 || tb.Admitted != 3 {
		t.Fatalf("counts: admitted %d lost %d", tb.Admitted, tb.Lost)
	}
	// After 1 unit, exactly one more token has accumulated.
	if !tb.TryRequest(1, r) {
		t.Fatal("refilled token not granted")
	}
	if tb.TryRequest(1, r) {
		t.Fatal("second request at t=1 should be lost")
	}
	if got := tb.LossRate(); math.Abs(got-3.0/7) > 1e-12 {
		t.Fatalf("LossRate = %g", got)
	}
}

func TestTokenBucketSustainedRate(t *testing.T) {
	tb, _ := NewTokenBucket(2, 4)
	r := rng.New(2)
	// Offer 4/unit for 1000 units: about half must be lost.
	admitted := 0
	const offered = 4000
	for i := 0; i < offered; i++ {
		if tb.TryRequest(float64(i)*0.25, r) {
			admitted++
		}
	}
	rate := float64(admitted) / 1000
	if math.Abs(rate-2) > 0.05 {
		t.Fatalf("sustained admitted rate %g, want ~2", rate)
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	tb, _ := NewTokenBucket(1, 2)
	r := rng.New(3)
	// Long idle: tokens must cap at burst (2), not accumulate unboundedly.
	_ = tb.TryRequest(0, r)
	admitted := 0
	for i := 0; i < 10; i++ {
		if tb.TryRequest(1000, r) {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("after long idle admitted %d, want burst cap 2", admitted)
	}
}

func TestTokenBucketBackwardsTimeClamped(t *testing.T) {
	tb, _ := NewTokenBucket(1, 2)
	r := rng.New(4)
	tb.TryRequest(5, r) // spends 1 of 2 burst tokens
	// A backwards clock is clamped to t=5: the second token is still there,
	// and no tokens may accrue for the negative interval.
	if !tb.TryRequest(4, r) {
		t.Fatal("clamped request should spend the remaining burst token")
	}
	if tb.TryRequest(4, r) {
		t.Fatal("backwards time must not accrue tokens")
	}
	if tb.TryRequest(math.NaN(), r) {
		t.Fatal("NaN time must not accrue tokens")
	}
	// The clock resumes from the clamped time, not the bogus one.
	if !tb.TryRequest(6, r) {
		t.Fatal("token not refilled after clock recovered")
	}
}

func TestNewSlottedAlohaValidation(t *testing.T) {
	cases := [][2]float64{{0, 1}, {-1, 1}, {1, 0}, {math.NaN(), 1}, {1, math.Inf(1)}}
	for i, c := range cases {
		if _, err := NewSlottedAloha(c[0], c[1]); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSlottedAlohaLossGrowsWithLoad(t *testing.T) {
	lossAt := func(gapPerReq float64) float64 {
		sa, err := NewSlottedAloha(0.2, 50)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(5)
		now := 0.0
		for i := 0; i < 50000; i++ {
			now += gapPerReq
			sa.TryRequest(now, r)
		}
		return sa.LossRate()
	}
	light := lossAt(1.0)  // 1 req/unit → G ≈ 0.2
	heavy := lossAt(0.05) // 20 req/unit → G ≈ 4
	if !(light < heavy) {
		t.Fatalf("loss not increasing with load: %g vs %g", light, heavy)
	}
	// Light load: loss ≈ 1 − e^{−0.2} ≈ 0.18.
	if math.Abs(light-(1-math.Exp(-0.2))) > 0.05 {
		t.Fatalf("light-load loss %g, want ~%g", light, 1-math.Exp(-0.2))
	}
	// Heavy load: loss ≈ 1 − e^{−4} ≈ 0.98.
	if heavy < 0.9 {
		t.Fatalf("heavy-load loss %g, want ≳0.9", heavy)
	}
}

func TestSlottedAlohaBackwardsTimeClamped(t *testing.T) {
	sa, _ := NewSlottedAloha(0.1, 10)
	r := rng.New(6)
	sa.TryRequest(5, r)
	before := sa.Attempts
	// A backwards clock must not panic or corrupt the load estimate.
	sa.TryRequest(4, r)
	sa.TryRequest(math.NaN(), r)
	if sa.Attempts != before+2 {
		t.Fatalf("clamped attempts not counted: %d", sa.Attempts)
	}
	if math.IsNaN(sa.rate) || sa.rate < 0 {
		t.Fatalf("load estimate corrupted: %g", sa.rate)
	}
	if sa.last != 5 {
		t.Fatalf("clock resumed from %g, want clamp at 5", sa.last)
	}
}

func TestLossRateEmpty(t *testing.T) {
	tb, _ := NewTokenBucket(1, 1)
	sa, _ := NewSlottedAloha(1, 1)
	if tb.LossRate() != 0 || sa.LossRate() != 0 {
		t.Fatal("unused channels report nonzero loss")
	}
}
