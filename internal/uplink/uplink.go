// Package uplink models the shared request back-channel of the asymmetric
// wireless cell. The hybrid-broadcast literature the paper builds on
// (Acharya–Franklin–Zdonik '97) gives clients only "a limited back-channel
// capacity to make requests": requests that cannot obtain uplink capacity
// never reach the server's pull queue. Two contention models are provided:
//
//   - TokenBucket — a deterministic leaky-bucket admission: sustained rate
//     plus bounded burst; the standard abstraction for a dedicated
//     request channel.
//   - SlottedAloha — random-access contention: a request transmits in a
//     slot and succeeds with probability e^{−G}, where G is the current
//     offered load estimated by an exponentially weighted moving average.
//
// Both are deterministic given the simulation's RNG stream.
package uplink

import (
	"fmt"
	"math"

	"hybridqos/internal/rng"
)

// Channel decides whether a client request reaches the server.
type Channel interface {
	// Name identifies the model in reports.
	Name() string
	// TryRequest attempts to deliver a request at simulated time now.
	// It returns false when the request is lost on the uplink.
	TryRequest(now float64, r *rng.Source) bool
}

// Unlimited always delivers (the paper's implicit assumption).
type Unlimited struct{}

// Name implements Channel.
func (Unlimited) Name() string { return "unlimited" }

// TryRequest implements Channel.
func (Unlimited) TryRequest(float64, *rng.Source) bool { return true }

// TokenBucket admits up to Rate requests per broadcast unit with a burst
// allowance of Burst.
type TokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   float64
	// Admitted and Lost count outcomes.
	Admitted, Lost int64
}

// NewTokenBucket validates and builds the bucket, initially full.
func NewTokenBucket(rate, burst float64) (*TokenBucket, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("uplink: invalid rate %g", rate)
	}
	if burst < 1 || math.IsNaN(burst) || math.IsInf(burst, 0) {
		return nil, fmt.Errorf("uplink: burst %g below 1", burst)
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}, nil
}

// Name implements Channel.
func (tb *TokenBucket) Name() string {
	return fmt.Sprintf("token-bucket(rate=%g, burst=%g)", tb.rate, tb.burst)
}

// TryRequest implements Channel. A now earlier than the previous call (a
// non-monotonic caller clock) or NaN is clamped to the previous time: no
// tokens accrue for the bogus interval, but the bucket stays usable.
func (tb *TokenBucket) TryRequest(now float64, _ *rng.Source) bool {
	if now < tb.last || math.IsNaN(now) {
		now = tb.last
	}
	tb.tokens = math.Min(tb.burst, tb.tokens+(now-tb.last)*tb.rate)
	tb.last = now
	if tb.tokens >= 1 {
		tb.tokens--
		tb.Admitted++
		return true
	}
	tb.Lost++
	return false
}

// LossRate returns Lost/(Admitted+Lost), 0 when unused.
func (tb *TokenBucket) LossRate() float64 {
	total := tb.Admitted + tb.Lost
	if total == 0 {
		return 0
	}
	return float64(tb.Lost) / float64(total)
}

// SlottedAloha succeeds with probability e^{−G}: G is the offered load in
// requests per slot, tracked by an EWMA over a sliding rate estimate.
type SlottedAloha struct {
	slotTime float64
	ewmaTau  float64
	rate     float64 // EWMA'd request rate (per broadcast unit)
	last     float64
	// Attempts and Lost count outcomes.
	Attempts, Lost int64
}

// NewSlottedAloha builds the channel: slotTime is the uplink slot duration
// in broadcast units, ewmaTau the load-estimator time constant.
func NewSlottedAloha(slotTime, ewmaTau float64) (*SlottedAloha, error) {
	if slotTime <= 0 || math.IsNaN(slotTime) || math.IsInf(slotTime, 0) {
		return nil, fmt.Errorf("uplink: invalid slot time %g", slotTime)
	}
	if ewmaTau <= 0 || math.IsNaN(ewmaTau) || math.IsInf(ewmaTau, 0) {
		return nil, fmt.Errorf("uplink: invalid EWMA tau %g", ewmaTau)
	}
	return &SlottedAloha{slotTime: slotTime, ewmaTau: ewmaTau}, nil
}

// Name implements Channel.
func (sa *SlottedAloha) Name() string {
	return fmt.Sprintf("slotted-aloha(slot=%g)", sa.slotTime)
}

// TryRequest implements Channel. A now earlier than the previous call (a
// non-monotonic caller clock) or NaN is clamped to the previous time, so the
// load estimate sees a zero-length gap instead of a negative one.
func (sa *SlottedAloha) TryRequest(now float64, r *rng.Source) bool {
	if now < sa.last || math.IsNaN(now) {
		now = sa.last
	}
	// Update the EWMA rate estimate: an arrival contributes 1/τ, the
	// existing estimate decays by e^{−Δt/τ}.
	dt := now - sa.last
	sa.rate = sa.rate*math.Exp(-dt/sa.ewmaTau) + 1/sa.ewmaTau
	sa.last = now

	sa.Attempts++
	g := sa.rate * sa.slotTime // offered load per slot
	if r.Float64() < math.Exp(-g) {
		return true
	}
	sa.Lost++
	return false
}

// LossRate returns Lost/Attempts, 0 when unused.
func (sa *SlottedAloha) LossRate() float64 {
	if sa.Attempts == 0 {
		return 0
	}
	return float64(sa.Lost) / float64(sa.Attempts)
}
