package analytic

import (
	"math"
	"testing"

	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/multichannel"
)

func TestErlangCErrors(t *testing.T) {
	if _, err := ErlangC(0, 1); err == nil {
		t.Fatal("c=0 accepted")
	}
	if _, err := ErlangC(2, -1); err == nil {
		t.Fatal("negative load accepted")
	}
	if _, err := ErlangC(2, math.NaN()); err == nil {
		t.Fatal("NaN load accepted")
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// c=1: C(1,a) = a (waiting probability of M/M/1 is ρ).
	for _, a := range []float64{0.1, 0.5, 0.9} {
		got, err := ErlangC(1, a)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-a) > 1e-12 {
			t.Fatalf("C(1,%g) = %g, want %g", a, got, a)
		}
	}
	// Textbook: C(2, 1) = 1/3.
	got, err := ErlangC(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("C(2,1) = %g, want 1/3", got)
	}
	// Saturation and zero.
	if c, _ := ErlangC(2, 2); c != 1 {
		t.Fatalf("saturated C = %g", c)
	}
	if c, _ := ErlangC(3, 0); c != 0 {
		t.Fatalf("zero-load C = %g", c)
	}
}

func TestMMcWaitReducesToMM1(t *testing.T) {
	lambda, mu := 2.0, 5.0
	w, err := MMcWait(1, lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	want := FCFSWait(lambda, mu)
	if math.Abs(w-want) > 1e-12 {
		t.Fatalf("MMcWait(1) = %g, want M/M/1 %g", w, want)
	}
}

func TestMMcWaitMoreServersFaster(t *testing.T) {
	prev := math.Inf(1)
	for c := 1; c <= 5; c++ {
		w, err := MMcWait(c, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		if w >= prev {
			t.Fatalf("wait not decreasing in servers: c=%d w=%g prev=%g", c, w, prev)
		}
		prev = w
	}
	if w, _ := MMcWait(2, 10, 4); !math.IsInf(w, 1) {
		t.Fatalf("saturated M/M/c wait = %g", w)
	}
}

func TestMultiChannelModelTracksSimulation(t *testing.T) {
	cat := catalog.MustGenerate(catalog.PaperConfig(0.6, 42))
	cl := clients.Must(clients.PaperConfig())
	model := Model{Catalog: cat, Classes: cl, LambdaTotal: 5, Alpha: 0.5, Variant: Refined}
	for _, split := range []struct{ push, pull int }{{1, 3}, {2, 2}, {3, 1}} {
		res, err := model.MultiChannelAccessTime(50, MultiChannelParams{
			PushChannels: split.push, PullChannels: split.pull,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := multichannel.Run(multichannel.Config{
			Catalog:        cat,
			Classes:        cl,
			Lambda:         5,
			Cutoff:         50,
			Alpha:          0.5,
			PushChannels:   split.push,
			PullChannels:   split.pull,
			Horizon:        30000,
			WarmupFraction: 0.1,
			Seed:           3,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim := m.OverallMeanDelay()
		if dev := math.Abs(res.Overall-sim) / sim; dev > 0.30 {
			t.Errorf("split %d/%d: model %g vs sim %g (%.0f%% off)",
				split.push, split.pull, res.Overall, sim, dev*100)
		}
	}
}

func TestMultiChannelModelValidation(t *testing.T) {
	cat := catalog.MustGenerate(catalog.PaperConfig(0.6, 42))
	cl := clients.Must(clients.PaperConfig())
	model := Model{Catalog: cat, Classes: cl, LambdaTotal: 5, Alpha: 0.5, Variant: Refined}
	if _, err := model.MultiChannelAccessTime(50, MultiChannelParams{PushChannels: 0, PullChannels: 2}); err == nil {
		t.Fatal("no push channels accepted with push set")
	}
	if _, err := model.MultiChannelAccessTime(50, MultiChannelParams{PushChannels: 2, PullChannels: 0}); err == nil {
		t.Fatal("no pull channels accepted with pull set")
	}
	if _, err := model.MultiChannelAccessTime(101, MultiChannelParams{PushChannels: 1, PullChannels: 1}); err == nil {
		t.Fatal("cutoff out of range accepted")
	}
}
