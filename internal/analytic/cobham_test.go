package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCobhamErrors(t *testing.T) {
	if _, err := CobhamWaits(nil); err == nil {
		t.Fatal("empty class list accepted")
	}
	bad := [][]PriorityClass{
		{{Lambda: -1, Mu: 1}},
		{{Lambda: math.NaN(), Mu: 1}},
		{{Lambda: 1, Mu: 0}},
		{{Lambda: 1, Mu: math.Inf(1)}},
	}
	for i, cs := range bad {
		if _, err := CobhamWaits(cs); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCobhamSingleClassIsMM1(t *testing.T) {
	// One class: Cobham reduces to M/M/1 Wq = ρ/(μ−λ) ... specifically
	// residual/(1−ρ) = (ρ/μ)/(1−ρ) = λ/(μ(μ−λ)).
	lambda, mu := 2.0, 5.0
	w, err := CobhamWaits([]PriorityClass{{lambda, mu}})
	if err != nil {
		t.Fatal(err)
	}
	want := FCFSWait(lambda, mu)
	if math.Abs(w[0]-want) > 1e-12 {
		t.Fatalf("single-class Cobham %g != M/M/1 %g", w[0], want)
	}
}

func TestCobhamTextbookTwoClass(t *testing.T) {
	// λ1=λ2=1, μ=4 for both: ρ1=ρ2=0.25, residual = 2·(0.25/4) = 0.125.
	// W1 = 0.125/(1·0.75) = 1/6; W2 = 0.125/(0.75·0.5) = 1/3.
	w, err := CobhamWaits([]PriorityClass{{1, 4}, {1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-1.0/6) > 1e-12 || math.Abs(w[1]-1.0/3) > 1e-12 {
		t.Fatalf("waits = %v, want [1/6, 1/3]", w)
	}
}

func TestCobhamHigherClassWaitsLess(t *testing.T) {
	w, err := CobhamWaits([]PriorityClass{{0.5, 2}, {0.5, 2}, {0.5, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !(w[0] < w[1] && w[1] < w[2]) {
		t.Fatalf("waits not increasing by class: %v", w)
	}
}

func TestCobhamSaturation(t *testing.T) {
	// σ2 = 0.5+0.6 > 1: class 2 saturated, class 1 still finite.
	w, err := CobhamWaits([]PriorityClass{{1, 2}, {1.2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(w[0], 1) {
		t.Fatal("class 1 should be stable")
	}
	if !math.IsInf(w[1], 1) {
		t.Fatalf("class 2 should saturate, got %g", w[1])
	}
	// Everything saturated when even class 1 overloads.
	w2, err := CobhamWaits([]PriorityClass{{3, 2}, {0.1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(w2[0], 1) || !math.IsInf(w2[1], 1) {
		t.Fatalf("expected both saturated: %v", w2)
	}
}

func TestCobhamConservationLaw(t *testing.T) {
	// Kleinrock's conservation law for M/M/1 with identical service rates:
	// Σ ρ_i·W_i is invariant under priority ordering and equals ρ·W_FCFS
	// with aggregate parameters.
	classes := []PriorityClass{{0.4, 3}, {0.7, 3}, {0.3, 3}}
	w, err := CobhamWaits(classes)
	if err != nil {
		t.Fatal(err)
	}
	var lhs, lambda float64
	for i, c := range classes {
		lhs += c.Lambda / c.Mu * w[i]
		lambda += c.Lambda
	}
	rho := lambda / 3
	rhs := rho * FCFSWait(lambda, 3)
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("conservation law violated: Σρ_iW_i=%g, ρ·W_FCFS=%g", lhs, rhs)
	}
}

func TestOverallPullWait(t *testing.T) {
	classes := []PriorityClass{{1, 4}, {1, 4}}
	w, _ := CobhamWaits(classes)
	overall, err := OverallPullWait(classes, w)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*w[0] + 0.5*w[1]
	if math.Abs(overall-want) > 1e-12 {
		t.Fatalf("overall %g, want %g", overall, want)
	}
	if _, err := OverallPullWait(classes, w[:1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	zero, err := OverallPullWait([]PriorityClass{{0, 1}, {0, 1}}, []float64{5, 5})
	if err != nil || zero != 0 {
		t.Fatalf("zero-arrival overall = %g, %v", zero, err)
	}
}

func TestFCFSWait(t *testing.T) {
	if w := FCFSWait(1, 2); math.Abs(w-0.5) > 1e-12 {
		t.Fatalf("FCFSWait(1,2) = %g, want 0.5", w)
	}
	if !math.IsInf(FCFSWait(2, 2), 1) {
		t.Fatal("saturated FCFS not Inf")
	}
	if FCFSWait(0, 1) != 0 {
		t.Fatal("zero-arrival FCFS wait not 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FCFSWait(-1,1) did not panic")
		}
	}()
	FCFSWait(-1, 1)
}

// Property: for stable random systems, waits are positive, increasing by
// class, and satisfy the conservation law.
func TestPropertyCobham(t *testing.T) {
	check := func(l1Raw, l2Raw, l3Raw uint8) bool {
		mu := 10.0
		l := []float64{
			float64(l1Raw%30)/10 + 0.1,
			float64(l2Raw%30)/10 + 0.1,
			float64(l3Raw%30)/10 + 0.1,
		}
		if (l[0]+l[1]+l[2])/mu >= 0.95 {
			return true // skip near-saturated cases
		}
		classes := []PriorityClass{{l[0], mu}, {l[1], mu}, {l[2], mu}}
		w, err := CobhamWaits(classes)
		if err != nil {
			return false
		}
		if !(w[0] > 0 && w[0] <= w[1] && w[1] <= w[2]) {
			return false
		}
		var lhs float64
		for i := range classes {
			lhs += l[i] / mu * w[i]
		}
		rho := (l[0] + l[1] + l[2]) / mu
		rhs := rho * FCFSWait(l[0]+l[1]+l[2], mu)
		return math.Abs(lhs-rhs) < 1e-6*(1+rhs)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCobhamMG1ReducesToExponential(t *testing.T) {
	// With ES2 = 2·ES² the M/G/1 form must equal the M/M/1 CobhamWaits.
	mu := 4.0
	es := 1 / mu
	classes := []PriorityClass{{1, mu}, {0.8, mu}}
	general := []GeneralPriorityClass{
		{Lambda: 1, ES: es, ES2: 2 * es * es},
		{Lambda: 0.8, ES: es, ES2: 2 * es * es},
	}
	a, err := CobhamWaits(classes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CobhamWaitsMG1(general)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("class %d: MM1 %g vs MG1-exponential %g", i, a[i], b[i])
		}
	}
}

func TestCobhamMG1DeterministicHalvesResidual(t *testing.T) {
	es := 0.25
	exp := []GeneralPriorityClass{{Lambda: 1, ES: es, ES2: 2 * es * es}}
	det := []GeneralPriorityClass{{Lambda: 1, ES: es, ES2: es * es}}
	we, err := CobhamWaitsMG1(exp)
	if err != nil {
		t.Fatal(err)
	}
	wd, err := CobhamWaitsMG1(det)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wd[0]*2-we[0]) > 1e-12 {
		t.Fatalf("deterministic wait %g not half of exponential %g", wd[0], we[0])
	}
}

func TestCobhamMG1Validation(t *testing.T) {
	if _, err := CobhamWaitsMG1(nil); err == nil {
		t.Fatal("empty accepted")
	}
	bad := [][]GeneralPriorityClass{
		{{Lambda: -1, ES: 1, ES2: 2}},
		{{Lambda: 1, ES: 0, ES2: 0}},
		{{Lambda: 1, ES: 1, ES2: 0.5}}, // E[S²] < E[S]² is impossible
		{{Lambda: 1, ES: 1, ES2: math.NaN()}},
	}
	for i, cs := range bad {
		if _, err := CobhamWaitsMG1(cs); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCobhamMG1Saturation(t *testing.T) {
	w, err := CobhamWaitsMG1([]GeneralPriorityClass{
		{Lambda: 1, ES: 0.5, ES2: 0.25},
		{Lambda: 2, ES: 0.5, ES2: 0.25}, // σ2 = 1.5: saturated
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(w[0], 1) || !math.IsInf(w[1], 1) {
		t.Fatalf("saturation wrong: %v", w)
	}
}
