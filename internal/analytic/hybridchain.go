// Package analytic implements the paper's performance models (section 4):
// the push/pull birth–death chain of §4.1, the two-priority-class pull chain
// of §4.2.1 (solved numerically — the printed z-transform solution is
// under-determined), Cobham's non-preemptive multi-class waiting times of
// §4.2.2 (Eq. 18), and the hybrid expected-access-time model (Eq. 19) in
// three variants: the paper's literal formulas, a request-level engineering
// correction, and an item-level refined model that captures the multicast
// effect (one transmission satisfies every pending request) and therefore
// tracks the simulator — the curve used for Figure 7's "analytical" series.
package analytic

import (
	"fmt"
	"math"

	"hybridqos/internal/markov"
)

// HybridChainParams parameterises the §4.1 birth–death model of the hybrid
// server: Poisson arrivals into the pull system at rate Lambda, exponential
// push service at rate Mu1 and pull service at rate Mu2, truncated at C
// pull customers.
type HybridChainParams struct {
	Lambda, Mu1, Mu2 float64
	C                int
}

// Validate reports whether the parameters are usable.
func (p HybridChainParams) Validate() error {
	for _, v := range []struct {
		name string
		x    float64
	}{{"lambda", p.Lambda}, {"mu1", p.Mu1}, {"mu2", p.Mu2}} {
		if v.x <= 0 || math.IsNaN(v.x) || math.IsInf(v.x, 0) {
			return fmt.Errorf("analytic: invalid %s %g", v.name, v.x)
		}
	}
	if p.C < 1 {
		return fmt.Errorf("analytic: truncation C=%d", p.C)
	}
	return nil
}

// HybridStationary is the solved §4.1 chain.
type HybridStationary struct {
	// P00 is the idle probability p(0,0).
	P00 float64
	// PullBusy is the stationary probability the server is in the pull
	// phase (paper: ≈ ρ = λ/μ₂ in the untruncated chain).
	PullBusy float64
	// ELPull is E[L_pull], the expected number of customers in the pull
	// system (Eq. 5's left side, solved numerically).
	ELPull float64
	// NPushPhase is the paper's N: the expected pull-queue length
	// conditioned on the push phase being in service, times the push-phase
	// probability (the unnormalised partial mean the paper differentiates).
	NPushPhase float64
	// WPull is the expected pull waiting time via Little's law,
	// E[L_pull]/λ_effective (λ_effective accounts for the truncation loss,
	// negligible for adequate C).
	WPull float64
	// LossProb is the probability an arrival finds the chain at the
	// truncation boundary (diagnostic: increase C when this is material).
	LossProb float64
}

// SolveHybridChain builds the §4.1 chain and solves it exactly.
//
// States: (i, j) with i = pull customers 0..C and j ∈ {push=0, pull=1};
// (0, 1) is unreachable (the pull phase needs a customer). Transitions per
// the paper's flow-balance equations (2)–(3):
//
//	(i,0) → (i+1,0) rate λ   (arrival during push phase)
//	(i,1) → (i+1,1) rate λ   (arrival during pull phase)
//	(i,0) → (i,1)   rate μ₁  for i ≥ 1 (push completes, pull starts)
//	(i,1) → (i−1,0) rate μ₂  (pull completes, customer departs)
//
// At (0,0) push completions recycle into the flat broadcast (a self-loop,
// which does not affect the stationary law), matching the paper's out-rate
// of λ at (0,0).
func SolveHybridChain(p HybridChainParams) (HybridStationary, error) {
	if err := p.Validate(); err != nil {
		return HybridStationary{}, err
	}
	// State encoding: push states 0..C are (i,0); pull states C+1..2C are
	// (i,1) for i = 1..C.
	push := func(i int) int { return i }
	pull := func(i int) int { return p.C + i } // i >= 1
	ch := markov.NewChain(2*p.C + 1)
	for i := 0; i <= p.C; i++ {
		if i < p.C {
			ch.AddRate(push(i), push(i+1), p.Lambda)
		}
		if i >= 1 {
			ch.AddRate(push(i), pull(i), p.Mu1)
			if i < p.C {
				ch.AddRate(pull(i), pull(i+1), p.Lambda)
			}
			ch.AddRate(pull(i), push(i-1), p.Mu2)
		}
	}
	pi, err := ch.Stationary()
	if err != nil {
		return HybridStationary{}, fmt.Errorf("analytic: hybrid chain: %w", err)
	}

	var out HybridStationary
	out.P00 = pi[push(0)]
	for i := 1; i <= p.C; i++ {
		out.PullBusy += pi[pull(i)]
		out.ELPull += float64(i) * (pi[push(i)] + pi[pull(i)])
		out.NPushPhase += float64(i) * pi[push(i)]
	}
	out.LossProb = pi[push(p.C)] + pi[pull(p.C)]
	lambdaEff := p.Lambda * (1 - out.LossProb)
	if lambdaEff > 0 {
		out.WPull = out.ELPull / lambdaEff
	} else {
		out.WPull = math.Inf(1)
	}
	return out, nil
}

// ClosedFormIdle returns the paper's closed-form idle probability
// p(0,0) = 1 − ρ − ρ/f with ρ = λ/μ₂ and f = μ₁/μ₂ (§4.1). It can be
// negative when the chain is unstable — callers should treat a non-positive
// result as "no idle capacity".
func ClosedFormIdle(lambda, mu1, mu2 float64) float64 {
	rho := lambda / mu2
	f := mu1 / mu2
	return 1 - rho - rho/f
}
