package analytic

import (
	"fmt"
	"math"
)

// ErlangC returns the probability that an arrival to an M/M/c queue waits
// (all c servers busy), with total offered load a = λ/μ Erlangs. It returns
// 1 when the system is saturated (a ≥ c). Computed with the standard
// numerically stable recurrence on the Erlang-B blocking probability:
// B(0,a)=1, B(k,a) = a·B(k−1,a)/(k + a·B(k−1,a)); C = B/(1 − ρ(1−B)).
func ErlangC(c int, a float64) (float64, error) {
	if c < 1 {
		return 0, fmt.Errorf("analytic: servers %d", c)
	}
	if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
		return 0, fmt.Errorf("analytic: offered load %g", a)
	}
	if a == 0 {
		return 0, nil
	}
	if a >= float64(c) {
		return 1, nil
	}
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho*(1-b)), nil
}

// MMcWait returns the expected queueing delay of an M/M/c queue with
// arrival rate lambda and per-server service rate mu:
// Wq = C(c, a)/(c·μ − λ). +Inf when saturated.
func MMcWait(c int, lambda, mu float64) (float64, error) {
	if mu <= 0 || math.IsNaN(mu) || math.IsInf(mu, 0) {
		return 0, fmt.Errorf("analytic: service rate %g", mu)
	}
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return 0, fmt.Errorf("analytic: arrival rate %g", lambda)
	}
	a := lambda / mu
	if a >= float64(c) {
		return math.Inf(1), nil
	}
	pc, err := ErlangC(c, a)
	if err != nil {
		return 0, err
	}
	return pc / (float64(c)*mu - lambda), nil
}

// MultiChannelParams feeds the multi-channel access-time model.
type MultiChannelParams struct {
	// PushChannels and PullChannels split the downlink; each channel runs
	// at rate 1/(PushChannels+PullChannels).
	PushChannels, PullChannels int
}

// MultiChannelAccessTime predicts the overall expected access time of the
// multi-channel hybrid system (internal/multichannel) using the same
// item-level fixed point as the single-channel refined model, adapted to
// c parallel pull servers via Erlang-C:
//
//   - push: channel p cycles K/P items at rate 1/n, so a push request waits
//     half its partition's cycle ≈ (K/P)·L̄push·n/2 plus the transmission;
//   - pull: item entries form an M/M/c queue over the PullChannels servers,
//     each serving one item of mean length L̄pull in n·L̄pull time.
//
// The fixed point solves W = Wq_{M/M/c}(A(W)) with the same saturating
// item-entry rate A(W) = Σ r_i/(1+r_i·W) as the single-channel model.
func (m Model) MultiChannelAccessTime(k int, p MultiChannelParams) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if k < 0 || k > m.Catalog.D() {
		return Result{}, fmt.Errorf("analytic: cutoff %d out of [0,%d]", k, m.Catalog.D())
	}
	if k >= 1 && p.PushChannels < 1 {
		return Result{}, fmt.Errorf("analytic: push set needs push channels")
	}
	if k < m.Catalog.D() && p.PullChannels < 1 {
		return Result{}, fmt.Errorf("analytic: pull set needs pull channels")
	}
	n := float64(p.PushChannels + p.PullChannels)
	if n < 1 {
		return Result{}, fmt.Errorf("analytic: no channels")
	}

	// Push wait: partitioned flat cycles, each at rate 1/n.
	pushW := 0.0
	if k >= 1 {
		mass := m.Catalog.PushMass(k)
		if mass > 0 {
			cycle := m.Catalog.PushCycleLength(k) / float64(p.PushChannels) * n
			pushW = cycle/2 + m.Catalog.WeightedPushLength(k)/mass*n
		}
	}

	// Pull wait via M/M/c fixed point.
	waits := make([]float64, m.Classes.NumClasses())
	pullService := 0.0
	if m.Catalog.PullMass(k) > 0 {
		d := m.Catalog.D()
		rates := make([]float64, 0, d-k)
		lengths := make([]float64, 0, d-k)
		for i := k + 1; i <= d; i++ {
			rates = append(rates, m.LambdaTotal*m.Catalog.Prob(i))
			lengths = append(lengths, m.Catalog.Length(i))
		}
		entry := func(w float64) (a, meanLen, cs2 float64) {
			var lenSum, len2Sum float64
			for j, r := range rates {
				e := r / (1 + r*w)
				a += e
				lenSum += e * lengths[j]
				len2Sum += e * lengths[j] * lengths[j]
			}
			if a > 0 {
				meanLen = lenSum / a
				m2 := len2Sum / a
				if meanLen > 0 {
					cs2 = m2/(meanLen*meanLen) - 1
				}
			}
			return a, meanLen, cs2
		}
		// Allen–Cunneen G/G/c correction: transmission times are
		// deterministic given the item, so the service-time variability is
		// only the length mix's CV² — well below the exponential CV² = 1
		// the plain M/M/c assumes.
		wq := func(w float64) (float64, error) {
			a, meanLen, cs2 := entry(w)
			mu := 1 / (meanLen * n) // per-channel item service rate
			base, err := MMcWait(p.PullChannels, a, mu)
			if err != nil {
				return 0, err
			}
			return base * (1 + cs2) / 2, nil
		}
		g := func(w float64) float64 {
			v, err := wq(w)
			if err != nil || math.IsInf(v, 1) {
				return math.Inf(1)
			}
			return v - w
		}
		lo, hi := 0.0, 1.0
		for g(hi) > 0 && hi < 1e9 {
			hi *= 2
		}
		for iter := 0; iter < 200 && hi-lo > 1e-9*(1+hi); iter++ {
			mid := (lo + hi) / 2
			if g(mid) > 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		w := (lo + hi) / 2
		_, meanLen, _ := entry(w)
		pullService = meanLen * n
		// Residual correction, as in the single-channel refined model: a
		// request whose item is already queued waits only ≈ half the item's
		// remaining wait.
		lambdaPull := m.LambdaTotal * m.Catalog.PullMass(k)
		var ubar float64
		for _, r := range rates {
			ubar += r / lambdaPull * (r * w / (1 + r*w))
		}
		wReq := w * (1 - ubar/2)
		for c := range waits {
			// Class split follows the single-channel γ-shift argument; at
			// the model's level of fidelity the per-class shifts are the
			// same mechanism, so reuse the aggregate here (multi-channel
			// evaluation focuses on the split question, not class split).
			waits[c] = wReq
		}
	}
	return m.assemble(k, pushW, pullService, waits), nil
}
