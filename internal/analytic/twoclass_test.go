package analytic

import (
	"math"
	"testing"
)

func TestTwoClassValidate(t *testing.T) {
	bad := []TwoClassParams{
		{Lambda1: -1, Lambda2: 1, Mu: 1, C: 10},
		{Lambda1: 0, Lambda2: 0, Mu: 1, C: 10},
		{Lambda1: 1, Lambda2: 1, Mu: 0, C: 10},
		{Lambda1: 1, Lambda2: 1, Mu: 1, C: 1},
		{Lambda1: math.NaN(), Lambda2: 1, Mu: 1, C: 10},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d validated: %+v", i, p)
		}
	}
}

func TestTwoClassMatchesCobham(t *testing.T) {
	// The exact truncated chain's waits should match Cobham's formula
	// (plus a service time 1/μ, since the chain measures SYSTEM time)
	// for a stable system with generous truncation.
	cases := []TwoClassParams{
		{Lambda1: 1, Lambda2: 1, Mu: 4, C: 60},
		{Lambda1: 0.5, Lambda2: 1.5, Mu: 4, C: 60},
		{Lambda1: 2, Lambda2: 0.5, Mu: 4, C: 60},
	}
	for _, p := range cases {
		res, err := SolveTwoClassChain(p)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		cw, err := CobhamWaits([]PriorityClass{{p.Lambda1, p.Mu}, {p.Lambda2, p.Mu}})
		if err != nil {
			t.Fatal(err)
		}
		want1 := cw[0] + 1/p.Mu
		want2 := cw[1] + 1/p.Mu
		if math.Abs(res.W1-want1) > 0.02*want1 {
			t.Errorf("%+v: W1 chain %g vs Cobham %g", p, res.W1, want1)
		}
		if math.Abs(res.W2-want2) > 0.02*want2 {
			t.Errorf("%+v: W2 chain %g vs Cobham %g", p, res.W2, want2)
		}
	}
}

func TestTwoClassPriorityOrdering(t *testing.T) {
	res, err := SolveTwoClassChain(TwoClassParams{Lambda1: 1, Lambda2: 1, Mu: 3, C: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.W1 < res.W2) {
		t.Fatalf("class 1 (priority) waits %g >= class 2 %g", res.W1, res.W2)
	}
	if res.L1 <= 0 || res.L2 <= 0 {
		t.Fatalf("queue lengths: %g, %g", res.L1, res.L2)
	}
}

func TestTwoClassIdleMatchesMM1(t *testing.T) {
	// Total idle probability equals that of an M/M/1 with aggregate λ.
	p := TwoClassParams{Lambda1: 0.8, Lambda2: 1.2, Mu: 4, C: 60}
	res, err := SolveTwoClassChain(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (p.Lambda1+p.Lambda2)/p.Mu
	if math.Abs(res.Idle-want) > 0.01 {
		t.Fatalf("idle %g, want ~%g", res.Idle, want)
	}
}

func TestTwoClassZeroClassTwo(t *testing.T) {
	p := TwoClassParams{Lambda1: 1, Lambda2: 0, Mu: 3, C: 40}
	res, err := SolveTwoClassChain(p)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.W2) {
		t.Fatalf("W2 with zero arrivals = %g, want NaN", res.W2)
	}
	// Reduces to plain M/M/1 system time 1/(μ−λ).
	want := 1 / (p.Mu - p.Lambda1)
	if math.Abs(res.W1-want) > 0.02*want {
		t.Fatalf("W1 %g, want M/M/1 %g", res.W1, want)
	}
}

func TestTwoClassHigherLoadSlower(t *testing.T) {
	a, err := SolveTwoClassChain(TwoClassParams{Lambda1: 0.5, Lambda2: 0.5, Mu: 4, C: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveTwoClassChain(TwoClassParams{Lambda1: 1.5, Lambda2: 1.5, Mu: 4, C: 50})
	if err != nil {
		t.Fatal(err)
	}
	if b.W1 <= a.W1 || b.W2 <= a.W2 {
		t.Fatalf("heavier load not slower: %+v vs %+v", a, b)
	}
}
