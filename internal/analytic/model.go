package analytic

import (
	"fmt"
	"math"

	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
)

// Variant selects how the hybrid access time (Eq. 19) is evaluated.
type Variant int

const (
	// Literal evaluates the paper's formulas verbatim: μ₁ = Σ_{i≤K} P_i·L_i
	// and μ₂ = Σ_{i>K} P_i·L_i used directly as rates (assumption 2), the
	// push term (1/2μ₁)·Σ_{i≤K} L_i·P_i, and request-level Cobham waits.
	// Documented in DESIGN.md as internally inconsistent — it is provided
	// so the discrepancy is reproducible, not because it predicts well.
	Literal Variant = iota
	// Engineering is the request-level correction: push wait = half the
	// actual flat cycle Σ_{i≤K} L_i, pull service rate = 1/(mean pull item
	// length + mean interleaved push transmission), Cobham per-class waits.
	// Still treats every request as a separate service (no multicast), so
	// it saturates at high load.
	Engineering
	// Refined is the item-level model: the pull queue holds DISTINCT items,
	// one transmission satisfies all pending requests (multicast), and the
	// item entry rate is found by a fixed point on the item waiting time.
	// Per-class differentiation comes from Cobham over governing-class
	// streams blended by α. This is the variant that tracks the simulator
	// (Figure 7).
	Refined
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Literal:
		return "literal"
	case Engineering:
		return "engineering"
	case Refined:
		return "refined"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Model evaluates expected access times for the hybrid scheduler.
type Model struct {
	// Catalog is the item database.
	Catalog *catalog.Catalog
	// Classes is the service classification.
	Classes *clients.Classification
	// LambdaTotal is the aggregate request rate λ′ (paper: 5).
	LambdaTotal float64
	// Alpha is the stretch/priority mixing fraction of Eq. 1.
	Alpha float64
	// Variant selects the evaluation mode.
	Variant Variant
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	if m.Catalog == nil {
		return fmt.Errorf("analytic: nil catalog")
	}
	if m.Classes == nil {
		return fmt.Errorf("analytic: nil classification")
	}
	if m.LambdaTotal <= 0 || math.IsNaN(m.LambdaTotal) || math.IsInf(m.LambdaTotal, 0) {
		return fmt.Errorf("analytic: invalid lambda %g", m.LambdaTotal)
	}
	if m.Alpha < 0 || m.Alpha > 1 || math.IsNaN(m.Alpha) {
		return fmt.Errorf("analytic: alpha %g outside [0,1]", m.Alpha)
	}
	if m.Variant < Literal || m.Variant > Refined {
		return fmt.Errorf("analytic: unknown variant %d", int(m.Variant))
	}
	return nil
}

// ClassDelay is one class's predicted performance at a given cutoff.
type ClassDelay struct {
	// Class is the service class.
	Class clients.Class
	// Wait is the expected access time (request arrival to end of item
	// transmission) for the class, in broadcast units.
	Wait float64
	// Cost is the prioritised cost q_c · Wait (§5.3).
	Cost float64
}

// Result is the model evaluated at one cutoff point.
type Result struct {
	// K is the cutoff.
	K int
	// Overall is the class-probability-weighted expected access time.
	Overall float64
	// PerClass holds each class's delay and prioritised cost.
	PerClass []ClassDelay
	// TotalCost is Σ_c q_c · Wait_c, the quantity Figures 5–6 minimise.
	TotalCost float64
	// PushWait and PullWait decompose the overall delay (diagnostics).
	PushWait, PullWait float64
}

// AccessTime evaluates the model at cutoff k (0 ≤ k ≤ D).
func (m Model) AccessTime(k int) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if k < 0 || k > m.Catalog.D() {
		return Result{}, fmt.Errorf("analytic: cutoff %d out of [0,%d]", k, m.Catalog.D())
	}
	switch m.Variant {
	case Literal:
		return m.literal(k)
	case Engineering:
		return m.engineering(k)
	default:
		return m.refined(k)
	}
}

// pushWait returns the expected access time of a push request under the flat
// schedule: half the broadcast cycle to the item's next appearance, plus the
// popularity-weighted transmission time of the item itself.
func (m Model) pushWait(k int) float64 {
	if k == 0 {
		return 0
	}
	mass := m.Catalog.PushMass(k)
	if mass == 0 {
		return 0
	}
	return m.Catalog.PushCycleLength(k)/2 + m.Catalog.WeightedPushLength(k)/mass
}

// perClassLambdas splits a total arrival rate by class probability.
func (m Model) perClassLambdas(total float64) []float64 {
	probs := m.Classes.Probs()
	out := make([]float64, len(probs))
	for c, p := range probs {
		out[c] = total * p
	}
	return out
}

// assemble builds a Result from per-class pull waits and the push wait.
func (m Model) assemble(k int, pushW, pullService float64, pullWaits []float64) Result {
	pushMass := m.Catalog.PushMass(k)
	pullMass := m.Catalog.PullMass(k)
	res := Result{K: k, PushWait: pushW}
	probs := m.Classes.Probs()
	weights := m.Classes.Weights()
	var pullAgg float64
	for c := range probs {
		pullTotal := pullWaits[c] + pullService
		wait := pushMass*pushW + pullMass*pullTotal
		cd := ClassDelay{Class: clients.Class(c), Wait: wait, Cost: weights[c] * wait}
		res.PerClass = append(res.PerClass, cd)
		res.Overall += probs[c] * wait
		res.TotalCost += cd.Cost
		pullAgg += probs[c] * pullTotal
	}
	res.PullWait = pullAgg
	return res
}

// literal evaluates Eq. 19 with the paper's own μ definitions.
func (m Model) literal(k int) (Result, error) {
	mu1 := m.Catalog.WeightedPushLength(k)
	mu2 := m.Catalog.WeightedPullLength(k)
	pullMass := m.Catalog.PullMass(k)
	lambdaPull := m.LambdaTotal * pullMass

	// Push term of Eq. 19: (1/2μ₁)·Σ_{i≤K} L_i·P_i. With μ₁ defined as that
	// same sum the term degenerates to 1/2 for any k ≥ 1 — reproduced
	// verbatim, per DESIGN.md inconsistency #1.
	pushW := 0.0
	if k > 0 && mu1 > 0 {
		pushW = m.Catalog.WeightedPushLength(k) / (2 * mu1)
	}

	waits := make([]float64, m.Classes.NumClasses())
	if pullMass > 0 && mu2 > 0 {
		lams := m.perClassLambdas(lambdaPull)
		classes := make([]PriorityClass, len(lams))
		for c, l := range lams {
			classes[c] = PriorityClass{Lambda: l, Mu: mu2}
		}
		cw, err := CobhamWaits(classes)
		if err != nil {
			return Result{}, err
		}
		waits = cw
	}
	// Eq. 19 adds no explicit service time to the pull term.
	return m.assemble(k, pushW, 0, waits), nil
}

// engineering evaluates the request-level corrected model.
func (m Model) engineering(k int) (Result, error) {
	pushW := m.pushWait(k)
	pullMass := m.Catalog.PullMass(k)
	waits := make([]float64, m.Classes.NumClasses())
	pullService := 0.0
	if pullMass > 0 {
		pullService = m.Catalog.MeanPullServiceTime(k)
		// Each pull service is interleaved with one flat push transmission,
		// so the effective per-request service interval includes it.
		interleave := 0.0
		if k > 0 {
			interleave = m.Catalog.PushCycleLength(k) / float64(k)
		}
		mu := 1 / (pullService + interleave)
		lambdaPull := m.LambdaTotal * pullMass
		lams := m.perClassLambdas(lambdaPull)
		classes := make([]PriorityClass, len(lams))
		for c, l := range lams {
			classes[c] = PriorityClass{Lambda: l, Mu: mu}
		}
		cw, err := CobhamWaits(classes)
		if err != nil {
			return Result{}, err
		}
		fcfs := FCFSWait(lambdaPull, mu)
		for c := range waits {
			waits[c] = m.Alpha*fcfs + (1-m.Alpha)*cw[c]
		}
	}
	return m.assemble(k, pushW, pullService, waits), nil
}

// refinedState carries the fixed-point solution of the item-level model.
type refinedState struct {
	// W is the mean item waiting time in the pull queue (FCFS reference).
	W float64
	// A is the item entry rate into the pull queue.
	A float64
	// S is the pull service-opportunity rate (items per broadcast unit).
	S float64
	// UBar is the request-weighted probability the requested item is
	// already queued on arrival.
	UBar float64
	// MeanServedLen is the entry-rate-weighted mean length of served items.
	MeanServedLen float64
	// NBar is the mean number of requests satisfied per transmission.
	NBar float64
}

// solveRefined runs the fixed point described in DESIGN.md: item i (rank
// i > k) accrues requests at r_i = λ′·P_i; it is queued a fraction
// u_i = r_i·W/(1+r_i·W) of the time (renewal argument: cycles of idle
// 1/r_i then queued W); the queue's item entry rate is A(W) = Σ r_i/(1+r_i·W)
// and its service rate is one item per (mean pull length + mean interleaved
// push transmission). W must satisfy W = Wq_{M/M/1}(A(W), S). A(W) is
// decreasing and Wq is increasing in A, so bisection on W converges.
func (m Model) solveRefined(k int) refinedState {
	d := m.Catalog.D()
	pullMass := m.Catalog.PullMass(k)
	st := refinedState{}
	if pullMass == 0 || k == d {
		return st
	}
	rates := make([]float64, 0, d-k)
	lengths := make([]float64, 0, d-k)
	for i := k + 1; i <= d; i++ {
		rates = append(rates, m.LambdaTotal*m.Catalog.Prob(i))
		lengths = append(lengths, m.Catalog.Length(i))
	}
	interleave := 0.0
	if k > 0 {
		interleave = m.Catalog.PushCycleLength(k) / float64(k)
	}

	// Entry rate and served-length mix for a candidate W.
	entry := func(w float64) (a float64, meanLen float64) {
		var lenSum float64
		for j, r := range rates {
			e := r / (1 + r*w)
			a += e
			lenSum += e * lengths[j]
		}
		if a > 0 {
			meanLen = lenSum / a
		}
		return a, meanLen
	}
	// g(w) = Wq(A(w)) − w; g(0) ≥ 0, g(wMax) < 0 for large wMax.
	g := func(w float64) float64 {
		a, meanLen := entry(w)
		s := 1 / (meanLen + interleave)
		if a >= s {
			return math.Inf(1) // queue grows: required wait exceeds w
		}
		return a/(s*(s-a)) - w
	}
	lo, hi := 0.0, 1.0
	for g(hi) > 0 && hi < 1e9 {
		hi *= 2
	}
	for iter := 0; iter < 200 && hi-lo > 1e-9*(1+hi); iter++ {
		mid := (lo + hi) / 2
		if g(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	st.W = (lo + hi) / 2
	st.A, st.MeanServedLen = entry(st.W)
	st.S = 1 / (st.MeanServedLen + interleave)
	// Request-weighted queued probability.
	var ubar float64
	for _, r := range rates {
		ui := r * st.W / (1 + r*st.W)
		ubar += r / (m.LambdaTotal * pullMass) * ui
	}
	st.UBar = ubar
	if st.A > 0 {
		st.NBar = m.LambdaTotal * pullMass / st.A
	}
	return st
}

// governingProbs returns, for a transmission clearing nBar pending requests
// with i.i.d. classes, the probability that the governing (highest) class is
// c: g_c = (1−Σ_{j<c} p_j)^n̄ − (1−Σ_{j≤c} p_j)^n̄.
func (m Model) governingProbs(nBar float64) []float64 {
	probs := m.Classes.Probs()
	g := make([]float64, len(probs))
	if nBar < 1 {
		nBar = 1
	}
	cum := 0.0
	prevTail := 1.0 // (1 - cum_{<c})^nBar
	for c, p := range probs {
		cum += p
		tail := math.Pow(1-cum, nBar)
		g[c] = prevTail - tail
		prevTail = tail
	}
	return g
}

// effectivePushWait returns the expected access time of a push request
// accounting for pull interleaving: when the pull queue is busy, each push
// slot is followed by a pull transmission, stretching the broadcast cycle.
// With item throughput A and mean served pull length L̄p, the push-slot rate
// is n_p = (1 − A·L̄p)/L̄push and one full rotation of the K push items takes
// K/n_p broadcast units.
func (m Model) effectivePushWait(k int, st refinedState) float64 {
	if k == 0 {
		return 0
	}
	mass := m.Catalog.PushMass(k)
	if mass == 0 {
		return 0
	}
	meanPushLen := m.Catalog.PushCycleLength(k) / float64(k)
	pullTime := st.A * st.MeanServedLen
	if pullTime >= 1 {
		pullTime = 0.999 // physically impossible; clamp defensively
	}
	cycle := float64(k) * meanPushLen / (1 - pullTime)
	return cycle/2 + m.Catalog.WeightedPushLength(k)/mass
}

// refined evaluates the item-level multicast model.
//
// Aggregate wait comes from the item-level fixed point (solveRefined), which
// knows about multicast clearing. Per-class differentiation comes from a
// γ-accumulation argument: a queued item's importance factor grows at rate
// r_i·(α/L_i² + (1−α)·q̄) as requests accrue (q̄ = mean client priority), and
// the item is served when γ crosses the prevailing service threshold. A
// tagged class-c request contributes α/L_i² + (1−α)·q_c — exceeding the
// average contribution by (1−α)(q_c − q̄) — so it advances its item's service
// by that increment divided by the item's γ growth rate:
//
//	W_c = wBase − (1−α)(q_c−q̄)/λ_pull · Σ_{i>K} 1/(α/L_i² + (1−α)·q̄)
//
// The request-probability-weighted mean of the shifts is exactly zero, so
// priority REDISTRIBUTES waiting between classes without changing the
// aggregate, which is what the simulator exhibits. α = 1 collapses every
// class to the same wait.
func (m Model) refined(k int) (Result, error) {
	st := m.solveRefined(k)
	pushW := m.effectivePushWait(k, st)
	waits := make([]float64, m.Classes.NumClasses())
	pullService := 0.0
	if m.Catalog.PullMass(k) > 0 {
		pullService = st.MeanServedLen
		// A request whose item is already queued (prob ū) waits only the
		// residual (≈ half) of the item's wait.
		wBase := st.W * (1 - st.UBar/2)
		lambdaPull := m.LambdaTotal * m.Catalog.PullMass(k)
		if wBase > 0 && lambdaPull > 0 {
			qbar := 0.0
			probs := m.Classes.Probs()
			weights := m.Classes.Weights()
			for c, p := range probs {
				qbar += p * weights[c]
			}
			sens := 0.0
			for i := k + 1; i <= m.Catalog.D(); i++ {
				l := m.Catalog.Length(i)
				sens += 1 / (m.Alpha/(l*l) + (1-m.Alpha)*qbar)
			}
			for c := range waits {
				shift := (1 - m.Alpha) * (weights[c] - qbar) / lambdaPull * sens
				w := wBase - shift
				// The shift is a first-order perturbation; keep waits
				// physical when it would overshoot.
				if w < wBase/20 {
					w = wBase / 20
				}
				waits[c] = w
			}
		}
	}
	return m.assemble(k, pushW, pullService, waits), nil
}

// Sweep evaluates the model at every cutoff in [kMin, kMax].
func (m Model) Sweep(kMin, kMax int) ([]Result, error) {
	if kMin < 0 || kMax > m.Catalog.D() || kMin > kMax {
		return nil, fmt.Errorf("analytic: sweep range [%d,%d] invalid for D=%d", kMin, kMax, m.Catalog.D())
	}
	out := make([]Result, 0, kMax-kMin+1)
	for k := kMin; k <= kMax; k++ {
		r, err := m.AccessTime(k)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// OptimalCutoff returns the cutoff in [kMin, kMax] minimising the given
// objective over the sweep.
func (m Model) OptimalCutoff(kMin, kMax int, objective func(Result) float64) (Result, error) {
	results, err := m.Sweep(kMin, kMax)
	if err != nil {
		return Result{}, err
	}
	best := results[0]
	bestVal := objective(best)
	for _, r := range results[1:] {
		if v := objective(r); v < bestVal {
			best, bestVal = r, v
		}
	}
	return best, nil
}

// ByOverallDelay is an OptimalCutoff objective minimising mean access time.
func ByOverallDelay(r Result) float64 { return r.Overall }

// ByTotalCost is an OptimalCutoff objective minimising Σ_c q_c·Wait_c, the
// paper's prioritised cost (§5.3).
func ByTotalCost(r Result) float64 { return r.TotalCost }
