package analytic

import (
	"fmt"
	"math"

	"hybridqos/internal/catalog"
)

// BlockingProbability returns the probability that one pull transmission of
// an item with the given length is blocked under the paper's bandwidth
// model: the demand is 1 + Poisson(demandMean·length) units and the
// transmission blocks when it exceeds the governing class's capacity:
//
//	P[block] = P[1 + Poisson(β·L) > B] = P[Poisson(β·L) > B − 1]
//
// computed from the Poisson CDF. capacity ≤ 1 blocks whenever the Poisson
// part is positive; capacity < 1 blocks always.
func BlockingProbability(demandMean, length, capacity float64) (float64, error) {
	if demandMean < 0 || math.IsNaN(demandMean) || math.IsInf(demandMean, 0) {
		return 0, fmt.Errorf("analytic: invalid demand mean %g", demandMean)
	}
	if length <= 0 || math.IsNaN(length) || math.IsInf(length, 0) {
		return 0, fmt.Errorf("analytic: invalid length %g", length)
	}
	if math.IsNaN(capacity) {
		return 0, fmt.Errorf("analytic: invalid capacity %g", capacity)
	}
	if capacity < 1 {
		return 1, nil
	}
	mean := demandMean * length
	if mean == 0 {
		return 0, nil // demand is exactly 1 ≤ capacity
	}
	// P[Poisson(mean) <= floor(capacity-1)] summed in log space for
	// stability at large means.
	kMax := int(math.Floor(capacity - 1))
	cdf := 0.0
	logTerm := -mean // ln P[X=0]
	for k := 0; ; k++ {
		cdf += math.Exp(logTerm)
		if k >= kMax {
			break
		}
		logTerm += math.Log(mean) - math.Log(float64(k+1))
	}
	if cdf > 1 {
		cdf = 1
	}
	return 1 - cdf, nil
}

// ExpectedBlockingRate returns the expected per-transmission blocking
// probability for a class with the given bandwidth capacity, averaged over
// the pull items it would serve (weighted by each item's popularity within
// the pull set). This is the analytic counterpart of the simulator's
// per-class BlockingRate under strict partitioning.
func ExpectedBlockingRate(cat *catalog.Catalog, k int, demandMean, capacity float64) (float64, error) {
	if cat == nil {
		return 0, fmt.Errorf("analytic: nil catalog")
	}
	if k < 0 || k >= cat.D() {
		return 0, fmt.Errorf("analytic: cutoff %d leaves no pull set for D=%d", k, cat.D())
	}
	mass := cat.PullMass(k)
	if mass == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := k + 1; i <= cat.D(); i++ {
		p, err := BlockingProbability(demandMean, cat.Length(i), capacity)
		if err != nil {
			return 0, err
		}
		sum += cat.Prob(i) / mass * p
	}
	return sum, nil
}
