package analytic

import (
	"fmt"
	"math"
)

// PriorityClass describes one class of the non-preemptive M/M/1 priority
// queue of §4.2.2: Poisson arrivals at rate Lambda, exponential service at
// rate Mu. Classes are ordered highest priority first.
type PriorityClass struct {
	Lambda, Mu float64
}

// CobhamWaits returns the expected QUEUEING delay (time from arrival to start
// of service) of each class in a non-preemptive head-of-line priority M/M/1
// queue, via the paper's Eq. 18 (Cobham's formula):
//
//	E[W⁽ⁱ⁾] = (Σ_j ρ_j/μ_j) / ((1−σ_{i−1})(1−σ_i)) ,  σ_i = Σ_{j≤i} ρ_j
//
// Classes whose σ_i ≥ 1 (and all lower classes) are saturated and get +Inf.
// An error is returned for invalid inputs only; saturation is expressible.
func CobhamWaits(classes []PriorityClass) ([]float64, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("analytic: no priority classes")
	}
	residual := 0.0 // Σ_j ρ_j/μ_j  (mean residual work in service)
	for i, c := range classes {
		if c.Lambda < 0 || math.IsNaN(c.Lambda) || math.IsInf(c.Lambda, 0) {
			return nil, fmt.Errorf("analytic: class %d invalid lambda %g", i, c.Lambda)
		}
		if c.Mu <= 0 || math.IsNaN(c.Mu) || math.IsInf(c.Mu, 0) {
			return nil, fmt.Errorf("analytic: class %d invalid mu %g", i, c.Mu)
		}
		rho := c.Lambda / c.Mu
		residual += rho / c.Mu
	}
	waits := make([]float64, len(classes))
	sigmaPrev := 0.0
	for i, c := range classes {
		sigma := sigmaPrev + c.Lambda/c.Mu
		if sigmaPrev >= 1 || sigma >= 1 {
			waits[i] = math.Inf(1)
		} else {
			waits[i] = residual / ((1 - sigmaPrev) * (1 - sigma))
		}
		sigmaPrev = sigma
	}
	return waits, nil
}

// OverallPullWait returns Eq. 18's aggregate E[W_pull^q]: the
// arrival-rate-weighted average of the per-class waits. Classes with zero
// arrival rate contribute nothing. Returns +Inf if any contributing class is
// saturated.
func OverallPullWait(classes []PriorityClass, waits []float64) (float64, error) {
	if len(classes) != len(waits) {
		return 0, fmt.Errorf("analytic: %d classes but %d waits", len(classes), len(waits))
	}
	total := 0.0
	for _, c := range classes {
		total += c.Lambda
	}
	if total == 0 {
		return 0, nil
	}
	sum := 0.0
	for i, c := range classes {
		if c.Lambda == 0 {
			continue
		}
		sum += c.Lambda / total * waits[i]
	}
	return sum, nil
}

// FCFSWait returns the M/M/1 FCFS expected queueing delay
// W_q = ρ/(μ−λ) = λ/(μ(μ−λ)); +Inf when λ ≥ μ. This is the α = 1 (priority
// ignored) degenerate case of the pull model.
func FCFSWait(lambda, mu float64) float64 {
	if lambda < 0 || mu <= 0 || math.IsNaN(lambda) || math.IsNaN(mu) {
		panic(fmt.Sprintf("analytic: FCFSWait(λ=%g, μ=%g)", lambda, mu))
	}
	if lambda >= mu {
		return math.Inf(1)
	}
	return lambda / (mu * (mu - lambda))
}

// GeneralPriorityClass describes one class of a non-preemptive M/G/1
// priority queue: Poisson arrivals at Lambda, mean service time ES and mean
// SQUARED service time ES2. The exponential case has ES2 = 2·ES².
type GeneralPriorityClass struct {
	Lambda, ES, ES2 float64
}

// CobhamWaitsMG1 is Cobham's formula for general service-time
// distributions: the residual work is R = Σ_j λ_j·E[S_j²]/2 and
//
//	E[W⁽ⁱ⁾] = R / ((1−σ_{i−1})(1−σ_i)) ,  σ_i = Σ_{j≤i} λ_j·E[S_j]
//
// Deterministic transmission times (the simulator's case: an item's length
// is fixed) have E[S²] = E[S]², which HALVES the residual relative to the
// exponential model — CobhamWaits with Mu = 1/ES is the E[S²] = 2·E[S]²
// special case of this function.
func CobhamWaitsMG1(classes []GeneralPriorityClass) ([]float64, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("analytic: no priority classes")
	}
	residual := 0.0
	for i, c := range classes {
		if c.Lambda < 0 || math.IsNaN(c.Lambda) || math.IsInf(c.Lambda, 0) {
			return nil, fmt.Errorf("analytic: class %d invalid lambda %g", i, c.Lambda)
		}
		if c.ES <= 0 || math.IsNaN(c.ES) || math.IsInf(c.ES, 0) {
			return nil, fmt.Errorf("analytic: class %d invalid E[S] %g", i, c.ES)
		}
		if c.ES2 < c.ES*c.ES || math.IsNaN(c.ES2) || math.IsInf(c.ES2, 0) {
			return nil, fmt.Errorf("analytic: class %d E[S²]=%g below E[S]²=%g", i, c.ES2, c.ES*c.ES)
		}
		residual += c.Lambda * c.ES2 / 2
	}
	waits := make([]float64, len(classes))
	sigmaPrev := 0.0
	for i, c := range classes {
		sigma := sigmaPrev + c.Lambda*c.ES
		if sigmaPrev >= 1 || sigma >= 1 {
			waits[i] = math.Inf(1)
		} else {
			waits[i] = residual / ((1 - sigmaPrev) * (1 - sigma))
		}
		sigmaPrev = sigma
	}
	return waits, nil
}
