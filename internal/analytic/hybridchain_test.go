package analytic

import (
	"math"
	"testing"
)

func TestHybridChainParamsValidate(t *testing.T) {
	bad := []HybridChainParams{
		{Lambda: 0, Mu1: 1, Mu2: 1, C: 10},
		{Lambda: 1, Mu1: -1, Mu2: 1, C: 10},
		{Lambda: 1, Mu1: 1, Mu2: math.NaN(), C: 10},
		{Lambda: 1, Mu1: 1, Mu2: 1, C: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d validated: %+v", i, p)
		}
	}
}

func TestHybridChainIdleMatchesClosedForm(t *testing.T) {
	// For a stable, lightly loaded chain with a generous truncation, the
	// numerical p(0,0) should approach the paper's 1 − ρ − ρ/f.
	cases := []HybridChainParams{
		{Lambda: 0.2, Mu1: 2, Mu2: 1, C: 400},
		{Lambda: 0.1, Mu1: 1, Mu2: 0.5, C: 400},
		{Lambda: 0.3, Mu1: 5, Mu2: 2, C: 400},
	}
	for _, p := range cases {
		got, err := SolveHybridChain(p)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		want := ClosedFormIdle(p.Lambda, p.Mu1, p.Mu2)
		if want <= 0 {
			t.Fatalf("test case %+v not stable in closed form", p)
		}
		if math.Abs(got.P00-want) > 0.02*want+1e-3 {
			t.Errorf("%+v: p(0,0) numeric %g vs closed form %g", p, got.P00, want)
		}
		if got.LossProb > 1e-6 {
			t.Errorf("%+v: truncation loss %g too high for the comparison", p, got.LossProb)
		}
	}
}

func TestHybridChainPullOccupancy(t *testing.T) {
	// Paper: occupancy of the pull states is ρ = λ/μ₂.
	p := HybridChainParams{Lambda: 0.2, Mu1: 3, Mu2: 1, C: 400}
	got, err := SolveHybridChain(p)
	if err != nil {
		t.Fatal(err)
	}
	rho := p.Lambda / p.Mu2
	if math.Abs(got.PullBusy-rho) > 0.02*rho+1e-3 {
		t.Fatalf("pull occupancy %g, want ~ρ=%g", got.PullBusy, rho)
	}
}

func TestHybridChainLittleConsistency(t *testing.T) {
	p := HybridChainParams{Lambda: 0.25, Mu1: 2, Mu2: 1, C: 300}
	got, err := SolveHybridChain(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.ELPull <= 0 || math.IsInf(got.WPull, 0) {
		t.Fatalf("degenerate solution: %+v", got)
	}
	// W = L/λeff by construction; sanity: W must exceed the mean pull
	// service time 1/μ₂ ... minus nothing: every pull customer waits for at
	// least one push + its own service on average in this alternating chain.
	if got.WPull < 1/p.Mu2 {
		t.Fatalf("WPull %g below single service time %g", got.WPull, 1/p.Mu2)
	}
	// N is the partial mean over push states and must be below the full mean.
	if got.NPushPhase < 0 || got.NPushPhase > got.ELPull {
		t.Fatalf("NPushPhase %g outside [0, ELPull=%g]", got.NPushPhase, got.ELPull)
	}
}

func TestHybridChainLoadMonotone(t *testing.T) {
	// Higher λ ⇒ longer pull queue and lower idle probability.
	prevL, prevIdle := -1.0, 2.0
	for _, lambda := range []float64{0.05, 0.1, 0.2, 0.3} {
		got, err := SolveHybridChain(HybridChainParams{Lambda: lambda, Mu1: 2, Mu2: 1, C: 300})
		if err != nil {
			t.Fatal(err)
		}
		if got.ELPull <= prevL {
			t.Fatalf("ELPull not increasing in λ: %g then %g", prevL, got.ELPull)
		}
		if got.P00 >= prevIdle {
			t.Fatalf("idle not decreasing in λ: %g then %g", prevIdle, got.P00)
		}
		prevL, prevIdle = got.ELPull, got.P00
	}
}

func TestHybridChainUnstableStillSolvable(t *testing.T) {
	// Over capacity: the truncated chain still has a stationary law; the
	// closed form goes negative. The solver must not error.
	p := HybridChainParams{Lambda: 5, Mu1: 1, Mu2: 1, C: 50}
	got, err := SolveHybridChain(p)
	if err != nil {
		t.Fatal(err)
	}
	if ClosedFormIdle(p.Lambda, p.Mu1, p.Mu2) > 0 {
		t.Fatal("expected unstable closed form")
	}
	// Queue piles to the truncation: most mass near C.
	if got.ELPull < float64(p.C)/2 {
		t.Fatalf("unstable chain has ELPull=%g, expected near C=%d", got.ELPull, p.C)
	}
	if got.LossProb < 0.1 {
		t.Fatalf("unstable chain should have substantial loss, got %g", got.LossProb)
	}
}
