package analytic

import (
	"math"
	"testing"

	"hybridqos/internal/catalog"
	"hybridqos/internal/rng"
)

func TestBlockingProbabilityErrors(t *testing.T) {
	cases := [][3]float64{
		{-1, 1, 5}, {math.NaN(), 1, 5}, {1, 0, 5}, {1, -1, 5}, {1, 1, math.NaN()},
	}
	for i, c := range cases {
		if _, err := BlockingProbability(c[0], c[1], c[2]); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBlockingProbabilityEdges(t *testing.T) {
	// Capacity below the deterministic floor of 1 always blocks.
	if p, _ := BlockingProbability(2, 3, 0.5); p != 1 {
		t.Fatalf("capacity<1: P=%g", p)
	}
	// Zero demand mean never blocks at capacity ≥ 1.
	if p, _ := BlockingProbability(0, 3, 1); p != 0 {
		t.Fatalf("zero mean: P=%g", p)
	}
	// Huge capacity: negligible blocking.
	if p, _ := BlockingProbability(2, 3, 100); p > 1e-10 {
		t.Fatalf("huge capacity: P=%g", p)
	}
}

func TestBlockingProbabilityKnownValue(t *testing.T) {
	// demand = 1 + Poisson(1); capacity 2 blocks when Poisson(1) > 1:
	// P = 1 − e^{-1}(1 + 1) = 1 − 2/e.
	p, err := BlockingProbability(1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - 2/math.E
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("P=%g, want %g", p, want)
	}
}

func TestBlockingProbabilityMonotone(t *testing.T) {
	prev := 1.0
	for capacity := 1.0; capacity <= 20; capacity++ {
		p, err := BlockingProbability(1.5, 2, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if p > prev+1e-12 {
			t.Fatalf("blocking not decreasing in capacity: %g then %g", prev, p)
		}
		prev = p
	}
	// And increasing in length.
	pShort, _ := BlockingProbability(1.5, 1, 5)
	pLong, _ := BlockingProbability(1.5, 5, 5)
	if pLong <= pShort {
		t.Fatalf("blocking not increasing in length: %g vs %g", pShort, pLong)
	}
}

func TestBlockingProbabilityMatchesMonteCarlo(t *testing.T) {
	r := rng.New(13)
	for _, tc := range []struct{ beta, length, capacity float64 }{
		{1, 2, 4}, {2, 3, 8}, {0.5, 5, 3}, {3, 4, 40},
	} {
		want, err := BlockingProbability(tc.beta, tc.length, tc.capacity)
		if err != nil {
			t.Fatal(err)
		}
		const n = 400000
		blocked := 0
		for i := 0; i < n; i++ {
			demand := 1 + float64(r.Poisson(tc.beta*tc.length))
			if demand > tc.capacity {
				blocked++
			}
		}
		got := float64(blocked) / n
		if math.Abs(got-want) > 4*math.Sqrt(want*(1-want)/n)+1e-4 {
			t.Errorf("β=%g L=%g B=%g: MC %g vs analytic %g", tc.beta, tc.length, tc.capacity, got, want)
		}
	}
}

func TestExpectedBlockingRate(t *testing.T) {
	cat := catalog.MustGenerate(catalog.PaperConfig(0.6, 1))
	if _, err := ExpectedBlockingRate(nil, 10, 1, 5); err == nil {
		t.Fatal("nil catalog accepted")
	}
	if _, err := ExpectedBlockingRate(cat, 100, 1, 5); err == nil {
		t.Fatal("empty pull set accepted")
	}
	// Bigger capacity → lower expected blocking.
	small, err := ExpectedBlockingRate(cat, 40, 1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	large, err := ExpectedBlockingRate(cat, 40, 1.5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !(large < small && small <= 1 && large >= 0) {
		t.Fatalf("expected blocking: %g (B=3) vs %g (B=12)", small, large)
	}
}
