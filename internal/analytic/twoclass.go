package analytic

import (
	"fmt"
	"math"

	"hybridqos/internal/markov"
)

// TwoClassParams parameterises the §4.2.1 two-priority-class non-preemptive
// pull chain: class-1 (higher importance) arrivals at Lambda1, class-2 at
// Lambda2, a single exponential server at rate Mu, truncated at C customers
// of each class. The paper derives a two-dimensional z-transform H(y,z) for
// this chain but leaves P_{0,2}(z) unresolved; we solve the truncated chain
// exactly instead.
type TwoClassParams struct {
	Lambda1, Lambda2, Mu float64
	C                    int
}

// Validate reports whether the parameters are usable.
func (p TwoClassParams) Validate() error {
	for _, v := range []struct {
		name string
		x    float64
	}{{"lambda1", p.Lambda1}, {"lambda2", p.Lambda2}} {
		if v.x < 0 || math.IsNaN(v.x) || math.IsInf(v.x, 0) {
			return fmt.Errorf("analytic: invalid %s %g", v.name, v.x)
		}
	}
	if p.Lambda1+p.Lambda2 <= 0 {
		return fmt.Errorf("analytic: both arrival rates zero")
	}
	if p.Mu <= 0 || math.IsNaN(p.Mu) || math.IsInf(p.Mu, 0) {
		return fmt.Errorf("analytic: invalid mu %g", p.Mu)
	}
	if p.C < 2 {
		return fmt.Errorf("analytic: truncation C=%d too small", p.C)
	}
	return nil
}

// TwoClassResult is the solved §4.2.1 chain.
type TwoClassResult struct {
	// L1, L2 are the expected number of class-1/class-2 customers in the
	// system (the paper's ∂H/∂y and ∂H/∂z at y=z=1).
	L1, L2 float64
	// W1, W2 are the expected system times per class via Little's law
	// (E[W_i] = L_i/λ_i); NaN for a class with zero arrivals.
	W1, W2 float64
	// Idle is p(0,0,0).
	Idle float64
}

// SolveTwoClassChain builds and solves the truncated two-class
// non-preemptive priority chain.
//
// State (m, n, r): m class-1 and n class-2 customers in the system
// (including the one in service), r ∈ {0: idle, 1: serving class-1,
// 2: serving class-2}. Non-preemptive head-of-line: on a service completion
// the server takes a class-1 customer if any wait, else a class-2 customer,
// else idles; an arrival never interrupts the customer in service.
func SolveTwoClassChain(p TwoClassParams) (TwoClassResult, error) {
	if err := p.Validate(); err != nil {
		return TwoClassResult{}, err
	}
	// Encode states. Valid: (0,0,0); (m,n,1) with m>=1; (m,n,2) with n>=1.
	// Dense index over the (C+1)x(C+1)x{1,2} grid plus idle; invalid
	// combinations are simply never linked, and the dense solver requires
	// irreducibility, so we index only reachable states.
	type key struct {
		m, n, r int
	}
	idx := make(map[key]int)
	var states []key
	add := func(k key) {
		if _, ok := idx[k]; !ok {
			idx[k] = len(states)
			states = append(states, k)
		}
	}
	add(key{0, 0, 0})
	for m := 1; m <= p.C; m++ {
		for n := 0; n <= p.C; n++ {
			add(key{m, n, 1})
		}
	}
	for n := 1; n <= p.C; n++ {
		for m := 0; m <= p.C; m++ {
			add(key{m, n, 2})
		}
	}
	ch := markov.NewChain(len(states))
	rate := func(from, to key, r float64) {
		fi, ok := idx[from]
		if !ok {
			panic(fmt.Sprintf("analytic: unindexed state %+v", from))
		}
		ti, ok := idx[to]
		if !ok {
			panic(fmt.Sprintf("analytic: unindexed state %+v", to))
		}
		ch.AddRate(fi, ti, r)
	}

	// Idle transitions.
	if p.Lambda1 > 0 {
		rate(key{0, 0, 0}, key{1, 0, 1}, p.Lambda1)
	}
	if p.Lambda2 > 0 {
		rate(key{0, 0, 0}, key{0, 1, 2}, p.Lambda2)
	}
	for _, s := range states {
		if s.r == 0 {
			continue
		}
		// Arrivals (dropped at the truncation boundary).
		if s.m < p.C && p.Lambda1 > 0 {
			rate(s, key{s.m + 1, s.n, s.r}, p.Lambda1)
		}
		if s.n < p.C && p.Lambda2 > 0 {
			rate(s, key{s.m, s.n + 1, s.r}, p.Lambda2)
		}
		// Service completion.
		switch s.r {
		case 1:
			m, n := s.m-1, s.n // class-1 departs
			switch {
			case m >= 1:
				rate(s, key{m, n, 1}, p.Mu)
			case n >= 1:
				rate(s, key{m, n, 2}, p.Mu)
			default:
				rate(s, key{0, 0, 0}, p.Mu)
			}
		case 2:
			m, n := s.m, s.n-1 // class-2 departs
			switch {
			case m >= 1:
				rate(s, key{m, n, 1}, p.Mu)
			case n >= 1:
				rate(s, key{m, n, 2}, p.Mu)
			default:
				rate(s, key{0, 0, 0}, p.Mu)
			}
		}
	}

	pi, err := ch.Stationary()
	if err != nil {
		return TwoClassResult{}, fmt.Errorf("analytic: two-class chain: %w", err)
	}
	var res TwoClassResult
	var loss1, loss2 float64
	for i, s := range states {
		res.L1 += float64(s.m) * pi[i]
		res.L2 += float64(s.n) * pi[i]
		if s.r == 0 {
			res.Idle += pi[i]
		}
		if s.m == p.C {
			loss1 += pi[i]
		}
		if s.n == p.C {
			loss2 += pi[i]
		}
	}
	if p.Lambda1 > 0 {
		res.W1 = res.L1 / (p.Lambda1 * (1 - loss1))
	} else {
		res.W1 = math.NaN()
	}
	if p.Lambda2 > 0 {
		res.W2 = res.L2 / (p.Lambda2 * (1 - loss2))
	} else {
		res.W2 = math.NaN()
	}
	return res, nil
}
