package analytic

import (
	"math"
	"testing"

	"hybridqos/internal/event"
	"hybridqos/internal/rng"
	"hybridqos/internal/stats"
)

// TestHybridChainMatchesDES simulates the §4.1 birth–death chain directly
// with the discrete-event engine and compares the time-averaged occupancy
// statistics with the Markov solver's stationary distribution — two fully
// independent implementations of the same model.
func TestHybridChainMatchesDES(t *testing.T) {
	p := HybridChainParams{Lambda: 0.2, Mu1: 2, Mu2: 1, C: 200}
	want, err := SolveHybridChain(p)
	if err != nil {
		t.Fatal(err)
	}

	sim := event.New()
	r := rng.New(99)
	const horizon = 400000.0

	// State: i pull customers, phase 0 = push in service, 1 = pull.
	i, phase := 0, 0
	var lenTW, idleTW, pullBusyTW stats.TimeWeighted
	observe := func() {
		now := sim.Now()
		lenTW.Observe(now, float64(i))
		idle := 0.0
		if i == 0 && phase == 0 {
			idle = 1
		}
		idleTW.Observe(now, idle)
		busy := 0.0
		if phase == 1 {
			busy = 1
		}
		pullBusyTW.Observe(now, busy)
	}

	// Arrival process.
	var scheduleArrival func()
	scheduleArrival = func() {
		tNext := sim.Now() + r.Exp(p.Lambda)
		if tNext > horizon {
			return
		}
		sim.At(tNext, func() {
			if i < p.C {
				i++
				observe()
			}
			scheduleArrival()
		})
	}
	// Service process: alternating push (rate μ1) and pull (rate μ2)
	// services; push completions with an empty queue recycle.
	var scheduleService func()
	scheduleService = func() {
		var rate float64
		if phase == 0 {
			rate = p.Mu1
		} else {
			rate = p.Mu2
		}
		tNext := sim.Now() + r.Exp(rate)
		if tNext > horizon {
			return
		}
		sim.At(tNext, func() {
			if phase == 0 {
				if i >= 1 {
					phase = 1 // push completed, pull starts
				}
				// empty queue: flat broadcast recycles, state unchanged
			} else {
				i--
				phase = 0 // pull completed, customer departs
			}
			observe()
			scheduleService()
		})
	}
	observe()
	scheduleArrival()
	scheduleService()
	sim.RunUntil(horizon)

	gotEL := lenTW.MeanAt(horizon)
	gotIdle := idleTW.MeanAt(horizon)
	gotBusy := pullBusyTW.MeanAt(horizon)

	if math.Abs(gotEL-want.ELPull) > 0.05*want.ELPull+0.01 {
		t.Errorf("E[L_pull]: DES %g vs solver %g", gotEL, want.ELPull)
	}
	if math.Abs(gotIdle-want.P00) > 0.02 {
		t.Errorf("p(0,0): DES %g vs solver %g", gotIdle, want.P00)
	}
	if math.Abs(gotBusy-want.PullBusy) > 0.02 {
		t.Errorf("pull occupancy: DES %g vs solver %g", gotBusy, want.PullBusy)
	}
}
