package analytic

import (
	"math"
	"testing"

	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
)

func paperModel(t *testing.T, theta, alpha float64, v Variant) Model {
	t.Helper()
	cat, err := catalog.Generate(catalog.PaperConfig(theta, 42))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := clients.New(clients.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	return Model{Catalog: cat, Classes: cl, LambdaTotal: 5, Alpha: alpha, Variant: v}
}

func TestModelValidate(t *testing.T) {
	m := paperModel(t, 0.6, 0.5, Refined)
	good := m
	if err := good.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	cases := []func(*Model){
		func(m *Model) { m.Catalog = nil },
		func(m *Model) { m.Classes = nil },
		func(m *Model) { m.LambdaTotal = 0 },
		func(m *Model) { m.LambdaTotal = math.Inf(1) },
		func(m *Model) { m.Alpha = -0.1 },
		func(m *Model) { m.Alpha = 1.1 },
		func(m *Model) { m.Variant = Variant(9) },
	}
	for i, mutate := range cases {
		bad := m
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
}

func TestVariantString(t *testing.T) {
	if Literal.String() != "literal" || Engineering.String() != "engineering" || Refined.String() != "refined" {
		t.Fatal("variant names wrong")
	}
	if Variant(7).String() != "Variant(7)" {
		t.Fatal("unknown variant string wrong")
	}
}

func TestAccessTimeCutoffBounds(t *testing.T) {
	m := paperModel(t, 0.6, 0.5, Refined)
	if _, err := m.AccessTime(-1); err == nil {
		t.Fatal("k=-1 accepted")
	}
	if _, err := m.AccessTime(101); err == nil {
		t.Fatal("k=101 accepted")
	}
	for _, k := range []int{0, 50, 100} {
		if _, err := m.AccessTime(k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestRefinedClassOrdering(t *testing.T) {
	// With priority influence (α<1) Class-A must wait least, Class-C most.
	m := paperModel(t, 0.6, 0.25, Refined)
	res, err := m.AccessTime(40)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := res.PerClass[0].Wait, res.PerClass[1].Wait, res.PerClass[2].Wait
	if !(a < b && b < c) {
		t.Fatalf("class waits not ordered A<B<C: %g %g %g", a, b, c)
	}
}

func TestRefinedAlphaOneClassesEqual(t *testing.T) {
	// α=1 ignores priority: all classes see the same wait.
	m := paperModel(t, 0.6, 1.0, Refined)
	res, err := m.AccessTime(40)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := res.PerClass[0].Wait, res.PerClass[1].Wait, res.PerClass[2].Wait
	if math.Abs(a-b) > 1e-9 || math.Abs(b-c) > 1e-9 {
		t.Fatalf("α=1 waits differ: %g %g %g", a, b, c)
	}
}

func TestRefinedDelayShapeInK(t *testing.T) {
	// §5.2: delay is higher for low cutoffs; some interior K beats both
	// extremes for a mid skew.
	m := paperModel(t, 0.6, 0.5, Refined)
	res, err := m.Sweep(5, 95)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res[0], res[len(res)-1]
	best, err := m.OptimalCutoff(5, 95, ByOverallDelay)
	if err != nil {
		t.Fatal(err)
	}
	if best.Overall > first.Overall || best.Overall > last.Overall {
		// The optimum can be at an extreme only if the curve is monotone;
		// then this check still holds with equality.
		t.Fatalf("optimum %g at K=%d worse than edges (%g at K=5, %g at K=95)",
			best.Overall, best.K, first.Overall, last.Overall)
	}
	if first.Overall <= best.Overall && first.K != best.K {
		t.Fatalf("low-K delay %g not above optimum %g", first.Overall, best.Overall)
	}
}

func TestRefinedCostsUseWeights(t *testing.T) {
	m := paperModel(t, 0.6, 0.25, Refined)
	res, err := m.AccessTime(40)
	if err != nil {
		t.Fatal(err)
	}
	totals := 0.0
	weights := m.Classes.Weights()
	for i, cd := range res.PerClass {
		want := weights[i] * cd.Wait
		if math.Abs(cd.Cost-want) > 1e-9 {
			t.Fatalf("class %d cost %g, want %g", i, cd.Cost, want)
		}
		totals += cd.Cost
	}
	if math.Abs(res.TotalCost-totals) > 1e-9 {
		t.Fatalf("TotalCost %g != Σ costs %g", res.TotalCost, totals)
	}
}

func TestRefinedLowerAlphaLowersTotalCost(t *testing.T) {
	// §5.3 / Figure 6: decreasing α (more priority influence) reduces the
	// total optimal prioritised cost.
	costAt := func(alpha float64) float64 {
		m := paperModel(t, 0.6, alpha, Refined)
		best, err := m.OptimalCutoff(5, 95, ByTotalCost)
		if err != nil {
			t.Fatal(err)
		}
		return best.TotalCost
	}
	lo, hi := costAt(0.0), costAt(1.0)
	if lo >= hi {
		t.Fatalf("optimal cost at α=0 (%g) not below α=1 (%g)", lo, hi)
	}
}

func TestLiteralPushTermDegenerate(t *testing.T) {
	// DESIGN.md inconsistency #1: the literal push term is 1/2 for any k≥1.
	m := paperModel(t, 0.6, 0.5, Literal)
	for _, k := range []int{1, 10, 50, 99} {
		res, err := m.AccessTime(k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.PushWait-0.5) > 1e-12 {
			t.Fatalf("k=%d: literal push term %g, want 0.5", k, res.PushWait)
		}
	}
}

func TestEngineeringSaturatesAtLowK(t *testing.T) {
	// Without multicast the request-level model overloads when most traffic
	// is pull: λ′·PullMass exceeds the per-request service rate.
	m := paperModel(t, 0.6, 0.5, Engineering)
	res, err := m.AccessTime(5)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Overall, 1) {
		t.Fatalf("engineering model at K=5 finite (%g); expected saturation", res.Overall)
	}
}

func TestRefinedFiniteEverywhere(t *testing.T) {
	// The multicast model must stay finite across the whole sweep — the
	// pull queue holds at most D−K distinct items.
	for _, theta := range []float64{0.2, 0.6, 1.0, 1.4} {
		m := paperModel(t, theta, 0.5, Refined)
		res, err := m.Sweep(0, 100)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if math.IsInf(r.Overall, 0) || math.IsNaN(r.Overall) {
				t.Fatalf("theta=%g K=%d: overall=%g", theta, r.K, r.Overall)
			}
			if r.Overall < 0 {
				t.Fatalf("theta=%g K=%d: negative delay %g", theta, r.K, r.Overall)
			}
		}
	}
}

func TestRefinedEdgeCutoffs(t *testing.T) {
	m := paperModel(t, 0.6, 0.5, Refined)
	// k=D: pure push — no pull wait at all.
	res, err := m.AccessTime(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.PullWait != 0 {
		t.Fatalf("k=D pull wait %g", res.PullWait)
	}
	// Pure push delay is about half the full cycle plus transmission.
	halfCycle := m.Catalog.PushCycleLength(100) / 2
	if res.Overall < halfCycle || res.Overall > halfCycle*1.3 {
		t.Fatalf("pure-push delay %g implausible for half-cycle %g", res.Overall, halfCycle)
	}
	// k=0: pure pull — no push wait.
	res0, err := m.AccessTime(0)
	if err != nil {
		t.Fatal(err)
	}
	if res0.PushWait != 0 {
		t.Fatalf("k=0 push wait %g", res0.PushWait)
	}
}

func TestGoverningProbsSumToOne(t *testing.T) {
	m := paperModel(t, 0.6, 0.5, Refined)
	for _, nBar := range []float64{0.5, 1, 2, 7.3, 50} {
		g := m.governingProbs(nBar)
		sum := 0.0
		for _, p := range g {
			if p < -1e-12 {
				t.Fatalf("negative governing prob %g at nBar=%g", p, nBar)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("governing probs sum to %g at nBar=%g", sum, nBar)
		}
	}
	// More requests per transmission ⇒ the top class governs more often.
	g1 := m.governingProbs(1)
	g20 := m.governingProbs(20)
	if g20[0] <= g1[0] {
		t.Fatalf("class-A governing prob not increasing in nBar: %g vs %g", g1[0], g20[0])
	}
}

func TestSweepErrors(t *testing.T) {
	m := paperModel(t, 0.6, 0.5, Refined)
	if _, err := m.Sweep(-1, 10); err == nil {
		t.Fatal("negative kMin accepted")
	}
	if _, err := m.Sweep(10, 5); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := m.Sweep(0, 101); err == nil {
		t.Fatal("kMax>D accepted")
	}
}

func TestHigherThetaShiftsOptimumLower(t *testing.T) {
	// With very skewed access, a small push set captures most traffic, so
	// the optimal cutoff should not grow as skew rises.
	bestAt := func(theta float64) int {
		m := paperModel(t, theta, 0.5, Refined)
		best, err := m.OptimalCutoff(1, 99, ByOverallDelay)
		if err != nil {
			t.Fatal(err)
		}
		return best.K
	}
	if k14, k02 := bestAt(1.4), bestAt(0.2); k14 > k02 {
		t.Fatalf("optimal K at θ=1.4 (%d) above θ=0.2 (%d)", k14, k02)
	}
}

func TestRefinedConservation(t *testing.T) {
	// The γ-shift differentiation must redistribute waiting without
	// changing the request-probability-weighted mean (unless the clamp
	// engaged): Σ p_c·W_c is α-invariant.
	m := paperModel(t, 0.6, 0.0, Refined)
	res0, err := m.AccessTime(40)
	if err != nil {
		t.Fatal(err)
	}
	m1 := paperModel(t, 0.6, 1.0, Refined)
	res1, err := m1.AccessTime(40)
	if err != nil {
		t.Fatal(err)
	}
	probs := m.Classes.Probs()
	mean := func(r Result) float64 {
		sum := 0.0
		for c, cd := range r.PerClass {
			sum += probs[c] * cd.Wait
		}
		return sum
	}
	if a, b := mean(res0), mean(res1); math.Abs(a-b)/b > 0.02 {
		t.Fatalf("weighted mean wait not conserved across α: %g vs %g", a, b)
	}
}

func TestRefinedShiftScalesWithWeightGap(t *testing.T) {
	// At α=0 the wait shifts are proportional to (q_c − q̄); classes
	// equidistant in weight should be equidistant in wait.
	m := paperModel(t, 0.6, 0.0, Refined)
	res, err := m.AccessTime(40)
	if err != nil {
		t.Fatal(err)
	}
	gapAB := res.PerClass[1].Wait - res.PerClass[0].Wait
	gapBC := res.PerClass[2].Wait - res.PerClass[1].Wait
	// Weights 3,2,1: both gaps correspond to Δq = 1.
	if math.Abs(gapAB-gapBC) > 1e-9 {
		t.Fatalf("equal weight gaps gave unequal wait gaps: %g vs %g", gapAB, gapBC)
	}
	if gapAB <= 0 {
		t.Fatalf("waits not increasing with class index: gap %g", gapAB)
	}
}
