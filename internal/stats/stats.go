// Package stats provides the statistics machinery used to reduce simulation
// output: streaming moments (Welford), confidence intervals over independent
// replications, histograms with percentile queries, and time-weighted
// averages for quantities sampled over simulated time (queue lengths,
// bandwidth occupancy).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates streaming mean and variance in one pass with good
// numerical behaviour. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean, or NaN when empty.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased sample variance, or NaN with fewer than two
// observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the minimum observation, or NaN when empty.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the maximum observation, or NaN when empty.
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// Merge folds other into w, as if every observation of other had been Added
// to w (Chan et al. parallel variance combination).
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	delta := other.mean - w.mean
	w.m2 += other.m2 + delta*delta*float64(w.n)*float64(other.n)/float64(n)
	w.mean += delta * float64(other.n) / float64(n)
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
	w.n = n
}

// CI95 returns the sample mean and the half-width of its 95% confidence
// interval, using the normal approximation for n >= 30 and Student-t critical
// values for smaller n. Half-width is NaN with fewer than two observations.
func (w *Welford) CI95() (mean, halfWidth float64) {
	mean = w.Mean()
	if w.n < 2 {
		return mean, math.NaN()
	}
	se := w.StdDev() / math.Sqrt(float64(w.n))
	return mean, tCritical95(w.n-1) * se
}

// tCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom (exact table for df <= 30, 1.96 beyond).
func tCritical95(df int64) float64 {
	table := []float64{ // df = 1..30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.NaN()
	}
	if df <= int64(len(table)) {
		return table[df-1]
	}
	return 1.96
}

// TimeWeighted tracks the time-average of a piecewise-constant signal, e.g.
// queue length or allocated bandwidth over simulated time.
type TimeWeighted struct {
	started   bool
	lastT     float64
	lastV     float64
	area      float64
	elapsed   float64
	max       float64
	haveValue bool
}

// Observe records that the signal took value v at time t and holds it until
// the next call. A t earlier than the previous observation (a non-monotonic
// caller clock) or NaN is clamped to the previous time: the value update is
// kept and the bogus interval contributes zero area.
func (tw *TimeWeighted) Observe(t, v float64) {
	if tw.started {
		if t < tw.lastT || math.IsNaN(t) {
			t = tw.lastT
		}
		dt := t - tw.lastT
		tw.area += tw.lastV * dt
		tw.elapsed += dt
	}
	tw.started = true
	tw.lastT, tw.lastV = t, v
	if !tw.haveValue || v > tw.max {
		tw.max, tw.haveValue = v, true
	}
}

// Mean returns the time-average of the signal up to the last observation, or
// NaN if less than two distinct times were observed.
func (tw *TimeWeighted) Mean() float64 {
	if tw.elapsed == 0 {
		return math.NaN()
	}
	return tw.area / tw.elapsed
}

// MeanAt closes the signal at time t (holding the last value) and returns the
// time-average over the whole horizon.
func (tw *TimeWeighted) MeanAt(t float64) float64 {
	if !tw.started {
		return math.NaN()
	}
	tw.Observe(t, tw.lastV)
	return tw.Mean()
}

// Max returns the maximum observed value, or NaN when empty.
func (tw *TimeWeighted) Max() float64 {
	if !tw.haveValue {
		return math.NaN()
	}
	return tw.max
}

// Elapsed returns the total time span covered.
func (tw *TimeWeighted) Elapsed() float64 { return tw.elapsed }

// Histogram collects observations for percentile queries. By default it
// stores every raw sample, so percentiles are exact. SetBound switches an
// empty histogram into bounded mode: a fixed-capacity deterministic
// systematic reservoir that retains every stride-th observation in arrival
// order and doubles the stride whenever the retained set hits the bound, so
// steady-state memory (and allocation) stays constant however long the run.
// Bounded percentiles are estimates over the retained subsample — a
// systematic 1-in-stride thinning, never fewer than bound/2 samples — while
// N() always reports the true observation count.
type Histogram struct {
	samples []float64
	sorted  bool
	n       int64 // total observations, including ones thinned away
	bound   int   // retained-sample cap; 0 = exact (unbounded) mode
	stride  int64 // bounded mode: retain every stride-th observation
	skip    int64 // bounded mode: observations left to drop before retaining
}

// SetBound switches h into bounded mode with the given retained-sample cap.
// It panics on a bound below 2 or when observations were already recorded
// (the thinning schedule must see the stream from the start to stay
// deterministic).
func (h *Histogram) SetBound(bound int) {
	if bound < 2 {
		panic(fmt.Sprintf("stats: histogram bound %d < 2", bound))
	}
	if h.n != 0 {
		panic("stats: SetBound on a non-empty histogram")
	}
	h.bound = bound
	h.stride = 1
	h.skip = 0
	if h.samples == nil {
		h.samples = make([]float64, 0, bound)
	}
}

// Bound returns the retained-sample cap, or 0 in exact mode.
func (h *Histogram) Bound() int { return h.bound }

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	if h.bound > 0 {
		if h.skip > 0 {
			h.skip--
			return
		}
		h.skip = h.stride - 1
	}
	h.samples = append(h.samples, x)
	h.sorted = false
	if h.bound > 0 && len(h.samples) >= h.bound {
		h.thin()
	}
}

// thin halves the retained set (keeping every 2nd sample in arrival order)
// and doubles the stride, so the reservoir keeps covering the whole stream.
func (h *Histogram) thin() {
	kept := h.samples[:0]
	for i := 0; i < len(h.samples); i += 2 {
		kept = append(kept, h.samples[i])
	}
	h.samples = kept
	h.stride *= 2
	h.skip = h.stride - 1
	h.sorted = false
}

// N returns the number of observations, including any thinned away in
// bounded mode.
func (h *Histogram) N() int { return int(h.n) }

// Retained returns the number of samples currently held (equal to N in
// exact mode, at most the bound in bounded mode).
func (h *Histogram) Retained() int { return len(h.samples) }

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. NaN when empty; panics on p outside
// [0, 100].
func (h *Histogram) Percentile(p float64) float64 {
	if p < 0 || p > 100 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: percentile %g out of [0,100]", p))
	}
	if len(h.samples) == 0 {
		return math.NaN()
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if len(h.samples) == 1 {
		return h.samples[0]
	}
	rank := p / 100 * float64(len(h.samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return h.samples[lo]
	}
	frac := rank - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[hi]*frac
}

// Mean returns the sample mean, or NaN when empty.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range h.samples {
		sum += x
	}
	return sum / float64(len(h.samples))
}

// Merge folds other into h: retained samples are appended (and re-thinned
// when h is bounded) and the true observation count is carried over, so
// N() stays the total across both streams.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.n == 0 {
		return
	}
	h.n += other.n
	h.samples = append(h.samples, other.samples...)
	h.sorted = false
	for h.bound > 0 && len(h.samples) >= h.bound {
		h.thin()
	}
}

// BucketQuantile estimates the p-th percentile (0 ≤ p ≤ 100) of a bucketed
// distribution: bounds are the ascending inclusive upper bounds of the
// buckets and counts the per-bucket observation counts, with an optional
// final overflow bucket (len(counts) == len(bounds)+1). The estimate
// interpolates linearly within the target bucket (first bucket's lower edge
// is 0), so for log-scale bounds with ratio r the estimate is within a
// factor r of the exact percentile. It returns NaN on an invalid p, empty
// counts, or when the percentile lands in the unbounded overflow bucket's
// interior (the last bound is returned only when the overflow bucket is
// empty at that rank). Negative counts are treated as zero.
func BucketQuantile(p float64, bounds []float64, counts []int64) float64 {
	if p < 0 || p > 100 || math.IsNaN(p) || len(bounds) == 0 {
		return math.NaN()
	}
	var total int64
	for i := range counts {
		if counts[i] > 0 {
			total += counts[i]
		}
	}
	if total == 0 {
		return math.NaN()
	}
	rank := p / 100 * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range counts {
		n := counts[i]
		if n < 0 {
			n = 0
		}
		if float64(cum+n) < rank {
			cum += n
			continue
		}
		if i >= len(bounds) {
			return bounds[len(bounds)-1] // overflow bucket: no upper edge to interpolate to
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		frac := (rank - float64(cum)) / float64(n)
		return lo + frac*(bounds[i]-lo)
	}
	return bounds[len(bounds)-1]
}

// Buckets returns counts of samples falling into nBuckets equal-width buckets
// spanning [min, max], plus the bucket edges. Useful for ASCII rendering.
func (h *Histogram) Buckets(nBuckets int) (counts []int, edges []float64) {
	if nBuckets <= 0 {
		panic(fmt.Sprintf("stats: nBuckets = %d", nBuckets))
	}
	counts = make([]int, nBuckets)
	edges = make([]float64, nBuckets+1)
	if len(h.samples) == 0 {
		return counts, edges
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	lo, hi := h.samples[0], h.samples[len(h.samples)-1]
	if hi == lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(nBuckets)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, x := range h.samples {
		b := int((x - lo) / width)
		if b >= nBuckets {
			b = nBuckets - 1
		}
		counts[b]++
	}
	return counts, edges
}
