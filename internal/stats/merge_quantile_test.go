package stats

import (
	"math"
	"sort"
	"testing"

	"hybridqos/internal/rng"
)

// TestWelfordMergeBothEmpty pins the degenerate merge: folding one zero-value
// accumulator into another must leave a usable zero value, not a poisoned one.
func TestWelfordMergeBothEmpty(t *testing.T) {
	var a, b Welford
	a.Merge(&b)
	if a.N() != 0 {
		t.Fatalf("empty merge empty: N = %d, want 0", a.N())
	}
	if !math.IsNaN(a.Mean()) || !math.IsNaN(a.Variance()) || !math.IsNaN(a.Min()) || !math.IsNaN(a.Max()) {
		t.Fatalf("empty merge empty not NaN-clean: mean %g var %g min %g max %g",
			a.Mean(), a.Variance(), a.Min(), a.Max())
	}
	// Still accumulates normally afterwards.
	a.Add(7)
	if a.Mean() != 7 || a.Min() != 7 || a.Max() != 7 {
		t.Fatalf("post-merge Add broken: mean %g min %g max %g", a.Mean(), a.Min(), a.Max())
	}
}

// TestWelfordMergeSingletons checks the n=1 ⊕ n=1 case, where each side has a
// NaN variance but the merged pair must have the exact two-sample variance.
func TestWelfordMergeSingletons(t *testing.T) {
	var a, b Welford
	a.Add(2)
	b.Add(4)
	a.Merge(&b)
	if a.N() != 2 {
		t.Fatalf("N = %d, want 2", a.N())
	}
	if a.Mean() != 3 {
		t.Fatalf("mean = %g, want 3", a.Mean())
	}
	// Unbiased variance of {2, 4} is ((2-3)^2 + (4-3)^2) / 1 = 2, exactly.
	if a.Variance() != 2 {
		t.Fatalf("variance = %g, want exactly 2", a.Variance())
	}
	if a.Min() != 2 || a.Max() != 4 {
		t.Fatalf("min/max = %g/%g, want 2/4", a.Min(), a.Max())
	}

	// Order must not matter for identical singletons either.
	var c, d Welford
	c.Add(4)
	d.Add(2)
	c.Merge(&d)
	if c.Mean() != a.Mean() || c.Variance() != a.Variance() {
		t.Fatalf("merge not symmetric: mean %g var %g", c.Mean(), c.Variance())
	}
}

// logBounds mirrors the telemetry delay-histogram layout: powers of two from
// 1/16 up to 16384 as inclusive upper bounds (ratio r = 2 between buckets).
func logBounds() []float64 {
	var bounds []float64
	for b := 1.0 / 16; b <= 16384; b *= 2 {
		bounds = append(bounds, b)
	}
	return bounds
}

// TestBucketQuantileErrorBound pins the documented accuracy contract of
// BucketQuantile: with log-scale bounds of ratio r, the bucketed estimate is
// within a factor r of the exact sample percentile (here r = 2). Exercised
// against exponential-ish delays, the distribution shape the simulator's
// access delays actually follow.
func TestBucketQuantileErrorBound(t *testing.T) {
	bounds := logBounds()
	r := rng.New(42)
	var exact Histogram
	counts := make([]int64, len(bounds)+1) // +1 for the overflow bucket
	for i := 0; i < 20000; i++ {
		x := -math.Log(1-r.Float64()) * 8 // Exp(mean 8)
		exact.Add(x)
		b := sort.SearchFloat64s(bounds, x)
		counts[b]++
	}
	for _, p := range []float64{10, 25, 50, 90, 95, 99} {
		est := BucketQuantile(p, bounds, counts)
		want := exact.Percentile(p)
		if math.IsNaN(est) {
			t.Fatalf("p%g: estimate is NaN", p)
		}
		if est < want/2 || est > want*2 {
			t.Errorf("p%g: estimate %g outside factor-2 band of exact %g", p, est, want)
		}
	}
}

// TestBucketQuantileEdgeCases covers the inputs the windowed-timeline path can
// produce: empty windows, invalid p, negative deltas, and ranks landing in the
// overflow bucket.
func TestBucketQuantileEdgeCases(t *testing.T) {
	bounds := []float64{1, 2, 4}
	if v := BucketQuantile(50, bounds, []int64{0, 0, 0}); !math.IsNaN(v) {
		t.Errorf("all-zero counts: got %g, want NaN", v)
	}
	if v := BucketQuantile(50, bounds, nil); !math.IsNaN(v) {
		t.Errorf("nil counts: got %g, want NaN", v)
	}
	if v := BucketQuantile(-1, bounds, []int64{1}); !math.IsNaN(v) {
		t.Errorf("p < 0: got %g, want NaN", v)
	}
	if v := BucketQuantile(101, bounds, []int64{1}); !math.IsNaN(v) {
		t.Errorf("p > 100: got %g, want NaN", v)
	}
	if v := BucketQuantile(math.NaN(), bounds, []int64{1}); !math.IsNaN(v) {
		t.Errorf("p NaN: got %g, want NaN", v)
	}
	if v := BucketQuantile(50, nil, []int64{1}); !math.IsNaN(v) {
		t.Errorf("no bounds: got %g, want NaN", v)
	}
	// Negative counts are treated as zero, not as holes in the CDF.
	if v := BucketQuantile(50, bounds, []int64{-5, 2, 0}); !(v > 1 && v <= 2) {
		t.Errorf("negative count skipped wrongly: got %g, want in (1, 2]", v)
	}
	// Everything in the overflow bucket: the last bound is the best answer.
	if v := BucketQuantile(99, bounds, []int64{0, 0, 0, 10}); v != 4 {
		t.Errorf("overflow bucket: got %g, want 4", v)
	}
	// Single observation in the first bucket interpolates from lower edge 0.
	if v := BucketQuantile(100, bounds, []int64{1, 0, 0}); !(v > 0 && v <= 1) {
		t.Errorf("first bucket: got %g, want in (0, 1]", v)
	}
}
