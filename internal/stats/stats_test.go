package stats

import (
	"math"
	"testing"
	"testing/quick"

	"hybridqos/internal/rng"
)

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Variance()) || !math.IsNaN(w.Min()) || !math.IsNaN(w.Max()) {
		t.Fatal("empty Welford should report NaN moments")
	}
	if w.N() != 0 {
		t.Fatalf("N = %d", w.N())
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %g, want 5", w.Mean())
	}
	// Sample variance of that classic set is 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %g, want %g", w.Variance(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g", w.Min(), w.Max())
	}
}

func TestWelfordSingleObservation(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Mean() != 3.5 || !math.IsNaN(w.Variance()) {
		t.Fatalf("single obs: mean %g var %g", w.Mean(), w.Variance())
	}
	_, hw := w.CI95()
	if !math.IsNaN(hw) {
		t.Fatalf("CI half-width with one obs = %g, want NaN", hw)
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	r := rng.New(5)
	var all, a, b Welford
	for i := 0; i < 1000; i++ {
		x := r.Float64()*10 - 5
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-10 {
		t.Fatalf("merged mean %g, want %g", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-10 {
		t.Fatalf("merged variance %g, want %g", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged min/max wrong")
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	before := a.Mean()
	a.Merge(&b) // merging empty is a no-op
	if a.Mean() != before || a.N() != 2 {
		t.Fatal("merge with empty changed state")
	}
	var c Welford
	c.Merge(&a) // merging into empty copies
	if c.Mean() != a.Mean() || c.N() != a.N() {
		t.Fatal("merge into empty did not copy")
	}
}

func TestCI95CoversTrueMean(t *testing.T) {
	// 200 experiments, each estimating the mean of U(0,1) from 50 samples;
	// the 95% CI should cover 0.5 roughly 95% of the time.
	r := rng.New(77)
	covered := 0
	const experiments = 200
	for e := 0; e < experiments; e++ {
		var w Welford
		for i := 0; i < 50; i++ {
			w.Add(r.Float64())
		}
		mean, hw := w.CI95()
		if math.Abs(mean-0.5) <= hw {
			covered++
		}
	}
	if covered < 175 || covered > 200 {
		t.Fatalf("CI covered true mean in %d/%d experiments, want ~190", covered, experiments)
	}
}

func TestTCritical(t *testing.T) {
	if got := tCritical95(1); got != 12.706 {
		t.Fatalf("t(1) = %g", got)
	}
	if got := tCritical95(30); got != 2.042 {
		t.Fatalf("t(30) = %g", got)
	}
	if got := tCritical95(1000); got != 1.96 {
		t.Fatalf("t(1000) = %g", got)
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Fatal("t(0) should be NaN")
	}
}

func TestTimeWeightedBasic(t *testing.T) {
	var tw TimeWeighted
	if !math.IsNaN(tw.Mean()) || !math.IsNaN(tw.Max()) {
		t.Fatal("empty TimeWeighted should be NaN")
	}
	tw.Observe(0, 2)  // value 2 on [0,10)
	tw.Observe(10, 4) // value 4 on [10,20)
	tw.Observe(20, 0)
	// mean = (2*10 + 4*10) / 20 = 3
	if math.Abs(tw.Mean()-3) > 1e-12 {
		t.Fatalf("Mean = %g, want 3", tw.Mean())
	}
	if tw.Max() != 4 {
		t.Fatalf("Max = %g", tw.Max())
	}
	if tw.Elapsed() != 20 {
		t.Fatalf("Elapsed = %g", tw.Elapsed())
	}
}

func TestTimeWeightedMeanAt(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 1)
	// Hold value 1 until t=5: mean over [0,5] is 1.
	if got := tw.MeanAt(5); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MeanAt(5) = %g", got)
	}
}

func TestTimeWeightedBackwardsTimeClamped(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 2)
	tw.Observe(10, 4)
	// Backwards and NaN times are clamped to t=10: zero area is added, the
	// new value takes effect, and the clock stays at 10.
	tw.Observe(9, 6)
	tw.Observe(math.NaN(), 8)
	if got := tw.MeanAt(20); math.Abs(got-(2*10+8*10)/20.0) > 1e-12 {
		t.Fatalf("mean after clamped observations = %g, want 5", got)
	}
}

func TestTimeWeightedZeroDurationSteps(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(1, 10)
	tw.Observe(1, 20) // same instant: previous value contributes 0 area
	tw.Observe(2, 20)
	if math.Abs(tw.Mean()-20) > 1e-12 {
		t.Fatalf("Mean = %g, want 20", tw.Mean())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	if !math.IsNaN(h.Percentile(50)) || !math.IsNaN(h.Mean()) {
		t.Fatal("empty histogram should be NaN")
	}
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.Percentile(0); got != 1 {
		t.Fatalf("P0 = %g", got)
	}
	if got := h.Percentile(100); got != 100 {
		t.Fatalf("P100 = %g", got)
	}
	if got := h.Percentile(50); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("P50 = %g, want 50.5", got)
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("Mean = %g", got)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Add(7)
	for _, p := range []float64{0, 50, 100} {
		if got := h.Percentile(p); got != 7 {
			t.Fatalf("P%g = %g", p, got)
		}
	}
}

func TestHistogramAddAfterQueryStaysSorted(t *testing.T) {
	var h Histogram
	h.Add(3)
	h.Add(1)
	_ = h.Percentile(50)
	h.Add(2)
	if got := h.Percentile(50); got != 2 {
		t.Fatalf("P50 after interleaved add = %g, want 2", got)
	}
}

func TestHistogramPercentilePanics(t *testing.T) {
	var h Histogram
	h.Add(1)
	for _, p := range []float64{-1, 101, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%g) did not panic", p)
				}
			}()
			h.Percentile(p)
		}()
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Add(float64(i)) // 0..9
	}
	counts, edges := h.Buckets(5)
	if len(counts) != 5 || len(edges) != 6 {
		t.Fatalf("shape: %d counts, %d edges", len(counts), len(edges))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("bucket counts sum to %d", total)
	}
	if edges[0] != 0 || math.Abs(edges[5]-9) > 1e-12 {
		t.Fatalf("edges [%g,%g]", edges[0], edges[5])
	}
}

func TestHistogramBucketsDegenerate(t *testing.T) {
	var h Histogram
	h.Add(5)
	h.Add(5)
	counts, _ := h.Buckets(3)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 2 {
		t.Fatalf("identical samples lost in buckets: %v", counts)
	}
}

// Property: Welford mean/variance match the two-pass formulas on arbitrary
// inputs.
func TestPropertyWelfordMatchesTwoPass(t *testing.T) {
	check := func(raw []int16) bool {
		if len(raw) < 2 || len(raw) > 200 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, v := range raw {
			x := float64(v) / 16
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(raw))
		ss := 0.0
		for _, v := range raw {
			x := float64(v) / 16
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(raw)-1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Variance()-variance) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	r := rng.New(31)
	check := func(nRaw uint8) bool {
		n := int(nRaw%100) + 1
		var h Histogram
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			x := r.Float64() * 100
			h.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := h.Percentile(p)
			if v < prev-1e-12 || v < lo-1e-12 || v > hi+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 5; i++ {
		a.Add(float64(i))
	}
	for i := 6; i <= 10; i++ {
		b.Add(float64(i))
	}
	_ = a.Percentile(50) // force sorted state, Merge must invalidate it
	a.Merge(&b)
	if a.N() != 10 {
		t.Fatalf("merged N = %d", a.N())
	}
	if got := a.Percentile(100); got != 10 {
		t.Fatalf("merged P100 = %g", got)
	}
	a.Merge(nil) // no-op
	a.Merge(&Histogram{})
	if a.N() != 10 {
		t.Fatal("empty merges changed N")
	}
}

func TestHistogramBoundedCapsRetention(t *testing.T) {
	var h Histogram
	h.SetBound(64)
	for i := 0; i < 100000; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100000 {
		t.Fatalf("N = %d, want true count 100000", h.N())
	}
	if h.Retained() >= 64 {
		t.Fatalf("retained %d samples, bound 64", h.Retained())
	}
	if h.Retained() < 32 {
		t.Fatalf("retained %d samples, want at least bound/2", h.Retained())
	}
	if h.Bound() != 64 {
		t.Fatalf("Bound() = %d", h.Bound())
	}
}

func TestHistogramBoundedPercentileAccuracy(t *testing.T) {
	// Uniform stream 0..N-1: every percentile is known exactly. The
	// systematic reservoir must estimate within a few stride-widths.
	var h Histogram
	h.SetBound(256)
	const n = 50000
	for i := 0; i < n; i++ {
		h.Add(float64(i))
	}
	for _, p := range []float64{5, 25, 50, 75, 95} {
		want := p / 100 * (n - 1)
		got := h.Percentile(p)
		if math.Abs(got-want)/n > 0.02 {
			t.Fatalf("P%g = %g, want ~%g (err %.2f%% of range)", p, got, want, 100*math.Abs(got-want)/n)
		}
	}
}

func TestHistogramBoundedDeterministic(t *testing.T) {
	run := func() []float64 {
		var h Histogram
		h.SetBound(128)
		for i := 0; i < 10000; i++ {
			h.Add(float64((i * 7919) % 10007))
		}
		return []float64{h.Percentile(50), h.Percentile(95), h.Percentile(99)}
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("percentile %d differs across identical streams: %x vs %x", i, a[i], b[i])
		}
	}
}

func TestHistogramBoundedMergeKeepsTrueN(t *testing.T) {
	var a, b Histogram
	a.SetBound(32)
	b.SetBound(32)
	for i := 0; i < 1000; i++ {
		a.Add(float64(i))
		b.Add(float64(1000 + i))
	}
	a.Merge(&b)
	if a.N() != 2000 {
		t.Fatalf("merged N = %d, want 2000", a.N())
	}
	if a.Retained() >= 32 {
		t.Fatalf("merged retained %d, bound 32", a.Retained())
	}
	// An unbounded pool merging bounded parts keeps the true count too.
	var pool Histogram
	pool.Merge(&a)
	if pool.N() != 2000 {
		t.Fatalf("pooled N = %d, want 2000", pool.N())
	}
}

func TestHistogramSetBoundPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("bound 1 accepted")
			}
		}()
		var h Histogram
		h.SetBound(1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetBound on non-empty histogram accepted")
			}
		}()
		var h Histogram
		h.Add(1)
		h.SetBound(8)
	}()
}

func TestHistogramUnboundedUnchanged(t *testing.T) {
	// Exact mode must keep every sample: N == Retained, percentiles exact.
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Add(float64(i))
	}
	if h.N() != 1000 || h.Retained() != 1000 {
		t.Fatalf("N %d retained %d", h.N(), h.Retained())
	}
	if got := h.Percentile(50); got != 499.5 {
		t.Fatalf("P50 = %g", got)
	}
}
