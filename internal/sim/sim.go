// Package sim orchestrates simulation experiments: independent replications
// run in parallel across CPU cores, per-class summaries with confidence
// intervals, and the common-random-number seed discipline that keeps sweep
// comparisons sharp.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"hybridqos/internal/clients"
	"hybridqos/internal/core"
	"hybridqos/internal/stats"
)

// ClassSummary aggregates one class's results across replications.
type ClassSummary struct {
	// Class is the service class.
	Class clients.Class
	// Weight is the class's priority weight.
	Weight float64
	// Delay collects the per-replication MEAN delays, so Delay.CI95()
	// yields a replication-based confidence interval.
	Delay stats.Welford
	// Cost collects per-replication prioritised costs.
	Cost stats.Welford
	// DropRate collects per-replication drop rates.
	DropRate stats.Welford
	// DelayHist pools every served request's delay across replications,
	// for percentile queries (P95 etc.).
	DelayHist stats.Histogram
	// Served, Dropped, Expired, UplinkLost and CacheHits are pooled counts
	// over all replications.
	Served, Dropped, Expired, UplinkLost, CacheHits int64
	// Retries, Failed and Shed pool the fault-layer counts: client
	// re-requests after corrupted deliveries, retry-budget exhaustions and
	// admission-control refusals.
	Retries, Failed, Shed int64
	// FailureRate collects per-replication failure rates (drops, expiries,
	// retry exhaustion and shedding over completed requests).
	FailureRate stats.Welford
}

// Summary is the replication-aggregated result of one configuration.
type Summary struct {
	// Config echoes the base configuration (Seed is the base seed).
	Config core.Config
	// Replications is the number of independent runs.
	Replications int
	// PerClass holds one summary per service class.
	PerClass []*ClassSummary
	// OverallDelay, TotalCost collect per-replication aggregates.
	OverallDelay, TotalCost stats.Welford
	// QueueItems collects per-replication mean distinct-item queue lengths.
	QueueItems stats.Welford
	// PullTransmissions, PushBroadcasts, Blocked pool counts.
	PullTransmissions, PushBroadcasts, Blocked int64
	// CorruptedPushes, CorruptedPulls pool downlink corruption counts.
	CorruptedPushes, CorruptedPulls int64
}

// MeanDelay returns class c's mean delay across replications.
func (s *Summary) MeanDelay(c clients.Class) float64 { return s.PerClass[c].Delay.Mean() }

// MeanCost returns class c's mean prioritised cost across replications.
func (s *Summary) MeanCost(c clients.Class) float64 { return s.PerClass[c].Cost.Mean() }

// RunReplications executes reps independent runs of cfg, varying only the
// seed (base seed + replication index), in parallel across CPU cores. The
// returned summary is deterministic: the same cfg and reps always produce
// identical numbers regardless of scheduling order.
//
// Stateful per-run components (uplink channels, loss models, MMPP arrival
// processes, tracers, telemetry collectors) must NOT be shared across
// replications; use RunReplicationsWith and construct fresh instances in the
// perRun hook.
func RunReplications(cfg core.Config, reps int) (*Summary, error) {
	return RunReplicationsWith(cfg, reps, nil)
}

// RunReplicationsWith is RunReplications with a per-replication
// customisation hook, called with each replication's config (after the seed
// is set) before the run starts. The hook runs concurrently across
// replications and must only touch its own config.
func RunReplicationsWith(cfg core.Config, reps int, perRun func(rep int, c *core.Config) error) (*Summary, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("sim: replications %d", reps)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	results := make([]*core.Metrics, reps)
	errs := make([]error, reps)
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for i := 0; i < reps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			repCfg := cfg
			repCfg.Seed = cfg.Seed + uint64(i)
			if perRun != nil {
				if err := perRun(i, &repCfg); err != nil {
					errs[i] = err
					return
				}
			}
			results[i], errs[i] = core.Run(repCfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: replication %d: %w", i, err)
		}
	}

	s := &Summary{Config: cfg, Replications: reps}
	for c := 0; c < cfg.Classes.NumClasses(); c++ {
		s.PerClass = append(s.PerClass, &ClassSummary{
			Class:  clients.Class(c),
			Weight: cfg.Classes.Weight(clients.Class(c)),
		})
	}
	for _, m := range results {
		for c, cm := range m.PerClass {
			cs := s.PerClass[c]
			if cm.Delay.N() > 0 {
				cs.Delay.Add(cm.Delay.Mean())
				cs.Cost.Add(cm.Cost())
			}
			cs.DelayHist.Merge(&cm.DelayHist)
			cs.DropRate.Add(cm.DropRate())
			cs.Served += cm.Served
			cs.Dropped += cm.Dropped
			cs.Expired += cm.Expired
			cs.UplinkLost += cm.UplinkLost
			cs.CacheHits += cm.CacheHits
			cs.Retries += cm.Retries
			cs.Failed += cm.Failed
			cs.Shed += cm.Shed
			cs.FailureRate.Add(cm.FailureRate())
		}
		if v := m.OverallMeanDelay(); !math.IsNaN(v) {
			s.OverallDelay.Add(v)
		}
		s.TotalCost.Add(m.TotalCost())
		if v := m.QueueItems.Mean(); !math.IsNaN(v) {
			s.QueueItems.Add(v)
		}
		s.PullTransmissions += m.PullTransmissions
		s.PushBroadcasts += m.PushBroadcasts
		s.Blocked += m.BlockedTransmissions
		s.CorruptedPushes += m.CorruptedPushes
		s.CorruptedPulls += m.CorruptedPulls
	}
	return s, nil
}

// maxParallel bounds the worker pool: all cores but one, at least one.
func maxParallel() int {
	n := runtime.NumCPU() - 1
	if n < 1 {
		n = 1
	}
	return n
}

// SweepPoint is one swept configuration's summary.
type SweepPoint struct {
	// K is the cutoff (for cutoff sweeps) or the index of the swept value.
	K int
	// Alpha is the α used (for α sweeps).
	Alpha float64
	// Summary is the replication-aggregated result.
	Summary *Summary
}

// SweepCutoffs runs RunReplications at each cutoff, reusing the base seed so
// the cutoffs are compared under common random numbers.
func SweepCutoffs(cfg core.Config, cutoffs []int, reps int) ([]SweepPoint, error) {
	if len(cutoffs) == 0 {
		return nil, fmt.Errorf("sim: no cutoffs")
	}
	out := make([]SweepPoint, 0, len(cutoffs))
	for _, k := range cutoffs {
		c := cfg
		c.Cutoff = k
		sum, err := RunReplications(c, reps)
		if err != nil {
			return nil, fmt.Errorf("sim: cutoff %d: %w", k, err)
		}
		out = append(out, SweepPoint{K: k, Alpha: c.Alpha, Summary: sum})
	}
	return out, nil
}

// SweepAlphas runs RunReplications at each α (with the paper's
// importance-factor policy), reusing the base seed.
func SweepAlphas(cfg core.Config, alphas []float64, reps int) ([]SweepPoint, error) {
	if len(alphas) == 0 {
		return nil, fmt.Errorf("sim: no alphas")
	}
	out := make([]SweepPoint, 0, len(alphas))
	for _, a := range alphas {
		c := cfg
		c.Alpha = a
		c.PullPolicy = nil // force the importance-factor policy at this α
		sum, err := RunReplications(c, reps)
		if err != nil {
			return nil, fmt.Errorf("sim: alpha %g: %w", a, err)
		}
		out = append(out, SweepPoint{K: c.Cutoff, Alpha: a, Summary: sum})
	}
	return out, nil
}

// OptimalByTotalCost returns the sweep point with the lowest mean total
// prioritised cost.
func OptimalByTotalCost(points []SweepPoint) (SweepPoint, error) {
	return optimal(points, func(p SweepPoint) float64 { return p.Summary.TotalCost.Mean() })
}

// OptimalByOverallDelay returns the sweep point with the lowest mean overall
// delay.
func OptimalByOverallDelay(points []SweepPoint) (SweepPoint, error) {
	return optimal(points, func(p SweepPoint) float64 { return p.Summary.OverallDelay.Mean() })
}

func optimal(points []SweepPoint, value func(SweepPoint) float64) (SweepPoint, error) {
	if len(points) == 0 {
		return SweepPoint{}, fmt.Errorf("sim: no sweep points")
	}
	best := points[0]
	bestVal := value(best)
	for _, p := range points[1:] {
		v := value(p)
		if math.IsNaN(bestVal) || (!math.IsNaN(v) && v < bestVal) {
			best, bestVal = p, v
		}
	}
	return best, nil
}
