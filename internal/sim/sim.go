// Package sim orchestrates simulation experiments: sweep points and
// independent replications are flattened into one deterministic work pool
// sized to the machine, per-class summaries carry confidence intervals, and
// the common-random-number seed discipline keeps sweep comparisons sharp.
package sim

import (
	"errors"
	"fmt"
	"math"

	"hybridqos/internal/clients"
	"hybridqos/internal/core"
	"hybridqos/internal/stats"
	"hybridqos/internal/workpool"
)

// ClassSummary aggregates one class's results across replications.
type ClassSummary struct {
	// Class is the service class.
	Class clients.Class
	// Weight is the class's priority weight.
	Weight float64
	// Delay collects the per-replication MEAN delays, so Delay.CI95()
	// yields a replication-based confidence interval.
	Delay stats.Welford
	// Cost collects per-replication prioritised costs.
	Cost stats.Welford
	// DropRate collects per-replication drop rates.
	DropRate stats.Welford
	// DelayHist pools every served request's delay across replications,
	// for percentile queries (P95 etc.).
	DelayHist stats.Histogram
	// Served, Dropped, Expired, UplinkLost and CacheHits are pooled counts
	// over all replications.
	Served, Dropped, Expired, UplinkLost, CacheHits int64
	// Retries, Failed and Shed pool the fault-layer counts: client
	// re-requests after corrupted deliveries, retry-budget exhaustions and
	// admission-control refusals.
	Retries, Failed, Shed int64
	// FailureRate collects per-replication failure rates (drops, expiries,
	// retry exhaustion and shedding over completed requests).
	FailureRate stats.Welford
}

// Summary is the replication-aggregated result of one configuration.
type Summary struct {
	// Config echoes the base configuration (Seed is the base seed).
	Config core.Config
	// Replications is the number of independent runs.
	Replications int
	// PerClass holds one summary per service class.
	PerClass []*ClassSummary
	// OverallDelay, TotalCost collect per-replication aggregates.
	OverallDelay, TotalCost stats.Welford
	// QueueItems collects per-replication mean distinct-item queue lengths.
	QueueItems stats.Welford
	// PullTransmissions, PushBroadcasts, Blocked pool counts.
	PullTransmissions, PushBroadcasts, Blocked int64
	// CorruptedPushes, CorruptedPulls pool downlink corruption counts.
	CorruptedPushes, CorruptedPulls int64
}

// MeanDelay returns class c's mean delay across replications.
func (s *Summary) MeanDelay(c clients.Class) float64 { return s.PerClass[c].Delay.Mean() }

// MeanCost returns class c's mean prioritised cost across replications.
func (s *Summary) MeanCost(c clients.Class) float64 { return s.PerClass[c].Cost.Mean() }

// SetWorkers overrides the shared work-pool size for subsequent runs and
// returns the previous override; n <= 0 restores automatic sizing
// (GOMAXPROCS−1, at least one). The override is process-global.
func SetWorkers(n int) (prev int) { return workpool.SetWorkers(n) }

// Workers reports the effective work-pool size used by sweeps and
// replications.
func Workers() int { return workpool.Workers() }

// PointError reports which sweep point a SweepConfigs/SweepConfigsWith
// failure occurred at. Err carries the underlying (replication-wrapped)
// error; the error text is Err's, so single-point callers can surface it
// unchanged while sweep wrappers prepend their point label.
type PointError struct {
	// Point is the index into the swept configuration slice.
	Point int
	// Err is the underlying error.
	Err error
}

func (e *PointError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *PointError) Unwrap() error { return e.Err }

// RunReplications executes reps independent runs of cfg, varying only the
// seed (base seed + replication index), in parallel across the shared work
// pool. The returned summary is deterministic: the same cfg and reps always
// produce identical numbers regardless of scheduling order or worker count.
//
// Stateful per-run components (uplink channels, loss models, MMPP arrival
// processes, tracers, telemetry collectors) must NOT be shared across
// replications; use RunReplicationsWith and construct fresh instances in the
// perRun hook.
func RunReplications(cfg core.Config, reps int) (*Summary, error) {
	return RunReplicationsWith(cfg, reps, nil)
}

// RunReplicationsWith is RunReplications with a per-replication
// customisation hook, called with each replication's config (after the seed
// is set) before the run starts. The hook runs concurrently across
// replications and must only touch its own config.
func RunReplicationsWith(cfg core.Config, reps int, perRun func(rep int, c *core.Config) error) (*Summary, error) {
	var hook func(point, rep int, c *core.Config) error
	if perRun != nil {
		hook = func(_, rep int, c *core.Config) error { return perRun(rep, c) }
	}
	sums, err := SweepConfigsWith([]core.Config{cfg}, reps, hook)
	if err != nil {
		var pe *PointError
		if errors.As(err, &pe) {
			return nil, pe.Err
		}
		return nil, err
	}
	return sums[0], nil
}

// SweepConfigs runs reps replications of every configuration, flattening the
// (point × replication) grid into the shared deterministic work pool, and
// returns one Summary per configuration in input order.
func SweepConfigs(cfgs []core.Config, reps int) ([]*Summary, error) {
	return SweepConfigsWith(cfgs, reps, nil)
}

// SweepConfigsWith is SweepConfigs with a per-replication customisation
// hook, called with the point index, replication index and that
// replication's config (after the seed is set) before the run starts. The
// hook runs concurrently and must only touch its own config.
//
// Every (point, replication) pair is one job in the shared work pool;
// results land in index-addressed slots and are aggregated in input order,
// so the output is bit-identical whatever the worker count. Failures are
// reported as *PointError wrapping the lowest-indexed failing job's error.
func SweepConfigsWith(cfgs []core.Config, reps int, perRun func(point, rep int, c *core.Config) error) ([]*Summary, error) {
	if reps <= 0 {
		return nil, &PointError{Point: 0, Err: fmt.Errorf("sim: replications %d", reps)}
	}
	for p := range cfgs {
		if err := cfgs[p].Validate(); err != nil {
			return nil, &PointError{Point: p, Err: err}
		}
	}
	results := make([]*core.Metrics, len(cfgs)*reps)
	err := workpool.Run(len(results), func(i int) error {
		p, r := i/reps, i%reps
		repCfg := cfgs[p]
		repCfg.Seed = cfgs[p].Seed + uint64(r)
		if perRun != nil {
			if err := perRun(p, r, &repCfg); err != nil {
				return &PointError{Point: p, Err: fmt.Errorf("sim: replication %d: %w", r, err)}
			}
		}
		m, err := core.Run(repCfg)
		if err != nil {
			return &PointError{Point: p, Err: fmt.Errorf("sim: replication %d: %w", r, err)}
		}
		results[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*Summary, len(cfgs))
	for p := range cfgs {
		out[p] = aggregate(cfgs[p], reps, results[p*reps:(p+1)*reps])
	}
	return out, nil
}

// aggregate folds one point's per-replication metrics, in replication-index
// order, into a Summary.
func aggregate(cfg core.Config, reps int, results []*core.Metrics) *Summary {
	s := &Summary{Config: cfg, Replications: reps}
	for c := 0; c < cfg.Classes.NumClasses(); c++ {
		s.PerClass = append(s.PerClass, &ClassSummary{
			Class:  clients.Class(c),
			Weight: cfg.Classes.Weight(clients.Class(c)),
		})
	}
	for _, m := range results {
		for c, cm := range m.PerClass {
			cs := s.PerClass[c]
			if cm.Delay.N() > 0 {
				cs.Delay.Add(cm.Delay.Mean())
				cs.Cost.Add(cm.Cost())
			}
			cs.DelayHist.Merge(&cm.DelayHist)
			cs.DropRate.Add(cm.DropRate())
			cs.Served += cm.Served
			cs.Dropped += cm.Dropped
			cs.Expired += cm.Expired
			cs.UplinkLost += cm.UplinkLost
			cs.CacheHits += cm.CacheHits
			cs.Retries += cm.Retries
			cs.Failed += cm.Failed
			cs.Shed += cm.Shed
			cs.FailureRate.Add(cm.FailureRate())
		}
		if v := m.OverallMeanDelay(); !math.IsNaN(v) {
			s.OverallDelay.Add(v)
		}
		s.TotalCost.Add(m.TotalCost())
		if v := m.QueueItems.Mean(); !math.IsNaN(v) {
			s.QueueItems.Add(v)
		}
		s.PullTransmissions += m.PullTransmissions
		s.PushBroadcasts += m.PushBroadcasts
		s.Blocked += m.BlockedTransmissions
		s.CorruptedPushes += m.CorruptedPushes
		s.CorruptedPulls += m.CorruptedPulls
	}
	return s
}

// SweepPoint is one swept configuration's summary.
type SweepPoint struct {
	// K is the cutoff (for cutoff sweeps) or the index of the swept value.
	K int
	// Alpha is the α used (for α sweeps).
	Alpha float64
	// Summary is the replication-aggregated result.
	Summary *Summary
}

// SweepCutoffs runs reps replications at each cutoff, reusing the base seed
// so the cutoffs are compared under common random numbers. All (cutoff ×
// replication) pairs share the deterministic work pool.
func SweepCutoffs(cfg core.Config, cutoffs []int, reps int) ([]SweepPoint, error) {
	if len(cutoffs) == 0 {
		return nil, fmt.Errorf("sim: no cutoffs")
	}
	cfgs := make([]core.Config, len(cutoffs))
	for i, k := range cutoffs {
		cfgs[i] = cfg
		cfgs[i].Cutoff = k
	}
	sums, err := SweepConfigs(cfgs, reps)
	if err != nil {
		var pe *PointError
		if errors.As(err, &pe) {
			return nil, fmt.Errorf("sim: cutoff %d: %w", cutoffs[pe.Point], pe.Err)
		}
		return nil, err
	}
	out := make([]SweepPoint, len(cutoffs))
	for i, k := range cutoffs {
		out[i] = SweepPoint{K: k, Alpha: cfgs[i].Alpha, Summary: sums[i]}
	}
	return out, nil
}

// SweepAlphas runs reps replications at each α (with the paper's
// importance-factor policy), reusing the base seed. All (α × replication)
// pairs share the deterministic work pool.
func SweepAlphas(cfg core.Config, alphas []float64, reps int) ([]SweepPoint, error) {
	if len(alphas) == 0 {
		return nil, fmt.Errorf("sim: no alphas")
	}
	cfgs := make([]core.Config, len(alphas))
	for i, a := range alphas {
		cfgs[i] = cfg
		cfgs[i].Alpha = a
		cfgs[i].PullPolicy = nil // force the importance-factor policy at this α
	}
	sums, err := SweepConfigs(cfgs, reps)
	if err != nil {
		var pe *PointError
		if errors.As(err, &pe) {
			return nil, fmt.Errorf("sim: alpha %g: %w", alphas[pe.Point], pe.Err)
		}
		return nil, err
	}
	out := make([]SweepPoint, len(alphas))
	for i, a := range alphas {
		out[i] = SweepPoint{K: cfgs[i].Cutoff, Alpha: a, Summary: sums[i]}
	}
	return out, nil
}

// OptimalByTotalCost returns the sweep point with the lowest mean total
// prioritised cost.
func OptimalByTotalCost(points []SweepPoint) (SweepPoint, error) {
	return optimal(points, func(p SweepPoint) float64 { return p.Summary.TotalCost.Mean() })
}

// OptimalByOverallDelay returns the sweep point with the lowest mean overall
// delay.
func OptimalByOverallDelay(points []SweepPoint) (SweepPoint, error) {
	return optimal(points, func(p SweepPoint) float64 { return p.Summary.OverallDelay.Mean() })
}

func optimal(points []SweepPoint, value func(SweepPoint) float64) (SweepPoint, error) {
	if len(points) == 0 {
		return SweepPoint{}, fmt.Errorf("sim: no sweep points")
	}
	best := points[0]
	bestVal := value(best)
	for _, p := range points[1:] {
		v := value(p)
		if math.IsNaN(bestVal) || (!math.IsNaN(v) && v < bestVal) {
			best, bestVal = p, v
		}
	}
	return best, nil
}
