package sim

import (
	"errors"
	"math"
	"testing"

	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/core"
)

func baseConfig(t *testing.T) core.Config {
	t.Helper()
	cat, err := catalog.Generate(catalog.PaperConfig(0.6, 42))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := clients.New(clients.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{
		Catalog:        cat,
		Classes:        cl,
		Lambda:         5,
		Cutoff:         40,
		Alpha:          0.5,
		Horizon:        3000,
		WarmupFraction: 0.1,
		Seed:           100,
	}
}

func TestRunReplicationsErrors(t *testing.T) {
	cfg := baseConfig(t)
	if _, err := RunReplications(cfg, 0); err == nil {
		t.Fatal("reps=0 accepted")
	}
	cfg.Lambda = -1
	if _, err := RunReplications(cfg, 2); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunReplicationsDeterministic(t *testing.T) {
	cfg := baseConfig(t)
	a, err := RunReplications(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReplications(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.PerClass {
		if a.PerClass[c].Delay.Mean() != b.PerClass[c].Delay.Mean() {
			t.Fatalf("class %d delay differs across identical replication sets", c)
		}
		if a.PerClass[c].Served != b.PerClass[c].Served {
			t.Fatalf("class %d served counts differ", c)
		}
	}
	if a.OverallDelay.Mean() != b.OverallDelay.Mean() {
		t.Fatal("overall delay differs")
	}
}

func TestReplicationsActuallyIndependent(t *testing.T) {
	cfg := baseConfig(t)
	s, err := RunReplications(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Replications != 8 {
		t.Fatalf("Replications = %d", s.Replications)
	}
	// Eight replications of a stochastic system must show variance.
	if v := s.OverallDelay.Variance(); math.IsNaN(v) || v == 0 {
		t.Fatalf("replication variance %g — seeds not varied?", v)
	}
	if s.OverallDelay.N() != 8 {
		t.Fatalf("overall delay N = %d", s.OverallDelay.N())
	}
}

func TestSummaryAggregates(t *testing.T) {
	cfg := baseConfig(t)
	s, err := RunReplications(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.PerClass) != 3 {
		t.Fatalf("%d class summaries", len(s.PerClass))
	}
	for c, cs := range s.PerClass {
		if cs.Served == 0 {
			t.Fatalf("class %d served 0", c)
		}
		if cs.Dropped != 0 {
			t.Fatalf("class %d dropped without bandwidth constraint", c)
		}
		if math.IsNaN(cs.Delay.Mean()) || cs.Delay.Mean() <= 0 {
			t.Fatalf("class %d delay %g", c, cs.Delay.Mean())
		}
		wantCost := cs.Weight * cs.Delay.Mean()
		// Cost is collected per replication; its mean is close to (not
		// exactly) weight × mean delay. Loose agreement check.
		if math.Abs(cs.Cost.Mean()-wantCost)/wantCost > 0.05 {
			t.Fatalf("class %d cost %g vs weight·delay %g", c, cs.Cost.Mean(), wantCost)
		}
	}
	if s.MeanDelay(0) != s.PerClass[0].Delay.Mean() {
		t.Fatal("MeanDelay accessor wrong")
	}
	if s.MeanCost(1) != s.PerClass[1].Cost.Mean() {
		t.Fatal("MeanCost accessor wrong")
	}
	if s.PushBroadcasts == 0 || s.PullTransmissions == 0 {
		t.Fatal("pooled transmission counts empty")
	}
}

func TestCIWidthShrinksWithReps(t *testing.T) {
	cfg := baseConfig(t)
	few, err := RunReplications(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunReplications(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	_, hwFew := few.OverallDelay.CI95()
	_, hwMany := many.OverallDelay.CI95()
	if hwMany >= hwFew {
		t.Fatalf("CI half-width did not shrink: %g (4 reps) vs %g (16 reps)", hwFew, hwMany)
	}
}

func TestSweepCutoffs(t *testing.T) {
	cfg := baseConfig(t)
	points, err := SweepCutoffs(cfg, []int{20, 40, 60}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	for i, k := range []int{20, 40, 60} {
		if points[i].K != k {
			t.Fatalf("point %d has K=%d", i, points[i].K)
		}
		if points[i].Summary.Config.Cutoff != k {
			t.Fatalf("summary config cutoff %d", points[i].Summary.Config.Cutoff)
		}
	}
	if _, err := SweepCutoffs(cfg, nil, 3); err == nil {
		t.Fatal("empty cutoffs accepted")
	}
}

func TestSweepAlphas(t *testing.T) {
	cfg := baseConfig(t)
	points, err := SweepAlphas(cfg, []float64{0, 0.5, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// α=0 must differentiate classes; α=1 must not (compare spreads).
	spread := func(p SweepPoint) float64 {
		return p.Summary.MeanDelay(2) - p.Summary.MeanDelay(0)
	}
	if spread(points[0]) <= spread(points[2]) {
		t.Fatalf("class spread at α=0 (%g) not above α=1 (%g)", spread(points[0]), spread(points[2]))
	}
	if _, err := SweepAlphas(cfg, nil, 3); err == nil {
		t.Fatal("empty alphas accepted")
	}
}

func TestOptimalSelectors(t *testing.T) {
	cfg := baseConfig(t)
	points, err := SweepCutoffs(cfg, []int{10, 40, 90}, 2)
	if err != nil {
		t.Fatal(err)
	}
	bestCost, err := OptimalByTotalCost(points)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Summary.TotalCost.Mean() < bestCost.Summary.TotalCost.Mean() {
			t.Fatalf("OptimalByTotalCost missed K=%d", p.K)
		}
	}
	bestDelay, err := OptimalByOverallDelay(points)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Summary.OverallDelay.Mean() < bestDelay.Summary.OverallDelay.Mean() {
			t.Fatalf("OptimalByOverallDelay missed K=%d", p.K)
		}
	}
	if _, err := OptimalByTotalCost(nil); err == nil {
		t.Fatal("empty points accepted")
	}
}

func TestWorkersAtLeastOne(t *testing.T) {
	if Workers() < 1 {
		t.Fatal("Workers < 1")
	}
}

func TestSetWorkersRoundTrip(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if Workers() != 3 {
		t.Fatalf("Workers = %d after SetWorkers(3)", Workers())
	}
	if p := SetWorkers(prev); p != 3 {
		t.Fatalf("SetWorkers returned %d, want 3", p)
	}
	SetWorkers(prev)
}

// TestSweepConfigsMatchesPerPointRuns pins the tentpole contract: flattening
// (point × replication) into the shared pool must be bit-identical to
// running each point on its own, at any worker count.
func TestSweepConfigsMatchesPerPointRuns(t *testing.T) {
	cfg := baseConfig(t)
	cfgs := make([]core.Config, 3)
	for i, k := range []int{20, 40, 60} {
		cfgs[i] = cfg
		cfgs[i].Cutoff = k
	}
	swept, err := SweepConfigs(cfgs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		solo, err := RunReplications(cfgs[i], 3)
		if err != nil {
			t.Fatal(err)
		}
		if swept[i].OverallDelay.Mean() != solo.OverallDelay.Mean() {
			t.Fatalf("point %d overall delay differs: %x vs %x",
				i, swept[i].OverallDelay.Mean(), solo.OverallDelay.Mean())
		}
		for c := range solo.PerClass {
			if swept[i].PerClass[c].Served != solo.PerClass[c].Served {
				t.Fatalf("point %d class %d served differs", i, c)
			}
		}
	}
}

func TestSweepConfigsPointError(t *testing.T) {
	cfg := baseConfig(t)
	bad := cfg
	bad.Lambda = -1
	_, err := SweepConfigs([]core.Config{cfg, bad}, 2)
	if err == nil {
		t.Fatal("invalid point accepted")
	}
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not *PointError", err)
	}
	if pe.Point != 1 {
		t.Fatalf("PointError.Point = %d, want 1", pe.Point)
	}
}

func TestPooledDelayHistogram(t *testing.T) {
	cfg := baseConfig(t)
	s, err := RunReplications(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for c, cs := range s.PerClass {
		if int64(cs.DelayHist.N()) != cs.Served {
			t.Fatalf("class %d: hist N %d vs served %d", c, cs.DelayHist.N(), cs.Served)
		}
		p50, p95 := cs.DelayHist.Percentile(50), cs.DelayHist.Percentile(95)
		if !(p50 > 0 && p95 >= p50) {
			t.Fatalf("class %d: P50 %g P95 %g", c, p50, p95)
		}
	}
}

// TestParallelWorkersBitIdentical is the determinism-under-parallelism
// gate: the same sweep at workers=1 and workers=N must produce bit-for-bit
// identical summaries, including bounded-histogram percentiles.
func TestParallelWorkersBitIdentical(t *testing.T) {
	cfg := baseConfig(t)
	cfg.DelayHistBound = 512
	ks := []int{10, 30, 50, 70}

	sweep := func(workers int) []SweepPoint {
		prev := SetWorkers(workers)
		defer SetWorkers(prev)
		points, err := SweepCutoffs(cfg, ks, 3)
		if err != nil {
			t.Fatal(err)
		}
		return points
	}
	seq := sweep(1)
	par := sweep(8)

	for i := range ks {
		a, b := seq[i].Summary, par[i].Summary
		if a.OverallDelay.Mean() != b.OverallDelay.Mean() {
			t.Fatalf("K=%d overall delay differs: %x vs %x", ks[i], a.OverallDelay.Mean(), b.OverallDelay.Mean())
		}
		if a.TotalCost.Mean() != b.TotalCost.Mean() {
			t.Fatalf("K=%d total cost differs", ks[i])
		}
		if a.PullTransmissions != b.PullTransmissions || a.PushBroadcasts != b.PushBroadcasts {
			t.Fatalf("K=%d transmission counts differ", ks[i])
		}
		for c := range a.PerClass {
			ca, cb := a.PerClass[c], b.PerClass[c]
			if ca.Served != cb.Served || ca.Dropped != cb.Dropped {
				t.Fatalf("K=%d class %d counts differ", ks[i], c)
			}
			if ca.Delay.Mean() != cb.Delay.Mean() {
				t.Fatalf("K=%d class %d delay differs: %x vs %x", ks[i], c, ca.Delay.Mean(), cb.Delay.Mean())
			}
			if ca.DelayHist.N() != cb.DelayHist.N() {
				t.Fatalf("K=%d class %d hist N differs", ks[i], c)
			}
			for _, p := range []float64{50, 95, 99} {
				pa, pb := ca.DelayHist.Percentile(p), cb.DelayHist.Percentile(p)
				if pa != pb {
					t.Fatalf("K=%d class %d P%g differs: %x vs %x", ks[i], c, p, pa, pb)
				}
			}
		}
	}
}

// TestBoundedDelayHistKeepsTrueCounts checks the bounded reservoir through
// the replication pipeline: N() still equals Served while retention is
// capped, and percentiles stay ordered.
func TestBoundedDelayHistKeepsTrueCounts(t *testing.T) {
	cfg := baseConfig(t)
	cfg.DelayHistBound = 128
	s, err := RunReplications(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for c, cs := range s.PerClass {
		if int64(cs.DelayHist.N()) != cs.Served {
			t.Fatalf("class %d: hist N %d vs served %d", c, cs.DelayHist.N(), cs.Served)
		}
		if cs.DelayHist.Retained() > 3*128 {
			t.Fatalf("class %d: %d retained samples across 3 reps, bound 128", c, cs.DelayHist.Retained())
		}
		p50, p95 := cs.DelayHist.Percentile(50), cs.DelayHist.Percentile(95)
		if !(p50 > 0 && p95 >= p50) {
			t.Fatalf("class %d: P50 %g P95 %g", c, p50, p95)
		}
	}
}
