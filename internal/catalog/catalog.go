// Package catalog models the server's database: D distinct, heterogeneous
// (variable-length) data items ranked by access probability. The paper's
// simulation (assumptions 1, 3, 4) uses D = 100 items with integer lengths
// drawn uniformly from 1..5 (average 2 is reported for the paper's draw; the
// uniform 1..5 has mean 3, so we also provide a length model matching the
// paper's stated mean — see Lengths* constructors) and Zipf(θ) popularity.
package catalog

import (
	"fmt"
	"math"

	"hybridqos/internal/rng"
	"hybridqos/internal/zipf"
)

// Item is one data item in the server database. Rank is 1-based: rank 1 is
// the most popular item. Length is in broadcast units (the time the downlink
// needs to transmit the item at unit rate).
type Item struct {
	// Rank is the popularity rank, 1-based.
	Rank int
	// Length is the item's transmission length in broadcast units.
	Length float64
	// Prob is the item's access probability P_i under the catalog's Zipf law.
	Prob float64
}

// Catalog is an immutable ranked database of items plus its popularity law.
type Catalog struct {
	items []Item
	dist  *zipf.Distribution
}

// Config parameterises catalog generation.
type Config struct {
	// D is the number of distinct items (paper: 100).
	D int
	// Theta is the Zipf skew coefficient (paper: 0.20 .. 1.40).
	Theta float64
	// MinLen and MaxLen bound the integer item lengths (paper: 1 and 5).
	MinLen, MaxLen int
	// LengthWeights optionally gives the probability mass of each integer
	// length MinLen, MinLen+1, ..., MaxLen. Nil means uniform. The paper's
	// assumption 3 says lengths run 1..5 "with an average of 2", which a
	// uniform draw (mean 3) cannot produce; PaperConfig supplies a PMF with
	// mean exactly 2.
	LengthWeights []float64
	// Seed feeds the deterministic length draw.
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.D <= 0 {
		return fmt.Errorf("catalog: D must be positive, got %d", c.D)
	}
	if c.Theta < 0 || math.IsNaN(c.Theta) || math.IsInf(c.Theta, 0) {
		return fmt.Errorf("catalog: invalid theta %g", c.Theta)
	}
	if c.MinLen <= 0 || c.MaxLen < c.MinLen {
		return fmt.Errorf("catalog: invalid length bounds [%d,%d]", c.MinLen, c.MaxLen)
	}
	if c.LengthWeights != nil {
		if len(c.LengthWeights) != c.MaxLen-c.MinLen+1 {
			return fmt.Errorf("catalog: %d length weights for %d lengths", len(c.LengthWeights), c.MaxLen-c.MinLen+1)
		}
		sum := 0.0
		for i, w := range c.LengthWeights {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("catalog: invalid length weight %g at index %d", w, i)
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("catalog: length weights sum to %g", sum)
		}
	}
	return nil
}

// PaperLengthWeights is the PMF over lengths 1..5 used by PaperConfig:
// mean exactly 2.0 broadcast units, honouring assumption 3 ("varied from 1
// to 5, with an average of 2").
func PaperLengthWeights() []float64 { return []float64{0.40, 0.35, 0.15, 0.05, 0.05} }

// PaperConfig returns the paper's simulation setup (assumptions 1, 3, 4):
// D = 100 items, integer lengths 1..5 with mean 2, with the caller's θ and
// seed.
func PaperConfig(theta float64, seed uint64) Config {
	return Config{D: 100, Theta: theta, MinLen: 1, MaxLen: 5, LengthWeights: PaperLengthWeights(), Seed: seed}
}

// Generate builds a catalog: Zipf(θ) probabilities over ranks 1..D and
// uniformly drawn integer lengths in [MinLen, MaxLen].
func Generate(cfg Config) (*Catalog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dist, err := zipf.New(cfg.D, cfg.Theta)
	if err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed).Split("catalog-lengths")
	var lengthSampler func() float64
	if cfg.LengthWeights == nil {
		lengthSampler = func() float64 { return float64(r.IntRange(cfg.MinLen, cfg.MaxLen)) }
	} else {
		alias := rng.MustAlias(cfg.LengthWeights)
		lengthSampler = func() float64 { return float64(cfg.MinLen + alias.Sample(r)) }
	}
	items := make([]Item, cfg.D)
	for i := range items {
		items[i] = Item{
			Rank:   i + 1,
			Length: lengthSampler(),
			Prob:   dist.Prob(i + 1),
		}
	}
	return &Catalog{items: items, dist: dist}, nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(cfg Config) *Catalog {
	c, err := Generate(cfg)
	if err != nil {
		panic(fmt.Errorf("catalog: MustGenerate: %w", err))
	}
	return c
}

// FromLengths builds a catalog with explicitly supplied lengths (rank order)
// and Zipf(θ) probabilities, for tests and analytic cross-checks that need
// full control of the length vector.
func FromLengths(lengths []float64, theta float64) (*Catalog, error) {
	if len(lengths) == 0 {
		return nil, fmt.Errorf("catalog: empty length vector")
	}
	dist, err := zipf.New(len(lengths), theta)
	if err != nil {
		return nil, err
	}
	items := make([]Item, len(lengths))
	for i, l := range lengths {
		if l <= 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return nil, fmt.Errorf("catalog: invalid length %g at rank %d", l, i+1)
		}
		items[i] = Item{Rank: i + 1, Length: l, Prob: dist.Prob(i + 1)}
	}
	return &Catalog{items: items, dist: dist}, nil
}

// D returns the number of items.
func (c *Catalog) D() int { return len(c.items) }

// Theta returns the popularity skew coefficient.
func (c *Catalog) Theta() float64 { return c.dist.Theta() }

// Item returns the item at the given 1-based rank.
func (c *Catalog) Item(rank int) Item {
	if rank < 1 || rank > len(c.items) {
		panic(fmt.Sprintf("catalog: rank %d out of [1,%d]", rank, len(c.items)))
	}
	return c.items[rank-1]
}

// Length returns the length of the item at the given rank.
func (c *Catalog) Length(rank int) float64 { return c.Item(rank).Length }

// Prob returns the access probability of the item at the given rank.
func (c *Catalog) Prob(rank int) float64 { return c.Item(rank).Prob }

// SampleRank draws an item rank according to the popularity law.
func (c *Catalog) SampleRank(r *rng.Source) int { return c.dist.Sample(r) }

// PushMass returns Σ_{i=1..K} P_i, the probability a request targets the push
// set under cutoff K.
func (c *Catalog) PushMass(k int) float64 {
	c.checkCutoff(k)
	return c.dist.CumProb(k)
}

// PullMass returns Σ_{i=K+1..D} P_i, the probability a request targets the
// pull set under cutoff K.
func (c *Catalog) PullMass(k int) float64 {
	c.checkCutoff(k)
	return c.dist.TailProb(k + 1)
}

// PushCycleLength returns Σ_{i=1..K} L_i — the duration of one full flat
// broadcast cycle over the push set.
func (c *Catalog) PushCycleLength(k int) float64 {
	c.checkCutoff(k)
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += c.items[i].Length
	}
	return sum
}

// WeightedPushLength returns Σ_{i=1..K} P_i·L_i — the paper's μ₁
// (assumption 2).
func (c *Catalog) WeightedPushLength(k int) float64 {
	c.checkCutoff(k)
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += c.items[i].Prob * c.items[i].Length
	}
	return sum
}

// WeightedPullLength returns Σ_{i=K+1..D} P_i·L_i — the paper's μ₂
// (assumption 2).
func (c *Catalog) WeightedPullLength(k int) float64 {
	c.checkCutoff(k)
	sum := 0.0
	for i := k; i < len(c.items); i++ {
		sum += c.items[i].Prob * c.items[i].Length
	}
	return sum
}

// MeanPullServiceTime returns the popularity-weighted mean length of pull
// items, conditioned on the request being a pull request:
// Σ_{i>K} (P_i/PullMass)·L_i. This is the mean service time of the pull
// server in broadcast units, the 1/μ₂ of the engineering analytic model.
func (c *Catalog) MeanPullServiceTime(k int) float64 {
	c.checkCutoff(k)
	mass := c.PullMass(k)
	if mass == 0 {
		return 0
	}
	return c.WeightedPullLength(k) / mass
}

func (c *Catalog) checkCutoff(k int) {
	if k < 0 || k > len(c.items) {
		panic(fmt.Sprintf("catalog: cutoff %d out of [0,%d]", k, len(c.items)))
	}
}

// Items returns a copy of all items in rank order.
func (c *Catalog) Items() []Item {
	out := make([]Item, len(c.items))
	copy(out, c.items)
	return out
}

// TotalLength returns Σ_{i=1..D} L_i.
func (c *Catalog) TotalLength() float64 {
	sum := 0.0
	for _, it := range c.items {
		sum += it.Length
	}
	return sum
}

// MeanLength returns the unweighted average item length.
func (c *Catalog) MeanLength() float64 {
	return c.TotalLength() / float64(len(c.items))
}
