package catalog

import (
	"math"
	"testing"
	"testing/quick"

	"hybridqos/internal/rng"
)

func paperCat(t *testing.T) *Catalog {
	t.Helper()
	c, err := Generate(PaperConfig(0.6, 42))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{D: 0, Theta: 1, MinLen: 1, MaxLen: 5},
		{D: 10, Theta: -1, MinLen: 1, MaxLen: 5},
		{D: 10, Theta: math.NaN(), MinLen: 1, MaxLen: 5},
		{D: 10, Theta: 1, MinLen: 0, MaxLen: 5},
		{D: 10, Theta: 1, MinLen: 5, MaxLen: 4},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate() passed for invalid config %+v", i, cfg)
		}
	}
	if err := PaperConfig(0.6, 1).Validate(); err != nil {
		t.Errorf("PaperConfig invalid: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(PaperConfig(0.6, 7))
	b := MustGenerate(PaperConfig(0.6, 7))
	for rank := 1; rank <= a.D(); rank++ {
		if a.Length(rank) != b.Length(rank) {
			t.Fatalf("rank %d: lengths differ across equal seeds: %g vs %g", rank, a.Length(rank), b.Length(rank))
		}
	}
	c := MustGenerate(PaperConfig(0.6, 8))
	diff := 0
	for rank := 1; rank <= a.D(); rank++ {
		if a.Length(rank) != c.Length(rank) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical catalogs")
	}
}

func TestPaperConfigShape(t *testing.T) {
	c := paperCat(t)
	if c.D() != 100 {
		t.Fatalf("D = %d, want 100", c.D())
	}
	for rank := 1; rank <= 100; rank++ {
		l := c.Length(rank)
		if l < 1 || l > 5 || l != math.Trunc(l) {
			t.Fatalf("rank %d: length %g not an integer in [1,5]", rank, l)
		}
	}
	// PaperConfig's length PMF has mean 2; allow sampling noise on 100 draws.
	if m := c.MeanLength(); m < 1.5 || m > 2.6 {
		t.Fatalf("mean length %g implausible for the paper's mean-2 PMF", m)
	}
}

func TestPaperLengthWeightsMeanTwo(t *testing.T) {
	w := PaperLengthWeights()
	sum, mean := 0.0, 0.0
	for i, p := range w {
		sum += p
		mean += p * float64(i+1)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %g", sum)
	}
	if math.Abs(mean-2) > 1e-12 {
		t.Fatalf("weighted mean length = %g, want 2 (assumption 3)", mean)
	}
}

func TestLengthWeightsValidation(t *testing.T) {
	base := Config{D: 10, Theta: 1, MinLen: 1, MaxLen: 3, Seed: 1}
	bad := [][]float64{
		{0.5, 0.5},             // wrong arity
		{0.5, 0.5, -0.1},       // negative
		{0, 0, 0},              // zero mass
		{math.NaN(), 0.5, 0.5}, // NaN
	}
	for i, w := range bad {
		cfg := base
		cfg.LengthWeights = w
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: bad length weights validated", i)
		}
	}
	cfg := base
	cfg.LengthWeights = []float64{1, 1, 2} // unnormalised is fine
	if err := cfg.Validate(); err != nil {
		t.Errorf("unnormalised weights rejected: %v", err)
	}
}

func TestWeightedLengthsEmpirical(t *testing.T) {
	cfg := Config{D: 5000, Theta: 0.5, MinLen: 1, MaxLen: 2, LengthWeights: []float64{0.9, 0.1}, Seed: 3}
	c := MustGenerate(cfg)
	ones := 0
	for rank := 1; rank <= c.D(); rank++ {
		if c.Length(rank) == 1 {
			ones++
		}
	}
	if ones < 4300 || ones > 4700 {
		t.Fatalf("90%%-weight length drawn %d/5000 times", ones)
	}
}

func TestProbsDescendAndSum(t *testing.T) {
	c := paperCat(t)
	sum := 0.0
	for rank := 1; rank <= c.D(); rank++ {
		if rank > 1 && c.Prob(rank) > c.Prob(rank-1) {
			t.Fatalf("probability increased at rank %d", rank)
		}
		sum += c.Prob(rank)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %g", sum)
	}
}

func TestPushPullMassComplement(t *testing.T) {
	c := paperCat(t)
	for k := 0; k <= c.D(); k++ {
		if math.Abs(c.PushMass(k)+c.PullMass(k)-1) > 1e-9 {
			t.Fatalf("k=%d: PushMass+PullMass = %g", k, c.PushMass(k)+c.PullMass(k))
		}
	}
	if c.PushMass(0) != 0 || c.PullMass(c.D()) != 0 {
		t.Fatal("boundary masses wrong")
	}
}

func TestWeightedLengthsPartitionTotal(t *testing.T) {
	c := paperCat(t)
	total := c.WeightedPushLength(c.D())
	for k := 0; k <= c.D(); k++ {
		got := c.WeightedPushLength(k) + c.WeightedPullLength(k)
		if math.Abs(got-total) > 1e-9 {
			t.Fatalf("k=%d: weighted push+pull = %g, want %g", k, got, total)
		}
	}
}

func TestPushCycleLengthMonotone(t *testing.T) {
	c := paperCat(t)
	prev := 0.0
	for k := 1; k <= c.D(); k++ {
		cur := c.PushCycleLength(k)
		inc := cur - prev
		if inc != c.Length(k) {
			t.Fatalf("k=%d: cycle grew by %g, want item length %g", k, inc, c.Length(k))
		}
		prev = cur
	}
	if math.Abs(prev-c.TotalLength()) > 1e-9 {
		t.Fatalf("full cycle %g != total length %g", prev, c.TotalLength())
	}
}

func TestMeanPullServiceTimeBounds(t *testing.T) {
	c := paperCat(t)
	for k := 0; k < c.D(); k++ {
		m := c.MeanPullServiceTime(k)
		if m < 1 || m > 5 {
			t.Fatalf("k=%d: mean pull service time %g outside item length range", k, m)
		}
	}
	if got := c.MeanPullServiceTime(c.D()); got != 0 {
		t.Fatalf("empty pull set mean service time = %g, want 0", got)
	}
}

func TestSampleRankMatchesProb(t *testing.T) {
	c := MustGenerate(Config{D: 10, Theta: 1.0, MinLen: 1, MaxLen: 5, Seed: 3})
	r := rng.New(11)
	const draws = 300000
	counts := make([]int, 11)
	for i := 0; i < draws; i++ {
		counts[c.SampleRank(r)]++
	}
	for rank := 1; rank <= 10; rank++ {
		want := c.Prob(rank) * draws
		if math.Abs(float64(counts[rank])-want) > 5*math.Sqrt(want)+10 {
			t.Errorf("rank %d sampled %d, want ~%.0f", rank, counts[rank], want)
		}
	}
}

func TestFromLengths(t *testing.T) {
	c, err := FromLengths([]float64{2, 4, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.D() != 3 || c.Length(2) != 4 {
		t.Fatalf("FromLengths mis-built: D=%d L2=%g", c.D(), c.Length(2))
	}
	for _, bad := range [][]float64{nil, {1, 0}, {1, -2}, {math.NaN()}, {math.Inf(1)}} {
		if _, err := FromLengths(bad, 1); err == nil {
			t.Errorf("FromLengths(%v) succeeded, want error", bad)
		}
	}
}

func TestItemAccessorPanics(t *testing.T) {
	c := paperCat(t)
	for _, rank := range []int{0, -1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Item(%d) did not panic", rank)
				}
			}()
			c.Item(rank)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PushMass(101) did not panic")
			}
		}()
		c.PushMass(101)
	}()
}

func TestItemsReturnsCopy(t *testing.T) {
	c := paperCat(t)
	items := c.Items()
	items[0].Length = 999
	if c.Length(1) == 999 {
		t.Fatal("Items() exposed internal state")
	}
}

// Property: for any valid cutoff the mass and weighted-length identities hold
// on randomly generated catalogs.
func TestPropertyCutoffIdentities(t *testing.T) {
	check := func(dRaw, thetaRaw, seedRaw uint8) bool {
		d := int(dRaw%150) + 1
		theta := float64(thetaRaw%140) / 100
		c, err := Generate(Config{D: d, Theta: theta, MinLen: 1, MaxLen: 5, Seed: uint64(seedRaw)})
		if err != nil {
			return false
		}
		for k := 0; k <= d; k++ {
			if math.Abs(c.PushMass(k)+c.PullMass(k)-1) > 1e-9 {
				return false
			}
			if c.PushCycleLength(k) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
