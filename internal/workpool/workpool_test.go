package workpool

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunExecutesEveryJobExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		prev := SetWorkers(workers)
		n := 100
		counts := make([]int32, n)
		if err := Run(n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
		SetWorkers(prev)
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		prev := SetWorkers(workers)
		err := Run(10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		SetWorkers(prev)
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: err = %v, want the lowest-indexed failure", workers, err)
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := Run(0, func(int) error { t.Fatal("job ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Run(-3, func(int) error { t.Fatal("job ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersRespectsGOMAXPROCS(t *testing.T) {
	prev := SetWorkers(0)
	defer SetWorkers(prev)
	want := runtime.GOMAXPROCS(0) - 1
	if want < 1 {
		want = 1
	}
	if got := Workers(); got != want {
		t.Fatalf("Workers() = %d, want GOMAXPROCS-1 clamped = %d", got, want)
	}
}

func TestSetWorkersOverrideAndRestore(t *testing.T) {
	prev := SetWorkers(5)
	if got := Workers(); got != 5 {
		t.Fatalf("Workers() = %d after SetWorkers(5)", got)
	}
	if p := SetWorkers(0); p != 5 {
		t.Fatalf("SetWorkers returned prev %d, want 5", p)
	}
	SetWorkers(prev)
}

// TestRunDeterministicResults pins the pool's core contract: index-addressed
// results are identical whatever the worker count.
func TestRunDeterministicResults(t *testing.T) {
	compute := func(workers int) []int {
		prev := SetWorkers(workers)
		defer SetWorkers(prev)
		out := make([]int, 50)
		if err := Run(len(out), func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := compute(1)
	par := compute(8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("result %d differs: %d vs %d", i, seq[i], par[i])
		}
	}
}

// TestRunRecoversPanicsAsIndexedErrors: a panicking job becomes a
// *PanicError at its index, lowest-index-wins holds across mixed panic and
// ordinary failures, and sibling jobs still run exactly once.
func TestRunRecoversPanicsAsIndexedErrors(t *testing.T) {
	for _, workers := range []int{1, 4} {
		prev := SetWorkers(workers)
		ran := make([]int32, 16)
		err := Run(16, func(i int) error {
			atomic.AddInt32(&ran[i], 1)
			switch i {
			case 5:
				return errors.New("ordinary failure")
			case 3, 9:
				panic(fmt.Sprintf("job %d exploded", i))
			}
			return nil
		})
		SetWorkers(prev)
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: Run returned %v, want a *PanicError", workers, err)
		}
		if pe.Index != 3 {
			t.Errorf("workers=%d: panic reported for job %d, want the lowest index 3", workers, pe.Index)
		}
		if got := pe.Error(); !strings.Contains(got, "workpool: job 3 panicked") {
			t.Errorf("workers=%d: error %q lacks the indexed panic message", workers, got)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: PanicError carries no stack", workers)
		}
		for i, n := range ran {
			if n != 1 {
				t.Errorf("workers=%d: job %d ran %d times", workers, i, n)
			}
		}
	}
}

// TestRunPanicBelowErrorWins: an ordinary error at a lower index beats a
// panic at a higher one — the panic is contained, not prioritised.
func TestRunPanicBelowErrorWins(t *testing.T) {
	prev := SetWorkers(2)
	defer SetWorkers(prev)
	sentinel := errors.New("first failure")
	err := Run(8, func(i int) error {
		if i == 2 {
			return sentinel
		}
		if i == 6 {
			panic("later panic")
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run returned %v, want the lower-indexed ordinary error", err)
	}
}
