package workpool

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunExecutesEveryJobExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		prev := SetWorkers(workers)
		n := 100
		counts := make([]int32, n)
		if err := Run(n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
		SetWorkers(prev)
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		prev := SetWorkers(workers)
		err := Run(10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		SetWorkers(prev)
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: err = %v, want the lowest-indexed failure", workers, err)
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := Run(0, func(int) error { t.Fatal("job ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Run(-3, func(int) error { t.Fatal("job ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersRespectsGOMAXPROCS(t *testing.T) {
	prev := SetWorkers(0)
	defer SetWorkers(prev)
	want := runtime.GOMAXPROCS(0) - 1
	if want < 1 {
		want = 1
	}
	if got := Workers(); got != want {
		t.Fatalf("Workers() = %d, want GOMAXPROCS-1 clamped = %d", got, want)
	}
}

func TestSetWorkersOverrideAndRestore(t *testing.T) {
	prev := SetWorkers(5)
	if got := Workers(); got != 5 {
		t.Fatalf("Workers() = %d after SetWorkers(5)", got)
	}
	if p := SetWorkers(0); p != 5 {
		t.Fatalf("SetWorkers returned prev %d, want 5", p)
	}
	SetWorkers(prev)
}

// TestRunDeterministicResults pins the pool's core contract: index-addressed
// results are identical whatever the worker count.
func TestRunDeterministicResults(t *testing.T) {
	compute := func(workers int) []int {
		prev := SetWorkers(workers)
		defer SetWorkers(prev)
		out := make([]int, 50)
		if err := Run(len(out), func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := compute(1)
	par := compute(8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("result %d differs: %d vs %d", i, seq[i], par[i])
		}
	}
}
