// Package workpool is the shared deterministic work pool behind every sweep
// in the repository: sim.SweepCutoffs/SweepAlphas, core.SweepCutoff and the
// figure drivers all flatten their (sweep point × replication) grids into one
// indexed job list and hand it to Run.
//
// Determinism contract: jobs receive their index and must write results into
// index-addressed slots only. The pool guarantees that every job runs exactly
// once and that Run returns the error of the lowest-indexed failing job, so
// the observable outcome is independent of how the scheduler interleaves the
// workers — a workers=1 run and a workers=N run produce bit-identical output.
package workpool

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError reports a job that panicked instead of returning. The pool
// recovers it into an ordinary indexed error so one crashing replication
// cannot take down a whole sweep (or leave sibling workers deadlocked on a
// dead WaitGroup), while the stack keeps the failure debuggable.
type PanicError struct {
	// Index is the panicking job's index.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("workpool: job %d panicked: %v", e.Index, e.Value)
}

var (
	mu       sync.Mutex
	override int // 0 = size from GOMAXPROCS
)

// SetWorkers overrides the pool size for subsequent Run calls and returns the
// previous override. n <= 0 restores automatic sizing (see Workers). The
// override is process-global: CLI drivers set it once from a -workers flag.
func SetWorkers(n int) (prev int) {
	mu.Lock()
	defer mu.Unlock()
	prev = override
	if n <= 0 {
		n = 0
	}
	override = n
	return prev
}

// Workers returns the effective pool size: the SetWorkers override when one
// is set, otherwise GOMAXPROCS−1 (at least 1). GOMAXPROCS — not
// runtime.NumCPU — is the sizing signal, because containers and CI runners
// often see the host's full CPU count while being quota-limited to far fewer.
func Workers() int {
	mu.Lock()
	o := override
	mu.Unlock()
	if o > 0 {
		return o
	}
	n := runtime.GOMAXPROCS(0) - 1
	if n < 1 {
		n = 1
	}
	return n
}

// Run executes jobs 0..n−1 across min(Workers(), n) goroutines and returns
// the error of the lowest-indexed failing job (nil when all succeed). Every
// job runs exactly once, whatever the worker count; with a single worker the
// jobs run inline in index order. A job that panics is recovered into a
// *PanicError at its index — lowest-index-wins applies to panics and
// ordinary errors alike, so crash reporting is as deterministic as the
// results themselves.
func Run(n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Workers()
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = runJob(i, job)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = runJob(i, job)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runJob invokes one job, converting a panic into its indexed error.
func runJob(i int, job func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return job(i)
}
