package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCounterMonotonic(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.Set(3)
	g.SetMax(2)
	if got := g.Value(); got != 3 {
		t.Fatalf("after SetMax(2): %g, want 3", got)
	}
	g.SetMax(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("after SetMax(7): %g, want 7", got)
	}
	g.Set(1)
	if got := g.Value(); got != 1 {
		t.Fatalf("Set moves down: %g, want 1", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// Exactly on a bound lands in that bound's bucket (inclusive upper bounds).
	h.Observe(0.0625)
	h.Observe(0.0625 / 2)
	h.Observe(1)
	h.Observe(1.5)
	h.Observe(1e9) // overflow
	h.Observe(math.NaN())
	if got := h.N(); got != 5 {
		t.Fatalf("N() = %d, want 5 (NaN ignored)", got)
	}
	counts := h.Counts()
	if len(counts) != len(delayBounds)+1 {
		t.Fatalf("len(Counts()) = %d, want %d", len(counts), len(delayBounds)+1)
	}
	if counts[0] != 2 {
		t.Errorf("bucket[0] = %d, want 2", counts[0])
	}
	if i := bucketIndex(1); counts[i] != 1 {
		t.Errorf("bucket ≤1 = %d, want 1", counts[i])
	}
	if i := bucketIndex(1.5); counts[i] != 1 {
		t.Errorf("bucket ≤2 = %d, want 1", counts[i])
	}
	if counts[len(counts)-1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", counts[len(counts)-1])
	}
	if got, want := h.Sum(), 0.0625+0.03125+1+1.5+1e9; got != want {
		t.Errorf("Sum() = %v, want %v", got, want)
	}
	// Counts returns a copy.
	counts[0] = 99
	if h.Counts()[0] != 2 {
		t.Error("Counts() aliases internal state")
	}
}

func TestBucketIndexEdges(t *testing.T) {
	if i := bucketIndex(0); i != 0 {
		t.Errorf("bucketIndex(0) = %d, want 0", i)
	}
	last := delayBounds[len(delayBounds)-1]
	if i := bucketIndex(last); i != len(delayBounds)-1 {
		t.Errorf("bucketIndex(last bound) = %d, want %d", i, len(delayBounds)-1)
	}
	if i := bucketIndex(last * 2); i != len(delayBounds) {
		t.Errorf("bucketIndex(overflow) = %d, want %d", i, len(delayBounds))
	}
}

func TestNewRejectsBadCadence(t *testing.T) {
	for _, every := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := New(Options{SnapshotEvery: every}); err == nil {
			t.Errorf("New(SnapshotEvery=%g): no error", every)
		}
	}
	if _, err := New(Options{}); err != nil {
		t.Errorf("New(zero options): %v", err)
	}
}

// collectSample drives every hot-point method once and returns the collector.
func collectSample(t *testing.T) *Collector {
	t.Helper()
	c, err := New(Options{SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	c.Arrival(0)
	c.Arrival(1)
	c.Served(0, 2.5, true)
	c.Served(1, 0.3, false)
	c.PushComplete()
	c.PullComplete()
	c.Blocked(1, 4)
	c.Corrupt(true)
	c.Corrupt(false)
	c.Retry(0)
	c.Shed(2)
	c.ObserveQueue(3, 8)
	c.ObserveQueue(2, 5)
	c.ObservePendingRetries(1)
	c.ObserveBandwidth(0, 2)
	return c
}

func TestSnapshotSortedAndQueryable(t *testing.T) {
	c := collectSample(t)
	s := c.TakeSnapshot(40)
	if s.T != 40 || s.Seq != 1 {
		t.Fatalf("T=%g Seq=%d, want 40, 1", s.T, s.Seq)
	}
	for i := 1; i < len(s.Counters); i++ {
		a, b := s.Counters[i-1], s.Counters[i]
		if a.Name > b.Name || (a.Name == b.Name && a.Class >= b.Class) {
			t.Fatalf("counters not sorted: %v before %v", a, b)
		}
	}
	if got := s.Counter(MetricArrivals, 0); got != 1 {
		t.Errorf("arrivals{0} = %d, want 1", got)
	}
	if got := s.Counter(MetricBlockedReqs, 1); got != 4 {
		t.Errorf("blocked_requests{1} = %d, want 4", got)
	}
	if got := s.Counter("no_such_metric", 0); got != 0 {
		t.Errorf("absent counter = %d, want 0", got)
	}
	if got := s.Gauge(MetricQueueRequests, ClassNone); got != 5 {
		t.Errorf("queue_requests = %g, want 5 (latest sample)", got)
	}
	if got := s.Gauge(MetricQueueRequestsMax, ClassNone); got != 8 {
		t.Errorf("queue_requests_max = %g, want 8 (peak)", got)
	}
	if got := s.Gauge("no_such_gauge", ClassNone); !math.IsNaN(got) {
		t.Errorf("absent gauge = %g, want NaN", got)
	}
	h, ok := s.Hist(MetricDelay, 0)
	if !ok || h.N() != 1 || h.Sum != 2.5 {
		t.Errorf("delay{0}: ok=%v n=%d sum=%g, want 1 obs of 2.5", ok, h.N(), h.Sum)
	}
	if _, ok := s.Hist(MetricDelay, 9); ok {
		t.Error("absent histogram reported present")
	}
	// Snapshots own their counts: mutating the collector afterwards must not
	// change the already-taken snapshot.
	c.Served(0, 1, true)
	if h2, _ := s.Hist(MetricDelay, 0); h2.N() != 1 {
		t.Error("snapshot aliases live histogram counts")
	}
	if s2 := c.TakeSnapshot(50); s2.Seq != 2 {
		t.Errorf("second snapshot Seq = %d, want 2", s2.Seq)
	}
}

func TestOnSnapshotHook(t *testing.T) {
	var got []*Snapshot
	c, err := New(Options{SnapshotEvery: 5, OnSnapshot: func(s *Snapshot) { got = append(got, s) }})
	if err != nil {
		t.Fatal(err)
	}
	c.Arrival(0)
	s := c.TakeSnapshot(5)
	if len(got) != 1 || got[0] != s {
		t.Fatalf("hook saw %d snapshots, want the one returned", len(got))
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	mk := func() []byte {
		s := collectSample(t).TakeSnapshot(40)
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := mk(), mk()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical collector states serialise differently:\n%s\n%s", a, b)
	}
	var back Snapshot
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Counter(MetricArrivals, 1) != 1 {
		t.Error("round-trip lost counter value")
	}
}

func TestDiffReplay(t *testing.T) {
	a := collectSample(t).TakeSnapshot(40)
	b := collectSample(t).TakeSnapshot(40)
	if err := DiffReplay(a, b); err != nil {
		t.Fatalf("identical snapshots differ: %v", err)
	}
	// Gauges are excluded: wiping them must not trip the audit.
	b.Gauges = nil
	if err := DiffReplay(a, b); err != nil {
		t.Fatalf("gauge-only difference reported: %v", err)
	}
	b.Counters[0].V++
	if err := DiffReplay(a, b); err == nil {
		t.Fatal("counter divergence not reported")
	}
	b = collectSample(t).TakeSnapshot(40)
	b.Hists[0].Counts[0]++
	if err := DiffReplay(a, b); err == nil {
		t.Fatal("histogram bucket divergence not reported")
	}
	b = collectSample(t).TakeSnapshot(40)
	b.Hists[0].Sum += 1e-9
	if err := DiffReplay(a, b); err == nil {
		t.Fatal("histogram sum divergence not reported")
	}
	if err := DiffReplay(nil, a); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}

func TestWriteProm(t *testing.T) {
	s := collectSample(t).TakeSnapshot(40)
	var buf bytes.Buffer
	if err := WriteProm(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"hybridqos_sim_time 40\n",
		`hybridqos_arrivals_total{class="0"} 1`,
		`hybridqos_blocked_requests_total{class="1"} 4`,
		"hybridqos_blocked_total 1",
		"hybridqos_queue_requests 5",
		`hybridqos_delay_bucket{class="0",le="4"} 1`,
		`hybridqos_delay_bucket{class="0",le="+Inf"} 1`,
		`hybridqos_delay_sum{class="0"} 2.5`,
		`hybridqos_delay_count{class="0"} 1`,
		"# TYPE hybridqos_delay histogram\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// One TYPE line per metric family, even with several class labels.
	if n := strings.Count(out, "# TYPE hybridqos_arrivals_total counter"); n != 1 {
		t.Errorf("%d TYPE lines for arrivals, want 1", n)
	}
	// Cumulative le buckets never decrease.
	if strings.Contains(out, "-") && strings.Contains(out, "le=\"-") {
		t.Error("negative le bound emitted")
	}
	if err := WriteProm(&buf, nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}

func TestBuildTimeline(t *testing.T) {
	c, err := New(Options{SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	var snaps []*Snapshot
	c.Served(0, 1, true)
	c.Served(0, 1, true)
	c.ObserveQueue(1, 2)
	snaps = append(snaps, c.TakeSnapshot(10))
	c.Served(0, 8, false)
	c.Served(1, 0.25, false)
	c.ObserveQueue(3, 7)
	snaps = append(snaps, c.TakeSnapshot(20))
	// Third window: nothing served for class 1 → NaN percentile.
	c.Served(0, 2, true)
	snaps = append(snaps, c.TakeSnapshot(30))

	tl, err := BuildTimeline(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Ticks() != 3 {
		t.Fatalf("Ticks() = %d, want 3", tl.Ticks())
	}
	if len(tl.PerClass) != 2 || tl.PerClass[0].Class != 0 || tl.PerClass[1].Class != 1 {
		t.Fatalf("PerClass = %+v, want classes [0 1]", tl.PerClass)
	}
	c0 := tl.PerClass[0]
	if got := []int64{c0.Served[0], c0.Served[1], c0.Served[2]}; got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Errorf("class 0 served per window = %v, want [2 1 1]", got)
	}
	// Window 1 for class 0 holds two delays of exactly 1 → p50 within bucket (0.5, 1].
	if p := c0.P50[0]; p <= 0.5 || p > 1 {
		t.Errorf("class 0 window 0 p50 = %g, want in (0.5, 1]", p)
	}
	// Window 2 for class 0 holds one delay of 8 → all percentiles in (4, 8].
	if p := c0.P95[1]; p <= 4 || p > 8 {
		t.Errorf("class 0 window 1 p95 = %g, want in (4, 8]", p)
	}
	c1 := tl.PerClass[1]
	if !math.IsNaN(c1.P50[0]) {
		t.Errorf("class 1 window 0 p50 = %g, want NaN (no samples yet)", c1.P50[0])
	}
	if !math.IsNaN(c1.P50[2]) {
		t.Errorf("class 1 window 2 p50 = %g, want NaN (empty window)", c1.P50[2])
	}
	if tl.QueueRequests[1] != 7 {
		t.Errorf("QueueRequests[1] = %g, want 7", tl.QueueRequests[1])
	}

	if _, err := BuildTimeline(nil); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := BuildTimeline([]*Snapshot{snaps[1], snaps[0]}); err == nil {
		t.Error("backwards time accepted")
	}
	if _, err := BuildTimeline([]*Snapshot{nil}); err == nil {
		t.Error("nil snapshot accepted")
	}
}

func TestCumulativeQuantile(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Served(0, 3, false)
	}
	s := c.TakeSnapshot(1)
	if p := CumulativeQuantile(s, 0, 50); p <= 2 || p > 4 {
		t.Errorf("p50 = %g, want in (2, 4] for 100 obs of 3", p)
	}
	if p := CumulativeQuantile(s, 7, 50); !math.IsNaN(p) {
		t.Errorf("absent class p50 = %g, want NaN", p)
	}
}

func TestHistDeltaClamps(t *testing.T) {
	cur := HistSnap{Counts: []int64{5, 2, 0}}
	prev := HistSnap{Counts: []int64{3, 4}}
	got := histDelta(cur, prev)
	if got[0] != 2 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("histDelta = %v, want [2 0 0]", got)
	}
	// First window: no previous snapshot.
	got = histDelta(cur, HistSnap{})
	if got[0] != 5 || got[1] != 2 {
		t.Fatalf("histDelta vs empty = %v, want [5 2 0]", got)
	}
}

// TestServingCounters exercises the serving-mode metric methods: the lazily
// created counters and gauges must land in snapshots under their own names.
func TestServingCounters(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Expired(1)
	c.RateLimited(2)
	c.RateLimited(2)
	c.QuotaExceeded(0)
	c.Rejected(ClassNone)
	c.ObserveShedLevel(2)
	c.ObserveDraining(true)
	s := c.TakeSnapshot(5)
	for _, tc := range []struct {
		name  string
		class int
		want  int64
	}{
		{MetricExpired, 1, 1},
		{MetricRateLimited, 2, 2},
		{MetricQuotaExceeded, 0, 1},
		{MetricRejected, ClassNone, 1},
	} {
		if got := s.Counter(tc.name, tc.class); got != tc.want {
			t.Errorf("%s{class=%d} = %d, want %d", tc.name, tc.class, got, tc.want)
		}
	}
	if got := s.Gauge(MetricShedLevel, ClassNone); got != 2 {
		t.Errorf("shed_level = %g, want 2", got)
	}
	if got := s.Gauge(MetricDraining, ClassNone); got != 1 {
		t.Errorf("draining = %g, want 1", got)
	}
	c.ObserveDraining(false)
	if got := c.TakeSnapshot(6).Gauge(MetricDraining, ClassNone); got != 0 {
		t.Errorf("draining after reset = %g, want 0", got)
	}
}
