package telemetry

import (
	"fmt"
	"math"
	"sort"

	"hybridqos/internal/rng"
)

// Metric names the Collector maintains. Counters and histograms are derived
// one-for-one from trace events (replay-auditable); gauges sample live engine
// state and exist only in live snapshots.
const (
	// Counters, keyed by class unless noted.
	MetricArrivals       = "arrivals"           // requests reaching the server
	MetricServedPush     = "served_push"        // requests satisfied by a broadcast
	MetricServedPull     = "served_pull"        // requests satisfied on demand
	MetricBlockedReqs    = "blocked_requests"   // requests lost to bandwidth blocking
	MetricRetries        = "retries"            // client re-requests after corruption
	MetricShed           = "shed"               // requests refused by admission control
	MetricPushBroadcasts = "push_broadcasts"    // unlabelled: completed broadcasts
	MetricPullTx         = "pull_transmissions" // unlabelled: completed pull transmissions
	MetricBlocked        = "blocked"            // unlabelled: pull entries blocked
	MetricCorruptPush    = "corrupt_push"       // unlabelled: broadcasts lost downlink
	MetricCorruptPull    = "corrupt_pull"       // unlabelled: pull deliveries lost downlink

	// Counters emitted only by the serving mode (cmd/qosd). The registry
	// creates metrics lazily, so attaching these names costs a simulation
	// run nothing: sim snapshots are byte-identical with or without them.
	MetricExpired       = "expired"        // admitted requests that missed their deadline
	MetricRateLimited   = "rate_limited"   // requests refused by the class token bucket
	MetricQuotaExceeded = "quota_exceeded" // requests refused by the class pending quota
	MetricRejected      = "rejected"       // requests refused before admission (bad key, draining)

	// Counters emitted only by multi-cell runs (internal/cluster). Like the
	// serving-mode names, they attach lazily and cost single-cell runs
	// nothing.
	MetricHandoffs       = "handoffs"        // roaming requests accepted into the cell
	MetricHandoffRefused = "handoff_refused" // roaming requests the cell turned away

	// Histograms, keyed by class.
	MetricDelay = "delay" // access time of served requests

	// Gauges (live-only; excluded from the replay audit).
	MetricQueueItems       = "queue_items"        // distinct items pending pull
	MetricQueueRequests    = "queue_requests"     // requests pending pull
	MetricQueueRequestsMax = "queue_requests_max" // peak pending requests so far
	MetricPendingRetries   = "pending_retries"    // booked but undelivered re-requests
	MetricBandwidthInUse   = "bandwidth_in_use"   // per-class reserved bandwidth units
	MetricShedLevel        = "shed_level"         // admission shed level (classes refused)
	MetricDraining         = "draining"           // 1 once graceful drain has begun
)

// Options parameterises a Collector.
type Options struct {
	// SnapshotEvery is the sim-time snapshot cadence in broadcast units. The
	// engine emits one trace.KindSnapshot event every SnapshotEvery units of
	// simulated time. 0 disables periodic snapshots (the collector still
	// counts; TakeSnapshot may be called manually).
	SnapshotEvery float64
	// OnSnapshot, when non-nil, is called with every snapshot as it is taken
	// — synchronously, from the simulation loop. Used by the CLI layer to
	// serve live /metrics; keep it fast and do not touch simulation state.
	OnSnapshot func(*Snapshot)
	// Cell labels every snapshot with the broadcast cell the collector
	// belongs to in multi-cell runs; leave 0 for single-cell runs.
	Cell int
	// Exemplars caps the sampled span IDs kept per (class, delay bucket):
	// each bucket carries up to Exemplars IDs chosen by a deterministic
	// reservoir (Algorithm R) over the span IDs observed for it, linking the
	// aggregate histogram back to concrete requests. 0 disables exemplars;
	// replay audits exclude them either way (DiffReplay compares counters
	// and histograms only, so snapshots stay comparable across collectors
	// with different exemplar settings).
	Exemplars int
	// ExemplarRNG drives reservoir replacement and must be a stream split
	// from the run's seeded root when Exemplars > 0, keeping exemplar
	// selection a pure function of the seed.
	ExemplarRNG *rng.Source
}

// Collector is the engine-facing instrumentation front end: one instance per
// simulation run (it is stateful and not safe for concurrent use — like a
// trace.Tracer or a loss model, never share one across parallel
// replications).
type Collector struct {
	reg        *Registry
	every      float64
	onSnapshot func(*Snapshot)
	snapshots  int64
	cell       int
	exK        int
	exRng      *rng.Source
	exemplars  map[exemplarKey]*exemplarRes
}

// exemplarKey addresses one delay-bucket reservoir.
type exemplarKey struct {
	class  int
	bucket int
}

// exemplarRes is one bucket's span-ID reservoir: Algorithm R over the
// stream of sampled span IDs observed for the bucket.
type exemplarRes struct {
	spans []int64
	seen  int64
}

// New builds a Collector. SnapshotEvery must be non-negative and finite.
func New(opts Options) (*Collector, error) {
	if opts.SnapshotEvery < 0 || math.IsNaN(opts.SnapshotEvery) || math.IsInf(opts.SnapshotEvery, 0) {
		return nil, fmt.Errorf("telemetry: invalid snapshot cadence %g", opts.SnapshotEvery)
	}
	if opts.Exemplars < 0 {
		return nil, fmt.Errorf("telemetry: negative exemplar reservoir size %d", opts.Exemplars)
	}
	if opts.Exemplars > 0 && opts.ExemplarRNG == nil {
		return nil, fmt.Errorf("telemetry: exemplars enabled without an RNG stream")
	}
	return &Collector{
		reg:        NewRegistry(),
		every:      opts.SnapshotEvery,
		onSnapshot: opts.OnSnapshot,
		cell:       opts.Cell,
		exK:        opts.Exemplars,
		exRng:      opts.ExemplarRNG,
	}, nil
}

// Cell returns the broadcast cell the collector is labelled with (0 in
// single-cell runs).
func (c *Collector) Cell() int { return c.cell }

// SnapshotEvery returns the configured snapshot cadence (0 = disabled).
func (c *Collector) SnapshotEvery() float64 { return c.every }

// Registry exposes the underlying registry (tests, extensions).
func (c *Collector) Registry() *Registry { return c.reg }

// Arrival counts one request arrival for the class.
func (c *Collector) Arrival(class int) {
	c.reg.Counter(MetricArrivals, class).Inc()
}

// Served counts one satisfied request and observes its access delay. push
// distinguishes broadcast-served from pull-served (a client-cache hit counts
// as pull-served with zero delay, mirroring the trace event it comes from).
func (c *Collector) Served(class int, delay float64, push bool) {
	if push {
		c.reg.Counter(MetricServedPush, class).Inc()
	} else {
		c.reg.Counter(MetricServedPull, class).Inc()
	}
	c.reg.Histogram(MetricDelay, class).Observe(delay)
}

// PushComplete counts one completed broadcast transmission.
func (c *Collector) PushComplete() {
	c.reg.Counter(MetricPushBroadcasts, ClassNone).Inc()
}

// PullComplete counts one completed pull transmission.
func (c *Collector) PullComplete() {
	c.reg.Counter(MetricPullTx, ClassNone).Inc()
}

// Blocked counts one pull entry dropped for bandwidth, attributing its
// pending requests to the entry's governing class.
func (c *Collector) Blocked(class, requests int) {
	c.reg.Counter(MetricBlocked, ClassNone).Inc()
	c.reg.Counter(MetricBlockedReqs, class).Add(int64(requests))
}

// Corrupt counts one transmission lost on the lossy downlink.
func (c *Collector) Corrupt(push bool) {
	if push {
		c.reg.Counter(MetricCorruptPush, ClassNone).Inc()
	} else {
		c.reg.Counter(MetricCorruptPull, ClassNone).Inc()
	}
}

// Retry counts one client re-request for the class.
func (c *Collector) Retry(class int) {
	c.reg.Counter(MetricRetries, class).Inc()
}

// Shed counts one admission-control refusal for the class.
func (c *Collector) Shed(class int) {
	c.reg.Counter(MetricShed, class).Inc()
}

// Expired counts one admitted request that missed its deadline (serving
// mode: the client was answered 504 before the item's transmission).
func (c *Collector) Expired(class int) {
	c.reg.Counter(MetricExpired, class).Inc()
}

// RateLimited counts one request refused by the class's token bucket.
func (c *Collector) RateLimited(class int) {
	c.reg.Counter(MetricRateLimited, class).Inc()
}

// QuotaExceeded counts one request refused by the class's pending quota.
func (c *Collector) QuotaExceeded(class int) {
	c.reg.Counter(MetricQuotaExceeded, class).Inc()
}

// Handoff counts one roaming request accepted into the cell (multi-cell
// runs).
func (c *Collector) Handoff(class int) {
	c.reg.Counter(MetricHandoffs, class).Inc()
}

// HandoffRefused counts one roaming request the cell turned away — deadline
// expired in transit, admission shed, or item absent from the cell's catalog.
func (c *Collector) HandoffRefused(class int) {
	c.reg.Counter(MetricHandoffRefused, class).Inc()
}

// Rejected counts one request refused before admission control was
// consulted — unknown API key (ClassNone) or a draining server.
func (c *Collector) Rejected(class int) {
	c.reg.Counter(MetricRejected, class).Inc()
}

// Exemplar attaches a sampled span ID to the delay bucket the observation
// falls in, keeping at most K IDs per (class, bucket) via Algorithm R so
// every observed span has an equal chance of surviving. No-op when
// exemplars are disabled or the span ID is 0 (unsampled request).
func (c *Collector) Exemplar(class int, delay float64, span int64) {
	if c.exK == 0 || span == 0 {
		return
	}
	if c.exemplars == nil {
		c.exemplars = make(map[exemplarKey]*exemplarRes)
	}
	k := exemplarKey{class: class, bucket: bucketIndex(delay)}
	res := c.exemplars[k]
	if res == nil {
		res = &exemplarRes{}
		c.exemplars[k] = res
	}
	res.seen++
	if len(res.spans) < c.exK {
		res.spans = append(res.spans, span)
		return
	}
	if j := c.exRng.Intn(int(res.seen)); j < c.exK {
		res.spans[j] = span
	}
}

// ObserveShedLevel samples the admission controller's shed level.
func (c *Collector) ObserveShedLevel(level int) {
	c.reg.Gauge(MetricShedLevel, ClassNone).Set(float64(level))
}

// ObserveDraining marks whether graceful drain has begun.
func (c *Collector) ObserveDraining(draining bool) {
	v := 0.0
	if draining {
		v = 1
	}
	c.reg.Gauge(MetricDraining, ClassNone).Set(v)
}

// ObserveQueue samples the pull queue depth (distinct items and pending
// requests). Called by the engine whenever the queue changes, so the gauges
// hold the exact current depth at every snapshot tick.
func (c *Collector) ObserveQueue(items, requests int) {
	c.reg.Gauge(MetricQueueItems, ClassNone).Set(float64(items))
	c.reg.Gauge(MetricQueueRequests, ClassNone).Set(float64(requests))
	c.reg.Gauge(MetricQueueRequestsMax, ClassNone).SetMax(float64(requests))
}

// ObservePendingRetries samples the count of booked-but-undelivered client
// re-requests.
func (c *Collector) ObservePendingRetries(n int) {
	c.reg.Gauge(MetricPendingRetries, ClassNone).Set(float64(n))
}

// ObserveBandwidth samples one class's reserved bandwidth units.
func (c *Collector) ObserveBandwidth(class int, inUse float64) {
	c.reg.Gauge(MetricBandwidthInUse, class).Set(inUse)
}

// Snapshots returns how many snapshots have been taken.
func (c *Collector) Snapshots() int64 { return c.snapshots }

// CounterSnap is one counter's value in a snapshot.
type CounterSnap struct {
	// Name is the metric name.
	Name string `json:"name"`
	// Class is the service class label, ClassNone (-1) when unlabelled.
	Class int `json:"class"`
	// V is the count.
	V int64 `json:"v"`
}

// GaugeSnap is one gauge's value in a snapshot.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Class int     `json:"class"`
	V     float64 `json:"v"`
}

// HistSnap is one histogram's state in a snapshot. Counts follow the fixed
// DelayBuckets layout (one count per bound, overflow last).
type HistSnap struct {
	Name   string  `json:"name"`
	Class  int     `json:"class"`
	Counts []int64 `json:"counts"`
	Sum    float64 `json:"sum"`
}

// N returns the histogram's total observation count.
func (h HistSnap) N() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// ExemplarSnap is one delay bucket's span-ID reservoir in a snapshot.
type ExemplarSnap struct {
	// Class is the service class label.
	Class int `json:"class"`
	// Bucket indexes the fixed DelayBuckets layout (overflow last).
	Bucket int `json:"bucket"`
	// Spans holds up to K sampled span IDs whose delays fell in the bucket.
	Spans []int64 `json:"spans"`
	// Seen counts every sampled observation the bucket received.
	Seen int64 `json:"seen"`
}

// Snapshot is the registry's full state at one simulated instant. All
// sections are sorted by (name, class), so identical collector states always
// serialise to identical bytes.
type Snapshot struct {
	// T is the simulated time the snapshot was taken.
	T float64 `json:"t"`
	// Seq is the 1-based snapshot index within the run.
	Seq int64 `json:"seq"`
	// Cell is the broadcast cell the snapshot belongs to in multi-cell runs
	// (0 and omitted otherwise). Excluded from the replay audit, which
	// reconstructs counters from a cell's own event stream.
	Cell int `json:"cell,omitempty"`
	// Counters, Gauges and Hists hold every live metric instance.
	Counters []CounterSnap `json:"counters,omitempty"`
	Gauges   []GaugeSnap   `json:"gauges,omitempty"`
	Hists    []HistSnap    `json:"hists,omitempty"`
	// Exemplars carries the span-ID reservoirs when exemplar sampling is
	// on; nil (and omitted) otherwise, so exemplar-off snapshots are
	// byte-identical to pre-exemplar ones. Excluded from the replay audit
	// like gauges: a replay collector has no reservoir RNG.
	Exemplars []ExemplarSnap `json:"exemplars,omitempty"`
}

// Counter returns the named counter's value in the snapshot, 0 when absent.
func (s *Snapshot) Counter(name string, class int) int64 {
	for _, c := range s.Counters {
		if c.Name == name && c.Class == class {
			return c.V
		}
	}
	return 0
}

// Gauge returns the named gauge's value, NaN when absent.
func (s *Snapshot) Gauge(name string, class int) float64 {
	for _, g := range s.Gauges {
		if g.Name == name && g.Class == class {
			return g.V
		}
	}
	return math.NaN()
}

// Hist returns the named histogram snapshot and whether it is present.
func (s *Snapshot) Hist(name string, class int) (HistSnap, bool) {
	for _, h := range s.Hists {
		if h.Name == name && h.Class == class {
			return h, true
		}
	}
	return HistSnap{}, false
}

// TakeSnapshot captures the registry's current state at simulated time t and
// invokes the OnSnapshot hook. The returned snapshot owns copies of every
// count, so later collection does not mutate it.
func (c *Collector) TakeSnapshot(t float64) *Snapshot {
	c.snapshots++
	s := &Snapshot{T: t, Seq: c.snapshots, Cell: c.cell}
	for _, k := range sortedCounterKeys(c.reg.counters) {
		s.Counters = append(s.Counters, CounterSnap{Name: k.name, Class: k.class, V: c.reg.counters[k].Value()})
	}
	for _, k := range sortedGaugeKeys(c.reg.gauges) {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: k.name, Class: k.class, V: c.reg.gauges[k].Value()})
	}
	for _, k := range sortedHistKeys(c.reg.hists) {
		h := c.reg.hists[k]
		s.Hists = append(s.Hists, HistSnap{Name: k.name, Class: k.class, Counts: h.Counts(), Sum: h.Sum()})
	}
	for _, k := range sortedExemplarKeys(c.exemplars) {
		res := c.exemplars[k]
		s.Exemplars = append(s.Exemplars, ExemplarSnap{
			Class:  k.class,
			Bucket: k.bucket,
			Spans:  append([]int64(nil), res.spans...),
			Seen:   res.seen,
		})
	}
	if c.onSnapshot != nil {
		c.onSnapshot(s)
	}
	return s
}

// sortedExemplarKeys returns the reservoir keys in (class, bucket) order —
// the maporder contract for the exemplar map.
func sortedExemplarKeys(m map[exemplarKey]*exemplarRes) []exemplarKey {
	keys := make([]exemplarKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].class != keys[j].class {
			return keys[i].class < keys[j].class
		}
		return keys[i].bucket < keys[j].bucket
	})
	return keys
}

// DiffReplay compares the replay-auditable sections of two snapshots — the
// counters and histogram states — and returns a descriptive error on the
// first divergence. Gauges and exemplar reservoirs sample state a replay
// cannot reconstruct (live engine state, the reservoir RNG stream) and are
// deliberately excluded.
func DiffReplay(got, want *Snapshot) error {
	if got == nil || want == nil {
		return fmt.Errorf("telemetry: nil snapshot")
	}
	if len(got.Counters) != len(want.Counters) {
		return fmt.Errorf("telemetry: %d counters, want %d", len(got.Counters), len(want.Counters))
	}
	for i, g := range got.Counters {
		w := want.Counters[i]
		if g != w {
			return fmt.Errorf("telemetry: counter %d: %s{class=%d}=%d, want %s{class=%d}=%d",
				i, g.Name, g.Class, g.V, w.Name, w.Class, w.V)
		}
	}
	if len(got.Hists) != len(want.Hists) {
		return fmt.Errorf("telemetry: %d histograms, want %d", len(got.Hists), len(want.Hists))
	}
	for i, g := range got.Hists {
		w := want.Hists[i]
		if g.Name != w.Name || g.Class != w.Class {
			return fmt.Errorf("telemetry: histogram %d: %s{class=%d}, want %s{class=%d}",
				i, g.Name, g.Class, w.Name, w.Class)
		}
		if g.Sum != w.Sum {
			return fmt.Errorf("telemetry: histogram %s{class=%d}: sum %v, want %v", g.Name, g.Class, g.Sum, w.Sum)
		}
		if len(g.Counts) != len(w.Counts) {
			return fmt.Errorf("telemetry: histogram %s{class=%d}: %d buckets, want %d",
				g.Name, g.Class, len(g.Counts), len(w.Counts))
		}
		for b := range g.Counts {
			if g.Counts[b] != w.Counts[b] {
				return fmt.Errorf("telemetry: histogram %s{class=%d}: bucket %d count %d, want %d",
					g.Name, g.Class, b, g.Counts[b], w.Counts[b])
			}
		}
	}
	return nil
}
