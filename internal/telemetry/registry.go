// Package telemetry is the simulator's deterministic observability layer:
// a metrics registry of monotonic counters, gauges and fixed-bound log-scale
// histograms keyed by (metric name, service class), plus a Collector the
// engine drives from its hot points (arrivals, transmissions, blocks, sheds,
// retries, queue depth, bandwidth occupancy) and snapshots at a fixed
// sim-time cadence.
//
// The layer obeys the repository's determinism contract: no wall clock, no
// map-order-dependent effects (every export collects keys and sorts them),
// and fixed histogram bucket bounds, so a snapshot stream is a pure function
// of the simulated event trajectory. Counters and histograms are exactly
// reproducible from a trace — trace.VerifySnapshots replays the event stream
// through a fresh Collector and cross-checks every embedded snapshot
// bit-for-bit. Gauges are sampled live state (queue depth, bandwidth in use)
// and are excluded from the replay audit.
package telemetry

import (
	"math"
	"sort"
)

// delayBounds are the inclusive upper bounds of the log-scale (base-2) delay
// histogram buckets, in broadcast units, plus an implicit +Inf overflow
// bucket. The bounds are fixed constants — part of the snapshot format — so
// two runs, or a run and its replay, always agree on bucket layout.
var delayBounds = []float64{
	0.0625, 0.125, 0.25, 0.5, 1, 2, 4, 8, 16, 32,
	64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
}

// DelayBuckets returns a copy of the fixed histogram bucket bounds. The
// histogram has len(DelayBuckets())+1 buckets: one per bound (values ≤ the
// bound and > the previous bound) plus the +Inf overflow bucket.
func DelayBuckets() []float64 {
	return append([]float64(nil), delayBounds...)
}

// Counter is a monotonically increasing event count.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n. Negative n is ignored: counters are monotonic by contract.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v += n
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is an instantaneous value that can move both ways.
type Gauge struct {
	v float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// SetMax keeps the maximum of the current and the given value.
func (g *Gauge) SetMax(v float64) {
	if v > g.v {
		g.v = v
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram counts observations into the fixed log-scale buckets. Counts and
// the running sum are exactly reproducible from the observation sequence, so
// histograms participate in the replay audit.
type Histogram struct {
	counts []int64
	sum    float64
}

// Observe records one observation. NaN is ignored (it has no bucket).
func (h *Histogram) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	if h.counts == nil {
		h.counts = make([]int64, len(delayBounds)+1)
	}
	h.counts[bucketIndex(x)]++
	h.sum += x
}

// bucketIndex returns the bucket for x: the first bound ≥ x, or the overflow
// bucket when x exceeds every bound.
func bucketIndex(x float64) int {
	return sort.SearchFloat64s(delayBounds, x)
}

// N returns the total observation count.
func (h *Histogram) N() int64 {
	var n int64
	for _, c := range h.counts {
		n += c
	}
	return n
}

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Counts returns a copy of the per-bucket counts (len(DelayBuckets())+1,
// overflow last), nil when nothing was observed.
func (h *Histogram) Counts() []int64 {
	if h.counts == nil {
		return nil
	}
	return append([]int64(nil), h.counts...)
}

// metricKey identifies one metric instance: a name plus the service class it
// is labelled with (ClassNone for unlabelled metrics).
type metricKey struct {
	name  string
	class int
}

// ClassNone labels metrics that are not split by service class.
const ClassNone = -1

// Registry holds the live metric instances. Instances are created lazily on
// first touch; export order is deterministic (sorted by name, then class).
// The zero value is not usable; call NewRegistry.
type Registry struct {
	counters map[metricKey]*Counter
	gauges   map[metricKey]*Gauge
	hists    map[metricKey]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[metricKey]*Counter),
		gauges:   make(map[metricKey]*Gauge),
		hists:    make(map[metricKey]*Histogram),
	}
}

// Counter returns (creating if needed) the counter name{class}.
func (r *Registry) Counter(name string, class int) *Counter {
	k := metricKey{name, class}
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge name{class}.
func (r *Registry) Gauge(name string, class int) *Gauge {
	k := metricKey{name, class}
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram name{class}.
func (r *Registry) Histogram(name string, class int) *Histogram {
	k := metricKey{name, class}
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// sortedKeys returns the map's keys ordered by (name, class) — the
// collect-then-sort idiom every export path goes through, so no output ever
// depends on Go's randomised map iteration order.
func sortedCounterKeys(m map[metricKey]*Counter) []metricKey {
	keys := make([]metricKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}

func sortedGaugeKeys(m map[metricKey]*Gauge) []metricKey {
	keys := make([]metricKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}

func sortedHistKeys(m map[metricKey]*Histogram) []metricKey {
	keys := make([]metricKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}

func keyLess(a, b metricKey) bool {
	if a.name != b.name {
		return a.name < b.name
	}
	return a.class < b.class
}
