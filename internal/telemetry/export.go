package telemetry

import (
	"fmt"
	"os"

	"hybridqos/internal/clients"
	"hybridqos/internal/report"
	"hybridqos/internal/svgplot"
)

// This file lowers a Timeline to the artefact formats shared by
// `traceinfo -timeline` and the facade's ExportTimeline: one wide CSV and two
// SVG charts.

// TimelineCSV renders the timeline as one wide CSV: snapshot time, queue
// gauges, then per-class windowed percentiles and served counts.
func TimelineCSV(tl *Timeline) string {
	headers := []string{"t", "queue_items", "queue_requests"}
	for _, ct := range tl.PerClass {
		c := clients.Class(ct.Class).String()
		headers = append(headers, c+"_p50", c+"_p95", c+"_p99", c+"_served")
	}
	csv := report.NewCSV(headers...)
	for i := range tl.T {
		row := []string{
			report.FormatFloat(tl.T[i], "%g"),
			report.FormatFloat(tl.QueueItems[i], "%g"),
			report.FormatFloat(tl.QueueRequests[i], "%g"),
		}
		for _, ct := range tl.PerClass {
			row = append(row,
				report.FormatFloat(ct.P50[i], "%.4g"),
				report.FormatFloat(ct.P95[i], "%.4g"),
				report.FormatFloat(ct.P99[i], "%.4g"),
				fmt.Sprint(ct.Served[i]))
		}
		csv.AddRow(row...)
	}
	return csv.String()
}

// DelayChart plots each class's windowed p95 delay; empty windows render as
// gaps.
func DelayChart(tl *Timeline) svgplot.Chart {
	var series []svgplot.Series
	for _, ct := range tl.PerClass {
		series = append(series, svgplot.Series{
			Name: clients.Class(ct.Class).String() + " p95",
			X:    tl.T,
			Y:    ct.P95,
		})
	}
	return svgplot.Chart{
		Title:     "Windowed p95 access delay per class",
		XLabel:    "simulated time (broadcast units)",
		YLabel:    "p95 delay (broadcast units)",
		Series:    series,
		AllowGaps: true,
	}
}

// QueueChart plots the sampled pull-queue depth gauges.
func QueueChart(tl *Timeline) svgplot.Chart {
	return svgplot.Chart{
		Title:  "Pull queue depth at snapshot ticks",
		XLabel: "simulated time (broadcast units)",
		YLabel: "queue depth",
		Series: []svgplot.Series{
			{Name: "distinct items", X: tl.T, Y: tl.QueueItems},
			{Name: "pending requests", X: tl.T, Y: tl.QueueRequests},
		},
		AllowGaps: true,
	}
}

// Artifacts names the files WriteArtifacts produced.
type Artifacts struct {
	CSV, DelaySVG, QueueSVG string
}

// WriteArtifacts writes the timeline as <prefix>.csv plus the delay and
// queue-depth SVG charts at <prefix>-delay.svg and <prefix>-queue.svg, and
// returns the three paths.
func WriteArtifacts(tl *Timeline, prefix string) (Artifacts, error) {
	a := Artifacts{
		CSV:      prefix + ".csv",
		DelaySVG: prefix + "-delay.svg",
		QueueSVG: prefix + "-queue.svg",
	}
	if err := os.WriteFile(a.CSV, []byte(TimelineCSV(tl)), 0o644); err != nil {
		return Artifacts{}, err
	}
	for _, chart := range []struct {
		path string
		c    svgplot.Chart
	}{
		{a.DelaySVG, DelayChart(tl)},
		{a.QueueSVG, QueueChart(tl)},
	} {
		svg, err := chart.c.Render()
		if err != nil {
			return Artifacts{}, err
		}
		if err := os.WriteFile(chart.path, []byte(svg), 0o644); err != nil {
			return Artifacts{}, err
		}
	}
	return a, nil
}
