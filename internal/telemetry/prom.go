package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteProm renders a snapshot in the Prometheus text exposition format
// (version 0.0.4): counters as `hybridqos_<name>_total`, gauges as
// `hybridqos_<name>`, histograms as the conventional `_bucket`/`_sum`/
// `_count` triple with cumulative `le` buckets. Class-labelled metrics carry
// a `class` label with the numeric class index. Output order follows the
// snapshot's sorted sections, so identical snapshots render to identical
// bytes. The function is tolerant of snapshots decoded from untrusted input:
// histogram count slices of any length render without panicking.
func WriteProm(w io.Writer, s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("telemetry: nil snapshot")
	}
	if _, err := fmt.Fprintf(w, "# TYPE hybridqos_sim_time gauge\nhybridqos_sim_time %s\n", promFloat(s.T)); err != nil {
		return err
	}
	var lastType string
	emitType := func(name, kind string) error {
		if name == lastType {
			return nil
		}
		lastType = name
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		return err
	}
	for _, c := range s.Counters {
		name := "hybridqos_" + c.Name + "_total"
		if err := emitType(name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", name, promLabels(c.Class, ""), c.V); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := "hybridqos_" + g.Name
		if err := emitType(name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", name, promLabels(g.Class, ""), promFloat(g.V)); err != nil {
			return err
		}
	}
	for _, h := range s.Hists {
		name := "hybridqos_" + h.Name
		if err := emitType(name, "histogram"); err != nil {
			return err
		}
		var cum int64
		for i, bound := range delayBounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			le := promFloat(bound)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(h.Class, le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(h.Class, "+Inf"), h.N()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(h.Class, ""), promFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(h.Class, ""), h.N()); err != nil {
			return err
		}
	}
	return nil
}

// promLabels renders the label set for a metric: the class label when the
// metric is class-keyed and the `le` bound label for histogram buckets.
func promLabels(class int, le string) string {
	switch {
	case class == ClassNone && le == "":
		return ""
	case class == ClassNone:
		return `{le="` + le + `"}`
	case le == "":
		return `{class="` + strconv.Itoa(class) + `"}`
	default:
		return `{class="` + strconv.Itoa(class) + `",le="` + le + `"}`
	}
}

// promFloat renders a float the way Prometheus expects (shortest round-trip
// form; NaN and infinities spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}
