package telemetry

import (
	"fmt"
	"math"
	"sort"

	"hybridqos/internal/stats"
)

// ClassTimeline is one service class's per-snapshot-window delay series.
// Each index corresponds to one snapshot tick; percentiles are computed over
// the window since the PREVIOUS snapshot (bucket-count deltas), so the series
// shows queue dynamics over time rather than a slowly converging cumulative
// view. Windows with no served requests hold NaN.
type ClassTimeline struct {
	// Class is the service class index.
	Class int
	// P50, P95 and P99 are the estimated delay percentiles per window.
	P50, P95, P99 []float64
	// Served is the number of requests served in each window.
	Served []int64
}

// Timeline is the time-series view of a snapshot stream.
type Timeline struct {
	// T holds the snapshot times.
	T []float64
	// QueueItems and QueueRequests are the sampled pull-queue depths.
	QueueItems, QueueRequests []float64
	// PerClass holds one delay timeline per class, sorted by class index.
	PerClass []ClassTimeline
}

// Ticks returns the number of snapshot ticks.
func (tl *Timeline) Ticks() int { return len(tl.T) }

// BuildTimeline lowers an ordered snapshot stream (as produced by one run's
// periodic KindSnapshot events, oldest first) to per-window time series. It
// errors on an empty stream or on snapshots whose times go backwards.
func BuildTimeline(snaps []*Snapshot) (*Timeline, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("telemetry: no snapshots")
	}
	classSet := make(map[int]bool)
	for i, s := range snaps {
		if s == nil {
			return nil, fmt.Errorf("telemetry: snapshot %d is nil", i)
		}
		if i > 0 && s.T < snaps[i-1].T {
			return nil, fmt.Errorf("telemetry: snapshot %d at t=%g before t=%g", i, s.T, snaps[i-1].T)
		}
		for _, h := range s.Hists {
			if h.Name == MetricDelay {
				classSet[h.Class] = true
			}
		}
	}
	classes := make([]int, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Ints(classes)

	tl := &Timeline{}
	for _, c := range classes {
		tl.PerClass = append(tl.PerClass, ClassTimeline{Class: c})
	}
	prev := make(map[int]HistSnap, len(classes))
	for _, s := range snaps {
		tl.T = append(tl.T, s.T)
		tl.QueueItems = append(tl.QueueItems, s.Gauge(MetricQueueItems, ClassNone))
		tl.QueueRequests = append(tl.QueueRequests, s.Gauge(MetricQueueRequests, ClassNone))
		for i, c := range classes {
			h, _ := s.Hist(MetricDelay, c)
			window := histDelta(h, prev[c])
			ct := &tl.PerClass[i]
			ct.P50 = append(ct.P50, stats.BucketQuantile(50, delayBounds, window))
			ct.P95 = append(ct.P95, stats.BucketQuantile(95, delayBounds, window))
			ct.P99 = append(ct.P99, stats.BucketQuantile(99, delayBounds, window))
			var n int64
			for _, v := range window {
				n += v
			}
			ct.Served = append(ct.Served, n)
			prev[c] = h
		}
	}
	return tl, nil
}

// histDelta returns cur−prev per bucket, clamped at zero (counters are
// monotonic; a negative delta means the stream mixed runs and is treated as
// an empty window rather than a panic).
func histDelta(cur, prev HistSnap) []int64 {
	out := make([]int64, len(cur.Counts))
	for i, v := range cur.Counts {
		if i < len(prev.Counts) {
			v -= prev.Counts[i]
		}
		if v > 0 {
			out[i] = v
		}
	}
	return out
}

// CumulativeQuantile estimates the q-th percentile of a snapshot's full
// delay histogram for one class (NaN when the class has no samples) —
// the run-so-far view, as opposed to BuildTimeline's per-window series.
func CumulativeQuantile(s *Snapshot, class int, q float64) float64 {
	h, ok := s.Hist(MetricDelay, class)
	if !ok {
		return math.NaN()
	}
	return stats.BucketQuantile(q, delayBounds, h.Counts)
}
