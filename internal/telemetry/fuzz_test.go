package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzSnapshotDecode feeds arbitrary bytes through the snapshot JSON decoder
// and exercises every consumer of a decoded snapshot: the Prometheus
// exposition writer, the timeline builder and the replay differ must never
// panic on malformed input (short count slices, absurd classes, NaN fields).
func FuzzSnapshotDecode(f *testing.F) {
	c, err := New(Options{SnapshotEvery: 1})
	if err != nil {
		f.Fatal(err)
	}
	c.Arrival(0)
	c.Served(0, 1.5, true)
	c.Blocked(1, 3)
	c.ObserveQueue(2, 4)
	seed, err := json.Marshal(c.TakeSnapshot(1))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"t":1,"hists":[{"name":"delay","class":-5,"counts":[1,2],"sum":1e308}]}`))
	f.Add([]byte(`{"counters":[{"name":"x","class":0,"v":-1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteProm(&buf, &s); err != nil {
			t.Fatalf("WriteProm on decodable snapshot: %v", err)
		}
		_, _ = BuildTimeline([]*Snapshot{&s})
		_ = DiffReplay(&s, &s)
		// Round-trip: a decoded snapshot must re-encode.
		if _, err := json.Marshal(&s); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
	})
}
