package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Title", "K", "Delay")
	tbl.AddRow("10", "5.2")
	tbl.AddRow("100", "42.0")
	out := tbl.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("expected 5 lines, got %d: %q", len(lines), out)
	}
}

func TestTableLineCount(t *testing.T) {
	tbl := NewTable("T", "A", "B")
	tbl.AddRow("1", "2")
	tbl.AddRow("3", "4")
	lines := strings.Split(strings.TrimRight(tbl.String(), "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("%d lines: %q", len(lines), tbl.String())
	}
}

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("", "col", "x")
	tbl.AddRow("verylongcell", "1")
	lines := strings.Split(tbl.String(), "\n")
	// Header line must be padded to the widest cell.
	if !strings.HasPrefix(lines[0], "col         ") {
		t.Fatalf("header not padded: %q", lines[0])
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRow("1")                // short: pads
	tbl.AddRow("1", "2", "3", "4") // long: truncates
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	out := tbl.String()
	if strings.Contains(out, "4") {
		t.Fatalf("extra cell not dropped: %q", out)
	}
}

func TestAddFloats(t *testing.T) {
	tbl := NewTable("", "k", "v1", "v2", "v3")
	tbl.AddFloats("10", "%.2f", 1.5, math.NaN(), math.Inf(1))
	out := tbl.String()
	for _, want := range []string{"1.50", "-", "inf"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[string]string{
		FormatFloat(1.234, "%.1f"):        "1.2",
		FormatFloat(math.NaN(), "%.1f"):   "-",
		FormatFloat(math.Inf(1), "%.1f"):  "inf",
		FormatFloat(math.Inf(-1), "%.1f"): "-inf",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("FormatFloat got %q want %q", got, want)
		}
	}
}

func TestCSVBasic(t *testing.T) {
	c := NewCSV("k", "delay")
	c.AddRow("10", "5.2")
	c.AddRow("20", "6.1")
	want := "k,delay\n10,5.2\n20,6.1\n"
	if got := c.String(); got != want {
		t.Fatalf("got %q want %q", got, want)
	}
	if c.NumRows() != 2 {
		t.Fatalf("NumRows = %d", c.NumRows())
	}
}

func TestCSVEscaping(t *testing.T) {
	c := NewCSV("a")
	c.AddRow(`with,comma`)
	c.AddRow(`with"quote`)
	c.AddRow("with\nnewline")
	got := c.String()
	for _, want := range []string{`"with,comma"`, `"with""quote"`, "\"with\nnewline\""} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in %q", want, got)
		}
	}
}

func TestCSVRowCopying(t *testing.T) {
	c := NewCSV("a", "b")
	cells := []string{"1", "2"}
	c.AddRow(cells...)
	cells[0] = "mutated"
	if strings.Contains(c.String(), "mutated") {
		t.Fatal("AddRow did not copy cells")
	}
}

func TestTableMultibyteAlignment(t *testing.T) {
	tbl := NewTable("", "θ̂", "value")
	tbl.AddRow("1.00", "x")
	lines := strings.Split(tbl.String(), "\n")
	// The separator under a multibyte header must match its rune width.
	if !strings.HasPrefix(lines[1], strings.Repeat("-", 4)) {
		t.Fatalf("separator mis-sized for multibyte header: %q", lines[1])
	}
	// The header cell "θ̂" is 2 runes; the data cell "1.00" is 4: the
	// header must be padded to 4 columns before the gap.
	if !strings.Contains(lines[0], "value") {
		t.Fatalf("header line broken: %q", lines[0])
	}
}
