// Package report renders experiment output: fixed-width ASCII tables for the
// terminal and CSV for downstream plotting. The figure generators in
// internal/experiments emit their series through this package so every CLI
// and benchmark prints consistently.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
	"unicode/utf8"
)

// Table is a simple column-aligned text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddFloats appends a row of formatted floats after a leading label cell.
func (t *Table) AddFloats(label string, format string, values ...float64) {
	cells := make([]string, 0, len(values)+1)
	cells = append(cells, label)
	for _, v := range values {
		cells = append(cells, FormatFloat(v, format))
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// FormatFloat renders a float with the given fmt verb, showing NaN and Inf
// readably.
func FormatFloat(v float64, format string) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	default:
		return fmt.Sprintf(format, v)
	}
}

// WriteTo renders the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if n := utf8.RuneCountInString(cell); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_, _ = t.WriteTo(&b)
	return b.String()
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// CSV renders rows as RFC-4180-ish CSV (quoting cells containing commas,
// quotes or newlines).
type CSV struct {
	headers []string
	rows    [][]string
}

// NewCSV creates a CSV document with the given header row.
func NewCSV(headers ...string) *CSV {
	return &CSV{headers: headers}
}

// AddRow appends a record; its arity should match the header.
func (c *CSV) AddRow(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	c.rows = append(c.rows, row)
}

// NumRows returns the number of data records.
func (c *CSV) NumRows() int { return len(c.rows) }

// WriteTo renders the document. It implements io.WriterTo.
func (c *CSV) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	writeRecord := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(escapeCSV(cell))
		}
		b.WriteByte('\n')
	}
	writeRecord(c.headers)
	for _, row := range c.rows {
		writeRecord(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the document to a string.
func (c *CSV) String() string {
	var b strings.Builder
	_, _ = c.WriteTo(&b)
	return b.String()
}

func escapeCSV(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
