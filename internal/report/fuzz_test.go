package report

import (
	"strings"
	"testing"
)

// FuzzCSVEscapeRoundTrip: any cell content must survive the CSV encoding
// in a form a conforming parser can recover — we check structural safety:
// the record count never changes regardless of embedded delimiters.
func FuzzCSVEscapeRoundTrip(f *testing.F) {
	f.Add("plain")
	f.Add("with,comma")
	f.Add(`with"quote`)
	f.Add("with\nnewline")
	f.Add("with\r\nCRLF")
	f.Add(`",",","`)
	f.Fuzz(func(t *testing.T, cell string) {
		c := NewCSV("a", "b")
		c.AddRow(cell, "x")
		out := c.String()
		// A conforming reader counts records by unquoted newlines; verify
		// by a tiny state machine: exactly 2 records (header + row).
		records := countCSVRecords(out)
		if records != 2 {
			t.Fatalf("cell %q produced %d records", cell, records)
		}
	})
}

// countCSVRecords counts records honouring RFC-4180 quoting.
func countCSVRecords(s string) int {
	inQuotes := false
	records := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if inQuotes && i+1 < len(s) && s[i+1] == '"' {
				i++ // escaped quote
				continue
			}
			inQuotes = !inQuotes
		case '\n':
			if !inQuotes {
				records++
			}
		}
	}
	return records
}

// FuzzTableNeverPanics: arbitrary cell content must render without panics
// and preserve row counts.
func FuzzTableNeverPanics(f *testing.F) {
	f.Add("x", "y")
	f.Add("", "")
	f.Add(strings.Repeat("w", 500), "\t\t")
	f.Fuzz(func(t *testing.T, a, b string) {
		tbl := NewTable("T", "col1", "col2")
		tbl.AddRow(a, b)
		out := tbl.String()
		if out == "" {
			t.Fatal("empty render")
		}
		if tbl.NumRows() != 1 {
			t.Fatalf("NumRows = %d", tbl.NumRows())
		}
	})
}
