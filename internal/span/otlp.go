package span

import (
	"encoding/json"
	"fmt"
	"io"
)

// One broadcast unit is rendered as one millisecond on the OTLP timeline.
const otlpUnitNanos = 1e6

// The compact OTLP-ish JSON shape: the OpenTelemetry OTLP/JSON trace
// envelope (resourceSpans → scopeSpans → spans) with the subset of span
// fields generic OTLP tooling reads — trace/span/parent IDs in hex,
// nanosecond timestamps as decimal strings, and key/value attributes.
type otlpFile struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpAttr `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID      string     `json:"traceId"`
	SpanID       string     `json:"spanId"`
	ParentSpanID string     `json:"parentSpanId,omitempty"`
	Name         string     `json:"name"`
	Kind         int        `json:"kind"`
	Start        string     `json:"startTimeUnixNano"`
	End          string     `json:"endTimeUnixNano"`
	Attributes   []otlpAttr `json:"attributes,omitempty"`
}

type otlpAttr struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpValue struct {
	String *string `json:"stringValue,omitempty"`
	Int    *int64  `json:"intValue,omitempty"`
	Bool   *bool   `json:"boolValue,omitempty"`
}

func strAttr(key, v string) otlpAttr       { return otlpAttr{Key: key, Value: otlpValue{String: &v}} }
func intAttr(key string, v int64) otlpAttr { return otlpAttr{Key: key, Value: otlpValue{Int: &v}} }
func boolAttr(key string, v bool) otlpAttr { return otlpAttr{Key: key, Value: otlpValue{Bool: &v}} }

// otlpNanos renders a simulated time as a decimal nanosecond string (OTLP
// JSON encodes 64-bit integers as strings).
func otlpNanos(t float64) string { return fmt.Sprintf("%d", int64(t*otlpUnitNanos)) }

// otlpTraceID is the 32-hex-char trace ID: the span ID zero-extended.
func otlpTraceID(id int64) string { return fmt.Sprintf("%032x", uint64(id)) }

// otlpSpanID derives the 16-hex-char span ID for child index i (0 = the
// root). The low 48 bits of the root ID — unique across cells by the
// per-cell namespacing — are combined with a 16-bit child index, so child
// IDs never collide with roots or with other children.
func otlpSpanID(id int64, i int) string {
	return fmt.Sprintf("%012x%04x", uint64(id)&0xffffffffffff, i)
}

// WriteOTLP renders spans as compact OTLP-style JSON: one trace per
// request, the root span covering the lifetime and one child span per
// segment, parent-linked to the root. Output is deterministic.
func WriteOTLP(w io.Writer, spans []*Span) error {
	out := make([]otlpSpan, 0, len(spans)*3)
	for _, sp := range spans {
		traceID := otlpTraceID(sp.ID)
		rootID := otlpSpanID(sp.ID, 0)
		attrs := []otlpAttr{
			intAttr("qos.class", int64(sp.Class)),
			intAttr("qos.item", int64(sp.Item)),
			strAttr("qos.verdict", sp.Verdict),
		}
		if sp.Outcome != "" {
			attrs = append(attrs, strAttr("qos.outcome", sp.Outcome))
		}
		if sp.Open {
			attrs = append(attrs, boolAttr("qos.open", true))
		}
		if sp.Push {
			attrs = append(attrs, boolAttr("qos.push", true))
		}
		if sp.Retries > 0 {
			attrs = append(attrs, intAttr("qos.retries", int64(sp.Retries)))
		}
		if len(sp.Cells) > 0 {
			attrs = append(attrs, intAttr("qos.cell", int64(sp.Cells[0])))
		}
		out = append(out, otlpSpan{
			TraceID: traceID, SpanID: rootID, Name: "request", Kind: 2, // SPAN_KIND_SERVER
			Start: otlpNanos(sp.Start), End: otlpNanos(sp.End), Attributes: attrs,
		})
		for i, seg := range sp.Segments {
			segAttrs := []otlpAttr{intAttr("qos.cell", int64(seg.Cell))}
			if seg.Attempt > 0 {
				segAttrs = append(segAttrs, intAttr("qos.attempt", int64(seg.Attempt)))
			}
			out = append(out, otlpSpan{
				TraceID: traceID, SpanID: otlpSpanID(sp.ID, i+1), ParentSpanID: rootID,
				Name: seg.Kind, Kind: 1, // SPAN_KIND_INTERNAL
				Start: otlpNanos(seg.From), End: otlpNanos(seg.To), Attributes: segAttrs,
			})
		}
	}
	file := otlpFile{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpAttr{strAttr("service.name", "hybridqos")}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "hybridqos/span"},
			Spans: out,
		}},
	}}}
	return json.NewEncoder(w).Encode(file)
}
