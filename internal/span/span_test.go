package span_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/cluster"
	"hybridqos/internal/core"
	"hybridqos/internal/faults"
	"hybridqos/internal/span"
	"hybridqos/internal/trace"
	"hybridqos/internal/uplink"
)

// base returns a faulty, deadline-bearing engine config that exercises
// every span path: loss-driven retries, TTL expiry, uplink loss, shedding.
func base(t *testing.T) core.Config {
	t.Helper()
	cat, err := catalog.Generate(catalog.Config{
		D: 100, Theta: 0.6, MinLen: 1, MaxLen: 5,
		LengthWeights: catalog.PaperLengthWeights(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := clients.New(clients.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	loss, err := faults.NewBernoulli(0.2)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := uplink.NewTokenBucket(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{
		Catalog: cat, Classes: cl, Lambda: 5, Cutoff: 40, Alpha: 0.5,
		Horizon: 600, Seed: 11, RequestTTL: 120,
		Loss:   loss,
		Uplink: tb,
		Retry:  faults.RetryPolicy{MaxAttempts: 2, Base: 1, Multiplier: 2},
		Shed:   &faults.ShedConfig{High: 400, Low: 300},
	}
}

// run executes cfg with a buffering tracer and returns the event stream.
func run(t *testing.T, cfg core.Config) []trace.Event {
	t.Helper()
	buf := &trace.Buffer{}
	cfg.Tracer = buf
	srv, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Run()
	return buf.Events
}

// Reconstruction from a full-sample faulty run must verify: every closed
// span's segments tile [arrival, terminal] exactly and sum to the delay,
// and every served span's delay replays from its terminal event.
func TestBuildAndVerifyFaultyRun(t *testing.T) {
	cfg := base(t)
	cfg.Spans = &core.SpanConfig{}
	events := run(t, cfg)
	spans, err := span.Build(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans reconstructed")
	}
	if err := span.Verify(spans); err != nil {
		t.Fatal(err)
	}
	// Every sampled arrival (= every arrival at rate 1) starts a span.
	arrivals := 0
	for _, e := range events {
		if e.Kind == trace.KindArrival {
			arrivals++
		}
	}
	if len(spans) != arrivals {
		t.Fatalf("got %d spans for %d arrivals", len(spans), arrivals)
	}
	outcomes := map[string]int{}
	withRetries, withLoss := 0, 0
	for _, sp := range spans {
		if !sp.Open {
			outcomes[sp.Outcome]++
		}
		if sp.Retries > 0 {
			withRetries++
		}
		if sp.Losses > 0 {
			withLoss++
		}
	}
	if outcomes[trace.EndServed] == 0 {
		t.Fatal("no served spans")
	}
	if withLoss == 0 || withRetries == 0 {
		t.Fatalf("fault paths not exercised: %d losses, %d retries", withLoss, withRetries)
	}
	if outcomes[trace.EndExpired] == 0 {
		t.Log("note: no expired spans in this run")
	}
}

// A span that lost a delivery and was re-served must carry the full retry
// anatomy: wait, failed-service (with its attempt number), retry-backoff,
// then a final service segment — and still tile its lifetime exactly.
func TestRetryAfterLossSegments(t *testing.T) {
	cfg := base(t)
	cfg.Spans = &core.SpanConfig{}
	spans, err := span.Build(run(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range spans {
		if sp.Outcome != trace.EndServed || sp.Losses == 0 {
			continue
		}
		kinds := map[string]int{}
		attempt := 0
		for _, seg := range sp.Segments {
			kinds[seg.Kind]++
			if seg.Kind == span.SegFailedService && seg.Attempt > attempt {
				attempt = seg.Attempt
			}
		}
		if kinds[span.SegFailedService] == 0 || kinds[span.SegService] == 0 {
			continue
		}
		if attempt < 1 {
			t.Fatalf("span %d: failed-service segment without attempt number", sp.ID)
		}
		// The delivering service segment must come after the last failure.
		last := sp.Segments[len(sp.Segments)-1]
		if last.Kind != span.SegService {
			t.Fatalf("span %d: served but final segment is %s", sp.ID, last.Kind)
		}
		found = true
		break
	}
	if !found {
		t.Fatal("no retry-after-loss span with failed-service and service segments found")
	}
}

// Per-class sampling rates must gate span creation per class and leave the
// simulation trajectory untouched: the non-span event stream is identical
// whether spans are off, fully on, or partially sampled.
func TestSamplingRatesAndTrajectoryIdentity(t *testing.T) {
	strip := func(events []trace.Event) []trace.Event {
		var out []trace.Event
		for _, e := range events {
			if e.Req == 0 && e.Kind != trace.KindDecision {
				out = append(out, e)
			}
		}
		return out
	}
	off := run(t, base(t))

	full := base(t)
	full.Spans = &core.SpanConfig{}
	fullEvents := run(t, full)

	partial := base(t)
	partial.Spans = &core.SpanConfig{Rates: []float64{1, 0.5, 0}}
	partialEvents := run(t, partial)

	for name, got := range map[string][]trace.Event{"full": fullEvents, "partial": partialEvents} {
		gs := strip(got)
		if len(gs) != len(off) {
			t.Fatalf("%s: %d non-span events, spans-off run has %d", name, len(gs), len(off))
		}
		for i := range gs {
			if gs[i] != off[i] {
				t.Fatalf("%s: event %d diverged: %+v vs %+v", name, i, gs[i], off[i])
			}
		}
	}

	spans, err := span.Build(partialEvents)
	if err != nil {
		t.Fatal(err)
	}
	if err := span.Verify(spans); err != nil {
		t.Fatal(err)
	}
	byClass := map[clients.Class]int{}
	for _, sp := range spans {
		byClass[sp.Class]++
	}
	if byClass[2] != 0 {
		t.Fatalf("class 2 sampled at rate 0 produced %d spans", byClass[2])
	}
	if byClass[0] == 0 || byClass[1] == 0 {
		t.Fatalf("expected spans for classes 0 and 1, got %v", byClass)
	}
	fullSpans, err := span.Build(fullEvents)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) >= len(fullSpans) {
		t.Fatalf("partial sampling produced %d spans, full %d", len(spans), len(fullSpans))
	}
}

// clusterRun executes a mobile multi-cell federation with spans on and
// returns the merged cell-stamped stream.
func clusterRun(t *testing.T, ttl float64, attachDelay float64) []trace.Event {
	t.Helper()
	cat, err := catalog.Generate(catalog.Config{
		D: 60, Theta: 0.6, MinLen: 1, MaxLen: 5,
		LengthWeights: catalog.PaperLengthWeights(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := clients.New(clients.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	ccl, err := cluster.New(cluster.Config{
		Cells: 3,
		Base: core.Config{
			Catalog: cat, Classes: cl, Lambda: 4, Cutoff: 20, Alpha: 0.5,
			Horizon: 400, Seed: 7, RequestTTL: ttl,
			Spans: &core.SpanConfig{},
		},
		CatalogOverlap: 0.5,
		Mobility:       cluster.Mobility{Rate: 0.02, AttachDelay: attachDelay},
		HandoffEvery:   20,
		CollectTrace:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ccl.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

// Cross-cell spans must survive MergeByTime: a roaming request's span ID
// links its origin-cell events (span-start, span-handoff) to its
// destination-cell events (span-attach, terminal), reconstructing into one
// span with a transit segment and a multi-cell path.
func TestClusterCrossCellParentLinks(t *testing.T) {
	events := clusterRun(t, 120, 5)
	spans, err := span.Build(events)
	if err != nil {
		t.Fatal(err)
	}
	if err := span.Verify(spans); err != nil {
		t.Fatal(err)
	}
	crossCell := 0
	for _, sp := range spans {
		if len(sp.Cells) < 2 {
			continue
		}
		crossCell++
		// The i-th transit segment originates in the i-th cell of the path.
		// A refused final hop adds one transit beyond the attached path (its
		// origin is the last attached cell), so count ≤ len(path).
		var transits []int
		for _, seg := range sp.Segments {
			if seg.Kind == span.SegTransit {
				transits = append(transits, seg.Cell)
			}
		}
		if len(transits) == 0 {
			t.Fatalf("span %d visited cells %v without a transit segment", sp.ID, sp.Cells)
		}
		if len(transits) > len(sp.Cells) {
			t.Fatalf("span %d: %d transit segments for path %v", sp.ID, len(transits), sp.Cells)
		}
		for i, c := range transits {
			if c != sp.Cells[i] {
				t.Fatalf("span %d: transit %d in cell %d, path %v", sp.ID, i, c, sp.Cells)
			}
		}
	}
	if crossCell == 0 {
		t.Fatal("no cross-cell spans reconstructed")
	}
	// Per-cell ID namespacing: no two spans share an ID (Build errors on
	// duplicates, but assert the namespacing directly too).
	seen := map[int64]bool{}
	for _, sp := range spans {
		if seen[sp.ID] {
			t.Fatalf("duplicate span ID %d across cells", sp.ID)
		}
		seen[sp.ID] = true
	}
}

// A deadline that expires while the request is in handoff transit must
// terminate the span at the destination with the refused-expired taxonomy,
// the transit segment closing at the refusal.
func TestDeadlineExpiryInTransit(t *testing.T) {
	// TTL 30 with attach delay 25: most roamers' remaining budget is
	// consumed in transit.
	events := clusterRun(t, 30, 25)
	spans, err := span.Build(events)
	if err != nil {
		t.Fatal(err)
	}
	if err := span.Verify(spans); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range spans {
		if sp.Outcome != "refused-expired" {
			continue
		}
		found = true
		last := sp.Segments[len(sp.Segments)-1]
		if last.Kind != span.SegTransit {
			t.Fatalf("span %d: refused-expired but final segment is %s", sp.ID, last.Kind)
		}
		if last.Duration() <= 0 {
			t.Fatalf("span %d: refused-expired with empty transit", sp.ID)
		}
	}
	if !found {
		t.Fatal("no refused-expired span found")
	}
}

// Decision provenance: spans served from the pull queue must carry the
// extraction decision that selected them, with the winning score present
// and the runner-up distinct from the winner when one existed.
func TestDecisionProvenance(t *testing.T) {
	cfg := base(t)
	cfg.Spans = &core.SpanConfig{}
	spans, err := span.Build(run(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	withDecision := 0
	for _, sp := range spans {
		for _, d := range sp.Decisions {
			withDecision++
			if d.Item != sp.Item {
				t.Fatalf("span %d (item %d): decision for item %d", sp.ID, sp.Item, d.Item)
			}
			if d.RunnerUp != 0 && d.RunnerUp == d.Item {
				t.Fatalf("span %d: runner-up equals winner %d", sp.ID, d.Item)
			}
		}
	}
	if withDecision == 0 {
		t.Fatal("no decision provenance attached to any span")
	}
}

// The Perfetto export must pass its own schema validation and keep
// cross-cell spans linked by flow events.
func TestPerfettoExport(t *testing.T) {
	spans, err := span.Build(clusterRun(t, 120, 5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := span.WritePerfetto(&buf, spans); err != nil {
		t.Fatal(err)
	}
	if err := span.ValidatePerfetto(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"ph":"s"`) || !strings.Contains(s, `"ph":"f"`) {
		t.Fatal("no flow events for cross-cell handoffs")
	}
	// Determinism: same spans, same bytes.
	var again bytes.Buffer
	if err := span.WritePerfetto(&again, spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("perfetto export not deterministic")
	}
	// Corrupted input must be rejected.
	if err := span.ValidatePerfetto([]byte(`{"traceEvents":[{"ph":"X"}]}`)); err == nil {
		t.Fatal("validation accepted an event without name/ts")
	}
	if err := span.ValidatePerfetto([]byte(`{}`)); err == nil {
		t.Fatal("validation accepted JSON without traceEvents")
	}
}

// The OTLP export must parse as the documented envelope with every child
// segment parent-linked to its root span.
func TestOTLPExport(t *testing.T) {
	cfg := base(t)
	cfg.Spans = &core.SpanConfig{}
	spans, err := span.Build(run(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := span.WriteOTLP(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var file struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct {
					TraceID      string `json:"traceId"`
					SpanID       string `json:"spanId"`
					ParentSpanID string `json:"parentSpanId"`
					Name         string `json:"name"`
					Start        string `json:"startTimeUnixNano"`
					End          string `json:"endTimeUnixNano"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	all := file.ResourceSpans[0].ScopeSpans[0].Spans
	roots := map[string]bool{}
	ids := map[string]bool{}
	for _, s := range all {
		if len(s.TraceID) != 32 || len(s.SpanID) != 16 {
			t.Fatalf("bad ID lengths: trace %q span %q", s.TraceID, s.SpanID)
		}
		if ids[s.SpanID] {
			t.Fatalf("duplicate OTLP span ID %s", s.SpanID)
		}
		ids[s.SpanID] = true
		if s.ParentSpanID == "" {
			roots[s.SpanID] = true
		}
	}
	for _, s := range all {
		if s.ParentSpanID != "" && !roots[s.ParentSpanID] {
			t.Fatalf("segment %s has unknown parent %s", s.SpanID, s.ParentSpanID)
		}
	}
	if len(roots) != len(spans) {
		t.Fatalf("%d OTLP roots for %d spans", len(roots), len(spans))
	}
}

// Build must reject malformed streams rather than mis-assemble them.
func TestBuildRejectsMalformedStreams(t *testing.T) {
	cases := map[string][]trace.Event{
		"orphan event": {
			{T: 1, Kind: trace.KindSpanEnd, Req: 7, Reason: trace.EndServed, Arrival: 0, Start: 0.5},
		},
		"duplicate start": {
			{T: 1, Kind: trace.KindSpanStart, Req: 7, Reason: trace.VerdictPull},
			{T: 2, Kind: trace.KindSpanStart, Req: 7, Reason: trace.VerdictPull},
		},
		"event after terminal": {
			{T: 1, Kind: trace.KindSpanStart, Req: 7, Reason: trace.VerdictPull},
			{T: 2, Kind: trace.KindSpanEnd, Req: 7, Reason: trace.EndShed, Arrival: 1},
			{T: 3, Kind: trace.KindSpanRetry, Req: 7},
		},
	}
	for name, events := range cases {
		if _, err := span.Build(events); err == nil {
			t.Errorf("%s: Build accepted the stream", name)
		}
	}
}

// Open spans (requests still pending at the horizon) are reported as such
// and skipped by Verify.
func TestOpenSpans(t *testing.T) {
	events := []trace.Event{
		{T: 1, Kind: trace.KindSpanStart, Req: 7, Item: 50, Reason: trace.VerdictPull},
		{T: 1, Kind: trace.KindSpanEnqueue, Req: 7, Item: 50, Score: 2.5, Requests: 1},
	}
	spans, err := span.Build(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || !spans[0].Open || spans[0].Outcome != "" {
		t.Fatalf("unexpected reconstruction: %+v", spans[0])
	}
	if err := span.Verify(spans); err != nil {
		t.Fatal(err)
	}
}
