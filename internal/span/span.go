// Package span reconstructs per-request span trees from the simulator's
// trace event stream. The engine (internal/core) emits span provenance
// events — span-start, span-enqueue, decision, span-loss, span-retry,
// span-handoff, span-attach, span-end — for head-sampled requests only;
// this package folds one request's events into a Span: a root covering the
// request lifetime plus contiguous child segments (queue-wait, push-wait,
// service, failed-service, retry-backoff, transit) that tile it exactly.
//
// Reconstruction is a pure function of the event stream, so spans built
// from a live tracer, a JSONL file, or a cluster's merged per-cell streams
// are identical. Verify audits the invariant the engine promises: a closed
// span's segments are contiguous, start at the request arrival, end at the
// terminal event, and their durations sum to the effective delay.
package span

import (
	"fmt"
	"sort"
	"strings"

	"hybridqos/internal/clients"
	"hybridqos/internal/trace"
)

// Segment kinds. Every moment of a span's life is covered by exactly one.
const (
	// SegQueueWait: admitted to the pull queue, waiting for extraction.
	SegQueueWait = "queue-wait"
	// SegPushWait: registered for the item's scheduled broadcast.
	SegPushWait = "push-wait"
	// SegService: the delivering transmission (ends at the terminal).
	SegService = "service"
	// SegFailedService: a transmission that was corrupted on the downlink.
	SegFailedService = "failed-service"
	// SegRetryBackoff: client backoff between a loss and the re-request.
	SegRetryBackoff = "retry-backoff"
	// SegTransit: inter-cell handoff transit (client roaming mid-request).
	SegTransit = "transit"
)

// Segment is one contiguous child interval of a span.
type Segment struct {
	// Kind is one of the Seg* constants.
	Kind string `json:"kind"`
	// From and To bound the interval in simulated time.
	From float64 `json:"from"`
	To   float64 `json:"to"`
	// Cell is the cell the segment ran in (transit: the origin cell).
	Cell int `json:"cell,omitempty"`
	// Attempt is the 1-based transmission attempt on failed-service
	// segments, 0 elsewhere.
	Attempt int `json:"attempt,omitempty"`
}

// Duration returns the segment length.
func (s Segment) Duration() float64 { return s.To - s.From }

// Enqueue records one pull-queue admission of the request with the entry's
// post-add selection score — the quantity the next extraction ranks it by.
type Enqueue struct {
	T        float64 `json:"t"`
	Score    float64 `json:"score"`
	Requests int     `json:"requests"`
	Cell     int     `json:"cell,omitempty"`
}

// Decision records one scheduler extraction decision that selected the
// span's item: the winning score and the runner-up it beat.
type Decision struct {
	T             float64 `json:"t"`
	Item          int     `json:"item"`
	Score         float64 `json:"score"`
	RunnerUp      int     `json:"runner_up,omitempty"`
	RunnerUpScore float64 `json:"runner_up_score,omitempty"`
	Requests      int     `json:"requests"`
	Cell          int     `json:"cell,omitempty"`
}

// Span is one sampled request's reconstructed lifetime.
type Span struct {
	// ID is the globally unique span ID minted at sampling time (cluster
	// runs namespace IDs per cell, so merged streams never collide).
	ID int64 `json:"id"`
	// Class is the request's service class.
	Class clients.Class `json:"class"`
	// Item is the requested catalog rank (constant for the span's life:
	// only globally replicated items can follow a roaming client).
	Item int `json:"item"`
	// Verdict is the admission verdict at arrival: "pull", "push", "cache".
	Verdict string `json:"verdict"`
	// Outcome is the terminal taxonomy ("served", "expired", "blocked",
	// "failed", "shed", "uplink-lost", "refused-*", ...); empty while Open.
	Outcome string `json:"outcome,omitempty"`
	// Start is the request arrival, End the terminal time (last observed
	// event time while Open).
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Push reports a push-served delivery (served outcomes only).
	Push bool `json:"push,omitempty"`
	// Open marks a span with no terminal in the stream (request still
	// pending at the horizon).
	Open bool `json:"open,omitempty"`
	// Cells lists the cells visited, origin first.
	Cells []int `json:"cells,omitempty"`
	// Segments are the contiguous child intervals tiling [Start, End].
	Segments []Segment `json:"segments,omitempty"`
	// Enqueues and Decisions are the scheduler provenance attached to the
	// span, in event order.
	Enqueues  []Enqueue  `json:"enqueues,omitempty"`
	Decisions []Decision `json:"decisions,omitempty"`
	// Retries counts re-requests, Losses corrupted deliveries.
	Retries int `json:"retries,omitempty"`
	Losses  int `json:"losses,omitempty"`
}

// Delay returns the span's effective delay End − Start.
func (s *Span) Delay() float64 { return s.End - s.Start }

// builder accumulates one span during the event walk.
type builder struct {
	span    Span
	cursor  float64 // start of the segment currently accumulating
	mode    string  // kind the current segment will close as
	curCell int
	done    bool
	// attachT is the time of the last span-attach processed, used to
	// absorb stream-merge ties: at a cluster barrier the origin cell's
	// span-handoff and the destination cell's same-instant events carry
	// the same timestamp, and MergeByTime breaks the tie by cell index,
	// which can place the destination's events first.
	attachT float64
	hasAtt  bool
}

// closeSegment closes [b.cursor, to] as kind and moves the cursor.
// Zero-length segments are skipped: events at the same instant (start +
// enqueue, loss + terminal) would otherwise litter the tree.
func (b *builder) closeSegment(kind string, to float64, attempt int) {
	if to > b.cursor {
		b.forceSegment(kind, to, attempt)
		return
	}
	b.cursor = to
}

// forceSegment closes [b.cursor, to] as kind even when zero-length — the
// delivering service segment is always kept, so every served span shows
// its delivery (a cache hit or a roamer attaching at a broadcast's final
// instant serves in zero time).
func (b *builder) forceSegment(kind string, to float64, attempt int) {
	b.span.Segments = append(b.span.Segments, Segment{
		Kind: kind, From: b.cursor, To: to, Cell: b.curCell, Attempt: attempt,
	})
	b.cursor = to
}

// Build reconstructs every sampled request's span from a trace event
// stream (single-cell or cluster-merged; events must be in nondecreasing
// time order, as the engine emits them and MergeByTime preserves). Spans
// are returned sorted by start time, ties by ID. Requests with no terminal
// event are returned Open.
func Build(events []trace.Event) ([]*Span, error) {
	byID := make(map[int64]*builder)
	var order []*builder // creation order: deterministic iteration (maporder)
	for i, e := range events {
		if e.Kind == trace.KindDecision {
			// Decisions carry no span ID (one extraction serves every
			// pending request of the item): attach to each open span of
			// that item queued in that cell.
			for _, b := range order {
				if b.done || b.mode != SegQueueWait || b.span.Item != e.Item || b.curCell != e.Cell {
					continue
				}
				b.span.Decisions = append(b.span.Decisions, Decision{
					T: e.T, Item: e.Item, Score: e.Score,
					RunnerUp: e.RunnerUp, RunnerUpScore: e.RunnerUpScore,
					Requests: e.Requests, Cell: e.Cell,
				})
			}
			continue
		}
		if e.Req == 0 {
			continue // not a span event
		}
		b := byID[e.Req]
		if e.Kind == trace.KindSpanStart {
			if b != nil {
				return nil, fmt.Errorf("span: event %d: duplicate span-start for span %d", i, e.Req)
			}
			b = &builder{
				span: Span{
					ID: e.Req, Class: e.Class, Item: e.Item,
					Verdict: e.Reason, Start: e.T, End: e.T,
					Cells: []int{e.Cell},
				},
				cursor:  e.T,
				curCell: e.Cell,
				mode:    startMode(e.Reason),
			}
			byID[e.Req] = b
			order = append(order, b)
			continue
		}
		if b == nil {
			return nil, fmt.Errorf("span: event %d: %s for unknown span %d", i, e.Kind, e.Req)
		}
		if b.done {
			// A span refused at a barrier closes in the destination cell's
			// stream; the origin's same-instant span-handoff can merge in
			// after it (tie broken by cell index). The zero-length transit
			// it would have opened was already elided — drop it.
			if e.Kind == trace.KindSpanHandoff && e.T == b.span.End && strings.HasPrefix(b.span.Outcome, "refused-") {
				continue
			}
			return nil, fmt.Errorf("span: event %d: %s for closed span %d", i, e.Kind, e.Req)
		}
		b.span.End = e.T
		switch e.Kind {
		case trace.KindSpanEnqueue:
			b.closeSegment(b.mode, e.T, 0)
			b.mode = SegQueueWait
			b.span.Enqueues = append(b.span.Enqueues, Enqueue{
				T: e.T, Score: e.Score, Requests: e.Requests, Cell: e.Cell,
			})
		case trace.KindSpanLoss:
			// The corrupted transmission: wait up to its start, then the
			// failed service interval. What follows is backoff (or an
			// immediate terminal at the same instant).
			b.closeSegment(b.mode, e.Start, 0)
			b.closeSegment(SegFailedService, e.T, e.Attempt)
			b.mode = SegRetryBackoff
			b.span.Losses++
		case trace.KindSpanRetry:
			// The re-request instant: whatever ran since the last event
			// was backoff, regardless of mode (an uplink loss books a
			// retry without an intervening span-loss).
			b.closeSegment(SegRetryBackoff, e.T, 0)
			b.mode = SegRetryBackoff
			b.span.Retries++
		case trace.KindSpanHandoff:
			if b.hasAtt && b.attachT == e.T {
				// Zero attach delay: the destination's span-attach merged
				// in ahead of this handoff (barrier tie); the transit
				// boundary was already placed. Nothing to do.
				continue
			}
			b.closeSegment(b.mode, e.T, 0)
			b.mode = SegTransit
		case trace.KindSpanAttach:
			if b.mode != SegTransit {
				// Zero attach delay, destination stream merged first: the
				// wait segment closes here and the transit is zero-length.
				b.closeSegment(b.mode, e.T, 0)
			} else {
				b.closeSegment(SegTransit, e.T, 0)
			}
			b.attachT, b.hasAtt = e.T, true
			b.curCell = e.Cell
			b.span.Cells = append(b.span.Cells, e.Cell)
			if e.Reason == trace.VerdictPush {
				b.mode = SegPushWait
			} else {
				b.mode = SegQueueWait
			}
		case trace.KindSpanEnd:
			if e.Reason == trace.EndServed || (e.Reason == trace.EndExpired && e.Start > 0) {
				// A delivery happened: split the final wait from the
				// service interval at the recorded transmission start. The
				// service segment is forced even when zero-length (cache
				// hit; roamer attaching at a broadcast's final instant) so
				// every delivery is visible in the tree.
				b.closeSegment(b.mode, e.Start, 0)
				b.forceSegment(SegService, e.T, 0)
			} else {
				b.closeSegment(b.mode, e.T, 0)
			}
			b.span.Outcome = e.Reason
			b.span.Push = e.Push
			b.done = true
		default:
			return nil, fmt.Errorf("span: event %d: unexpected kind %q carrying span %d", i, e.Kind, e.Req)
		}
	}
	out := make([]*Span, 0, len(order))
	for _, b := range order {
		if !b.done {
			b.span.Open = true
		}
		sp := b.span
		out = append(out, &sp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// startMode maps the admission verdict onto the first segment's kind.
func startMode(verdict string) string {
	if verdict == trace.VerdictPush {
		return SegPushWait
	}
	return SegQueueWait
}

// tilingTolerance absorbs float addition drift when comparing the summed
// segment durations against the span delay; segment boundaries themselves
// are exact (each To is the next From by construction, checked exactly).
const tilingTolerance = 1e-6

// Verify audits every closed span against the engine's contract: segments
// are contiguous, start at the request arrival, end at the terminal, each
// has nonnegative duration, their durations sum to the effective delay,
// and served spans contain a service segment. Open spans are skipped
// (their tail segment is still accumulating). It returns the first
// violation found.
func Verify(spans []*Span) error {
	for _, sp := range spans {
		if sp.Open {
			continue
		}
		if sp.Outcome == "" {
			return fmt.Errorf("span %d: closed without an outcome", sp.ID)
		}
		cursor := sp.Start
		var sum float64
		for i, seg := range sp.Segments {
			if seg.From != cursor {
				return fmt.Errorf("span %d: segment %d (%s) starts at %g, want %g (gap or overlap)", sp.ID, i, seg.Kind, seg.From, cursor)
			}
			if seg.To < seg.From {
				return fmt.Errorf("span %d: segment %d (%s) has negative duration [%g,%g]", sp.ID, i, seg.Kind, seg.From, seg.To)
			}
			cursor = seg.To
			sum += seg.Duration()
		}
		if cursor != sp.End {
			return fmt.Errorf("span %d: segments end at %g, want terminal %g", sp.ID, cursor, sp.End)
		}
		if d := sp.Delay(); sum < d-tilingTolerance || sum > d+tilingTolerance {
			return fmt.Errorf("span %d: segment durations sum to %g, want effective delay %g", sp.ID, sum, d)
		}
		if sp.Outcome == trace.EndServed {
			served := false
			for _, seg := range sp.Segments {
				if seg.Kind == SegService {
					served = true
					break
				}
			}
			// The builder forces the delivering segment even when it is
			// zero-length, so every served span must carry one.
			if !served {
				return fmt.Errorf("span %d: served but no service segment", sp.ID)
			}
		}
	}
	return nil
}

// Index returns the spans keyed by ID — resolving telemetry exemplar span
// IDs back to full spans.
func Index(spans []*Span) map[int64]*Span {
	m := make(map[int64]*Span, len(spans))
	for _, sp := range spans {
		m[sp.ID] = sp
	}
	return m
}
