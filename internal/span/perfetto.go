package span

import (
	"encoding/json"
	"fmt"
	"io"
)

// One broadcast unit is rendered as one millisecond: the Chrome trace-event
// ts/dur fields are microseconds, so simulated times are scaled by 1e3.
const perfettoUnitMicros = 1e3

// perfettoEvent is one Chrome trace-event record. Only the fields the
// format requires (plus args) are emitted; Perfetto and chrome://tracing
// both accept the JSON object form.
type perfettoEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoFile is the JSON-object trace container.
type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// WritePerfetto renders spans as Chrome trace-event JSON loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Each cell becomes a
// process (pid), each span a track (tid) carrying a complete ("X") event
// for the request lifetime with its segments nested inside; cross-cell
// transits additionally emit a flow arrow ("s"/"f") binding the origin and
// destination tracks. Output is deterministic: same spans, same bytes.
func WritePerfetto(w io.Writer, spans []*Span) error {
	file := perfettoFile{DisplayTimeUnit: "ms", TraceEvents: []perfettoEvent{}}
	for _, sp := range spans {
		origin := 0
		if len(sp.Cells) > 0 {
			origin = sp.Cells[0]
		}
		rootArgs := map[string]any{
			"span":    sp.ID,
			"class":   int(sp.Class),
			"item":    sp.Item,
			"verdict": sp.Verdict,
		}
		if sp.Outcome != "" {
			rootArgs["outcome"] = sp.Outcome
		}
		if sp.Open {
			rootArgs["open"] = true
		}
		if sp.Retries > 0 {
			rootArgs["retries"] = sp.Retries
		}
		file.TraceEvents = append(file.TraceEvents, perfettoEvent{
			Name: "request", Ph: "X", Cat: "span",
			Ts: sp.Start * perfettoUnitMicros, Dur: sp.Delay() * perfettoUnitMicros,
			Pid: origin, Tid: sp.ID, Args: rootArgs,
		})
		for _, seg := range sp.Segments {
			args := map[string]any{"span": sp.ID}
			if seg.Attempt > 0 {
				args["attempt"] = seg.Attempt
			}
			file.TraceEvents = append(file.TraceEvents, perfettoEvent{
				Name: seg.Kind, Ph: "X", Cat: "segment",
				Ts: seg.From * perfettoUnitMicros, Dur: seg.Duration() * perfettoUnitMicros,
				Pid: seg.Cell, Tid: sp.ID, Args: args,
			})
			if seg.Kind == SegTransit {
				// The flow arrow binds the origin track to wherever the
				// span continues (destination cell or refusal terminal).
				id := fmt.Sprintf("%d", sp.ID)
				file.TraceEvents = append(file.TraceEvents,
					perfettoEvent{Name: "handoff", Ph: "s", Cat: "handoff",
						Ts: seg.From * perfettoUnitMicros, Pid: seg.Cell, Tid: sp.ID, ID: id},
					perfettoEvent{Name: "handoff", Ph: "f", BP: "e", Cat: "handoff",
						Ts: seg.To * perfettoUnitMicros, Pid: cellAfter(sp, seg), Tid: sp.ID, ID: id},
				)
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// cellAfter returns the cell a transit segment lands in: the next
// segment's cell, or the transit's own origin when the span ends in
// transit (refused or still roaming at the horizon).
func cellAfter(sp *Span, transit Segment) int {
	for _, seg := range sp.Segments {
		if seg.From >= transit.To && seg.Kind != SegTransit {
			return seg.Cell
		}
	}
	if n := len(sp.Cells); n > 0 {
		return sp.Cells[n-1]
	}
	return transit.Cell
}

// ValidatePerfetto parses Chrome trace-event JSON and checks the schema
// invariants the exporters promise: a traceEvents array whose records all
// carry name, a known phase, finite ts, pid and tid; complete events
// additionally carry a nonnegative dur. It returns the first violation —
// the CI smoke test and `traceinfo -validate-perfetto` gate on it.
func ValidatePerfetto(data []byte) error {
	var file struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("span: perfetto JSON: %w", err)
	}
	if file.TraceEvents == nil {
		return fmt.Errorf("span: perfetto JSON: missing traceEvents array")
	}
	for i, ev := range file.TraceEvents {
		var name, ph string
		if err := requireString(ev, "name", &name); err != nil {
			return fmt.Errorf("span: perfetto event %d: %w", i, err)
		}
		if err := requireString(ev, "ph", &ph); err != nil {
			return fmt.Errorf("span: perfetto event %d: %w", i, err)
		}
		switch ph {
		case "X", "B", "E", "s", "t", "f", "i", "M", "C":
		default:
			return fmt.Errorf("span: perfetto event %d: unknown phase %q", i, ph)
		}
		var ts float64
		if err := requireNumber(ev, "ts", &ts); err != nil {
			return fmt.Errorf("span: perfetto event %d: %w", i, err)
		}
		for _, key := range []string{"pid", "tid"} {
			if _, ok := ev[key]; !ok {
				return fmt.Errorf("span: perfetto event %d: missing %s", i, key)
			}
		}
		if ph == "X" {
			var dur float64
			if err := requireNumber(ev, "dur", &dur); err == nil {
				if dur < 0 {
					return fmt.Errorf("span: perfetto event %d: negative dur %g", i, dur)
				}
			} else if _, present := ev["dur"]; present {
				return fmt.Errorf("span: perfetto event %d: %w", i, err)
			}
			// A complete event with no dur field is a zero-duration slice
			// (the encoder omits dur 0); that is valid.
		}
	}
	return nil
}

func requireString(ev map[string]json.RawMessage, key string, out *string) error {
	raw, ok := ev[key]
	if !ok {
		return fmt.Errorf("missing %s", key)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("%s not a string: %w", key, err)
	}
	return nil
}

func requireNumber(ev map[string]json.RawMessage, key string, out *float64) error {
	raw, ok := ev[key]
	if !ok {
		return fmt.Errorf("missing %s", key)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("%s not a number: %w", key, err)
	}
	return nil
}
