// Package qosd is the serving daemon behind cmd/qosd: the hybrid push/pull
// scheduler (core.Realtime) mounted on a clock, fronted by API-key →
// service-class authentication and class-aware admission control, exposed
// over HTTP.
//
// The daemon is clock-agnostic: cmd/qosd runs it on a Wall clock with
// Wall.Submit bridging HTTP handler goroutines onto the engine loop, while
// the chaos tests run the identical handler stack on a Virtual clock and
// replay overload scenarios deterministically.
package qosd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"hybridqos/internal/admission"
	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/clock"
	"hybridqos/internal/core"
	"hybridqos/internal/rng"
	"hybridqos/internal/span"
	"hybridqos/internal/telemetry"
)

// daemon states, tracked atomically so /readyz answers from any goroutine
// without touching the clock loop.
const (
	stateStarting int32 = iota
	stateReady
	stateDraining
	stateDrained
)

// Response is the JSON body answering /request.
type Response struct {
	// Outcome is "served", "expired", or the refusal verdict
	// ("shed_overload", "rate_limited", "quota_exceeded", "draining").
	Outcome string `json:"outcome"`
	// Class is the request's resolved service class.
	Class int `json:"class"`
	// DelayUnits is the access delay in broadcast units (served only).
	DelayUnits float64 `json:"delay_units,omitempty"`
	// Push reports whether a broadcast served it.
	Push bool `json:"push,omitempty"`
}

// Daemon wires the serving engine to HTTP.
type Daemon struct {
	cfg  Config
	cat  *catalog.Catalog
	clk  clock.Clock
	exec func(func())
	rt   *core.Realtime
	tele *telemetry.Collector

	keys         map[string]int
	defaultClass int
	state        atomic.Int32
}

// New builds a Daemon on the given clock. exec must run its argument on
// the clock's handler goroutine (Wall.Submit for serving; for single-
// threaded virtual-clock tests, calling the function directly is correct
// because the caller already owns the clock goroutine).
func New(cfg Config, clk clock.Clock, exec func(func())) (*Daemon, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if clk == nil || exec == nil {
		return nil, fmt.Errorf("qosd: nil clock or exec")
	}
	cat, err := catalog.Generate(catalog.Config{
		D: cfg.Catalog.D, Theta: cfg.Catalog.Theta,
		MinLen: cfg.Catalog.MinLen, MaxLen: cfg.Catalog.MaxLen, Seed: cfg.Catalog.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("qosd: %w", err)
	}
	cls, err := clients.New(clients.Config{Weights: cfg.ClassWeights})
	if err != nil {
		return nil, fmt.Errorf("qosd: %w", err)
	}
	tele, err := telemetry.New(telemetry.Options{SnapshotEvery: cfg.SnapshotEvery})
	if err != nil {
		return nil, fmt.Errorf("qosd: %w", err)
	}
	rtc := core.RealtimeConfig{
		Catalog:        cat,
		Classes:        cls,
		Cutoff:         cfg.Cutoff,
		Alpha:          cfg.Alpha,
		PullPolicyName: cfg.PullPolicy,
		PushPolicyName: cfg.PushPolicy,
		PushDisks:      cfg.PushDisks,
		Clock:          clk,
		Admission:      cfg.admissionConfig(),
		Telemetry:      tele,
	}
	if sc := cfg.Spans; sc != nil && sc.Rate > 0 {
		rtc.Spans = &core.RealtimeSpanConfig{
			Rate:   sc.Rate,
			Buffer: sc.Buffer,
			RNG:    rng.New(sc.Seed).Split("spans"),
		}
	}
	rt, err := core.NewRealtime(rtc)
	if err != nil {
		return nil, err
	}
	keys := make(map[string]int, len(cfg.Keys))
	for _, k := range sortedKeys(cfg.Keys) {
		keys[k] = cfg.Keys[k]
	}
	return &Daemon{
		cfg:          cfg,
		cat:          cat,
		clk:          clk,
		exec:         exec,
		rt:           rt,
		tele:         tele,
		keys:         keys,
		defaultClass: cfg.defaultClass(),
	}, nil
}

// Start launches the engine's broadcast loop on the clock goroutine and
// marks the daemon ready.
func (d *Daemon) Start() {
	d.exec(func() {
		d.rt.Start()
		d.state.Store(stateReady)
	})
}

// Drain stops admission, lets every admitted request resolve by its
// deadline, then calls onDrained once (from the clock goroutine). New
// /request calls are answered 503 immediately.
func (d *Daemon) Drain(onDrained func()) {
	d.exec(func() {
		if d.rt.Draining() {
			return
		}
		d.state.Store(stateDraining)
		d.rt.Drain(func() {
			d.state.Store(stateDrained)
			if onDrained != nil {
				onDrained()
			}
		})
	})
}

// Telemetry exposes the daemon's collector (tests, embedding).
func (d *Daemon) Telemetry() *telemetry.Collector { return d.tele }

// Engine exposes the underlying realtime engine (tests, embedding).
func (d *Daemon) Engine() *core.Realtime { return d.rt }

// classOf resolves an API key to a service class; ok=false means reject.
func (d *Daemon) classOf(key string) (int, bool) {
	if c, found := d.keys[key]; found {
		return c, true
	}
	if d.defaultClass >= 0 {
		return d.defaultClass, true
	}
	return -1, false
}

// Serve runs one parsed, authenticated request through the engine and
// reports the HTTP status and body via respond — synchronously for
// refusals, from a later clock event for admitted requests. Serve must be
// called on the clock goroutine; ServeHTTP bridges via exec. This is the
// entry point the virtual-clock chaos tests drive.
func (d *Daemon) Serve(req Request, class int, respond func(status int, resp Response)) {
	if d.rt.Draining() {
		d.tele.Rejected(class)
		d.rt.RefuseDraining(req.Item, clients.Class(class))
		respond(http.StatusServiceUnavailable, Response{Outcome: "draining", Class: class})
		return
	}
	if req.Item > d.cat.D() {
		respond(http.StatusBadRequest, Response{Outcome: "bad_item", Class: class})
		return
	}
	verdict := d.rt.Submit(core.RealtimeRequest{
		Item:       req.Item,
		Class:      clients.Class(class),
		DeadlineIn: req.DeadlineIn,
		Done: func(res core.Result) {
			if res.Outcome == core.OutcomeServed {
				respond(http.StatusOK, Response{
					Outcome:    "served",
					Class:      class,
					DelayUnits: res.Delay,
					Push:       res.Push,
				})
			} else {
				respond(http.StatusGatewayTimeout, Response{Outcome: "expired", Class: class})
			}
		},
	})
	if verdict != admission.Admitted {
		respond(http.StatusTooManyRequests, Response{Outcome: verdict.String(), Class: class})
	}
}

// Handler returns the daemon's HTTP mux:
//
//	POST /request  — {"item": N[, "deadline_in": U]} with X-API-Key; waits
//	                 for the item (200 served / 504 expired) or refuses
//	                 (401 unknown key, 429 admission, 503 draining).
//	GET  /metrics  — live Prometheus exposition of the telemetry registry.
//	GET  /debug/spans — recent completed sampled request spans as JSON
//	                 (empty array unless the config enables spans).
//	GET  /healthz  — 200 while the process lives.
//	GET  /readyz   — 200 once started and not draining, else 503.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/request", d.handleRequest)
	mux.HandleFunc("/metrics", d.handleMetrics)
	mux.HandleFunc("/debug/spans", d.handleSpans)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if d.state.Load() == stateReady {
			fmt.Fprintln(w, "ready")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
	})
	return mux
}

// answer is one buffered HTTP reply from the clock goroutine.
type answer struct {
	status int
	resp   Response
}

// handleRequest is the HTTP face of Serve. It blocks the handler goroutine
// until the engine resolves the request — for an admitted request that can
// be the full deadline budget.
func (d *Daemon) handleRequest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Short-circuit outside the serving window without touching the clock
	// loop: before Start it is not yet consuming, after drain completion it
	// may already be stopped.
	if s := d.state.Load(); s == stateStarting || s == stateDrained {
		http.Error(w, "not serving", http.StatusServiceUnavailable)
		return
	}
	class, ok := d.classOf(r.Header.Get("X-API-Key"))
	if !ok {
		d.tele.Rejected(telemetry.ClassNone)
		http.Error(w, "unknown API key", http.StatusUnauthorized)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
	if err != nil {
		http.Error(w, "reading body", http.StatusBadRequest)
		return
	}
	req, err := ParseRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Buffered: the clock goroutine must never block on a slow client.
	// The handler goroutine owns the write; if the client is gone the
	// response is simply discarded by net/http.
	ch := make(chan answer, 1)
	d.exec(func() {
		d.Serve(req, class, func(status int, resp Response) {
			ch <- answer{status, resp}
		})
	})
	a := <-ch
	writeJSON(w, a.status, a.resp)
}

// handleMetrics snapshots the registry on the clock goroutine and serves
// the Prometheus rendering.
func (d *Daemon) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if d.state.Load() == stateDrained {
		// The clock loop may already be stopped; nothing left to report.
		http.Error(w, "drained", http.StatusServiceUnavailable)
		return
	}
	type rendered struct {
		body []byte
		err  error
	}
	ch := make(chan rendered, 1)
	d.exec(func() {
		var buf bytes.Buffer
		err := telemetry.WriteProm(&buf, d.tele.TakeSnapshot(d.clk.Now()))
		ch <- rendered{buf.Bytes(), err}
	})
	out := <-ch
	if out.err != nil {
		http.Error(w, out.err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(out.body)
}

// handleSpans snapshots the engine's completed-span ring on the clock
// goroutine and serves it as a JSON array, oldest span first.
func (d *Daemon) handleSpans(w http.ResponseWriter, _ *http.Request) {
	if d.state.Load() == stateDrained {
		// The clock loop may already be stopped; nothing left to ask.
		http.Error(w, "drained", http.StatusServiceUnavailable)
		return
	}
	ch := make(chan []*span.Span, 1)
	d.exec(func() { ch <- d.rt.Spans() })
	spans := <-ch
	if spans == nil {
		spans = []*span.Span{}
	}
	writeJSON(w, http.StatusOK, spans)
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // the client may be gone; nothing to do
}
