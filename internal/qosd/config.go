package qosd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"hybridqos/internal/admission"
	"hybridqos/internal/catalog"
	"hybridqos/internal/faults"
)

// CatalogConfig parameterises the served item database (the same generator
// the simulator uses, so a daemon and a sim run can share a catalog).
type CatalogConfig struct {
	D      int     `json:"d"`
	Theta  float64 `json:"theta"`
	MinLen int     `json:"min_len"`
	MaxLen int     `json:"max_len"`
	Seed   uint64  `json:"seed"`
}

// ClassAdmission bounds one class at the daemon's front door; see
// admission.ClassConfig for field semantics. The zero value is fully open.
type ClassAdmission struct {
	Rate       float64 `json:"rate,omitempty"`
	Burst      float64 `json:"burst,omitempty"`
	MaxPending int     `json:"max_pending,omitempty"`
	Deadline   float64 `json:"deadline,omitempty"`
}

// ShedConfig mirrors faults.ShedConfig with JSON names.
type ShedConfig struct {
	High           int `json:"high"`
	Low            int `json:"low"`
	MaxShedClasses int `json:"max_shed_classes,omitempty"`
}

// AdmissionConfig is the admission section of the daemon configuration.
type AdmissionConfig struct {
	// DefaultDeadline is the delay budget, in broadcast units, for classes
	// without their own. Required: deadlines bound graceful drain.
	DefaultDeadline float64 `json:"default_deadline"`
	// Classes optionally bounds each class; omitted or short, missing
	// classes are fully open.
	Classes []ClassAdmission `json:"classes,omitempty"`
	// Shed enables hysteresis overload shedding.
	Shed *ShedConfig `json:"shed,omitempty"`
}

// Config is the qosd daemon configuration, loaded from JSON.
type Config struct {
	Catalog CatalogConfig `json:"catalog"`
	// ClassWeights are the per-class priority weights, premium first
	// (strictly decreasing, as in the paper's classification).
	ClassWeights []float64 `json:"class_weights"`
	// Cutoff is K: items 1..K broadcast, K+1..D on demand.
	Cutoff int `json:"cutoff"`
	// Alpha is the importance-factor mixing fraction for the gamma policy.
	Alpha float64 `json:"alpha"`
	// PullPolicy and PushPolicy name registry policies ("" = paper defaults).
	PullPolicy string `json:"pull_policy,omitempty"`
	PushPolicy string `json:"push_policy,omitempty"`
	PushDisks  int    `json:"push_disks,omitempty"`
	// UnitMillis maps one broadcast unit onto wall milliseconds.
	UnitMillis float64 `json:"unit_ms"`
	// Keys maps API keys to 0-based service classes.
	Keys map[string]int `json:"keys"`
	// DefaultClass serves requests with an unknown or missing API key:
	// a class index, or -1 to reject them with 401. Omitted means -1.
	DefaultClass *int `json:"default_class,omitempty"`
	// Admission configures the class-aware front door.
	Admission AdmissionConfig `json:"admission"`
	// SnapshotEvery is the telemetry snapshot cadence in broadcast units
	// (0 disables periodic snapshots; /metrics snapshots on demand).
	SnapshotEvery float64 `json:"snapshot_every,omitempty"`
	// Spans enables per-request span recording, served at /debug/spans.
	Spans *SpansConfig `json:"spans,omitempty"`
}

// SpansConfig is the span-recording section of the daemon configuration.
type SpansConfig struct {
	// Rate is the head-sampling probability in [0,1].
	Rate float64 `json:"rate"`
	// Buffer is the completed-span ring capacity (0 = default 64).
	Buffer int `json:"buffer,omitempty"`
	// Seed seeds the sampling stream (deterministic under the virtual
	// clock; under the wall clock it only sets which arrivals sample).
	Seed uint64 `json:"seed,omitempty"`
}

// ParseConfig decodes and validates a JSON daemon configuration. Unknown
// fields are rejected: a typo in an admission bound must not silently
// leave the door open.
func ParseConfig(data []byte) (Config, error) {
	var cfg Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("qosd: parsing config: %w", err)
	}
	if dec.More() {
		return Config{}, fmt.Errorf("qosd: trailing data after config object")
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// defaultClass resolves the DefaultClass pointer (-1 when omitted).
func (c Config) defaultClass() int {
	if c.DefaultClass == nil {
		return -1
	}
	return *c.DefaultClass
}

// admissionConfig lowers the JSON shape onto the admission package's.
func (c Config) admissionConfig() admission.Config {
	classes := make([]admission.ClassConfig, len(c.ClassWeights))
	for i := range classes {
		if i < len(c.Admission.Classes) {
			ca := c.Admission.Classes[i]
			classes[i] = admission.ClassConfig{
				Rate:       ca.Rate,
				Burst:      ca.Burst,
				MaxPending: ca.MaxPending,
				Deadline:   ca.Deadline,
			}
		}
	}
	out := admission.Config{
		Classes:         classes,
		DefaultDeadline: c.Admission.DefaultDeadline,
	}
	if c.Admission.Shed != nil {
		out.Shed = &faults.ShedConfig{
			High:           c.Admission.Shed.High,
			Low:            c.Admission.Shed.Low,
			MaxShedClasses: c.Admission.Shed.MaxShedClasses,
		}
	}
	return out
}

// Validate audits the configuration without building anything.
func (c Config) Validate() error {
	if err := (catalog.Config{
		D: c.Catalog.D, Theta: c.Catalog.Theta,
		MinLen: c.Catalog.MinLen, MaxLen: c.Catalog.MaxLen, Seed: c.Catalog.Seed,
	}).Validate(); err != nil {
		return fmt.Errorf("qosd: %w", err)
	}
	numClasses := len(c.ClassWeights)
	if numClasses == 0 {
		return fmt.Errorf("qosd: no class weights")
	}
	for i := 1; i < numClasses; i++ {
		if !(c.ClassWeights[i] < c.ClassWeights[i-1]) {
			return fmt.Errorf("qosd: class weights must strictly decrease (index %d)", i)
		}
	}
	if c.ClassWeights[numClasses-1] <= 0 || math.IsNaN(c.ClassWeights[0]) || math.IsInf(c.ClassWeights[0], 0) {
		return fmt.Errorf("qosd: class weights must be positive and finite")
	}
	if c.Cutoff < 0 || c.Cutoff > c.Catalog.D {
		return fmt.Errorf("qosd: cutoff %d out of [0,%d]", c.Cutoff, c.Catalog.D)
	}
	if !(c.UnitMillis > 0) || math.IsInf(c.UnitMillis, 0) {
		return fmt.Errorf("qosd: unit_ms %g not positive and finite", c.UnitMillis)
	}
	if len(c.Admission.Classes) > numClasses {
		return fmt.Errorf("qosd: %d admission classes for %d classes", len(c.Admission.Classes), numClasses)
	}
	if dc := c.defaultClass(); dc < -1 || dc >= numClasses {
		return fmt.Errorf("qosd: default_class %d outside [-1,%d)", dc, numClasses)
	}
	// Audit key mappings in sorted order (deterministic error messages).
	for _, k := range sortedKeys(c.Keys) {
		if k == "" {
			return fmt.Errorf("qosd: empty API key")
		}
		if cls := c.Keys[k]; cls < 0 || cls >= numClasses {
			return fmt.Errorf("qosd: key %q maps to class %d outside [0,%d)", k, cls, numClasses)
		}
	}
	if c.SnapshotEvery < 0 || math.IsNaN(c.SnapshotEvery) || math.IsInf(c.SnapshotEvery, 0) {
		return fmt.Errorf("qosd: invalid snapshot cadence %g", c.SnapshotEvery)
	}
	if s := c.Spans; s != nil {
		if s.Rate < 0 || s.Rate > 1 || math.IsNaN(s.Rate) {
			return fmt.Errorf("qosd: span rate %g outside [0,1]", s.Rate)
		}
		if s.Buffer < 0 {
			return fmt.Errorf("qosd: negative span buffer %d", s.Buffer)
		}
	}
	if err := c.admissionConfig().Validate(); err != nil {
		return err
	}
	return nil
}

// sortedKeys returns m's keys in sorted order (the repository's maporder
// contract: map iteration only ever happens through a sorted key list).
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Request is one client request, POSTed to /request as JSON.
type Request struct {
	// Item is the catalog rank in [1, D].
	Item int `json:"item"`
	// DeadlineIn optionally tightens (never extends) the class's delay
	// budget, in broadcast units.
	DeadlineIn float64 `json:"deadline_in,omitempty"`
}

// ParseRequest decodes and sanity-checks one request body. Item range is
// checked against the live catalog by the daemon; here only structural
// validity (the parser has no catalog).
func ParseRequest(data []byte) (Request, error) {
	var req Request
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return Request{}, fmt.Errorf("qosd: parsing request: %w", err)
	}
	if dec.More() {
		return Request{}, fmt.Errorf("qosd: trailing data after request object")
	}
	if req.Item < 1 {
		return Request{}, fmt.Errorf("qosd: item %d not positive", req.Item)
	}
	if req.DeadlineIn < 0 || math.IsNaN(req.DeadlineIn) || math.IsInf(req.DeadlineIn, 0) {
		return Request{}, fmt.Errorf("qosd: invalid deadline_in %g", req.DeadlineIn)
	}
	return req, nil
}
