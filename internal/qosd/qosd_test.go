package qosd

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"hybridqos/internal/clock"
	"hybridqos/internal/span"
	"hybridqos/internal/telemetry"
	"hybridqos/internal/trace"
)

// testConfig is a small pull-only daemon: unit-length items, three classes
// confined to disjoint hundred-item bands by the load generators, shedding
// enabled. Mirrors the core.Realtime overload scenario so daemon-level
// results are comparable.
func testConfig() Config {
	return Config{
		Catalog:      CatalogConfig{D: 300, Theta: 0.5, MinLen: 1, MaxLen: 1, Seed: 7},
		ClassWeights: []float64{4, 2, 1},
		PullPolicy:   "priority",
		UnitMillis:   1,
		Keys:         map[string]int{"bronze": 2, "gold": 0, "silver": 1},
		Admission: AdmissionConfig{
			DefaultDeadline: 30,
			Shed:            &ShedConfig{High: 30, Low: 15, MaxShedClasses: 2},
		},
	}
}

// inlineDaemon builds a Daemon on a fresh virtual clock with exec calling
// inline — correct single-threaded, where the test owns the clock goroutine.
func inlineDaemon(t *testing.T, cfg Config) (*Daemon, *clock.Virtual) {
	t.Helper()
	v := clock.NewVirtual()
	d, err := New(cfg, v, func(f func()) { f() })
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	return d, v
}

func TestParseConfigRoundTrip(t *testing.T) {
	data, err := json.Marshal(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Catalog.D != 300 || len(cfg.ClassWeights) != 3 || cfg.Keys["gold"] != 0 {
		t.Fatalf("round trip mangled config: %+v", cfg)
	}
	if cfg.defaultClass() != -1 {
		t.Errorf("omitted default_class resolved to %d, want -1", cfg.defaultClass())
	}
}

func TestParseConfigErrors(t *testing.T) {
	mutate := func(f func(*Config)) []byte {
		cfg := testConfig()
		f(&cfg)
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"unknown field", []byte(`{"catalog":{"d":10,"theta":0.5,"min_len":1,"max_len":1},"class_weights":[2,1],"unit_ms":1,"admission":{"default_deadline":5},"bogus":1}`)},
		{"trailing data", append(mutate(func(*Config) {}), []byte(" {}")...)},
		{"not json", []byte("not json")},
		{"no classes", mutate(func(c *Config) { c.ClassWeights = nil })},
		{"non-decreasing weights", mutate(func(c *Config) { c.ClassWeights = []float64{1, 1, 2} })},
		{"cutoff out of range", mutate(func(c *Config) { c.Cutoff = 301 })},
		{"zero unit", mutate(func(c *Config) { c.UnitMillis = 0 })},
		{"key class out of range", mutate(func(c *Config) { c.Keys = map[string]int{"k": 3} })},
		{"empty key", mutate(func(c *Config) { c.Keys = map[string]int{"": 0} })},
		{"default class out of range", mutate(func(c *Config) { dc := 3; c.DefaultClass = &dc })},
		{"too many admission classes", mutate(func(c *Config) { c.Admission.Classes = make([]ClassAdmission, 4) })},
		{"no deadline", mutate(func(c *Config) { c.Admission.DefaultDeadline = 0 })},
		{"negative snapshot cadence", mutate(func(c *Config) { c.SnapshotEvery = -1 })},
	}
	for _, tc := range cases {
		if _, err := ParseConfig(tc.data); err == nil {
			t.Errorf("%s: ParseConfig accepted %s", tc.name, tc.data)
		}
	}
}

func TestParseRequestErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		data string
	}{
		{"empty", ``},
		{"unknown field", `{"item":1,"extra":true}`},
		{"trailing data", `{"item":1} {"item":2}`},
		{"zero item", `{"item":0}`},
		{"negative item", `{"item":-4}`},
		{"negative deadline", `{"item":1,"deadline_in":-1}`},
		{"string item", `{"item":"five"}`},
	} {
		if _, err := ParseRequest([]byte(tc.data)); err == nil {
			t.Errorf("%s: ParseRequest accepted %q", tc.name, tc.data)
		}
	}
	req, err := ParseRequest([]byte(`{"item":7,"deadline_in":2.5}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Item != 7 || req.DeadlineIn != 2.5 {
		t.Fatalf("parsed %+v", req)
	}
}

func FuzzParseConfig(f *testing.F) {
	seed, err := json.Marshal(testConfig())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"catalog":{"d":1,"theta":0.5,"min_len":1,"max_len":1},"class_weights":[1],"unit_ms":1,"admission":{"default_deadline":1}}`))
	f.Add([]byte(`{"class_weights":[1e308,1]}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseConfig(data)
		if err != nil {
			return
		}
		// An accepted config must satisfy its own validator and be safe to
		// lower into the admission package.
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ParseConfig accepted a config Validate rejects: %v", err)
		}
		if err := cfg.admissionConfig().Validate(); err != nil {
			t.Fatalf("accepted config lowers to invalid admission config: %v", err)
		}
	})
}

func FuzzParseRequest(f *testing.F) {
	f.Add([]byte(`{"item":1}`))
	f.Add([]byte(`{"item":42,"deadline_in":3.5}`))
	f.Add([]byte(`{"item":-1}`))
	f.Add([]byte(`{"deadline_in":1e309}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			return
		}
		if req.Item < 1 {
			t.Fatalf("accepted non-positive item %d", req.Item)
		}
		if req.DeadlineIn < 0 || math.IsNaN(req.DeadlineIn) || math.IsInf(req.DeadlineIn, 0) {
			t.Fatalf("accepted invalid deadline %g", req.DeadlineIn)
		}
	})
}

// p95 returns the 95th-percentile of xs (nearest-rank).
func p95(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := (len(s)*95 + 99) / 100
	if idx > 0 {
		idx--
	}
	return s[idx]
}

// TestDaemonOverloadDegradesByClass replays the 2x-overload chaos scenario
// through the daemon's Serve path (the same stack HTTP requests traverse,
// minus goroutine plumbing) on the virtual clock: degradation must be
// class-ordered on both p95 effective delay and refusal rate.
func TestDaemonOverloadDegradesByClass(t *testing.T) {
	const (
		numClasses = 3
		deadline   = 30.0
		horizon    = 1000.0
	)
	d, v := inlineDaemon(t, testConfig())
	type classStats struct {
		submitted, refused, responses int
		effective                     []float64
	}
	stats := make([]classStats, numClasses)
	for k := 0; 0.5*float64(k) < horizon; k++ {
		class := k % numClasses
		item := class*100 + (k/numClasses)%100 + 1
		v.At(0.5*float64(k), func() {
			st := &stats[class]
			st.submitted++
			d.Serve(Request{Item: item}, class, func(status int, resp Response) {
				st.responses++
				switch status {
				case http.StatusOK:
					st.effective = append(st.effective, resp.DelayUnits)
				case http.StatusGatewayTimeout:
					st.effective = append(st.effective, deadline)
				case http.StatusTooManyRequests:
					st.refused++
				default:
					t.Errorf("class %d: unexpected status %d (%+v)", class, status, resp)
				}
			})
		})
	}
	v.RunUntil(horizon + 2*deadline)

	totalRefused := 0
	for c := 0; c < numClasses; c++ {
		st := &stats[c]
		if st.responses != st.submitted {
			t.Fatalf("class %d: %d responses for %d requests", c, st.responses, st.submitted)
		}
		totalRefused += st.refused
	}
	if totalRefused == 0 {
		t.Fatal("2x overload produced no refusals; the scenario is not stressing admission")
	}
	for c := 0; c+1 < numClasses; c++ {
		hi, lo := &stats[c], &stats[c+1]
		if hiP95, loP95 := p95(hi.effective), p95(lo.effective); hiP95 > loP95 {
			t.Errorf("class %d p95 effective delay %g worse than class %d's %g", c, hiP95, c+1, loP95)
		}
		hiRate := float64(hi.refused) / float64(hi.submitted)
		loRate := float64(lo.refused) / float64(lo.submitted)
		if hiRate > loRate {
			t.Errorf("class %d refusal rate %g worse than class %d's %g", c, hiRate, c+1, loRate)
		}
	}
	if stats[0].refused != 0 {
		t.Errorf("class 0 refused %d times; the highest class is never shed", stats[0].refused)
	}
	// The shed path must be visible in telemetry.
	snap := d.Telemetry().TakeSnapshot(v.Now())
	shed := int64(0)
	for c := 0; c < numClasses; c++ {
		shed += snap.Counter(telemetry.MetricShed, c)
	}
	if shed == 0 {
		t.Error("no shed counters recorded under 2x overload")
	}
}

// TestDaemonDeadlineStorm: a storm of near-expired requests answers every
// client 504 by its deadline and never reports a success afterwards.
func TestDaemonDeadlineStorm(t *testing.T) {
	d, v := inlineDaemon(t, testConfig())
	const n = 50
	responses := 0
	for i := 0; i < n; i++ {
		item := i + 1
		d.Serve(Request{Item: item, DeadlineIn: 0.5}, i%3, func(status int, resp Response) {
			responses++
			now := v.Now()
			if status == http.StatusOK && now > 0.5 {
				t.Errorf("request %d: served at t=%g, past its 0.5 deadline", item, now)
			}
			if status == http.StatusGatewayTimeout && now > 0.5 {
				t.Errorf("request %d: expiry reported at t=%g, after the deadline", item, now)
			}
		})
	}
	v.RunUntil(10)
	if responses != n {
		t.Fatalf("%d of %d storm requests answered", responses, n)
	}
}

// TestDaemonServeRefusals covers the synchronous refusal paths of Serve.
func TestDaemonServeRefusals(t *testing.T) {
	d, v := inlineDaemon(t, testConfig())
	gotStatus, gotOutcome := 0, ""
	record := func(status int, resp Response) { gotStatus, gotOutcome = status, resp.Outcome }

	d.Serve(Request{Item: 9999}, 0, record)
	if gotStatus != http.StatusBadRequest || gotOutcome != "bad_item" {
		t.Errorf("item out of range answered %d %q", gotStatus, gotOutcome)
	}

	d.Drain(nil)
	d.Serve(Request{Item: 1}, 0, record)
	if gotStatus != http.StatusServiceUnavailable || gotOutcome != "draining" {
		t.Errorf("Serve while draining answered %d %q", gotStatus, gotOutcome)
	}
	v.RunUntil(100)
}

// TestDaemonDrain drains mid-storm: every admitted request is answered by
// its deadline, new requests get 503, onDrained fires exactly once, and the
// draining gauge flips in telemetry.
func TestDaemonDrain(t *testing.T) {
	const deadline = 30.0
	d, v := inlineDaemon(t, testConfig())
	submitted, refused, answered := 0, 0, 0
	for k := 0; k < 200; k++ {
		item := k%100 + 1
		class := k % 3
		v.At(0.02*float64(k), func() {
			submitted++
			d.Serve(Request{Item: item}, class, func(status int, resp Response) {
				switch status {
				case http.StatusOK, http.StatusGatewayTimeout:
					answered++
					if v.Now() > 4+deadline {
						t.Errorf("request resolved at t=%g, past drain deadline bound", v.Now())
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					refused++
				default:
					t.Errorf("unexpected status %d", status)
				}
			})
		})
	}
	drainedAt, drains := -1.0, 0
	v.At(4, func() {
		d.Drain(func() {
			drains++
			drainedAt = v.Now()
		})
	})
	v.RunUntil(200)
	if drains != 1 {
		t.Fatalf("onDrained fired %d times", drains)
	}
	if answered != submitted-refused {
		t.Fatalf("%d answers for %d admitted requests", answered, submitted-refused)
	}
	if drainedAt > 4+deadline {
		t.Errorf("drain completed at t=%g, beyond the deadline bound %g", drainedAt, 4+deadline)
	}
	snap := d.Telemetry().TakeSnapshot(v.Now())
	if got := snap.Gauge(telemetry.MetricDraining, telemetry.ClassNone); got != 1 {
		t.Errorf("draining gauge = %g, want 1", got)
	}
}

// TestDaemonHTTPStateShortCircuits exercises the handler endpoints that can
// answer without the clock goroutine, plus /metrics through inline exec.
func TestDaemonHTTPStateShortCircuits(t *testing.T) {
	v := clock.NewVirtual()
	d, err := New(testConfig(), v, func(f func()) { f() })
	if err != nil {
		t.Fatal(err)
	}
	h := d.Handler()
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}
	post := func(path, key, body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		h.ServeHTTP(rec, req)
		return rec
	}

	// Before Start: healthz is alive, readyz and /request refuse.
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz before start: %d", rec.Code)
	}
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz before start: %d", rec.Code)
	}
	if rec := post("/request", "gold", `{"item":1}`); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("request before start: %d", rec.Code)
	}

	d.Start()
	if rec := get("/readyz"); rec.Code != http.StatusOK {
		t.Errorf("readyz after start: %d", rec.Code)
	}
	if rec := get("/request"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /request: %d", rec.Code)
	}
	if rec := post("/request", "intruder", `{"item":1}`); rec.Code != http.StatusUnauthorized {
		t.Errorf("unknown key: %d", rec.Code)
	}
	if rec := post("/request", "gold", `{"item":0}`); rec.Code != http.StatusBadRequest {
		t.Errorf("bad item: %d", rec.Code)
	}
	if rec := post("/request", "gold", `not json`); rec.Code != http.StatusBadRequest {
		t.Errorf("bad body: %d", rec.Code)
	}
	// Metrics are lazily created: the 401 above bumped rejected_total.
	if rec := get("/metrics"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), "hybridqos_rejected_total 1") {
		t.Errorf("metrics: %d, body %q", rec.Code, rec.Body.String())
	}

	d.Drain(nil)
	v.RunUntil(100)
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain: %d", rec.Code)
	}
	if rec := post("/request", "gold", `{"item":1}`); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("request after drain: %d", rec.Code)
	}
	if rec := get("/metrics"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("metrics after drain: %d", rec.Code)
	}
}

// TestDaemonSpans: with spans enabled, served, expired and drain-refused
// requests all land in the engine's span ring with verified segment tiling
// — the drain-time refusal carrying the "draining" terminal taxonomy — and
// /debug/spans serves them as JSON.
func TestDaemonSpans(t *testing.T) {
	cfg := testConfig()
	cfg.Spans = &SpansConfig{Rate: 1, Buffer: 16}
	d, v := inlineDaemon(t, cfg)

	d.Serve(Request{Item: 5}, 0, func(int, Response) {})
	d.Serve(Request{Item: 250, DeadlineIn: 0.5}, 2, func(int, Response) {})
	v.RunUntil(5)

	// The span ring is live over HTTP before drain.
	rec := httptest.NewRecorder()
	d.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/spans", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/spans: %d", rec.Code)
	}
	var served []span.Span
	if err := json.Unmarshal(rec.Body.Bytes(), &served); err != nil {
		t.Fatalf("/debug/spans body: %v\n%s", err, rec.Body.String())
	}
	if len(served) != 2 {
		t.Fatalf("/debug/spans returned %d spans, want 2:\n%s", len(served), rec.Body.String())
	}

	v.At(6, func() {
		d.Drain(nil)
		d.Serve(Request{Item: 7}, 1, func(status int, resp Response) {
			if status != http.StatusServiceUnavailable || resp.Outcome != "draining" {
				t.Errorf("drain-time request answered %d %q", status, resp.Outcome)
			}
		})
	})
	v.RunUntil(100)

	spans := d.Engine().Spans()
	if err := span.Verify(spans); err != nil {
		t.Fatal(err)
	}
	outcomes := map[string]int{}
	for _, sp := range spans {
		outcomes[sp.Outcome]++
	}
	if outcomes[trace.EndServed] != 1 || outcomes[trace.EndExpired] != 1 || outcomes[trace.EndDraining] != 1 {
		t.Fatalf("span outcomes %v, want one each of served/expired/draining", outcomes)
	}
	for _, sp := range spans {
		if sp.Outcome != trace.EndServed {
			continue
		}
		if len(sp.Segments) == 0 || sp.Segments[len(sp.Segments)-1].Kind != span.SegService {
			t.Fatalf("served span lacks a service segment: %+v", sp)
		}
		if sp.Item != 5 || sp.Verdict != trace.VerdictPull {
			t.Fatalf("served span misattributed: %+v", sp)
		}
	}
}

// TestDaemonDefaultClass: unknown keys fall through to the configured
// default class instead of 401.
func TestDaemonDefaultClass(t *testing.T) {
	cfg := testConfig()
	dc := 2
	cfg.DefaultClass = &dc
	v := clock.NewVirtual()
	d, err := New(cfg, v, func(f func()) { f() })
	if err != nil {
		t.Fatal(err)
	}
	if class, ok := d.classOf("intruder"); !ok || class != 2 {
		t.Errorf("classOf(unknown) = %d,%v; want 2,true", class, ok)
	}
	if class, ok := d.classOf("gold"); !ok || class != 0 {
		t.Errorf("classOf(gold) = %d,%v; want 0,true", class, ok)
	}
}
