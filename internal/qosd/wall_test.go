package qosd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"hybridqos/internal/clock"
	"hybridqos/internal/httpserve"
)

// TestDaemonWallHTTPEndToEnd runs the full serving stack — wall clock,
// Wall.Submit bridging, httpserve, real TCP — through the lifecycle
// cmd/qosd drives: start, serve, survive a slow client, drain, shut down.
func TestDaemonWallHTTPEndToEnd(t *testing.T) {
	cfg := testConfig()
	// Generous deadline (in units = ms): a stalled CI machine must not turn
	// a served request into an expiry.
	cfg.Admission.DefaultDeadline = 5000

	wall, err := clock.NewWall(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(cfg, wall, wall.Submit)
	if err != nil {
		t.Fatal(err)
	}
	go wall.Run()
	d.Start()
	srv, err := httpserve.Start("127.0.0.1:0", d.Handler())
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr.String()

	// Start is asynchronous (it rides the clock loop): wait for readiness.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}

	post := func(key, body string) (int, Response) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+"/request", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-API-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out Response
		if resp.Header.Get("Content-Type") == "application/json" {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatalf("decoding response: %v", err)
			}
		}
		return resp.StatusCode, out
	}

	// A slow client: sends a valid admitted request, then never reads the
	// response. The engine's answer is buffered; nothing downstream may
	// block on this connection.
	slow, err := net.Dial("tcp", srv.Addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	slowBody := `{"item":2}`
	fmt.Fprintf(slow, "POST /request HTTP/1.1\r\nHost: qosd\r\nX-API-Key: silver\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s", len(slowBody), slowBody)

	// Normal requests complete while the slow client sits on its socket.
	if status, resp := post("gold", `{"item":1}`); status != http.StatusOK || resp.Outcome != "served" || resp.Class != 0 {
		t.Fatalf("served request answered %d %+v", status, resp)
	}
	if status, _ := post("intruder", `{"item":1}`); status != http.StatusUnauthorized {
		t.Fatalf("unknown key answered %d", status)
	}
	if status, resp := post("bronze", `{"item":9999}`); status != http.StatusBadRequest || resp.Outcome != "bad_item" {
		t.Fatalf("out-of-catalog item answered %d %+v", status, resp)
	}

	// Metrics over live HTTP: the served request above must be visible.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK || !strings.Contains(string(mbody), "hybridqos_arrivals_total") {
		t.Fatalf("metrics: %d, body %q", mresp.StatusCode, mbody)
	}

	// Graceful drain, as cmd/qosd runs it on SIGTERM.
	drained := make(chan struct{})
	d.Drain(func() { close(drained) })
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete")
	}
	if status, _ := post("gold", `{"item":1}`); status != http.StatusServiceUnavailable {
		t.Fatalf("request after drain answered %d", status)
	}
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wall.Stop()
	select {
	case <-wall.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("wall clock loop did not stop")
	}
}
