// Package zipf implements the Zipf-like access-probability model the paper
// uses both for item popularity (assumption 4: skew coefficient θ from 0.20 to
// 1.40) and for the distribution of clients among service classes
// (assumption 6: fewest highest-priority clients, most lowest-priority).
//
// The paper's definition (section 4.1):
//
//	P_i = (1/i)^θ / Σ_{j=1..n} (1/j)^θ ,  i = 1..n
//
// θ = 0 is the uniform distribution; larger θ concentrates probability on the
// low ranks.
package zipf

import (
	"fmt"
	"math"

	"hybridqos/internal/rng"
)

// Distribution is an immutable Zipf-like probability vector over ranks
// 1..N (stored at indices 0..N-1).
type Distribution struct {
	theta float64
	probs []float64
	cum   []float64 // cumulative probabilities, for CDF queries
	alias *rng.Alias
}

// New builds a Zipf distribution over n ranks with skew coefficient theta.
// It returns an error if n <= 0 or theta is negative, NaN or Inf. theta = 0
// yields the uniform distribution.
func New(n int, theta float64) (*Distribution, error) {
	if n <= 0 {
		return nil, fmt.Errorf("zipf: n must be positive, got %d", n)
	}
	if theta < 0 || math.IsNaN(theta) || math.IsInf(theta, 0) {
		return nil, fmt.Errorf("zipf: invalid theta %g", theta)
	}
	d := &Distribution{
		theta: theta,
		probs: make([]float64, n),
		cum:   make([]float64, n),
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		d.probs[i] = math.Pow(1/float64(i+1), theta)
		sum += d.probs[i]
	}
	run := 0.0
	for i := range d.probs {
		d.probs[i] /= sum
		run += d.probs[i]
		d.cum[i] = run
	}
	d.cum[n-1] = 1 // guard against accumulated rounding
	d.alias = rng.MustAlias(d.probs)
	return d, nil
}

// Must is New that panics on error.
func Must(n int, theta float64) *Distribution {
	d, err := New(n, theta)
	if err != nil {
		panic(fmt.Errorf("zipf: Must: %w", err))
	}
	return d
}

// N returns the number of ranks.
func (d *Distribution) N() int { return len(d.probs) }

// Theta returns the skew coefficient.
func (d *Distribution) Theta() float64 { return d.theta }

// Prob returns P_rank for rank in [1, N]. It panics on an out-of-range rank so
// that an off-by-one in a caller surfaces immediately rather than skewing an
// experiment.
func (d *Distribution) Prob(rank int) float64 {
	if rank < 1 || rank > len(d.probs) {
		panic(fmt.Sprintf("zipf: rank %d out of [1,%d]", rank, len(d.probs)))
	}
	return d.probs[rank-1]
}

// Probs returns a copy of the probability vector indexed by rank-1.
func (d *Distribution) Probs() []float64 {
	out := make([]float64, len(d.probs))
	copy(out, d.probs)
	return out
}

// CumProb returns Σ_{i=1..rank} P_i; CumProb(0) = 0.
func (d *Distribution) CumProb(rank int) float64 {
	if rank < 0 || rank > len(d.probs) {
		panic(fmt.Sprintf("zipf: rank %d out of [0,%d]", rank, len(d.probs)))
	}
	if rank == 0 {
		return 0
	}
	return d.cum[rank-1]
}

// TailProb returns Σ_{i=rank..N} P_i, the probability mass of ranks >= rank.
// TailProb(N+1) = 0. This is the pull-set mass Σ_{i=K+1..D} P_i when called
// with rank = K+1.
func (d *Distribution) TailProb(rank int) float64 {
	if rank < 1 || rank > len(d.probs)+1 {
		panic(fmt.Sprintf("zipf: rank %d out of [1,%d]", rank, len(d.probs)+1))
	}
	return 1 - d.CumProb(rank-1)
}

// Sample draws a rank in [1, N] with probability P_rank in O(1).
func (d *Distribution) Sample(r *rng.Source) int {
	return d.alias.Sample(r) + 1
}
