package zipf

import (
	"math"
	"testing"
	"testing/quick"

	"hybridqos/internal/rng"
)

func TestNewErrors(t *testing.T) {
	for _, c := range []struct {
		n     int
		theta float64
	}{
		{0, 1}, {-5, 1}, {10, -0.1}, {10, math.NaN()}, {10, math.Inf(1)},
	} {
		if _, err := New(c.n, c.theta); err == nil {
			t.Errorf("New(%d, %g) succeeded, want error", c.n, c.theta)
		}
	}
}

func TestMustPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Must(0,1) did not panic")
		}
	}()
	Must(0, 1)
}

func TestProbsSumToOne(t *testing.T) {
	for _, theta := range []float64{0, 0.2, 0.6, 1.0, 1.4, 3} {
		d := Must(100, theta)
		sum := 0.0
		for rank := 1; rank <= 100; rank++ {
			sum += d.Prob(rank)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("theta=%g: probabilities sum to %g", theta, sum)
		}
	}
}

func TestUniformWhenThetaZero(t *testing.T) {
	d := Must(50, 0)
	for rank := 1; rank <= 50; rank++ {
		if math.Abs(d.Prob(rank)-0.02) > 1e-12 {
			t.Fatalf("theta=0: P_%d = %g, want 0.02", rank, d.Prob(rank))
		}
	}
}

func TestMonotoneDecreasing(t *testing.T) {
	for _, theta := range []float64{0.2, 0.6, 1.0, 1.4} {
		d := Must(100, theta)
		for rank := 2; rank <= 100; rank++ {
			if d.Prob(rank) > d.Prob(rank-1)+1e-15 {
				t.Fatalf("theta=%g: P_%d=%g > P_%d=%g", theta, rank, d.Prob(rank), rank-1, d.Prob(rank-1))
			}
		}
	}
}

func TestPaperFormulaExactValues(t *testing.T) {
	// Direct check against P_i = (1/i)^θ / Σ (1/j)^θ for a small case we can
	// compute by hand: n=3, θ=1 -> weights 1, 1/2, 1/3; sum = 11/6.
	d := Must(3, 1)
	want := []float64{6.0 / 11, 3.0 / 11, 2.0 / 11}
	for i, w := range want {
		if math.Abs(d.Prob(i+1)-w) > 1e-12 {
			t.Errorf("P_%d = %g, want %g", i+1, d.Prob(i+1), w)
		}
	}
}

func TestHigherThetaMoreSkewed(t *testing.T) {
	lo := Must(100, 0.2)
	hi := Must(100, 1.4)
	if hi.Prob(1) <= lo.Prob(1) {
		t.Fatalf("P_1 at theta=1.4 (%g) not greater than at theta=0.2 (%g)", hi.Prob(1), lo.Prob(1))
	}
	if hi.Prob(100) >= lo.Prob(100) {
		t.Fatalf("P_100 at theta=1.4 (%g) not smaller than at theta=0.2 (%g)", hi.Prob(100), lo.Prob(100))
	}
}

func TestCumAndTailConsistency(t *testing.T) {
	d := Must(100, 0.6)
	if d.CumProb(0) != 0 {
		t.Fatalf("CumProb(0) = %g", d.CumProb(0))
	}
	if d.CumProb(100) != 1 {
		t.Fatalf("CumProb(100) = %g", d.CumProb(100))
	}
	if d.TailProb(1) != 1 {
		t.Fatalf("TailProb(1) = %g", d.TailProb(1))
	}
	if d.TailProb(101) != 0 {
		t.Fatalf("TailProb(101) = %g", d.TailProb(101))
	}
	for k := 0; k <= 100; k++ {
		if math.Abs(d.CumProb(k)+d.TailProb(k+1)-1) > 1e-12 {
			t.Fatalf("CumProb(%d)+TailProb(%d) = %g, want 1", k, k+1, d.CumProb(k)+d.TailProb(k+1))
		}
	}
}

func TestCumMatchesManualSum(t *testing.T) {
	d := Must(40, 1.1)
	run := 0.0
	for rank := 1; rank <= 40; rank++ {
		run += d.Prob(rank)
		if math.Abs(d.CumProb(rank)-run) > 1e-9 {
			t.Fatalf("CumProb(%d) = %g, manual sum %g", rank, d.CumProb(rank), run)
		}
	}
}

func TestProbPanicsOutOfRange(t *testing.T) {
	d := Must(10, 1)
	for _, rank := range []int{0, -1, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Prob(%d) did not panic", rank)
				}
			}()
			d.Prob(rank)
		}()
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	d := Must(20, 0.8)
	r := rng.New(42)
	const draws = 400000
	counts := make([]int, 21)
	for i := 0; i < draws; i++ {
		counts[d.Sample(r)]++
	}
	for rank := 1; rank <= 20; rank++ {
		want := d.Prob(rank) * draws
		if math.Abs(float64(counts[rank])-want) > 5*math.Sqrt(want)+10 {
			t.Errorf("rank %d sampled %d times, want ~%.0f", rank, counts[rank], want)
		}
	}
}

func TestProbsReturnsCopy(t *testing.T) {
	d := Must(5, 1)
	p := d.Probs()
	p[0] = 99
	if d.Prob(1) == 99 {
		t.Fatal("Probs() exposed internal state")
	}
}

// Property: for any valid (n, theta), probabilities are positive, sorted
// descending, and sum to one.
func TestPropertyValidDistribution(t *testing.T) {
	check := func(nRaw uint8, thetaRaw uint8) bool {
		n := int(nRaw%200) + 1
		theta := float64(thetaRaw) / 100 // 0..2.55
		d, err := New(n, theta)
		if err != nil {
			return false
		}
		sum := 0.0
		prev := math.Inf(1)
		for rank := 1; rank <= n; rank++ {
			p := d.Prob(rank)
			if p <= 0 || p > prev+1e-15 {
				return false
			}
			prev = p
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSample(b *testing.B) {
	d := Must(100, 0.6)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sample(r)
	}
}
