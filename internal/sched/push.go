// Package sched provides the scheduling building blocks of the hybrid
// server: push-side broadcast schedulers (the paper's flat round-robin plus
// the broadcast-disk and square-root-rule baselines from the literature it
// cites) and pull-side selection policies (the paper's importance factor
// plus FCFS, MRF, RxW and stretch baselines).
package sched

import (
	"fmt"
	"math"

	"hybridqos/internal/catalog"
)

// PushScheduler yields the next item rank to broadcast from the push set
// {1..K}. Implementations are deterministic state machines.
type PushScheduler interface {
	// Next returns the rank of the next item to broadcast. It panics if the
	// push set is empty (the server must not consult a scheduler for K=0).
	Next() int
	// Name identifies the scheduler in reports.
	Name() string
}

// FlatRoundRobin is the paper's push scheduler: a cyclic broadcast of items
// 1..K in rank order, every item exactly once per cycle.
type FlatRoundRobin struct {
	k    int
	next int
}

// NewFlatRoundRobin returns a flat scheduler over ranks 1..k.
func NewFlatRoundRobin(k int) *FlatRoundRobin {
	if k < 0 {
		panic(fmt.Sprintf("sched: negative push set size %d", k))
	}
	return &FlatRoundRobin{k: k}
}

// Name implements PushScheduler.
func (f *FlatRoundRobin) Name() string { return "flat" }

// Next implements PushScheduler.
//
//qos:hotpath
func (f *FlatRoundRobin) Next() int {
	if f.k == 0 {
		panic("sched: Next on empty push set")
	}
	f.next = f.next%f.k + 1
	return f.next
}

// BroadcastDisk implements Acharya et al.'s broadcast-disk program over the
// push set: items are partitioned into disks by popularity band, each disk d
// spins at a relative frequency; the flat major cycle is replaced by an
// interleaved program in which hot items recur more often.
type BroadcastDisk struct {
	program []int
	pos     int
}

// NewBroadcastDisk builds a disk program for ranks 1..k of the catalog.
// numDisks disks receive contiguous popularity bands of (roughly) equal item
// count; disk d (0-based, hottest first) has relative frequency
// numDisks − d. The program is the standard chunk-interleaved major cycle.
func NewBroadcastDisk(cat *catalog.Catalog, k, numDisks int) (*BroadcastDisk, error) {
	if cat == nil {
		return nil, fmt.Errorf("sched: nil catalog")
	}
	if k < 1 || k > cat.D() {
		return nil, fmt.Errorf("sched: push size %d out of [1,%d]", k, cat.D())
	}
	if numDisks < 1 {
		return nil, fmt.Errorf("sched: numDisks %d", numDisks)
	}
	if numDisks > k {
		numDisks = k
	}
	// Partition ranks 1..k into numDisks contiguous bands.
	disks := make([][]int, numDisks)
	per := k / numDisks
	extra := k % numDisks
	rank := 1
	for d := 0; d < numDisks; d++ {
		n := per
		if d < extra {
			n++
		}
		for j := 0; j < n; j++ {
			disks[d] = append(disks[d], rank)
			rank++
		}
	}
	// Relative frequencies: disk d spins numDisks−d times per major cycle.
	freqs := make([]int, numDisks)
	for d := range freqs {
		freqs[d] = numDisks - d
	}
	// Chunking: disk d is split into numChunks(d) = L/freq(d) chunks where
	// L = lcm of frequencies; minor cycle m broadcasts chunk (m mod
	// numChunks(d)) of every disk.
	l := 1
	for _, f := range freqs {
		l = lcm(l, f)
	}
	program := make([]int, 0, k*2)
	for minor := 0; minor < l; minor++ {
		for d := 0; d < numDisks; d++ {
			numChunks := l / freqs[d]
			chunk := minor % numChunks
			// Chunk boundaries over disks[d].
			size := len(disks[d])
			lo := chunk * size / numChunks
			hi := (chunk + 1) * size / numChunks
			program = append(program, disks[d][lo:hi]...)
		}
	}
	if len(program) == 0 {
		return nil, fmt.Errorf("sched: empty broadcast-disk program")
	}
	return &BroadcastDisk{program: program}, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// Name implements PushScheduler.
func (b *BroadcastDisk) Name() string { return "broadcast-disk" }

// Next implements PushScheduler.
//
//qos:hotpath
func (b *BroadcastDisk) Next() int {
	item := b.program[b.pos]
	b.pos = (b.pos + 1) % len(b.program)
	return item
}

// ProgramLength returns the major-cycle length in item slots (diagnostic).
func (b *BroadcastDisk) ProgramLength() int { return len(b.program) }

// SquareRootRule implements the Hameed–Vaidya online scheduler: at each slot
// broadcast the item maximising (t − lastBroadcast_i)²·P_i/L_i, which
// asymptotically spaces item i's replicas ∝ sqrt(L_i/P_i) — the optimal
// square-root-rule schedule for heterogeneous lengths.
type SquareRootRule struct {
	prob   []float64 // index 0 = rank 1
	length []float64
	last   []float64
	clock  float64
}

// NewSquareRootRule builds the scheduler over ranks 1..k of the catalog.
func NewSquareRootRule(cat *catalog.Catalog, k int) (*SquareRootRule, error) {
	if cat == nil {
		return nil, fmt.Errorf("sched: nil catalog")
	}
	if k < 1 || k > cat.D() {
		return nil, fmt.Errorf("sched: push size %d out of [1,%d]", k, cat.D())
	}
	s := &SquareRootRule{
		prob:   make([]float64, k),
		length: make([]float64, k),
		last:   make([]float64, k),
	}
	for i := 0; i < k; i++ {
		s.prob[i] = cat.Prob(i + 1)
		s.length[i] = cat.Length(i + 1)
		s.last[i] = -s.length[i] // pretend each was just broadcast once
	}
	return s, nil
}

// Name implements PushScheduler.
func (s *SquareRootRule) Name() string { return "square-root-rule" }

// Next implements PushScheduler.
//
//qos:hotpath
func (s *SquareRootRule) Next() int {
	best, bestScore := 0, math.Inf(-1)
	for i := range s.prob {
		gap := s.clock - s.last[i]
		score := gap * gap * s.prob[i] / s.length[i]
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	s.last[best] = s.clock
	s.clock += s.length[best]
	return best + 1
}

// NoPush is the pure-pull degenerate: no broadcast channel at all. The
// engine recognises it and routes every request — whatever its rank —
// through the pull queue, exactly as if the cutoff were 0. Next must never
// be consulted.
type NoPush struct{}

// Name implements PushScheduler.
func (NoPush) Name() string { return "none" }

// Next implements PushScheduler. It always panics: a server configured with
// NoPush treats the push set as empty and never asks for a push item.
func (NoPush) Next() int {
	panic("sched: Next on no-push scheduler")
}

// FlatRoundRobinPartition cycles an arbitrary list of item ranks — one
// partition of a push set split across multiple broadcast channels.
type FlatRoundRobinPartition struct {
	ranks []int
	next  int
}

// NewFlatRoundRobinPartition validates the rank list (non-empty, positive
// ranks) and returns the partition scheduler.
func NewFlatRoundRobinPartition(ranks []int) (*FlatRoundRobinPartition, error) {
	if len(ranks) == 0 {
		return nil, fmt.Errorf("sched: empty partition")
	}
	for _, r := range ranks {
		if r < 1 {
			return nil, fmt.Errorf("sched: invalid rank %d in partition", r)
		}
	}
	return &FlatRoundRobinPartition{ranks: append([]int(nil), ranks...)}, nil
}

// Name implements PushScheduler.
func (f *FlatRoundRobinPartition) Name() string { return "flat-partition" }

// Next implements PushScheduler.
//
//qos:hotpath
func (f *FlatRoundRobinPartition) Next() int {
	item := f.ranks[f.next]
	f.next = (f.next + 1) % len(f.ranks)
	return item
}

// Size returns the number of items in the partition.
func (f *FlatRoundRobinPartition) Size() int { return len(f.ranks) }
