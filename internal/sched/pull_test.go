package sched

import (
	"math"
	"testing"
	"testing/quick"

	"hybridqos/internal/clients"
	"hybridqos/internal/pullqueue"
	"hybridqos/internal/rng"
)

func rq(item int, class clients.Class, prio, arrival float64) pullqueue.Request {
	return pullqueue.Request{Item: item, Class: class, Priority: prio, Arrival: arrival}
}

func TestNewImportanceFactorValidation(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewImportanceFactor(bad); err == nil {
			t.Errorf("alpha %g accepted", bad)
		}
	}
	p, err := NewImportanceFactor(0.25)
	if err != nil || p.Alpha != 0.25 {
		t.Fatalf("valid alpha rejected: %v", err)
	}
}

func TestPolicyNamesAndTimeDependence(t *testing.T) {
	cases := []struct {
		p  PullPolicy
		td bool
	}{
		{ImportanceFactor{Alpha: 0.5}, false},
		{StretchOptimal{}, false},
		{PriorityOnly{}, false},
		{FCFS{}, false},
		{MRF{}, false},
		{RxW{}, true},
		{ClassicStretch{}, true},
		{EDF{}, false},
		{EDF{TTL: 50}, true},
	}
	seen := map[string]bool{}
	for _, c := range cases {
		name := c.p.Name()
		if name == "" || seen[name] {
			t.Errorf("policy name %q empty or duplicated", name)
		}
		seen[name] = true
		if c.p.TimeDependent() != c.td {
			t.Errorf("%s TimeDependent = %v, want %v", name, c.p.TimeDependent(), c.td)
		}
	}
}

func TestPolicyScores(t *testing.T) {
	e := &pullqueue.Entry{Item: 3, Length: 2, FirstArrival: 10}
	e.Requests = []pullqueue.Request{rq(3, 0, 3, 10), rq(3, 2, 1, 12)}
	e.SumPriority = 4

	if got := (ImportanceFactor{Alpha: 0.5}).Score(e, 20); math.Abs(got-(0.5*2.0/4+0.5*4)) > 1e-12 {
		t.Fatalf("importance-factor score %g", got)
	}
	if got := (StretchOptimal{}).Score(e, 20); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("stretch score %g, want R/L²=0.5", got)
	}
	if got := (PriorityOnly{}).Score(e, 20); got != 4 {
		t.Fatalf("priority score %g", got)
	}
	if got := (FCFS{}).Score(e, 20); got != -10 {
		t.Fatalf("fcfs score %g", got)
	}
	if got := (MRF{}).Score(e, 20); got != 2 {
		t.Fatalf("mrf score %g", got)
	}
	if got := (RxW{}).Score(e, 20); got != 2*10 {
		t.Fatalf("rxw score %g", got)
	}
	if got := (ClassicStretch{}).Score(e, 20); math.Abs(got-2*10/2.0) > 1e-12 {
		t.Fatalf("classic stretch score %g", got)
	}
}

func mustSelector(t testing.TB, p PullPolicy) Selector {
	t.Helper()
	s, err := NewSelector(p)
	if err != nil {
		t.Fatalf("NewSelector(%v): %v", p, err)
	}
	return s
}

func TestNewSelectorValidation(t *testing.T) {
	if _, err := NewSelector(nil); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := NewSelector(ImportanceFactor{Alpha: 0.5}); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
}

func TestSelectorFCFSOrder(t *testing.T) {
	s := mustSelector(t, FCFS{})
	s.Add(rq(5, 0, 1, 30), 1)
	s.Add(rq(2, 0, 1, 10), 1)
	s.Add(rq(8, 0, 1, 20), 1)
	want := []int{2, 8, 5}
	for _, w := range want {
		if got := s.ExtractBest(100).Item; got != w {
			t.Fatalf("FCFS order got %d want %d", got, w)
		}
	}
	if s.ExtractBest(100) != nil {
		t.Fatal("empty selector returned entry")
	}
}

func TestSelectorEDFNoTTLMatchesFCFS(t *testing.T) {
	// With TTL <= 0 the EDF score is exactly the FCFS key, so the two
	// selectors must extract identical sequences.
	edf := mustSelector(t, EDF{})
	fcfs := mustSelector(t, FCFS{})
	r := rng.New(5)
	now := 0.0
	for i := 0; i < 200; i++ {
		now += r.Float64()
		q := rq(r.Intn(30)+1, clients.Class(r.Intn(3)), float64(r.Intn(3)+1), now)
		l := float64(r.Intn(5) + 1)
		edf.Add(q, l)
		fcfs.Add(q, l)
	}
	for fcfs.Items() > 0 {
		fe, ee := fcfs.ExtractBest(now), edf.ExtractBest(now)
		if ee == nil || fe.Item != ee.Item {
			t.Fatalf("EDF(no TTL) diverged from FCFS")
		}
	}
	if edf.Items() != 0 {
		t.Fatal("EDF selector not drained")
	}
}

func TestSelectorEDFDeadlineOrder(t *testing.T) {
	s := mustSelector(t, EDF{TTL: 10})
	s.Add(rq(5, 0, 1, 8), 1)  // deadline 18
	s.Add(rq(2, 0, 1, 4), 1)  // deadline 14
	s.Add(rq(8, 0, 1, 12), 1) // deadline 22
	// At t=13 no deadline has passed: earliest deadline first.
	if got := s.ExtractBest(13).Item; got != 2 {
		t.Fatalf("EDF picked %d, want earliest-deadline 2", got)
	}
	// At t=20 item 5's deadline (18) has passed: it scores -Inf and the
	// live deadline (item 8, 22) is served first.
	if got := s.ExtractBest(20).Item; got != 8 {
		t.Fatalf("EDF at t=20 picked %d, want live-deadline 8", got)
	}
	if got := s.ExtractBest(20).Item; got != 5 {
		t.Fatalf("EDF picked %d, want expired 5 last", got)
	}
}

func TestSelectorRxWAging(t *testing.T) {
	s := mustSelector(t, RxW{})
	// Item 1: 3 requests arriving at t=10; item 2: 1 request at t=0.
	for i := 0; i < 3; i++ {
		s.Add(rq(1, 0, 1, 10), 1)
	}
	s.Add(rq(2, 0, 1, 0), 1)
	// At t=12: item1 RxW = 3·2=6 > item2 1·12=12? No: 6 < 12 → item 2 first.
	if got := s.ExtractBest(12).Item; got != 2 {
		t.Fatalf("RxW at t=12 picked %d, want 2", got)
	}
	s.Add(rq(2, 0, 1, 13), 1)
	// At t=14: item1 = 3·4=12 > item2 = 1·1=1 → item 1.
	if got := s.ExtractBest(14).Item; got != 1 {
		t.Fatalf("RxW at t=14 picked %d, want 1", got)
	}
}

func TestSelectorMRF(t *testing.T) {
	s := mustSelector(t, MRF{})
	s.Add(rq(1, 0, 1, 0), 1)
	s.Add(rq(1, 0, 1, 1), 1)
	s.Add(rq(2, 0, 5, 2), 1)
	if got := s.ExtractBest(5).Item; got != 1 {
		t.Fatalf("MRF picked %d, want most-requested 1", got)
	}
}

func TestSelectorTieBreakLowestRank(t *testing.T) {
	s := mustSelector(t, MRF{})
	s.Add(rq(7, 0, 1, 0), 1)
	s.Add(rq(4, 0, 1, 0), 1)
	if got := s.ExtractBest(1).Item; got != 4 {
		t.Fatalf("tie-break picked %d, want 4", got)
	}
}

func TestSelectorRemove(t *testing.T) {
	s := mustSelector(t, RxW{})
	s.Add(rq(1, 0, 1, 0), 1)
	s.Add(rq(2, 0, 1, 0), 1)
	s.Add(rq(2, 1, 2, 1), 1)
	if e := s.Remove(2); e == nil || e.NumRequests() != 2 {
		t.Fatal("Remove(2) failed")
	}
	if s.Remove(2) != nil {
		t.Fatal("double remove returned entry")
	}
	if s.Items() != 1 || s.Requests() != 1 {
		t.Fatalf("Items=%d Requests=%d", s.Items(), s.Requests())
	}
}

func TestHeapSelectorMatchesScanForImportanceFactor(t *testing.T) {
	// The heap fast path must agree with a scan selector evaluating the
	// same policy.
	r := rng.New(17)
	check := func(alphaRaw uint8, ops []uint16) bool {
		alpha := float64(alphaRaw%101) / 100
		pol := ImportanceFactor{Alpha: alpha}
		fast := mustSelector(t, pol)
		slow, err := pullqueue.NewLinearFunc(pol.Score)
		if err != nil {
			t.Fatal(err)
		}
		now := 0.0
		for _, op := range ops {
			now += r.Float64()
			if op%5 == 4 && fast.Items() > 0 {
				fe, se := fast.ExtractBest(now), slow.ExtractMax(now)
				if fe.Item != se.Item {
					return false
				}
				continue
			}
			q := rq(int(op%30)+1, clients.Class(op%3), float64(op%3)+1, now)
			l := float64(op%5) + 1
			fast.Add(q, l)
			slow.Add(q, l)
		}
		for fast.Items() > 0 {
			fe, se := fast.ExtractBest(now), slow.ExtractMax(now)
			if fe == nil || se == nil || fe.Item != se.Item {
				return false
			}
		}
		return slow.Items() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScanSelectorExtract(b *testing.B) {
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := mustSelector(b, RxW{})
		for j := 0; j < 256; j++ {
			s.Add(rq(r.Intn(64)+1, clients.Class(r.Intn(3)), float64(r.Intn(3)+1), float64(j)), float64(r.Intn(5)+1))
		}
		for s.Items() > 0 {
			s.ExtractBest(300)
		}
	}
}

func TestHeapSelectorRemoveAndRequests(t *testing.T) {
	s := mustSelector(t, ImportanceFactor{Alpha: 0.5})
	s.Add(rq(3, 0, 2, 0), 2)
	s.Add(rq(3, 1, 1, 1), 2)
	s.Add(rq(7, 2, 1, 2), 1)
	if s.Requests() != 3 || s.Items() != 2 {
		t.Fatalf("Requests=%d Items=%d", s.Requests(), s.Items())
	}
	e := s.Remove(3)
	if e == nil || e.NumRequests() != 2 {
		t.Fatal("heap selector Remove failed")
	}
	if s.Remove(3) != nil {
		t.Fatal("double remove returned entry")
	}
	if s.Requests() != 1 {
		t.Fatalf("Requests after remove = %d", s.Requests())
	}
}
