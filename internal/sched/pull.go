package sched

import (
	"fmt"
	"math"

	"hybridqos/internal/pullqueue"
)

// PullPolicy selects which queued pull item to transmit next. now is the
// current simulated time (RxW-style policies age entries).
type PullPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Score returns the selection score of an entry; the highest score wins,
	// ties broken by lowest item rank.
	Score(e *pullqueue.Entry, now float64) float64
	// TimeDependent reports whether scores change as time passes with no
	// queue mutation (true for RxW-style ageing policies). Time-independent
	// monotone policies admit heap-backed selection.
	TimeDependent() bool
}

// ImportanceFactor is the paper's policy: γ_i = α·S_i + (1−α)·Q_i (Eq. 1).
type ImportanceFactor struct {
	// Alpha is the stretch/priority mixing fraction in [0,1].
	Alpha float64
}

// NewImportanceFactor validates α and returns the paper's policy.
func NewImportanceFactor(alpha float64) (ImportanceFactor, error) {
	if alpha < 0 || alpha > 1 || math.IsNaN(alpha) {
		return ImportanceFactor{}, fmt.Errorf("sched: alpha %g outside [0,1]", alpha)
	}
	return ImportanceFactor{Alpha: alpha}, nil
}

// Name implements PullPolicy.
func (p ImportanceFactor) Name() string { return fmt.Sprintf("importance-factor(α=%.2f)", p.Alpha) }

// Score implements PullPolicy.
func (p ImportanceFactor) Score(e *pullqueue.Entry, _ float64) float64 { return e.Gamma(p.Alpha) }

// TimeDependent implements PullPolicy.
func (p ImportanceFactor) TimeDependent() bool { return false }

// StretchOptimal is the α = 1 special case (the authors' WMAN'04 scheduler):
// max-request min-service-time first, S_i = R_i/L_i².
type StretchOptimal struct{}

// Name implements PullPolicy.
func (StretchOptimal) Name() string { return "stretch-optimal" }

// Score implements PullPolicy.
func (StretchOptimal) Score(e *pullqueue.Entry, _ float64) float64 { return e.Stretch() }

// TimeDependent implements PullPolicy.
func (StretchOptimal) TimeDependent() bool { return false }

// PriorityOnly is the α = 0 special case: highest summed client priority
// first.
type PriorityOnly struct{}

// Name implements PullPolicy.
func (PriorityOnly) Name() string { return "priority-only" }

// Score implements PullPolicy.
func (PriorityOnly) Score(e *pullqueue.Entry, _ float64) float64 { return e.SumPriority }

// TimeDependent implements PullPolicy.
func (PriorityOnly) TimeDependent() bool { return false }

// FCFS serves the item whose oldest pending request arrived first.
type FCFS struct{}

// Name implements PullPolicy.
func (FCFS) Name() string { return "fcfs" }

// Score implements PullPolicy.
func (FCFS) Score(e *pullqueue.Entry, _ float64) float64 { return -e.FirstArrival }

// TimeDependent implements PullPolicy.
func (FCFS) TimeDependent() bool { return false }

// MRF is most-requests-first.
type MRF struct{}

// Name implements PullPolicy.
func (MRF) Name() string { return "mrf" }

// Score implements PullPolicy.
func (MRF) Score(e *pullqueue.Entry, _ float64) float64 { return float64(e.NumRequests()) }

// TimeDependent implements PullPolicy.
func (MRF) TimeDependent() bool { return false }

// RxW is Aksoy–Franklin's on-demand broadcast policy: requests × wait of the
// oldest pending request.
type RxW struct{}

// Name implements PullPolicy.
func (RxW) Name() string { return "rxw" }

// Score implements PullPolicy.
func (RxW) Score(e *pullqueue.Entry, now float64) float64 {
	return float64(e.NumRequests()) * (now - e.FirstArrival)
}

// TimeDependent implements PullPolicy.
func (RxW) TimeDependent() bool { return true }

// ClassicStretch is the traditional stretch metric R·(now−firstArrival)/L —
// ageing-normalised, unlike the paper's S = R/L². Included as a baseline.
type ClassicStretch struct{}

// Name implements PullPolicy.
func (ClassicStretch) Name() string { return "classic-stretch" }

// Score implements PullPolicy.
func (ClassicStretch) Score(e *pullqueue.Entry, now float64) float64 {
	return float64(e.NumRequests()) * (now - e.FirstArrival) / e.Length
}

// TimeDependent implements PullPolicy.
func (ClassicStretch) TimeDependent() bool { return true }

// Selector owns the pending pull entries and extracts the best entry under a
// policy.
type Selector interface {
	// Add enqueues a request (length fixes the item's transmission time on
	// first enqueue).
	Add(req pullqueue.Request, length float64)
	// ExtractBest removes and returns the best entry at time now, nil when
	// empty.
	ExtractBest(now float64) *pullqueue.Entry
	// Remove discards a specific item's entry (blocked transmissions),
	// returning it or nil.
	Remove(item int) *pullqueue.Entry
	// Items is the number of distinct queued items.
	Items() int
	// Requests is the total number of pending requests.
	Requests() int
}

// NewSelector returns the fastest selector able to realise the policy: a
// γ-heap for the importance-factor family, a scan selector otherwise.
func NewSelector(p PullPolicy) Selector {
	switch pol := p.(type) {
	case ImportanceFactor:
		return &heapSelector{h: pullqueue.NewHeap(pol.Alpha)}
	case StretchOptimal:
		return &heapSelector{h: pullqueue.NewHeap(1)}
	case PriorityOnly:
		return &heapSelector{h: pullqueue.NewHeap(0)}
	default:
		return NewScanSelector(p)
	}
}

// heapSelector adapts pullqueue.Heap to the Selector interface.
type heapSelector struct {
	h *pullqueue.Heap
}

func (s *heapSelector) Add(req pullqueue.Request, length float64) { s.h.Add(req, length) }
func (s *heapSelector) ExtractBest(_ float64) *pullqueue.Entry    { return s.h.ExtractMax() }
func (s *heapSelector) Remove(item int) *pullqueue.Entry          { return s.h.Remove(item) }
func (s *heapSelector) Items() int                                { return s.h.Items() }
func (s *heapSelector) Requests() int                             { return s.h.Requests() }

// ScanSelector evaluates an arbitrary (possibly time-dependent) policy by
// linear scan. O(n) extraction, but n ≤ D−K which is small in the paper's
// regime.
type ScanSelector struct {
	policy   PullPolicy
	entries  []*pullqueue.Entry
	byItem   map[int]*pullqueue.Entry
	requests int
}

// NewScanSelector returns a scan-based selector for the policy.
func NewScanSelector(p PullPolicy) *ScanSelector {
	if p == nil {
		panic("sched: nil pull policy")
	}
	return &ScanSelector{policy: p, byItem: make(map[int]*pullqueue.Entry)}
}

// Add implements Selector.
func (s *ScanSelector) Add(req pullqueue.Request, length float64) {
	if req.Item < 1 {
		panic(fmt.Sprintf("sched: invalid item rank %d", req.Item))
	}
	if length <= 0 || math.IsNaN(length) {
		panic(fmt.Sprintf("sched: invalid length %g", length))
	}
	e := s.byItem[req.Item]
	if e == nil {
		e = &pullqueue.Entry{Item: req.Item, Length: length, FirstArrival: req.Arrival}
		s.byItem[req.Item] = e
		s.entries = append(s.entries, e)
	}
	e.Requests = append(e.Requests, req)
	e.SumPriority += req.Priority
	if req.Arrival < e.FirstArrival {
		e.FirstArrival = req.Arrival
	}
	s.requests++
}

// ExtractBest implements Selector.
func (s *ScanSelector) ExtractBest(now float64) *pullqueue.Entry {
	best := -1
	var bestScore float64
	for i, e := range s.entries {
		score := s.policy.Score(e, now)
		if best == -1 || score > bestScore || (score == bestScore && e.Item < s.entries[best].Item) {
			best, bestScore = i, score
		}
	}
	if best == -1 {
		return nil
	}
	return s.removeAt(best)
}

// Remove implements Selector.
func (s *ScanSelector) Remove(item int) *pullqueue.Entry {
	for i, e := range s.entries {
		if e.Item == item {
			return s.removeAt(i)
		}
	}
	return nil
}

func (s *ScanSelector) removeAt(i int) *pullqueue.Entry {
	e := s.entries[i]
	s.entries[i] = s.entries[len(s.entries)-1]
	s.entries[len(s.entries)-1] = nil
	s.entries = s.entries[:len(s.entries)-1]
	delete(s.byItem, e.Item)
	s.requests -= len(e.Requests)
	return e
}

// Items implements Selector.
func (s *ScanSelector) Items() int { return len(s.entries) }

// Requests implements Selector.
func (s *ScanSelector) Requests() int { return s.requests }

var (
	_ Selector = (*heapSelector)(nil)
	_ Selector = (*ScanSelector)(nil)
)
