package sched

import (
	"fmt"
	"math"

	"hybridqos/internal/pullqueue"
)

// PullPolicy selects which queued pull item to transmit next. now is the
// current simulated time (RxW-style policies age entries).
//
// Scoring contract: the highest score wins, ties broken by lowest item rank.
// Policies whose TimeDependent() is false must ignore now and must never
// return a lower score for an entry after a request is added to it — that
// monotonicity is what lets the selector back them with a sift-up-only heap.
// All scoring is expressed through pullqueue.Entry's canonical derived
// quantities (Stretch, Gamma, SumPriority, FirstArrival) so policy scores
// and queue ordering can never drift apart.
type PullPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Score returns the selection score of an entry; the highest score wins,
	// ties broken by lowest item rank.
	Score(e *pullqueue.Entry, now float64) float64
	// TimeDependent reports whether scores change as time passes with no
	// queue mutation (true for RxW-style ageing policies). Time-independent
	// monotone policies admit heap-backed selection.
	TimeDependent() bool
}

// ImportanceFactor is the paper's policy: γ_i = α·S_i + (1−α)·Q_i (Eq. 1).
type ImportanceFactor struct {
	// Alpha is the stretch/priority mixing fraction in [0,1].
	Alpha float64
}

// NewImportanceFactor validates α and returns the paper's policy. The error
// is pullqueue's typed *AlphaError, so callers can surface it unchanged.
func NewImportanceFactor(alpha float64) (ImportanceFactor, error) {
	if err := pullqueue.ValidateAlpha(alpha); err != nil {
		return ImportanceFactor{}, err
	}
	return ImportanceFactor{Alpha: alpha}, nil
}

// Name implements PullPolicy.
func (p ImportanceFactor) Name() string { return fmt.Sprintf("importance-factor(α=%.2f)", p.Alpha) }

// Score implements PullPolicy.
//
//qos:hotpath
func (p ImportanceFactor) Score(e *pullqueue.Entry, _ float64) float64 { return e.Gamma(p.Alpha) }

// TimeDependent implements PullPolicy.
func (p ImportanceFactor) TimeDependent() bool { return false }

// StretchOptimal is the α = 1 special case (the authors' WMAN'04 scheduler):
// max-request min-service-time first, S_i = R_i/L_i².
type StretchOptimal struct{}

// Name implements PullPolicy.
func (StretchOptimal) Name() string { return "stretch-optimal" }

// Score implements PullPolicy.
//
//qos:hotpath
func (StretchOptimal) Score(e *pullqueue.Entry, _ float64) float64 { return e.Stretch() }

// TimeDependent implements PullPolicy.
func (StretchOptimal) TimeDependent() bool { return false }

// PriorityOnly is the α = 0 special case: highest summed client priority
// first.
type PriorityOnly struct{}

// Name implements PullPolicy.
func (PriorityOnly) Name() string { return "priority-only" }

// Score implements PullPolicy.
//
//qos:hotpath
func (PriorityOnly) Score(e *pullqueue.Entry, _ float64) float64 { return e.SumPriority }

// TimeDependent implements PullPolicy.
func (PriorityOnly) TimeDependent() bool { return false }

// FCFS serves the item whose oldest pending request arrived first.
type FCFS struct{}

// Name implements PullPolicy.
func (FCFS) Name() string { return "fcfs" }

// Score implements PullPolicy.
//
//qos:hotpath
func (FCFS) Score(e *pullqueue.Entry, _ float64) float64 { return -e.FirstArrival }

// TimeDependent implements PullPolicy.
func (FCFS) TimeDependent() bool { return false }

// MRF is most-requests-first.
type MRF struct{}

// Name implements PullPolicy.
func (MRF) Name() string { return "mrf" }

// Score implements PullPolicy.
//
//qos:hotpath
func (MRF) Score(e *pullqueue.Entry, _ float64) float64 { return float64(e.NumRequests()) }

// TimeDependent implements PullPolicy.
func (MRF) TimeDependent() bool { return false }

// RxW is Aksoy–Franklin's on-demand broadcast policy: requests × wait of the
// oldest pending request.
type RxW struct{}

// Name implements PullPolicy.
func (RxW) Name() string { return "rxw" }

// Score implements PullPolicy.
//
//qos:hotpath
func (RxW) Score(e *pullqueue.Entry, now float64) float64 {
	return float64(e.NumRequests()) * (now - e.FirstArrival)
}

// TimeDependent implements PullPolicy.
func (RxW) TimeDependent() bool { return true }

// ClassicStretch is the traditional stretch metric R·(now−firstArrival)/L —
// ageing-normalised, unlike the paper's S = R/L². Included as a baseline.
type ClassicStretch struct{}

// Name implements PullPolicy.
func (ClassicStretch) Name() string { return "classic-stretch" }

// Score implements PullPolicy.
//
//qos:hotpath
func (ClassicStretch) Score(e *pullqueue.Entry, now float64) float64 {
	return float64(e.NumRequests()) * (now - e.FirstArrival) / e.Length
}

// TimeDependent implements PullPolicy.
func (ClassicStretch) TimeDependent() bool { return true }

// EDF is earliest-deadline-first over request TTLs: an entry's deadline is
// FirstArrival + TTL, and the entry with the earliest deadline is served
// first. Entries already past their deadline score −Inf — they are about to
// expire anyway, so live deadlines are served ahead of dead ones. With
// TTL ≤ 0 there are no deadlines and EDF degenerates to exact FCFS order
// (earliest FirstArrival first, never expired).
type EDF struct {
	// TTL is the request time-to-live defining each deadline; ≤ 0 means no
	// deadline (pure FCFS behaviour).
	TTL float64
}

// Name implements PullPolicy.
func (p EDF) Name() string {
	if p.TTL <= 0 {
		return "edf"
	}
	return fmt.Sprintf("edf(ttl=%g)", p.TTL)
}

// Score implements PullPolicy.
//
//qos:hotpath
func (p EDF) Score(e *pullqueue.Entry, now float64) float64 {
	if p.TTL <= 0 {
		return -e.FirstArrival
	}
	deadline := e.FirstArrival + p.TTL
	if now > deadline {
		return math.Inf(-1)
	}
	return -deadline
}

// TimeDependent implements PullPolicy. With a finite TTL the expiry
// demotion depends on now; without one the score is a pure FCFS key.
func (p EDF) TimeDependent() bool { return p.TTL > 0 }

// Selector owns the pending pull entries and extracts the best entry under a
// policy.
type Selector interface {
	// Add enqueues a request (length fixes the item's transmission time on
	// first enqueue).
	Add(req pullqueue.Request, length float64)
	// ExtractBest removes and returns the best entry at time now, nil when
	// empty.
	ExtractBest(now float64) *pullqueue.Entry
	// Remove discards a specific item's entry (blocked transmissions),
	// returning it or nil.
	Remove(item int) *pullqueue.Entry
	// Items is the number of distinct queued items.
	Items() int
	// Requests is the total number of pending requests.
	Requests() int
	// Recycle hands an entry obtained from ExtractBest or Remove back for
	// reuse by later Adds. The caller must not retain the entry afterwards;
	// nil, enqueued and already-recycled entries are ignored.
	Recycle(e *pullqueue.Entry)
	// Drain removes every entry and returns them sorted by item rank, for
	// whole-backlog operations (cross-cell client mobility). Callers re-Add
	// kept requests and Recycle each drained entry.
	Drain() []*pullqueue.Entry
	// Entry returns the queued entry for an item rank without removing it,
	// or nil — read-only span-provenance lookups; callers must not mutate
	// the entry.
	Entry(item int) *pullqueue.Entry
	// Peek returns the best entry at time now without removing it, or nil.
	// After an ExtractBest it exposes the runner-up of that decision.
	Peek(now float64) *pullqueue.Entry
	// Score returns the policy's selection score for an entry at time now —
	// the same quantity extraction order is decided by, surfaced for
	// decision provenance.
	Score(e *pullqueue.Entry, now float64) float64
}

// NewSelector returns the fastest selector able to realise the policy: a
// heap over the policy's score for time-independent policies, a linear scan
// (re-scoring at every extraction) for time-dependent ones. Both back onto
// the pullqueue implementations, so selection logic lives in exactly one
// place.
func NewSelector(p PullPolicy) (Selector, error) {
	if p == nil {
		return nil, fmt.Errorf("sched: nil pull policy")
	}
	var (
		q   pullqueue.Queue
		err error
	)
	if p.TimeDependent() {
		q, err = pullqueue.NewLinearFunc(p.Score)
	} else {
		q, err = pullqueue.NewHeapFunc(p.Score)
	}
	if err != nil {
		return nil, err
	}
	return &queueSelector{q: q, policy: p}, nil
}

// queueSelector adapts a pullqueue.Queue to the Selector interface.
type queueSelector struct {
	q      pullqueue.Queue
	policy PullPolicy
}

//qos:hotpath
func (s *queueSelector) Add(req pullqueue.Request, length float64) { s.q.Add(req, length) }

//qos:hotpath
func (s *queueSelector) ExtractBest(now float64) *pullqueue.Entry { return s.q.ExtractMax(now) }
func (s *queueSelector) Remove(item int) *pullqueue.Entry         { return s.q.Remove(item) }
func (s *queueSelector) Items() int                               { return s.q.Items() }
func (s *queueSelector) Requests() int                            { return s.q.Requests() }

//qos:hotpath
func (s *queueSelector) Recycle(e *pullqueue.Entry) { s.q.Recycle(e) }
func (s *queueSelector) Drain() []*pullqueue.Entry  { return s.q.Drain() }

func (s *queueSelector) Entry(item int) *pullqueue.Entry { return s.q.Entry(item) }
func (s *queueSelector) Peek(now float64) *pullqueue.Entry {
	return s.q.Peek(now)
}
func (s *queueSelector) Score(e *pullqueue.Entry, now float64) float64 {
	return s.policy.Score(e, now)
}

var _ Selector = (*queueSelector)(nil)
