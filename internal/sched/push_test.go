package sched

import (
	"math"
	"testing"

	"hybridqos/internal/catalog"
)

func testCat(t *testing.T, d int, theta float64) *catalog.Catalog {
	t.Helper()
	cfg := catalog.Config{D: d, Theta: theta, MinLen: 1, MaxLen: 5, Seed: 42}
	c, err := catalog.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFlatRoundRobinCycles(t *testing.T) {
	f := NewFlatRoundRobin(3)
	want := []int{1, 2, 3, 1, 2, 3, 1}
	for i, w := range want {
		if got := f.Next(); got != w {
			t.Fatalf("step %d: got %d want %d", i, got, w)
		}
	}
	if f.Name() != "flat" {
		t.Fatalf("Name = %q", f.Name())
	}
}

func TestFlatSingleItem(t *testing.T) {
	f := NewFlatRoundRobin(1)
	for i := 0; i < 5; i++ {
		if got := f.Next(); got != 1 {
			t.Fatalf("K=1 Next = %d", got)
		}
	}
}

func TestFlatEmptyPanics(t *testing.T) {
	f := NewFlatRoundRobin(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Next on K=0 did not panic")
		}
	}()
	f.Next()
}

func TestFlatNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFlatRoundRobin(-1) did not panic")
		}
	}()
	NewFlatRoundRobin(-1)
}

func TestFlatEveryItemOncePerCycle(t *testing.T) {
	const k = 17
	f := NewFlatRoundRobin(k)
	seen := map[int]int{}
	for i := 0; i < k; i++ {
		seen[f.Next()]++
	}
	for rank := 1; rank <= k; rank++ {
		if seen[rank] != 1 {
			t.Fatalf("rank %d appeared %d times in one cycle", rank, seen[rank])
		}
	}
}

func TestBroadcastDiskErrors(t *testing.T) {
	cat := testCat(t, 20, 0.8)
	if _, err := NewBroadcastDisk(nil, 5, 2); err == nil {
		t.Fatal("nil catalog accepted")
	}
	if _, err := NewBroadcastDisk(cat, 0, 2); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewBroadcastDisk(cat, 21, 2); err == nil {
		t.Fatal("k>D accepted")
	}
	if _, err := NewBroadcastDisk(cat, 5, 0); err == nil {
		t.Fatal("numDisks=0 accepted")
	}
}

func TestBroadcastDiskCoversAllItems(t *testing.T) {
	cat := testCat(t, 30, 1.0)
	bd, err := NewBroadcastDisk(cat, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < bd.ProgramLength(); i++ {
		item := bd.Next()
		if item < 1 || item > 12 {
			t.Fatalf("item %d outside push set", item)
		}
		seen[item] = true
	}
	for rank := 1; rank <= 12; rank++ {
		if !seen[rank] {
			t.Fatalf("rank %d never broadcast in a major cycle", rank)
		}
	}
}

func TestBroadcastDiskHotterMoreFrequent(t *testing.T) {
	cat := testCat(t, 30, 1.0)
	bd, err := NewBroadcastDisk(cat, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for i := 0; i < bd.ProgramLength(); i++ {
		counts[bd.Next()]++
	}
	// Rank 1 is on the hottest disk (freq 3), rank 12 on the coldest
	// (freq 1): rank 1 must appear strictly more often per major cycle.
	if counts[1] <= counts[12] {
		t.Fatalf("hot item count %d not above cold item count %d", counts[1], counts[12])
	}
}

func TestBroadcastDiskMoreDisksThanItems(t *testing.T) {
	cat := testCat(t, 10, 0.5)
	bd, err := NewBroadcastDisk(cat, 2, 5) // clamps to 2 disks
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < bd.ProgramLength(); i++ {
		seen[bd.Next()] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("items missing from program: %v", seen)
	}
}

func TestBroadcastDiskSingleDiskIsFlatLike(t *testing.T) {
	cat := testCat(t, 10, 0.5)
	bd, err := NewBroadcastDisk(cat, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bd.ProgramLength() != 4 {
		t.Fatalf("single-disk program length %d, want 4", bd.ProgramLength())
	}
	for want := 1; want <= 4; want++ {
		if got := bd.Next(); got != want {
			t.Fatalf("single-disk order broken: got %d want %d", got, want)
		}
	}
}

func TestSquareRootRuleErrors(t *testing.T) {
	cat := testCat(t, 10, 0.5)
	if _, err := NewSquareRootRule(nil, 3); err == nil {
		t.Fatal("nil catalog accepted")
	}
	if _, err := NewSquareRootRule(cat, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewSquareRootRule(cat, 11); err == nil {
		t.Fatal("k>D accepted")
	}
}

func TestSquareRootRuleBroadcastsEverything(t *testing.T) {
	cat := testCat(t, 40, 1.0)
	s, err := NewSquareRootRule(cat, 20)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for i := 0; i < 2000; i++ {
		item := s.Next()
		if item < 1 || item > 20 {
			t.Fatalf("item %d outside push set", item)
		}
		seen[item]++
	}
	for rank := 1; rank <= 20; rank++ {
		if seen[rank] == 0 {
			t.Fatalf("rank %d starved by square-root rule", rank)
		}
	}
}

func TestSquareRootRuleFrequencyProportion(t *testing.T) {
	// Uniform lengths: frequency of item i should scale ≈ sqrt(P_i).
	cfg := catalog.Config{D: 10, Theta: 1.0, MinLen: 2, MaxLen: 2, Seed: 1}
	cat, err := catalog.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSquareRootRule(cat, 10)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, 11)
	const slots = 20000
	for i := 0; i < slots; i++ {
		counts[s.Next()]++
	}
	// Compare frequency ratios of rank 1 vs rank 9 against sqrt(P1/P9);
	// rank 10 avoided in case of boundary effects.
	gotRatio := counts[1] / counts[9]
	wantRatio := math.Sqrt(cat.Prob(1) / cat.Prob(9))
	if math.Abs(gotRatio-wantRatio)/wantRatio > 0.25 {
		t.Fatalf("frequency ratio %g, want ~sqrt ratio %g", gotRatio, wantRatio)
	}
}

func TestSquareRootRulePrefersShortItems(t *testing.T) {
	// Equal probabilities, lengths {1,4,4}: spacing ∝ sqrt(L) so the short
	// item must be broadcast more often than either long one. (Two items
	// alone cannot test this — the greedy rule degenerates to alternation.)
	cat, err := catalog.FromLengths([]float64{1, 4, 4}, 0) // θ=0: equal probs
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSquareRootRule(cat, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		counts[s.Next()]++
	}
	if counts[1] <= counts[2] || counts[1] <= counts[3] {
		t.Fatalf("short item broadcast %d times vs long %d/%d", counts[1], counts[2], counts[3])
	}
}

func TestFlatRoundRobinPartition(t *testing.T) {
	if _, err := NewFlatRoundRobinPartition(nil); err == nil {
		t.Fatal("empty partition accepted")
	}
	if _, err := NewFlatRoundRobinPartition([]int{3, 0}); err == nil {
		t.Fatal("invalid rank accepted")
	}
	p, err := NewFlatRoundRobinPartition([]int{2, 5, 8})
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 3 || p.Name() == "" {
		t.Fatalf("Size=%d Name=%q", p.Size(), p.Name())
	}
	want := []int{2, 5, 8, 2, 5, 8, 2}
	for i, w := range want {
		if got := p.Next(); got != w {
			t.Fatalf("step %d: got %d want %d", i, got, w)
		}
	}
	// The source slice must have been copied.
	ranks := []int{1, 2}
	p2, _ := NewFlatRoundRobinPartition(ranks)
	ranks[0] = 99
	if got := p2.Next(); got != 1 {
		t.Fatalf("partition aliased caller slice: got %d", got)
	}
}

func TestPushSchedulerNames(t *testing.T) {
	cat := testCat(t, 20, 0.8)
	bd, err := NewBroadcastDisk(cat, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	srr, err := NewSquareRootRule(cat, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []PushScheduler{bd, srr, NewFlatRoundRobin(5)} {
		if s.Name() == "" {
			t.Fatal("empty scheduler name")
		}
	}
}
