package pullqueue

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"hybridqos/internal/clients"
	"hybridqos/internal/rng"
)

func req(item int, class clients.Class, prio, arrival float64) Request {
	return Request{Item: item, Class: class, Priority: prio, Arrival: arrival}
}

func mustHeap(t testing.TB, alpha float64) *Heap {
	t.Helper()
	h, err := NewHeap(alpha)
	if err != nil {
		t.Fatalf("NewHeap(%g): %v", alpha, err)
	}
	return h
}

func mustLinear(t testing.TB, alpha float64) *Linear {
	t.Helper()
	l, err := NewLinear(alpha)
	if err != nil {
		t.Fatalf("NewLinear(%g): %v", alpha, err)
	}
	return l
}

func TestEntryDerivedQuantities(t *testing.T) {
	h := mustHeap(t, 0.5)
	h.Add(req(7, 1, 2, 10), 4)
	h.Add(req(7, 0, 3, 12), 4)
	h.Add(req(7, 2, 1, 8), 4)
	e := h.Entry(7)
	if e == nil {
		t.Fatal("entry missing")
	}
	if e.NumRequests() != 3 {
		t.Fatalf("R = %d", e.NumRequests())
	}
	if got := e.Stretch(); math.Abs(got-3.0/16) > 1e-12 {
		t.Fatalf("Stretch = %g, want 3/16", got)
	}
	if e.SumPriority != 6 {
		t.Fatalf("Q = %g", e.SumPriority)
	}
	if e.FirstArrival != 8 {
		t.Fatalf("FirstArrival = %g", e.FirstArrival)
	}
	if e.HighestClass() != 0 {
		t.Fatalf("HighestClass = %v", e.HighestClass())
	}
	// γ = α·S + (1-α)·Q = 0.5·(3/16) + 0.5·6
	want := 0.5*3.0/16 + 0.5*6
	if got := e.Gamma(0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Gamma = %g, want %g", got, want)
	}
}

func TestHighestClassEmptyPanics(t *testing.T) {
	e := &Entry{Item: 1, Length: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("HighestClass on empty entry did not panic")
		}
	}()
	e.HighestClass()
}

func TestAlphaExtremes(t *testing.T) {
	// α=1: pure stretch — many small requests beat one high-priority one.
	h := mustHeap(t, 1)
	h.Add(req(1, 0, 100, 0), 1) // S=1, Q=100
	for i := 0; i < 5; i++ {
		h.Add(req(2, 2, 1, 0), 1) // S=5, Q=5
	}
	if got := h.ExtractMax(0).Item; got != 2 {
		t.Fatalf("alpha=1 extracted item %d, want stretch-max 2", got)
	}

	// α=0: pure priority — the high-priority item wins.
	h0 := mustHeap(t, 0)
	h0.Add(req(1, 0, 100, 0), 1)
	for i := 0; i < 5; i++ {
		h0.Add(req(2, 2, 1, 0), 1)
	}
	if got := h0.ExtractMax(0).Item; got != 1 {
		t.Fatalf("alpha=0 extracted item %d, want priority-max 1", got)
	}
}

func TestLongItemsPenalizedByStretch(t *testing.T) {
	h := mustHeap(t, 1)
	h.Add(req(1, 0, 1, 0), 5) // S = 1/25
	h.Add(req(2, 0, 1, 0), 1) // S = 1
	if got := h.ExtractMax(0).Item; got != 2 {
		t.Fatalf("stretch should prefer the short item; got %d", got)
	}
}

func TestTieBreakLowestRank(t *testing.T) {
	for _, mk := range []func() Queue{
		func() Queue { return mustHeap(t, 0.5) },
		func() Queue { return mustLinear(t, 0.5) },
	} {
		q := mk()
		q.Add(req(9, 0, 2, 0), 2)
		q.Add(req(3, 0, 2, 0), 2)
		q.Add(req(6, 0, 2, 0), 2)
		if got := q.ExtractMax(0).Item; got != 3 {
			t.Fatalf("tie-break extracted %d, want 3", got)
		}
	}
}

func TestExtractEmptyReturnsNil(t *testing.T) {
	if mustHeap(t, 0.5).ExtractMax(0) != nil || mustLinear(t, 0.5).ExtractMax(0) != nil {
		t.Fatal("ExtractMax on empty queue != nil")
	}
	if mustHeap(t, 0.5).Peek(0) != nil || mustLinear(t, 0.5).Peek(0) != nil {
		t.Fatal("Peek on empty queue != nil")
	}
}

func TestCountsTrackAddsAndExtracts(t *testing.T) {
	h := mustHeap(t, 0.5)
	h.Add(req(1, 0, 3, 0), 2)
	h.Add(req(1, 1, 2, 1), 2)
	h.Add(req(2, 2, 1, 2), 3)
	if h.Items() != 2 || h.Requests() != 3 {
		t.Fatalf("Items=%d Requests=%d", h.Items(), h.Requests())
	}
	e := h.ExtractMax(0)
	if h.Items() != 1 || h.Requests() != 3-len(e.Requests) {
		t.Fatalf("after extract: Items=%d Requests=%d", h.Items(), h.Requests())
	}
	h.ExtractMax(0)
	if h.Items() != 0 || h.Requests() != 0 {
		t.Fatalf("after drain: Items=%d Requests=%d", h.Items(), h.Requests())
	}
}

func TestReAddAfterExtract(t *testing.T) {
	h := mustHeap(t, 0.5)
	h.Add(req(4, 0, 1, 0), 2)
	h.ExtractMax(0)
	h.Add(req(4, 1, 2, 5), 2)
	e := h.Entry(4)
	if e == nil || e.NumRequests() != 1 || e.SumPriority != 2 || e.FirstArrival != 5 {
		t.Fatalf("re-added entry corrupted: %+v", e)
	}
}

func TestRemove(t *testing.T) {
	h := mustHeap(t, 0.5)
	for i := 1; i <= 10; i++ {
		h.Add(req(i, 0, float64(i), 0), 1)
	}
	if e := h.Remove(5); e == nil || e.Item != 5 {
		t.Fatal("Remove(5) failed")
	}
	if h.Remove(5) != nil {
		t.Fatal("double Remove returned entry")
	}
	if h.Remove(99) != nil {
		t.Fatal("Remove of absent item returned entry")
	}
	if h.Items() != 9 || h.Requests() != 9 {
		t.Fatalf("after remove: Items=%d Requests=%d", h.Items(), h.Requests())
	}
	// Remaining extraction order must still be by descending priority
	// (alpha=0.5, all stretch equal contributions differ by Q here).
	prev := math.Inf(1)
	for h.Items() > 0 {
		g := h.ExtractMax(0).Gamma(0.5)
		if g > prev+1e-12 {
			t.Fatalf("extraction order broken after Remove: %g after %g", g, prev)
		}
		prev = g
	}
}

func TestLinearRemove(t *testing.T) {
	l := mustLinear(t, 0.5)
	for i := 1; i <= 10; i++ {
		l.Add(req(i, 0, float64(i), 0), 1)
	}
	if e := l.Remove(5); e == nil || e.Item != 5 {
		t.Fatal("Remove(5) failed")
	}
	if l.Remove(5) != nil {
		t.Fatal("double Remove returned entry")
	}
	if l.Remove(99) != nil {
		t.Fatal("Remove of absent item returned entry")
	}
	if l.Items() != 9 || l.Requests() != 9 {
		t.Fatalf("after remove: Items=%d Requests=%d", l.Items(), l.Requests())
	}
	for want := 10; l.Items() > 0; want-- {
		if want == 5 {
			want--
		}
		if got := l.ExtractMax(0).Item; got != want {
			t.Fatalf("extraction after Remove: got item %d, want %d", got, want)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	for _, alpha := range []float64{-0.1, 1.1, math.NaN()} {
		var ae *AlphaError
		if _, err := NewHeap(alpha); err == nil || !errors.As(err, &ae) {
			t.Errorf("NewHeap(%g) error = %v, want AlphaError", alpha, err)
		}
		if _, err := NewLinear(alpha); err == nil {
			t.Errorf("NewLinear(%g) did not error", alpha)
		}
		if _, err := GammaScore(alpha); err == nil {
			t.Errorf("GammaScore(%g) did not error", alpha)
		}
	}
	if _, err := NewHeapFunc(nil); err == nil {
		t.Error("NewHeapFunc(nil) did not error")
	}
	if _, err := NewLinearFunc(nil); err == nil {
		t.Error("NewLinearFunc(nil) did not error")
	}

	cases := []struct {
		req    Request
		length float64
		want   any
	}{
		{req(0, 0, 1, 0), 1, &RankError{}},
		{req(-3, 0, 1, 0), 1, &RankError{}},
		{req(1, 0, 0, 0), 1, &PriorityError{}},
		{req(1, 0, math.NaN(), 0), 1, &PriorityError{}},
		{req(1, 0, 1, 0), 0, &LengthError{}},
		{req(1, 0, 1, 0), -1, &LengthError{}},
		{req(1, 0, 1, 0), math.NaN(), &LengthError{}},
	}
	for i, c := range cases {
		err := ValidateRequest(c.req, c.length)
		if err == nil {
			t.Errorf("case %d: ValidateRequest did not error", i)
			continue
		}
		ok := false
		switch c.want.(type) {
		case *RankError:
			var e *RankError
			ok = errors.As(err, &e)
		case *PriorityError:
			var e *PriorityError
			ok = errors.As(err, &e)
		case *LengthError:
			var e *LengthError
			ok = errors.As(err, &e)
		}
		if !ok {
			t.Errorf("case %d: error %v has wrong type (want %T)", i, err, c.want)
		}
	}
	if err := ValidateRequest(req(1, 0, 1, 0), 2); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
}

// The linear queue re-evaluates scores at extraction time, so a
// time-dependent (ageing) score selects by current wait, not enqueue state.
func TestLinearTimeDependentScore(t *testing.T) {
	// RxW-style score: requests × wait of the oldest request.
	rxw := func(e *Entry, now float64) float64 {
		return float64(e.NumRequests()) * (now - e.FirstArrival)
	}
	l, err := NewLinearFunc(rxw)
	if err != nil {
		t.Fatal(err)
	}
	l.Add(req(1, 0, 1, 0), 1) // 1 request, waiting since t=0
	l.Add(req(2, 0, 1, 8), 1) // 2 requests, waiting since t=8
	l.Add(req(2, 0, 1, 9), 1)
	// At now=10: item 1 scores 1·10=10, item 2 scores 2·2=4.
	if got := l.Peek(10).Item; got != 1 {
		t.Fatalf("at now=10 peek = %d, want 1", got)
	}
	// At now=30: item 1 scores 30, item 2 scores 2·22=44.
	if got := l.ExtractMax(30).Item; got != 2 {
		t.Fatalf("at now=30 extract = %d, want 2", got)
	}
}

// Regression (satellite: de-duplicated scoring): GammaScore must agree
// exactly with Entry.Gamma for arbitrary entries and α.
func TestGammaScoreMatchesEntryGamma(t *testing.T) {
	r := rng.New(11)
	for i := 0; i < 500; i++ {
		alpha := r.Float64()
		score, err := GammaScore(alpha)
		if err != nil {
			t.Fatal(err)
		}
		e := &Entry{Item: r.Intn(100) + 1, Length: float64(r.Intn(5) + 1)}
		n := r.Intn(6) + 1
		for j := 0; j < n; j++ {
			p := float64(r.Intn(3) + 1)
			e.Requests = append(e.Requests, req(e.Item, 0, p, float64(j)))
			e.SumPriority += p
		}
		if got, want := score(e, 0), e.Gamma(alpha); got != want {
			t.Fatalf("score=%g gamma=%g (alpha=%g)", got, want, alpha)
		}
	}
}

// Property: the heap and the linear reference extract identical item
// sequences for arbitrary workloads and α.
func TestPropertyHeapMatchesLinear(t *testing.T) {
	r := rng.New(99)
	check := func(alphaRaw uint8, ops []uint16) bool {
		alpha := float64(alphaRaw%101) / 100
		h := mustHeap(t, alpha)
		l := mustLinear(t, alpha)
		tNow := 0.0
		for _, op := range ops {
			if op%4 == 3 && h.Items() > 0 {
				he, le := h.ExtractMax(tNow), l.ExtractMax(tNow)
				if he.Item != le.Item || he.NumRequests() != le.NumRequests() {
					return false
				}
				continue
			}
			item := int(op%20) + 1
			length := float64(op%5) + 1
			prio := float64(op%3) + 1
			class := clients.Class(op % 3)
			tNow += r.Float64()
			rq := req(item, class, prio, tNow)
			// Length is fixed at first enqueue in both implementations;
			// supply the same candidate to each.
			h.Add(rq, length)
			l.Add(rq, length)
			if h.Items() != l.Items() || h.Requests() != l.Requests() {
				return false
			}
		}
		// Drain and compare the full extraction order.
		for h.Items() > 0 || l.Items() > 0 {
			he, le := h.ExtractMax(tNow), l.ExtractMax(tNow)
			if (he == nil) != (le == nil) {
				return false
			}
			if he != nil && (he.Item != le.Item || he.SumPriority != le.SumPriority) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: extraction from a static queue is in non-increasing γ order.
func TestPropertyExtractionMonotone(t *testing.T) {
	check := func(alphaRaw uint8, ops []uint16) bool {
		alpha := float64(alphaRaw%101) / 100
		h := mustHeap(t, alpha)
		for i, op := range ops {
			if i > 300 {
				break
			}
			h.Add(req(int(op%50)+1, clients.Class(op%3), float64(op%4)+1, float64(i)), float64(op%5)+1)
		}
		prev := math.Inf(1)
		for h.Items() > 0 {
			g := h.ExtractMax(0).Gamma(alpha)
			if g > prev+1e-9 {
				return false
			}
			prev = g
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func buildWorkload(n int) []Request {
	r := rng.New(7)
	reqs := make([]Request, n)
	for i := range reqs {
		// Spread items so queue size actually scales with n (distinct item
		// count ≈ min(n, catalog)); catalog grows with the workload.
		reqs[i] = req(r.Intn(max(n/2, 10))+1, clients.Class(r.Intn(3)), float64(r.Intn(3)+1), float64(i))
	}
	return reqs
}

var benchSizes = []int{100, 1000, 10000, 100000}

func BenchmarkHeapAddExtract(b *testing.B) {
	for _, n := range benchSizes {
		reqs := buildWorkload(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := mustHeap(b, 0.5)
				for _, rq := range reqs {
					h.Add(rq, 2)
				}
				for h.Items() > 0 {
					h.ExtractMax(0)
				}
			}
		})
	}
}

func BenchmarkLinearAddExtract(b *testing.B) {
	for _, n := range benchSizes {
		if n > 10000 {
			// O(n²) scans: 10⁵ items would take minutes per iteration.
			continue
		}
		reqs := buildWorkload(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l := mustLinear(b, 0.5)
				for _, rq := range reqs {
					l.Add(rq, 2)
				}
				for l.Items() > 0 {
					l.ExtractMax(0)
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1000000:
		return "n=1e6"
	case n >= 100000:
		return "n=1e5"
	case n >= 10000:
		return "n=1e4"
	case n >= 1000:
		return "n=1e3"
	default:
		return "n=1e2"
	}
}
