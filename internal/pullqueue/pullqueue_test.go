package pullqueue

import (
	"math"
	"testing"
	"testing/quick"

	"hybridqos/internal/clients"
	"hybridqos/internal/rng"
)

func req(item int, class clients.Class, prio, arrival float64) Request {
	return Request{Item: item, Class: class, Priority: prio, Arrival: arrival}
}

func TestEntryDerivedQuantities(t *testing.T) {
	h := NewHeap(0.5)
	h.Add(req(7, 1, 2, 10), 4)
	h.Add(req(7, 0, 3, 12), 4)
	h.Add(req(7, 2, 1, 8), 4)
	e := h.Entry(7)
	if e == nil {
		t.Fatal("entry missing")
	}
	if e.NumRequests() != 3 {
		t.Fatalf("R = %d", e.NumRequests())
	}
	if got := e.Stretch(); math.Abs(got-3.0/16) > 1e-12 {
		t.Fatalf("Stretch = %g, want 3/16", got)
	}
	if e.SumPriority != 6 {
		t.Fatalf("Q = %g", e.SumPriority)
	}
	if e.FirstArrival != 8 {
		t.Fatalf("FirstArrival = %g", e.FirstArrival)
	}
	if e.HighestClass() != 0 {
		t.Fatalf("HighestClass = %v", e.HighestClass())
	}
	// γ = α·S + (1-α)·Q = 0.5·(3/16) + 0.5·6
	want := 0.5*3.0/16 + 0.5*6
	if got := e.Gamma(0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Gamma = %g, want %g", got, want)
	}
}

func TestHighestClassEmptyPanics(t *testing.T) {
	e := &Entry{Item: 1, Length: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("HighestClass on empty entry did not panic")
		}
	}()
	e.HighestClass()
}

func TestAlphaExtremes(t *testing.T) {
	// α=1: pure stretch — many small requests beat one high-priority one.
	h := NewHeap(1)
	h.Add(req(1, 0, 100, 0), 1) // S=1, Q=100
	for i := 0; i < 5; i++ {
		h.Add(req(2, 2, 1, 0), 1) // S=5, Q=5
	}
	if got := h.ExtractMax().Item; got != 2 {
		t.Fatalf("alpha=1 extracted item %d, want stretch-max 2", got)
	}

	// α=0: pure priority — the high-priority item wins.
	h0 := NewHeap(0)
	h0.Add(req(1, 0, 100, 0), 1)
	for i := 0; i < 5; i++ {
		h0.Add(req(2, 2, 1, 0), 1)
	}
	if got := h0.ExtractMax().Item; got != 1 {
		t.Fatalf("alpha=0 extracted item %d, want priority-max 1", got)
	}
}

func TestLongItemsPenalizedByStretch(t *testing.T) {
	h := NewHeap(1)
	h.Add(req(1, 0, 1, 0), 5) // S = 1/25
	h.Add(req(2, 0, 1, 0), 1) // S = 1
	if got := h.ExtractMax().Item; got != 2 {
		t.Fatalf("stretch should prefer the short item; got %d", got)
	}
}

func TestTieBreakLowestRank(t *testing.T) {
	for _, mk := range []func() Queue{
		func() Queue { return NewHeap(0.5) },
		func() Queue { return NewLinear(0.5) },
	} {
		q := mk()
		q.Add(req(9, 0, 2, 0), 2)
		q.Add(req(3, 0, 2, 0), 2)
		q.Add(req(6, 0, 2, 0), 2)
		if got := q.ExtractMax().Item; got != 3 {
			t.Fatalf("tie-break extracted %d, want 3", got)
		}
	}
}

func TestExtractEmptyReturnsNil(t *testing.T) {
	if NewHeap(0.5).ExtractMax() != nil || NewLinear(0.5).ExtractMax() != nil {
		t.Fatal("ExtractMax on empty queue != nil")
	}
	if NewHeap(0.5).Peek() != nil || NewLinear(0.5).Peek() != nil {
		t.Fatal("Peek on empty queue != nil")
	}
}

func TestCountsTrackAddsAndExtracts(t *testing.T) {
	h := NewHeap(0.5)
	h.Add(req(1, 0, 3, 0), 2)
	h.Add(req(1, 1, 2, 1), 2)
	h.Add(req(2, 2, 1, 2), 3)
	if h.Items() != 2 || h.Requests() != 3 {
		t.Fatalf("Items=%d Requests=%d", h.Items(), h.Requests())
	}
	e := h.ExtractMax()
	if h.Items() != 1 || h.Requests() != 3-len(e.Requests) {
		t.Fatalf("after extract: Items=%d Requests=%d", h.Items(), h.Requests())
	}
	h.ExtractMax()
	if h.Items() != 0 || h.Requests() != 0 {
		t.Fatalf("after drain: Items=%d Requests=%d", h.Items(), h.Requests())
	}
}

func TestReAddAfterExtract(t *testing.T) {
	h := NewHeap(0.5)
	h.Add(req(4, 0, 1, 0), 2)
	h.ExtractMax()
	h.Add(req(4, 1, 2, 5), 2)
	e := h.Entry(4)
	if e == nil || e.NumRequests() != 1 || e.SumPriority != 2 || e.FirstArrival != 5 {
		t.Fatalf("re-added entry corrupted: %+v", e)
	}
}

func TestRemove(t *testing.T) {
	h := NewHeap(0.5)
	for i := 1; i <= 10; i++ {
		h.Add(req(i, 0, float64(i), 0), 1)
	}
	if e := h.Remove(5); e == nil || e.Item != 5 {
		t.Fatal("Remove(5) failed")
	}
	if h.Remove(5) != nil {
		t.Fatal("double Remove returned entry")
	}
	if h.Remove(99) != nil {
		t.Fatal("Remove of absent item returned entry")
	}
	if h.Items() != 9 || h.Requests() != 9 {
		t.Fatalf("after remove: Items=%d Requests=%d", h.Items(), h.Requests())
	}
	// Remaining extraction order must still be by descending priority
	// (alpha=0.5, all stretch equal contributions differ by Q here).
	prev := math.Inf(1)
	for h.Items() > 0 {
		g := h.ExtractMax().Gamma(0.5)
		if g > prev+1e-12 {
			t.Fatalf("extraction order broken after Remove: %g after %g", g, prev)
		}
		prev = g
	}
}

func TestValidationPanics(t *testing.T) {
	cases := []func(){
		func() { NewHeap(-0.1) },
		func() { NewHeap(1.1) },
		func() { NewHeap(math.NaN()) },
		func() { NewHeap(0.5).Add(req(0, 0, 1, 0), 1) }, // bad rank
		func() { NewHeap(0.5).Add(req(1, 0, 0, 0), 1) }, // bad priority
		func() { NewHeap(0.5).Add(req(1, 0, 1, 0), 0) }, // bad length
		func() { NewLinear(0.5).Add(req(1, 0, 1, 0), -1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: the heap and the linear reference extract identical item
// sequences for arbitrary workloads and α.
func TestPropertyHeapMatchesLinear(t *testing.T) {
	r := rng.New(99)
	check := func(alphaRaw uint8, ops []uint16) bool {
		alpha := float64(alphaRaw%101) / 100
		h := NewHeap(alpha)
		l := NewLinear(alpha)
		tNow := 0.0
		for _, op := range ops {
			if op%4 == 3 && h.Items() > 0 {
				he, le := h.ExtractMax(), l.ExtractMax()
				if he.Item != le.Item || he.NumRequests() != le.NumRequests() {
					return false
				}
				continue
			}
			item := int(op%20) + 1
			length := float64(op%5) + 1
			prio := float64(op%3) + 1
			class := clients.Class(op % 3)
			tNow += r.Float64()
			rq := req(item, class, prio, tNow)
			// Length is fixed at first enqueue in both implementations;
			// supply the same candidate to each.
			h.Add(rq, length)
			l.Add(rq, length)
			if h.Items() != l.Items() || h.Requests() != l.Requests() {
				return false
			}
		}
		// Drain and compare the full extraction order.
		for h.Items() > 0 || l.Items() > 0 {
			he, le := h.ExtractMax(), l.ExtractMax()
			if (he == nil) != (le == nil) {
				return false
			}
			if he != nil && (he.Item != le.Item || he.SumPriority != le.SumPriority) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: extraction from a static queue is in non-increasing γ order.
func TestPropertyExtractionMonotone(t *testing.T) {
	check := func(alphaRaw uint8, ops []uint16) bool {
		alpha := float64(alphaRaw%101) / 100
		h := NewHeap(alpha)
		for i, op := range ops {
			if i > 300 {
				break
			}
			h.Add(req(int(op%50)+1, clients.Class(op%3), float64(op%4)+1, float64(i)), float64(op%5)+1)
		}
		prev := math.Inf(1)
		for h.Items() > 0 {
			g := h.ExtractMax().Gamma(alpha)
			if g > prev+1e-9 {
				return false
			}
			prev = g
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func buildWorkload(n int) []Request {
	r := rng.New(7)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = req(r.Intn(90)+1, clients.Class(r.Intn(3)), float64(r.Intn(3)+1), float64(i))
	}
	return reqs
}

func BenchmarkHeapAddExtract(b *testing.B) {
	reqs := buildWorkload(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewHeap(0.5)
		for _, rq := range reqs {
			h.Add(rq, 2)
		}
		for h.Items() > 0 {
			h.ExtractMax()
		}
	}
}

func BenchmarkLinearAddExtract(b *testing.B) {
	reqs := buildWorkload(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := NewLinear(0.5)
		for _, rq := range reqs {
			l.Add(rq, 2)
		}
		for l.Items() > 0 {
			l.ExtractMax()
		}
	}
}
