// Package pullqueue implements the server-side pull queue of the hybrid
// scheduler. Each queued entry aggregates every pending client request for
// one item, maintaining the two quantities the paper's selection rule needs:
//
//	stretch   S_i = R_i / L_i²                    (max-request min-service-time)
//	priority  Q_i = Σ_{requests j for i} q_j      (summed client priorities)
//
// Entry.Stretch and Entry.Gamma are the single canonical implementation of
// those quantities — every scheduling policy (internal/sched) scores entries
// through them, so a score computed by a policy and a score computed by a
// queue can never drift apart.
//
// Selection itself is pluggable: both queue implementations take an injected
// ScoreFunc and extract the entry with the maximum score, ties broken by
// lowest item rank so runs are deterministic. Two implementations are
// provided: Heap (indexed binary max-heap, O(log n) add/extract — restricted
// to time-independent scores that never decrease when a request is added, so
// position fixes are pure sift-ups) and Linear (O(n) scan re-evaluating the
// score at extraction time), which supports time-dependent ageing policies
// (RxW-style) and doubles as the obviously-correct reference in property
// tests and as an ablation baseline.
//
// Validation is front-loaded: constructors return typed errors (AlphaError)
// and ValidateRequest reports RankError/PriorityError/LengthError, all
// surfaced through core.Config.Validate before a simulation starts. The hot
// Add/ExtractMax paths trust validated inputs and never panic.
package pullqueue

import (
	"fmt"
	"math"
	"sort"

	"hybridqos/internal/clients"
)

// Request is one pending client request for a pull item.
type Request struct {
	// Item is the requested item's catalog rank.
	Item int
	// Class is the requesting client's service class.
	Class clients.Class
	// Priority is the requesting client's priority weight q_j.
	Priority float64
	// Arrival is the simulated time the request reached the server.
	Arrival float64
	// Client identifies the requesting client for client-side cache fills;
	// −1 when client identity is not tracked.
	Client int
	// Attempts counts the re-requests already made for this request after
	// corrupted deliveries on a lossy downlink (0 for a first attempt).
	Attempts int
	// Tag is an opaque caller identifier carried through the queue. The
	// simulator leaves it 0; the serving mode uses it to map a delivered
	// request back to the live connection waiting on it.
	Tag int64
}

// Entry aggregates the pending requests for one item.
type Entry struct {
	// Item is the catalog rank.
	Item int
	// Length is the item's transmission length, fixed at first enqueue.
	Length float64
	// Requests holds every pending request, in arrival order.
	Requests []Request
	// SumPriority is Q_i.
	SumPriority float64
	// FirstArrival is the earliest pending arrival time (for RxW-style
	// policies and ageing diagnostics).
	FirstArrival float64

	heapIndex int // position in the heap; -1 when not enqueued
}

// NumRequests returns R_i.
func (e *Entry) NumRequests() int { return len(e.Requests) }

// Stretch returns S_i = R_i / L_i².
func (e *Entry) Stretch() float64 {
	return float64(len(e.Requests)) / (e.Length * e.Length)
}

// Gamma returns the importance factor γ_i = α·S_i + (1−α)·Q_i.
func (e *Entry) Gamma(alpha float64) float64 {
	return alpha*e.Stretch() + (1-alpha)*e.SumPriority
}

// HighestClass returns the most important (numerically lowest) class among
// the pending requests. It panics on an empty entry.
func (e *Entry) HighestClass() clients.Class {
	if len(e.Requests) == 0 {
		panic("pullqueue: HighestClass on empty entry")
	}
	best := e.Requests[0].Class
	for _, r := range e.Requests[1:] {
		if r.Class < best {
			best = r.Class
		}
	}
	return best
}

// ScoreFunc scores an entry for selection; the highest score wins, ties
// broken by lowest item rank. now is the current simulated time — Linear
// re-evaluates scores at every extraction, so time-dependent (ageing)
// scores work there. Heap evaluates scores with now = 0 and requires them
// to (a) ignore now and (b) never decrease when a request is added to the
// entry; violating either silently breaks heap order.
type ScoreFunc func(e *Entry, now float64) float64

// AlphaError reports an importance-factor mixing fraction outside [0,1].
type AlphaError struct{ Alpha float64 }

func (e *AlphaError) Error() string {
	return fmt.Sprintf("pullqueue: alpha %g outside [0,1]", e.Alpha)
}

// RankError reports a non-positive item rank.
type RankError struct{ Item int }

func (e *RankError) Error() string {
	return fmt.Sprintf("pullqueue: invalid item rank %d", e.Item)
}

// PriorityError reports a non-positive or NaN request priority.
type PriorityError struct{ Priority float64 }

func (e *PriorityError) Error() string {
	return fmt.Sprintf("pullqueue: invalid priority %g", e.Priority)
}

// LengthError reports a non-positive or NaN item length.
type LengthError struct {
	Item   int
	Length float64
}

func (e *LengthError) Error() string {
	return fmt.Sprintf("pullqueue: invalid length %g for item %d", e.Length, e.Item)
}

// ValidateAlpha reports whether α is a usable mixing fraction.
func ValidateAlpha(alpha float64) error {
	if alpha < 0 || alpha > 1 || math.IsNaN(alpha) {
		return &AlphaError{Alpha: alpha}
	}
	return nil
}

// ValidateRequest reports whether a request and its item length satisfy the
// queue invariants. The queues themselves trust their inputs — callers
// validate once at configuration time (core.Config.Validate audits every
// catalog length and class weight), not on the hot enqueue path.
func ValidateRequest(req Request, length float64) error {
	if req.Item < 1 {
		return &RankError{Item: req.Item}
	}
	if req.Priority <= 0 || math.IsNaN(req.Priority) {
		return &PriorityError{Priority: req.Priority}
	}
	if length <= 0 || math.IsNaN(length) {
		return &LengthError{Item: req.Item, Length: length}
	}
	return nil
}

// GammaScore returns the paper's importance-factor score γ(α) as an
// injectable ScoreFunc. The score is time-independent and grows monotonically
// as requests accumulate, so it is heap-safe.
func GammaScore(alpha float64) (ScoreFunc, error) {
	if err := ValidateAlpha(alpha); err != nil {
		return nil, err
	}
	return func(e *Entry, _ float64) float64 { return e.Gamma(alpha) }, nil
}

// Queue is the interface shared by the heap and linear implementations.
type Queue interface {
	// Add enqueues a request (length fixes the item's transmission time on
	// the item's first pending request). Inputs must satisfy
	// ValidateRequest; the queue does not re-check them.
	Add(req Request, length float64)
	// ExtractMax removes and returns the entry with the largest score at
	// time now, or nil if the queue is empty.
	ExtractMax(now float64) *Entry
	// Peek returns the current max entry without removing it, or nil.
	Peek(now float64) *Entry
	// Entry returns the queued entry for an item rank, or nil — read-only
	// provenance lookups (span enqueue scores); callers must not mutate it.
	Entry(item int) *Entry
	// Remove discards a specific item's entry (blocked transmissions),
	// returning it or nil.
	Remove(item int) *Entry
	// Items returns the number of distinct items queued.
	Items() int
	// Requests returns the total number of pending requests.
	Requests() int
	// Recycle returns an entry obtained from ExtractMax or Remove to the
	// queue's freelist so a later Add can reuse it (and its request-slice
	// capacity) instead of allocating. The caller must not retain the entry
	// afterwards. Entries still enqueued, nil entries and double recycles
	// are ignored, so Recycle is always safe to call.
	Recycle(e *Entry)
	// Drain removes every entry and returns them sorted by item rank — the
	// deterministic whole-backlog iteration order used by the cluster's
	// mobility model. Returned entries are live: the caller re-Adds the
	// requests it keeps and Recycles each drained entry when done with it.
	Drain() []*Entry
}

// freeIndex marks an entry parked on a queue's freelist (heapIndex is
// len(heap)-indexed while enqueued in a Heap and -1 once extracted).
const freeIndex = -2

// itemIndex maps item rank -> live queued entry as a dense slice. Ranks are
// small positive integers (1..D, validated at configuration time), so direct
// indexing replaces the map hash on every Add/Entry/Remove; the slice grows
// once to the highest rank seen and slot 0 stays unused. A nil slot means the
// item is not queued.
type itemIndex []*Entry

// get returns the live entry for a rank, or nil.
//
//qos:hotpath
func (ix itemIndex) get(item int) *Entry {
	if uint(item) < uint(len(ix)) {
		return ix[item]
	}
	return nil
}

// set records the live entry for a rank.
//
//qos:hotpath
func (ix *itemIndex) set(item int, e *Entry) {
	if uint(item) < uint(len(*ix)) {
		(*ix)[item] = e
		return
	}
	ix.grow(item, e)
}

// grow is set's cold path: the index extends to the highest item rank once.
func (ix *itemIndex) grow(item int, e *Entry) {
	for len(*ix) <= item {
		*ix = append(*ix, nil)
	}
	(*ix)[item] = e
}

// clear drops a rank's live entry.
//
//qos:hotpath
func (ix itemIndex) clear(item int) {
	if uint(item) < uint(len(ix)) {
		ix[item] = nil
	}
}

// reuse pops an entry from the freelist and re-initialises it for item, or
// allocates a fresh one. The recycled request slice keeps its capacity.
//
//qos:hotpath
func reuse(free *[]*Entry, req Request, length float64, heapIndex int) *Entry {
	n := len(*free)
	if n == 0 {
		return &Entry{
			Item:         req.Item,
			Length:       length,
			FirstArrival: req.Arrival,
			heapIndex:    heapIndex,
		}
	}
	e := (*free)[n-1]
	(*free)[n-1] = nil
	*free = (*free)[:n-1]
	e.Item = req.Item
	e.Length = length
	e.FirstArrival = req.Arrival
	e.heapIndex = heapIndex
	return e
}

// park resets an extracted entry and pushes it onto the freelist. It reports
// false (and does nothing) when the entry is nil, still enqueued, already
// parked, or still the live entry for its item.
//
//qos:hotpath
func park(free *[]*Entry, byItem itemIndex, e *Entry) bool {
	if e == nil || e.heapIndex != -1 || byItem.get(e.Item) == e {
		return false
	}
	e.Requests = e.Requests[:0]
	e.SumPriority = 0
	e.FirstArrival = 0
	e.Item = 0
	e.Length = 0
	e.heapIndex = freeIndex
	//lint:allow hotalloc amortized: the freelist grows to the steady-state entry population once, then recycles
	*free = append(*free, e)
	return true
}

// Heap is the production pull queue: an indexed binary max-heap over entries
// keyed by an injected time-independent score, with an item-rank index for
// O(1) entry lookup.
type Heap struct {
	score    ScoreFunc
	heap     []*Entry
	byItem   itemIndex
	requests int
	free     []*Entry
}

// NewHeap returns an empty heap-backed queue ordered by the paper's
// importance factor γ(α) — the common case, kept as a convenience.
func NewHeap(alpha float64) (*Heap, error) {
	score, err := GammaScore(alpha)
	if err != nil {
		return nil, err
	}
	return NewHeapFunc(score)
}

// NewHeapFunc returns an empty heap-backed queue ordered by score. The score
// must be time-independent and must not decrease when a request is added to
// an entry (see ScoreFunc).
func NewHeapFunc(score ScoreFunc) (*Heap, error) {
	if score == nil {
		return nil, fmt.Errorf("pullqueue: nil score function")
	}
	return &Heap{score: score}, nil
}

// Items returns the number of distinct queued items.
func (h *Heap) Items() int { return len(h.heap) }

// Requests returns the total pending request count.
func (h *Heap) Requests() int { return h.requests }

// Entry returns the queued entry for an item rank, or nil.
func (h *Heap) Entry(item int) *Entry { return h.byItem.get(item) }

// Add enqueues a request, creating the item's entry if needed. Adding a
// request can only increase the entry's score, so a sift-up restores heap
// order.
//
//qos:hotpath
func (h *Heap) Add(req Request, length float64) {
	e := h.byItem.get(req.Item)
	if e == nil {
		e = reuse(&h.free, req, length, len(h.heap))
		h.byItem.set(req.Item, e)
		//lint:allow hotalloc amortized: the heap backing array grows to the distinct-item working set once
		h.heap = append(h.heap, e)
	}
	//lint:allow hotalloc amortized: recycled entries keep request-slice capacity, so growth stops at the per-item burst size
	e.Requests = append(e.Requests, req)
	e.SumPriority += req.Priority
	if req.Arrival < e.FirstArrival {
		e.FirstArrival = req.Arrival
	}
	h.requests++
	h.siftUp(e.heapIndex)
}

// less reports whether heap[i] has strictly lower selection precedence than
// heap[j]: smaller score, or equal score and larger rank.
//
//qos:hotpath
func (h *Heap) less(i, j int) bool {
	si, sj := h.score(h.heap[i], 0), h.score(h.heap[j], 0)
	//lint:allow floatcmp exact equality is the documented tie-break; both scores come from the same score() evaluation
	if si != sj {
		return si < sj
	}
	return h.heap[i].Item > h.heap[j].Item
}

//qos:hotpath
func (h *Heap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.heap[i].heapIndex = i
	h.heap[j].heapIndex = j
}

//qos:hotpath
func (h *Heap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(parent, i) {
			return
		}
		h.swap(parent, i)
		i = parent
	}
}

//qos:hotpath
func (h *Heap) siftDown(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.less(largest, l) {
			largest = l
		}
		if r < n && h.less(largest, r) {
			largest = r
		}
		if largest == i {
			return
		}
		h.swap(i, largest)
		i = largest
	}
}

// Peek returns the max-score entry without removing it.
//
//qos:hotpath
func (h *Heap) Peek(_ float64) *Entry {
	if len(h.heap) == 0 {
		return nil
	}
	return h.heap[0]
}

// ExtractMax removes and returns the max-score entry.
//
//qos:hotpath
func (h *Heap) ExtractMax(_ float64) *Entry {
	if len(h.heap) == 0 {
		return nil
	}
	top := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap[last] = nil
	h.heap = h.heap[:last]
	if last > 0 {
		h.siftDown(0)
	}
	top.heapIndex = -1
	h.byItem.clear(top.Item)
	h.requests -= len(top.Requests)
	return top
}

// Remove drops a specific item's entry (used when a blocked item's requests
// are discarded without service). Returns the removed entry or nil.
func (h *Heap) Remove(item int) *Entry {
	e := h.byItem.get(item)
	if e == nil {
		return nil
	}
	i := e.heapIndex
	last := len(h.heap) - 1
	h.swap(i, last)
	h.heap[last] = nil
	h.heap = h.heap[:last]
	if i < last {
		h.siftDown(i)
		h.siftUp(i)
	}
	e.heapIndex = -1
	h.byItem.clear(item)
	h.requests -= len(e.Requests)
	return e
}

// Recycle returns an extracted entry to the freelist for reuse by Add.
func (h *Heap) Recycle(e *Entry) { park(&h.free, h.byItem, e) }

// Drain removes every entry and returns them sorted by item rank.
func (h *Heap) Drain() []*Entry {
	out := h.heap
	h.heap = nil
	for _, e := range out {
		e.heapIndex = -1
		h.byItem.clear(e.Item)
	}
	h.requests = 0
	sort.Slice(out, func(i, j int) bool { return out[i].Item < out[j].Item })
	return out
}

// Linear is the O(n)-scan implementation of Queue. It re-evaluates the score
// at every extraction, so time-dependent (ageing) scores are supported; it
// also serves as the obviously-correct reference in property tests.
type Linear struct {
	score    ScoreFunc
	entries  []*Entry
	byItem   itemIndex
	requests int
	free     []*Entry
}

// NewLinear returns an empty scan-backed queue ordered by the paper's
// importance factor γ(α).
func NewLinear(alpha float64) (*Linear, error) {
	score, err := GammaScore(alpha)
	if err != nil {
		return nil, err
	}
	return NewLinearFunc(score)
}

// NewLinearFunc returns an empty scan-backed queue ordered by score, which
// may be time-dependent.
func NewLinearFunc(score ScoreFunc) (*Linear, error) {
	if score == nil {
		return nil, fmt.Errorf("pullqueue: nil score function")
	}
	return &Linear{score: score}, nil
}

// Items returns the number of distinct queued items.
func (l *Linear) Items() int { return len(l.entries) }

// Requests returns the total pending request count.
func (l *Linear) Requests() int { return l.requests }

// Entry returns the queued entry for an item rank, or nil.
func (l *Linear) Entry(item int) *Entry { return l.byItem.get(item) }

// Add enqueues a request.
//
//qos:hotpath
func (l *Linear) Add(req Request, length float64) {
	e := l.byItem.get(req.Item)
	if e == nil {
		e = reuse(&l.free, req, length, -1)
		l.byItem.set(req.Item, e)
		//lint:allow hotalloc amortized: the entry slice grows to the distinct-item working set once
		l.entries = append(l.entries, e)
	}
	//lint:allow hotalloc amortized: recycled entries keep request-slice capacity, so growth stops at the per-item burst size
	e.Requests = append(e.Requests, req)
	e.SumPriority += req.Priority
	if req.Arrival < e.FirstArrival {
		e.FirstArrival = req.Arrival
	}
	l.requests++
}

// argMax returns the index of the max-score entry at time now, or -1 when
// empty.
//
//qos:hotpath
func (l *Linear) argMax(now float64) int {
	best := -1
	var bestScore float64
	for i, e := range l.entries {
		s := l.score(e, now)
		//lint:allow floatcmp exact equality is the documented tie-break before falling back to the smaller item id
		if best == -1 || s > bestScore || (s == bestScore && e.Item < l.entries[best].Item) {
			best, bestScore = i, s
		}
	}
	return best
}

// Peek returns the max-score entry at time now without removing it.
//
//qos:hotpath
func (l *Linear) Peek(now float64) *Entry {
	i := l.argMax(now)
	if i < 0 {
		return nil
	}
	return l.entries[i]
}

// ExtractMax removes and returns the max-score entry at time now.
//
//qos:hotpath
func (l *Linear) ExtractMax(now float64) *Entry {
	i := l.argMax(now)
	if i < 0 {
		return nil
	}
	return l.removeAt(i)
}

// Remove drops a specific item's entry, returning it or nil.
func (l *Linear) Remove(item int) *Entry {
	e := l.byItem.get(item)
	if e == nil {
		return nil
	}
	for i, cand := range l.entries {
		if cand == e {
			return l.removeAt(i)
		}
	}
	return nil
}

//qos:hotpath
func (l *Linear) removeAt(i int) *Entry {
	e := l.entries[i]
	l.entries[i] = l.entries[len(l.entries)-1]
	l.entries[len(l.entries)-1] = nil
	l.entries = l.entries[:len(l.entries)-1]
	l.byItem.clear(e.Item)
	l.requests -= len(e.Requests)
	return e
}

// Recycle returns an extracted entry to the freelist for reuse by Add.
func (l *Linear) Recycle(e *Entry) { park(&l.free, l.byItem, e) }

// Drain removes every entry and returns them sorted by item rank.
func (l *Linear) Drain() []*Entry {
	out := l.entries
	l.entries = nil
	for _, e := range out {
		e.heapIndex = -1
		l.byItem.clear(e.Item)
	}
	l.requests = 0
	sort.Slice(out, func(i, j int) bool { return out[i].Item < out[j].Item })
	return out
}

var (
	_ Queue = (*Heap)(nil)
	_ Queue = (*Linear)(nil)
)
