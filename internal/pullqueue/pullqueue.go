// Package pullqueue implements the server-side pull queue of the hybrid
// scheduler. Each queued entry aggregates every pending client request for
// one item, maintaining the two quantities the paper's selection rule needs:
//
//	stretch   S_i = R_i / L_i²                    (max-request min-service-time)
//	priority  Q_i = Σ_{requests j for i} q_j      (summed client priorities)
//
// The item extracted is argmax γ_i = α·S_i + (1−α)·Q_i (paper Eq. 1), ties
// broken by lowest rank so runs are deterministic.
//
// Two implementations are provided: Heap (indexed binary max-heap,
// O(log n) add/extract — scores only grow while an item waits, so position
// fixes are pure sift-ups) and Linear (O(n) scan), which serves as the
// obviously-correct reference in property tests and as an ablation baseline.
package pullqueue

import (
	"fmt"
	"math"

	"hybridqos/internal/clients"
)

// Request is one pending client request for a pull item.
type Request struct {
	// Item is the requested item's catalog rank.
	Item int
	// Class is the requesting client's service class.
	Class clients.Class
	// Priority is the requesting client's priority weight q_j.
	Priority float64
	// Arrival is the simulated time the request reached the server.
	Arrival float64
	// Client identifies the requesting client for client-side cache fills;
	// −1 when client identity is not tracked.
	Client int
	// Attempts counts the re-requests already made for this request after
	// corrupted deliveries on a lossy downlink (0 for a first attempt).
	Attempts int
}

// Entry aggregates the pending requests for one item.
type Entry struct {
	// Item is the catalog rank.
	Item int
	// Length is the item's transmission length, fixed at first enqueue.
	Length float64
	// Requests holds every pending request, in arrival order.
	Requests []Request
	// SumPriority is Q_i.
	SumPriority float64
	// FirstArrival is the earliest pending arrival time (for RxW-style
	// policies and ageing diagnostics).
	FirstArrival float64

	heapIndex int // position in the heap; -1 when not enqueued
}

// NumRequests returns R_i.
func (e *Entry) NumRequests() int { return len(e.Requests) }

// Stretch returns S_i = R_i / L_i².
func (e *Entry) Stretch() float64 {
	return float64(len(e.Requests)) / (e.Length * e.Length)
}

// Gamma returns the importance factor γ_i = α·S_i + (1−α)·Q_i.
func (e *Entry) Gamma(alpha float64) float64 {
	return alpha*e.Stretch() + (1-alpha)*e.SumPriority
}

// HighestClass returns the most important (numerically lowest) class among
// the pending requests. It panics on an empty entry.
func (e *Entry) HighestClass() clients.Class {
	if len(e.Requests) == 0 {
		panic("pullqueue: HighestClass on empty entry")
	}
	best := e.Requests[0].Class
	for _, r := range e.Requests[1:] {
		if r.Class < best {
			best = r.Class
		}
	}
	return best
}

// Queue is the interface shared by the heap and linear implementations.
type Queue interface {
	// Add enqueues a request; the item's length must be supplied (used only
	// on the item's first pending request).
	Add(req Request, length float64)
	// ExtractMax removes and returns the entry with the largest γ under the
	// queue's α, or nil if the queue is empty.
	ExtractMax() *Entry
	// Peek returns the current max entry without removing it, or nil.
	Peek() *Entry
	// Items returns the number of distinct items queued.
	Items() int
	// Requests returns the total number of pending requests.
	Requests() int
	// Alpha returns the stretch/priority mixing fraction.
	Alpha() float64
}

// validateAlpha rejects α outside [0,1].
func validateAlpha(alpha float64) {
	if alpha < 0 || alpha > 1 || math.IsNaN(alpha) {
		panic(fmt.Sprintf("pullqueue: alpha %g outside [0,1]", alpha))
	}
}

func validateRequest(req Request, length float64) {
	if req.Item < 1 {
		panic(fmt.Sprintf("pullqueue: invalid item rank %d", req.Item))
	}
	if req.Priority <= 0 || math.IsNaN(req.Priority) {
		panic(fmt.Sprintf("pullqueue: invalid priority %g", req.Priority))
	}
	if length <= 0 || math.IsNaN(length) {
		panic(fmt.Sprintf("pullqueue: invalid length %g for item %d", length, req.Item))
	}
}

// Heap is the production pull queue: an indexed binary max-heap over
// entries keyed by γ, with an item-rank index for O(1) entry lookup.
type Heap struct {
	alpha    float64
	heap     []*Entry
	byItem   map[int]*Entry
	requests int
}

// NewHeap returns an empty heap-backed queue with the given α.
func NewHeap(alpha float64) *Heap {
	validateAlpha(alpha)
	return &Heap{alpha: alpha, byItem: make(map[int]*Entry)}
}

// Alpha returns the mixing fraction.
func (h *Heap) Alpha() float64 { return h.alpha }

// Items returns the number of distinct queued items.
func (h *Heap) Items() int { return len(h.heap) }

// Requests returns the total pending request count.
func (h *Heap) Requests() int { return h.requests }

// Entry returns the queued entry for an item rank, or nil.
func (h *Heap) Entry(item int) *Entry { return h.byItem[item] }

// Add enqueues a request, creating the item's entry if needed. Adding a
// request can only increase the entry's γ, so a sift-up restores heap order.
func (h *Heap) Add(req Request, length float64) {
	validateRequest(req, length)
	e := h.byItem[req.Item]
	if e == nil {
		e = &Entry{
			Item:         req.Item,
			Length:       length,
			FirstArrival: req.Arrival,
			heapIndex:    len(h.heap),
		}
		h.byItem[req.Item] = e
		h.heap = append(h.heap, e)
	}
	e.Requests = append(e.Requests, req)
	e.SumPriority += req.Priority
	if req.Arrival < e.FirstArrival {
		e.FirstArrival = req.Arrival
	}
	h.requests++
	h.siftUp(e.heapIndex)
}

// less reports whether heap[i] has strictly lower selection precedence than
// heap[j]: smaller γ, or equal γ and larger rank.
func (h *Heap) less(i, j int) bool {
	gi, gj := h.heap[i].Gamma(h.alpha), h.heap[j].Gamma(h.alpha)
	if gi != gj {
		return gi < gj
	}
	return h.heap[i].Item > h.heap[j].Item
}

func (h *Heap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.heap[i].heapIndex = i
	h.heap[j].heapIndex = j
}

func (h *Heap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(parent, i) {
			return
		}
		h.swap(parent, i)
		i = parent
	}
}

func (h *Heap) siftDown(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.less(largest, l) {
			largest = l
		}
		if r < n && h.less(largest, r) {
			largest = r
		}
		if largest == i {
			return
		}
		h.swap(i, largest)
		i = largest
	}
}

// Peek returns the max-γ entry without removing it.
func (h *Heap) Peek() *Entry {
	if len(h.heap) == 0 {
		return nil
	}
	return h.heap[0]
}

// ExtractMax removes and returns the max-γ entry.
func (h *Heap) ExtractMax() *Entry {
	if len(h.heap) == 0 {
		return nil
	}
	top := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap[last] = nil
	h.heap = h.heap[:last]
	if last > 0 {
		h.siftDown(0)
	}
	top.heapIndex = -1
	delete(h.byItem, top.Item)
	h.requests -= len(top.Requests)
	return top
}

// Remove drops a specific item's entry (used when a blocked item's requests
// are discarded without service). Returns the removed entry or nil.
func (h *Heap) Remove(item int) *Entry {
	e := h.byItem[item]
	if e == nil {
		return nil
	}
	i := e.heapIndex
	last := len(h.heap) - 1
	h.swap(i, last)
	h.heap[last] = nil
	h.heap = h.heap[:last]
	if i < last {
		h.siftDown(i)
		h.siftUp(i)
	}
	e.heapIndex = -1
	delete(h.byItem, item)
	h.requests -= len(e.Requests)
	return e
}

// Linear is the O(n)-scan reference implementation of Queue.
type Linear struct {
	alpha    float64
	entries  []*Entry
	byItem   map[int]*Entry
	requests int
}

// NewLinear returns an empty scan-backed queue with the given α.
func NewLinear(alpha float64) *Linear {
	validateAlpha(alpha)
	return &Linear{alpha: alpha, byItem: make(map[int]*Entry)}
}

// Alpha returns the mixing fraction.
func (l *Linear) Alpha() float64 { return l.alpha }

// Items returns the number of distinct queued items.
func (l *Linear) Items() int { return len(l.entries) }

// Requests returns the total pending request count.
func (l *Linear) Requests() int { return l.requests }

// Add enqueues a request.
func (l *Linear) Add(req Request, length float64) {
	validateRequest(req, length)
	e := l.byItem[req.Item]
	if e == nil {
		e = &Entry{Item: req.Item, Length: length, FirstArrival: req.Arrival, heapIndex: -1}
		l.byItem[req.Item] = e
		l.entries = append(l.entries, e)
	}
	e.Requests = append(e.Requests, req)
	e.SumPriority += req.Priority
	if req.Arrival < e.FirstArrival {
		e.FirstArrival = req.Arrival
	}
	l.requests++
}

// argMax returns the index of the max-γ entry, or -1 when empty.
func (l *Linear) argMax() int {
	best := -1
	for i, e := range l.entries {
		if best == -1 {
			best = i
			continue
		}
		gb, ge := l.entries[best].Gamma(l.alpha), e.Gamma(l.alpha)
		if ge > gb || (ge == gb && e.Item < l.entries[best].Item) {
			best = i
		}
	}
	return best
}

// Peek returns the max-γ entry without removing it.
func (l *Linear) Peek() *Entry {
	i := l.argMax()
	if i < 0 {
		return nil
	}
	return l.entries[i]
}

// ExtractMax removes and returns the max-γ entry.
func (l *Linear) ExtractMax() *Entry {
	i := l.argMax()
	if i < 0 {
		return nil
	}
	e := l.entries[i]
	l.entries[i] = l.entries[len(l.entries)-1]
	l.entries[len(l.entries)-1] = nil
	l.entries = l.entries[:len(l.entries)-1]
	delete(l.byItem, e.Item)
	l.requests -= len(e.Requests)
	return e
}

var (
	_ Queue = (*Heap)(nil)
	_ Queue = (*Linear)(nil)
)
