package multichannel

import (
	"math"
	"testing"

	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/core"
	"hybridqos/internal/sched"
)

func baseConfig(t *testing.T) Config {
	t.Helper()
	cat, err := catalog.Generate(catalog.PaperConfig(0.6, 42))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := clients.New(clients.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Catalog:        cat,
		Classes:        cl,
		Lambda:         5,
		Cutoff:         40,
		Alpha:          0.5,
		PushChannels:   1,
		PullChannels:   1,
		Horizon:        8000,
		WarmupFraction: 0.1,
		Seed:           7,
	}
}

func TestValidate(t *testing.T) {
	good := baseConfig(t)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Catalog = nil },
		func(c *Config) { c.Classes = nil },
		func(c *Config) { c.Lambda = 0 },
		func(c *Config) { c.Cutoff = -1 },
		func(c *Config) { c.Alpha = 2 },
		func(c *Config) { c.PushChannels = 0 },  // cutoff 40 needs push
		func(c *Config) { c.PullChannels = 0 },  // pull set needs pull
		func(c *Config) { c.PushChannels = 41 }, // more channels than items
		func(c *Config) { c.PushChannels, c.PullChannels = -1, 2 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.WarmupFraction = 1 },
	}
	for i, mutate := range mutations {
		cfg := baseConfig(t)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDeterministic(t *testing.T) {
	cfg := baseConfig(t)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.PushBroadcasts != b.PushBroadcasts || a.PullTransmissions != b.PullTransmissions {
		t.Fatal("identical runs diverged")
	}
	for c := range a.PerClass {
		if a.PerClass[c].Delay.Mean() != b.PerClass[c].Delay.Mean() {
			t.Fatal("per-class delays diverged")
		}
	}
}

// With one push and one pull channel at half rate each, the system should be
// in the same performance regime as the single-channel alternating server
// (each spends half its capacity per subsystem) — not identical, but the
// same order of magnitude and the same class ordering.
func TestOneOneComparableToSingleChannel(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Alpha = 0.25
	cfg.Horizon = 20000
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	single, err := core.Run(core.Config{
		Catalog:        cfg.Catalog,
		Classes:        cfg.Classes,
		Lambda:         cfg.Lambda,
		Cutoff:         cfg.Cutoff,
		Alpha:          cfg.Alpha,
		Horizon:        cfg.Horizon,
		WarmupFraction: cfg.WarmupFraction,
		Seed:           cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := m.OverallMeanDelay() / single.OverallMeanDelay()
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("1+1 channels delay %g vs single-channel %g (ratio %g)",
			m.OverallMeanDelay(), single.OverallMeanDelay(), ratio)
	}
	a, b, c := m.PerClass[0].Delay.Mean(), m.PerClass[1].Delay.Mean(), m.PerClass[2].Delay.Mean()
	if !(a < b && b < c) {
		t.Fatalf("class ordering broken: %g %g %g", a, b, c)
	}
}

func TestAllRequestsServedEventually(t *testing.T) {
	cfg := baseConfig(t)
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c, cm := range m.PerClass {
		if cm.Served == 0 {
			t.Fatalf("class %d served nothing", c)
		}
		if cm.Served > cm.Arrivals {
			t.Fatalf("class %d served %d > arrivals %d", c, cm.Served, cm.Arrivals)
		}
		if float64(cm.Served)/float64(cm.Arrivals) < 0.85 {
			t.Fatalf("class %d served only %d/%d", c, cm.Served, cm.Arrivals)
		}
	}
}

func TestPurePushMultiChannel(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Cutoff = cfg.Catalog.D()
	cfg.PushChannels = 4
	cfg.PullChannels = 0
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.PullTransmissions != 0 {
		t.Fatal("pure push had pull transmissions")
	}
	if m.PushBroadcasts == 0 {
		t.Fatal("no broadcasts")
	}
}

func TestPurePullMultiChannel(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Cutoff = 0
	cfg.PushChannels = 0
	cfg.PullChannels = 3
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.PushBroadcasts != 0 {
		t.Fatal("pure pull had push broadcasts")
	}
	if m.PullTransmissions == 0 {
		t.Fatal("no pull transmissions")
	}
}

func TestMorePushChannelsShortenPushDelay(t *testing.T) {
	// Fixed 4 channels total; compare push-delay with 1 vs 3 push channels.
	// More push channels shorten each partition's cycle (fewer items per
	// channel), so push waiters catch their item sooner even at reduced
	// per-channel rate: cycle = (K/P)·L̄/rate = K·L̄·(P+pull)/P.
	run := func(pushCh, pullCh int) float64 {
		cfg := baseConfig(t)
		cfg.PushChannels = pushCh
		cfg.PullChannels = pullCh
		cfg.Horizon = 20000
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Pool push delays across classes.
		var sum float64
		var n int64
		for _, cm := range m.PerClass {
			if cm.PushDelay.N() > 0 {
				sum += cm.PushDelay.Mean() * float64(cm.PushDelay.N())
				n += cm.PushDelay.N()
			}
		}
		return sum / float64(n)
	}
	onePush := run(1, 3)
	threePush := run(3, 1)
	if threePush >= onePush {
		t.Fatalf("3 push channels (%g) not faster for push items than 1 (%g)", threePush, onePush)
	}
}

func TestMetricsAggregation(t *testing.T) {
	m := &Metrics{PerClass: []*core.ClassMetrics{{Class: 0, Weight: 3}}}
	if !math.IsNaN(m.OverallMeanDelay()) {
		t.Fatal("empty overall delay not NaN")
	}
	if m.TotalCost() != 0 {
		t.Fatal("empty total cost not 0")
	}
}

func TestCustomPullPolicy(t *testing.T) {
	cfg := baseConfig(t)
	cfg.PullPolicy = sched.RxW{}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.PullTransmissions == 0 {
		t.Fatal("RxW policy served nothing")
	}
}

// TestPropertyRandomSplitsInvariants fuzzes channel splits and checks the
// core invariants hold for any of them.
func TestPropertyRandomSplitsInvariants(t *testing.T) {
	base := baseConfig(t)
	base.Horizon = 800
	for seed := uint64(0); seed < 12; seed++ {
		for _, split := range [][2]int{{1, 1}, {1, 3}, {2, 2}, {3, 1}, {4, 4}} {
			cfg := base
			cfg.Seed = seed
			cfg.PushChannels, cfg.PullChannels = split[0], split[1]
			m, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed %d split %v: %v", seed, split, err)
			}
			for c, cm := range m.PerClass {
				if cm.Served > cm.Arrivals {
					t.Fatalf("seed %d split %v class %d: served %d > arrivals %d",
						seed, split, c, cm.Served, cm.Arrivals)
				}
				if cm.Delay.N() > 0 && cm.Delay.Min() < 0 {
					t.Fatalf("negative delay")
				}
			}
		}
	}
}
