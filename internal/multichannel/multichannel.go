// Package multichannel extends the hybrid scheduler from the paper's single
// broadcast channel to a multi-channel downlink — the extension the
// broadcast-allocation literature the paper cites (Lee & Lo, MONET 2003)
// studies. The total downlink capacity is held FIXED: with n channels each
// runs at rate 1/n, so transmitting an item of length L occupies one channel
// for n·L broadcast units. The push set is partitioned across the push
// channels (round-robin by rank) and each partition cycles independently;
// the pull channels share one importance-factor queue and each serves the
// best entry whenever it goes idle.
//
// The interesting question — reproduced by experiments.ExtChannels — is how
// to split a fixed number of channels between push and pull: more pull
// channels drain the on-demand queue in parallel but stretch every
// transmission (and the push cycle) by the rate penalty.
package multichannel

import (
	"fmt"
	"math"

	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/core"
	"hybridqos/internal/event"
	"hybridqos/internal/pullqueue"
	"hybridqos/internal/rng"
	"hybridqos/internal/sched"
)

// Config parameterises a multi-channel run.
type Config struct {
	// Catalog is the item database (required).
	Catalog *catalog.Catalog
	// Classes is the service classification (required).
	Classes *clients.Classification
	// Lambda is the aggregate Poisson request rate.
	Lambda float64
	// Cutoff is K; items 1..K are pushed.
	Cutoff int
	// Alpha is the importance-factor mixing fraction.
	Alpha float64
	// PullPolicy optionally replaces the importance-factor policy (nil =
	// the paper's γ at Alpha).
	PullPolicy sched.PullPolicy
	// PushChannels and PullChannels split the downlink. PushChannels must
	// be ≥ 1 when Cutoff ≥ 1; PullChannels must be ≥ 1 when Cutoff < D.
	PushChannels, PullChannels int
	// Horizon is the simulated duration in broadcast units.
	Horizon float64
	// WarmupFraction of the horizon is discarded from statistics.
	WarmupFraction float64
	// Seed drives all randomness.
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Catalog == nil {
		return fmt.Errorf("multichannel: nil catalog")
	}
	if c.Classes == nil {
		return fmt.Errorf("multichannel: nil classification")
	}
	if c.Lambda <= 0 || math.IsNaN(c.Lambda) || math.IsInf(c.Lambda, 0) {
		return fmt.Errorf("multichannel: invalid lambda %g", c.Lambda)
	}
	if c.Cutoff < 0 || c.Cutoff > c.Catalog.D() {
		return fmt.Errorf("multichannel: cutoff %d out of [0,%d]", c.Cutoff, c.Catalog.D())
	}
	if c.Alpha < 0 || c.Alpha > 1 || math.IsNaN(c.Alpha) {
		return fmt.Errorf("multichannel: alpha %g outside [0,1]", c.Alpha)
	}
	if c.PushChannels < 0 || c.PullChannels < 0 {
		return fmt.Errorf("multichannel: negative channel counts %d/%d", c.PushChannels, c.PullChannels)
	}
	if c.Cutoff >= 1 && c.PushChannels < 1 {
		return fmt.Errorf("multichannel: cutoff %d needs at least one push channel", c.Cutoff)
	}
	if c.Cutoff < c.Catalog.D() && c.PullChannels < 1 {
		return fmt.Errorf("multichannel: pull set non-empty but no pull channels")
	}
	if c.PushChannels+c.PullChannels < 1 {
		return fmt.Errorf("multichannel: no channels at all")
	}
	if c.Cutoff >= 1 && c.PushChannels > c.Cutoff {
		return fmt.Errorf("multichannel: %d push channels for %d push items", c.PushChannels, c.Cutoff)
	}
	if c.Horizon <= 0 || math.IsNaN(c.Horizon) || math.IsInf(c.Horizon, 0) {
		return fmt.Errorf("multichannel: invalid horizon %g", c.Horizon)
	}
	if c.WarmupFraction < 0 || c.WarmupFraction >= 1 || math.IsNaN(c.WarmupFraction) {
		return fmt.Errorf("multichannel: warmup fraction %g", c.WarmupFraction)
	}
	return nil
}

// Metrics reuses the single-channel per-class collectors.
type Metrics struct {
	// PerClass holds one entry per class.
	PerClass []*core.ClassMetrics
	// PushBroadcasts and PullTransmissions count completed transmissions
	// across all channels.
	PushBroadcasts, PullTransmissions int64
	// Horizon echoes the run length.
	Horizon float64
}

// OverallMeanDelay returns the request-weighted mean access time.
func (m *Metrics) OverallMeanDelay() float64 {
	var sum float64
	var n int64
	for _, cm := range m.PerClass {
		if cm.Delay.N() > 0 {
			sum += cm.Delay.Mean() * float64(cm.Delay.N())
			n += cm.Delay.N()
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// TotalCost returns Σ_c q_c·mean delay_c.
func (m *Metrics) TotalCost() float64 {
	sum := 0.0
	for _, cm := range m.PerClass {
		if cm.Delay.N() > 0 {
			sum += cm.Cost()
		}
	}
	return sum
}

type pushWaiter struct {
	class   clients.Class
	arrival float64
}

// server is the multi-channel runtime.
type server struct {
	cfg       Config
	sim       *event.Simulator
	arrRng    *rng.Source
	itemRng   *rng.Source
	classRng  *rng.Source
	rate      float64 // per-channel rate = 1/(PushChannels+PullChannels)
	pushParts []*sched.FlatRoundRobinPartition
	selector  sched.Selector
	waiters   map[int][]pushWaiter
	idlePull  int // number of pull channels currently idle
	warmupEnd float64
	metrics   *Metrics
}

// Run executes one multi-channel simulation.
func Run(cfg Config) (*Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	policy := cfg.PullPolicy
	if policy == nil {
		p, err := sched.NewImportanceFactor(cfg.Alpha)
		if err != nil {
			return nil, err
		}
		policy = p
	}
	selector, err := sched.NewSelector(policy)
	if err != nil {
		return nil, err
	}
	s := &server{
		cfg:       cfg,
		sim:       event.New(),
		arrRng:    root.Split("arrivals"),
		itemRng:   root.Split("items"),
		classRng:  root.Split("classes"),
		rate:      1 / float64(cfg.PushChannels+cfg.PullChannels),
		selector:  selector,
		waiters:   make(map[int][]pushWaiter),
		warmupEnd: cfg.Horizon * cfg.WarmupFraction,
		metrics:   &Metrics{Horizon: cfg.Horizon},
	}
	for c := 0; c < cfg.Classes.NumClasses(); c++ {
		s.metrics.PerClass = append(s.metrics.PerClass, &core.ClassMetrics{
			Class:  clients.Class(c),
			Weight: cfg.Classes.Weight(clients.Class(c)),
		})
	}
	// Partition the push set: channel p owns ranks p+1, p+1+P, ...
	if cfg.Cutoff >= 1 {
		for p := 0; p < cfg.PushChannels; p++ {
			var ranks []int
			for r := p + 1; r <= cfg.Cutoff; r += cfg.PushChannels {
				ranks = append(ranks, r)
			}
			part, err := sched.NewFlatRoundRobinPartition(ranks)
			if err != nil {
				return nil, err
			}
			s.pushParts = append(s.pushParts, part)
		}
	}

	s.scheduleNextArrival()
	for _, part := range s.pushParts {
		s.startPush(part)
	}
	s.idlePull = cfg.PullChannels
	s.sim.RunUntil(cfg.Horizon)
	return s.metrics, nil
}

func (s *server) scheduleNextArrival() {
	t := s.sim.Now() + s.arrRng.Exp(s.cfg.Lambda)
	if t > s.cfg.Horizon {
		return
	}
	s.sim.At(t, func() {
		s.handleArrival()
		s.scheduleNextArrival()
	})
}

func (s *server) handleArrival() {
	now := s.sim.Now()
	rank := s.cfg.Catalog.SampleRank(s.itemRng)
	class := s.cfg.Classes.SampleClass(s.classRng)
	if now >= s.warmupEnd {
		s.metrics.PerClass[class].Arrivals++
	}
	if rank <= s.cfg.Cutoff {
		s.waiters[rank] = append(s.waiters[rank], pushWaiter{class: class, arrival: now})
		return
	}
	s.selector.Add(pullqueue.Request{
		Item:     rank,
		Class:    class,
		Priority: s.cfg.Classes.Weight(class),
		Arrival:  now,
	}, s.cfg.Catalog.Length(rank))
	if s.idlePull > 0 {
		s.idlePull--
		s.servePull()
	}
}

// startPush runs one push channel's next broadcast; transmission time is
// L/rate on the fractional channel.
func (s *server) startPush(part *sched.FlatRoundRobinPartition) {
	item := part.Next()
	duration := s.cfg.Catalog.Length(item) / s.rate
	s.sim.After(duration, func() {
		now := s.sim.Now()
		s.metrics.PushBroadcasts++
		for _, w := range s.waiters[item] {
			s.record(w.class, w.arrival, now, true)
		}
		delete(s.waiters, item)
		s.startPush(part)
	})
}

// servePull serves the current best pull entry on a free pull channel.
func (s *server) servePull() {
	entry := s.selector.ExtractBest(s.sim.Now())
	if entry == nil {
		s.idlePull++
		return
	}
	duration := entry.Length / s.rate
	s.sim.After(duration, func() {
		now := s.sim.Now()
		s.metrics.PullTransmissions++
		for _, r := range entry.Requests {
			s.record(r.Class, r.Arrival, now, false)
		}
		s.servePull()
	})
}

func (s *server) record(class clients.Class, arrival, completion float64, push bool) {
	if arrival < s.warmupEnd {
		return
	}
	cm := s.metrics.PerClass[class]
	d := completion - arrival
	cm.Served++
	cm.Delay.Add(d)
	cm.DelayHist.Add(d)
	if push {
		cm.PushDelay.Add(d)
	} else {
		cm.PullDelay.Add(d)
	}
}
