package admission

import (
	"strings"
	"testing"

	"hybridqos/internal/faults"
)

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRateLimitBurstAndRefillBoundaries(t *testing.T) {
	c := mustNew(t, Config{
		Classes:         []ClassConfig{{Rate: 1, Burst: 3}},
		DefaultDeadline: 10,
	})
	// The bucket starts full: exactly Burst requests pass at t=0.
	for i := 0; i < 3; i++ {
		if v := c.Admit(0, 0, 0); v != Admitted {
			t.Fatalf("burst request %d: %v", i, v)
		}
	}
	if v := c.Admit(0, 0, 0); v != RateLimited {
		t.Fatalf("request past the burst: %v, want rate_limited", v)
	}
	// Refill boundary: at rate 1/unit, one token exists exactly at t=1.
	if v := c.Admit(0.999, 0, 0); v != RateLimited {
		t.Fatalf("at t=0.999: %v, want rate_limited", v)
	}
	if v := c.Admit(1, 0, 0); v != Admitted {
		t.Fatalf("at t=1: %v, want admitted", v)
	}
	if v := c.Admit(1, 0, 0); v != RateLimited {
		t.Fatalf("second request at t=1: %v, want rate_limited", v)
	}
	// The bucket never overfills past Burst, however long the idle gap.
	for i := 0; i < 3; i++ {
		if v := c.Admit(1000, 0, 0); v != Admitted {
			t.Fatalf("post-idle request %d: %v", i, v)
		}
	}
	if v := c.Admit(1000, 0, 0); v != RateLimited {
		t.Fatalf("request past the refilled burst: %v, want rate_limited", v)
	}
}

func TestQuotaExhaustionAndRecovery(t *testing.T) {
	c := mustNew(t, Config{
		Classes:         []ClassConfig{{MaxPending: 2}},
		DefaultDeadline: 10,
	})
	if c.Admit(0, 0, 0) != Admitted || c.Admit(0, 0, 0) != Admitted {
		t.Fatal("quota slots not granted")
	}
	if v := c.Admit(0, 0, 0); v != QuotaExceeded {
		t.Fatalf("third in-flight request: %v, want quota_exceeded", v)
	}
	c.Release(0)
	if v := c.Admit(0, 0, 0); v != Admitted {
		t.Fatalf("after Release: %v, want admitted", v)
	}
	if got := c.Pending(0); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
}

func TestShedOverloadDegradesLowestClassFirst(t *testing.T) {
	c := mustNew(t, Config{
		Classes:         []ClassConfig{{}, {}, {}},
		Shed:            &faults.ShedConfig{High: 10, Low: 2, MaxShedClasses: 2},
		DefaultDeadline: 10,
	})
	// Below the high-water mark everyone passes.
	for class := 0; class < 3; class++ {
		if v := c.Admit(0, class, 5); v != Admitted {
			t.Fatalf("class %d under light load: %v", class, v)
		}
	}
	// First high-water crossing sheds exactly the bottom class.
	if v := c.Admit(0, 2, 10); v != ShedOverload {
		t.Fatalf("class 2 at high water: %v, want shed_overload", v)
	}
	if v := c.Admit(0, 1, 9); v != Admitted {
		t.Fatalf("class 1 at level 1: %v, want admitted", v)
	}
	// Second crossing sheds class 1 too; class 0 is never shed.
	if v := c.Admit(0, 1, 12); v != ShedOverload {
		t.Fatalf("class 1 after second crossing: %v, want shed_overload", v)
	}
	if c.ShedLevel() != 2 {
		t.Fatalf("ShedLevel = %d, want 2", c.ShedLevel())
	}
	if v := c.Admit(0, 0, 12); v != Admitted {
		t.Fatalf("class 0 under full shedding: %v, want admitted", v)
	}
	// Hysteresis: load between the watermarks holds the level.
	if v := c.Admit(0, 2, 5); v != ShedOverload {
		t.Fatalf("class 2 between watermarks: %v, want shed_overload", v)
	}
	// Recovery, one class per low-water crossing.
	if v := c.Admit(0, 1, 2); v != Admitted {
		t.Fatalf("class 1 after first recovery: %v, want admitted", v)
	}
	if v := c.Admit(0, 2, 2); v != Admitted {
		t.Fatalf("class 2 after second recovery: %v, want admitted", v)
	}
	if c.ShedLevel() != 0 {
		t.Fatalf("ShedLevel = %d after recovery, want 0", c.ShedLevel())
	}
}

// TestShedBeforeQuotaBeforeRate pins the gate order: a shed or quota refusal
// must not spend a rate token.
func TestShedBeforeQuotaBeforeRate(t *testing.T) {
	c := mustNew(t, Config{
		Classes:         []ClassConfig{{}, {Rate: 1, Burst: 1, MaxPending: 1}},
		Shed:            &faults.ShedConfig{High: 10, Low: 2, MaxShedClasses: 1},
		DefaultDeadline: 10,
	})
	// Shed refusals leave the bucket full.
	for i := 0; i < 5; i++ {
		if v := c.Admit(0, 1, 10); v != ShedOverload {
			t.Fatalf("shed refusal %d: %v", i, v)
		}
	}
	// Recover, then the single token is still there.
	if v := c.Admit(0, 1, 0); v != Admitted {
		t.Fatalf("post-recovery admit: %v (the shed refusals spent tokens?)", v)
	}
	// Quota refusals (slot still held) leave the bucket state alone too.
	for i := 0; i < 5; i++ {
		if v := c.Admit(100, 1, 0); v != QuotaExceeded {
			t.Fatalf("quota refusal %d: %v", i, v)
		}
	}
	c.Release(1)
	if v := c.Admit(100, 1, 0); v != Admitted {
		t.Fatalf("admit after quota release: %v (the quota refusals spent tokens?)", v)
	}
}

func TestDeadlineDefaultsAndOverrides(t *testing.T) {
	c := mustNew(t, Config{
		Classes:         []ClassConfig{{Deadline: 4}, {}},
		DefaultDeadline: 9,
	})
	if got := c.Deadline(0); got != 4 {
		t.Fatalf("class 0 deadline = %g, want 4", got)
	}
	if got := c.Deadline(1); got != 9 {
		t.Fatalf("class 1 deadline = %g, want 9 (the default)", got)
	}
}

func TestDecisionsCounters(t *testing.T) {
	c := mustNew(t, Config{
		Classes:         []ClassConfig{{Rate: 1, Burst: 1}},
		DefaultDeadline: 10,
	})
	c.Admit(0, 0, 0)
	c.Admit(0, 0, 0)
	c.Admit(0, 0, 0)
	if got := c.Decisions(0, Admitted); got != 1 {
		t.Errorf("Decisions(admitted) = %d, want 1", got)
	}
	if got := c.Decisions(0, RateLimited); got != 2 {
		t.Errorf("Decisions(rate_limited) = %d, want 2", got)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no classes", Config{DefaultDeadline: 1}},
		{"zero deadline", Config{Classes: []ClassConfig{{}}}},
		{"negative rate", Config{Classes: []ClassConfig{{Rate: -1}}, DefaultDeadline: 1}},
		{"fractional burst", Config{Classes: []ClassConfig{{Rate: 1, Burst: 0.5}}, DefaultDeadline: 1}},
		{"negative quota", Config{Classes: []ClassConfig{{MaxPending: -1}}, DefaultDeadline: 1}},
		{"negative class deadline", Config{Classes: []ClassConfig{{Deadline: -2}}, DefaultDeadline: 1}},
		{"bad shed marks", Config{
			Classes:         []ClassConfig{{}},
			Shed:            &faults.ShedConfig{High: 5, Low: 5},
			DefaultDeadline: 1,
		}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New succeeded", tc.name)
		}
	}
}

func TestReleaseWithoutAdmitPanics(t *testing.T) {
	c := mustNew(t, Config{Classes: []ClassConfig{{}}, DefaultDeadline: 1})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Release without a pending request did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.HasPrefix(msg, "admission: ") {
			t.Fatalf("panic %v lacks the package prefix", r)
		}
	}()
	c.Release(0)
}

func TestVerdictStrings(t *testing.T) {
	want := map[Verdict]string{
		Admitted:      "admitted",
		ShedOverload:  "shed_overload",
		QuotaExceeded: "quota_exceeded",
		RateLimited:   "rate_limited",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(v), v.String(), s)
		}
	}
}
