// Package admission is the serving mode's class-aware front door. Every
// request passes three gates, cheapest-refusal first:
//
//  1. Overload shedding — a faults.Shedder hysteresis controller watches the
//     engine's pending load and, past the high-water mark, refuses the
//     lowest-priority classes first (class 0 is never shed).
//  2. Pending quota — each class holds at most MaxPending requests in
//     flight; the slot is returned by Release when the request reaches a
//     terminal outcome.
//  3. Rate limit — a per-class token bucket (the uplink.TokenBucket shape:
//     Rate tokens per broadcast unit, Burst depth) paces sustained arrival.
//
// The order matters: a request the shedder or quota refuses never spends a
// token, so rate capacity is not consumed by traffic that was doomed anyway.
//
// The controller is deliberately clock-free — Admit takes the current time
// as an argument — so the same code runs under the simulator's virtual clock
// in tests and the wall clock in cmd/qosd.
package admission

import (
	"fmt"
	"math"

	"hybridqos/internal/faults"
	"hybridqos/internal/uplink"
)

// Verdict is the outcome of one admission decision.
type Verdict int

const (
	// Admitted: the request may enter the engine. The caller owes a Release
	// for the class when the request reaches a terminal outcome.
	Admitted Verdict = iota
	// ShedOverload: refused by the hysteresis shedder; the system is past
	// its high-water mark and this class is currently being degraded.
	ShedOverload
	// QuotaExceeded: the class already has MaxPending requests in flight.
	QuotaExceeded
	// RateLimited: the class's token bucket is empty.
	RateLimited
)

// String names the verdict for logs and metrics.
func (v Verdict) String() string {
	switch v {
	case Admitted:
		return "admitted"
	case ShedOverload:
		return "shed_overload"
	case QuotaExceeded:
		return "quota_exceeded"
	case RateLimited:
		return "rate_limited"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// ClassConfig bounds one class. The zero value is fully open: no rate
// limit, no quota, the controller-wide default deadline.
type ClassConfig struct {
	// Rate is the sustained admission rate in requests per broadcast unit;
	// 0 disables rate limiting for the class.
	Rate float64
	// Burst is the token-bucket depth (>= 1 when Rate is set); 0 with a
	// non-zero Rate defaults to 1 (no burst allowance).
	Burst float64
	// MaxPending caps the class's in-flight requests; 0 means unlimited.
	MaxPending int
	// Deadline is the class's delay budget in broadcast units; 0 inherits
	// the controller's DefaultDeadline.
	Deadline float64
}

// Config parameterises a Controller.
type Config struct {
	// Classes holds one entry per class, index = class id (0 = highest
	// priority). Must be non-empty.
	Classes []ClassConfig
	// Shed enables overload shedding when non-nil; validated against
	// len(Classes).
	Shed *faults.ShedConfig
	// DefaultDeadline is the delay budget for classes that do not set their
	// own. Must be positive and finite: deadlines are what bound drain time.
	DefaultDeadline float64
}

// Validate audits the configuration without building anything.
func (c Config) Validate() error {
	if len(c.Classes) == 0 {
		return fmt.Errorf("admission: no classes configured")
	}
	if !(c.DefaultDeadline > 0) || math.IsInf(c.DefaultDeadline, 0) {
		return fmt.Errorf("admission: default deadline %g not positive and finite", c.DefaultDeadline)
	}
	for i, cc := range c.Classes {
		if cc.Rate < 0 || math.IsNaN(cc.Rate) || math.IsInf(cc.Rate, 0) {
			return fmt.Errorf("admission: class %d rate %g invalid", i, cc.Rate)
		}
		if cc.Rate > 0 && cc.Burst != 0 && (cc.Burst < 1 || math.IsNaN(cc.Burst) || math.IsInf(cc.Burst, 0)) {
			return fmt.Errorf("admission: class %d burst %g below 1", i, cc.Burst)
		}
		if cc.MaxPending < 0 {
			return fmt.Errorf("admission: class %d max pending %d negative", i, cc.MaxPending)
		}
		if cc.Deadline < 0 || math.IsNaN(cc.Deadline) || math.IsInf(cc.Deadline, 0) {
			return fmt.Errorf("admission: class %d deadline %g invalid", i, cc.Deadline)
		}
	}
	if c.Shed != nil {
		if err := c.Shed.Validate(len(c.Classes)); err != nil {
			return err
		}
	}
	return nil
}

// classState is one class's runtime gates.
type classState struct {
	bucket     *uplink.TokenBucket // nil = no rate limit
	maxPending int                 // 0 = unlimited
	pending    int
	deadline   float64
}

// Controller applies the three admission gates. It is single-goroutine,
// like everything else that hangs off a Clock.
type Controller struct {
	classes []classState
	shedder *faults.Shedder // nil = shedding disabled

	// Decisions counts verdicts per class, indexed [class][verdict].
	decisions [][4]int64
}

// New validates cfg and builds an idle controller with full buckets.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctl := &Controller{
		classes:   make([]classState, len(cfg.Classes)),
		decisions: make([][4]int64, len(cfg.Classes)),
	}
	for i, cc := range cfg.Classes {
		st := &ctl.classes[i]
		st.maxPending = cc.MaxPending
		st.deadline = cc.Deadline
		if st.deadline == 0 {
			st.deadline = cfg.DefaultDeadline
		}
		if cc.Rate > 0 {
			burst := cc.Burst
			if burst == 0 {
				burst = 1
			}
			b, err := uplink.NewTokenBucket(cc.Rate, burst)
			if err != nil {
				return nil, err
			}
			st.bucket = b
		}
	}
	if cfg.Shed != nil {
		sh, err := faults.NewShedder(*cfg.Shed, len(cfg.Classes))
		if err != nil {
			return nil, err
		}
		ctl.shedder = sh
	}
	return ctl, nil
}

// NumClasses returns the number of configured classes.
func (c *Controller) NumClasses() int { return len(c.classes) }

// Admit runs one request of the given class through the gates. now is the
// current time in broadcast units; load is the engine's pending load (what
// the shedder's watermarks are calibrated against). On Admitted the class's
// pending count rises and the caller owes a Release.
func (c *Controller) Admit(now float64, class int, load int) Verdict {
	st := c.class(class)
	v := c.decide(now, class, st, load)
	c.decisions[class][v]++
	if v == Admitted {
		st.pending++
	}
	return v
}

func (c *Controller) decide(now float64, class int, st *classState, load int) Verdict {
	if c.shedder != nil && !c.shedder.Admit(load, class) {
		return ShedOverload
	}
	if st.maxPending > 0 && st.pending >= st.maxPending {
		return QuotaExceeded
	}
	if st.bucket != nil && !st.bucket.TryRequest(now, nil) {
		return RateLimited
	}
	return Admitted
}

// Release returns an admitted request's quota slot. Call it exactly once
// per Admitted verdict, when the request reaches a terminal outcome (served,
// expired, or dropped at shutdown).
func (c *Controller) Release(class int) {
	st := c.class(class)
	if st.pending == 0 {
		panic(fmt.Sprintf("admission: Release of class %d with no pending requests", class))
	}
	st.pending--
}

// Deadline returns the class's delay budget in broadcast units.
func (c *Controller) Deadline(class int) float64 { return c.class(class).deadline }

// Pending returns the class's in-flight request count.
func (c *Controller) Pending(class int) int { return c.class(class).pending }

// ShedLevel returns the shedder's current level (0 when shedding is
// disabled): the number of lowest-priority classes being refused.
func (c *Controller) ShedLevel() int {
	if c.shedder == nil {
		return 0
	}
	return c.shedder.Level()
}

// Decisions returns how many times the class received the verdict.
func (c *Controller) Decisions(class int, v Verdict) int64 {
	if v < Admitted || v > RateLimited {
		panic(fmt.Sprintf("admission: unknown verdict %d", int(v)))
	}
	c.class(class) // bounds check with the standard panic message
	return c.decisions[class][v]
}

func (c *Controller) class(class int) *classState {
	if class < 0 || class >= len(c.classes) {
		panic(fmt.Sprintf("admission: class %d outside [0,%d)", class, len(c.classes)))
	}
	return &c.classes[class]
}
