package core_test

import (
	"testing"

	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/core"
	"hybridqos/internal/faults"
	"hybridqos/internal/trace"
)

func cellBase(t *testing.T) core.Config {
	t.Helper()
	cat, err := catalog.Generate(catalog.Config{
		D: 100, Theta: 0.6, MinLen: 1, MaxLen: 5,
		LengthWeights: catalog.PaperLengthWeights(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := clients.New(clients.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{
		Catalog: cat, Classes: cl, Lambda: 5, Cutoff: 40, Alpha: 0.5,
		Horizon: 400, Seed: 11,
	}
}

// The split lifecycle must reproduce Run bit-for-bit regardless of how the
// horizon is segmented — the cell refactor's core contract.
func TestCellLifecycleMatchesRun(t *testing.T) {
	ref, err := core.New(cellBase(t))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Run()
	srv, err := core.New(cellBase(t))
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	for _, barrier := range []float64{13.5, 100, 100, 250, 399.25, 400} {
		srv.AdvanceTo(barrier)
		if srv.Now() != barrier {
			t.Fatalf("Now()=%g after AdvanceTo(%g)", srv.Now(), barrier)
		}
	}
	got := srv.Finish()
	checkSame := func(name string, a, b int64) {
		if a != b {
			t.Errorf("%s: segmented=%d, run=%d", name, a, b)
		}
	}
	checkSame("push", got.PushBroadcasts, want.PushBroadcasts)
	checkSame("pull", got.PullTransmissions, want.PullTransmissions)
	for i := range want.PerClass {
		checkSame("served", got.PerClass[i].Served, want.PerClass[i].Served)
		checkSame("arrivals", got.PerClass[i].Arrivals, want.PerClass[i].Arrivals)
		if got.PerClass[i].Delay.Mean() != want.PerClass[i].Delay.Mean() {
			t.Errorf("class %d delay mean diverged", i)
		}
	}
}

// A client that roams while its pull request is queued leaves the queue: the
// request is extracted with its class, arrival and retry budget intact, and
// the origin cell books an outbound handoff.
func TestRoamWhilePullQueued(t *testing.T) {
	srv, err := core.New(cellBase(t))
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	srv.AdvanceTo(60)
	before := srv.PendingLoad()
	if before == 0 {
		t.Fatal("no pending load to roam")
	}
	roamers := srv.ExtractRoamers(func() bool { return true })
	if len(roamers) != before {
		t.Fatalf("extracted %d roamers from load %d", len(roamers), before)
	}
	if srv.PendingLoad() != 0 {
		t.Errorf("pending load %d after extracting everyone", srv.PendingLoad())
	}
	sawPull := false
	var out int64
	for _, r := range roamers {
		if !r.Push {
			sawPull = true
			if r.Item <= 40 {
				t.Errorf("queued pull for item %d within the push cutoff", r.Item)
			}
		}
		if r.Arrival < 0 || r.Arrival > 60 {
			t.Errorf("roamer arrival %g outside the run so far", r.Arrival)
		}
	}
	for _, cm := range srv.Peek().PerClass {
		out += cm.HandoffsOut
	}
	if !sawPull {
		t.Error("no queued pull roamed")
	}
	if out != int64(len(roamers)) {
		t.Errorf("HandoffsOut=%d, want %d", out, len(roamers))
	}
}

// A client that roams while waiting on a broadcast (push item, transmission
// possibly mid-air) leaves the waiter list: the broadcast completing later
// must not count it as served.
func TestRoamWhilePushPending(t *testing.T) {
	srv, err := core.New(cellBase(t))
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	// Stop mid-run at a fractional time: broadcasts are back-to-back, so a
	// transmission is in flight and recent arrivals for pushed items wait.
	var roamers []core.Roamer
	for _, barrier := range []float64{10.5, 20.5, 30.5, 40.5, 50.5} {
		srv.AdvanceTo(barrier)
		roamers = srv.ExtractRoamers(func() bool { return true })
		if len(roamers) > 0 {
			break
		}
	}
	sawPush := false
	for _, r := range roamers {
		if r.Push {
			sawPush = true
			if r.Item > 40 {
				t.Errorf("push waiter for item %d beyond the cutoff", r.Item)
			}
		}
	}
	if !sawPush {
		t.Skip("no push waiter pending at any probed barrier")
	}
	served := func() int64 {
		var n int64
		for _, cm := range srv.Peek().PerClass {
			n += cm.Served
		}
		return n
	}
	base := served()
	// Let the in-flight broadcast (length ≤ 5) complete: the departed
	// waiters must not be served by it.
	srv.AdvanceTo(srv.Now() + 5)
	extra := served() - base
	// Only arrivals after the extraction may be served in this window; the
	// roamers themselves are gone. With λ=5 over 5 units, a handful of new
	// arrivals is expected — the regression would be extra ≈ len(roamers)
	// on top of that, so just assert the books: served never includes a
	// roamer (checked via conservation below).
	var out, arr int64
	for _, cm := range srv.Peek().PerClass {
		out += cm.HandoffsOut
		arr += cm.Arrivals
	}
	if out != int64(len(roamers)) {
		t.Errorf("HandoffsOut=%d, want %d", out, len(roamers))
	}
	if served() > arr-out {
		t.Errorf("served=%d exceeds arrivals minus departures (%d-%d): a roamer was served after leaving", served(), arr, out)
	}
	_ = extra
}

// A roamer whose deadline passes in transit is refused at re-attachment:
// Inject reports expiry, books the expired request and a handoff refusal,
// and nothing joins the queue.
func TestDeadlineExpiresInTransit(t *testing.T) {
	cfg := cellBase(t)
	cfg.RequestTTL = 5
	srv, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	srv.AdvanceTo(100)
	load := srv.PendingLoad()
	if out := srv.Inject(50, 1, 90, 0, 0); out != core.InjectExpired {
		t.Fatalf("Inject(arrival=90, TTL=5, now=100) = %v, want InjectExpired", out)
	}
	cm := srv.Peek().PerClass[1]
	if cm.Expired == 0 {
		t.Error("expiry not booked")
	}
	if cm.HandoffRefusals != 1 {
		t.Errorf("HandoffRefusals=%d, want 1", cm.HandoffRefusals)
	}
	if srv.PendingLoad() != load {
		t.Error("expired roamer changed the pending load")
	}
	// Within the deadline the same roamer is accepted — as a pull (rank 50
	// is past the cutoff) with its original arrival preserved.
	if out := srv.Inject(50, 1, 98, 2, 0); out != core.InjectAccepted {
		t.Fatalf("in-deadline Inject = %v, want InjectAccepted", out)
	}
	if srv.PendingLoad() != load+1 {
		t.Error("accepted roamer did not join the queue")
	}
	if cm.HandoffsIn != 1 {
		t.Errorf("HandoffsIn=%d, want 1", cm.HandoffsIn)
	}
}

// An overloaded destination sheds an inbound roamer through the same
// admission controller as local arrivals.
func TestInjectShed(t *testing.T) {
	cfg := cellBase(t)
	cfg.Shed = &faults.ShedConfig{High: 1, Low: 0, MaxShedClasses: 2}
	buf := &trace.Buffer{}
	cfg.Tracer = buf
	srv, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	srv.AdvanceTo(60)
	if srv.Inject(50, 2, 59, 0, 0) != core.InjectShed {
		// The controller needs pending load ≥ High; with the tiny High=1
		// that is near-certain at t=60, but fall back to pushing load up.
		srv.AdvanceTo(120)
		if srv.Inject(50, 2, 119, 0, 0) != core.InjectShed {
			t.Fatal("overloaded cell accepted a low-priority roamer")
		}
	}
	sawRefusal := false
	for _, e := range buf.Events {
		if e.Kind == trace.KindHandoffRefused && e.Reason == "shed" {
			sawRefusal = true
		}
	}
	if !sawRefusal {
		t.Error("no handoff-refused/shed trace event")
	}
	// The top class is never sheddable: the same roamer at class 0 attaches.
	if srv.Inject(50, 0, srv.Now()-1, 0, 0) != core.InjectAccepted {
		t.Error("top-class roamer shed")
	}
}

// A push-side roamer re-attaches as a broadcast waiter and is served by the
// next broadcast of its item, with delay measured from the original arrival.
func TestInjectPushWaiter(t *testing.T) {
	srv, err := core.New(cellBase(t))
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	srv.AdvanceTo(60)
	cm := srv.Peek().PerClass[0]
	servedBefore := cm.Served
	if out := srv.Inject(1, 0, 59, 0, 0); out != core.InjectAccepted {
		t.Fatalf("Inject(rank 1) = %v", out)
	}
	// Rank 1 is broadcast every push cycle; well before the horizon the
	// waiter must have been served.
	srv.AdvanceTo(300)
	if cm.Served <= servedBefore {
		t.Error("injected push waiter never served")
	}
}
