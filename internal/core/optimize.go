package core

import (
	"fmt"
	"math"

	"hybridqos/internal/workpool"
)

// Objective scores a run's metrics; lower is better.
type Objective func(*Metrics) float64

// ByOverallDelay minimises the mean access time across all requests.
func ByOverallDelay(m *Metrics) float64 { return m.OverallMeanDelay() }

// ByTotalCost minimises Σ_c q_c·delay_c, the paper's prioritised cost.
func ByTotalCost(m *Metrics) float64 { return m.TotalCost() }

// ByTopClassDelay minimises the premium class's delay only.
func ByTopClassDelay(m *Metrics) float64 { return m.PerClass[0].MeanDelay() }

// SweepPoint is one cutoff evaluation.
type SweepPoint struct {
	K       int
	Metrics *Metrics
	Value   float64
}

// SweepCutoff runs one simulation per cutoff in [kMin, kMax] stepping by
// step, scoring each with the objective. Every run reuses the base
// configuration (including its seed, so the runs are common-random-number
// coupled — differences between cutoffs are not drowned in sampling noise).
// The cutoffs are evaluated on the shared deterministic work pool; results
// land in index-addressed slots, so the output is bit-identical to a
// sequential sweep.
func SweepCutoff(base Config, kMin, kMax, step int, objective Objective) ([]SweepPoint, error) {
	if base.Catalog == nil {
		return nil, fmt.Errorf("core: nil catalog")
	}
	if kMin < 0 || kMax > base.Catalog.D() || kMin > kMax || step <= 0 {
		return nil, fmt.Errorf("core: invalid sweep [%d,%d] step %d", kMin, kMax, step)
	}
	if objective == nil {
		return nil, fmt.Errorf("core: nil objective")
	}
	ks := make([]int, 0, (kMax-kMin)/step+1)
	for k := kMin; k <= kMax; k += step {
		ks = append(ks, k)
	}
	out := make([]SweepPoint, len(ks))
	err := workpool.Run(len(ks), func(i int) error {
		cfg := base
		cfg.Cutoff = ks[i]
		m, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("core: sweep at K=%d: %w", ks[i], err)
		}
		out[i] = SweepPoint{K: ks[i], Metrics: m, Value: objective(m)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// OptimizeCutoff picks the sweep point with the smallest objective value.
// NaN values (e.g. no served requests) lose to any finite value. This is the
// paper's periodic "execute for different cutoff-points and obtain the
// optimal" step (§3), realised as a simulation sweep; the analytic package
// offers the model-based equivalent.
func OptimizeCutoff(base Config, kMin, kMax, step int, objective Objective) (SweepPoint, error) {
	points, err := SweepCutoff(base, kMin, kMax, step, objective)
	if err != nil {
		return SweepPoint{}, err
	}
	best := points[0]
	for _, p := range points[1:] {
		if better(p.Value, best.Value) {
			best = p
		}
	}
	return best, nil
}

// better reports whether a beats b as an objective value (NaN always loses;
// ties keep the incumbent, i.e. the smaller K).
func better(a, b float64) bool {
	if math.IsNaN(a) {
		return false
	}
	if math.IsNaN(b) {
		return true
	}
	return a < b
}
