package core

import (
	"reflect"
	"testing"

	"hybridqos/internal/faults"
	"hybridqos/internal/trace"
	"hybridqos/internal/uplink"
	"hybridqos/internal/workload"
)

// admitBatchConfig drives the shedder hard with compound-Poisson bursts so
// arrival batches straddle both FreezeBatch outcomes: bursts where the
// hysteresis level is provably frozen (answered by one cached cutoff) and
// bursts that could cross a watermark mid-batch (per-request fallback).
func admitBatchConfig(t *testing.T) (Config, *trace.Counter) {
	t.Helper()
	cfg := baseConfig(t)
	bp, err := workload.NewBatchPoisson(1.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Arrivals = bp
	cfg.RequestTTL = 150
	lm, err := faults.NewBurstLoss(0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Loss = lm
	cfg.Retry = faults.RetryPolicy{MaxAttempts: 3, Base: 1, Multiplier: 2, Max: 20, Jitter: 0.5}
	cfg.Shed = &faults.ShedConfig{High: 25, Low: 10}
	tb, err := uplink.NewTokenBucket(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Uplink = tb
	tr := trace.NewCounter()
	cfg.Tracer = tr
	return cfg, tr
}

// TestBatchedAdmissionMatchesSequential is the differential test for
// beginAdmitBatch: a run answering admission from the per-burst frozen cutoff
// must be bit-identical — metrics and trace tallies — to the same seed run
// with splitAdmitBatches forcing every decision through Shedder.Admit.
func TestBatchedAdmissionMatchesSequential(t *testing.T) {
	run := func(split bool) (*Metrics, map[trace.Kind]int64) {
		cfg, tr := admitBatchConfig(t)
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv.splitAdmitBatches = split
		m := srv.Run()
		kinds := map[trace.Kind]int64{}
		for _, k := range []trace.Kind{trace.KindShed, trace.KindServed, trace.KindRetry, trace.KindArrival} {
			kinds[k] = tr.Count(k)
		}
		return m, kinds
	}
	mBatch, kBatch := run(false)
	mSeq, kSeq := run(true)
	if !reflect.DeepEqual(mBatch, mSeq) {
		t.Fatalf("batched admission diverges from sequential:\nbatched:    %+v\nsequential: %+v", mBatch, mSeq)
	}
	if !reflect.DeepEqual(kBatch, kSeq) {
		t.Fatalf("trace tallies diverge: batched %v vs sequential %v", kBatch, kSeq)
	}
	var shed int64
	for _, pc := range mBatch.PerClass {
		shed += pc.Shed
	}
	if shed == 0 {
		t.Fatal("workload never tripped the shedder; differential test is vacuous")
	}
	if kBatch[trace.KindArrival] == 0 {
		t.Fatal("no arrivals traced")
	}
}
