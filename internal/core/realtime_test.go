package core

import (
	"sort"
	"strings"
	"testing"

	"hybridqos/internal/admission"
	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/clock"
	"hybridqos/internal/faults"
	"hybridqos/internal/telemetry"
)

// rtCatalog builds a unit-length catalog of d items: one item transmits per
// broadcast unit, so capacity is exactly 1 request-batch per unit.
func rtCatalog(t *testing.T, d int) *catalog.Catalog {
	t.Helper()
	cat, err := catalog.Generate(catalog.Config{D: d, Theta: 0.5, MinLen: 1, MaxLen: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func rtClasses(t *testing.T, weights ...float64) *clients.Classification {
	t.Helper()
	cl, err := clients.New(clients.Config{Weights: weights})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// p95 returns the 95th-percentile of xs (nearest-rank).
func p95(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := (len(s)*95 + 99) / 100
	if idx > 0 {
		idx--
	}
	return s[idx]
}

// TestRealtimeOverloadDegradesByClass is the 2x-overload chaos scenario:
// three classes offer twice the channel capacity for a thousand broadcast
// units. Degradation must be class-ordered on BOTH axes — every higher
// class's p95 effective delay (expiries count as the full deadline) and
// refusal rate must be no worse than every lower class's.
func TestRealtimeOverloadDegradesByClass(t *testing.T) {
	const (
		numClasses = 3
		deadline   = 30.0
		horizon    = 1000.0
	)
	v := clock.NewVirtual()
	tele, err := telemetry.New(telemetry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRealtime(RealtimeConfig{
		Catalog:        rtCatalog(t, 300),
		Classes:        rtClasses(t, 4, 2, 1),
		Cutoff:         0,
		PullPolicyName: "priority",
		Clock:          v,
		Admission: admission.Config{
			Classes:         make([]admission.ClassConfig, numClasses),
			Shed:            &faults.ShedConfig{High: 30, Low: 15, MaxShedClasses: 2},
			DefaultDeadline: deadline,
		},
		Telemetry: tele,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()

	type classStats struct {
		submitted, refused, admitted, callbacks int
		effective                               []float64 // served delay, or deadline when expired
	}
	stats := make([]classStats, numClasses)
	// Offered load: one request every 0.5 units (2 per unit against a
	// capacity of 1), round-robin over classes, each class confined to its
	// own hundred-item band so no class rides another's transmissions and —
	// with each item revisited only every 150 units, far past the deadline —
	// requests barely coalesce: the channel is genuinely 2x oversubscribed.
	for k := 0; 0.5*float64(k) < horizon; k++ {
		k := k
		class := k % numClasses
		item := class*100 + (k/numClasses)%100 + 1
		v.At(0.5*float64(k), func() {
			st := &stats[class]
			st.submitted++
			verdict := rt.Submit(RealtimeRequest{
				Item:  item,
				Class: clients.Class(class),
				Done: func(res Result) {
					st.callbacks++
					if res.Outcome == OutcomeServed {
						st.effective = append(st.effective, res.Delay)
					} else {
						st.effective = append(st.effective, deadline)
					}
				},
			})
			if verdict == admission.Admitted {
				st.admitted++
			} else {
				st.refused++
			}
		})
	}
	v.RunUntil(horizon + 2*deadline)

	for c := 0; c < numClasses; c++ {
		st := &stats[c]
		if st.callbacks != st.admitted {
			t.Fatalf("class %d: %d callbacks for %d admitted requests", c, st.callbacks, st.admitted)
		}
		if st.submitted == 0 {
			t.Fatalf("class %d: no load generated", c)
		}
	}
	// The scenario must actually overload: refusals and expiries exist.
	totalRefused := stats[0].refused + stats[1].refused + stats[2].refused
	if totalRefused == 0 {
		t.Fatal("2x overload produced no refusals; the scenario is not stressing admission")
	}
	for c := 0; c+1 < numClasses; c++ {
		hi, lo := &stats[c], &stats[c+1]
		hiP95, loP95 := p95(hi.effective), p95(lo.effective)
		if hiP95 > loP95 {
			t.Errorf("class %d p95 effective delay %g worse than class %d's %g", c, hiP95, c+1, loP95)
		}
		hiRate := float64(hi.refused) / float64(hi.submitted)
		loRate := float64(lo.refused) / float64(lo.submitted)
		if hiRate > loRate {
			t.Errorf("class %d refusal rate %g worse than class %d's %g", c, hiRate, c+1, loRate)
		}
	}
	if stats[0].refused != 0 {
		t.Errorf("class 0 was refused %d times; the highest class is never shed", stats[0].refused)
	}
}

// TestRealtimeBurstCoalesces: a burst of requests for one item rides at
// most two transmissions (one in flight when the burst lands, one for the
// re-pooled remainder).
func TestRealtimeBurstCoalesces(t *testing.T) {
	v := clock.NewVirtual()
	tele, err := telemetry.New(telemetry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRealtime(RealtimeConfig{
		Catalog: rtCatalog(t, 5),
		Classes: rtClasses(t, 2, 1),
		Clock:   v,
		Admission: admission.Config{
			Classes:         make([]admission.ClassConfig, 2),
			DefaultDeadline: 10,
		},
		Telemetry: tele,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	served := 0
	for i := 0; i < 100; i++ {
		verdict := rt.Submit(RealtimeRequest{
			Item:  3,
			Class: clients.Class(i % 2),
			Done: func(res Result) {
				if res.Outcome != OutcomeServed {
					t.Errorf("burst request resolved %v", res.Outcome)
				}
				if res.Delay > 2 {
					t.Errorf("burst delay %g exceeds two transmission lengths", res.Delay)
				}
				served++
			},
		})
		if verdict != admission.Admitted {
			t.Fatalf("burst request %d refused: %v", i, verdict)
		}
	}
	v.RunUntil(10)
	if served != 100 {
		t.Fatalf("served %d of 100 burst requests", served)
	}
	if got := tele.TakeSnapshot(10).Counter(telemetry.MetricPullTx, telemetry.ClassNone); got > 2 {
		t.Errorf("burst used %d pull transmissions, want at most 2", got)
	}
	if rt.Pending() != 0 {
		t.Errorf("Pending = %d after the burst resolved", rt.Pending())
	}
}

// TestRealtimeDeadlineTieFavorsExpiry pins the race the drain guarantee
// depends on: a transmission completing exactly at the deadline loses to
// the expiry timer, so no client ever hears a success after its deadline.
func TestRealtimeDeadlineTieFavorsExpiry(t *testing.T) {
	v := clock.NewVirtual()
	rt, err := NewRealtime(RealtimeConfig{
		Catalog: rtCatalog(t, 3),
		Classes: rtClasses(t, 2, 1),
		Clock:   v,
		Admission: admission.Config{
			Classes:         make([]admission.ClassConfig, 2),
			DefaultDeadline: 10,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	var got *Result
	var at float64
	rt.Submit(RealtimeRequest{
		Item:       1,
		Class:      0,
		DeadlineIn: 1, // item length is exactly 1: completion ties the deadline
		Done: func(res Result) {
			got = &res
			at = v.Now()
		},
	})
	v.RunUntil(5)
	if got == nil {
		t.Fatal("no callback")
	}
	if got.Outcome != OutcomeExpired {
		t.Fatalf("deadline==completion resolved %v, want expired", got.Outcome)
	}
	if at != 1 {
		t.Fatalf("expiry callback at t=%g, want exactly the deadline t=1", at)
	}
}

// TestRealtimeDeadlineStormSkipsDeadEntries: when every queued request has
// already expired, the engine recycles the entries instead of broadcasting
// to nobody.
func TestRealtimeDeadlineStormSkipsDeadEntries(t *testing.T) {
	v := clock.NewVirtual()
	tele, err := telemetry.New(telemetry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRealtime(RealtimeConfig{
		Catalog: rtCatalog(t, 10),
		Classes: rtClasses(t, 2, 1),
		Clock:   v,
		Admission: admission.Config{
			Classes:         make([]admission.ClassConfig, 2),
			DefaultDeadline: 10,
		},
		Telemetry: tele,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	expired := 0
	for i := 0; i < 50; i++ {
		rt.Submit(RealtimeRequest{
			Item:       i%10 + 1,
			Class:      clients.Class(i % 2),
			DeadlineIn: 0.5, // shorter than any transmission can finish except the first
			Done: func(res Result) {
				if v.Now() > 0.5 {
					t.Errorf("callback at t=%g, after the deadline", v.Now())
				}
				expired++
				_ = res
			},
		})
	}
	v.RunUntil(20)
	// The first entry's transmission was in flight before anything expired;
	// every other entry must be recycled untransmitted.
	if got := tele.TakeSnapshot(20).Counter(telemetry.MetricPullTx, telemetry.ClassNone); got != 1 {
		t.Errorf("deadline storm used %d pull transmissions, want 1", got)
	}
	if expired != 50 {
		t.Errorf("%d of 50 storm requests expired", expired)
	}
	if rt.Pending() != 0 {
		t.Errorf("Pending = %d after the storm", rt.Pending())
	}
}

// TestRealtimePushServesWaiters: requests for push-band items wait for the
// broadcast cycle and resolve with Push=true.
func TestRealtimePushServesWaiters(t *testing.T) {
	v := clock.NewVirtual()
	rt, err := NewRealtime(RealtimeConfig{
		Catalog: rtCatalog(t, 4),
		Classes: rtClasses(t, 2, 1),
		Cutoff:  2,
		Clock:   v,
		Admission: admission.Config{
			Classes:         make([]admission.ClassConfig, 2),
			DefaultDeadline: 20,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	var pushServed, pullServed bool
	v.At(0.25, func() {
		rt.Submit(RealtimeRequest{Item: 1, Class: 0, Done: func(res Result) {
			if res.Outcome == OutcomeServed && res.Push {
				pushServed = true
			}
		}})
		rt.Submit(RealtimeRequest{Item: 4, Class: 1, Done: func(res Result) {
			if res.Outcome == OutcomeServed && !res.Push {
				pullServed = true
			}
		}})
	})
	v.RunUntil(20)
	if !pushServed {
		t.Error("push-band request was not served by a broadcast")
	}
	if !pullServed {
		t.Error("pull-band request was not served on demand")
	}
}

// TestRealtimeDrain: mid-storm drain must stop admission, resolve every
// admitted request by its deadline, and report completion exactly once.
func TestRealtimeDrain(t *testing.T) {
	const deadline = 8.0
	v := clock.NewVirtual()
	rt, err := NewRealtime(RealtimeConfig{
		Catalog: rtCatalog(t, 12),
		Classes: rtClasses(t, 4, 2, 1),
		Cutoff:  2,
		Clock:   v,
		Admission: admission.Config{
			Classes:         make([]admission.ClassConfig, 3),
			DefaultDeadline: deadline,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()

	admitted, callbacks := 0, 0
	var lastSubmit float64
	for k := 0; k < 40; k++ {
		k := k
		at := 0.2 * float64(k)
		lastSubmit = at
		v.At(at, func() {
			if rt.Draining() {
				return // the HTTP layer refuses with 503 here
			}
			deadlineAt := v.Now() + deadline
			if rt.Submit(RealtimeRequest{
				Item:  k%12 + 1,
				Class: clients.Class(k % 3),
				Done: func(res Result) {
					callbacks++
					if v.Now() > deadlineAt {
						t.Errorf("callback at t=%g, after its deadline %g", v.Now(), deadlineAt)
					}
				},
			}) == admission.Admitted {
				admitted++
			}
		})
	}

	drained := 0
	var drainedAt float64
	v.At(4, func() {
		rt.Drain(func() {
			drained++
			drainedAt = v.Now()
		})
	})
	v.RunUntil(lastSubmit + 3*deadline)

	if drained != 1 {
		t.Fatalf("onDrained fired %d times", drained)
	}
	if callbacks != admitted {
		t.Fatalf("%d callbacks for %d admitted requests", callbacks, admitted)
	}
	if rt.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", rt.Pending())
	}
	if drainedAt > 4+deadline {
		t.Errorf("drain completed at t=%g, past the deadline bound %g", drainedAt, 4+deadline)
	}
	// A drained engine refuses new work loudly.
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("Submit on a drained engine did not panic")
			} else if msg, ok := r.(string); !ok || !strings.HasPrefix(msg, "core: ") {
				t.Errorf("panic %v lacks the package prefix", r)
			}
		}()
		rt.Submit(RealtimeRequest{Item: 3, Class: 0, Done: func(Result) {}})
	}()
}

// TestRealtimeDrainIdle: draining an idle engine completes synchronously.
func TestRealtimeDrainIdle(t *testing.T) {
	v := clock.NewVirtual()
	rt, err := NewRealtime(RealtimeConfig{
		Catalog: rtCatalog(t, 3),
		Classes: rtClasses(t, 2, 1),
		Clock:   v,
		Admission: admission.Config{
			Classes:         make([]admission.ClassConfig, 2),
			DefaultDeadline: 5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	done := false
	rt.Drain(func() { done = true })
	if !done {
		t.Fatal("idle drain did not complete synchronously")
	}
}

// TestRealtimeQuotaReleasedOnExpiry: expiry returns the quota slot, so a
// class locked at MaxPending recovers once its stuck requests time out.
func TestRealtimeQuotaReleasedOnExpiry(t *testing.T) {
	v := clock.NewVirtual()
	rt, err := NewRealtime(RealtimeConfig{
		Catalog: rtCatalog(t, 6),
		Classes: rtClasses(t, 2, 1),
		Clock:   v,
		Admission: admission.Config{
			Classes:         []admission.ClassConfig{{MaxPending: 2}, {}},
			DefaultDeadline: 3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	outcomes := 0
	submit := func(item int) admission.Verdict {
		return rt.Submit(RealtimeRequest{Item: item, Class: 0, Done: func(Result) { outcomes++ }})
	}
	v.At(0.5, func() {
		// Two slots fill; the transmission in flight (item 1) will serve one.
		if v := submit(2); v != admission.Admitted {
			t.Errorf("first: %v", v)
		}
		if v := submit(3); v != admission.Admitted {
			t.Errorf("second: %v", v)
		}
		if v := submit(4); v != admission.QuotaExceeded {
			t.Errorf("over quota: %v", v)
		}
	})
	v.At(10, func() {
		// Everything resolved (served or expired by t=3.5): slots are back.
		if v := submit(5); v != admission.Admitted {
			t.Errorf("after recovery: %v", v)
		}
	})
	v.RunUntil(30)
	if outcomes != 3 {
		t.Errorf("%d outcomes for 3 admitted requests", outcomes)
	}
}

// TestRealtimeConfigValidation covers the constructor's refusals.
func TestRealtimeConfigValidation(t *testing.T) {
	v := clock.NewVirtual()
	cat := rtCatalog(t, 5)
	cls := rtClasses(t, 2, 1)
	adm := admission.Config{Classes: make([]admission.ClassConfig, 2), DefaultDeadline: 5}
	cases := []struct {
		name string
		cfg  RealtimeConfig
	}{
		{"nil catalog", RealtimeConfig{Classes: cls, Clock: v, Admission: adm}},
		{"nil classes", RealtimeConfig{Catalog: cat, Clock: v, Admission: adm}},
		{"nil clock", RealtimeConfig{Catalog: cat, Classes: cls, Admission: adm}},
		{"bad cutoff", RealtimeConfig{Catalog: cat, Classes: cls, Cutoff: 9, Clock: v, Admission: adm}},
		{"bad alpha", RealtimeConfig{Catalog: cat, Classes: cls, Alpha: 2, Clock: v, Admission: adm}},
		{"class count mismatch", RealtimeConfig{Catalog: cat, Classes: cls, Clock: v,
			Admission: admission.Config{Classes: make([]admission.ClassConfig, 3), DefaultDeadline: 5}}},
		{"bad admission", RealtimeConfig{Catalog: cat, Classes: cls, Clock: v,
			Admission: admission.Config{Classes: make([]admission.ClassConfig, 2)}}},
		{"unknown pull policy", RealtimeConfig{Catalog: cat, Classes: cls, Clock: v,
			PullPolicyName: "no-such-policy", Admission: adm}},
	}
	for _, tc := range cases {
		if _, err := NewRealtime(tc.cfg); err == nil {
			t.Errorf("%s: NewRealtime succeeded", tc.name)
		}
	}
}
