package core

import (
	"math"
	"testing"

	"hybridqos/internal/bandwidth"
	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/sched"
)

func baseConfig(t *testing.T) Config {
	t.Helper()
	cat, err := catalog.Generate(catalog.PaperConfig(0.6, 42))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := clients.New(clients.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Catalog:        cat,
		Classes:        cl,
		Lambda:         5,
		Cutoff:         40,
		Alpha:          0.5,
		Horizon:        5000,
		WarmupFraction: 0.1,
		Seed:           7,
	}
}

func TestConfigValidate(t *testing.T) {
	good := baseConfig(t)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Catalog = nil },
		func(c *Config) { c.Classes = nil },
		func(c *Config) { c.Lambda = 0 },
		func(c *Config) { c.Lambda = math.NaN() },
		func(c *Config) { c.Cutoff = -1 },
		func(c *Config) { c.Cutoff = 101 },
		func(c *Config) { c.Alpha = -0.5 },
		func(c *Config) { c.Alpha = 2 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.WarmupFraction = 1 },
		func(c *Config) { c.WarmupFraction = -0.1 },
		func(c *Config) {
			c.Bandwidth = &bandwidth.Config{Total: 10, Fractions: []float64{0.5, 0.5}, DemandMean: 1}
		}, // wrong class arity
	}
	for i, mutate := range mutations {
		cfg := baseConfig(t)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := baseConfig(t)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.PushBroadcasts != b.PushBroadcasts || a.PullTransmissions != b.PullTransmissions {
		t.Fatalf("transmission counts differ across identical runs: %d/%d vs %d/%d",
			a.PushBroadcasts, a.PullTransmissions, b.PushBroadcasts, b.PullTransmissions)
	}
	for c := range a.PerClass {
		if a.PerClass[c].Served != b.PerClass[c].Served {
			t.Fatalf("class %d served %d vs %d", c, a.PerClass[c].Served, b.PerClass[c].Served)
		}
		if a.PerClass[c].Delay.Mean() != b.PerClass[c].Delay.Mean() {
			t.Fatalf("class %d mean delay differs", c)
		}
	}
}

func TestRunDifferentSeedsDiffer(t *testing.T) {
	cfg := baseConfig(t)
	a, _ := Run(cfg)
	cfg.Seed = 8
	b, _ := Run(cfg)
	if a.PerClass[2].Served == b.PerClass[2].Served && a.PerClass[2].Delay.Mean() == b.PerClass[2].Delay.Mean() {
		t.Fatal("different seeds produced identical metrics")
	}
}

func TestAllRequestsAccounted(t *testing.T) {
	cfg := baseConfig(t)
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c, cm := range m.PerClass {
		if cm.Served+cm.Dropped > cm.Arrivals {
			t.Fatalf("class %d: served %d + dropped %d exceeds arrivals %d",
				c, cm.Served, cm.Dropped, cm.Arrivals)
		}
		// With no bandwidth constraint nothing may drop.
		if cm.Dropped != 0 {
			t.Fatalf("class %d dropped %d without bandwidth constraints", c, cm.Dropped)
		}
		// The vast majority of post-warmup arrivals should complete within
		// the horizon for this stable configuration.
		if cm.Arrivals > 0 && float64(cm.Served)/float64(cm.Arrivals) < 0.9 {
			t.Fatalf("class %d served only %d of %d arrivals", c, cm.Served, cm.Arrivals)
		}
	}
}

func TestClassDelayOrderingWithPriority(t *testing.T) {
	// α=0.25 (strong priority influence): Class-A must beat B must beat C.
	cfg := baseConfig(t)
	cfg.Alpha = 0.25
	cfg.Horizon = 20000
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := m.PerClass[0].PullDelay.Mean()
	b := m.PerClass[1].PullDelay.Mean()
	c := m.PerClass[2].PullDelay.Mean()
	if !(a < b && b < c) {
		t.Fatalf("pull delays not ordered A<B<C: %g %g %g", a, b, c)
	}
}

func TestPushDelaysClassIndependent(t *testing.T) {
	// Push delivery ignores class: per-class push delays should be close.
	cfg := baseConfig(t)
	cfg.Horizon = 20000
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := m.PerClass[0].PushDelay.Mean()
	c := m.PerClass[2].PushDelay.Mean()
	if math.Abs(a-c)/c > 0.15 {
		t.Fatalf("push delays differ by class: %g vs %g", a, c)
	}
	// And should be near half the EFFECTIVE push cycle (the flat rotation
	// stretched by interleaved pull transmissions), measurable from the
	// run's own push-broadcast rate.
	effectiveCycle := float64(cfg.Cutoff) * cfg.Horizon / float64(m.PushBroadcasts)
	half := effectiveCycle / 2
	if m.PerClass[1].PushDelay.Mean() < half*0.8 || m.PerClass[1].PushDelay.Mean() > half*1.3 {
		t.Fatalf("push delay %g implausible for effective half-cycle %g", m.PerClass[1].PushDelay.Mean(), half)
	}
	// The raw flat cycle is a lower bound on the effective cycle.
	if raw := cfg.Catalog.PushCycleLength(cfg.Cutoff); effectiveCycle < raw*0.99 {
		t.Fatalf("effective cycle %g below raw cycle %g", effectiveCycle, raw)
	}
}

func TestPurePushNoPullTransmissions(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Cutoff = cfg.Catalog.D()
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.PullTransmissions != 0 {
		t.Fatalf("pure push run had %d pull transmissions", m.PullTransmissions)
	}
	if m.PushBroadcasts == 0 {
		t.Fatal("no push broadcasts")
	}
	for _, cm := range m.PerClass {
		if cm.PullDelay.N() != 0 {
			t.Fatal("pull delays recorded in pure push mode")
		}
	}
}

func TestPurePullNoPushBroadcasts(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Cutoff = 0
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.PushBroadcasts != 0 {
		t.Fatalf("pure pull run had %d push broadcasts", m.PushBroadcasts)
	}
	if m.PullTransmissions == 0 {
		t.Fatal("no pull transmissions")
	}
	served := int64(0)
	for _, cm := range m.PerClass {
		served += cm.Served
	}
	if served == 0 {
		t.Fatal("pure pull served nothing")
	}
}

func TestBandwidthBlockingDropsRequests(t *testing.T) {
	cfg := baseConfig(t)
	// Tiny bandwidth with high demand: blocking must occur.
	cfg.Bandwidth = &bandwidth.Config{Total: 3, Fractions: []float64{0.34, 0.33, 0.33}, DemandMean: 3}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.BlockedTransmissions == 0 {
		t.Fatal("no blocking under starved bandwidth")
	}
	if m.TotalDropped() == 0 {
		t.Fatal("blocking produced no dropped requests")
	}
	if len(m.Bandwidth) != 3 {
		t.Fatalf("bandwidth stats for %d classes", len(m.Bandwidth))
	}
}

func TestGenerousBandwidthNoBlocking(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Bandwidth = &bandwidth.Config{Total: 1000, Fractions: []float64{0.5, 0.3, 0.2}, DemandMean: 1}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.BlockedTransmissions != 0 {
		t.Fatalf("%d blocked transmissions under generous bandwidth", m.BlockedTransmissions)
	}
}

func TestLargerPremiumShareLowersPremiumDrops(t *testing.T) {
	// Abstract's claim: an appropriate bandwidth fraction keeps premium
	// blocking low.
	run := func(fracA float64) float64 {
		cfg := baseConfig(t)
		rest := (1 - fracA) / 2
		cfg.Bandwidth = &bandwidth.Config{Total: 8, Fractions: []float64{fracA, rest, rest}, DemandMean: 1.5}
		cfg.Horizon = 20000
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m.PerClass[0].DropRate()
	}
	small, large := run(0.2), run(0.7)
	if large > small {
		t.Fatalf("premium drop rate with 70%% share (%g) above 20%% share (%g)", large, small)
	}
}

func TestQueueMetricsPopulated(t *testing.T) {
	cfg := baseConfig(t)
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(m.QueueItems.Mean()) || m.QueueItems.Mean() < 0 {
		t.Fatalf("queue items mean %g", m.QueueItems.Mean())
	}
	if m.QueueRequests.Mean() < m.QueueItems.Mean() {
		t.Fatalf("pending requests %g below distinct items %g", m.QueueRequests.Mean(), m.QueueItems.Mean())
	}
}

func TestAlternationInvariant(t *testing.T) {
	// With K >= 1, every pull transmission is preceded by a push: pull
	// count can never exceed push count (plus one in flight).
	cfg := baseConfig(t)
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.PullTransmissions > m.PushBroadcasts+1 {
		t.Fatalf("pull transmissions %d exceed push broadcasts %d", m.PullTransmissions, m.PushBroadcasts)
	}
}

func TestOverallMeanDelayAggregation(t *testing.T) {
	cfg := baseConfig(t)
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var n int64
	for _, cm := range m.PerClass {
		sum += cm.Delay.Mean() * float64(cm.Delay.N())
		n += cm.Delay.N()
	}
	if math.Abs(m.OverallMeanDelay()-sum/float64(n)) > 1e-9 {
		t.Fatal("OverallMeanDelay aggregation wrong")
	}
	var cost float64
	for _, cm := range m.PerClass {
		cost += cm.Cost()
	}
	if math.Abs(m.TotalCost()-cost) > 1e-9 {
		t.Fatal("TotalCost aggregation wrong")
	}
}

func TestEmptyMetricsNaN(t *testing.T) {
	m := &Metrics{PerClass: []*ClassMetrics{{Class: 0, Weight: 3}}}
	if !math.IsNaN(m.OverallMeanDelay()) {
		t.Fatal("empty metrics overall delay not NaN")
	}
	if m.TotalCost() != 0 {
		t.Fatal("empty metrics cost not 0")
	}
	if m.PerClass[0].DropRate() != 0 {
		t.Fatal("empty drop rate not 0")
	}
}

func TestCustomPullPolicies(t *testing.T) {
	for _, pol := range []sched.PullPolicy{sched.FCFS{}, sched.MRF{}, sched.RxW{}, sched.StretchOptimal{}} {
		cfg := baseConfig(t)
		cfg.PullPolicy = pol
		cfg.Horizon = 2000
		m, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if m.PullTransmissions == 0 {
			t.Fatalf("%s: no pull transmissions", pol.Name())
		}
	}
}

func TestCustomPushScheduler(t *testing.T) {
	cfg := baseConfig(t)
	cfg.PushScheduler = func(cat *catalog.Catalog, k int) (sched.PushScheduler, error) {
		return sched.NewSquareRootRule(cat, k)
	}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.PushBroadcasts == 0 {
		t.Fatal("custom push scheduler never ran")
	}
}

func TestSweepAndOptimizeCutoff(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Horizon = 1500
	points, err := SweepCutoff(cfg, 10, 90, 20, ByOverallDelay)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("%d sweep points", len(points))
	}
	best, err := OptimizeCutoff(cfg, 10, 90, 20, ByOverallDelay)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if !math.IsNaN(p.Value) && p.Value < best.Value {
			t.Fatalf("optimizer missed better point K=%d (%g < %g)", p.K, p.Value, best.Value)
		}
	}
}

func TestSweepErrors(t *testing.T) {
	cfg := baseConfig(t)
	if _, err := SweepCutoff(cfg, -1, 10, 1, ByOverallDelay); err == nil {
		t.Fatal("negative kMin accepted")
	}
	if _, err := SweepCutoff(cfg, 10, 5, 1, ByOverallDelay); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := SweepCutoff(cfg, 0, 10, 0, ByOverallDelay); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := SweepCutoff(cfg, 0, 10, 1, nil); err == nil {
		t.Fatal("nil objective accepted")
	}
	cfg.Catalog = nil
	if _, err := SweepCutoff(cfg, 0, 10, 1, ByOverallDelay); err == nil {
		t.Fatal("nil catalog accepted")
	}
}

func TestBetterHandlesNaN(t *testing.T) {
	if better(math.NaN(), 1) {
		t.Fatal("NaN beat a finite value")
	}
	if !better(1, math.NaN()) {
		t.Fatal("finite value lost to NaN")
	}
	if better(2, 2) {
		t.Fatal("tie replaced incumbent")
	}
}

func TestRetryOnBlockServesMore(t *testing.T) {
	mk := func(retry bool) *Metrics {
		cfg := baseConfig(t)
		cfg.Bandwidth = &bandwidth.Config{Total: 6, Fractions: []float64{0.34, 0.33, 0.33}, DemandMean: 2}
		cfg.RetryOnBlock = retry
		cfg.Horizon = 10000
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain, retry := mk(false), mk(true)
	if retry.PullTransmissions < plain.PullTransmissions {
		t.Fatalf("retry-on-block served fewer pull transmissions (%d) than plain (%d)",
			retry.PullTransmissions, plain.PullTransmissions)
	}
}

func TestByTopClassDelayObjective(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Horizon = 1500
	best, err := OptimizeCutoff(cfg, 20, 80, 30, ByTopClassDelay)
	if err != nil {
		t.Fatal(err)
	}
	points, err := SweepCutoff(cfg, 20, 80, 30, ByTopClassDelay)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Metrics.PerClass[0].MeanDelay() < best.Metrics.PerClass[0].MeanDelay() {
			t.Fatalf("ByTopClassDelay missed K=%d", p.K)
		}
	}
}
