package core

// This file is the cell lifecycle: the re-entrant face of the engine that
// lets a multi-cell cluster (internal/cluster) drive N Servers side by side.
// A cell is simply a Server stepped in segments — Start arms it, AdvanceTo
// runs the event loop to a barrier time, Finish closes the books — plus the
// cross-cell mobility surface: ExtractRoamers pulls pending requests out of
// the cell, Inject re-attaches a roamer that arrived over the backhaul, and
// RefuseHandoff records a roamer the cell turned away. Run (engine.go) is
// Start + AdvanceTo(horizon) + Finish, so single-cell output is bit-identical
// however the engine is driven: nothing executes at a barrier except the
// clock advancing.

import (
	"hybridqos/internal/clients"
	"hybridqos/internal/pullqueue"
	"hybridqos/internal/trace"
)

// Roamer is one pending request extracted from a cell by the client-mobility
// model: the client left mid-request, carrying its service class, original
// arrival time (the deadline budget keeps running in transit) and retry
// attempts already spent.
type Roamer struct {
	// Item is the requested catalog rank in the origin cell's numbering.
	Item int
	// Class is the client's service class.
	Class clients.Class
	// Arrival is the request's original arrival time.
	Arrival float64
	// Attempts counts re-requests already made after corrupted deliveries.
	Attempts int
	// Push reports whether the client was waiting on a broadcast (item rank
	// within the origin cell's push cutoff) rather than a queued pull.
	Push bool
	// Span is the request's span ID when it was head-sampled for span
	// provenance in its origin cell (0 otherwise). It travels with the
	// roamer so the destination cell's span events keep the same ID and
	// cross-cell parent links survive stream merging.
	Span int64
}

// InjectOutcome is the fate of a roamer delivered to a cell.
type InjectOutcome int

// Inject outcomes.
const (
	// InjectAccepted: the request re-attached (push waiter or pull queue).
	InjectAccepted InjectOutcome = iota
	// InjectExpired: the request's deadline passed while in transit.
	InjectExpired
	// InjectShed: the destination's admission controller refused it.
	InjectShed
)

// Start arms the simulation: initial gauge observations, the telemetry
// snapshot chain, the first arrival, and the broadcast loop. It is the first
// third of Run, split out so a cluster can interleave AdvanceTo calls with
// cross-cell exchanges. Call it exactly once, before any AdvanceTo.
func (s *Server) Start() {
	s.observeQueue()
	s.observeBandwidth()
	if s.tele != nil && s.tele.SnapshotEvery() > 0 {
		s.scheduleSnapshot(1)
	}
	s.scheduleNextArrival()
	if s.cutoff > 0 {
		s.startPush()
	} else {
		s.idle = true
	}
}

// AdvanceTo runs the event loop up to simulated time t, clamped to the
// horizon. It is re-entrant: a cluster calls it once per handoff epoch with
// increasing barrier times, and because no simulation code executes at the
// barrier itself, the event trajectory is identical to one uninterrupted
// AdvanceTo(horizon).
func (s *Server) AdvanceTo(t float64) {
	if t > s.cfg.Horizon {
		t = s.cfg.Horizon
	}
	s.vclk.RunUntil(t)
}

// Finish closes the run at the horizon — time-weighted queue means, final
// bandwidth statistics — and returns the metrics. Call it exactly once,
// after the final AdvanceTo reached the horizon.
func (s *Server) Finish() *Metrics {
	s.metrics.QueueItems.MeanAt(s.cfg.Horizon)
	s.metrics.QueueRequests.MeanAt(s.cfg.Horizon)
	if s.alloc != nil {
		for c := 0; c < s.alloc.NumClasses(); c++ {
			s.metrics.Bandwidth = append(s.metrics.Bandwidth, s.alloc.Stats(clients.Class(c)))
		}
	}
	return s.metrics
}

// Now returns the cell's current simulated time.
func (s *Server) Now() float64 { return s.clk.Now() }

// Peek returns the run's live metrics for mid-run observers (cluster
// saturation sampling and barrier snapshots). The returned value is the
// engine's own accumulator: treat it as read-only, and call Finish — not
// Peek — for final results (Finish closes the time-weighted trackers).
func (s *Server) Peek() *Metrics { return s.metrics }

// Horizon returns the cell's configured horizon.
func (s *Server) Horizon() float64 { return s.cfg.Horizon }

// PendingLoad returns the cell's current backlog: queued pull requests,
// booked retries and registered push waiters — the load signal used by
// least-loaded routing and cluster saturation detection.
func (s *Server) PendingLoad() int {
	n := s.selector.Requests() + s.pendingRetries
	for _, ws := range s.pushWaiters {
		n += len(ws)
	}
	return n
}

// ExtractRoamers removes pending requests chosen by roam from the cell and
// returns them in a deterministic order: queued pull requests first (item
// rank ascending, arrival order within an item), then push waiters (rank
// ascending, arrival order within a rank). roam is called once per pending
// request, in exactly that order, so the caller can drive it from its own
// per-cell random stream without perturbing the cell's streams. Requests not
// chosen are re-enqueued unchanged. Requests whose transmission is already
// in flight are not pending and cannot roam — they are about to be served
// (or lost) where they are.
func (s *Server) ExtractRoamers(roam func() bool) []Roamer {
	var out []Roamer
	entries := s.selector.Drain()
	for _, e := range entries {
		for _, r := range e.Requests {
			if roam() {
				out = append(out, Roamer{Item: r.Item, Class: r.Class, Arrival: r.Arrival, Attempts: r.Attempts, Span: r.Tag})
				s.metrics.PerClass[r.Class].HandoffsOut++
				s.spanHandoff(r.Item, r.Class, r.Tag)
			} else {
				s.selector.Add(r, e.Length)
			}
		}
	}
	// Recycling is deferred until every entry's requests are re-added: Add
	// may reuse a freelist entry, and the drained entries' request slices
	// must stay intact while still being read.
	for _, e := range entries {
		s.selector.Recycle(e)
	}
	for rank := 1; rank < len(s.pushWaiters); rank++ {
		ws := s.pushWaiters[rank]
		if len(ws) == 0 {
			continue
		}
		keep := ws[:0]
		for _, w := range ws {
			if roam() {
				out = append(out, Roamer{Item: rank, Class: w.class, Arrival: w.arrival, Push: true, Span: w.span})
				s.metrics.PerClass[w.class].HandoffsOut++
				s.spanHandoff(rank, w.class, w.span)
			} else {
				keep = append(keep, w)
			}
		}
		s.pushWaiters[rank] = keep
	}
	if len(out) > 0 {
		s.observeQueue()
	}
	return out
}

// Inject delivers a roamer to this cell at the current simulated time.
// Unlike handleArrival the request arrives over the inter-cell backhaul, so
// it skips uplink contention — but it still passes admission control, and
// its deadline budget (measured from the original arrival) kept running
// while in transit. Accepted roamers re-attach as a push waiter when the
// item is within this cell's push cutoff, otherwise they join the pull
// queue.
func (s *Server) Inject(item int, class clients.Class, arrival float64, attempts int, span int64) InjectOutcome {
	now := s.clk.Now()
	if s.cfg.RequestTTL > 0 && now > arrival+s.cfg.RequestTTL {
		if arrival >= s.warmupEnd {
			s.metrics.PerClass[class].Expired++
		}
		s.refuseHandoff(item, class, "expired", arrival, span)
		return InjectExpired
	}
	if item <= s.cutoff {
		s.acceptHandoff(item, class)
		s.spanAttach(item, class, span, trace.VerdictPush)
		s.pushWaiters[item] = append(s.pushWaiters[item], pushWaiter{class: class, arrival: arrival, joined: now, client: -1, span: span})
		return InjectAccepted
	}
	if s.shedder != nil {
		load := s.selector.Requests() + s.pendingRetries
		if !s.shedder.Admit(load, int(class)) {
			if arrival >= s.warmupEnd {
				s.metrics.PerClass[class].Shed++
			}
			s.refuseHandoff(item, class, "shed", arrival, span)
			return InjectShed
		}
	}
	s.acceptHandoff(item, class)
	s.spanAttach(item, class, span, trace.VerdictPull)
	s.enqueuePull(pullqueue.Request{
		Item:     item,
		Class:    class,
		Priority: s.cfg.Classes.Weight(class),
		Arrival:  arrival,
		Client:   -1,
		Attempts: attempts,
		Tag:      span,
	})
	return InjectAccepted
}

// ScheduleInject books a handoff injection at simulated time at — the
// roamer's re-attach instant after its transit delay. The done callback (may
// be nil) runs inside the cell's event loop, right after the injection;
// cluster callers use it to tally per-cell outcomes without any cross-cell
// shared state.
func (s *Server) ScheduleInject(at float64, item int, class clients.Class, arrival float64, attempts int, span int64, done func(InjectOutcome)) {
	s.clk.At(at, func() {
		out := s.Inject(item, class, arrival, attempts, span)
		if done != nil {
			done(out)
		}
	})
}

// RefuseHandoff records a roamer this cell turned away without processing:
// reason "no-item" when the item is absent from the cell's catalog, or
// "horizon" when the transit would end past the simulation horizon. (The
// refusals Inject decides itself — "expired", "shed" — book themselves.)
// arrival and span carry the roamer's original arrival and span ID for the
// refusal's span terminal (0s when the roamer is unsampled).
func (s *Server) RefuseHandoff(item int, class clients.Class, reason string, arrival float64, span int64) {
	s.refuseHandoff(item, class, reason, arrival, span)
}

// acceptHandoff books an accepted inbound roamer.
func (s *Server) acceptHandoff(item int, class clients.Class) {
	s.metrics.PerClass[class].HandoffsIn++
	if s.emitOn {
		s.emit(trace.Event{T: s.clk.Now(), Kind: trace.KindHandoff, Item: item, Class: class})
	}
}

// refuseHandoff books a refused inbound roamer. A sampled roamer's span
// terminates here with the refusal taxonomy ("refused-" + reason).
func (s *Server) refuseHandoff(item int, class clients.Class, reason string, arrival float64, span int64) {
	s.metrics.PerClass[class].HandoffRefusals++
	if s.emitOn {
		s.emit(trace.Event{T: s.clk.Now(), Kind: trace.KindHandoffRefused, Item: item, Class: class, Reason: reason})
	}
	if span != 0 && s.emitOn {
		s.emit(trace.Event{
			T: s.clk.Now(), Kind: trace.KindSpanEnd, Item: item, Class: class,
			Req: span, Reason: "refused-" + reason, Arrival: arrival,
		})
	}
}

// spanHandoff emits the roam-out provenance event for a sampled request
// (no-op for span 0): the request's wait segment ends here and its transit
// segment begins; the destination cell's span-attach (or refusal terminal)
// closes it.
func (s *Server) spanHandoff(item int, class clients.Class, span int64) {
	if span == 0 || !s.emitOn {
		return
	}
	s.emit(trace.Event{T: s.clk.Now(), Kind: trace.KindSpanHandoff, Item: item, Class: class, Req: span})
}

// spanAttach emits the roam-in provenance event for a sampled request
// (no-op for span 0). verdict records how the request re-attached: a push
// waiter or a pull enqueue (whose span-enqueue follows).
func (s *Server) spanAttach(item int, class clients.Class, span int64, verdict string) {
	if span == 0 || !s.emitOn {
		return
	}
	s.emit(trace.Event{T: s.clk.Now(), Kind: trace.KindSpanAttach, Item: item, Class: class, Req: span, Reason: verdict})
}
