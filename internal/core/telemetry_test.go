package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"hybridqos/internal/bandwidth"
	"hybridqos/internal/telemetry"
	"hybridqos/internal/trace"
)

// captureTracer stores the full event stream in emission order.
type captureTracer struct {
	events []trace.Event
}

func (c *captureTracer) Event(e trace.Event) { c.events = append(c.events, e) }

func newCollector(t *testing.T, every float64) *telemetry.Collector {
	t.Helper()
	c, err := telemetry.New(telemetry.Options{SnapshotEvery: every})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestTelemetryOffIsNoOp checks the tentpole bit-identity guarantee: a run
// with the collector attached produces metrics byte-identical to the same
// run without it. The collector only reads state (no RNG draws, no queue
// mutations), so even periodic snapshot events cannot perturb the
// trajectory.
func TestTelemetryOffIsNoOp(t *testing.T) {
	mk := func(tele *telemetry.Collector) *Metrics {
		cfg, _ := fullFaultConfig(t)
		bw := bandwidth.PaperConfig()
		cfg.Bandwidth = &bw
		cfg.Telemetry = tele
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	off := mk(nil)
	on := mk(newCollector(t, 100))
	if !reflect.DeepEqual(off, on) {
		t.Fatalf("telemetry perturbed the run:\nwithout: %+v\nwith:    %+v", off, on)
	}
}

// TestTelemetryCountersMatchTrace cross-checks the collector against an
// independent event tally: every counter the collector maintains must equal
// the corresponding trace-kind count, because both are fed from the same
// emitted stream.
func TestTelemetryCountersMatchTrace(t *testing.T) {
	cfg, counts := fullFaultConfig(t)
	bw := bandwidth.PaperConfig()
	cfg.Bandwidth = &bw
	tele := newCollector(t, 500)
	cfg.Telemetry = tele
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	final := tele.TakeSnapshot(cfg.Horizon)
	sumClasses := func(name string) int64 {
		var n int64
		for c := 0; c < cfg.Classes.NumClasses(); c++ {
			n += final.Counter(name, c)
		}
		return n
	}
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"arrivals", sumClasses(telemetry.MetricArrivals), counts.Count(trace.KindArrival)},
		{"served", sumClasses(telemetry.MetricServedPush) + sumClasses(telemetry.MetricServedPull), counts.Count(trace.KindServed)},
		{"retries", sumClasses(telemetry.MetricRetries), counts.Count(trace.KindRetry)},
		{"shed", sumClasses(telemetry.MetricShed), counts.Count(trace.KindShed)},
		{"blocked", final.Counter(telemetry.MetricBlocked, telemetry.ClassNone), counts.Count(trace.KindBlocked)},
		{"corrupt", final.Counter(telemetry.MetricCorruptPush, telemetry.ClassNone) +
			final.Counter(telemetry.MetricCorruptPull, telemetry.ClassNone), counts.Count(trace.KindCorrupt)},
		{"push broadcasts", final.Counter(telemetry.MetricPushBroadcasts, telemetry.ClassNone), counts.Count(trace.KindPushComplete)},
		{"pull transmissions", final.Counter(telemetry.MetricPullTx, telemetry.ClassNone), counts.Count(trace.KindPullComplete)},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s: collector %d, trace %d", c.name, c.got, c.want)
		}
		if c.got == 0 {
			t.Errorf("%s: zero events — the scenario no longer exercises this hot point", c.name)
		}
	}
	if got := final.Gauge(telemetry.MetricQueueRequestsMax, telemetry.ClassNone); !(got > 0) {
		t.Errorf("queue_requests_max = %g, want > 0", got)
	}
	if got := final.Gauge(telemetry.MetricBandwidthInUse, 0); math.IsNaN(got) {
		t.Error("bandwidth_in_use{0} gauge never sampled")
	}
}

// TestTelemetrySnapshotReplayAudit is the end-to-end audit: record a faulty,
// bandwidth-constrained run's full trace with embedded periodic snapshots,
// round-trip it through the JSONL encoding, and require the replay to
// reproduce every snapshot bit-for-bit — then prove the audit has teeth by
// corrupting one bucket count.
func TestTelemetrySnapshotReplayAudit(t *testing.T) {
	cfg, _ := fullFaultConfig(t)
	bw := bandwidth.PaperConfig()
	cfg.Bandwidth = &bw
	cap := &captureTracer{}
	cfg.Tracer = cap
	cfg.Telemetry = newCollector(t, 250)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	wantSnaps := int(cfg.Horizon / 250)
	n, err := trace.VerifySnapshots(cap.events)
	if err != nil {
		t.Fatalf("live stream audit: %v", err)
	}
	if n != wantSnaps {
		t.Fatalf("verified %d snapshots, want %d", n, wantSnaps)
	}

	// Round-trip through the on-disk encoding: float64 values survive JSON's
	// shortest-round-trip form exactly, so the audit must still pass.
	var buf bytes.Buffer
	jl := trace.NewJSONL(&buf)
	for _, e := range cap.events {
		jl.Event(e)
	}
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := trace.VerifySnapshots(decoded); err != nil || n != wantSnaps {
		t.Fatalf("decoded stream audit: %d snapshots, err %v", n, err)
	}

	// Teeth: a single corrupted bucket count must fail the audit.
	snaps := trace.Snapshots(decoded)
	if len(snaps) != wantSnaps {
		t.Fatalf("Snapshots() found %d, want %d", len(snaps), wantSnaps)
	}
	for _, s := range snaps {
		if len(s.Hists) > 0 {
			s.Hists[0].Counts[0]++
			break
		}
	}
	if _, err := trace.VerifySnapshots(decoded); err == nil {
		t.Fatal("corrupted snapshot passed the audit")
	}
}

// TestSnapshotEventWithoutPayloadErrors covers the malformed-trace path.
func TestSnapshotEventWithoutPayloadErrors(t *testing.T) {
	events := []trace.Event{{T: 1, Kind: trace.KindSnapshot, Class: -1}}
	if _, err := trace.VerifySnapshots(events); err == nil {
		t.Fatal("payload-less snapshot event accepted")
	}
}
