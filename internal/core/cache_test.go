package core

import (
	"testing"

	"hybridqos/internal/cache"
)

func TestClientCacheProducesHits(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Horizon = 15000
	cfg.ClientCache = &CacheConfig{NumClients: 20, Capacity: 10, Policy: cache.PIX}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var hits, served int64
	for _, cm := range m.PerClass {
		hits += cm.CacheHits
		served += cm.Served
	}
	if hits == 0 {
		t.Fatal("PIX caches produced no hits on a Zipf workload")
	}
	if hits >= served {
		t.Fatalf("hits %d not a subset of served %d", hits, served)
	}
	// Hits are zero-delay: every class's delay minimum must be 0 once it
	// has at least one hit.
	for c, cm := range m.PerClass {
		if cm.CacheHits > 0 && cm.Delay.Min() != 0 {
			t.Fatalf("class %d has hits but min delay %g", c, cm.Delay.Min())
		}
	}
}

func TestClientCacheLowersMeanDelay(t *testing.T) {
	base := baseConfig(t)
	base.Horizon = 15000
	noCache, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	cached := base
	cached.ClientCache = &CacheConfig{NumClients: 20, Capacity: 10, Policy: cache.LRU}
	withCache, err := Run(cached)
	if err != nil {
		t.Fatal(err)
	}
	if withCache.OverallMeanDelay() >= noCache.OverallMeanDelay() {
		t.Fatalf("caching did not lower delay: %g vs %g",
			withCache.OverallMeanDelay(), noCache.OverallMeanDelay())
	}
}

func TestClientCacheValidation(t *testing.T) {
	cfg := baseConfig(t)
	cfg.ClientCache = &CacheConfig{NumClients: 0, Capacity: 5}
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero clients accepted")
	}
	cfg.ClientCache = &CacheConfig{NumClients: 5, Capacity: 0}
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestCacheHitRateAccessor(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Horizon = 4000
	cfg.ClientCache = &CacheConfig{NumClients: 10, Capacity: 8, Policy: cache.LRU}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if hr := s.CacheHitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("hit rate %g implausible", hr)
	}
	// Disabled caching reports zero.
	s2, err := New(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	s2.Run()
	if s2.CacheHitRate() != 0 {
		t.Fatal("hit rate nonzero without caches")
	}
}

func TestPIXBeatsLRUOnHybridWorkload(t *testing.T) {
	// PIX knows pull items are precious (rarely broadcast); on the hybrid
	// workload its hit rate should be at least LRU's.
	run := func(p cache.PolicyKind) float64 {
		cfg := baseConfig(t)
		cfg.Horizon = 20000
		cfg.ClientCache = &CacheConfig{NumClients: 10, Capacity: 6, Policy: p}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return s.CacheHitRate()
	}
	lru, pix := run(cache.LRU), run(cache.PIX)
	if pix < lru*0.95 {
		t.Fatalf("PIX hit rate %g clearly below LRU %g on hybrid workload", pix, lru)
	}
}
