package core

import (
	"math"

	"hybridqos/internal/bandwidth"
	"hybridqos/internal/clients"
	"hybridqos/internal/stats"
)

// ClassMetrics aggregates one service class's outcomes.
type ClassMetrics struct {
	// Class identifies the service class.
	Class clients.Class
	// Weight is the class's priority weight q_c.
	Weight float64
	// Arrivals counts requests from the class (after warmup).
	Arrivals int64
	// Served counts satisfied requests.
	Served int64
	// Dropped counts requests lost to bandwidth blocking.
	Dropped int64
	// Expired counts requests whose deadline passed before their item's
	// transmission completed (RequestTTL mode).
	Expired int64
	// UplinkLost counts pull requests lost on the request back-channel
	// (first attempts and retries whose uplink budget ran out).
	UplinkLost int64
	// CacheHits counts requests served from the requesting client's own
	// cache (zero access time; included in Delay as 0).
	CacheHits int64
	// Retries counts client re-requests issued after corrupted pull
	// deliveries (lossy-downlink mode).
	Retries int64
	// Failed counts requests abandoned after downlink corruption exhausted
	// their retry budget.
	Failed int64
	// Shed counts requests refused by the class-aware overload admission
	// controller.
	Shed int64
	// HandoffsIn counts roaming requests accepted into this cell from
	// another cell (multi-cell runs; not warmup-filtered).
	HandoffsIn int64
	// HandoffsOut counts pending requests that roamed away from this cell.
	HandoffsOut int64
	// HandoffRefusals counts roaming requests this cell turned away: the
	// deadline expired in transit, admission control shed the request, or
	// the item is absent from the cell's catalog.
	HandoffRefusals int64
	// Delay accumulates access times (arrival → end of transmission).
	Delay stats.Welford
	// DelayHist holds the raw access-time samples for percentiles.
	DelayHist stats.Histogram
	// PushDelay and PullDelay split Delay by the serving subsystem.
	PushDelay, PullDelay stats.Welford
}

// MeanDelay returns the class's mean access time.
func (cm *ClassMetrics) MeanDelay() float64 { return cm.Delay.Mean() }

// Cost returns the prioritised cost q_c · mean delay (§5.3).
func (cm *ClassMetrics) Cost() float64 { return cm.Weight * cm.Delay.Mean() }

// DropRate returns dropped/(served+dropped+expired), 0 when nothing
// completed.
func (cm *ClassMetrics) DropRate() float64 {
	total := cm.Served + cm.Dropped + cm.Expired
	if total == 0 {
		return 0
	}
	return float64(cm.Dropped) / float64(total)
}

// ExpiryRate returns expired/(served+dropped+expired), 0 when nothing
// completed.
func (cm *ClassMetrics) ExpiryRate() float64 {
	total := cm.Served + cm.Dropped + cm.Expired
	if total == 0 {
		return 0
	}
	return float64(cm.Expired) / float64(total)
}

// Failures sums the class's terminal failure outcomes: bandwidth drops,
// deadline expiries, retry-budget exhaustion and admission shedding.
// First-attempt uplink losses are excluded — the back-channel is class-blind
// and its losses never reach the server's scheduling decisions.
func (cm *ClassMetrics) Failures() int64 {
	return cm.Dropped + cm.Expired + cm.Failed + cm.Shed
}

// FailureRate returns Failures/(Served+Failures) — the per-class probability
// a request that reached the server ended without delivery. 0 when nothing
// completed.
func (cm *ClassMetrics) FailureRate() float64 {
	total := cm.Served + cm.Failures()
	if total == 0 {
		return 0
	}
	return float64(cm.Failures()) / float64(total)
}

// Metrics is the result of one run.
type Metrics struct {
	// PerClass holds one entry per service class, class 0 first.
	PerClass []*ClassMetrics
	// PushBroadcasts and PullTransmissions count completed transmissions,
	// including corrupted ones (raw channel throughput).
	PushBroadcasts, PullTransmissions int64
	// BlockedTransmissions counts pull entries dropped for bandwidth.
	BlockedTransmissions int64
	// CorruptedPushes and CorruptedPulls count transmissions lost on the
	// lossy downlink — the gap between raw throughput and goodput.
	CorruptedPushes, CorruptedPulls int64
	// QueueItems tracks the time-averaged number of distinct queued items.
	QueueItems stats.TimeWeighted
	// QueueRequests tracks the time-averaged pending request count.
	QueueRequests stats.TimeWeighted
	// Bandwidth holds per-class allocator statistics when enabled.
	Bandwidth []bandwidth.ClassStats
	// Horizon is the simulated duration.
	Horizon float64
	// Cutoff echoes the run's configured K (under the "none" push policy
	// the effective push set is empty regardless).
	Cutoff int
}

// OverallMeanDelay returns the request-weighted mean access time across
// classes; NaN when nothing was served.
func (m *Metrics) OverallMeanDelay() float64 {
	var sum float64
	var n int64
	for _, cm := range m.PerClass {
		if cm.Delay.N() > 0 {
			sum += cm.Delay.Mean() * float64(cm.Delay.N())
			n += cm.Delay.N()
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// TotalCost returns Σ_c q_c · mean delay_c, the quantity Figures 5–6
// minimise. Classes with no served requests contribute nothing.
func (m *Metrics) TotalCost() float64 {
	sum := 0.0
	for _, cm := range m.PerClass {
		if cm.Delay.N() > 0 {
			sum += cm.Cost()
		}
	}
	return sum
}

// TotalDropped sums dropped requests across classes.
func (m *Metrics) TotalDropped() int64 {
	var n int64
	for _, cm := range m.PerClass {
		n += cm.Dropped
	}
	return n
}

// RawTransmissions returns every completed transmission, corrupted or not —
// the channel's raw throughput in transmissions.
func (m *Metrics) RawTransmissions() int64 {
	return m.PushBroadcasts + m.PullTransmissions
}

// Goodput returns the transmissions clients could actually decode: raw
// throughput minus downlink corruption.
func (m *Metrics) Goodput() int64 {
	return m.RawTransmissions() - m.CorruptedPushes - m.CorruptedPulls
}

// TotalShed sums admission-shed requests across classes.
func (m *Metrics) TotalShed() int64 {
	var n int64
	for _, cm := range m.PerClass {
		n += cm.Shed
	}
	return n
}

// TotalHandoffs sums accepted inbound handoffs across classes.
func (m *Metrics) TotalHandoffs() int64 {
	var n int64
	for _, cm := range m.PerClass {
		n += cm.HandoffsIn
	}
	return n
}

// TotalHandoffRefusals sums refused inbound handoffs across classes.
func (m *Metrics) TotalHandoffRefusals() int64 {
	var n int64
	for _, cm := range m.PerClass {
		n += cm.HandoffRefusals
	}
	return n
}

// TotalFailed sums retry-exhausted requests across classes.
func (m *Metrics) TotalFailed() int64 {
	var n int64
	for _, cm := range m.PerClass {
		n += cm.Failed
	}
	return n
}
