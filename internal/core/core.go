// Package core implements the paper's contribution: the hybrid
// push/pull scheduling server with priority-based service classification
// (section 3, Figure 1).
//
// The server owns a catalog split at a cutoff K: items 1..K are broadcast
// cyclically by a push scheduler (flat round-robin in the paper), items
// K+1..D are served on demand from a pull queue. After every push
// transmission, if the pull queue is non-empty the server extracts the entry
// with the maximum importance factor γ_i = α·S_i + (1−α)·Q_i, reserves
// bandwidth from the pool of the entry's governing (highest-priority
// requesting) class, and either transmits it — satisfying every pending
// request for the item at once — or, when the Poisson bandwidth demand
// exceeds the class's available bandwidth, drops the item and all its
// pending requests (blocking).
//
// The implementation is a deterministic discrete-event simulation: a single
// seed reproduces the full event trajectory.
package core

import (
	"fmt"
	"math"

	"hybridqos/internal/bandwidth"
	"hybridqos/internal/cache"
	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/event"
	"hybridqos/internal/faults"
	"hybridqos/internal/pullqueue"
	"hybridqos/internal/rng"
	"hybridqos/internal/sched"
	"hybridqos/internal/stats"
	"hybridqos/internal/trace"
	"hybridqos/internal/uplink"
	"hybridqos/internal/workload"
)

// Config parameterises one simulation run.
type Config struct {
	// Catalog is the item database (required).
	Catalog *catalog.Catalog
	// Classes is the service classification (required).
	Classes *clients.Classification
	// Lambda is the aggregate Poisson request rate λ′ (paper: 5).
	Lambda float64
	// Cutoff is K: items 1..K pushed, K+1..D pulled. 0 ≤ K ≤ D.
	Cutoff int
	// PullPolicy selects pull items; nil defaults to the paper's
	// importance factor with Alpha.
	PullPolicy sched.PullPolicy
	// Alpha is Eq. 1's mixing fraction, used when PullPolicy is nil.
	Alpha float64
	// PushScheduler builds the push-side scheduler for a cutoff; nil
	// defaults to the paper's flat round-robin.
	PushScheduler func(cat *catalog.Catalog, k int) (sched.PushScheduler, error)
	// Bandwidth, when non-nil, enables the per-class bandwidth pools and
	// blocking behaviour. Nil disables bandwidth constraints entirely (no
	// request is ever dropped).
	Bandwidth *bandwidth.Config
	// RetryOnBlock makes the server try the next-best pull entry after a
	// blocked one within the same slot (extension; the paper's pseudocode
	// gives up the slot).
	RetryOnBlock bool
	// Arrivals optionally replaces the Poisson(Lambda) arrival process
	// with another workload.ArrivalProcess (bursty MMPP, batch arrivals).
	// Lambda is ignored for gap generation when set, but must still be
	// valid (it feeds analytic comparisons).
	Arrivals workload.ArrivalProcess
	// Items optionally replaces the catalog's static Zipf popularity with
	// another workload.ItemSampler (e.g. rotating hot set).
	Items workload.ItemSampler
	// RequestTTL, when positive, gives every request a deadline: requests
	// whose item completes transmission after arrival+TTL count as Expired
	// rather than Served (the client has given up listening; the server —
	// having no abandon signalling on the uplink — still transmits).
	RequestTTL float64
	// Tracer, when non-nil, receives a structured event stream (arrivals,
	// transmissions, blocks, served requests) for offline analysis.
	Tracer trace.Tracer
	// Uplink, when non-nil, models the limited request back-channel: pull
	// requests that fail uplink contention never reach the server and are
	// counted as UplinkLost (push requests need no uplink — clients simply
	// tune in to the broadcast).
	Uplink uplink.Channel
	// ClientCache, when non-nil, gives every client a fixed-capacity item
	// cache (broadcast-disk style): a request hitting the requester's own
	// cache is served instantly (zero access time) and never reaches the
	// channel; on reception the requesting client caches the item.
	ClientCache *CacheConfig
	// Loss, when non-nil, makes the downlink lossy: every completed
	// transmission may be corrupted (no client decodes it). A corrupted push
	// broadcast leaves its waiters waiting for the item's next cycle; a
	// corrupted pull delivery sends the entry's requests through Retry. Loss
	// models are stateful — like Uplink they must not be shared across
	// parallel replications. Nil keeps the paper's error-free channel.
	Loss faults.LossModel
	// Retry governs client re-requests after corrupted pull deliveries:
	// bounded attempts with exponential backoff and jitter, re-contending on
	// the uplink and re-entering admission control. The zero value disables
	// retries (a corrupted delivery immediately counts as Failed).
	Retry faults.RetryPolicy
	// Shed, when non-nil, enables the class-aware overload admission
	// controller: when pending pull load (queued requests plus outstanding
	// retries) reaches the high-water mark the server refuses
	// lowest-priority-class requests, restoring admission at the low-water
	// mark (hysteresis).
	Shed *faults.ShedConfig
	// Horizon is the simulated duration in broadcast units.
	Horizon float64
	// WarmupFraction of the horizon is discarded from delay statistics
	// (requests ARRIVING before the warmup end are excluded).
	WarmupFraction float64
	// Seed drives all randomness in the run.
	Seed uint64
}

// CacheConfig parameterises the client-side caches.
type CacheConfig struct {
	// NumClients is the cache population size.
	NumClients int
	// Capacity is each cache's item capacity.
	Capacity int
	// Policy selects the replacement policy (LRU, LFU, PIX).
	Policy cache.PolicyKind
}

// Validate reports whether the configuration is usable. Beyond structural
// checks it audits every invariant whose violation would otherwise panic
// deep inside internal/pullqueue or internal/catalog mid-run (zero-value
// catalogs/classifications, non-positive item lengths or class weights,
// hand-built importance-factor policies with α outside [0,1]), so a bad
// configuration fails here rather than after Server.Run has started.
func (c Config) Validate() error {
	if c.Catalog == nil {
		return fmt.Errorf("core: nil catalog")
	}
	if c.Catalog.D() == 0 {
		return fmt.Errorf("core: empty catalog")
	}
	for rank := 1; rank <= c.Catalog.D(); rank++ {
		if l := c.Catalog.Length(rank); l <= 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return fmt.Errorf("core: invalid length %g for item %d", l, rank)
		}
	}
	if c.Classes == nil {
		return fmt.Errorf("core: nil classification")
	}
	if c.Classes.NumClasses() == 0 {
		return fmt.Errorf("core: classification has no classes")
	}
	for i, w := range c.Classes.Weights() {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("core: invalid weight %g for class %d", w, i)
		}
	}
	if pol, ok := c.PullPolicy.(sched.ImportanceFactor); ok {
		if pol.Alpha < 0 || pol.Alpha > 1 || math.IsNaN(pol.Alpha) {
			return fmt.Errorf("core: pull policy alpha %g outside [0,1]", pol.Alpha)
		}
	}
	if c.Lambda <= 0 || math.IsNaN(c.Lambda) || math.IsInf(c.Lambda, 0) {
		return fmt.Errorf("core: invalid lambda %g", c.Lambda)
	}
	if c.Cutoff < 0 || c.Cutoff > c.Catalog.D() {
		return fmt.Errorf("core: cutoff %d out of [0,%d]", c.Cutoff, c.Catalog.D())
	}
	if c.PullPolicy == nil {
		if c.Alpha < 0 || c.Alpha > 1 || math.IsNaN(c.Alpha) {
			return fmt.Errorf("core: alpha %g outside [0,1]", c.Alpha)
		}
	}
	if c.Horizon <= 0 || math.IsNaN(c.Horizon) || math.IsInf(c.Horizon, 0) {
		return fmt.Errorf("core: invalid horizon %g", c.Horizon)
	}
	if c.WarmupFraction < 0 || c.WarmupFraction >= 1 || math.IsNaN(c.WarmupFraction) {
		return fmt.Errorf("core: warmup fraction %g outside [0,1)", c.WarmupFraction)
	}
	if c.RequestTTL < 0 || math.IsNaN(c.RequestTTL) {
		return fmt.Errorf("core: invalid request TTL %g", c.RequestTTL)
	}
	if c.ClientCache != nil {
		if c.ClientCache.NumClients <= 0 || c.ClientCache.Capacity <= 0 {
			return fmt.Errorf("core: invalid client cache config %+v", *c.ClientCache)
		}
	}
	if c.Bandwidth != nil {
		if err := c.Bandwidth.Validate(); err != nil {
			return err
		}
		if len(c.Bandwidth.Fractions) != c.Classes.NumClasses() {
			return fmt.Errorf("core: %d bandwidth fractions for %d classes",
				len(c.Bandwidth.Fractions), c.Classes.NumClasses())
		}
	}
	if err := c.Retry.Validate(); err != nil {
		return err
	}
	if c.Shed != nil {
		if err := c.Shed.Validate(c.Classes.NumClasses()); err != nil {
			return err
		}
	}
	return nil
}

// ClassMetrics aggregates one service class's outcomes.
type ClassMetrics struct {
	// Class identifies the service class.
	Class clients.Class
	// Weight is the class's priority weight q_c.
	Weight float64
	// Arrivals counts requests from the class (after warmup).
	Arrivals int64
	// Served counts satisfied requests.
	Served int64
	// Dropped counts requests lost to bandwidth blocking.
	Dropped int64
	// Expired counts requests whose deadline passed before their item's
	// transmission completed (RequestTTL mode).
	Expired int64
	// UplinkLost counts pull requests lost on the request back-channel
	// (first attempts and retries whose uplink budget ran out).
	UplinkLost int64
	// CacheHits counts requests served from the requesting client's own
	// cache (zero access time; included in Delay as 0).
	CacheHits int64
	// Retries counts client re-requests issued after corrupted pull
	// deliveries (lossy-downlink mode).
	Retries int64
	// Failed counts requests abandoned after downlink corruption exhausted
	// their retry budget.
	Failed int64
	// Shed counts requests refused by the class-aware overload admission
	// controller.
	Shed int64
	// Delay accumulates access times (arrival → end of transmission).
	Delay stats.Welford
	// DelayHist holds the raw access-time samples for percentiles.
	DelayHist stats.Histogram
	// PushDelay and PullDelay split Delay by the serving subsystem.
	PushDelay, PullDelay stats.Welford
}

// MeanDelay returns the class's mean access time.
func (cm *ClassMetrics) MeanDelay() float64 { return cm.Delay.Mean() }

// Cost returns the prioritised cost q_c · mean delay (§5.3).
func (cm *ClassMetrics) Cost() float64 { return cm.Weight * cm.Delay.Mean() }

// DropRate returns dropped/(served+dropped+expired), 0 when nothing
// completed.
func (cm *ClassMetrics) DropRate() float64 {
	total := cm.Served + cm.Dropped + cm.Expired
	if total == 0 {
		return 0
	}
	return float64(cm.Dropped) / float64(total)
}

// ExpiryRate returns expired/(served+dropped+expired), 0 when nothing
// completed.
func (cm *ClassMetrics) ExpiryRate() float64 {
	total := cm.Served + cm.Dropped + cm.Expired
	if total == 0 {
		return 0
	}
	return float64(cm.Expired) / float64(total)
}

// Failures sums the class's terminal failure outcomes: bandwidth drops,
// deadline expiries, retry-budget exhaustion and admission shedding.
// First-attempt uplink losses are excluded — the back-channel is class-blind
// and its losses never reach the server's scheduling decisions.
func (cm *ClassMetrics) Failures() int64 {
	return cm.Dropped + cm.Expired + cm.Failed + cm.Shed
}

// FailureRate returns Failures/(Served+Failures) — the per-class probability
// a request that reached the server ended without delivery. 0 when nothing
// completed.
func (cm *ClassMetrics) FailureRate() float64 {
	total := cm.Served + cm.Failures()
	if total == 0 {
		return 0
	}
	return float64(cm.Failures()) / float64(total)
}

// Metrics is the result of one run.
type Metrics struct {
	// PerClass holds one entry per service class, class 0 first.
	PerClass []*ClassMetrics
	// PushBroadcasts and PullTransmissions count completed transmissions,
	// including corrupted ones (raw channel throughput).
	PushBroadcasts, PullTransmissions int64
	// BlockedTransmissions counts pull entries dropped for bandwidth.
	BlockedTransmissions int64
	// CorruptedPushes and CorruptedPulls count transmissions lost on the
	// lossy downlink — the gap between raw throughput and goodput.
	CorruptedPushes, CorruptedPulls int64
	// QueueItems tracks the time-averaged number of distinct queued items.
	QueueItems stats.TimeWeighted
	// QueueRequests tracks the time-averaged pending request count.
	QueueRequests stats.TimeWeighted
	// Bandwidth holds per-class allocator statistics when enabled.
	Bandwidth []bandwidth.ClassStats
	// Horizon is the simulated duration.
	Horizon float64
	// Cutoff echoes the run's K.
	Cutoff int
}

// OverallMeanDelay returns the request-weighted mean access time across
// classes; NaN when nothing was served.
func (m *Metrics) OverallMeanDelay() float64 {
	var sum float64
	var n int64
	for _, cm := range m.PerClass {
		if cm.Delay.N() > 0 {
			sum += cm.Delay.Mean() * float64(cm.Delay.N())
			n += cm.Delay.N()
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// TotalCost returns Σ_c q_c · mean delay_c, the quantity Figures 5–6
// minimise. Classes with no served requests contribute nothing.
func (m *Metrics) TotalCost() float64 {
	sum := 0.0
	for _, cm := range m.PerClass {
		if cm.Delay.N() > 0 {
			sum += cm.Cost()
		}
	}
	return sum
}

// TotalDropped sums dropped requests across classes.
func (m *Metrics) TotalDropped() int64 {
	var n int64
	for _, cm := range m.PerClass {
		n += cm.Dropped
	}
	return n
}

// RawTransmissions returns every completed transmission, corrupted or not —
// the channel's raw throughput in transmissions.
func (m *Metrics) RawTransmissions() int64 {
	return m.PushBroadcasts + m.PullTransmissions
}

// Goodput returns the transmissions clients could actually decode: raw
// throughput minus downlink corruption.
func (m *Metrics) Goodput() int64 {
	return m.RawTransmissions() - m.CorruptedPushes - m.CorruptedPulls
}

// TotalShed sums admission-shed requests across classes.
func (m *Metrics) TotalShed() int64 {
	var n int64
	for _, cm := range m.PerClass {
		n += cm.Shed
	}
	return n
}

// TotalFailed sums retry-exhausted requests across classes.
func (m *Metrics) TotalFailed() int64 {
	var n int64
	for _, cm := range m.PerClass {
		n += cm.Failed
	}
	return n
}

// pushWaiter is a client waiting for a push item's next broadcast.
type pushWaiter struct {
	class   clients.Class
	arrival float64
	client  int // −1 when client identity is not tracked
}

// Server is one configured simulation instance.
type Server struct {
	cfg      Config
	sim      *event.Simulator
	arrRng   *rng.Source
	itemRng  *rng.Source
	classRng *rng.Source

	pushSched   sched.PushScheduler
	selector    sched.Selector
	alloc       *bandwidth.Allocator
	arrivals    workload.ArrivalProcess
	items       workload.ItemSampler
	tracer      trace.Tracer
	up          uplink.Channel
	uplinkRng   *rng.Source
	caches      *cache.Population
	clientRng   *rng.Source
	txCounts    []int64 // per-rank transmission counts (PIX frequency)
	txTotal     int64
	pushWaiters map[int][]pushWaiter

	loss           faults.LossModel
	lossRng        *rng.Source
	retryRng       *rng.Source
	shedder        *faults.Shedder
	pendingRetries int // re-requests booked but not yet delivered

	warmupEnd float64
	metrics   *Metrics
	idle      bool // only reachable when Cutoff == 0
}

// New builds a Server from the configuration.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	s := &Server{
		cfg:         cfg,
		sim:         event.New(),
		arrRng:      root.Split("arrivals"),
		itemRng:     root.Split("items"),
		classRng:    root.Split("classes"),
		pushWaiters: make(map[int][]pushWaiter),
		warmupEnd:   cfg.Horizon * cfg.WarmupFraction,
	}

	policy := cfg.PullPolicy
	if policy == nil {
		p, err := sched.NewImportanceFactor(cfg.Alpha)
		if err != nil {
			return nil, err
		}
		policy = p
	}
	s.selector = sched.NewSelector(policy)

	if cfg.Cutoff > 0 {
		build := cfg.PushScheduler
		if build == nil {
			build = func(_ *catalog.Catalog, k int) (sched.PushScheduler, error) {
				return sched.NewFlatRoundRobin(k), nil
			}
		}
		ps, err := build(cfg.Catalog, cfg.Cutoff)
		if err != nil {
			return nil, err
		}
		s.pushSched = ps
	}

	if cfg.Bandwidth != nil {
		a, err := bandwidth.New(*cfg.Bandwidth, root.Split("bandwidth"))
		if err != nil {
			return nil, err
		}
		s.alloc = a
	}

	s.arrivals = cfg.Arrivals
	if s.arrivals == nil {
		p, err := workload.NewPoisson(cfg.Lambda)
		if err != nil {
			return nil, err
		}
		s.arrivals = p
	}
	s.items = cfg.Items
	if s.items == nil {
		s.items = workload.StaticPopularity{Catalog: cfg.Catalog}
	}
	s.tracer = cfg.Tracer
	if s.tracer == nil {
		s.tracer = trace.Nop{}
	}
	s.up = cfg.Uplink
	if s.up == nil {
		s.up = uplink.Unlimited{}
	}
	s.uplinkRng = root.Split("uplink")
	if cfg.ClientCache != nil {
		pop, err := cache.NewPopulation(cfg.ClientCache.NumClients, cfg.ClientCache.Capacity, cfg.ClientCache.Policy)
		if err != nil {
			return nil, err
		}
		s.caches = pop
		s.clientRng = root.Split("clients")
		s.txCounts = make([]int64, cfg.Catalog.D()+1)
	}
	// Fault-layer streams are split last so enabling the layer never
	// perturbs the streams above — a run with Loss nil (or a 0-probability
	// model) is bit-identical to one without the fault layer at all.
	s.loss = cfg.Loss
	s.lossRng = root.Split("faults-loss")
	s.retryRng = root.Split("faults-retry")
	if cfg.Shed != nil {
		sh, err := faults.NewShedder(*cfg.Shed, cfg.Classes.NumClasses())
		if err != nil {
			return nil, err
		}
		s.shedder = sh
	}

	s.metrics = &Metrics{Horizon: cfg.Horizon, Cutoff: cfg.Cutoff}
	for c := 0; c < cfg.Classes.NumClasses(); c++ {
		s.metrics.PerClass = append(s.metrics.PerClass, &ClassMetrics{
			Class:  clients.Class(c),
			Weight: cfg.Classes.Weight(clients.Class(c)),
		})
	}
	return s, nil
}

// Run executes the simulation to its horizon and returns the metrics.
// Run may be called once per Server.
func (s *Server) Run() *Metrics {
	s.observeQueue()
	s.scheduleNextArrival()
	if s.cfg.Cutoff > 0 {
		s.startPush()
	} else {
		s.idle = true
	}
	s.sim.RunUntil(s.cfg.Horizon)
	s.metrics.QueueItems.MeanAt(s.cfg.Horizon)
	s.metrics.QueueRequests.MeanAt(s.cfg.Horizon)
	if s.alloc != nil {
		for c := 0; c < s.alloc.NumClasses(); c++ {
			s.metrics.Bandwidth = append(s.metrics.Bandwidth, s.alloc.Stats(clients.Class(c)))
		}
	}
	return s.metrics
}

// observeQueue snapshots queue sizes into the time-weighted trackers.
func (s *Server) observeQueue() {
	now := s.sim.Now()
	s.metrics.QueueItems.Observe(now, float64(s.selector.Items()))
	s.metrics.QueueRequests.Observe(now, float64(s.selector.Requests()))
}

// scheduleNextArrival draws the next arrival event from the configured
// process and registers its handler; events beyond the horizon are simply
// never scheduled (RunUntil would cut them anyway).
func (s *Server) scheduleNextArrival() {
	gap, batch := s.arrivals.Next(s.arrRng)
	t := s.sim.Now() + gap
	if t > s.cfg.Horizon {
		return
	}
	s.sim.At(t, func(*event.Simulator) {
		for i := 0; i < batch; i++ {
			s.handleArrival()
		}
		s.scheduleNextArrival()
	})
}

// handleArrival draws the request's item and class and routes it.
func (s *Server) handleArrival() {
	now := s.sim.Now()
	rank := s.items.SampleItem(s.itemRng, now)
	class := s.cfg.Classes.SampleClass(s.classRng)
	if now >= s.warmupEnd {
		s.metrics.PerClass[class].Arrivals++
	}
	s.tracer.Event(trace.Event{T: now, Kind: trace.KindArrival, Item: rank, Class: class})
	clientID := -1
	if s.caches != nil {
		clientID = s.clientRng.Intn(s.caches.Size())
		if s.caches.Client(clientID).Lookup(rank, now) {
			// Served from the client's own cache: zero access time.
			if now >= s.warmupEnd {
				cm := s.metrics.PerClass[class]
				cm.CacheHits++
				cm.Served++
				cm.Delay.Add(0)
				cm.DelayHist.Add(0)
			}
			s.tracer.Event(trace.Event{T: now, Kind: trace.KindServed, Class: class, Arrival: now})
			return
		}
	}
	if rank <= s.cfg.Cutoff {
		// Push item: the server ignores the request (flat broadcast will
		// deliver it); the simulator tracks the waiter to measure delay.
		s.pushWaiters[rank] = append(s.pushWaiters[rank], pushWaiter{class: class, arrival: now, client: clientID})
		return
	}
	if !s.up.TryRequest(now, s.uplinkRng) {
		if now >= s.warmupEnd {
			s.metrics.PerClass[class].UplinkLost++
		}
		return
	}
	req := pullqueue.Request{
		Item:     rank,
		Class:    class,
		Priority: s.cfg.Classes.Weight(class),
		Arrival:  now,
		Client:   clientID,
	}
	if s.shedPull(req, now) {
		return
	}
	s.enqueuePull(req)
}

// enqueuePull adds an admitted pull request to the selector and kicks the
// channel if it was idle (only reachable when Cutoff == 0).
func (s *Server) enqueuePull(req pullqueue.Request) {
	s.selector.Add(req, s.cfg.Catalog.Length(req.Item))
	s.observeQueue()
	if s.idle {
		s.idle = false
		s.attemptPull()
	}
}

// shedPull consults the overload admission controller and reports whether
// the request was refused. The controller samples pending load (queued pull
// requests plus outstanding retries) at every admission decision, so the
// shed level moves at most one class per arriving request.
func (s *Server) shedPull(req pullqueue.Request, now float64) bool {
	if s.shedder == nil {
		return false
	}
	load := s.selector.Requests() + s.pendingRetries
	if s.shedder.Admit(load, int(req.Class)) {
		return false
	}
	if req.Arrival >= s.warmupEnd {
		s.metrics.PerClass[req.Class].Shed++
	}
	s.tracer.Event(trace.Event{T: now, Kind: trace.KindShed, Item: req.Item, Class: req.Class})
	return true
}

// retryAfterLoss books the next re-request for a request whose pull delivery
// (or uplink re-request) just failed at now. It returns false when the retry
// budget is exhausted — the caller records the terminal outcome. A retry
// that would fire after the request's TTL deadline is recorded as Expired
// here (the client gives up listening at its deadline).
func (s *Server) retryAfterLoss(r pullqueue.Request, now float64) bool {
	if !s.cfg.Retry.Enabled() || r.Attempts >= s.cfg.Retry.MaxAttempts {
		return false
	}
	retryAt := now + s.cfg.Retry.Backoff(r.Attempts, s.retryRng)
	if s.cfg.RequestTTL > 0 && retryAt > r.Arrival+s.cfg.RequestTTL {
		if r.Arrival >= s.warmupEnd {
			s.metrics.PerClass[r.Class].Expired++
		}
		return true
	}
	r.Attempts++
	if r.Arrival >= s.warmupEnd {
		s.metrics.PerClass[r.Class].Retries++
	}
	s.tracer.Event(trace.Event{
		T: now, Kind: trace.KindRetry, Item: r.Item, Class: r.Class, Attempt: r.Attempts,
	})
	s.pendingRetries++
	s.sim.At(retryAt, func(*event.Simulator) {
		s.pendingRetries--
		s.handleRetry(r)
	})
	return true
}

// handleRetry delivers a client's re-request to the server. Like any fresh
// request it must win the uplink and pass admission control; an uplink loss
// spends the attempt and backs off again until the budget runs out.
func (s *Server) handleRetry(r pullqueue.Request) {
	now := s.sim.Now()
	if !s.up.TryRequest(now, s.uplinkRng) {
		if !s.retryAfterLoss(r, now) && r.Arrival >= s.warmupEnd {
			s.metrics.PerClass[r.Class].UplinkLost++
		}
		return
	}
	if s.shedPull(r, now) {
		return
	}
	s.enqueuePull(r)
}

// startPush begins the next flat broadcast transmission.
func (s *Server) startPush() {
	item := s.pushSched.Next()
	length := s.cfg.Catalog.Length(item)
	s.tracer.Event(trace.Event{T: s.sim.Now(), Kind: trace.KindPushStart, Item: item, Class: -1})
	s.sim.After(length, func(*event.Simulator) {
		s.completePush(item)
	})
}

// completePush satisfies every waiter of the broadcast item, then gives the
// pull system its slot.
func (s *Server) completePush(item int) {
	now := s.sim.Now()
	s.metrics.PushBroadcasts++
	if s.loss != nil && s.loss.Corrupted(now, s.lossRng) {
		// Nobody decoded the broadcast: waiters stay registered and catch
		// the item's next push cycle; no cache fills, no PIX update.
		s.metrics.CorruptedPushes++
		s.tracer.Event(trace.Event{
			T: now, Kind: trace.KindCorrupt, Item: item, Class: -1,
			Push: true, Requests: len(s.pushWaiters[item]),
		})
		s.attemptPull()
		return
	}
	s.noteTransmission(item)
	s.tracer.Event(trace.Event{
		T: now, Kind: trace.KindPushComplete, Item: item, Class: -1,
		Requests: len(s.pushWaiters[item]),
	})
	for _, w := range s.pushWaiters[item] {
		s.recordServed(w.class, w.arrival, now, true)
		s.fillCache(w.client, item, now)
	}
	delete(s.pushWaiters, item)
	s.attemptPull()
}

// attemptPull serves the best pull entry if one exists and bandwidth allows,
// otherwise returns control to the push system (or idles when K = 0).
func (s *Server) attemptPull() {
	for {
		entry := s.selector.ExtractBest(s.sim.Now())
		if entry == nil {
			if s.cfg.Cutoff > 0 {
				s.startPush()
			} else {
				s.idle = true
			}
			return
		}
		s.observeQueue()

		var grant *bandwidth.Grant
		if s.alloc != nil {
			g, blocked := s.alloc.Reserve(entry.HighestClass(), entry.Length)
			if blocked {
				// Paper: the item and all its pending requests are lost.
				s.metrics.BlockedTransmissions++
				s.tracer.Event(trace.Event{
					T: s.sim.Now(), Kind: trace.KindBlocked, Item: entry.Item,
					Class: entry.HighestClass(), Requests: len(entry.Requests),
				})
				for _, r := range entry.Requests {
					if r.Arrival >= s.warmupEnd {
						s.metrics.PerClass[r.Class].Dropped++
					}
				}
				if s.cfg.RetryOnBlock {
					continue
				}
				if s.cfg.Cutoff > 0 {
					s.startPush()
				} else {
					// Try the next entry anyway: with no push system the
					// slot has no other use.
					continue
				}
				return
			}
			grant = g
		}

		s.tracer.Event(trace.Event{
			T: s.sim.Now(), Kind: trace.KindPullStart, Item: entry.Item,
			Class: entry.HighestClass(), Requests: len(entry.Requests),
		})
		s.sim.After(entry.Length, func(*event.Simulator) {
			s.completePull(entry, grant)
		})
		return
	}
}

// completePull satisfies all of the entry's pending requests and hands the
// channel back to the push system.
func (s *Server) completePull(entry *pullqueue.Entry, grant *bandwidth.Grant) {
	now := s.sim.Now()
	s.metrics.PullTransmissions++
	if s.loss != nil && s.loss.Corrupted(now, s.lossRng) {
		// The delivery was corrupted: each pending request either books a
		// client re-request (bounded backoff) or fails terminally.
		s.metrics.CorruptedPulls++
		s.tracer.Event(trace.Event{
			T: now, Kind: trace.KindCorrupt, Item: entry.Item,
			Class: entry.HighestClass(), Requests: len(entry.Requests),
		})
		for _, r := range entry.Requests {
			if !s.retryAfterLoss(r, now) && r.Arrival >= s.warmupEnd {
				s.metrics.PerClass[r.Class].Failed++
			}
		}
		if grant != nil {
			s.alloc.Release(grant)
		}
		if s.cfg.Cutoff > 0 {
			s.startPush()
		} else {
			s.attemptPull()
		}
		return
	}
	s.noteTransmission(entry.Item)
	s.tracer.Event(trace.Event{
		T: now, Kind: trace.KindPullComplete, Item: entry.Item,
		Class: entry.HighestClass(), Requests: len(entry.Requests),
	})
	for _, r := range entry.Requests {
		s.recordServed(r.Class, r.Arrival, now, false)
		s.fillCache(r.Client, entry.Item, now)
	}
	if grant != nil {
		s.alloc.Release(grant)
	}
	if s.cfg.Cutoff > 0 {
		s.startPush()
	} else {
		s.attemptPull()
	}
}

// noteTransmission updates the empirical broadcast-frequency counters that
// feed PIX scores (only maintained when caching is enabled).
func (s *Server) noteTransmission(item int) {
	if s.txCounts == nil {
		return
	}
	s.txCounts[item]++
	s.txTotal++
}

// fillCache stores a just-received item in the requesting client's cache.
// The PIX score is the item's access probability over its MEASURED
// broadcast frequency (add-one smoothed), exactly as the broadcast-disk
// policy prescribes: items that are popular but appear on the channel
// rarely are the most valuable to cache.
func (s *Server) fillCache(clientID, item int, now float64) {
	if s.caches == nil || clientID < 0 {
		return
	}
	x := float64(s.txCounts[item]+1) / float64(s.txTotal+int64(s.cfg.Catalog.D()))
	s.caches.Client(clientID).Insert(item, s.cfg.Catalog.Prob(item)/x, now)
}

// CacheHitRate returns the population-wide client cache hit rate, 0 when
// caching is disabled.
func (s *Server) CacheHitRate() float64 {
	if s.caches == nil {
		return 0
	}
	return s.caches.HitRate()
}

// recordServed logs one satisfied request (post-warmup arrivals only).
// Under RequestTTL, a request whose deadline passed before the transmission
// completed is counted as Expired instead.
func (s *Server) recordServed(class clients.Class, arrival, completion float64, push bool) {
	if arrival < s.warmupEnd {
		return
	}
	cm := s.metrics.PerClass[class]
	d := completion - arrival
	if s.cfg.RequestTTL > 0 && d > s.cfg.RequestTTL {
		cm.Expired++
		return
	}
	cm.Served++
	cm.Delay.Add(d)
	cm.DelayHist.Add(d)
	s.tracer.Event(trace.Event{
		T: completion, Kind: trace.KindServed, Class: class,
		Arrival: arrival, Push: push,
	})
	if push {
		cm.PushDelay.Add(d)
	} else {
		cm.PullDelay.Add(d)
	}
}

// Run is a convenience: build a Server from cfg and run it.
func Run(cfg Config) (*Metrics, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}
