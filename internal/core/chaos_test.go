package core

import (
	"math"
	"testing"
	"testing/quick"

	"hybridqos/internal/bandwidth"
	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/sched"
)

// TestPropertyRandomConfigInvariants fuzzes the whole server with random
// valid configurations and checks the invariants that must hold for ANY of
// them:
//
//   - accounting: served + dropped + expired + uplink-lost ≤ arrivals;
//   - no negative or NaN delays; recorded delays respect the TTL;
//   - alternation: pull transmissions ≤ push broadcasts + 1 when K ≥ 1;
//   - queue means are non-negative; distinct items ≤ pending requests;
//   - without bandwidth constraints nothing drops; without TTL nothing
//     expires.
func TestPropertyRandomConfigInvariants(t *testing.T) {
	check := func(seedRaw uint16, kRaw, thetaRaw, alphaRaw, lenSeed, polRaw uint8, withBW, withTTL bool) bool {
		theta := float64(thetaRaw%150) / 100
		alpha := float64(alphaRaw%101) / 100
		d := 40 + int(seedRaw%40)
		k := int(kRaw) % (d + 1)
		cat, err := catalog.Generate(catalog.Config{
			D: d, Theta: theta, MinLen: 1, MaxLen: 5, Seed: uint64(lenSeed),
		})
		if err != nil {
			return false
		}
		cl, err := clients.New(clients.PaperConfig())
		if err != nil {
			return false
		}
		cfg := Config{
			Catalog:        cat,
			Classes:        cl,
			Lambda:         0.5 + float64(seedRaw%80)/10,
			Cutoff:         k,
			Alpha:          alpha,
			Horizon:        600,
			WarmupFraction: 0.1,
			Seed:           uint64(seedRaw),
		}
		switch polRaw % 5 {
		case 1:
			cfg.PullPolicy = sched.FCFS{}
		case 2:
			cfg.PullPolicy = sched.MRF{}
		case 3:
			cfg.PullPolicy = sched.RxW{}
		case 4:
			cfg.PullPolicy = sched.ClassicStretch{}
		}
		if withBW {
			cfg.Bandwidth = &bandwidth.Config{
				Total:      4 + float64(seedRaw%20),
				Fractions:  []float64{0.5, 0.3, 0.2},
				DemandMean: float64(seedRaw%3) + 0.5,
			}
		}
		if withTTL {
			cfg.RequestTTL = 20 + float64(seedRaw%100)
		}

		m, err := Run(cfg)
		if err != nil {
			t.Logf("run error: %v", err)
			return false
		}
		for _, cm := range m.PerClass {
			if cm.Served+cm.Dropped+cm.Expired+cm.UplinkLost > cm.Arrivals {
				t.Logf("accounting: served %d dropped %d expired %d lost %d arrivals %d",
					cm.Served, cm.Dropped, cm.Expired, cm.UplinkLost, cm.Arrivals)
				return false
			}
			if cm.Delay.N() > 0 {
				if cm.Delay.Min() < 0 || math.IsNaN(cm.Delay.Mean()) {
					return false
				}
				if cfg.RequestTTL > 0 && cm.Delay.Max() > cfg.RequestTTL {
					return false
				}
			}
			if !withBW && cm.Dropped != 0 {
				return false
			}
			if !withTTL && cm.Expired != 0 {
				return false
			}
		}
		if cfg.Cutoff >= 1 && m.PullTransmissions > m.PushBroadcasts+1 {
			return false
		}
		if cfg.Cutoff == 0 && m.PushBroadcasts != 0 {
			return false
		}
		qi, qr := m.QueueItems.Mean(), m.QueueRequests.Mean()
		if !math.IsNaN(qi) && qi < 0 {
			return false
		}
		if !math.IsNaN(qi) && !math.IsNaN(qr) && qr < qi-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySeedDeterminismAcrossConfigs: any random config run twice with
// the same seed must be bit-identical in its headline metrics.
func TestPropertySeedDeterminismAcrossConfigs(t *testing.T) {
	check := func(seedRaw uint16, kRaw uint8) bool {
		cat, err := catalog.Generate(catalog.PaperConfig(0.8, uint64(seedRaw)))
		if err != nil {
			return false
		}
		cl, err := clients.New(clients.PaperConfig())
		if err != nil {
			return false
		}
		cfg := Config{
			Catalog:        cat,
			Classes:        cl,
			Lambda:         5,
			Cutoff:         int(kRaw) % 101,
			Alpha:          0.5,
			Horizon:        400,
			WarmupFraction: 0.1,
			Seed:           uint64(seedRaw),
		}
		a, err := Run(cfg)
		if err != nil {
			return false
		}
		b, err := Run(cfg)
		if err != nil {
			return false
		}
		if a.PushBroadcasts != b.PushBroadcasts || a.PullTransmissions != b.PullTransmissions {
			return false
		}
		for c := range a.PerClass {
			if a.PerClass[c].Served != b.PerClass[c].Served {
				return false
			}
			am, bm := a.PerClass[c].Delay.Mean(), b.PerClass[c].Delay.Mean()
			if !(math.IsNaN(am) && math.IsNaN(bm)) && am != bm {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
