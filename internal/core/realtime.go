package core

// This file is the serving mode: the same hybrid push/pull slot machinery
// as the simulation engine, driven by externally submitted requests on any
// clock.Clock instead of generated arrivals on the virtual one. cmd/qosd
// mounts it on a Wall clock; the chaos tests mount it on a Virtual clock
// and replay identical scenarios deterministically.

import (
	"fmt"
	"math"

	"hybridqos/internal/admission"
	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/clock"
	"hybridqos/internal/policy"
	"hybridqos/internal/pullqueue"
	"hybridqos/internal/sched"
	"hybridqos/internal/span"
	"hybridqos/internal/telemetry"
	"hybridqos/internal/trace"
)

// Outcome is the terminal state of an admitted realtime request.
type Outcome int

const (
	// OutcomeServed: the item's transmission completed by the deadline.
	OutcomeServed Outcome = iota
	// OutcomeExpired: the deadline passed first. The callback fires exactly
	// at the deadline, never after — a deadline that ties with a completion
	// resolves to expiry, because the expiry timer was scheduled first and
	// same-instant handlers fire in scheduling order on both clocks.
	OutcomeExpired
)

// String names the outcome for logs and HTTP responses.
func (o Outcome) String() string {
	if o == OutcomeServed {
		return "served"
	}
	return "expired"
}

// Result reports an admitted request's terminal state to its Done callback.
type Result struct {
	Outcome Outcome
	// Delay is completion − submission in broadcast units (served only).
	Delay float64
	// Push reports whether a broadcast (vs an on-demand pull) served it.
	Push bool
}

// RealtimeRequest is one externally submitted request.
type RealtimeRequest struct {
	// Item is the catalog rank in [1, D].
	Item int
	// Class is the requester's service class.
	Class clients.Class
	// DeadlineIn optionally overrides the class's delay budget for this
	// request, in broadcast units from now; 0 uses the admission
	// controller's per-class deadline. Must not exceed the class budget —
	// clients cannot buy more patience than their class is sold.
	DeadlineIn float64
	// Done receives the terminal outcome if (and only if) the request is
	// admitted: exactly one call, on the clock's goroutine, at or before
	// the deadline.
	Done func(Result)
}

// RealtimeConfig parameterises a serving engine.
type RealtimeConfig struct {
	// Catalog is the item database (required).
	Catalog *catalog.Catalog
	// Classes is the service classification (required); its class count
	// must match the admission controller's.
	Classes *clients.Classification
	// Cutoff is K: items 1..K are broadcast, K+1..D served on demand.
	Cutoff int
	// Alpha is Eq. 1's mixing fraction for the default gamma pull policy.
	Alpha float64
	// PullPolicyName and PushPolicyName select registry policies exactly as
	// in the simulation Config; empty picks the paper's defaults.
	PullPolicyName string
	PushPolicyName string
	// PushDisks is the broadcast-disk count for the broadcast-disk push
	// scheduler; 0 selects the policy package's default.
	PushDisks int
	// Clock is the engine's time source (required): Virtual in tests, Wall
	// in cmd/qosd. Every Realtime method must be called on its goroutine.
	Clock clock.Clock
	// Admission configures the class-aware front door (required).
	Admission admission.Config
	// Telemetry, when non-nil, receives arrivals, verdicts, outcomes and
	// queue/shed gauges.
	Telemetry *telemetry.Collector
	// Spans, when non-nil, records per-request spans for head-sampled
	// requests into a ring buffer (see realtime_spans.go).
	Spans *RealtimeSpanConfig
}

// Validate audits the configuration.
func (c RealtimeConfig) Validate() error {
	if c.Catalog == nil || c.Catalog.D() == 0 {
		return fmt.Errorf("core: realtime needs a non-empty catalog")
	}
	for rank := 1; rank <= c.Catalog.D(); rank++ {
		if l := c.Catalog.Length(rank); l <= 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return fmt.Errorf("core: invalid length %g for item %d", l, rank)
		}
	}
	if c.Classes == nil || c.Classes.NumClasses() == 0 {
		return fmt.Errorf("core: realtime needs a classification")
	}
	if c.Cutoff < 0 || c.Cutoff > c.Catalog.D() {
		return fmt.Errorf("core: cutoff %d out of [0,%d]", c.Cutoff, c.Catalog.D())
	}
	if err := pullqueue.ValidateAlpha(c.Alpha); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.Clock == nil {
		return fmt.Errorf("core: realtime needs a clock")
	}
	if err := c.Admission.Validate(); err != nil {
		return err
	}
	if got, want := len(c.Admission.Classes), c.Classes.NumClasses(); got != want {
		return fmt.Errorf("core: admission configures %d classes, classification has %d", got, want)
	}
	if sc := c.Spans; sc != nil {
		if sc.Rate < 0 || sc.Rate > 1 || math.IsNaN(sc.Rate) {
			return fmt.Errorf("core: span sampling rate %g outside [0,1]", sc.Rate)
		}
		if sc.Rate > 0 && sc.Rate < 1 && sc.RNG == nil {
			return fmt.Errorf("core: span rate %g needs a sampling RNG", sc.Rate)
		}
		if sc.Buffer < 0 {
			return fmt.Errorf("core: negative span buffer %d", sc.Buffer)
		}
	}
	return nil
}

// Realtime is the serving engine. It is single-goroutine: every method must
// run on the configured clock's handler goroutine (cmd/qosd bridges HTTP
// handlers in via Wall.Submit).
type Realtime struct {
	cfg      RealtimeConfig
	cutoff   int // effective K: 0 under the "none" push policy
	clk      clock.Clock
	ctl      *admission.Controller
	selector sched.Selector
	pushSch  sched.PushScheduler
	tele     *telemetry.Collector

	// reqs holds every admitted request's state in a struct-of-arrays
	// arena (see arena.go). Pull-queue tags and push-waiter lists carry
	// generation-packed handles, so a delivered entry finds which of its
	// requests are still waiting by handle validation — the retired
	// live map's job without the hashing or the per-request allocation.
	reqs reqArena
	// pushWaiters is indexed by push rank (1..cutoff); slot 0 unused.
	// Elements are arena handles; stale ones (expired mid-wait) go inert.
	pushWaiters [][]int64

	// Span recording state (realtime_spans.go); spanCfg nil = disabled.
	spanCfg  *RealtimeSpanConfig
	spanSeq  int64
	spanRing []*span.Span
	spanHead int

	pending  int // admitted, not yet terminal
	started  bool
	idle     bool // no transmission in flight (cutoff 0 or stopped)
	draining bool
	stopped  bool // drain complete: the slot loop schedules nothing more

	onDrained func()
}

// NewRealtime builds a serving engine. Start must be called (on the clock
// goroutine) before the first Submit.
func NewRealtime(cfg RealtimeConfig) (*Realtime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	params := policy.Params{
		Alpha:   cfg.Alpha,
		Disks:   cfg.PushDisks,
		Catalog: cfg.Catalog,
		Cutoff:  cfg.Cutoff,
	}
	pull, err := policy.NewPull(cfg.PullPolicyName, params)
	if err != nil {
		return nil, err
	}
	sel, err := sched.NewSelector(pull)
	if err != nil {
		return nil, err
	}
	ctl, err := admission.New(cfg.Admission)
	if err != nil {
		return nil, err
	}
	rt := &Realtime{
		cfg:      cfg,
		cutoff:   cfg.Cutoff,
		clk:      cfg.Clock,
		ctl:      ctl,
		selector: sel,
		tele:     cfg.Telemetry,
	}
	if cfg.Cutoff > 0 {
		ps, err := policy.NewPush(cfg.PushPolicyName, params)
		if err != nil {
			return nil, err
		}
		if _, none := ps.(sched.NoPush); none {
			rt.cutoff = 0
		} else {
			rt.pushSch = ps
		}
	}
	rt.pushWaiters = make([][]int64, rt.cutoff+1)
	if cfg.Spans != nil && cfg.Spans.Rate > 0 {
		sc := *cfg.Spans
		if sc.Buffer == 0 {
			sc.Buffer = defaultSpanBuffer
		}
		rt.spanCfg = &sc
		rt.spanRing = make([]*span.Span, 0, sc.Buffer)
	}
	return rt, nil
}

// Start begins the broadcast loop (a no-op slot-wise when the effective
// cutoff is 0: the channel idles until the first pull request).
func (rt *Realtime) Start() {
	if rt.started {
		panic("core: realtime Start called twice")
	}
	rt.started = true
	if rt.cutoff > 0 {
		rt.startPush()
	} else {
		rt.idle = true
	}
	rt.observe()
}

// Pending returns the number of admitted, not-yet-terminal requests.
func (rt *Realtime) Pending() int { return rt.pending }

// Draining reports whether Drain has been called.
func (rt *Realtime) Draining() bool { return rt.draining }

// ShedLevel returns the admission controller's current shed level.
func (rt *Realtime) ShedLevel() int { return rt.ctl.ShedLevel() }

// Deadline returns the class's delay budget in broadcast units.
func (rt *Realtime) Deadline(class clients.Class) float64 {
	return rt.ctl.Deadline(int(class))
}

// NumClasses returns the configured class count.
func (rt *Realtime) NumClasses() int { return rt.cfg.Classes.NumClasses() }

// Submit routes one request through admission and into the engine. The
// verdict is admission.Admitted when the request entered: its Done callback
// will fire exactly once, at or before the deadline. Any other verdict
// means refusal — Done never fires. Submitting to a draining or unstarted
// engine, or an item outside [1, D], panics: those are caller contract
// violations (cmd/qosd validates requests and gates on Draining first).
func (rt *Realtime) Submit(req RealtimeRequest) admission.Verdict {
	if !rt.started {
		panic("core: Submit before Start")
	}
	if rt.draining {
		panic("core: Submit on a draining engine")
	}
	if req.Item < 1 || req.Item > rt.cfg.Catalog.D() {
		panic(fmt.Sprintf("core: item %d outside [1,%d]", req.Item, rt.cfg.Catalog.D()))
	}
	if req.Done == nil {
		panic("core: realtime request without a Done callback")
	}
	now := rt.clk.Now()
	class := int(req.Class)
	if rt.tele != nil {
		rt.tele.Arrival(class)
	}
	v := rt.ctl.Admit(now, class, rt.pending)
	if rt.tele != nil {
		rt.tele.ObserveShedLevel(rt.ctl.ShedLevel())
	}
	if v != admission.Admitted {
		rt.noteRefusal(class, v)
		rt.refusalSpan(req.Item, req.Class, refusalOutcome(v))
		return v
	}

	budget := rt.ctl.Deadline(class)
	if req.DeadlineIn > 0 && req.DeadlineIn < budget {
		budget = req.DeadlineIn
	}
	slot := rt.reqs.alloc()
	rt.reqs.item[slot] = int32(req.Item)
	rt.reqs.class[slot] = req.Class
	rt.reqs.arrival[slot] = now
	rt.reqs.deadline[slot] = now + budget
	rt.reqs.done[slot] = req.Done
	h := rt.reqs.handle(slot)
	rt.pending++
	// The expiry timer is booked before any transmission that could serve
	// the request, so a completion landing exactly on the deadline loses
	// the tie and the client hears "expired" — never a late success.
	rt.reqs.expiry[slot] = rt.clk.At(rt.reqs.deadline[slot], func() { rt.expire(h) })
	verdict := trace.VerdictPull
	if req.Item <= rt.cutoff {
		verdict = trace.VerdictPush
	}
	rt.reqs.sp[slot] = rt.newSpan(req.Item, req.Class, now, verdict)

	if req.Item <= rt.cutoff {
		rt.addPushWaiter(req.Item, h)
		return v
	}
	rt.selector.Add(pullqueue.Request{
		Item:     req.Item,
		Class:    req.Class,
		Priority: rt.cfg.Classes.Weight(req.Class),
		Arrival:  now,
		Client:   -1,
		Tag:      h,
	}, rt.cfg.Catalog.Length(req.Item))
	rt.observe()
	if rt.idle {
		rt.idle = false
		rt.attemptPull()
	}
	return v
}

// Drain stops admission permanently and runs the engine until every
// admitted request has reached its terminal outcome; deadlines bound the
// wait. onDrained fires exactly once, on the clock goroutine, when the last
// request resolves (synchronously when nothing is pending).
func (rt *Realtime) Drain(onDrained func()) {
	if rt.draining {
		panic("core: Drain called twice")
	}
	rt.draining = true
	rt.onDrained = onDrained
	if rt.tele != nil {
		rt.tele.ObserveDraining(true)
	}
	if rt.pending == 0 {
		rt.finishDrain()
	}
}

// noteRefusal counts a non-admitted verdict into telemetry.
func (rt *Realtime) noteRefusal(class int, v admission.Verdict) {
	if rt.tele == nil {
		return
	}
	switch v {
	case admission.ShedOverload:
		rt.tele.Shed(class)
	case admission.RateLimited:
		rt.tele.RateLimited(class)
	case admission.QuotaExceeded:
		rt.tele.QuotaExceeded(class)
	}
}

// addPushWaiter parks an admitted push request's handle under its item's
// rank until the next broadcast of that item.
//
//qos:hotpath
func (rt *Realtime) addPushWaiter(item int, h int64) {
	w := rt.pushWaiters[item]
	if n := len(w); n < cap(w) {
		w = w[:n+1]
		w[n] = h
		rt.pushWaiters[item] = w
	} else {
		rt.pushWaiterGrow(item, h)
	}
}

// pushWaiterGrow is addPushWaiter's cold path: each rank's waiter list
// grows to its peak burst size once, then recycles via the [:0] reset in
// completePush.
func (rt *Realtime) pushWaiterGrow(item int, h int64) {
	rt.pushWaiters[item] = append(rt.pushWaiters[item], h)
}

// expire resolves a request whose deadline arrived before its item. Stale
// handles (request already terminal) are inert; the timer is cancelled on
// serve, so this is pure defence in depth.
func (rt *Realtime) expire(h int64) {
	slot, ok := rt.reqs.lookup(h)
	if !ok || rt.reqs.terminal[slot] {
		return
	}
	if rt.tele != nil {
		rt.tele.Expired(int(rt.reqs.class[slot]))
	}
	rt.closeSpan(slot, rt.clk.Now(), trace.EndExpired, false)
	rt.finish(slot, Result{Outcome: OutcomeExpired})
}

// serve resolves a request whose item completed transmission in time.
//
//qos:hotpath
func (rt *Realtime) serve(slot int32, now float64, push bool) {
	rt.clk.Cancel(rt.reqs.expiry[slot])
	d := now - rt.reqs.arrival[slot]
	if rt.tele != nil {
		rt.tele.Served(int(rt.reqs.class[slot]), d, push)
	}
	if rt.reqs.sp[slot] != nil {
		rt.closeSpan(slot, now, trace.EndServed, push)
	}
	rt.finish(slot, Result{Outcome: OutcomeServed, Delay: d, Push: push})
}

// finish is the single terminal path: quota release, slot recycling,
// callback, drain check. The slot is released before the callback runs, so
// a Done handler that submits a follow-up request reuses it immediately.
//
//qos:hotpath
func (rt *Realtime) finish(slot int32, res Result) {
	rt.reqs.terminal[slot] = true
	rt.ctl.Release(int(rt.reqs.class[slot]))
	rt.pending--
	done := rt.reqs.done[slot]
	rt.reqs.release(slot)
	done(res)
	if rt.draining && rt.pending == 0 && !rt.stopped {
		rt.finishDrain()
	}
}

// finishDrain marks the slot loop stopped and reports drain completion. Any
// in-flight transmission event still fires, sees stopped, and does nothing.
func (rt *Realtime) finishDrain() {
	rt.stopped = true
	if rt.onDrained != nil {
		rt.onDrained()
	}
}

// observe samples queue depth into telemetry.
func (rt *Realtime) observe() {
	if rt.tele != nil {
		rt.tele.ObserveQueue(rt.selector.Items(), rt.selector.Requests())
	}
}

// startPush begins the next broadcast transmission.
func (rt *Realtime) startPush() {
	item := rt.pushSch.Next()
	rt.clk.After(rt.cfg.Catalog.Length(item), func() { rt.completePush(item) })
}

// completePush serves the item's surviving waiters and hands the slot to
// the pull system.
func (rt *Realtime) completePush(item int) {
	if rt.stopped {
		return
	}
	now := rt.clk.Now()
	if rt.tele != nil {
		rt.tele.PushComplete()
	}
	for _, h := range rt.pushWaiters[item] {
		if slot, ok := rt.reqs.lookup(h); ok && !rt.reqs.terminal[slot] {
			rt.serve(slot, now, true)
		}
	}
	rt.pushWaiters[item] = rt.pushWaiters[item][:0]
	if rt.stopped { // the last waiter completed the drain
		return
	}
	rt.attemptPull()
}

// attemptPull transmits the best pull entry that still has a live request,
// recycling entries whose every request already expired (their clients were
// answered at their deadlines; broadcasting the item would serve no one).
func (rt *Realtime) attemptPull() {
	for {
		entry := rt.selector.ExtractBest(rt.clk.Now())
		if entry == nil {
			rt.observe()
			if rt.cutoff > 0 {
				rt.startPush()
			} else {
				rt.idle = true
			}
			return
		}
		alive := 0
		for _, q := range entry.Requests {
			if rt.reqs.alive(q.Tag) {
				alive++
			}
		}
		if alive == 0 {
			rt.selector.Recycle(entry)
			continue
		}
		rt.observe()
		rt.clk.After(entry.Length, func() { rt.completePull(entry) })
		return
	}
}

// completePull satisfies the entry's surviving requests and returns the
// slot to the push system.
func (rt *Realtime) completePull(entry *pullqueue.Entry) {
	if rt.stopped {
		rt.selector.Recycle(entry)
		return
	}
	now := rt.clk.Now()
	if rt.tele != nil {
		rt.tele.PullComplete()
	}
	for _, q := range entry.Requests {
		if slot, ok := rt.reqs.lookup(q.Tag); ok && !rt.reqs.terminal[slot] {
			rt.serve(slot, now, false)
		}
	}
	rt.selector.Recycle(entry)
	if rt.stopped { // serving the entry completed the drain
		return
	}
	if rt.cutoff > 0 {
		rt.startPush()
	} else {
		rt.attemptPull()
	}
}
