package core

import (
	"math"
	"testing"

	"hybridqos/internal/workload"
)

func TestBurstyArrivalsRaiseDelay(t *testing.T) {
	// Same mean rate, bursty vs Poisson: burstiness must not reduce the
	// measured delay (queueing theory: variability hurts).
	base := baseConfig(t)
	base.Horizon = 20000
	poisson, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	bursty := base
	mm, err := workload.Bursty(base.Lambda, 3, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	bursty.Arrivals = mm
	burstyM, err := Run(bursty)
	if err != nil {
		t.Fatal(err)
	}
	if burstyM.OverallMeanDelay() < poisson.OverallMeanDelay()*0.95 {
		t.Fatalf("bursty delay %g below Poisson %g",
			burstyM.OverallMeanDelay(), poisson.OverallMeanDelay())
	}
}

func TestBatchArrivalsPreserveThroughput(t *testing.T) {
	// Batch arrivals with the same total rate: total served should be in
	// the same ballpark (multicast absorbs the batches).
	base := baseConfig(t)
	base.Horizon = 10000
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	batched := base
	bp, err := workload.NewBatchPoisson(base.Lambda/3, 3)
	if err != nil {
		t.Fatal(err)
	}
	batched.Arrivals = bp
	batchM, err := Run(batched)
	if err != nil {
		t.Fatal(err)
	}
	served := func(m *Metrics) int64 {
		var n int64
		for _, cm := range m.PerClass {
			n += cm.Served
		}
		return n
	}
	a, b := served(plain), served(batchM)
	if math.Abs(float64(a-b))/float64(a) > 0.15 {
		t.Fatalf("served counts diverge: plain %d vs batched %d", a, b)
	}
}

func TestRotatingPopularityHurtsStaticPushSet(t *testing.T) {
	// When the hot set rotates away from the static push set, delays must
	// rise: the broadcast serves cold items while hot ones queue.
	base := baseConfig(t)
	base.Horizon = 20000
	static, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rotating := base
	rot, err := workload.NewRotatingPopularity(base.Catalog, 2000, 25)
	if err != nil {
		t.Fatal(err)
	}
	rotating.Items = rot
	rotM, err := Run(rotating)
	if err != nil {
		t.Fatal(err)
	}
	if rotM.OverallMeanDelay() <= static.OverallMeanDelay() {
		t.Fatalf("rotating popularity delay %g not above static %g",
			rotM.OverallMeanDelay(), static.OverallMeanDelay())
	}
}

func TestRequestTTLExpiry(t *testing.T) {
	base := baseConfig(t)
	base.Horizon = 10000
	base.RequestTTL = 30 // tighter than the typical delay: expiries expected
	m, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	var expired, served int64
	for _, cm := range m.PerClass {
		expired += cm.Expired
		served += cm.Served
		// All recorded delays respect the deadline.
		if cm.Delay.N() > 0 && cm.Delay.Max() > base.RequestTTL {
			t.Fatalf("class %v recorded delay %g beyond TTL %g",
				cm.Class, cm.Delay.Max(), base.RequestTTL)
		}
		if r := cm.ExpiryRate(); r < 0 || r > 1 {
			t.Fatalf("expiry rate %g", r)
		}
	}
	if expired == 0 {
		t.Fatal("tight TTL produced no expiries")
	}
	if served == 0 {
		t.Fatal("tight TTL served nothing at all")
	}
}

func TestNoTTLNoExpiry(t *testing.T) {
	m, err := Run(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, cm := range m.PerClass {
		if cm.Expired != 0 {
			t.Fatalf("expiries without TTL: %d", cm.Expired)
		}
	}
}

func TestNegativeTTLRejected(t *testing.T) {
	cfg := baseConfig(t)
	cfg.RequestTTL = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative TTL accepted")
	}
}

func TestCustomArrivalsDeterministic(t *testing.T) {
	mk := func() *Metrics {
		cfg := baseConfig(t)
		mm, err := workload.Bursty(cfg.Lambda, 2, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Arrivals = mm
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := mk(), mk()
	if a.OverallMeanDelay() != b.OverallMeanDelay() {
		t.Fatal("bursty runs with equal seeds differ")
	}
}
