// Package core implements the paper's contribution: the hybrid
// push/pull scheduling server with priority-based service classification
// (section 3, Figure 1).
//
// The package is split into an *engine* (this file: the discrete-event
// machinery, request routing, metrics) and pluggable *policies* resolved by
// name through internal/policy: a push scheduler orders the broadcast cycle
// of items 1..K, and a pull policy scores the on-demand queue for items
// K+1..D. With the default policies the server reproduces the paper: items
// 1..K are broadcast in a flat round-robin; after every push transmission,
// if the pull queue is non-empty the server extracts the entry with the
// maximum importance factor γ_i = α·S_i + (1−α)·Q_i, reserves bandwidth
// from the pool of the entry's governing (highest-priority requesting)
// class, and either transmits it — satisfying every pending request for the
// item at once — or, when the Poisson bandwidth demand exceeds the class's
// available bandwidth, drops the item and all its pending requests
// (blocking).
//
// The implementation is a deterministic discrete-event simulation: a single
// seed reproduces the full event trajectory, whatever the policies.
package core

import (
	"hybridqos/internal/bandwidth"
	"hybridqos/internal/cache"
	"hybridqos/internal/clients"
	"hybridqos/internal/clock"
	"hybridqos/internal/faults"
	"hybridqos/internal/pullqueue"
	"hybridqos/internal/rng"
	"hybridqos/internal/sched"
	"hybridqos/internal/telemetry"
	"hybridqos/internal/trace"
	"hybridqos/internal/uplink"
	"hybridqos/internal/workload"
)

// pushWaiter is a client waiting for a push item's next broadcast.
type pushWaiter struct {
	class   clients.Class
	arrival float64
	// joined is when the waiter registered at THIS cell: the arrival for
	// local requests, the re-attach time for injected roamers (whose
	// arrival keeps the origin-cell value for deadline accounting). Span
	// service segments start no earlier than joined.
	joined float64
	client int   // −1 when client identity is not tracked
	span   int64 // span ID when the request is sampled, 0 otherwise
}

// Server is one configured simulation instance. All time access goes
// through the clock.Clock interface; the sim instantiates it as a Virtual
// clock (the serving mode's Realtime engine shares the same machinery on a
// Wall clock).
type Server struct {
	cfg      Config
	cutoff   int         // effective K: 0 under the "none" push policy
	clk      clock.Clock // the engine's only time source (s.vclk, as an interface)
	vclk     *clock.Virtual
	arrRng   *rng.Source
	itemRng  *rng.Source
	classRng *rng.Source

	pushSched sched.PushScheduler
	selector  sched.Selector
	alloc     *bandwidth.Allocator
	arrivals  workload.ArrivalProcess
	items     workload.ItemSampler
	tracer    trace.Tracer
	tele      *telemetry.Collector
	up        uplink.Channel
	uplinkRng *rng.Source
	caches    *cache.Population
	clientRng *rng.Source
	txCounts  []int64 // per-rank transmission counts (PIX frequency)
	txTotal   int64
	// pushWaiters is indexed by push rank (1..cutoff); slot 0 is unused.
	// Slices are reset to length 0 on drain, so waiter capacity is reused
	// across broadcast cycles instead of reallocated per arrival burst.
	pushWaiters [][]pushWaiter

	loss           faults.LossModel
	lossRng        *rng.Source
	retryRng       *rng.Source
	shedder        *faults.Shedder
	pendingRetries int // re-requests booked but not yet delivered

	// Batched admission (see beginAdmitBatch): when the shedder's hysteresis
	// level is provably frozen for the whole arrival burst, every decision in
	// the burst is answered by one comparison against admitCut instead of a
	// per-request Admit. splitAdmitBatches (tests only) forces the fallback.
	admitBatch        bool
	admitCut          int
	splitAdmitBatches bool

	// emitOn gates trace-event construction on the hot path: false when the
	// tracer is the no-op sink and telemetry is off, where emit would copy a
	// large Event struct per call only to discard it. Guarded sites are
	// behavior-identical because emit has no side effects in that state.
	emitOn bool

	// Span provenance (nil spanRng = disabled; the zero cost of spans-off
	// is a single nil check on the hot path).
	spanRng    *rng.Source
	spanRates  []float64 // per-class sampling probability, defaults filled
	spanIDBase int64     // cell namespace offset for minted span IDs
	spanNext   int64     // last minted span sequence number

	// Cached event handlers. The arrival chain, the push transmission and
	// the pull transmission are each single-outstanding (the downlink is
	// serial and the arrival chain re-books itself), so one reused closure
	// per kind — with its pending state in the fields below — replaces a
	// fresh capturing closure per event. This is what the //qos:hotpath
	// annotations hold the scheduling sites to.
	arrivalH  func()
	pushH     func()
	pullH     func()
	nextBatch int              // batch size for the booked arrival event
	pushItem  int              // item of the in-flight push transmission
	pullEntry *pullqueue.Entry // entry of the in-flight pull transmission
	pullGrant *bandwidth.Grant // its bandwidth grant, nil without an allocator

	warmupEnd float64
	metrics   *Metrics
	idle      bool // only reachable when the effective cutoff is 0
}

// New builds a Server from the configuration.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	vclk := clock.NewVirtual()
	s := &Server{
		cfg:       cfg,
		cutoff:    cfg.Cutoff,
		clk:       vclk,
		vclk:      vclk,
		arrRng:    root.Split("arrivals"),
		itemRng:   root.Split("items"),
		classRng:  root.Split("classes"),
		warmupEnd: cfg.Horizon * cfg.WarmupFraction,
	}

	pull, err := cfg.buildPullPolicy()
	if err != nil {
		return nil, err
	}
	sel, err := sched.NewSelector(pull)
	if err != nil {
		return nil, err
	}
	s.selector = sel

	if cfg.Cutoff > 0 {
		ps, err := cfg.buildPushScheduler()
		if err != nil {
			return nil, err
		}
		if _, none := ps.(sched.NoPush); none {
			// Pure-pull degenerate: the push set is treated as empty and
			// every request is routed through the pull queue.
			s.cutoff = 0
		} else {
			s.pushSched = ps
		}
	}

	if cfg.Bandwidth != nil {
		a, err := bandwidth.New(*cfg.Bandwidth, root.Split("bandwidth"))
		if err != nil {
			return nil, err
		}
		s.alloc = a
	}

	s.arrivals = cfg.Arrivals
	if s.arrivals == nil {
		p, err := workload.NewPoisson(cfg.Lambda)
		if err != nil {
			return nil, err
		}
		s.arrivals = p
	}
	s.items = cfg.Items
	if s.items == nil {
		s.items = workload.StaticPopularity{Catalog: cfg.Catalog}
	}
	s.tracer = cfg.Tracer
	if s.tracer == nil {
		s.tracer = trace.Nop{}
	}
	s.tele = cfg.Telemetry
	_, nop := s.tracer.(trace.Nop)
	s.emitOn = !nop || s.tele != nil
	s.up = cfg.Uplink
	if s.up == nil {
		s.up = uplink.Unlimited{}
	}
	s.uplinkRng = root.Split("uplink")
	if cfg.ClientCache != nil {
		pop, err := cache.NewPopulation(cfg.ClientCache.NumClients, cfg.ClientCache.Capacity, cfg.ClientCache.Policy)
		if err != nil {
			return nil, err
		}
		s.caches = pop
		s.clientRng = root.Split("clients")
		s.txCounts = make([]int64, cfg.Catalog.D()+1)
	}
	// Fault-layer streams are split last so enabling the layer never
	// perturbs the streams above — a run with Loss nil (or a 0-probability
	// model) is bit-identical to one without the fault layer at all.
	s.loss = cfg.Loss
	s.lossRng = root.Split("faults-loss")
	s.retryRng = root.Split("faults-retry")
	if cfg.Shed != nil {
		sh, err := faults.NewShedder(*cfg.Shed, cfg.Classes.NumClasses())
		if err != nil {
			return nil, err
		}
		s.shedder = sh
	}
	// The span sampling stream is split after every other stream for the
	// same reason the fault streams come after the workload streams:
	// enabling span provenance must never perturb the draws above, so a
	// spans-off run is bit-identical to a build without the span layer and
	// a spans-on run is trajectory-identical (extra events, same draws).
	if cfg.Spans != nil {
		s.spanRng = root.Split("spans")
		s.spanIDBase = cfg.Spans.IDBase
		s.spanRates = make([]float64, cfg.Classes.NumClasses())
		for c := range s.spanRates {
			if c < len(cfg.Spans.Rates) {
				s.spanRates[c] = cfg.Spans.Rates[c]
			} else {
				s.spanRates[c] = 1
			}
		}
	}

	// The waiter table is indexed by push rank; ranks run 1..cutoff, using
	// the effective cutoff (a "none" push scheduler zeroes it above).
	s.pushWaiters = make([][]pushWaiter, s.cutoff+1)

	// Build the reused handlers once; see the field comments for why each
	// kind is single-outstanding and therefore safe to share state through
	// the Server fields.
	s.arrivalH = func() {
		n := s.nextBatch
		s.beginAdmitBatch(n)
		for i := 0; i < n; i++ {
			s.handleArrival()
		}
		s.admitBatch = false
		s.scheduleNextArrival()
	}
	s.pushH = func() { s.completePush(s.pushItem) }
	s.pullH = func() {
		entry, grant := s.pullEntry, s.pullGrant
		s.pullEntry, s.pullGrant = nil, nil
		s.completePull(entry, grant)
	}

	s.metrics = &Metrics{Horizon: cfg.Horizon, Cutoff: cfg.Cutoff}
	for c := 0; c < cfg.Classes.NumClasses(); c++ {
		cm := &ClassMetrics{
			Class:  clients.Class(c),
			Weight: cfg.Classes.Weight(clients.Class(c)),
		}
		if cfg.DelayHistBound > 0 {
			cm.DelayHist.SetBound(cfg.DelayHistBound)
		}
		s.metrics.PerClass = append(s.metrics.PerClass, cm)
	}
	return s, nil
}

// emit routes one trace event to both consumers: the configured tracer and
// — via trace.Apply, the single definition of the event→metric mapping —
// the telemetry collector. Keeping both behind one call site is what makes
// the replay audit exact: the collector sees events in precisely the order
// the trace records them.
//
//qos:hotpath
func (s *Server) emit(e trace.Event) {
	s.tracer.Event(e)
	trace.Apply(s.tele, e)
}

// observeBandwidth samples every class's bandwidth occupancy
// (capacity − available) into the telemetry gauges.
func (s *Server) observeBandwidth() {
	if s.tele == nil || s.alloc == nil {
		return
	}
	for c := 0; c < s.alloc.NumClasses(); c++ {
		cl := clients.Class(c)
		s.tele.ObserveBandwidth(c, s.alloc.Capacity(cl)-s.alloc.Available(cl))
	}
}

// observePendingRetries samples the outstanding-retry count into telemetry.
func (s *Server) observePendingRetries() {
	if s.tele != nil {
		s.tele.ObservePendingRetries(s.pendingRetries)
	}
}

// scheduleSnapshot books the k-th periodic telemetry snapshot (1-based) at
// simulated time k·every. Snapshots are chained rather than pre-booked so
// the event heap stays small. The callback only reads simulation state —
// no RNG draws, no queue mutations — so a telemetry-enabled run follows a
// trajectory bit-identical to the same run without it.
func (s *Server) scheduleSnapshot(k int64) {
	t := float64(k) * s.tele.SnapshotEvery()
	if t > s.cfg.Horizon {
		return
	}
	s.clk.At(t, func() {
		s.emit(trace.Event{T: t, Kind: trace.KindSnapshot, Class: -1, Snap: s.tele.TakeSnapshot(t)})
		s.scheduleSnapshot(k + 1)
	})
}

// Run executes the simulation to its horizon and returns the metrics.
// Run may be called once per Server. It is exactly Start + AdvanceTo(horizon)
// + Finish — the cell lifecycle (cell.go) with no intermediate stops — so a
// single-cell run is bit-identical whichever way it is driven.
func (s *Server) Run() *Metrics {
	s.Start()
	s.AdvanceTo(s.cfg.Horizon)
	return s.Finish()
}

// observeQueue snapshots queue sizes into the time-weighted trackers and the
// telemetry gauges.
//
//qos:hotpath
func (s *Server) observeQueue() {
	now := s.clk.Now()
	items, requests := s.selector.Items(), s.selector.Requests()
	s.metrics.QueueItems.Observe(now, float64(items))
	s.metrics.QueueRequests.Observe(now, float64(requests))
	if s.tele != nil {
		s.tele.ObserveQueue(items, requests)
	}
}

// scheduleNextArrival draws the next arrival event from the configured
// process and books the reused arrival handler; events beyond the horizon
// are simply never scheduled (RunUntil would cut them anyway). The chain is
// single-outstanding — the handler re-books only after consuming nextBatch —
// so parking the batch size in the field is race-free.
//
//qos:hotpath
func (s *Server) scheduleNextArrival() {
	gap, batch := s.arrivals.Next(s.arrRng)
	t := s.clk.Now() + gap
	if t > s.cfg.Horizon {
		return
	}
	s.nextBatch = batch
	s.clk.At(t, s.arrivalH)
}

// sampleSpan makes the head-based span sampling decision for one arriving
// request and mints its globally unique span ID, or returns 0 (unsampled or
// spans disabled). The draw comes from the dedicated span stream, so the
// decision never perturbs workload or fault draws.
//
//qos:hotpath
func (s *Server) sampleSpan(class clients.Class) int64 {
	if s.spanRng == nil {
		return 0
	}
	rate := s.spanRates[class]
	if rate <= 0 {
		return 0
	}
	if rate < 1 && s.spanRng.Float64() >= rate {
		return 0
	}
	s.spanNext++
	return s.spanIDBase + s.spanNext
}

// handleArrival draws the request's item and class and routes it.
//
//qos:hotpath
func (s *Server) handleArrival() {
	now := s.clk.Now()
	rank := s.items.SampleItem(s.itemRng, now)
	class := s.cfg.Classes.SampleClass(s.classRng)
	if now >= s.warmupEnd {
		s.metrics.PerClass[class].Arrivals++
	}
	if s.emitOn {
		s.emit(trace.Event{T: now, Kind: trace.KindArrival, Item: rank, Class: class})
	}
	span := s.sampleSpan(class)
	clientID := -1
	if s.caches != nil {
		clientID = s.clientRng.Intn(s.caches.Size())
		if s.caches.Client(clientID).Lookup(rank, now) {
			// Served from the client's own cache: zero access time.
			if now >= s.warmupEnd {
				cm := s.metrics.PerClass[class]
				cm.CacheHits++
				cm.Served++
				cm.Delay.Add(0)
				cm.DelayHist.Add(0)
			}
			if s.emitOn {
				s.emit(trace.Event{T: now, Kind: trace.KindServed, Class: class, Arrival: now})
			}
			if span != 0 && s.emitOn {
				s.emit(trace.Event{T: now, Kind: trace.KindSpanStart, Item: rank, Class: class, Req: span, Reason: trace.VerdictCache})
				s.emit(trace.Event{T: now, Kind: trace.KindSpanEnd, Item: rank, Class: class, Req: span, Reason: trace.EndServed, Arrival: now, Start: now})
			}
			return
		}
	}
	if rank <= s.cutoff {
		// Push item: the server ignores the request (flat broadcast will
		// deliver it); the simulator tracks the waiter to measure delay.
		if span != 0 && s.emitOn {
			s.emit(trace.Event{T: now, Kind: trace.KindSpanStart, Item: rank, Class: class, Req: span, Reason: trace.VerdictPush})
		}
		//lint:allow hotalloc amortized: waiter slices reset to length 0 on drain and reuse capacity across cycles
		s.pushWaiters[rank] = append(s.pushWaiters[rank], pushWaiter{class: class, arrival: now, joined: now, client: clientID, span: span})
		return
	}
	if span != 0 && s.emitOn {
		s.emit(trace.Event{T: now, Kind: trace.KindSpanStart, Item: rank, Class: class, Req: span, Reason: trace.VerdictPull})
	}
	if !s.up.TryRequest(now, s.uplinkRng) {
		if now >= s.warmupEnd {
			s.metrics.PerClass[class].UplinkLost++
		}
		if span != 0 && s.emitOn {
			s.emit(trace.Event{T: now, Kind: trace.KindSpanEnd, Item: rank, Class: class, Req: span, Reason: trace.EndUplinkLost, Arrival: now})
		}
		return
	}
	req := pullqueue.Request{
		Item:     rank,
		Class:    class,
		Priority: s.cfg.Classes.Weight(class),
		Arrival:  now,
		Client:   clientID,
		Tag:      span,
	}
	if s.shedPull(req, now) {
		return
	}
	s.enqueuePull(req)
}

// enqueuePull adds an admitted pull request to the selector and kicks the
// channel if it was idle (only reachable when the effective cutoff is 0).
//
//qos:hotpath
func (s *Server) enqueuePull(req pullqueue.Request) {
	s.selector.Add(req, s.cfg.Catalog.Length(req.Item))
	if req.Tag != 0 && s.emitOn {
		// Enqueue provenance: the entry's post-add selection score, the
		// quantity the next extraction decision will rank it by.
		now := s.clk.Now()
		if e := s.selector.Entry(req.Item); e != nil {
			s.emit(trace.Event{
				T: now, Kind: trace.KindSpanEnqueue, Item: req.Item, Class: req.Class,
				Req: req.Tag, Score: s.selector.Score(e, now), Requests: e.NumRequests(),
			})
		}
	}
	s.observeQueue()
	if s.idle {
		s.idle = false
		s.attemptPull()
	}
}

// beginAdmitBatch samples the shedder once for an arrival burst of n
// requests. If the hysteresis level is provably frozen across the burst
// (see faults.Shedder.FreezeBatch), the burst's admission decisions all
// reduce to one cached class comparison in shedPull. The freeze proof
// needs load to be non-decreasing inside the burst, which holds whenever
// the push system owns the idle channel (cutoff > 0): arrivals only add
// queue entries, and extractions happen on transmission-completion events,
// never mid-burst. With cutoff 0 an arrival can kick an idle channel into
// an immediate extraction, so batching is disabled there.
//
//qos:hotpath
func (s *Server) beginAdmitBatch(n int) {
	if s.shedder == nil || s.cutoff == 0 || s.splitAdmitBatches {
		return
	}
	load := s.selector.Requests() + s.pendingRetries
	if cut, ok := s.shedder.FreezeBatch(load, n); ok {
		s.admitCut = cut
		s.admitBatch = true
	}
}

// shedPull consults the overload admission controller and reports whether
// the request was refused. The controller samples pending load (queued pull
// requests plus outstanding retries) at every admission decision, so the
// shed level moves at most one class per arriving request; inside a frozen
// arrival batch the sample is hoisted to beginAdmitBatch and each decision
// is the cached cut comparison, bit-identical by FreezeBatch's contract.
//
//qos:hotpath
func (s *Server) shedPull(req pullqueue.Request, now float64) bool {
	if s.shedder == nil {
		return false
	}
	if s.admitBatch {
		if int(req.Class) < s.admitCut {
			return false
		}
	} else {
		load := s.selector.Requests() + s.pendingRetries
		if s.shedder.Admit(load, int(req.Class)) {
			return false
		}
	}
	if req.Arrival >= s.warmupEnd {
		s.metrics.PerClass[req.Class].Shed++
	}
	if s.emitOn {
		s.emit(trace.Event{T: now, Kind: trace.KindShed, Item: req.Item, Class: req.Class})
	}
	if req.Tag != 0 && s.emitOn {
		s.emit(trace.Event{
			T: now, Kind: trace.KindSpanEnd, Item: req.Item, Class: req.Class,
			Req: req.Tag, Reason: trace.EndShed, Arrival: req.Arrival,
		})
	}
	return true
}

// retryAfterLoss books the next re-request for a request whose pull delivery
// (or uplink re-request) just failed at now. It returns false when the retry
// budget is exhausted — the caller records the terminal outcome. A retry
// that would fire after the request's TTL deadline is recorded as Expired
// here (the client gives up listening at its deadline).
//
//qos:hotpath
func (s *Server) retryAfterLoss(r pullqueue.Request, now float64) bool {
	if !s.cfg.Retry.Enabled() || r.Attempts >= s.cfg.Retry.MaxAttempts {
		return false
	}
	retryAt := now + s.cfg.Retry.Backoff(r.Attempts, s.retryRng)
	if s.cfg.RequestTTL > 0 && retryAt > r.Arrival+s.cfg.RequestTTL {
		if r.Arrival >= s.warmupEnd {
			s.metrics.PerClass[r.Class].Expired++
		}
		if r.Tag != 0 && s.emitOn {
			// The client gives up at its deadline rather than booking a
			// retry that would land past it.
			s.emit(trace.Event{
				T: now, Kind: trace.KindSpanEnd, Item: r.Item, Class: r.Class,
				Req: r.Tag, Reason: trace.EndExpired, Arrival: r.Arrival,
			})
		}
		return true
	}
	r.Attempts++
	if r.Arrival >= s.warmupEnd {
		s.metrics.PerClass[r.Class].Retries++
	}
	if s.emitOn {
		s.emit(trace.Event{
			T: now, Kind: trace.KindRetry, Item: r.Item, Class: r.Class, Attempt: r.Attempts,
		})
	}
	s.pendingRetries++
	s.observePendingRetries()
	// Unlike the arrival/push/pull handlers, retries are multi-outstanding
	// (every lost request books its own), so each needs its own closure.
	//lint:allow hotalloc per-retry closure: retries are loss-path only and bounded by MaxAttempts
	s.clk.At(retryAt, func() {
		s.pendingRetries--
		s.observePendingRetries()
		s.handleRetry(r)
	})
	return true
}

// handleRetry delivers a client's re-request to the server. Like any fresh
// request it must win the uplink and pass admission control; an uplink loss
// spends the attempt and backs off again until the budget runs out.
//
//qos:hotpath
func (s *Server) handleRetry(r pullqueue.Request) {
	now := s.clk.Now()
	if r.Tag != 0 && s.emitOn {
		// The backoff segment ends here; what follows (uplink, admission,
		// enqueue) decides the next segment, exactly like a fresh arrival.
		s.emit(trace.Event{
			T: now, Kind: trace.KindSpanRetry, Item: r.Item, Class: r.Class,
			Req: r.Tag, Attempt: r.Attempts,
		})
	}
	if !s.up.TryRequest(now, s.uplinkRng) {
		if !s.retryAfterLoss(r, now) {
			if r.Arrival >= s.warmupEnd {
				s.metrics.PerClass[r.Class].UplinkLost++
			}
			if r.Tag != 0 && s.emitOn {
				s.emit(trace.Event{
					T: now, Kind: trace.KindSpanEnd, Item: r.Item, Class: r.Class,
					Req: r.Tag, Reason: trace.EndUplinkLost, Arrival: r.Arrival,
				})
			}
		}
		return
	}
	if s.shedPull(r, now) {
		return
	}
	s.enqueuePull(r)
}

// startPush begins the next broadcast transmission from the push scheduler.
// The downlink is serial, so at most one push completion is ever booked:
// the in-flight item rides in s.pushItem and the handler is reused.
//
//qos:hotpath
func (s *Server) startPush() {
	item := s.pushSched.Next()
	length := s.cfg.Catalog.Length(item)
	if s.emitOn {
		s.emit(trace.Event{T: s.clk.Now(), Kind: trace.KindPushStart, Item: item, Class: -1})
	}
	s.pushItem = item
	s.clk.After(length, s.pushH)
}

// completePush satisfies every waiter of the broadcast item, then gives the
// pull system its slot.
//
//qos:hotpath
func (s *Server) completePush(item int) {
	now := s.clk.Now()
	s.metrics.PushBroadcasts++
	if s.loss != nil && s.loss.Corrupted(now, s.lossRng) {
		// Nobody decoded the broadcast: waiters stay registered and catch
		// the item's next push cycle; no cache fills, no PIX update.
		s.metrics.CorruptedPushes++
		if s.emitOn {
			s.emit(trace.Event{
				T: now, Kind: trace.KindCorrupt, Item: item, Class: -1,
				Push: true, Requests: len(s.pushWaiters[item]),
			})
		}
		s.attemptPull()
		return
	}
	s.noteTransmission(item)
	if s.emitOn {
		s.emit(trace.Event{
			T: now, Kind: trace.KindPushComplete, Item: item, Class: -1,
			Requests: len(s.pushWaiters[item]),
		})
	}
	start := now - s.cfg.Catalog.Length(item)
	for _, w := range s.pushWaiters[item] {
		ws := start
		if w.joined > ws {
			// The waiter tuned in mid-broadcast (or a roamer re-attached
			// mid-broadcast): its service segment starts at its own
			// registration, not at the transmission start.
			ws = w.joined
		}
		s.recordServed(w.class, w.arrival, now, true, item, w.span, ws)
		s.fillCache(w.client, item, now)
	}
	s.pushWaiters[item] = s.pushWaiters[item][:0]
	s.attemptPull()
}

// attemptPull serves the best pull entry if one exists and bandwidth allows,
// otherwise returns control to the push system (or idles when the effective
// cutoff is 0).
//
//qos:hotpath
func (s *Server) attemptPull() {
	for {
		entry := s.selector.ExtractBest(s.clk.Now())
		if entry == nil {
			if s.cutoff > 0 {
				s.startPush()
			} else {
				s.idle = true
			}
			return
		}
		s.observeQueue()

		var grant *bandwidth.Grant
		if s.alloc != nil {
			g, blocked := s.alloc.Reserve(entry.HighestClass(), entry.Length)
			if blocked {
				// Paper: the item and all its pending requests are lost.
				s.metrics.BlockedTransmissions++
				if s.emitOn {
					s.emit(trace.Event{
						T: s.clk.Now(), Kind: trace.KindBlocked, Item: entry.Item,
						Class: entry.HighestClass(), Requests: len(entry.Requests),
					})
				}
				for _, r := range entry.Requests {
					if r.Arrival >= s.warmupEnd {
						s.metrics.PerClass[r.Class].Dropped++
					}
					if r.Tag != 0 && s.emitOn {
						s.emit(trace.Event{
							T: s.clk.Now(), Kind: trace.KindSpanEnd, Item: entry.Item, Class: r.Class,
							Req: r.Tag, Reason: trace.EndBlocked, Arrival: r.Arrival,
						})
					}
				}
				s.selector.Recycle(entry)
				if s.cfg.RetryOnBlock {
					continue
				}
				if s.cutoff > 0 {
					s.startPush()
				} else {
					// Try the next entry anyway: with no push system the
					// slot has no other use.
					continue
				}
				return
			}
			grant = g
			s.observeBandwidth()
		}

		s.emitDecision(entry)
		if s.emitOn {
			s.emit(trace.Event{
				T: s.clk.Now(), Kind: trace.KindPullStart, Item: entry.Item,
				Class: entry.HighestClass(), Requests: len(entry.Requests),
			})
		}
		// Serial downlink: at most one pull completion in flight, so the
		// entry and grant ride in fields and the handler is reused.
		s.pullEntry, s.pullGrant = entry, grant
		s.clk.After(entry.Length, s.pullH)
		return
	}
}

// emitDecision records scheduler decision provenance for a pull extraction
// that is about to transmit: the winning entry's selection score and the
// runner-up it beat (the queue's best remaining entry). Emitted only when
// the winning entry carries at least one sampled request, so span-off runs
// and unsampled traffic pay a nil check and nothing else.
//
//qos:hotpath
func (s *Server) emitDecision(entry *pullqueue.Entry) {
	if s.spanRng == nil || !s.emitOn {
		return
	}
	sampled := false
	for i := range entry.Requests {
		if entry.Requests[i].Tag != 0 {
			sampled = true
			break
		}
	}
	if !sampled {
		return
	}
	now := s.clk.Now()
	ev := trace.Event{
		T: now, Kind: trace.KindDecision, Item: entry.Item,
		Class: entry.HighestClass(), Requests: len(entry.Requests),
		Score: s.selector.Score(entry, now),
	}
	if ru := s.selector.Peek(now); ru != nil {
		ev.RunnerUp = ru.Item
		ev.RunnerUpScore = s.selector.Score(ru, now)
	}
	s.emit(ev)
}

// completePull satisfies all of the entry's pending requests and hands the
// channel back to the push system.
//
//qos:hotpath
func (s *Server) completePull(entry *pullqueue.Entry, grant *bandwidth.Grant) {
	now := s.clk.Now()
	s.metrics.PullTransmissions++
	if s.loss != nil && s.loss.Corrupted(now, s.lossRng) {
		// The delivery was corrupted: each pending request either books a
		// client re-request (bounded backoff) or fails terminally.
		s.metrics.CorruptedPulls++
		if s.emitOn {
			s.emit(trace.Event{
				T: now, Kind: trace.KindCorrupt, Item: entry.Item,
				Class: entry.HighestClass(), Requests: len(entry.Requests),
			})
		}
		// retryAfterLoss schedules against value copies of the requests, so
		// the entry (and its request slice) is free to reuse immediately.
		for _, r := range entry.Requests {
			if r.Tag != 0 && s.emitOn {
				// The failed service segment: transmission start to the
				// corruption being detected at completion.
				s.emit(trace.Event{
					T: now, Kind: trace.KindSpanLoss, Item: entry.Item, Class: r.Class,
					Req: r.Tag, Start: now - entry.Length, Attempt: r.Attempts + 1,
				})
			}
			if !s.retryAfterLoss(r, now) {
				if r.Arrival >= s.warmupEnd {
					s.metrics.PerClass[r.Class].Failed++
				}
				if r.Tag != 0 && s.emitOn {
					s.emit(trace.Event{
						T: now, Kind: trace.KindSpanEnd, Item: entry.Item, Class: r.Class,
						Req: r.Tag, Reason: trace.EndFailed, Arrival: r.Arrival,
					})
				}
			}
		}
		s.selector.Recycle(entry)
		if grant != nil {
			s.alloc.Release(grant)
			s.observeBandwidth()
		}
		if s.cutoff > 0 {
			s.startPush()
		} else {
			s.attemptPull()
		}
		return
	}
	s.noteTransmission(entry.Item)
	if s.emitOn {
		s.emit(trace.Event{
			T: now, Kind: trace.KindPullComplete, Item: entry.Item,
			Class: entry.HighestClass(), Requests: len(entry.Requests),
		})
	}
	for _, r := range entry.Requests {
		s.recordServed(r.Class, r.Arrival, now, false, entry.Item, r.Tag, now-entry.Length)
		s.fillCache(r.Client, entry.Item, now)
	}
	s.selector.Recycle(entry)
	if grant != nil {
		s.alloc.Release(grant)
		s.observeBandwidth()
	}
	if s.cutoff > 0 {
		s.startPush()
	} else {
		s.attemptPull()
	}
}

// noteTransmission updates the empirical broadcast-frequency counters that
// feed PIX scores (only maintained when caching is enabled).
//
//qos:hotpath
func (s *Server) noteTransmission(item int) {
	if s.txCounts == nil {
		return
	}
	s.txCounts[item]++
	s.txTotal++
}

// fillCache stores a just-received item in the requesting client's cache.
// The PIX score is the item's access probability over its MEASURED
// broadcast frequency (add-one smoothed), exactly as the broadcast-disk
// policy prescribes: items that are popular but appear on the channel
// rarely are the most valuable to cache.
//
//qos:hotpath
func (s *Server) fillCache(clientID, item int, now float64) {
	if s.caches == nil || clientID < 0 {
		return
	}
	x := float64(s.txCounts[item]+1) / float64(s.txTotal+int64(s.cfg.Catalog.D()))
	s.caches.Client(clientID).Insert(item, s.cfg.Catalog.Prob(item)/x, now)
}

// CacheHitRate returns the population-wide client cache hit rate, 0 when
// caching is disabled.
func (s *Server) CacheHitRate() float64 {
	if s.caches == nil {
		return 0
	}
	return s.caches.HitRate()
}

// recordServed logs one satisfied request (post-warmup arrivals only).
// Under RequestTTL, a request whose deadline passed before the transmission
// completed is counted as Expired instead. span and start carry span
// provenance for sampled requests (0s otherwise): the span ID and the
// request's service-segment start time — transmission start, or the
// request's own arrival when it joined a broadcast already in flight.
//
//qos:hotpath
func (s *Server) recordServed(class clients.Class, arrival, completion float64, push bool, item int, span int64, start float64) {
	d := completion - arrival
	expired := s.cfg.RequestTTL > 0 && d > s.cfg.RequestTTL
	if span != 0 && s.emitOn {
		if expired {
			s.emit(trace.Event{
				T: completion, Kind: trace.KindSpanEnd, Item: item, Class: class,
				Req: span, Reason: trace.EndExpired, Arrival: arrival, Start: start,
			})
		} else {
			s.emit(trace.Event{
				T: completion, Kind: trace.KindSpanEnd, Item: item, Class: class,
				Req: span, Reason: trace.EndServed, Arrival: arrival, Start: start, Push: push,
			})
		}
	}
	if arrival < s.warmupEnd {
		return
	}
	cm := s.metrics.PerClass[class]
	if expired {
		cm.Expired++
		return
	}
	cm.Served++
	cm.Delay.Add(d)
	cm.DelayHist.Add(d)
	if s.emitOn {
		s.emit(trace.Event{
			T: completion, Kind: trace.KindServed, Class: class,
			Arrival: arrival, Push: push,
		})
	}
	if push {
		cm.PushDelay.Add(d)
	} else {
		cm.PullDelay.Add(d)
	}
}

// Run is a convenience: build a Server from cfg and run it.
func Run(cfg Config) (*Metrics, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}
