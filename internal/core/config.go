package core

import (
	"fmt"
	"math"

	"hybridqos/internal/cache"
	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/faults"
	"hybridqos/internal/policy"
	"hybridqos/internal/pullqueue"
	"hybridqos/internal/sched"
	"hybridqos/internal/telemetry"
	"hybridqos/internal/trace"
	"hybridqos/internal/uplink"
	"hybridqos/internal/workload"

	"hybridqos/internal/bandwidth"
)

// Config parameterises one simulation run.
type Config struct {
	// Catalog is the item database (required).
	Catalog *catalog.Catalog
	// Classes is the service classification (required).
	Classes *clients.Classification
	// Lambda is the aggregate Poisson request rate λ′ (paper: 5).
	Lambda float64
	// Cutoff is K: items 1..K pushed, K+1..D pulled. 0 ≤ K ≤ D.
	Cutoff int
	// PullPolicyName names the pull policy in the internal/policy registry
	// ("gamma", "stretch", "priority", "fcfs", "edf", …). Empty selects the
	// default, the paper's γ(α) with Alpha. Ignored when PullPolicy is set.
	PullPolicyName string
	// PullPolicy, when non-nil, injects a pre-built pull policy directly,
	// bypassing the registry (programmatic extensions and tests).
	PullPolicy sched.PullPolicy
	// Alpha is Eq. 1's mixing fraction, consumed by the gamma policy.
	Alpha float64
	// PushPolicyName names the push scheduler in the internal/policy
	// registry ("roundrobin", "broadcast-disk", "square-root", "none").
	// Empty selects the default, the paper's flat round-robin. The special
	// name "none" disables pushing entirely: every request is routed through
	// the pull queue exactly as if Cutoff were 0. Ignored when PushScheduler
	// is set.
	PushPolicyName string
	// PushDisks is the broadcast-disk count for the broadcast-disk push
	// scheduler; 0 selects the policy package's default.
	PushDisks int
	// PushScheduler, when non-nil, injects a push-scheduler builder
	// directly, bypassing the registry.
	PushScheduler func(cat *catalog.Catalog, k int) (sched.PushScheduler, error)
	// Bandwidth, when non-nil, enables the per-class bandwidth pools and
	// blocking behaviour. Nil disables bandwidth constraints entirely (no
	// request is ever dropped).
	Bandwidth *bandwidth.Config
	// RetryOnBlock makes the server try the next-best pull entry after a
	// blocked one within the same slot (extension; the paper's pseudocode
	// gives up the slot).
	RetryOnBlock bool
	// Arrivals optionally replaces the Poisson(Lambda) arrival process
	// with another workload.ArrivalProcess (bursty MMPP, batch arrivals).
	// Lambda is ignored for gap generation when set, but must still be
	// valid (it feeds analytic comparisons).
	Arrivals workload.ArrivalProcess
	// Items optionally replaces the catalog's static Zipf popularity with
	// another workload.ItemSampler (e.g. rotating hot set).
	Items workload.ItemSampler
	// RequestTTL, when positive, gives every request a deadline: requests
	// whose item completes transmission after arrival+TTL count as Expired
	// rather than Served (the client has given up listening; the server —
	// having no abandon signalling on the uplink — still transmits).
	RequestTTL float64
	// Tracer, when non-nil, receives a structured event stream (arrivals,
	// transmissions, blocks, served requests) for offline analysis.
	Tracer trace.Tracer
	// Telemetry, when non-nil, attaches the deterministic metrics collector:
	// the engine feeds it every traced event plus live gauges (queue depth,
	// bandwidth occupancy, pending retries) and, when the collector has a
	// snapshot cadence, emits periodic trace.KindSnapshot events carrying the
	// full registry state. Collectors are stateful — like Tracer and Loss,
	// never share one across parallel replications. Telemetry is read-only
	// with respect to the simulation: a run with it attached is
	// trajectory-identical to the same run without it.
	Telemetry *telemetry.Collector
	// Uplink, when non-nil, models the limited request back-channel: pull
	// requests that fail uplink contention never reach the server and are
	// counted as UplinkLost (push requests need no uplink — clients simply
	// tune in to the broadcast).
	Uplink uplink.Channel
	// ClientCache, when non-nil, gives every client a fixed-capacity item
	// cache (broadcast-disk style): a request hitting the requester's own
	// cache is served instantly (zero access time) and never reaches the
	// channel; on reception the requesting client caches the item.
	ClientCache *CacheConfig
	// Loss, when non-nil, makes the downlink lossy: every completed
	// transmission may be corrupted (no client decodes it). A corrupted push
	// broadcast leaves its waiters waiting for the item's next cycle; a
	// corrupted pull delivery sends the entry's requests through Retry. Loss
	// models are stateful — like Uplink they must not be shared across
	// parallel replications. Nil keeps the paper's error-free channel.
	Loss faults.LossModel
	// Retry governs client re-requests after corrupted pull deliveries:
	// bounded attempts with exponential backoff and jitter, re-contending on
	// the uplink and re-entering admission control. The zero value disables
	// retries (a corrupted delivery immediately counts as Failed).
	Retry faults.RetryPolicy
	// Shed, when non-nil, enables the class-aware overload admission
	// controller: when pending pull load (queued requests plus outstanding
	// retries) reaches the high-water mark the server refuses
	// lowest-priority-class requests, restoring admission at the low-water
	// mark (hysteresis).
	Shed *faults.ShedConfig
	// Horizon is the simulated duration in broadcast units.
	Horizon float64
	// WarmupFraction of the horizon is discarded from delay statistics
	// (requests ARRIVING before the warmup end are excluded).
	WarmupFraction float64
	// Seed drives all randomness in the run.
	Seed uint64
	// DelayHistBound, when positive, caps each per-class delay histogram at
	// that many retained samples (a deterministic systematic reservoir;
	// see stats.Histogram.SetBound), so long-horizon runs stop pooling raw
	// samples. Zero keeps the exact unbounded histograms. Must be 0 or >= 2.
	DelayHistBound int
	// Spans, when non-nil, enables per-request span provenance: head-based,
	// per-class deterministic sampling at arrival, with sampled requests
	// emitting span-* trace events at every lifecycle point (admission
	// verdict, enqueue score, scheduler decision, loss/retry, handoff,
	// terminal taxonomy) for reconstruction by internal/span. The sampling
	// stream is split from the run's root after every other stream, so a
	// nil Spans run is bit-identical to a build without the span layer, and
	// a spans-on run is trajectory-identical (extra events, same draws).
	Spans *SpanConfig
}

// SpanConfig parameterises span provenance sampling.
type SpanConfig struct {
	// Rates holds per-class sampling probabilities in [0,1]. Classes beyond
	// the slice (or all classes, when the slice is empty) default to 1 —
	// sample every request.
	Rates []float64
	// IDBase offsets every span ID the cell mints. Single-cell runs leave
	// it 0; cluster runs namespace each cell (cell index in the high bits)
	// so IDs stay globally unique after stream merging and cross-cell
	// parent links resolve unambiguously.
	IDBase int64
}

// CacheConfig parameterises the client-side caches.
type CacheConfig struct {
	// NumClients is the cache population size.
	NumClients int
	// Capacity is each cache's item capacity.
	Capacity int
	// Policy selects the replacement policy (LRU, LFU, PIX).
	Policy cache.PolicyKind
}

// policyParams snapshots the configuration knobs the policy factories read.
func (c Config) policyParams() policy.Params {
	return policy.Params{
		Alpha:   c.Alpha,
		TTL:     c.RequestTTL,
		Disks:   c.PushDisks,
		Catalog: c.Catalog,
		Cutoff:  c.Cutoff,
	}
}

// buildPullPolicy resolves the run's pull policy: an injected PullPolicy
// wins; otherwise the named registry entry (empty name = the paper's γ(α)).
func (c Config) buildPullPolicy() (sched.PullPolicy, error) {
	if c.PullPolicy != nil {
		return c.PullPolicy, nil
	}
	return policy.NewPull(c.PullPolicyName, c.policyParams())
}

// buildPushScheduler resolves the run's push scheduler for a non-empty push
// set: an injected PushScheduler builder wins; otherwise the named registry
// entry (empty name = the paper's flat round-robin).
func (c Config) buildPushScheduler() (sched.PushScheduler, error) {
	if c.PushScheduler != nil {
		return c.PushScheduler(c.Catalog, c.Cutoff)
	}
	return policy.NewPush(c.PushPolicyName, c.policyParams())
}

// Validate reports whether the configuration is usable. Beyond structural
// checks it audits every invariant whose violation would otherwise panic
// deep inside internal/pullqueue or internal/catalog mid-run (zero-value
// catalogs/classifications, non-positive item lengths or class weights,
// α outside [0,1] — surfaced as pullqueue's typed *AlphaError — and unknown
// policy names), so a bad configuration fails here rather than after
// Server.Run has started.
func (c Config) Validate() error {
	if c.Catalog == nil {
		return fmt.Errorf("core: nil catalog")
	}
	if c.Catalog.D() == 0 {
		return fmt.Errorf("core: empty catalog")
	}
	for rank := 1; rank <= c.Catalog.D(); rank++ {
		if l := c.Catalog.Length(rank); l <= 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return fmt.Errorf("core: invalid length %g for item %d", l, rank)
		}
	}
	if c.Classes == nil {
		return fmt.Errorf("core: nil classification")
	}
	if c.Classes.NumClasses() == 0 {
		return fmt.Errorf("core: classification has no classes")
	}
	for i, w := range c.Classes.Weights() {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("core: invalid weight %g for class %d", w, i)
		}
	}
	if pol, ok := c.PullPolicy.(sched.ImportanceFactor); ok {
		if err := pullqueue.ValidateAlpha(pol.Alpha); err != nil {
			return fmt.Errorf("core: pull policy: %w", err)
		}
	}
	if c.Lambda <= 0 || math.IsNaN(c.Lambda) || math.IsInf(c.Lambda, 0) {
		return fmt.Errorf("core: invalid lambda %g", c.Lambda)
	}
	if c.Cutoff < 0 || c.Cutoff > c.Catalog.D() {
		return fmt.Errorf("core: cutoff %d out of [0,%d]", c.Cutoff, c.Catalog.D())
	}
	if c.PullPolicy == nil {
		if err := pullqueue.ValidateAlpha(c.Alpha); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if c.Horizon <= 0 || math.IsNaN(c.Horizon) || math.IsInf(c.Horizon, 0) {
		return fmt.Errorf("core: invalid horizon %g", c.Horizon)
	}
	if c.WarmupFraction < 0 || c.WarmupFraction >= 1 || math.IsNaN(c.WarmupFraction) {
		return fmt.Errorf("core: warmup fraction %g outside [0,1)", c.WarmupFraction)
	}
	if c.RequestTTL < 0 || math.IsNaN(c.RequestTTL) {
		return fmt.Errorf("core: invalid request TTL %g", c.RequestTTL)
	}
	if c.PushDisks < 0 {
		return fmt.Errorf("core: negative push disk count %d", c.PushDisks)
	}
	if c.DelayHistBound < 0 || c.DelayHistBound == 1 {
		return fmt.Errorf("core: delay histogram bound %d (want 0 or >= 2)", c.DelayHistBound)
	}
	// Dry-resolve the policy names so an unknown name or a parameter the
	// factory rejects fails before the run starts.
	if c.PullPolicy == nil {
		if _, err := c.buildPullPolicy(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if c.PushScheduler == nil {
		if !policy.KnownPush(c.PushPolicyName) {
			if _, err := policy.NewPush(c.PushPolicyName, c.policyParams()); err != nil {
				return fmt.Errorf("core: %w", err)
			}
		}
		if c.Cutoff > 0 {
			if _, err := c.buildPushScheduler(); err != nil {
				return fmt.Errorf("core: %w", err)
			}
		}
	}
	if c.ClientCache != nil {
		if c.ClientCache.NumClients <= 0 || c.ClientCache.Capacity <= 0 {
			return fmt.Errorf("core: invalid client cache config %+v", *c.ClientCache)
		}
	}
	if c.Bandwidth != nil {
		if err := c.Bandwidth.Validate(); err != nil {
			return err
		}
		if len(c.Bandwidth.Fractions) != c.Classes.NumClasses() {
			return fmt.Errorf("core: %d bandwidth fractions for %d classes",
				len(c.Bandwidth.Fractions), c.Classes.NumClasses())
		}
	}
	if err := c.Retry.Validate(); err != nil {
		return err
	}
	if c.Shed != nil {
		if err := c.Shed.Validate(c.Classes.NumClasses()); err != nil {
			return err
		}
	}
	if c.Spans != nil {
		if len(c.Spans.Rates) > c.Classes.NumClasses() {
			return fmt.Errorf("core: %d span sampling rates for %d classes",
				len(c.Spans.Rates), c.Classes.NumClasses())
		}
		for i, r := range c.Spans.Rates {
			if r < 0 || r > 1 || math.IsNaN(r) {
				return fmt.Errorf("core: span sampling rate %g for class %d outside [0,1]", r, i)
			}
		}
		if c.Spans.IDBase < 0 {
			return fmt.Errorf("core: negative span ID base %d", c.Spans.IDBase)
		}
	}
	return nil
}
