package core_test

import (
	"testing"

	"hybridqos/internal/bandwidth"
	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/core"
	"hybridqos/internal/faults"
)

// The golden values below were captured from the build immediately BEFORE
// the engine/policy split (the PR-1 tree), with the policies hardwired into
// core. The refactored engine resolving its default policies ("gamma" pull,
// "roundrobin" push) through the registry must reproduce every counter and
// every float bit-for-bit: same RNG stream order, same heap behaviour, same
// tie-breaking. Hex float literals pin the exact bit patterns.
//
// If an intentional engine change invalidates these values, recapture them
// and say so loudly in the commit — this test is the repo's reproducibility
// contract, not a statistical check.

type goldenClass struct {
	arrivals, served, dropped, expired int64
	uplinkLost, retries, failed, shed  int64
	delayN                             int64
	delayMean                          float64
}

type golden struct {
	push, pull, blocked, corrPush, corrPull int64
	perClass                                []goldenClass
	queueItems, queueRequests               float64
}

func goldenBase(t *testing.T, seed uint64) core.Config {
	t.Helper()
	cat, err := catalog.Generate(catalog.Config{
		D: 100, Theta: 0.6, MinLen: 1, MaxLen: 5,
		LengthWeights: catalog.PaperLengthWeights(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := clients.New(clients.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{
		Catalog: cat, Classes: cl, Lambda: 5, Cutoff: 40, Alpha: 0.5,
		Horizon: 2000, WarmupFraction: 0.1, Seed: seed,
	}
}

func checkGolden(t *testing.T, name string, m *core.Metrics, want golden) {
	t.Helper()
	if m.PushBroadcasts != want.push || m.PullTransmissions != want.pull ||
		m.BlockedTransmissions != want.blocked ||
		m.CorruptedPushes != want.corrPush || m.CorruptedPulls != want.corrPull {
		t.Errorf("%s: transmissions push=%d pull=%d blocked=%d corrPush=%d corrPull=%d, want %d/%d/%d/%d/%d",
			name, m.PushBroadcasts, m.PullTransmissions, m.BlockedTransmissions,
			m.CorruptedPushes, m.CorruptedPulls,
			want.push, want.pull, want.blocked, want.corrPush, want.corrPull)
	}
	if len(m.PerClass) != len(want.perClass) {
		t.Fatalf("%s: %d classes, want %d", name, len(m.PerClass), len(want.perClass))
	}
	for i, cm := range m.PerClass {
		w := want.perClass[i]
		if cm.Arrivals != w.arrivals || cm.Served != w.served || cm.Dropped != w.dropped ||
			cm.Expired != w.expired || cm.UplinkLost != w.uplinkLost ||
			cm.Retries != w.retries || cm.Failed != w.failed || cm.Shed != w.shed {
			t.Errorf("%s class %d: counts arr=%d served=%d dropped=%d expired=%d upl=%d retries=%d failed=%d shed=%d,\nwant %+v",
				name, i, cm.Arrivals, cm.Served, cm.Dropped, cm.Expired,
				cm.UplinkLost, cm.Retries, cm.Failed, cm.Shed, w)
		}
		if cm.Delay.N() != w.delayN {
			t.Errorf("%s class %d: delay N=%d, want %d", name, i, cm.Delay.N(), w.delayN)
		}
		if got := cm.Delay.Mean(); got != w.delayMean {
			t.Errorf("%s class %d: delay mean %x, want %x (not bit-identical)",
				name, i, got, w.delayMean)
		}
	}
	if got := m.QueueItems.MeanAt(m.Horizon); got != want.queueItems {
		t.Errorf("%s: queue items mean %x, want %x", name, got, want.queueItems)
	}
	if got := m.QueueRequests.MeanAt(m.Horizon); got != want.queueRequests {
		t.Errorf("%s: queue requests mean %x, want %x", name, got, want.queueRequests)
	}
}

// TestGoldenPaperScenario pins the seed scenario: paper defaults, default
// policies resolved by name through the registry.
func TestGoldenPaperScenario(t *testing.T) {
	m, err := core.Run(goldenBase(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "paper", m, golden{
		push: 564, pull: 564,
		perClass: []goldenClass{
			{arrivals: 1622, served: 1575, delayN: 1575, delayMean: 0x1.18011393a4532p+06},
			{arrivals: 2423, served: 2319, delayN: 2319, delayMean: 0x1.2f1eccf10d5fbp+06},
			{arrivals: 4908, served: 4692, delayN: 4692, delayMean: 0x1.4885429de2ap+06},
		},
		queueItems:    0x1.8bab3ce4f509p+05,
		queueRequests: 0x1.390f8a7aae8aep+07,
	})
}

// TestGoldenPurePull pins the K=0 degenerate (idle-channel pull kick-off).
func TestGoldenPurePull(t *testing.T) {
	cfg := goldenBase(t, 3)
	cfg.Cutoff = 0
	m, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := golden{
		pull: 1160,
		perClass: []goldenClass{
			{arrivals: 1663, served: 1589, delayN: 1589, delayMean: 0x1.05bd0df7bbf08p+06},
			{arrivals: 2476, served: 2383, delayN: 2383, delayMean: 0x1.27ad92308f3bfp+06},
			{arrivals: 4931, served: 4690, delayN: 4690, delayMean: 0x1.43eb68e432ea6p+06},
		},
		queueItems:    0x1.608e95c763808p+06,
		queueRequests: 0x1.7db4b5e7253acp+08,
	}
	checkGolden(t, "purepull", m, want)

	// The "none" push policy must reproduce pure pull bit-identically even
	// with a non-zero configured cutoff: the engine treats the push set as
	// empty and the RNG stream order is untouched.
	cfg2 := goldenBase(t, 3)
	cfg2.PushPolicyName = "none"
	m2, err := core.Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.PushBroadcasts != 0 {
		t.Fatalf("push=none broadcast %d items", m2.PushBroadcasts)
	}
	checkGolden(t, "purepull-via-none", m2, want)
}

// TestGoldenBlocking pins the bandwidth-blocking scenario.
func TestGoldenBlocking(t *testing.T) {
	cfg := goldenBase(t, 1)
	cfg.Bandwidth = &bandwidth.Config{Total: 8, Fractions: []float64{0.5, 0.3, 0.2}, DemandMean: 1.5}
	m, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "blocking", m, golden{
		push: 787, pull: 439, blocked: 348,
		perClass: []goldenClass{
			{arrivals: 1622, served: 1413, dropped: 176, delayN: 1413, delayMean: 0x1.8664a84ca40fdp+05},
			{arrivals: 2423, served: 1907, dropped: 439, delayN: 1907, delayMean: 0x1.97299beff96ap+05},
			{arrivals: 4908, served: 3900, dropped: 843, delayN: 3900, delayMean: 0x1.a582f963738e7p+05},
		},
		queueItems:    0x1.69cd71ebcc35dp+05,
		queueRequests: 0x1.ab8a9a141565ap+06,
	})
}

// TestGoldenFaults pins the EXT-FAULTS configuration (bursty loss, retries
// with jittered backoff, class-aware shedding) — the fullest exercise of
// the RNG stream order.
func TestGoldenFaults(t *testing.T) {
	cfg := goldenBase(t, 2)
	lm, err := faults.NewBurstLoss(0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Loss = lm
	cfg.Retry = faults.RetryPolicy{MaxAttempts: 3, Base: 1, Multiplier: 2, Jitter: 0.5}
	cfg.Shed = &faults.ShedConfig{High: 260, Low: 200}
	m, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "faults", m, golden{
		push: 577, pull: 576, corrPush: 120, corrPull: 123,
		perClass: []goldenClass{
			{arrivals: 1612, served: 1534, retries: 153, failed: 7, delayN: 1534, delayMean: 0x1.901e26c1687cap+06},
			{arrivals: 2463, served: 2325, retries: 219, failed: 8, delayN: 2325, delayMean: 0x1.aee945902093ap+06},
			{arrivals: 4888, served: 4431, retries: 391, failed: 16, shed: 174, delayN: 4431, delayMean: 0x1.b7676448fa99bp+06},
		},
		queueItems:    0x1.961caa7df9a18p+05,
		queueRequests: 0x1.78c87d43d91eep+07,
	})
}

// TestGoldenExplicitDefaultsMatch proves name resolution is transparent:
// spelling out the default policy names (and their historical aliases)
// reproduces the empty-name run exactly.
func TestGoldenExplicitDefaultsMatch(t *testing.T) {
	for _, names := range []struct{ pull, push string }{
		{"gamma", "roundrobin"},
		{"importance-factor", "flat"},
	} {
		cfg := goldenBase(t, 1)
		cfg.PullPolicyName = names.pull
		cfg.PushPolicyName = names.push
		m, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", names, err)
		}
		checkGolden(t, "explicit-"+names.pull, m, golden{
			push: 564, pull: 564,
			perClass: []goldenClass{
				{arrivals: 1622, served: 1575, delayN: 1575, delayMean: 0x1.18011393a4532p+06},
				{arrivals: 2423, served: 2319, delayN: 2319, delayMean: 0x1.2f1eccf10d5fbp+06},
				{arrivals: 4908, served: 4692, delayN: 4692, delayMean: 0x1.4885429de2ap+06},
			},
			queueItems:    0x1.8bab3ce4f509p+05,
			queueRequests: 0x1.390f8a7aae8aep+07,
		})
	}
}
