package core

// Struct-of-arrays arena for the serving engine's per-request state. One
// admitted request = one int32 slot across the parallel field slices; freed
// slots recycle through a freelist, so steady-state serving allocates no
// per-request objects and the tracking structures (push-waiter lists, pull
// queue tags) carry generation-packed int64 handles instead of pointers.
//
// A handle packs gen<<32 | slot. Generations bump on every slot reuse and
// start at 1, so the zero handle never resolves and a handle outliving its
// request (in a pull-queue entry or a push-waiter list) goes inert the
// moment the slot is recycled — the same staleness contract event.Token
// gives the scheduler, applied to requests.

import (
	"hybridqos/internal/clients"
	"hybridqos/internal/clock"
	"hybridqos/internal/span"
)

// reqArena holds every live request's fields in parallel slices.
type reqArena struct {
	item     []int32
	class    []clients.Class
	arrival  []float64
	deadline []float64
	done     []func(Result)
	expiry   []clock.Token
	sp       []*span.Span // open span, nil when unsampled/disabled
	gen      []uint32
	terminal []bool
	free     []int32 // recycled slots awaiting reuse
}

// alloc returns a cleared slot with a fresh generation.
//
//qos:hotpath
func (a *reqArena) alloc() int32 {
	var slot int32
	if n := len(a.free); n > 0 {
		slot = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		slot = a.grow()
	}
	a.gen[slot]++
	a.terminal[slot] = false
	return slot
}

// grow is alloc's cold path: the arena extends to the peak concurrent
// request count once, then the freelist recycles.
func (a *reqArena) grow() int32 {
	a.item = append(a.item, 0)
	a.class = append(a.class, 0)
	a.arrival = append(a.arrival, 0)
	a.deadline = append(a.deadline, 0)
	a.done = append(a.done, nil)
	a.expiry = append(a.expiry, clock.Token{})
	a.sp = append(a.sp, nil)
	a.gen = append(a.gen, 0)
	a.terminal = append(a.terminal, false)
	return int32(len(a.gen) - 1)
}

// handle packs the slot's current generation into its external identity.
//
//qos:hotpath
func (a *reqArena) handle(slot int32) int64 {
	return int64(a.gen[slot])<<32 | int64(uint32(slot))
}

// lookup resolves a handle to its slot, failing when the slot has been
// recycled for a newer request (stale generation).
//
//qos:hotpath
func (a *reqArena) lookup(h int64) (int32, bool) {
	slot := int32(uint32(h))
	if int(slot) >= len(a.gen) || a.gen[slot] != uint32(h>>32) {
		return 0, false
	}
	return slot, true
}

// alive reports whether a handle still names an admitted, non-terminal
// request — the arena equivalent of the retired live-map membership test.
//
//qos:hotpath
func (a *reqArena) alive(h int64) bool {
	slot, ok := a.lookup(h)
	return ok && !a.terminal[slot]
}

// release recycles a terminal request's slot, dropping the pointer-carrying
// fields immediately so callbacks and spans do not outlive the request.
//
//qos:hotpath
func (a *reqArena) release(slot int32) {
	a.done[slot] = nil
	a.sp[slot] = nil
	a.expiry[slot] = clock.Token{}
	if n := len(a.free); n < cap(a.free) {
		a.free = a.free[:n+1]
		a.free[n] = slot
	} else {
		a.freeGrow(slot)
	}
}

// freeGrow is release's cold path: the freelist reaches peak-concurrency
// length once, then recycles.
func (a *reqArena) freeGrow(slot int32) {
	a.free = append(a.free, slot)
}
