package core

import (
	"reflect"
	"testing"

	"hybridqos/internal/faults"
	"hybridqos/internal/trace"
	"hybridqos/internal/uplink"
)

// TestFaultLayerOffIsNoOp checks the bit-identity guarantee: a run with a
// 0-probability loss model (and no retries or shedding) produces metrics
// byte-identical to a run with the fault layer absent entirely. The loss
// stream is split last and drawn from its own RNG, so even the per-
// transmission variate draws cannot perturb the trajectory.
func TestFaultLayerOffIsNoOp(t *testing.T) {
	off, err := Run(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t)
	lm, err := faults.NewBernoulli(0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Loss = lm
	zero, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(off, zero) {
		t.Fatalf("p=0 loss model perturbed the run:\nwithout: %+v\nwith:    %+v", off, zero)
	}
}

// fullFaultConfig is the whole stack at once: bursty loss, bounded jittered
// retries, TTL deadlines, a rate-limited uplink, shedding and tracing.
func fullFaultConfig(t *testing.T) (Config, *trace.Counter) {
	t.Helper()
	cfg := baseConfig(t)
	cfg.RequestTTL = 150
	lm, err := faults.NewBurstLoss(0.25, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Loss = lm
	cfg.Retry = faults.RetryPolicy{MaxAttempts: 3, Base: 1, Multiplier: 2, Max: 20, Jitter: 0.5}
	cfg.Shed = &faults.ShedConfig{High: 40, Low: 20}
	tb, err := uplink.NewTokenBucket(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Uplink = tb
	tr := trace.NewCounter()
	cfg.Tracer = tr
	return cfg, tr
}

// TestFullStackFaultRunDeterministic reruns the full fault stack under one
// seed and requires byte-identical metrics and identical trace tallies —
// retry scheduling, jitter, shedding and the Gilbert–Elliott chain must all
// come off the seeded streams.
func TestFullStackFaultRunDeterministic(t *testing.T) {
	run := func() (*Metrics, map[trace.Kind]int64) {
		cfg, tr := fullFaultConfig(t)
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		kinds := map[trace.Kind]int64{}
		for _, k := range []trace.Kind{trace.KindCorrupt, trace.KindRetry, trace.KindShed, trace.KindServed} {
			kinds[k] = tr.Count(k)
		}
		return m, kinds
	}
	m1, k1 := run()
	m2, k2 := run()
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("full-stack fault run not deterministic")
	}
	if !reflect.DeepEqual(k1, k2) {
		t.Fatalf("trace tallies diverge: %v vs %v", k1, k2)
	}
	if k1[trace.KindCorrupt] == 0 || k1[trace.KindRetry] == 0 {
		t.Fatalf("full stack exercised no faults: %v", k1)
	}
}

// TestCorruptionTriggersRetriesAndFailures drives an i.i.d. lossy downlink
// with a small retry budget and checks every counter the layer adds.
func TestCorruptionTriggersRetriesAndFailures(t *testing.T) {
	cfg := baseConfig(t)
	lm, err := faults.NewBernoulli(0.4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Loss = lm
	cfg.Retry = faults.RetryPolicy{MaxAttempts: 2, Base: 1, Multiplier: 2}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.CorruptedPushes == 0 || m.CorruptedPulls == 0 {
		t.Fatalf("40%% loss corrupted nothing: %d push, %d pull", m.CorruptedPushes, m.CorruptedPulls)
	}
	var retries, failed, served int64
	for _, cm := range m.PerClass {
		retries += cm.Retries
		failed += cm.Failed
		served += cm.Served
	}
	if retries == 0 {
		t.Fatal("no retries despite corruption")
	}
	if failed == 0 {
		t.Fatal("no retry-budget exhaustion despite 40% loss and 2 attempts")
	}
	if served == 0 {
		t.Fatal("nothing served — retries should recover most requests")
	}
	if m.Goodput() >= m.RawTransmissions() {
		t.Fatalf("goodput %d not below raw throughput %d", m.Goodput(), m.RawTransmissions())
	}
	if m.Goodput() != m.RawTransmissions()-m.CorruptedPushes-m.CorruptedPulls {
		t.Fatal("goodput accounting broken")
	}
}

// TestTotalLossWithoutRetriesFailsEverything is the boundary: a channel that
// corrupts every transmission and clients that never re-request.
func TestTotalLossWithoutRetriesFailsEverything(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Horizon = 2000
	lm, err := faults.NewBernoulli(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Loss = lm
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Goodput() != 0 {
		t.Fatalf("goodput %d on a fully corrupted channel", m.Goodput())
	}
	var served int64
	for _, cm := range m.PerClass {
		served += cm.Served
	}
	if served != 0 {
		t.Fatalf("%d requests served on a fully corrupted channel", served)
	}
	if m.TotalFailed() == 0 {
		t.Fatal("no pull requests failed without retries")
	}
}

// TestRetryBeyondTTLExpires: when the first backoff already overshoots the
// request's deadline, the client gives up — the request expires instead of
// retrying.
func TestRetryBeyondTTLExpires(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Horizon = 2000
	cfg.RequestTTL = 400 // generous against delay, tiny against the backoff
	lm, err := faults.NewBernoulli(0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Loss = lm
	cfg.Retry = faults.RetryPolicy{MaxAttempts: 5, Base: 5000, Multiplier: 2}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var retries, expired int64
	for _, cm := range m.PerClass {
		retries += cm.Retries
		expired += cm.Expired
	}
	if retries != 0 {
		t.Fatalf("%d retries booked past the TTL deadline", retries)
	}
	if expired == 0 {
		t.Fatal("no expiries despite backoff overshooting every deadline")
	}
}

// TestSheddingProtectsTopClass: under bursty loss and tight watermarks the
// admission controller sheds Class-C, keeping Class-A's failure rate
// strictly lower; Class-A itself is never shed (default MaxShedClasses).
func TestSheddingProtectsTopClass(t *testing.T) {
	cfg := baseConfig(t)
	lm, err := faults.NewBurstLoss(0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Loss = lm
	cfg.Retry = faults.RetryPolicy{MaxAttempts: 3, Base: 1, Multiplier: 2}
	cfg.Shed = &faults.ShedConfig{High: 30, Low: 15}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, c := m.PerClass[0], m.PerClass[2]
	if c.Shed == 0 {
		t.Fatal("Class-C never shed under overload")
	}
	if a.Shed != 0 || m.PerClass[1].Shed != 0 {
		t.Fatalf("higher classes shed (A=%d, B=%d) with the bottom-class-only default", a.Shed, m.PerClass[1].Shed)
	}
	if a.FailureRate() >= c.FailureRate() {
		t.Fatalf("Class-A failure rate %.4f not below Class-C %.4f", a.FailureRate(), c.FailureRate())
	}
	if m.TotalShed() != c.Shed {
		t.Fatal("TotalShed accounting broken")
	}
}

// TestCorruptedPushWaitersServedNextCycle: a corrupted broadcast leaves its
// waiters registered, so they are served by a later cycle of the same item
// rather than dropped.
func TestCorruptedPushWaitersServedNextCycle(t *testing.T) {
	cfg := baseConfig(t)
	lm, err := faults.NewBernoulli(0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Loss = lm
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.CorruptedPushes == 0 {
		t.Fatal("no push corruption at 30% loss")
	}
	var pushServed int64
	for _, cm := range m.PerClass {
		pushServed += cm.PushDelay.N()
	}
	if pushServed == 0 {
		t.Fatal("no push-served requests — corrupted broadcasts must not drop waiters")
	}
}
