package core

import (
	"math"
	"testing"

	"hybridqos/internal/analytic"
	"hybridqos/internal/bandwidth"
)

func TestBlockingRateMatchesAnalyticModel(t *testing.T) {
	// Under strict partitioning, each class's per-transmission blocking
	// rate should match the Poisson-demand model integrated over the pull
	// set's popularity-weighted length mix.
	cfg := baseConfig(t)
	cfg.Horizon = 60000
	demandMean := 1.2
	fractions := []float64{0.5, 0.3, 0.2}
	total := 20.0
	cfg.Bandwidth = &bandwidth.Config{Total: total, Fractions: fractions, DemandMean: demandMean}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c, frac := range fractions {
		st := m.Bandwidth[c]
		if st.Attempts < 200 {
			continue // too few attempts for a rate comparison
		}
		got := st.BlockingRate()
		want, err := analytic.ExpectedBlockingRate(cfg.Catalog, cfg.Cutoff, demandMean, total*frac)
		if err != nil {
			t.Fatal(err)
		}
		// The governing-class length mix differs slightly from the raw pull
		// mix (popular items are more often A-governed), so allow a loose
		// absolute tolerance.
		if math.Abs(got-want) > 0.08 {
			t.Errorf("class %d: sim blocking %.4f vs analytic %.4f", c, got, want)
		}
	}
}
