package core

import (
	"math"
	"testing"

	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/faults"
	"hybridqos/internal/sched"
)

// TestValidateCatchesPanicPaths audits Config.Validate against every
// configuration that would otherwise panic deep inside internal/pullqueue or
// internal/catalog once the run is underway (zero-value catalogs and
// classifications are legal composite literals; a hand-built importance
// factor bypasses the checked constructor). Each case must fail validation
// up front, and New must reject it without panicking.
func TestValidateCatchesPanicPaths(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero-value catalog", func(c *Config) { c.Catalog = &catalog.Catalog{} }},
		{"zero-value classification", func(c *Config) { c.Classes = &clients.Classification{} }},
		{"pull policy alpha above 1", func(c *Config) { c.PullPolicy = sched.ImportanceFactor{Alpha: 7} }},
		{"pull policy alpha negative", func(c *Config) { c.PullPolicy = sched.ImportanceFactor{Alpha: -0.5} }},
		{"pull policy alpha NaN", func(c *Config) { c.PullPolicy = sched.ImportanceFactor{Alpha: math.NaN()} }},
		{"negative retry attempts", func(c *Config) { c.Retry = faults.RetryPolicy{MaxAttempts: -1} }},
		{"retry enabled without base", func(c *Config) { c.Retry = faults.RetryPolicy{MaxAttempts: 2} }},
		{"retry multiplier below 1", func(c *Config) {
			c.Retry = faults.RetryPolicy{MaxAttempts: 2, Base: 1, Multiplier: 0.5}
		}},
		{"shed watermarks inverted", func(c *Config) { c.Shed = &faults.ShedConfig{High: 5, Low: 10} }},
		{"shed would starve class 0", func(c *Config) {
			c.Shed = &faults.ShedConfig{High: 10, Low: 5, MaxShedClasses: 3}
		}},
	}
	for _, tc := range cases {
		cfg := baseConfig(t)
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: New panicked: %v", tc.name, r)
				}
			}()
			if _, err := New(cfg); err == nil {
				t.Errorf("%s: New accepted", tc.name)
			}
		}()
	}
}
