package core

// Real-time span recording: the serving engine's analogue of the simulation
// engine's span provenance events. The simulator emits events and lets
// internal/span reconstruct; the serving engine has no trace stream, so it
// assembles the same span.Span shape directly at each request's terminal and
// keeps the most recent completions in a ring buffer that qosd serves at
// /debug/spans. Sampling is head-based on a dedicated stream, exactly as in
// the simulator: spans-off costs one nil check per submission.

import (
	"hybridqos/internal/admission"
	"hybridqos/internal/clients"
	"hybridqos/internal/rng"
	"hybridqos/internal/span"
	"hybridqos/internal/trace"
)

// RealtimeSpanConfig enables span recording in a serving engine.
type RealtimeSpanConfig struct {
	// Rate is the head-sampling probability in [0,1]; 0 disables recording.
	Rate float64
	// Buffer is the ring capacity of completed spans (default 64).
	Buffer int
	// RNG drives the sampling decision; required when 0 < Rate < 1 (rates 0
	// and 1 draw nothing).
	RNG *rng.Source
}

// defaultSpanBuffer is the ring capacity when the config leaves Buffer 0.
const defaultSpanBuffer = 64

// sampleSpan makes the head-based sampling decision for one submission and
// mints its span ID, or returns 0 (unsampled or spans disabled).
func (rt *Realtime) sampleSpan() int64 {
	if rt.spanCfg == nil || rt.spanCfg.Rate <= 0 {
		return 0
	}
	if rt.spanCfg.Rate < 1 && rt.spanCfg.RNG.Float64() >= rt.spanCfg.Rate {
		return 0
	}
	rt.spanSeq++
	return rt.spanSeq
}

// newSpan opens a span for an admitted sampled request (nil when unsampled).
func (rt *Realtime) newSpan(item int, class clients.Class, now float64, verdict string) *span.Span {
	id := rt.sampleSpan()
	if id == 0 {
		return nil
	}
	return &span.Span{
		ID: id, Class: class, Item: item,
		Verdict: verdict, Start: now, End: now, Open: true,
	}
}

// refusalSpan records a zero-length span for a sampled request the engine
// (or the daemon's draining door) turned away: the full refusal taxonomy is
// visible in /debug/spans, not only successes.
func (rt *Realtime) refusalSpan(item int, class clients.Class, outcome string) {
	id := rt.sampleSpan()
	if id == 0 {
		return
	}
	now := rt.clk.Now()
	rt.record(&span.Span{
		ID: id, Class: class, Item: item,
		Verdict: trace.VerdictPull, Outcome: outcome, Start: now, End: now,
	})
}

// refusalOutcome maps an admission verdict onto the span terminal taxonomy.
func refusalOutcome(v admission.Verdict) string {
	if v == admission.ShedOverload {
		return trace.EndShed
	}
	return trace.EndRejected
}

// RefuseDraining records a draining-door refusal span for a sampled request
// (no-op with spans disabled). The daemon calls it, on the clock goroutine,
// for requests bounced before Submit because Drain already closed admission.
func (rt *Realtime) RefuseDraining(item int, class clients.Class) {
	rt.refusalSpan(item, class, trace.EndDraining)
}

// closeSpan finishes an admitted request's span at its terminal and records
// it. A delivery splits the lifetime into wait + service at the transmission
// start (the serving engine transmits one item at a time, so the delivering
// transmission began its length ago, clamped to the request's own arrival);
// an expiry is all wait.
func (rt *Realtime) closeSpan(slot int32, now float64, outcome string, push bool) {
	sp := rt.reqs.sp[slot]
	if sp == nil {
		return
	}
	rt.reqs.sp[slot] = nil
	sp.Open = false
	sp.Outcome = outcome
	sp.End = now
	sp.Push = push
	wait := span.SegQueueWait
	if sp.Verdict == trace.VerdictPush {
		wait = span.SegPushWait
	}
	if outcome == trace.EndServed {
		ws := now - rt.cfg.Catalog.Length(int(rt.reqs.item[slot]))
		if ws < sp.Start {
			ws = sp.Start
		}
		if ws > sp.Start {
			sp.Segments = append(sp.Segments, span.Segment{Kind: wait, From: sp.Start, To: ws})
		}
		sp.Segments = append(sp.Segments, span.Segment{Kind: span.SegService, From: ws, To: now})
	} else if now > sp.Start {
		sp.Segments = append(sp.Segments, span.Segment{Kind: wait, From: sp.Start, To: now})
	}
	rt.record(sp)
}

// record pushes a completed span into the ring, evicting the oldest.
func (rt *Realtime) record(sp *span.Span) {
	if len(rt.spanRing) < cap(rt.spanRing) {
		rt.spanRing = append(rt.spanRing, sp)
		return
	}
	rt.spanRing[rt.spanHead] = sp
	rt.spanHead = (rt.spanHead + 1) % len(rt.spanRing)
}

// Spans returns the buffered completed spans, oldest first. Like every
// Realtime method it must run on the clock goroutine; qosd bridges via exec.
func (rt *Realtime) Spans() []*span.Span {
	out := make([]*span.Span, 0, len(rt.spanRing))
	out = append(out, rt.spanRing[rt.spanHead:]...)
	out = append(out, rt.spanRing[:rt.spanHead]...)
	return out
}
