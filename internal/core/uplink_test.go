package core

import (
	"testing"

	"hybridqos/internal/uplink"
)

func TestUplinkLossesCounted(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Horizon = 10000
	tb, err := uplink.NewTokenBucket(0.5, 2) // far below the pull request rate
	if err != nil {
		t.Fatal(err)
	}
	cfg.Uplink = tb
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lost int64
	for _, cm := range m.PerClass {
		lost += cm.UplinkLost
	}
	if lost == 0 {
		t.Fatal("starved uplink lost no requests")
	}
	if tb.Lost == 0 || tb.Admitted == 0 {
		t.Fatalf("bucket counters: admitted %d lost %d", tb.Admitted, tb.Lost)
	}
	// Served + uplink-lost cannot exceed arrivals.
	for c, cm := range m.PerClass {
		if cm.Served+cm.Dropped+cm.UplinkLost > cm.Arrivals {
			t.Fatalf("class %d accounting broken: served %d + dropped %d + uplinkLost %d > arrivals %d",
				c, cm.Served, cm.Dropped, cm.UplinkLost, cm.Arrivals)
		}
	}
}

func TestUplinkReducesPullLoad(t *testing.T) {
	free, err := Run(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	throttled := baseConfig(t)
	tb, err := uplink.NewTokenBucket(0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	throttled.Uplink = tb
	thr, err := Run(throttled)
	if err != nil {
		t.Fatal(err)
	}
	if thr.QueueRequests.Mean() >= free.QueueRequests.Mean() {
		t.Fatalf("throttled uplink did not shrink pending requests: %g vs %g",
			thr.QueueRequests.Mean(), free.QueueRequests.Mean())
	}
}

func TestUnlimitedUplinkNoLosses(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Uplink = uplink.Unlimited{}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cm := range m.PerClass {
		if cm.UplinkLost != 0 {
			t.Fatal("unlimited uplink lost requests")
		}
	}
}
