package core

import (
	"bytes"
	"math"
	"testing"

	"hybridqos/internal/bandwidth"
	"hybridqos/internal/trace"
)

// bandwidthStarved returns a config that guarantees blocking.
func bandwidthStarved() bandwidth.Config {
	return bandwidth.Config{Total: 3, Fractions: []float64{0.34, 0.33, 0.33}, DemandMean: 3}
}

func TestTraceCountsMatchMetrics(t *testing.T) {
	cfg := baseConfig(t)
	counter := trace.NewCounter()
	cfg.Tracer = counter
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if counter.Count(trace.KindPushComplete) != m.PushBroadcasts {
		t.Fatalf("push-complete events %d vs metric %d",
			counter.Count(trace.KindPushComplete), m.PushBroadcasts)
	}
	if counter.Count(trace.KindPullComplete) != m.PullTransmissions {
		t.Fatalf("pull-complete events %d vs metric %d",
			counter.Count(trace.KindPullComplete), m.PullTransmissions)
	}
	var served int64
	for _, cm := range m.PerClass {
		served += cm.Served
	}
	if counter.Count(trace.KindServed) != served {
		t.Fatalf("served events %d vs metric %d", counter.Count(trace.KindServed), served)
	}
	// Every pull transmission must have been started.
	if counter.Count(trace.KindPullStart) != counter.Count(trace.KindPullComplete) {
		t.Fatalf("pull starts %d != completes %d",
			counter.Count(trace.KindPullStart), counter.Count(trace.KindPullComplete))
	}
}

func TestTraceReplayAuditsLiveCollectors(t *testing.T) {
	// The JSONL trace replayed offline must reproduce the live per-class
	// delay means exactly.
	cfg := baseConfig(t)
	cfg.Horizon = 4000
	var buf bytes.Buffer
	j := trace.NewJSONL(&buf)
	cfg.Tracer = j
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := trace.Replay(events, len(m.PerClass))
	if err != nil {
		t.Fatal(err)
	}
	for c, cm := range m.PerClass {
		if replayed[c].Served != cm.Served {
			t.Fatalf("class %d: replay served %d vs live %d", c, replayed[c].Served, cm.Served)
		}
		if cm.Served > 0 && math.Abs(replayed[c].MeanDelay()-cm.Delay.Mean()) > 1e-9 {
			t.Fatalf("class %d: replay delay %g vs live %g",
				c, replayed[c].MeanDelay(), cm.Delay.Mean())
		}
	}
}

func TestTraceBlockedEvents(t *testing.T) {
	cfg := baseConfig(t)
	bw := bandwidthStarved()
	cfg.Bandwidth = &bw
	counter := trace.NewCounter()
	cfg.Tracer = counter
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if counter.Count(trace.KindBlocked) != m.BlockedTransmissions {
		t.Fatalf("blocked events %d vs metric %d",
			counter.Count(trace.KindBlocked), m.BlockedTransmissions)
	}
	if m.BlockedTransmissions == 0 {
		t.Fatal("expected blocking under starved bandwidth")
	}
}
