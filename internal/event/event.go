// Package event implements the discrete-event simulation engine underlying
// the wireless-cell simulator: a simulated clock and a priority queue of
// timestamped events with deterministic FIFO tie-breaking, so that two runs
// with the same seed replay the exact same event order.
//
// The pending-event set is a hybrid calendar queue (see calendar.go): a
// bucket array covering the dense near-future band gives O(1) amortised
// schedule and pop, and a spill heap absorbs far-future events. Events live
// in an index-addressed arena — the structures move int32 slot numbers, not
// pointers, so steady-state scheduling allocates nothing and the garbage
// collector has no per-event pointers to trace. Pop order is exactly the
// binary heap's: ascending (time, insertion sequence), bit-identical under
// any bucket-sizing heuristic (TestDifferentialAgainstReferenceHeap pins
// this against the retired container/heap implementation).
package event

import (
	"fmt"
	"math"
)

// Handler is the action executed when an event fires. Handlers close over
// whatever state they need (including the simulator or clock that schedules
// them) — the signature carries no arguments so the same handler type serves
// both the virtual event loop and the wall-clock loop in internal/clock.
type Handler func()

// event is one scheduled occurrence, stored in the Simulator's arena and
// addressed by slot index. Fired and cancelled events park on the freelist
// and are reused by later At calls; gen increments on every reuse so stale
// Tokens can never cancel the recycled slot.
type event struct {
	time    float64
	seq     uint64 // insertion order, breaks time ties deterministically
	handler Handler
	gen     uint64 // reuse generation, guards Token validity
	where   int32  // bucket index, whereSpill, or whereFree once popped/cancelled
	slot    int32  // position within its bucket slice or the spill heap
}

// where values outside the bucket range.
const (
	whereSpill int32 = -1 // in the far-future spill heap
	whereFree  int32 = -2 // fired or cancelled; slot awaiting reuse
)

// Token identifies a scheduled event so it can be cancelled. A Token held
// past its event's firing (or cancellation) goes stale and cancels nothing,
// even after the simulator reuses the event's storage. The zero Token is
// valid and cancels nothing (arena generations start at 1).
type Token struct {
	slot int32
	gen  uint64
}

// Simulator owns the clock and the pending-event set.
type Simulator struct {
	now     float64
	nextSeq uint64
	fired   uint64
	stopped bool

	events []event // index-addressed arena; structures reference slots
	free   []int32 // fired/cancelled slots awaiting reuse

	// Calendar band: buckets[i] holds the slots of pending events whose
	// time maps into [bandStart + i·width, bandStart + (i+1)·width). Buckets
	// are unsorted; the pop path min-scans the first non-empty bucket, which
	// is O(occupancy) — the sizing heuristics keep occupancy near one.
	buckets   [][]int32
	bandStart float64
	width     float64
	invWidth  float64
	cur       int // all buckets below cur are empty (see pop)
	bandCount int

	// Far-future spill: a manual binary min-heap on (time, seq) holding the
	// slots whose time falls beyond the band. Migrated into a fresh band by
	// retarget when the band drains.
	spill []int32

	minSlot int32   // cached arg-min slot, -1 when unknown
	avgGap  float64 // EWMA of pop-to-pop gaps; sets the bucket width at retarget
	lastPop float64 // previous popped time, feeds avgGap
}

// New returns a Simulator with the clock at zero.
func New() *Simulator { return &Simulator{minSlot: -1} }

// Now returns the current simulated time.
func (s *Simulator) Now() float64 { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of scheduled-but-unfired events.
func (s *Simulator) Pending() int { return s.bandCount + len(s.spill) }

// alloc returns a recycled arena slot (bumping its generation) or a fresh
// one, initialised for time t and handler h.
//
//qos:hotpath
func (s *Simulator) alloc(t float64, h Handler) int32 {
	var i int32
	if n := len(s.free); n > 0 {
		i = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		i = s.grow()
	}
	ev := &s.events[i]
	ev.time = t
	ev.seq = s.nextSeq
	ev.handler = h
	ev.gen++
	return i
}

// grow appends a fresh zero slot to the arena (cold path: the arena reaches
// the peak in-flight event count once, then the freelist recycles).
func (s *Simulator) grow() int32 {
	s.events = append(s.events, event{})
	return int32(len(s.events) - 1)
}

// recycle parks a popped or cancelled slot for reuse. The handler is
// dropped immediately so captured state does not outlive the event.
//
//qos:hotpath
func (s *Simulator) recycle(i int32) {
	ev := &s.events[i]
	ev.handler = nil
	ev.where = whereFree
	if n := len(s.free); n < cap(s.free) {
		s.free = s.free[:n+1]
		s.free[n] = i
	} else {
		s.freeGrow(i)
	}
}

// freeGrow is recycle's cold path: the freelist grows to the peak in-flight
// event count once, then recycles.
func (s *Simulator) freeGrow(i int32) {
	s.free = append(s.free, i)
}

// At schedules h to run at absolute time t. Scheduling in the past panics —
// it would silently corrupt causality. Returns a Token for cancellation.
//
//qos:hotpath
func (s *Simulator) At(t float64, h Handler) Token {
	if t < s.now || math.IsNaN(t) {
		panic(fmt.Sprintf("event: scheduling at t=%g before now=%g", t, s.now))
	}
	if h == nil {
		panic("event: nil handler")
	}
	i := s.alloc(t, h)
	s.nextSeq++
	s.place(i)
	if m := s.minSlot; m >= 0 && s.before(i, m) {
		s.minSlot = i
	}
	return Token{slot: i, gen: s.events[i].gen}
}

// After schedules h to run delay time units from now. Negative delay panics.
//
//qos:hotpath
func (s *Simulator) After(delay float64, h Handler) Token {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("event: negative delay %g", delay))
	}
	return s.At(s.now+delay, h)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (s *Simulator) Cancel(tok Token) bool {
	if tok.gen == 0 || int(tok.slot) >= len(s.events) {
		return false
	}
	ev := &s.events[tok.slot]
	if ev.gen != tok.gen || ev.where == whereFree {
		return false
	}
	s.unlink(tok.slot)
	if s.minSlot == tok.slot {
		s.minSlot = -1
	}
	s.recycle(tok.slot)
	return true
}

// Stop makes the current Run/RunUntil call return after the in-flight
// handler finishes. Pending events remain queued.
func (s *Simulator) Stop() { s.stopped = true }

// step pops and fires the earliest event. Returns false if none remain.
//
//qos:hotpath
func (s *Simulator) step() bool {
	i := s.popMin()
	if i < 0 {
		return false
	}
	ev := &s.events[i]
	s.now = ev.time
	s.fired++
	h := ev.handler
	s.recycle(i)
	h()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.step() {
	}
}

// RunUntil executes events with time <= horizon, then advances the clock to
// exactly horizon. Events scheduled beyond the horizon stay queued.
func (s *Simulator) RunUntil(horizon float64) {
	if horizon < s.now {
		panic(fmt.Sprintf("event: horizon %g before now %g", horizon, s.now))
	}
	s.stopped = false
	for !s.stopped {
		i := s.peekMin()
		if i < 0 || s.events[i].time > horizon {
			break
		}
		s.step()
	}
	if !s.stopped && s.now < horizon {
		s.now = horizon
	}
}
