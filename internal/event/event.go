// Package event implements the discrete-event simulation engine underlying
// the wireless-cell simulator: a simulated clock and a priority queue of
// timestamped events with deterministic FIFO tie-breaking, so that two runs
// with the same seed replay the exact same event order.
package event

import (
	"container/heap"
	"fmt"
	"math"
)

// Handler is the action executed when an event fires. Handlers close over
// whatever state they need (including the simulator or clock that schedules
// them) — the signature carries no arguments so the same handler type serves
// both the virtual event loop and the wall-clock loop in internal/clock.
type Handler func()

// event is one scheduled occurrence. Fired and cancelled events are parked
// on the simulator's freelist and reused by later At calls; gen increments
// on every reuse so stale Tokens can never cancel the recycled event.
type event struct {
	time    float64
	seq     uint64 // insertion order, breaks time ties deterministically
	handler Handler
	index   int    // heap index, -1 once popped or cancelled
	gen     uint64 // reuse generation, guards Token validity
}

// Token identifies a scheduled event so it can be cancelled. A Token held
// past its event's firing (or cancellation) goes stale and cancels nothing,
// even after the simulator reuses the event's storage.
type Token struct {
	ev  *event
	gen uint64
}

// eventHeap orders events by (time, seq).
type eventHeap []*event

//qos:hotpath
func (h eventHeap) Len() int { return len(h) }

//qos:hotpath
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

//qos:hotpath
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

//qos:hotpath
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	//lint:allow hotalloc amortized: the heap backing array grows to the peak pending-event count once
	*h = append(*h, ev)
}

//qos:hotpath
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Simulator owns the clock and the pending-event set.
type Simulator struct {
	now     float64
	queue   eventHeap
	nextSeq uint64
	fired   uint64
	stopped bool
	free    []*event // fired/cancelled events awaiting reuse
}

// alloc returns a recycled event (bumping its generation) or a fresh one.
//
//qos:hotpath
func (s *Simulator) alloc(t float64, h Handler) *event {
	n := len(s.free)
	if n == 0 {
		return &event{time: t, seq: s.nextSeq, handler: h}
	}
	ev := s.free[n-1]
	s.free[n-1] = nil
	s.free = s.free[:n-1]
	ev.time = t
	ev.seq = s.nextSeq
	ev.handler = h
	ev.gen++
	return ev
}

// recycle parks a popped or cancelled event for reuse. The handler is
// dropped immediately so captured state does not outlive the event.
//
//qos:hotpath
func (s *Simulator) recycle(ev *event) {
	ev.handler = nil
	//lint:allow hotalloc amortized: the freelist grows to the peak in-flight event count once, then recycles
	s.free = append(s.free, ev)
}

// New returns a Simulator with the clock at zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulated time.
func (s *Simulator) Now() float64 { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of scheduled-but-unfired events.
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules h to run at absolute time t. Scheduling in the past panics —
// it would silently corrupt causality. Returns a Token for cancellation.
//
//qos:hotpath
func (s *Simulator) At(t float64, h Handler) Token {
	if t < s.now || math.IsNaN(t) {
		panic(fmt.Sprintf("event: scheduling at t=%g before now=%g", t, s.now))
	}
	if h == nil {
		panic("event: nil handler")
	}
	ev := s.alloc(t, h)
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return Token{ev: ev, gen: ev.gen}
}

// After schedules h to run delay time units from now. Negative delay panics.
//
//qos:hotpath
func (s *Simulator) After(delay float64, h Handler) Token {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("event: negative delay %g", delay))
	}
	return s.At(s.now+delay, h)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (s *Simulator) Cancel(tok Token) bool {
	if tok.ev == nil || tok.ev.index < 0 || tok.ev.gen != tok.gen {
		return false
	}
	heap.Remove(&s.queue, tok.ev.index)
	tok.ev.index = -1
	s.recycle(tok.ev)
	return true
}

// Stop makes the current Run/RunUntil call return after the in-flight
// handler finishes. Pending events remain queued.
func (s *Simulator) Stop() { s.stopped = true }

// step pops and fires the earliest event. Returns false if none remain.
//
//qos:hotpath
func (s *Simulator) step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*event)
	s.now = ev.time
	s.fired++
	h := ev.handler
	s.recycle(ev)
	h()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.step() {
	}
}

// RunUntil executes events with time <= horizon, then advances the clock to
// exactly horizon. Events scheduled beyond the horizon stay queued.
func (s *Simulator) RunUntil(horizon float64) {
	if horizon < s.now {
		panic(fmt.Sprintf("event: horizon %g before now %g", horizon, s.now))
	}
	s.stopped = false
	for !s.stopped && len(s.queue) > 0 && s.queue[0].time <= horizon {
		s.step()
	}
	if !s.stopped && s.now < horizon {
		s.now = horizon
	}
}
