package event

import "container/heap"

// refSim is the retired container/heap scheduler, preserved verbatim as the
// reference implementation for the differential tests and the heap-vs-
// calendar benchmarks. Its pop order — ascending (time, seq) — is the
// contract the calendar queue must reproduce bit-identically.
type refSim struct {
	now     float64
	queue   refHeap
	nextSeq uint64
}

type refEvent struct {
	time    float64
	seq     uint64
	handler Handler
	index   int
}

type refToken struct{ ev *refEvent }

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }

func (h refHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *refHeap) Push(x any) {
	ev := x.(*refEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

func newRefSim() *refSim { return &refSim{} }

func (s *refSim) At(t float64, h Handler) refToken {
	ev := &refEvent{time: t, seq: s.nextSeq, handler: h}
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return refToken{ev: ev}
}

func (s *refSim) Cancel(tok refToken) bool {
	if tok.ev == nil || tok.ev.index < 0 {
		return false
	}
	heap.Remove(&s.queue, tok.ev.index)
	tok.ev.index = -1
	return true
}

func (s *refSim) Pending() int { return len(s.queue) }

// step pops and fires the earliest event, returning false when drained.
func (s *refSim) step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*refEvent)
	s.now = ev.time
	h := ev.handler
	ev.handler = nil
	h()
	return true
}

func (s *refSim) run() {
	for s.step() {
	}
}
