package event

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"hybridqos/internal/rng"
)

func TestFiresInTimeOrder(t *testing.T) {
	s := New()
	var got []float64
	for _, tm := range []float64{5, 1, 3, 2, 4} {
		tm := tm
		s.At(tm, func() { got = append(got, s.Now()) })
	}
	s.Run()
	want := []float64{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
	if s.Fired() != 5 || s.Pending() != 0 {
		t.Fatalf("Fired=%d Pending=%d", s.Fired(), s.Pending())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(7, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of insertion order: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var at float64
	s.At(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	s.Run()
	if at != 15 {
		t.Fatalf("After(5) from t=10 fired at %g", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("At(past) did not panic")
			}
		}()
		s.At(9, func() {})
	})
	s.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestNaNTimePanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("At(NaN) did not panic")
		}
	}()
	s.At(math.NaN(), func() {})
}

func TestNilHandlerPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	s.At(1, nil)
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	tok := s.At(5, func() { fired = true })
	if !s.Cancel(tok) {
		t.Fatal("Cancel returned false on pending event")
	}
	if s.Cancel(tok) {
		t.Fatal("double Cancel returned true")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelFiredEventIsNoop(t *testing.T) {
	s := New()
	tok := s.At(1, func() {})
	s.Run()
	if s.Cancel(tok) {
		t.Fatal("Cancel of fired event returned true")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New()
	var got []float64
	var toks []Token
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		toks = append(toks, s.At(tm, func() { got = append(got, s.Now()) }))
	}
	s.Cancel(toks[2]) // remove t=3
	s.Run()
	want := []float64{1, 2, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		i := i
		s.At(float64(i), func() {
			count++
			if i == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("fired %d events, want 3", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", s.Pending())
	}
	// Resume.
	s.Run()
	if count != 10 {
		t.Fatalf("after resume fired %d total", count)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 10, 20} {
		tm := tm
		s.At(tm, func() { fired = append(fired, s.Now()) })
	}
	s.RunUntil(5)
	if len(fired) != 3 {
		t.Fatalf("fired %v before horizon 5", fired)
	}
	if s.Now() != 5 {
		t.Fatalf("clock at %g after RunUntil(5)", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.RunUntil(25)
	if len(fired) != 5 || s.Now() != 25 {
		t.Fatalf("after second horizon: fired=%v now=%g", fired, s.Now())
	}
}

func TestRunUntilPastHorizonPanics(t *testing.T) {
	s := New()
	s.At(3, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil(past) did not panic")
		}
	}()
	s.RunUntil(1)
}

func TestRunUntilInclusiveBoundary(t *testing.T) {
	s := New()
	fired := false
	s.At(5, func() { fired = true })
	s.RunUntil(5)
	if !fired {
		t.Fatal("event exactly at horizon did not fire")
	}
}

func TestCascadingEvents(t *testing.T) {
	// A self-rescheduling process: verifies handlers can schedule while the
	// engine is mid-run, the standard DES usage pattern.
	s := New()
	ticks := 0
	var tick Handler
	tick = func() {
		ticks++
		if ticks < 100 {
			s.After(1, tick)
		}
	}
	s.At(0, tick)
	s.Run()
	if ticks != 100 {
		t.Fatalf("ticks = %d", ticks)
	}
	if s.Now() != 99 {
		t.Fatalf("clock at %g, want 99", s.Now())
	}
}

// Property: random schedules always fire in non-decreasing time order, and
// the clock never goes backwards.
func TestPropertyOrdering(t *testing.T) {
	r := rng.New(13)
	check := func(nRaw uint8) bool {
		n := int(nRaw%200) + 1
		s := New()
		times := make([]float64, n)
		var fired []float64
		for i := range times {
			times[i] = math.Floor(r.Float64()*50) / 2 // coarse grid forces ties
			tm := times[i]
			s.At(tm, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != n {
			return false
		}
		sort.Float64s(times)
		for i := range fired {
			if fired[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	s := New()
	h := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+float64(i%16), h)
		if s.Pending() > 1024 {
			s.RunUntil(s.Now() + 8)
		}
	}
	s.Run()
}

func TestStaleTokenCannotCancelRecycledEvent(t *testing.T) {
	s := New()
	fired := make([]string, 0, 2)
	tok := s.At(1, func() { fired = append(fired, "first") })
	s.Run()
	// The first event has fired; its storage may now back a new event.
	s.At(2, func() { fired = append(fired, "second") })
	if s.Cancel(tok) {
		t.Fatal("stale token cancelled something")
	}
	s.Run()
	if len(fired) != 2 || fired[1] != "second" {
		t.Fatalf("fired %v, want [first second]", fired)
	}
}

func TestCancelledTokenStaysDeadAfterReuse(t *testing.T) {
	s := New()
	tok := s.At(1, func() { t.Fatal("cancelled event fired") })
	if !s.Cancel(tok) {
		t.Fatal("first cancel failed")
	}
	ran := false
	s.At(1, func() { ran = true })
	if s.Cancel(tok) {
		t.Fatal("double cancel hit the recycled event")
	}
	s.Run()
	if !ran {
		t.Fatal("replacement event never fired")
	}
}

func TestEventStorageIsReused(t *testing.T) {
	s := New()
	// Steady-state schedule/fire cycles must stop allocating events: after
	// a warm-up the freelist satisfies every At.
	for i := 0; i < 100; i++ {
		s.At(s.Now(), func() {})
		s.Run()
	}
	if len(s.free) == 0 {
		t.Fatal("no events parked for reuse")
	}
	before := len(s.free)
	s.At(s.Now(), func() {})
	if len(s.free) != before-1 {
		t.Fatalf("At did not pop the freelist: %d -> %d", before, len(s.free))
	}
}
