package event

import (
	"fmt"
	"testing"

	"hybridqos/internal/rng"
)

// BenchmarkQueueMix measures steady-state schedule/pop (and optionally
// cancel) cycles at several pending-event densities, for the calendar queue
// and the retired container/heap reference. The pending count is held
// constant: each iteration pops the earliest event and schedules a
// replacement a uniform random gap ahead, so the time-axis density matches
// the event count. cancel=1of4 replaces every fourth op with a cancel of a
// random outstanding token followed by a reschedule.
func BenchmarkQueueMix(b *testing.B) {
	for _, pending := range []int{8, 64, 1024, 16384} {
		for _, cancelEvery := range []int{0, 4} {
			mix := "hold"
			if cancelEvery > 0 {
				mix = "1of4"
			}
			spread := float64(pending) // mean pop gap ~1 at every density
			b.Run(fmt.Sprintf("impl=calendar/pending=%d/cancel=%s", pending, mix), func(b *testing.B) {
				s := New()
				r := rng.New(7)
				h := func() {}
				toks := make([]Token, pending)
				for i := range toks {
					toks[i] = s.At(r.Float64()*spread, h)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if cancelEvery > 0 && i%cancelEvery == 0 {
						j := int(r.Uint64() % uint64(pending))
						if s.Cancel(toks[j]) {
							toks[j] = s.At(s.Now()+r.Float64()*spread, h)
							continue
						}
					}
					s.step()
					toks[i%pending] = s.At(s.Now()+r.Float64()*spread, h)
				}
			})
			b.Run(fmt.Sprintf("impl=heap/pending=%d/cancel=%s", pending, mix), func(b *testing.B) {
				s := newRefSim()
				r := rng.New(7)
				h := func() {}
				toks := make([]refToken, pending)
				for i := range toks {
					toks[i] = s.At(r.Float64()*spread, h)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if cancelEvery > 0 && i%cancelEvery == 0 {
						j := int(r.Uint64() % uint64(pending))
						if s.Cancel(toks[j]) {
							toks[j] = s.At(s.now+r.Float64()*spread, h)
							continue
						}
					}
					s.step()
					toks[i%pending] = s.At(s.now+r.Float64()*spread, h)
				}
			})
		}
	}
}
