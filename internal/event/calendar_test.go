package event

import (
	"math"
	"testing"

	"hybridqos/internal/rng"
)

// TestDifferentialAgainstReferenceHeap drives the calendar queue and the
// retired container/heap implementation through the same randomized
// schedule/cancel/advance workload and requires bit-identical pop order.
// The bursts sweep the pending count across the spill threshold in both
// directions, so the band engages, rebuilds, drains, and tears down many
// times; ties, coarse-grid clustering, and far-future outliers exercise
// every placement path.
func TestDifferentialAgainstReferenceHeap(t *testing.T) {
	r := rng.New(99)
	cal := New()
	ref := newRefSim()
	var calFired, refFired []int
	type pair struct {
		c Token
		r refToken
	}
	var live []pair
	id := 0
	schedule := func(at float64) {
		myID := id
		id++
		live = append(live, pair{
			c: cal.At(at, func() { calFired = append(calFired, myID) }),
			r: ref.At(at, func() { refFired = append(refFired, myID) }),
		})
	}
	now := 0.0
	for round := 0; round < 200; round++ {
		burst := 1 + int(r.Uint64()%uint64(1+(round%7)*60))
		for k := 0; k < burst; k++ {
			var gap float64
			switch r.Uint64() % 5 {
			case 0:
				gap = 0 // exact tie with now
			case 1:
				gap = math.Floor(r.Float64() * 8) // coarse grid forces shared timestamps
			case 2:
				gap = r.Float64() * 3 // dense near future
			case 3:
				gap = r.Float64() * 500 // far future, lands in the spill
			default:
				gap = r.Float64() * 20
			}
			schedule(now + gap)
		}
		for k := int(r.Uint64() % 8); k > 0 && len(live) > 0; k-- {
			j := int(r.Uint64() % uint64(len(live)))
			gotCal := cal.Cancel(live[j].c)
			gotRef := ref.Cancel(live[j].r)
			if gotCal != gotRef {
				t.Fatalf("round %d: Cancel disagreement: calendar=%v heap=%v", round, gotCal, gotRef)
			}
		}
		now += r.Float64() * 30
		cal.RunUntil(now)
		for ref.Pending() > 0 && ref.queue[0].time <= now {
			ref.step()
		}
		ref.now = now
		if len(calFired) != len(refFired) {
			t.Fatalf("round %d: fired %d events, heap fired %d", round, len(calFired), len(refFired))
		}
	}
	cal.Run()
	ref.run()
	if len(calFired) != len(refFired) {
		t.Fatalf("drained %d events, heap drained %d", len(calFired), len(refFired))
	}
	for i := range calFired {
		if calFired[i] != refFired[i] {
			t.Fatalf("pop order diverges at %d: calendar fired %d, heap fired %d", i, calFired[i], refFired[i])
		}
	}
	if len(calFired) == 0 {
		t.Fatal("differential workload fired nothing")
	}
}

// TestCancelAfterPopIsInert pins the cancel-after-pop edge: a Token whose
// event already fired cancels nothing, even after heavy slot recycling puts
// a new event into the same arena slot.
func TestCancelAfterPopIsInert(t *testing.T) {
	s := New()
	tok := s.At(1, func() {})
	bFired := false
	s.At(2, func() { bFired = true })
	s.RunUntil(1.5)
	if s.Cancel(tok) {
		t.Fatal("Cancel returned true for a popped event")
	}
	// Recycle the popped slot many times over.
	for i := 0; i < 50; i++ {
		s.Cancel(s.At(s.Now()+1, func() {}))
	}
	if s.Cancel(tok) {
		t.Fatal("Cancel of popped event hit a recycled slot")
	}
	s.Run()
	if !bFired {
		t.Fatal("unrelated event lost")
	}
}

// TestStaleGenerationCancelAcrossManyReuses cycles one arena slot through
// repeated cancel/reuse rounds: every retired generation's Token must stay
// dead while each fresh generation cancels exactly once.
func TestStaleGenerationCancelAcrossManyReuses(t *testing.T) {
	s := New()
	stale := s.At(1, func() { t.Error("cancelled event fired") })
	if !s.Cancel(stale) {
		t.Fatal("first cancel failed")
	}
	old := []Token{stale}
	for round := 0; round < 10; round++ {
		tok := s.At(float64(round)+1, func() { t.Error("cancelled event fired") })
		for _, dead := range old {
			if s.Cancel(dead) {
				t.Fatalf("round %d: stale generation cancelled a live event", round)
			}
		}
		if !s.Cancel(tok) {
			t.Fatalf("round %d: live token failed to cancel", round)
		}
		old = append(old, tok)
	}
	s.Run()
	if s.Fired() != 0 {
		t.Fatalf("fired %d events, want 0", s.Fired())
	}
}

// TestRescheduleStormAcrossBandResizes starts a small band, then floods it
// past the densityMax rebuild trigger while cancelling and rescheduling
// events mid-flight. Verifies the band physically grew and that the fired
// sequence stays sorted with the exact expected survivor count.
func TestRescheduleStormAcrossBandResizes(t *testing.T) {
	s := New()
	var fired []float64
	note := func() { fired = append(fired, s.Now()) }
	// Seed ~70 events at unit spacing: past the spill threshold, so the
	// first pop builds a small band, and the 1.0 pop gap calibrates width.
	for i := 1; i <= 70; i++ {
		s.At(float64(i), note)
	}
	s.RunUntil(10) // engage the band, feed the gap EWMA
	nbBefore := len(s.buckets)
	if nbBefore == 0 {
		t.Fatal("band did not engage above the spill threshold")
	}
	// Storm: far more in-window events than densityMax allows, with churn.
	r := rng.New(4)
	var toks []Token
	for i := 0; i < 8*nbBefore; i++ {
		toks = append(toks, s.At(s.Now()+1+r.Float64()*50, note))
	}
	cancelled := 0
	for i := 0; i < len(toks); i += 3 {
		if s.Cancel(toks[i]) {
			cancelled++
			// Reschedule: the replacement must land and fire in order.
			s.At(s.Now()+1+r.Float64()*50, note)
		}
	}
	if len(s.buckets) <= nbBefore {
		t.Fatalf("band never rebuilt: %d buckets before storm, %d after", nbBefore, len(s.buckets))
	}
	s.Run()
	want := 70 + 8*nbBefore // every cancel paired with one reschedule
	if len(fired) != want {
		t.Fatalf("fired %d events, want %d (cancelled %d, rescheduled %d)", len(fired), want, cancelled, cancelled)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("fire order regressed at %d: %g after %g", i, fired[i], fired[i-1])
		}
	}
}

// TestBandTearsDownWhenSparse pins the spill-threshold hysteresis: a dense
// burst engages the band, draining below the threshold tears it down (pops
// serve straight from the spill heap), and a second burst re-engages it.
func TestBandTearsDownWhenSparse(t *testing.T) {
	s := New()
	n := 0
	count := func() { n++ }
	for i := 1; i <= 100; i++ {
		s.At(float64(i)/10, count)
	}
	s.At(1000, count)
	s.At(2000, count)
	s.RunUntil(50) // drains the dense prefix; the two stragglers remain
	if len(s.buckets) != 0 {
		t.Fatalf("band still engaged with %d pending events", s.Pending())
	}
	s.RunUntil(1500)
	if n != 101 {
		t.Fatalf("fired %d, want 101", n)
	}
	// Re-engage with a second dense burst.
	for i := 1; i <= 100; i++ {
		s.At(s.Now()+float64(i)/10, count)
	}
	s.RunUntil(s.Now() + 5)
	if len(s.buckets) == 0 {
		t.Fatal("band did not re-engage for the second burst")
	}
	s.Run()
	if n != 202 {
		t.Fatalf("fired %d, want 202", n)
	}
}

// TestFarFutureOutlierStaysOrdered schedules one event far beyond any band
// window among dense traffic: it must pop last, exactly once.
func TestFarFutureOutlierStaysOrdered(t *testing.T) {
	s := New()
	var fired []float64
	note := func() { fired = append(fired, s.Now()) }
	s.At(1e9, note)
	for i := 1; i <= 200; i++ {
		s.At(float64(i), note)
	}
	s.Run()
	if len(fired) != 201 {
		t.Fatalf("fired %d, want 201", len(fired))
	}
	if fired[200] != 1e9 {
		t.Fatalf("outlier fired at position with time %g", fired[200])
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("fire order regressed at %d", i)
		}
	}
}
