package event

// Hybrid calendar queue backing the Simulator's pending-event set.
//
// Pending events split into two structures. The *band* is an array of
// unsorted buckets covering the near-future window
// [bandStart, bandStart + len(buckets)·width); an event at time t lands in
// bucket int((t-bandStart)/width). The *spill* is a binary min-heap on
// (time, seq) absorbing everything beyond the band. When the band drains,
// retarget rebuilds it around the spill's earliest event and migrates the
// near-future prefix over — but only while at least bandMinPending events
// are pending. Below that spill threshold the band stays torn down and the
// heap serves pops directly: bucket bookkeeping cannot beat a three-element
// heap, and the simulator's steady state is often exactly that.
//
// Determinism argument — pop order is exactly ascending (time, seq), the
// same total order the retired container/heap produced, regardless of the
// sizing heuristics:
//
//  1. The bucket map f(t) = (t-bandStart)·invWidth is monotone
//     non-decreasing in t under IEEE-754 arithmetic (both operations
//     preserve order for a fixed second operand), so an event in a lower
//     bucket is never later than one in a higher bucket, and a band event
//     is always strictly earlier than any spill event (spill means
//     f ≥ len(buckets)).
//  2. Within the first non-empty bucket the minimum is found by an exact
//     (time, seq) comparison scan — boundary rounding in f can co-locate
//     neighbours but never reorders them.
//  3. peekMin compares the band minimum against the spill top with the same
//     exact comparison, so even the band/spill boundary cannot reorder.
//  4. cur (the lowest possibly-occupied bucket) advances only when an event
//     is *popped* from a later bucket. Any subsequent insert happens at
//     t ≥ now = time of that pop, and by monotonicity of f maps to a bucket
//     ≥ cur, so the skipped prefix can never be repopulated. (Advancing cur
//     on peek would break this: a peek past empty buckets followed by an
//     insert behind the scan point would lose the event.)
//
// The heuristics — bucket count, bucket width (EWMA of pop-to-pop gaps),
// and the overcrowding rebuild — therefore affect only how much work each
// operation does, never which event pops next.

const (
	// bandMinPending is the spill threshold: the band engages only once the
	// pending count would populate a minimum-size band at about one event
	// per bucket. Below it the queue serves straight from the spill heap —
	// for the typical simulator steady state of a handful of in-flight
	// timers, a 2-3 element slot heap beats any bucket bookkeeping.
	bandMinPending = 64
	minBuckets     = 64      // band floor, matches bandMinPending
	maxBuckets     = 1 << 16 // band ceiling: bounds the empty-bucket scan after a sparse region
	densityMax     = 4       // rebuild when the band holds > densityMax·len(buckets) events
)

// before reports whether event a pops before event b: ascending time,
// insertion sequence breaking ties. This single comparison defines the
// Simulator's total order; every structure below defers to it.
//
//qos:hotpath
func (s *Simulator) before(a, b int32) bool {
	ea, eb := &s.events[a], &s.events[b]
	if ea.time != eb.time {
		return ea.time < eb.time
	}
	return ea.seq < eb.seq
}

// place files a pending event into the band bucket its time maps to, or
// into the spill heap when it falls beyond the band (or no band exists yet).
//
//qos:hotpath
func (s *Simulator) place(i int32) {
	if nb := len(s.buckets); nb > 0 {
		f := (s.events[i].time - s.bandStart) * s.invWidth
		if f < float64(nb) {
			b := int(f)
			if b < 0 {
				// t slightly before bandStart (band anchored on a later
				// spill top). Bucket 0 is exact-compared, so clamping is
				// safe; see the cur invariant for why 0 ≥ cur here.
				b = 0
			}
			s.bucketPut(b, i)
			s.bandCount++
			if s.bandCount > nb*densityMax && nb < maxBuckets {
				s.rebuild()
			}
			return
		}
	}
	s.spillPush(i)
}

// unlink removes a still-pending event from whichever structure holds it.
func (s *Simulator) unlink(i int32) {
	ev := &s.events[i]
	if ev.where == whereSpill {
		s.spillRemove(int(ev.slot))
		return
	}
	s.bucketRemove(int(ev.where), ev.slot)
	s.bandCount--
}

// peekMin returns the slot of the earliest pending event without removing
// it, or -1 when none remain. The result is cached in minSlot until the
// next pop/cancel so peek-then-pop pairs scan once.
//
//qos:hotpath
func (s *Simulator) peekMin() int32 {
	if s.minSlot >= 0 {
		return s.minSlot
	}
	if s.bandCount == 0 {
		n := len(s.spill)
		if n == 0 {
			return -1
		}
		if n < bandMinPending {
			// Below the spill threshold the band cannot pay for itself;
			// tear it down (keeping bucket capacity) so place routes
			// everything through the heap until density returns.
			if len(s.buckets) > 0 {
				s.buckets = s.buckets[:0]
			}
			s.minSlot = s.spill[0]
			return s.minSlot
		}
		s.retarget()
	}
	b := s.cur
	for len(s.buckets[b]) == 0 {
		b++
	}
	bk := s.buckets[b]
	best := bk[0]
	for _, i := range bk[1:] {
		if s.before(i, best) {
			best = i
		}
	}
	if len(s.spill) > 0 && s.before(s.spill[0], best) {
		best = s.spill[0]
	}
	s.minSlot = best
	return best
}

// popMin removes and returns the earliest pending event's slot (-1 when
// empty). The caller reads the event's fields before recycling the slot.
//
//qos:hotpath
func (s *Simulator) popMin() int32 {
	i := s.peekMin()
	if i < 0 {
		return -1
	}
	s.minSlot = -1
	ev := &s.events[i]
	if ev.where == whereSpill {
		s.spillRemove(int(ev.slot))
	} else {
		b := int(ev.where)
		s.bucketRemove(b, ev.slot)
		s.bandCount--
		// Commit the scan frontier only on pop — the determinism argument
		// (point 4 above) depends on this.
		s.cur = b
	}
	if gap := ev.time - s.lastPop; gap > 0 {
		if s.avgGap == 0 {
			s.avgGap = gap
		} else {
			s.avgGap += 0.25 * (gap - s.avgGap)
		}
	}
	s.lastPop = ev.time
	return i
}

// bucketPut appends slot i to bucket b, growing the bucket's backing array
// on the cold path only.
//
//qos:hotpath
func (s *Simulator) bucketPut(b int, i int32) {
	ev := &s.events[i]
	ev.where = int32(b)
	bk := s.buckets[b]
	n := len(bk)
	if n < cap(bk) {
		bk = bk[:n+1]
		bk[n] = i
		s.buckets[b] = bk
	} else {
		s.bucketGrow(b, i)
	}
	ev.slot = int32(n)
}

// bucketGrow is bucketPut's cold path: each bucket's backing array grows to
// its peak occupancy once, then is reused across band generations.
func (s *Simulator) bucketGrow(b int, i int32) {
	s.buckets[b] = append(s.buckets[b], i)
}

// bucketRemove swap-removes position pos from bucket b, fixing the moved
// event's back-reference.
//
//qos:hotpath
func (s *Simulator) bucketRemove(b int, pos int32) {
	bk := s.buckets[b]
	last := len(bk) - 1
	moved := bk[last]
	bk[pos] = moved
	s.buckets[b] = bk[:last]
	s.events[moved].slot = pos
}

// retarget rebuilds the band around the spill's earliest event after the
// band drains, migrating the near-future prefix of the spill into buckets.
// Always migrates at least the spill top (it maps to bucket 0 by
// construction), so progress is guaranteed. Cold path: runs once per band
// generation, amortised over every pop the new band serves.
func (s *Simulator) retarget() {
	s.bandStart = s.events[s.spill[0]].time
	nb := bucketCountFor(len(s.spill))
	if nb <= cap(s.buckets) {
		s.buckets = s.buckets[:nb]
	} else {
		old := s.buckets
		s.buckets = make([][]int32, nb)
		copy(s.buckets, old)
	}
	w := s.avgGap
	if !(w > 0) {
		w = 1
	}
	s.width = w
	s.invWidth = 1 / w
	s.cur = 0
	limit := float64(nb)
	for len(s.spill) > 0 {
		top := s.spill[0]
		if f := (s.events[top].time - s.bandStart) * s.invWidth; f >= limit {
			break
		}
		s.spillRemove(0)
		s.place(top)
	}
}

// rebuild re-spreads an overcrowded band across more buckets using the
// current gap estimate. Anchoring at now keeps the cur invariant: every
// pending and future event maps to a bucket ≥ 0 = cur. Cold path,
// amortised by the densityMax growth trigger.
func (s *Simulator) rebuild() {
	pending := make([]int32, 0, s.bandCount)
	for b := s.cur; b < len(s.buckets); b++ {
		pending = append(pending, s.buckets[b]...)
		s.buckets[b] = s.buckets[b][:0]
	}
	s.bandStart = s.now
	nb := bucketCountFor(len(pending) + len(s.spill))
	if nb <= cap(s.buckets) {
		s.buckets = s.buckets[:nb]
	} else {
		old := s.buckets
		s.buckets = make([][]int32, nb)
		copy(s.buckets, old)
	}
	w := s.avgGap
	if !(w > 0) {
		w = 1
	}
	s.width = w
	s.invWidth = 1 / w
	s.cur = 0
	s.bandCount = 0
	limit := float64(nb)
	for _, i := range pending {
		if f := (s.events[i].time - s.bandStart) * s.invWidth; f < limit {
			b := int(f)
			if b < 0 {
				b = 0
			}
			s.bucketPut(b, i)
			s.bandCount++
		} else {
			s.spillPush(i)
		}
	}
}

// bucketCountFor picks the band size for n pending events: the next power
// of two ≥ n, clamped to [minBuckets, maxBuckets]. Power-of-two stickiness
// keeps the count stable across small load fluctuations.
func bucketCountFor(n int) int {
	nb := minBuckets
	for nb < n && nb < maxBuckets {
		nb <<= 1
	}
	return nb
}

// --- spill: binary min-heap on (time, seq), storing arena slots -----------
//
// Mirrors container/heap's sift logic over int32 slots, with each event's
// slot field tracking its heap index so Cancel removes in O(log n) without
// a search.

// spillPush inserts slot i into the spill heap.
//
//qos:hotpath
func (s *Simulator) spillPush(i int32) {
	s.events[i].where = whereSpill
	n := len(s.spill)
	if n < cap(s.spill) {
		s.spill = s.spill[:n+1]
		s.spill[n] = i
	} else {
		s.spillGrow(i)
	}
	s.events[i].slot = int32(n)
	s.spillUp(n)
}

// spillGrow is spillPush's cold path: the heap backing array grows to the
// peak far-future event count once.
func (s *Simulator) spillGrow(i int32) {
	s.spill = append(s.spill, i)
}

// spillRemove deletes the element at heap index j, restoring heap order.
//
//qos:hotpath
func (s *Simulator) spillRemove(j int) {
	last := len(s.spill) - 1
	moved := s.spill[last]
	s.spill = s.spill[:last]
	if j == last {
		return
	}
	s.spill[j] = moved
	s.events[moved].slot = int32(j)
	if !s.spillDown(j) {
		s.spillUp(j)
	}
}

// spillUp sifts the element at index j toward the root.
//
//qos:hotpath
func (s *Simulator) spillUp(j int) {
	for j > 0 {
		parent := (j - 1) / 2
		if !s.before(s.spill[j], s.spill[parent]) {
			break
		}
		s.spillSwap(j, parent)
		j = parent
	}
}

// spillDown sifts the element at index j toward the leaves, reporting
// whether it moved.
//
//qos:hotpath
func (s *Simulator) spillDown(j int) bool {
	start := j
	n := len(s.spill)
	for {
		left := 2*j + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && s.before(s.spill[right], s.spill[left]) {
			least = right
		}
		if !s.before(s.spill[least], s.spill[j]) {
			break
		}
		s.spillSwap(j, least)
		j = least
	}
	return j != start
}

// spillSwap exchanges heap positions a and b, fixing back-references.
//
//qos:hotpath
func (s *Simulator) spillSwap(a, b int) {
	s.spill[a], s.spill[b] = s.spill[b], s.spill[a]
	s.events[s.spill[a]].slot = int32(a)
	s.events[s.spill[b]].slot = int32(b)
}
