package experiments

import (
	"errors"
	"fmt"
	"math"

	"hybridqos/internal/clients"
	"hybridqos/internal/core"
	"hybridqos/internal/sim"
)

// ExtPolicy is the pluggable-policy ablation: per-class delay at the paper's
// operating point (θ=0.60, K=40, α=0.50) under each registered pull policy,
// plus push-side variants (broadcast-disk and "none" = pure pull) under the
// default γ pull. Every configuration differs ONLY in the policy names
// resolved through the registry, so the figure doubles as an end-to-end
// exercise of the named-policy plumbing. The claims pin the paper's central
// message — the importance factor buys Class-A its differentiated service
// while class-blind policies (FCFS) cannot — and two structural invariants
// of the policy layer (EDF without deadlines degenerates to FCFS exactly;
// the "none" push scheduler never broadcasts).
func ExtPolicy(p Params) (*Figure, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	const theta, alpha = 0.60, 0.50
	fig := &Figure{
		ID:     "EXT-POLICY",
		Title:  "Per-class delay by scheduling policy (θ=0.60, K=40, α=0.50)",
		XLabel: "class (1=A, 2=B, 3=C)",
		YLabel: "delay (broadcast units)",
	}
	xs := []float64{1, 2, 3}

	build := func(pull, push string) (core.Config, error) {
		cfg, err := p.buildConfig(theta, alpha)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Cutoff = 40
		cfg.PullPolicyName = pull
		cfg.PushPolicyName = push
		return cfg, nil
	}
	delays := func(s *sim.Summary) []float64 {
		ys := make([]float64, 3)
		for c := 0; c < 3; c++ {
			ys[c] = s.MeanDelay(clients.Class(c))
		}
		return ys
	}

	pulls := []string{"gamma", "stretch", "priority", "fcfs", "edf"}
	pushes := []string{"broadcast-disk", "none"}
	cfgs := make([]core.Config, 0, len(pulls)+len(pushes))
	for _, name := range pulls {
		cfg, err := build(name, "")
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, cfg)
	}
	for _, name := range pushes {
		cfg, err := build("", name)
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, cfg)
	}
	sums, err := sim.SweepConfigs(cfgs, p.Replications)
	if err != nil {
		var pe *sim.PointError
		if errors.As(err, &pe) {
			if pe.Point < len(pulls) {
				return nil, fmt.Errorf("pull=%s: %w", pulls[pe.Point], pe.Err)
			}
			return nil, fmt.Errorf("push=%s: %w", pushes[pe.Point-len(pulls)], pe.Err)
		}
		return nil, err
	}
	byPull := map[string][]float64{}
	for i, name := range pulls {
		byPull[name] = delays(sums[i])
		fig.Series = append(fig.Series, Series{Name: "pull=" + name, X: xs, Y: byPull[name]})
	}
	for i, name := range pushes {
		s := sums[len(pulls)+i]
		fig.Series = append(fig.Series, Series{Name: "push=" + name, X: xs, Y: delays(s)})
		if name == "none" {
			fig.Claims = append(fig.Claims, Claim{
				Name:   `push scheduler "none" broadcasts nothing (pure pull)`,
				Pass:   s.PushBroadcasts == 0,
				Detail: fmt.Sprintf("%d push broadcasts pooled over %d replications", s.PushBroadcasts, p.Replications),
			})
		}
	}

	gamma, fcfs, edf := byPull["gamma"], byPull["fcfs"], byPull["edf"]
	fig.Claims = append(fig.Claims, Claim{
		Name: "γ(0.5) beats FCFS on Class-A delay at the paper's operating point",
		Pass: gamma[0] < fcfs[0],
		Detail: fmt.Sprintf("Class-A delay %.2f under γ vs %.2f under FCFS",
			gamma[0], fcfs[0]),
	})
	fcfsSpread := math.Abs(fcfs[2]-fcfs[0]) / ((fcfs[0] + fcfs[1] + fcfs[2]) / 3)
	fig.Claims = append(fig.Claims, Claim{
		Name: "γ differentiates classes (A<B<C) while class-blind FCFS spreads <10%",
		Pass: gamma[0] < gamma[1] && gamma[1] < gamma[2] && fcfsSpread < 0.10,
		Detail: fmt.Sprintf("γ delays %.2f/%.2f/%.2f; FCFS relative spread %.1f%%",
			gamma[0], gamma[1], gamma[2], 100*fcfsSpread),
	})
	edfExact := edf[0] == fcfs[0] && edf[1] == fcfs[1] && edf[2] == fcfs[2]
	fig.Claims = append(fig.Claims, Claim{
		Name:   "EDF without deadlines reproduces FCFS bit-identically",
		Pass:   edfExact,
		Detail: fmt.Sprintf("EDF delays %x/%x/%x vs FCFS %x/%x/%x", edf[0], edf[1], edf[2], fcfs[0], fcfs[1], fcfs[2]),
	})
	return fig, nil
}
