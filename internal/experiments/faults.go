package experiments

import (
	"errors"
	"fmt"

	"hybridqos/internal/core"
	"hybridqos/internal/faults"
	"hybridqos/internal/sim"
)

// ExtFaults sweeps the mean downlink corruption probability of a bursty
// Gilbert–Elliott channel and reports per-class failure rate and mean delay
// under two systems:
//
//   - γ+shed — the paper's importance-factor scheduler (α=0.5) with client
//     retries and class-aware overload shedding;
//   - flat — a class-blind stretch-only scheduler with the same retries but
//     no shedding (the paper's undifferentiated baseline).
//
// The question: does service classification still buy Class-A anything when
// the channel itself fails? Under γ+shed the admission controller converts
// channel-induced overload into Class-C shedding, so Class-A's failure rate
// stays far below Class-C's; the flat baseline spreads failures evenly.
func ExtFaults(p Params) (*Figure, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	losses := []float64{0, 0.05, 0.1, 0.2, 0.3}
	const meanBurst = 5.0
	cutoff := 2 * p.D / 5 // the paper's K=40 at D=100

	fig := &Figure{
		ID: "EXT-FAULTS",
		Title: fmt.Sprintf("Failure rate and delay vs downlink loss (Gilbert–Elliott, burst=%g, K=%d)",
			meanBurst, cutoff),
		XLabel: "meanLoss",
		YLabel: "failure rate / delay (broadcast units)",
	}
	classNames := []string{"Class-A", "Class-B", "Class-C"}

	build := func(flat bool) (core.Config, error) {
		cfg, err := p.buildConfig(0.60, 0.5)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Cutoff = cutoff
		cfg.Retry = faults.RetryPolicy{MaxAttempts: 3, Base: 1, Multiplier: 2, Jitter: 0.5}
		if flat {
			cfg.Alpha = 1 // stretch-only: class-blind selection
		} else {
			// Watermarks sit just above the error-free channel's pending
			// load (mean ≈165, max ≈210 requests at λ=5, K=40), so shedding
			// activates only when loss-induced retries inflate the queue.
			cfg.Shed = &faults.ShedConfig{High: 260, Low: 200}
		}
		return cfg, nil
	}

	// Both systems at every loss level share the work pool: even points are
	// γ+shed, odd points the flat baseline, at losses[point/2].
	cfgs := make([]core.Config, 0, 2*len(losses))
	for range losses {
		shedCfg, err := build(false)
		if err != nil {
			return nil, err
		}
		flatCfg, err := build(true)
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, shedCfg, flatCfg)
	}
	sums, err := sim.SweepConfigsWith(cfgs, p.Replications, func(point, _ int, c *core.Config) error {
		loss := losses[point/2]
		if loss == 0 {
			return nil
		}
		lm, err := faults.NewBurstLoss(loss, meanBurst)
		if err != nil {
			return err
		}
		c.Loss = lm
		return nil
	})
	if err != nil {
		var pe *sim.PointError
		if errors.As(err, &pe) {
			loss := losses[pe.Point/2]
			if pe.Point%2 == 0 {
				return nil, fmt.Errorf("experiments: faults γ+shed loss %g: %w", loss, pe.Err)
			}
			return nil, fmt.Errorf("experiments: faults flat loss %g: %w", loss, pe.Err)
		}
		return nil, err
	}

	xs := make([]float64, len(losses))
	shedFail := make([][]float64, 3)
	flatFail := make([][]float64, 3)
	shedDelay := make([][]float64, 3)
	var shedSummaries []*sim.Summary
	for i, loss := range losses {
		xs[i] = loss
		shed, flat := sums[2*i], sums[2*i+1]
		shedSummaries = append(shedSummaries, shed)
		for c := 0; c < 3; c++ {
			shedFail[c] = append(shedFail[c], shed.PerClass[c].FailureRate.Mean())
			flatFail[c] = append(flatFail[c], flat.PerClass[c].FailureRate.Mean())
			shedDelay[c] = append(shedDelay[c], shed.PerClass[c].Delay.Mean())
		}
	}
	for c := 0; c < 3; c++ {
		fig.Series = append(fig.Series, Series{
			Name: classNames[c] + " failure (γ+shed)", X: xs, Y: shedFail[c],
		})
	}
	for c := 0; c < 3; c++ {
		fig.Series = append(fig.Series, Series{
			Name: classNames[c] + " failure (flat)", X: xs, Y: flatFail[c],
		})
	}
	for c := 0; c < 3; c++ {
		fig.Series = append(fig.Series, Series{
			Name: classNames[c] + " delay (γ+shed)", X: xs, Y: shedDelay[c],
		})
	}

	// Claims. The zero-loss point doubles as a no-op audit: no corruption,
	// no retries, no failures from the fault layer itself.
	last := len(losses) - 1
	zero := shedSummaries[0]
	noCorruption := zero.CorruptedPushes == 0 && zero.CorruptedPulls == 0 &&
		zero.PerClass[0].Retries == 0 && zero.PerClass[0].Failed == 0
	fig.Claims = append(fig.Claims, Claim{
		Name: "zero loss produces no corruption, retries or failures",
		Pass: noCorruption,
		Detail: fmt.Sprintf("corrupted %d push / %d pull at loss 0",
			zero.CorruptedPushes, zero.CorruptedPulls),
	})

	aShed, cShed := shedFail[0][last], shedFail[2][last]
	fig.Claims = append(fig.Claims, Claim{
		Name: "Class-A failure rate strictly below Class-C under γ+shed",
		Pass: aShed < cShed,
		Detail: fmt.Sprintf("at loss %.2f: Class-A %.4f vs Class-C %.4f",
			losses[last], aShed, cShed),
	})

	shedSpread := cShed - aShed
	flatSpread := flatFail[2][last] - flatFail[0][last]
	fig.Claims = append(fig.Claims, Claim{
		Name: "classification differentiates failure under loss; flat does not",
		Pass: shedSpread > 2*flatSpread,
		Detail: fmt.Sprintf("C−A failure spread: γ+shed %.4f vs flat %.4f",
			shedSpread, flatSpread),
	})

	corrLow := shedSummaries[1].CorruptedPushes + shedSummaries[1].CorruptedPulls
	corrHigh := shedSummaries[last].CorruptedPushes + shedSummaries[last].CorruptedPulls
	fig.Claims = append(fig.Claims, Claim{
		Name: "corruption volume grows with the configured loss",
		Pass: corrHigh > corrLow && corrLow > 0,
		Detail: fmt.Sprintf("corrupted transmissions: %d at loss %.2f vs %d at loss %.2f",
			corrLow, losses[1], corrHigh, losses[last]),
	})
	return fig, nil
}
