package experiments

import (
	"fmt"

	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/core"
	"hybridqos/internal/sim"
)

// ExtMultiClass exercises §4.2.2 ("Effect of Multiple Service Classes")
// end-to-end with five service classes instead of the paper's three: the
// measured per-class delays must be strictly layered whenever priority has
// influence, and the layering must collapse at α = 1. This is the
// experiment the paper's multi-class Cobham analysis (Eq. 18) motivates but
// never evaluates.
func ExtMultiClass(p Params) (*Figure, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	const numClasses = 5
	weights := make([]float64, numClasses)
	for i := range weights {
		weights[i] = float64(numClasses - i) // 5, 4, 3, 2, 1
	}
	cl, err := clients.New(clients.Config{Weights: weights, PopulationSkew: 1.0})
	if err != nil {
		return nil, err
	}
	cat, err := catalog.Generate(catalog.Config{
		D: p.D, Theta: 0.60, MinLen: 1, MaxLen: 5,
		LengthWeights: catalog.PaperLengthWeights(), Seed: p.Seed,
	})
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "EXT-MULTI",
		Title:  "Five service classes: per-class delay vs α (θ=0.60, K=D/2)",
		XLabel: "alpha",
		YLabel: "delay (broadcast units)",
	}
	alphas := []float64{0, 0.25, 0.5, 0.75, 1.0}
	cfgs := make([]core.Config, len(alphas))
	for i, alpha := range alphas {
		cfgs[i] = core.Config{
			Catalog:        cat,
			Classes:        cl,
			Lambda:         p.Lambda,
			Cutoff:         p.D / 2,
			Alpha:          alpha,
			Horizon:        p.Horizon,
			WarmupFraction: p.WarmupFraction,
			Seed:           p.Seed,
		}
	}
	sums, err := sim.SweepConfigs(cfgs, p.Replications)
	if err != nil {
		return nil, err
	}
	perClass := make([][]float64, numClasses)
	for _, summary := range sums {
		for c := 0; c < numClasses; c++ {
			perClass[c] = append(perClass[c], summary.MeanDelay(clients.Class(c)))
		}
	}
	for c := 0; c < numClasses; c++ {
		fig.Series = append(fig.Series, Series{
			Name: clients.Class(c).String(),
			X:    alphas,
			Y:    perClass[c],
		})
	}

	// Claim 1: at α = 0, the five classes are strictly layered (with the
	// usual noise tolerance).
	const tol = 0.03
	layered := true
	for c := 1; c < numClasses; c++ {
		if perClass[c-1][0] > perClass[c][0]*(1+tol) {
			layered = false
		}
	}
	fig.Claims = append(fig.Claims, Claim{
		Name: "α=0: five classes layered by priority",
		Pass: layered,
		Detail: fmt.Sprintf("delays at α=0: %.1f %.1f %.1f %.1f %.1f",
			perClass[0][0], perClass[1][0], perClass[2][0], perClass[3][0], perClass[4][0]),
	})

	// Claim 2: at α = 1 the spread collapses.
	last := len(alphas) - 1
	spread0 := perClass[numClasses-1][0] - perClass[0][0]
	spread1 := perClass[numClasses-1][last] - perClass[0][last]
	fig.Claims = append(fig.Claims, Claim{
		Name:   "α=1 collapses the class spread",
		Pass:   spread1 < spread0/2,
		Detail: fmt.Sprintf("top-to-bottom spread %.1f at α=0 vs %.1f at α=1", spread0, spread1),
	})
	return fig, nil
}
