package experiments

import (
	"fmt"
	"math"

	"hybridqos/internal/airindex"
	"hybridqos/internal/catalog"
)

// ExtIndexing sweeps the (1, m) air-indexing index count on the push cycle
// and checks the classic client-energy results: access time is U-shaped in
// m with its minimum at m* ≈ sqrt(Data/IndexLen), tuning time is constant,
// and the receiver dozes through the overwhelming majority of its wait.
func ExtIndexing(p Params) (*Figure, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	const indexLen = 0.5
	k := p.D * 2 / 5 // the paper-default K=40 for D=100
	cat, err := catalog.Generate(catalog.Config{
		D: p.D, Theta: 0.60, MinLen: 1, MaxLen: 5,
		LengthWeights: catalog.PaperLengthWeights(), Seed: p.Seed,
	})
	if err != nil {
		return nil, err
	}
	cfg := airindex.Config{Catalog: cat, Cutoff: k, IndexLen: indexLen, M: 1}
	sweep, err := airindex.Sweep(cfg, k)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "EXT-INDEX",
		Title:  fmt.Sprintf("(1,m) air indexing on the %d-item push cycle (index = %.2g units)", k, indexLen),
		XLabel: "m",
		YLabel: "broadcast units",
	}
	xs := make([]float64, len(sweep))
	access := make([]float64, len(sweep))
	tuning := make([]float64, len(sweep))
	for i, m := range sweep {
		xs[i] = float64(i + 1)
		access[i] = m.AccessTime
		tuning[i] = m.TuningTime
	}
	fig.Series = append(fig.Series,
		Series{Name: "access time", X: xs, Y: access},
		Series{Name: "tuning time", X: xs, Y: tuning},
	)

	minIdx := 0
	for i, v := range access {
		if v < access[minIdx] {
			minIdx = i
		}
	}
	classic := math.Sqrt(cat.PushCycleLength(k) / indexLen)
	fig.Claims = append(fig.Claims,
		Claim{
			Name:   "access time U-shaped with interior optimum",
			Pass:   minIdx > 0 && minIdx < len(access)-1,
			Detail: fmt.Sprintf("optimum at m=%d", minIdx+1),
		},
		Claim{
			Name:   "optimum matches the classic sqrt(Data/IndexLen) rule",
			Pass:   math.Abs(float64(minIdx+1)-classic) <= 2,
			Detail: fmt.Sprintf("measured m*=%d vs rule %.1f", minIdx+1, classic),
		},
		Claim{
			Name:   "receiver dozes through ≥90% of its wait at m*",
			Pass:   sweep[minIdx].DozeFraction >= 0.90,
			Detail: fmt.Sprintf("doze fraction %.1f%%", sweep[minIdx].DozeFraction*100),
		},
	)
	return fig, nil
}
