package experiments

import (
	"fmt"

	"hybridqos/internal/cluster"
)

// ExtCluster federates the engine into multi-cell clusters and sweeps the
// client-mobility rate at two federation sizes, measuring how per-class QoS
// holds up as clients roam between cells mid-request. Roamers carry their
// original arrival time, so the transit delay and any re-queueing at the
// destination land in the access-time statistics; roamers whose deadline,
// admission or catalog the destination refuses are lost. The paper's class
// ordering must survive federation and mobility — differentiation is a
// property of each cell's scheduler, not of the topology.
func ExtCluster(p Params) (*Figure, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rates := []float64{0, 0.02, 0.05, 0.1}
	cellCounts := []int{4, 16}
	fig := &Figure{
		ID:     "EXT-CLUSTER",
		Title:  "Per-class delay vs mobility rate across federation sizes (θ=0.60, α=0.25, K=40)",
		XLabel: "mobility rate (roams per pending request per broadcast unit)",
		YLabel: "delay (broadcast units)",
	}
	classNames := []string{"Class-A", "Class-B", "Class-C"}

	// delays[cells][class][rate], handoffs[cells][rate] averaged over reps.
	delays := make(map[int][][]float64)
	handoffs := make(map[int][]float64)
	for _, cells := range cellCounts {
		perClass := make([][]float64, 3)
		var moved []float64
		for _, rate := range rates {
			var sumDelay [3]float64
			var sumMoved float64
			for rep := 0; rep < p.Replications; rep++ {
				base, err := p.buildConfig(0.60, 0.25)
				if err != nil {
					return nil, err
				}
				base.Cutoff = 40
				base.Seed = p.Seed + uint64(rep)*1000003
				cl, err := cluster.New(cluster.Config{
					Cells:          cells,
					Base:           base,
					CatalogOverlap: 0.8,
					Mobility:       cluster.Mobility{Rate: rate, AttachDelay: 1},
					Routing:        "nearest",
					HandoffEvery:   p.Horizon / 50,
				})
				if err != nil {
					return nil, err
				}
				res, err := cl.Run()
				if err != nil {
					return nil, err
				}
				for c := 0; c < 3; c++ {
					cm := res.Aggregate.PerClass[c]
					sumDelay[c] += cm.Delay.Mean()
					sumMoved += float64(cm.HandoffsOut)
				}
			}
			for c := 0; c < 3; c++ {
				perClass[c] = append(perClass[c], sumDelay[c]/float64(p.Replications))
			}
			moved = append(moved, sumMoved/float64(p.Replications))
		}
		delays[cells] = perClass
		handoffs[cells] = moved
	}
	for _, cells := range cellCounts {
		for c := 0; c < 3; c++ {
			fig.Series = append(fig.Series, Series{
				Name: fmt.Sprintf("%s (%d cells)", classNames[c], cells),
				X:    rates, Y: delays[cells][c],
			})
		}
	}

	// Claim 1: mobility actually moves load — outbound handoffs grow
	// strictly with the roam rate at every federation size.
	monotone := true
	for _, cells := range cellCounts {
		for i := 1; i < len(rates); i++ {
			if handoffs[cells][i] <= handoffs[cells][i-1] {
				monotone = false
			}
		}
	}
	fig.Claims = append(fig.Claims, Claim{
		Name: "outbound handoffs grow with the mobility rate at every federation size",
		Pass: monotone,
		Detail: fmt.Sprintf("4 cells: %.0f → %.0f roamers; 16 cells: %.0f → %.0f",
			handoffs[4][0], handoffs[4][len(rates)-1],
			handoffs[16][0], handoffs[16][len(rates)-1]),
	})

	// Claim 2: service differentiation survives federation and mobility —
	// A ≤ B ≤ C at every (rate, cells) point (5% tolerance).
	const tol = 0.05
	violations, points := 0, 0
	for _, cells := range cellCounts {
		pc := delays[cells]
		for i := range rates {
			points++
			if pc[0][i] > pc[1][i]*(1+tol) || pc[1][i] > pc[2][i]*(1+tol) {
				violations++
			}
		}
	}
	fig.Claims = append(fig.Claims, Claim{
		Name:   "class ordering survives federation and mobility at every point",
		Pass:   violations == 0,
		Detail: fmt.Sprintf("%d/%d (rate, cells) points violate A ≤ B ≤ C", violations, points),
	})

	// Claim 3: mobility degrades QoS only gracefully — at the highest roam
	// rate the bottom class pays at most 50% over its mobility-free delay.
	graceful := true
	detail := ""
	for _, cells := range cellCounts {
		lo, hi := delays[cells][2][0], delays[cells][2][len(rates)-1]
		if hi > lo*1.5 {
			graceful = false
		}
		detail += fmt.Sprintf("%d cells: %.1f → %.1f; ", cells, lo, hi)
	}
	fig.Claims = append(fig.Claims, Claim{
		Name:   "bottom-class delay stays within 1.5× of the mobility-free baseline",
		Pass:   graceful,
		Detail: detail,
	})
	return fig, nil
}
