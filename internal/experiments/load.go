package experiments

import (
	"fmt"

	"hybridqos/internal/clients"
	"hybridqos/internal/core"
	"hybridqos/internal/sim"
)

// ExtLoad sweeps the offered load λ′ around the paper's operating point
// (λ′ = 5) and checks robustness of the headline properties: delays grow
// with load but stay bounded (the multicast effect — one transmission
// clears every pending request — prevents the unbounded blow-up a
// unicast queue would suffer), and the class ordering survives at every
// load level.
func ExtLoad(p Params) (*Figure, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	lambdas := []float64{1, 2, 5, 8, 12, 20}
	fig := &Figure{
		ID:     "EXT-LOAD",
		Title:  "Per-class delay vs offered load λ′ (θ=0.60, α=0.25, K=40)",
		XLabel: "lambda",
		YLabel: "delay (broadcast units)",
	}
	classNames := []string{"Class-A", "Class-B", "Class-C"}
	cfgs := make([]core.Config, len(lambdas))
	for i, lambda := range lambdas {
		cfg, err := p.buildConfig(0.60, 0.25)
		if err != nil {
			return nil, err
		}
		cfg.Lambda = lambda
		cfg.Cutoff = 40
		cfgs[i] = cfg
	}
	sums, err := sim.SweepConfigs(cfgs, p.Replications)
	if err != nil {
		return nil, err
	}
	perClass := make([][]float64, 3)
	for _, summary := range sums {
		for c := 0; c < 3; c++ {
			perClass[c] = append(perClass[c], summary.MeanDelay(clients.Class(c)))
		}
	}
	for c := 0; c < 3; c++ {
		fig.Series = append(fig.Series, Series{Name: classNames[c], X: lambdas, Y: perClass[c]})
	}

	// Claim 1: overall delay grows with load but sublinearly — the 20x load
	// increase must NOT produce a 20x delay increase (multicast absorption).
	lo, hi := perClass[2][0], perClass[2][len(lambdas)-1]
	fig.Claims = append(fig.Claims, Claim{
		Name:   "multicast keeps the 20× load increase far below a 20× delay increase",
		Pass:   hi > lo && hi < lo*6,
		Detail: fmt.Sprintf("Class-C delay %.1f at λ=1 vs %.1f at λ=20 (×%.1f)", lo, hi, hi/lo),
	})
	// Claim 2: ordering A ≤ B ≤ C at every load (3% tolerance).
	const tol = 0.03
	violations := 0
	for i := range lambdas {
		if perClass[0][i] > perClass[1][i]*(1+tol) || perClass[1][i] > perClass[2][i]*(1+tol) {
			violations++
		}
	}
	fig.Claims = append(fig.Claims, Claim{
		Name:   "class ordering survives across the load sweep",
		Pass:   violations == 0,
		Detail: fmt.Sprintf("%d/%d load levels violate the ordering", violations, len(lambdas)),
	})
	return fig, nil
}
