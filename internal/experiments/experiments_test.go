package experiments

import (
	"math"
	"strings"
	"testing"
)

// fastParams keeps generator tests quick; the CLI and benches use Defaults.
func fastParams() Params {
	p := Defaults()
	p.Horizon = 4000
	p.Replications = 2
	p.CutoffStep = 20
	return p
}

func TestParamsValidate(t *testing.T) {
	if err := Defaults().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.D = 0 },
		func(p *Params) { p.Lambda = 0 },
		func(p *Params) { p.Horizon = -1 },
		func(p *Params) { p.Replications = 0 },
		func(p *Params) { p.CutoffStep = 0 },
		func(p *Params) { p.WarmupFraction = 1 },
	}
	for i, mutate := range bad {
		p := Defaults()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCutoffGrid(t *testing.T) {
	p := Defaults()
	ks := p.cutoffGrid()
	if ks[0] != 2 || ks[1] != 5 || ks[2] != 10 || ks[len(ks)-1] != 90 {
		t.Fatalf("grid %v", ks)
	}
	for i := 3; i < len(ks); i++ {
		if ks[i]-ks[i-1] != p.CutoffStep {
			t.Fatalf("grid step broken: %v", ks)
		}
	}
}

func TestDelayVsCutoffShape(t *testing.T) {
	p := fastParams()
	f, err := DelayVsCutoff(p, 0.25, []float64{0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 3 {
		t.Fatalf("%d series for one theta", len(f.Series))
	}
	wantPts := len(p.cutoffGrid())
	for _, s := range f.Series {
		if len(s.X) != wantPts || len(s.Y) != wantPts {
			t.Fatalf("series %s has %d/%d points, want %d", s.Name, len(s.X), len(s.Y), wantPts)
		}
		for _, y := range s.Y {
			if math.IsNaN(y) || y <= 0 {
				t.Fatalf("series %s has invalid delay %g", s.Name, y)
			}
		}
	}
	if len(f.Claims) == 0 {
		t.Fatal("no claims checked")
	}
}

func TestDelayVsCutoffErrors(t *testing.T) {
	p := fastParams()
	if _, err := DelayVsCutoff(p, 0.5, nil); err == nil {
		t.Fatal("no thetas accepted")
	}
	p.Horizon = 0
	if _, err := DelayVsCutoff(p, 0.5, []float64{0.6}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestFig3OrderingClaims(t *testing.T) {
	p := fastParams()
	p.Horizon = 8000 // ordering needs some statistical depth
	f, err := DelayVsCutoff(p, 0.0, []float64{0.6})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range f.Claims {
		if strings.Contains(c.Name, "ordering") && !c.Pass {
			t.Fatalf("ordering claim failed: %s (%s)", c.Name, c.Detail)
		}
	}
}

func TestFig5InteriorOptimum(t *testing.T) {
	p := fastParams()
	p.CutoffStep = 10
	f, err := Fig5(p)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "FIG5" {
		t.Fatalf("ID = %s", f.ID)
	}
	if len(f.Series) != 6 {
		t.Fatalf("%d series", len(f.Series))
	}
	if len(f.Claims) != 2 {
		t.Fatalf("%d claims", len(f.Claims))
	}
}

func TestFig7DeviationClaim(t *testing.T) {
	p := fastParams()
	p.Horizon = 10000
	f, err := Fig7(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 6 {
		t.Fatalf("%d series (want sim+model × 3 classes)", len(f.Series))
	}
	if len(f.Claims) != 1 {
		t.Fatalf("%d claims", len(f.Claims))
	}
	if !f.Claims[0].Pass {
		t.Fatalf("model deviation claim failed: %s", f.Claims[0].Detail)
	}
}

func TestExtBlockingMonotoneClaim(t *testing.T) {
	p := fastParams()
	f, err := ExtBlocking(p)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Claims[0].Pass {
		t.Fatalf("blocking claim failed: %s", f.Claims[0].Detail)
	}
	// Drop rates are probabilities.
	for _, s := range f.Series {
		for _, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("drop rate %g outside [0,1]", y)
			}
		}
	}
}

func TestFigureTableAndCSV(t *testing.T) {
	p := fastParams()
	f, err := DelayVsCutoff(p, 0.5, []float64{0.6})
	if err != nil {
		t.Fatal(err)
	}
	tbl := f.Table().String()
	if !strings.Contains(tbl, "Class-A θ=0.60") {
		t.Fatalf("table missing series header: %q", tbl)
	}
	csv := f.CSV()
	wantRows := len(f.Series) * len(f.Series[0].X)
	if csv.NumRows() != wantRows {
		t.Fatalf("CSV rows %d, want %d", csv.NumRows(), wantRows)
	}
	if !strings.HasPrefix(csv.String(), "figure,series,K,") {
		t.Fatalf("CSV header wrong: %q", strings.SplitN(csv.String(), "\n", 2)[0])
	}
}

func TestAllPassHelper(t *testing.T) {
	f := &Figure{Claims: []Claim{{Pass: true}, {Pass: true}}}
	if !f.AllPass() {
		t.Fatal("AllPass false with all passing")
	}
	f.Claims = append(f.Claims, Claim{Pass: false})
	if f.AllPass() {
		t.Fatal("AllPass true with a failure")
	}
}

func TestYAtAndXUnion(t *testing.T) {
	s := Series{X: []float64{1, 2}, Y: []float64{10, 20}}
	if yAt(s, 2) != 20 {
		t.Fatal("yAt wrong")
	}
	if !math.IsNaN(yAt(s, 3)) {
		t.Fatal("yAt missing x not NaN")
	}
	u := xUnion([]Series{s, {X: []float64{1, 2, 3}}})
	if len(u) != 3 {
		t.Fatalf("xUnion %v", u)
	}
}

func TestExtMultiClass(t *testing.T) {
	p := fastParams()
	p.Horizon = 8000
	f, err := ExtMultiClass(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 5 {
		t.Fatalf("%d series, want 5 classes", len(f.Series))
	}
	if f.Series[0].Name != "Class-A" || f.Series[4].Name != "Class-E" {
		t.Fatalf("series names: %s .. %s", f.Series[0].Name, f.Series[4].Name)
	}
	for _, c := range f.Claims {
		if !c.Pass {
			t.Fatalf("claim failed: %s — %s", c.Name, c.Detail)
		}
	}
}

func TestExtChannels(t *testing.T) {
	p := fastParams()
	p.Horizon = 6000
	f, err := ExtChannels(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 { // 3 classes + overall
		t.Fatalf("%d series", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.X) != 3 { // splits 1/3, 2/2, 3/1
			t.Fatalf("series %s has %d points", s.Name, len(s.X))
		}
		for _, y := range s.Y {
			if math.IsNaN(y) || y <= 0 {
				t.Fatalf("series %s invalid delay %g", s.Name, y)
			}
		}
	}
}

func TestExtIndexing(t *testing.T) {
	f, err := ExtIndexing(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("%d series", len(f.Series))
	}
	for _, c := range f.Claims {
		if !c.Pass {
			t.Fatalf("claim failed: %s — %s", c.Name, c.Detail)
		}
	}
}

// tinyParams minimises runtime for whole-pipeline coverage tests.
func tinyParams() Params {
	p := Defaults()
	p.Horizon = 1500
	p.Replications = 1
	p.CutoffStep = 40
	return p
}

func TestFig3And4EndToEnd(t *testing.T) {
	f3, err := Fig3(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if f3.ID != "FIG3" || len(f3.Series) != 12 { // 3 classes × 4 thetas
		t.Fatalf("FIG3 shape: id=%s series=%d", f3.ID, len(f3.Series))
	}
	f4, err := Fig4(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if f4.ID != "FIG4" || len(f4.Series) != 12 {
		t.Fatalf("FIG4 shape: id=%s series=%d", f4.ID, len(f4.Series))
	}
}

func TestFig6EndToEnd(t *testing.T) {
	f, err := Fig6(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "FIG6" || len(f.Series) != 3 {
		t.Fatalf("FIG6 shape: id=%s series=%d", f.ID, len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.X) != 5 { // α grid
			t.Fatalf("series %s has %d points", s.Name, len(s.X))
		}
	}
}

func TestAllRunsEveryGenerator(t *testing.T) {
	figs, err := All(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 13 {
		t.Fatalf("All returned %d figures, want 13", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if seen[f.ID] {
			t.Fatalf("duplicate figure id %s", f.ID)
		}
		seen[f.ID] = true
	}
	for _, id := range []string{"FIG3", "FIG4", "FIG5", "FIG6", "FIG7", "EXT-BLOCK", "EXT-MULTI", "EXT-CHAN", "EXT-INDEX", "EXT-LOAD", "EXT-FAULTS", "EXT-POLICY", "EXT-CLUSTER"} {
		if !seen[id] {
			t.Fatalf("missing figure %s", id)
		}
	}
}

func TestGeneratorsRejectInvalidParams(t *testing.T) {
	bad := tinyParams()
	bad.Replications = 0
	for name, gen := range map[string]func(Params) (*Figure, error){
		"Fig3": Fig3, "Fig4": Fig4, "Fig5": Fig5, "Fig6": Fig6, "Fig7": Fig7,
		"ExtBlocking": ExtBlocking, "ExtMultiClass": ExtMultiClass,
		"ExtChannels": ExtChannels, "ExtIndexing": ExtIndexing, "ExtLoad": ExtLoad,
		"ExtFaults": ExtFaults, "ExtCluster": ExtCluster,
	} {
		if _, err := gen(bad); err == nil {
			t.Errorf("%s accepted invalid params", name)
		}
	}
	if _, err := All(bad); err == nil {
		t.Error("All accepted invalid params")
	}
}

func TestExtLoad(t *testing.T) {
	p := fastParams()
	p.Horizon = 8000
	f, err := ExtLoad(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 3 {
		t.Fatalf("%d series", len(f.Series))
	}
	for _, c := range f.Claims {
		if !c.Pass {
			t.Fatalf("claim failed: %s — %s", c.Name, c.Detail)
		}
	}
	// Delay must be non-trivially higher at the top load than the bottom.
	ys := f.Series[2].Y
	if ys[len(ys)-1] <= ys[0] {
		t.Fatalf("delay not increasing with load: %v", ys)
	}
}

func TestFigureSVG(t *testing.T) {
	f, err := ExtIndexing(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	svg, err := f.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "EXT-INDEX") {
		t.Fatal("SVG rendering incomplete")
	}
}

func TestExtFaults(t *testing.T) {
	p := fastParams()
	p.Horizon = 8000
	f, err := ExtFaults(p)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "EXT-FAULTS" || len(f.Series) != 9 {
		t.Fatalf("id %s, %d series", f.ID, len(f.Series))
	}
	for _, c := range f.Claims {
		if !c.Pass {
			t.Fatalf("claim failed: %s — %s", c.Name, c.Detail)
		}
	}
}

func TestExtPolicyClaims(t *testing.T) {
	p := fastParams()
	p.Horizon = 8000 // class spread needs statistical depth
	f, err := ExtPolicy(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 7 {
		t.Fatalf("%d series, want 5 pull + 2 push variants", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.X) != 3 || len(s.Y) != 3 {
			t.Fatalf("series %s has %d/%d points", s.Name, len(s.X), len(s.Y))
		}
	}
	for _, c := range f.Claims {
		if !c.Pass {
			t.Errorf("claim %q failed: %s", c.Name, c.Detail)
		}
	}
}
