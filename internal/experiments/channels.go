package experiments

import (
	"fmt"
	"math"

	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/multichannel"
)

// ExtChannels sweeps the push/pull split of a fixed multi-channel downlink
// (total capacity held constant — n channels each run at rate 1/n) and
// reports per-class delay for every split. The question, inherited from the
// multi-channel broadcast-allocation literature the paper cites: given C
// channels, how many should broadcast the push set and how many should
// drain the pull queue?
func ExtChannels(p Params) (*Figure, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	const totalChannels = 4
	cat, err := catalog.Generate(catalog.Config{
		D: p.D, Theta: 0.60, MinLen: 1, MaxLen: 5,
		LengthWeights: catalog.PaperLengthWeights(), Seed: p.Seed,
	})
	if err != nil {
		return nil, err
	}
	cl, err := clients.New(clients.PaperConfig())
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "EXT-CHAN",
		Title:  fmt.Sprintf("Push/pull split of %d fixed-capacity channels (θ=0.60, K=%d)", totalChannels, p.D/2),
		XLabel: "pushChannels",
		YLabel: "delay (broadcast units)",
	}
	classNames := []string{"Class-A", "Class-B", "Class-C"}
	var xs []float64
	perClass := make([][]float64, 3)
	var overall []float64
	for pushCh := 1; pushCh < totalChannels; pushCh++ {
		var agg *multichannel.Metrics
		// Average over replications manually (multichannel has no sim
		// wrapper; replications share the CRN base seed discipline).
		var sums [3]float64
		var overallSum float64
		for rep := 0; rep < p.Replications; rep++ {
			m, err := multichannel.Run(multichannel.Config{
				Catalog:        cat,
				Classes:        cl,
				Lambda:         p.Lambda,
				Cutoff:         p.D / 2,
				Alpha:          0.5,
				PushChannels:   pushCh,
				PullChannels:   totalChannels - pushCh,
				Horizon:        p.Horizon,
				WarmupFraction: p.WarmupFraction,
				Seed:           p.Seed + uint64(rep),
			})
			if err != nil {
				return nil, err
			}
			agg = m
			for c := 0; c < 3; c++ {
				sums[c] += m.PerClass[c].Delay.Mean()
			}
			overallSum += m.OverallMeanDelay()
		}
		_ = agg
		xs = append(xs, float64(pushCh))
		for c := 0; c < 3; c++ {
			perClass[c] = append(perClass[c], sums[c]/float64(p.Replications))
		}
		overall = append(overall, overallSum/float64(p.Replications))
	}
	for c := 0; c < 3; c++ {
		fig.Series = append(fig.Series, Series{Name: classNames[c], X: xs, Y: perClass[c]})
	}
	fig.Series = append(fig.Series, Series{Name: "overall", X: xs, Y: overall})

	// Claim: the best split is a real decision — the spread between best
	// and worst split is material (>10%).
	best, worst := math.Inf(1), math.Inf(-1)
	for _, v := range overall {
		best = math.Min(best, v)
		worst = math.Max(worst, v)
	}
	fig.Claims = append(fig.Claims, Claim{
		Name:   "channel split materially affects delay",
		Pass:   worst > best*1.1,
		Detail: fmt.Sprintf("overall delay range [%.1f, %.1f] across splits", best, worst),
	})
	return fig, nil
}
