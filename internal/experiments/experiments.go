// Package experiments regenerates every figure of the paper's evaluation
// (section 5) plus the extension experiments DESIGN.md lists. Each generator
// returns a Figure — named series over a swept x-axis — together with Claims:
// machine-checked verdicts on the qualitative statements the paper makes
// about that figure. EXPERIMENTS.md is written from this output.
package experiments

import (
	"fmt"
	"math"

	"hybridqos/internal/analytic"
	"hybridqos/internal/bandwidth"
	"hybridqos/internal/catalog"
	"hybridqos/internal/clients"
	"hybridqos/internal/core"
	"hybridqos/internal/report"
	"hybridqos/internal/sim"
	"hybridqos/internal/svgplot"
)

// Params holds the experiment-wide knobs. Zero values are replaced by the
// paper's defaults via Defaults.
type Params struct {
	// D is the catalog size (paper: 100).
	D int
	// Lambda is the aggregate request rate λ′ (paper: 5).
	Lambda float64
	// Horizon is the simulated duration per replication.
	Horizon float64
	// WarmupFraction is discarded from statistics.
	WarmupFraction float64
	// Replications per configuration.
	Replications int
	// CutoffStep is the K-sweep granularity.
	CutoffStep int
	// Seed is the base seed.
	Seed uint64
}

// Defaults returns the paper-parameterised setup with a horizon long enough
// for stable estimates at tolerable runtime.
func Defaults() Params {
	return Params{
		D:              100,
		Lambda:         5,
		Horizon:        20000,
		WarmupFraction: 0.1,
		Replications:   3,
		CutoffStep:     10,
		Seed:           1,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.D <= 0 || p.Lambda <= 0 || p.Horizon <= 0 || p.Replications <= 0 || p.CutoffStep <= 0 {
		return fmt.Errorf("experiments: non-positive parameter in %+v", p)
	}
	if p.WarmupFraction < 0 || p.WarmupFraction >= 1 {
		return fmt.Errorf("experiments: warmup fraction %g", p.WarmupFraction)
	}
	return nil
}

// Series is one named curve.
type Series struct {
	// Name identifies the curve (e.g. "Class-A θ=0.60 sim").
	Name string
	// X and Y are the curve's points, index-aligned.
	X, Y []float64
}

// Claim is a machine-checked qualitative statement about a figure.
type Claim struct {
	// Name summarises the paper's statement.
	Name string
	// Pass reports whether the reproduction exhibits it.
	Pass bool
	// Detail carries the measured evidence.
	Detail string
}

// Figure is one reproduced evaluation artefact.
type Figure struct {
	// ID is the experiment id (FIG3..FIG7, EXT-*).
	ID string
	// Title describes the figure.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds the curves.
	Series []Series
	// Claims holds the checked statements.
	Claims []Claim
}

// Table renders the figure as an aligned text table (one row per x, one
// column per series).
func (f *Figure) Table() *report.Table {
	headers := append([]string{f.XLabel}, seriesNames(f.Series)...)
	tbl := report.NewTable(fmt.Sprintf("%s: %s (%s)", f.ID, f.Title, f.YLabel), headers...)
	for i := range xUnion(f.Series) {
		x := xUnion(f.Series)[i]
		cells := []string{report.FormatFloat(x, "%g")}
		for _, s := range f.Series {
			cells = append(cells, report.FormatFloat(yAt(s, x), "%.2f"))
		}
		tbl.AddRow(cells...)
	}
	return tbl
}

// CSV renders the figure as long-form CSV (series,x,y).
func (f *Figure) CSV() *report.CSV {
	c := report.NewCSV("figure", "series", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		for i := range s.X {
			c.AddRow(f.ID, s.Name,
				report.FormatFloat(s.X[i], "%g"),
				report.FormatFloat(s.Y[i], "%.6g"))
		}
	}
	return c
}

// SVG renders the figure as a standalone SVG line chart.
func (f *Figure) SVG() (string, error) {
	chart := svgplot.Chart{
		Title:  fmt.Sprintf("%s: %s", f.ID, f.Title),
		XLabel: f.XLabel,
		YLabel: f.YLabel,
	}
	for _, s := range f.Series {
		chart.Series = append(chart.Series, svgplot.Series{Name: s.Name, X: s.X, Y: s.Y})
	}
	return chart.Render()
}

// AllPass reports whether every claim held.
func (f *Figure) AllPass() bool {
	for _, c := range f.Claims {
		if !c.Pass {
			return false
		}
	}
	return true
}

func seriesNames(ss []Series) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

// xUnion returns the sorted union of x values (series in this package share
// grids, so this is just the longest grid).
func xUnion(ss []Series) []float64 {
	var best []float64
	for _, s := range ss {
		if len(s.X) > len(best) {
			best = s.X
		}
	}
	return best
}

// yAt returns the y of a series at x, NaN if absent.
func yAt(s Series, x float64) float64 {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i]
		}
	}
	return math.NaN()
}

// cutoffGrid returns the swept cutoffs {2, 5, 10, 10+step, ..., D−10}. The
// low prefix matters: at extreme skew (θ = 1.40) the optimal cutoff sits
// below 10, and the paper's "delay is higher for low values of K" claim is
// only visible when the sweep reaches into the overloaded-pull regime.
func (p Params) cutoffGrid() []int {
	ks := []int{2, 5}
	for k := 10; k <= p.D-10; k += p.CutoffStep {
		ks = append(ks, k)
	}
	return ks
}

// buildConfig assembles the core configuration for one (θ, α).
func (p Params) buildConfig(theta, alpha float64) (core.Config, error) {
	cat, err := catalog.Generate(catalog.Config{
		D: p.D, Theta: theta, MinLen: 1, MaxLen: 5,
		LengthWeights: catalog.PaperLengthWeights(), Seed: p.Seed,
	})
	if err != nil {
		return core.Config{}, err
	}
	cl, err := clients.New(clients.PaperConfig())
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		Catalog:        cat,
		Classes:        cl,
		Lambda:         p.Lambda,
		Alpha:          alpha,
		Horizon:        p.Horizon,
		WarmupFraction: p.WarmupFraction,
		Seed:           p.Seed,
	}, nil
}

// DelayVsCutoff produces the per-class delay-vs-K curves for one α across
// the given skew coefficients — the engine behind Figures 3 and 4.
func DelayVsCutoff(p Params, alpha float64, thetas []float64) (*Figure, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(thetas) == 0 {
		return nil, fmt.Errorf("experiments: no thetas")
	}
	fig := &Figure{
		ID:     fmt.Sprintf("FIG-delay-alpha%.2f", alpha),
		Title:  fmt.Sprintf("Per-class delay vs cutoff, α=%.2f", alpha),
		XLabel: "K",
		YLabel: "delay (broadcast units)",
	}
	ks := p.cutoffGrid()
	xs := make([]float64, len(ks))
	for i, k := range ks {
		xs[i] = float64(k)
	}
	classNames := []string{"Class-A", "Class-B", "Class-C"}
	for _, theta := range thetas {
		cfg, err := p.buildConfig(theta, alpha)
		if err != nil {
			return nil, err
		}
		points, err := sim.SweepCutoffs(cfg, ks, p.Replications)
		if err != nil {
			return nil, err
		}
		perClass := make([][]float64, 3)
		for _, pt := range points {
			for c := 0; c < 3; c++ {
				perClass[c] = append(perClass[c], pt.Summary.MeanDelay(clients.Class(c)))
			}
		}
		for c := 0; c < 3; c++ {
			fig.Series = append(fig.Series, Series{
				Name: fmt.Sprintf("%s θ=%.2f", classNames[c], theta),
				X:    xs,
				Y:    perClass[c],
			})
		}
		fig.Claims = append(fig.Claims, claimOrdering(theta, alpha, perClass)...)
		fig.Claims = append(fig.Claims, claimLowKElevated(theta, perClass))
	}
	return fig, nil
}

// claimOrdering checks §5.2: Class-A lowest delay, Class-C highest — the
// paper states it for priority-aware scheduling, so it is only asserted for
// α < 1 (α = 1 ignores priority by construction).
func claimOrdering(theta, alpha float64, perClass [][]float64) []Claim {
	if alpha >= 1 {
		return []Claim{{
			Name:   fmt.Sprintf("θ=%.2f: α=1 gives no class differentiation", theta),
			Pass:   maxSpread(perClass) < 0.10,
			Detail: fmt.Sprintf("max relative spread %.1f%%", 100*maxSpread(perClass)),
		}}
	}
	// Where the pull mass is tiny (high θ, large K) the class delays are
	// dominated by the class-blind push system and differ only by sampling
	// noise; the ordering claim therefore tolerates inversions within 3%.
	const tol = 0.03
	violations := 0
	for i := range perClass[0] {
		a, b, c := perClass[0][i], perClass[1][i], perClass[2][i]
		if a > b*(1+tol) || b > c*(1+tol) {
			violations++
		}
	}
	return []Claim{{
		Name:   fmt.Sprintf("θ=%.2f: delay ordering A ≤ B ≤ C across cutoffs (3%% noise tolerance)", theta),
		Pass:   violations == 0,
		Detail: fmt.Sprintf("%d/%d cutoffs violate the ordering", violations, len(perClass[0])),
	}}
}

// maxSpread returns the largest relative (C−A)/mean gap across the sweep.
func maxSpread(perClass [][]float64) float64 {
	worst := 0.0
	for i := range perClass[0] {
		mean := (perClass[0][i] + perClass[1][i] + perClass[2][i]) / 3
		if mean == 0 {
			continue
		}
		spread := math.Abs(perClass[2][i]-perClass[0][i]) / mean
		if spread > worst {
			worst = spread
		}
	}
	return worst
}

// claimLowKElevated checks §5.2: "for all the classes of clients the delay
// is higher for low values of cut-off point" — the lowest swept K must not
// be the delay minimum.
func claimLowKElevated(theta float64, perClass [][]float64) Claim {
	elevated := true
	detail := ""
	for c, ys := range perClass {
		minIdx := 0
		for i, y := range ys {
			if y < ys[minIdx] {
				minIdx = i
			}
		}
		if minIdx == 0 {
			elevated = false
			detail += fmt.Sprintf("class %d minimal at lowest K; ", c)
		}
	}
	if detail == "" {
		detail = "all classes have their optimum above the lowest K"
	}
	return Claim{
		Name:   fmt.Sprintf("θ=%.2f: delay elevated at low K", theta),
		Pass:   elevated,
		Detail: detail,
	}
}

// Fig3 reproduces Figure 3: delay vs cutoff at α = 0 (pure priority),
// θ ∈ {0.20, 0.60, 1.00, 1.40}.
func Fig3(p Params) (*Figure, error) {
	f, err := DelayVsCutoff(p, 0.0, []float64{0.20, 0.60, 1.00, 1.40})
	if err != nil {
		return nil, err
	}
	f.ID = "FIG3"
	f.Title = "Delay Variation with α=0.0"
	return f, nil
}

// Fig4 reproduces Figure 4: delay vs cutoff at α = 1 (pure stretch),
// θ ∈ {0.20, 0.60, 1.00, 1.40}.
func Fig4(p Params) (*Figure, error) {
	f, err := DelayVsCutoff(p, 1.0, []float64{0.20, 0.60, 1.00, 1.40})
	if err != nil {
		return nil, err
	}
	f.ID = "FIG4"
	f.Title = "Delay Variation with α=1.0"
	return f, nil
}

// Fig5 reproduces Figure 5: per-class prioritised cost vs cutoff for
// α ∈ {0.25, 0.75} at θ = 0.60.
func Fig5(p Params) (*Figure, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "FIG5",
		Title:  "Cost Dynamics for Service Classes (θ=0.60)",
		XLabel: "K",
		YLabel: "prioritised cost q·delay",
	}
	ks := p.cutoffGrid()
	xs := make([]float64, len(ks))
	for i, k := range ks {
		xs[i] = float64(k)
	}
	classNames := []string{"Class-A", "Class-B", "Class-C"}
	for _, alpha := range []float64{0.25, 0.75} {
		cfg, err := p.buildConfig(0.60, alpha)
		if err != nil {
			return nil, err
		}
		points, err := sim.SweepCutoffs(cfg, ks, p.Replications)
		if err != nil {
			return nil, err
		}
		total := make([]float64, len(points))
		for c := 0; c < 3; c++ {
			ys := make([]float64, len(points))
			for i, pt := range points {
				ys[i] = pt.Summary.MeanCost(clients.Class(c))
				total[i] += ys[i]
			}
			fig.Series = append(fig.Series, Series{
				Name: fmt.Sprintf("%s α=%.2f", classNames[c], alpha),
				X:    xs,
				Y:    ys,
			})
		}
		// Interior optimum claim: the total-cost minimiser is not at the
		// sweep edges.
		minIdx := 0
		for i, v := range total {
			if v < total[minIdx] {
				minIdx = i
			}
		}
		fig.Claims = append(fig.Claims, Claim{
			Name: fmt.Sprintf("α=%.2f: total cost has an interior optimal cutoff", alpha),
			Pass: minIdx > 0 && minIdx < len(total)-1,
			Detail: fmt.Sprintf("optimal K=%d with total cost %.1f",
				ks[minIdx], total[minIdx]),
		})
	}
	return fig, nil
}

// Fig6 reproduces Figure 6: total optimal prioritised cost vs α for
// θ ∈ {0.20, 0.60, 1.40}: for each (θ, α) the cutoff is optimised by total
// cost and the optimal cost plotted.
func Fig6(p Params) (*Figure, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "FIG6",
		Title:  "Variation of Prioritised Cost",
		XLabel: "alpha",
		YLabel: "total optimal prioritised cost",
	}
	alphas := []float64{0, 0.25, 0.5, 0.75, 1.0}
	ks := p.cutoffGrid()
	for _, theta := range []float64{0.20, 0.60, 1.40} {
		ys := make([]float64, len(alphas))
		for i, alpha := range alphas {
			cfg, err := p.buildConfig(theta, alpha)
			if err != nil {
				return nil, err
			}
			points, err := sim.SweepCutoffs(cfg, ks, p.Replications)
			if err != nil {
				return nil, err
			}
			best, err := sim.OptimalByTotalCost(points)
			if err != nil {
				return nil, err
			}
			ys[i] = best.Summary.TotalCost.Mean()
		}
		fig.Series = append(fig.Series, Series{
			Name: fmt.Sprintf("θ=%.2f", theta),
			X:    alphas,
			Y:    ys,
		})
		fig.Claims = append(fig.Claims, Claim{
			Name: fmt.Sprintf("θ=%.2f: priority influence (α=0) cheaper than none (α=1)", theta),
			Pass: ys[0] < ys[len(ys)-1],
			Detail: fmt.Sprintf("cost %.1f at α=0 vs %.1f at α=1",
				ys[0], ys[len(ys)-1]),
		})
	}
	return fig, nil
}

// Fig7 reproduces Figure 7: analytical (refined item-level model) vs
// simulated per-class delay at θ = 0.60, α = 0.75.
func Fig7(p Params) (*Figure, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	const theta, alpha = 0.60, 0.75
	fig := &Figure{
		ID:     "FIG7",
		Title:  "Analytical vs Simulation Results (θ=0.60, α=0.75)",
		XLabel: "K",
		YLabel: "delay (broadcast units)",
	}
	cfg, err := p.buildConfig(theta, alpha)
	if err != nil {
		return nil, err
	}
	model := analytic.Model{
		Catalog:     cfg.Catalog,
		Classes:     cfg.Classes,
		LambdaTotal: p.Lambda,
		Alpha:       alpha,
		Variant:     analytic.Refined,
	}
	ks := p.cutoffGrid()
	xs := make([]float64, len(ks))
	for i, k := range ks {
		xs[i] = float64(k)
	}
	points, err := sim.SweepCutoffs(cfg, ks, p.Replications)
	if err != nil {
		return nil, err
	}
	classNames := []string{"Class-A", "Class-B", "Class-C"}
	simY := make([][]float64, 3)
	mdlY := make([][]float64, 3)
	worst := 0.0
	for i, k := range ks {
		res, err := model.AccessTime(k)
		if err != nil {
			return nil, err
		}
		for c := 0; c < 3; c++ {
			sv := points[i].Summary.MeanDelay(clients.Class(c))
			mv := res.PerClass[c].Wait
			simY[c] = append(simY[c], sv)
			mdlY[c] = append(mdlY[c], mv)
			if sv > 0 {
				if dev := math.Abs(mv-sv) / sv; dev > worst {
					worst = dev
				}
			}
		}
	}
	for c := 0; c < 3; c++ {
		fig.Series = append(fig.Series,
			Series{Name: classNames[c] + " sim", X: xs, Y: simY[c]},
			Series{Name: classNames[c] + " model", X: xs, Y: mdlY[c]},
		)
	}
	fig.Claims = append(fig.Claims, Claim{
		Name:   "analytical model tracks simulation (paper: ~10% deviation)",
		Pass:   worst <= 0.20,
		Detail: fmt.Sprintf("worst per-class relative deviation %.1f%%", 100*worst),
	})
	return fig, nil
}

// ExtBlocking is the extension experiment behind the abstract's blocking
// claim: per-class drop rate as a function of the premium class's bandwidth
// fraction, under a starved total bandwidth budget.
func ExtBlocking(p Params) (*Figure, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "EXT-BLOCK",
		Title:  "Drop rate vs premium bandwidth fraction (θ=0.60, α=0.50)",
		XLabel: "fracA",
		YLabel: "drop rate",
	}
	fracs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	classNames := []string{"Class-A", "Class-B", "Class-C"}
	cfgs := make([]core.Config, len(fracs))
	for i, fracA := range fracs {
		cfg, err := p.buildConfig(0.60, 0.50)
		if err != nil {
			return nil, err
		}
		rest := (1 - fracA) / 2
		cfg.Cutoff = p.D / 2
		cfg.Bandwidth = &bandwidth.Config{
			Total:      8,
			Fractions:  []float64{fracA, rest, rest},
			DemandMean: 1.5,
		}
		cfgs[i] = cfg
	}
	sums, err := sim.SweepConfigs(cfgs, p.Replications)
	if err != nil {
		return nil, err
	}
	drops := make([][]float64, 3)
	for _, summary := range sums {
		for c := 0; c < 3; c++ {
			drops[c] = append(drops[c], summary.PerClass[c].DropRate.Mean())
		}
	}
	for c := 0; c < 3; c++ {
		fig.Series = append(fig.Series, Series{Name: classNames[c], X: fracs, Y: drops[c]})
	}
	fig.Claims = append(fig.Claims, Claim{
		Name: "premium drop rate falls as its bandwidth fraction grows",
		Pass: drops[0][len(fracs)-1] <= drops[0][0],
		Detail: fmt.Sprintf("Class-A drop rate %.3f at frac %.1f vs %.3f at frac %.1f",
			drops[0][0], fracs[0], drops[0][len(fracs)-1], fracs[len(fracs)-1]),
	})
	return fig, nil
}

// All runs every figure generator with the same parameters.
func All(p Params) ([]*Figure, error) {
	gens := []func(Params) (*Figure, error){Fig3, Fig4, Fig5, Fig6, Fig7, ExtBlocking, ExtMultiClass, ExtChannels, ExtIndexing, ExtLoad, ExtFaults, ExtPolicy, ExtCluster}
	out := make([]*Figure, 0, len(gens))
	for _, g := range gens {
		f, err := g(p)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
