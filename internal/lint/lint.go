// Package lint is qoslint: a custom static-analysis pass that enforces the
// simulator's determinism and panic-discipline contracts at review time,
// instead of hoping the golden replay tests catch a regression at run time.
//
// The paper's cutoff-point and importance-factor results are reproducible
// only because the engine is bit-deterministic: same seed, same trace, same
// figures. That property is easy to break silently — a stray time.Now, a
// global math/rand call, or an unsorted map iteration all type-check, pass
// unit tests, and corrupt replay. qoslint encodes those invariants as typed
// diagnostics with file:line positions.
//
// Rules:
//
//   - nondeterminism: time.Now/time.Since and math/rand imports are banned
//     in library code; all randomness must flow through internal/rng. The
//     single sanctioned exception is internal/clock's wall implementation
//     (wall.go), allowlisted by package and file so real-time reads have
//     exactly one home instead of scattered waivers.
//   - maporder: ranging over a map in library code is flagged unless the
//     keys/values are collected into a slice that the same function sorts.
//   - panicmsg: panics in library packages must carry a "<pkg>: ..." prefixed
//     message or a typed error value; bare panic(err) is banned.
//   - floatcmp: ==/!= between floats in internal/sched, internal/pullqueue
//     and internal/policy is flagged — tie-breaks there must be explicit.
//   - registrydoc: every policy name registered with policy.RegisterPull or
//     policy.RegisterPush must be documented in README.md or DESIGN.md.
//
// On top of the per-file walks, a small intra-procedural dataflow engine
// (dataflow.go) tracks value provenance through assignments and positions
// (loop bodies, closure literals) inside each function, powering four
// flow-sensitive rules:
//
//   - rngflow: every random draw must be reachable from a seeded constructor
//     argument. Package-level rng streams, constant-seeded rng.New calls in
//     library code (worse still inside loops), and draws on zero-value
//     streams that were never Reseed-ed are all flagged.
//   - hotalloc: functions annotated //qos:hotpath may not contain allocating
//     constructs — growing append, make with a non-constant size, closures
//     that capture locals, explicit interface conversions, or string
//     concatenation. This is the static gate backing the corebench
//     allocs/request ceiling.
//   - goroutines: only internal/workpool, internal/clock and
//     internal/httpserve may spawn goroutines; every mutex Lock/RLock must
//     be balanced by a defer or a same-block Unlock/RUnlock on all paths.
//   - barriersafe: fields of types annotated //qos:sharded (per-cell state
//     owned by the cluster's parallel phase) may only be touched inside
//     functions annotated //qos:barrier. Closures never inherit the
//     annotation, so a parallel-phase closure needs an explicit waiver.
//
// A finding can be waived in place with a justified escape hatch:
//
//	//lint:allow <rule> <reason>
//
// on the offending line or the line directly above it. Allow comments that
// name an unknown rule, or omit the reason, are themselves diagnostics — and
// so are //qos: annotations that name an unknown marker or sit detached from
// any declaration.
//
// The analysis is stdlib-only (go/ast, go/parser, go/token, go/types). Each
// package is type-checked in isolation with stubbed imports: intra-package
// types (map ranges, float operands, sharded structs) resolve fully,
// cross-package types degrade to "unknown" and the rules stay conservative
// rather than guess. Packages are analysed in parallel on internal/workpool;
// results land in index-addressed slots and merge in directory order, so the
// diagnostic stream is deterministic at any worker count.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hybridqos/internal/workpool"
)

// Diagnostic is one finding: a rule name, a position, and a message.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Rule names, in the order they are documented.
const (
	RuleNondeterminism = "nondeterminism"
	RuleMapOrder       = "maporder"
	RulePanicMsg       = "panicmsg"
	RuleFloatCmp       = "floatcmp"
	RuleRegistryDoc    = "registrydoc"
	RuleRngFlow        = "rngflow"
	RuleHotAlloc       = "hotalloc"
	RuleGoroutines     = "goroutines"
	RuleBarrierSafe    = "barriersafe"
	// RuleAllow tags malformed //lint:allow comments (unknown rule name or
	// missing reason) and malformed //qos: annotations. It cannot itself be
	// allowed.
	RuleAllow = "allow"
)

// knownRules is the set of rule names an allow comment may reference.
var knownRules = map[string]bool{
	RuleNondeterminism: true,
	RuleMapOrder:       true,
	RulePanicMsg:       true,
	RuleFloatCmp:       true,
	RuleRegistryDoc:    true,
	RuleRngFlow:        true,
	RuleHotAlloc:       true,
	RuleGoroutines:     true,
	RuleBarrierSafe:    true,
}

// Runner lints a module tree rooted at Root.
type Runner struct {
	// Root is the module root; relative package directories and DocFiles
	// resolve against it.
	Root string
	// DocFiles are the documentation files (relative to Root) that the
	// registrydoc rule searches for registered policy names. Defaults to
	// README.md and DESIGN.md.
	DocFiles []string
	// GoroutineDirs adds package directories (slash-separated, relative to
	// Root) to the goroutines rule's sanctioned-spawner set, on top of the
	// built-in internal/workpool, internal/clock and internal/httpserve.
	// Rule configuration, not a waiver: a whole package whose job is
	// concurrency belongs here; a one-off `go` statement does not.
	GoroutineDirs []string

	// allows accumulates the //lint:allow waivers from every linted file,
	// so cross-package rules (registrydoc) honour them too.
	allows map[allowKey]allowEntry
}

// scope classifies a package directory for rule applicability.
type scope int

const (
	// scopeLibrary: the facade (module root) and internal/ packages. All
	// rules apply.
	scopeLibrary scope = iota
	// scopeMain: cmd/ and examples/ binaries. Only registrydoc applies —
	// wall-clock timing in a CLI is fine, but an undocumented policy name
	// is not.
	scopeMain
)

// pkg is one parsed, type-checked package directory.
type pkg struct {
	fset   *token.FileSet
	files  []*ast.File
	info   *types.Info
	name   string // package name, e.g. "catalog"
	relDir string // slash-separated dir relative to Root; "." for the facade
	scope  scope
	runner *Runner
	out    *pkgOutput
	allows map[allowKey]allowEntry
	ann    *annotations
}

// pkgOutput is the index-addressed result slot one lintDir job writes into.
// Keeping every mutable output package-local is what makes the parallel run
// race-free; the merge in Run is a deterministic directory-order fold.
type pkgOutput struct {
	diags  []Diagnostic
	regs   []registration
	allows []allowRecord
}

// allowRecord is an allow-map entry in slice form, so merging package results
// never ranges over a map (qoslint practices what it preaches).
type allowRecord struct {
	key   allowKey
	entry allowEntry
}

// Run lints the packages matched by patterns. A pattern is a directory
// relative to Root, or a directory followed by "/..." for a recursive walk
// ("./..." walks the whole module). It returns the diagnostics sorted by
// (file, line, column, rule); the error is reserved for I/O and parse
// failures, not findings.
func (r *Runner) Run(patterns ...string) ([]Diagnostic, error) {
	dirs, err := r.expand(patterns)
	if err != nil {
		return nil, err
	}
	// One job per package directory. The stub-import type-checker keeps each
	// job hermetic (no shared FileSet, no shared types.Info), so the only
	// cross-package state — waivers consulted by registrydoc — is merged
	// after the barrier, in directory order.
	results := make([]pkgOutput, len(dirs))
	if err := workpool.Run(len(dirs), func(i int) error {
		return r.lintDir(dirs[i], &results[i])
	}); err != nil {
		return nil, err
	}
	r.allows = make(map[allowKey]allowEntry)
	var diags []Diagnostic
	var regs []registration
	for i := range results {
		diags = append(diags, results[i].diags...)
		regs = append(regs, results[i].regs...)
		for _, rec := range results[i].allows {
			r.allows[rec.key] = rec.entry
		}
	}
	if err := r.checkRegistryDoc(regs, &diags); err != nil {
		return nil, err
	}
	sortDiagnostics(diags)
	return diags, nil
}

// sortDiagnostics orders findings by (file, line, column, rule) so output is
// stable regardless of package walk order or worker interleaving.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// expand resolves the patterns into a sorted, de-duplicated list of package
// directories containing non-test Go files.
func (r *Runner) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(r.Root, base)
		}
		if !recursive {
			ok, err := hasGoFiles(base)
			if err != nil {
				return nil, err
			}
			if ok {
				add(base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			ok, err := hasGoFiles(path)
			if err != nil {
				return err
			}
			if ok {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return false, fmt.Errorf("lint: no such directory %s", dir)
		}
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && isLintedFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

// isLintedFile reports whether a file name is a non-test Go source file.
func isLintedFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// lintDir parses, type-checks and rule-checks one package directory, writing
// every result into out (its private slot in the parallel run).
func (r *Runner) lintDir(dir string, out *pkgOutput) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isLintedFile(e.Name()) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: parse %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil
	}
	rel, err := filepath.Rel(r.Root, dir)
	if err != nil {
		rel = dir
	}
	rel = filepath.ToSlash(rel)

	p := &pkg{
		fset:   fset,
		files:  files,
		name:   files[0].Name.Name,
		relDir: rel,
		scope:  scopeOf(rel, files[0].Name.Name),
		runner: r,
		out:    out,
		allows: make(map[allowKey]allowEntry),
	}
	p.info = typecheck(fset, dir, files)
	p.collectAllows()
	p.collectAnnotations()

	checkRegistryCalls(p)
	if p.scope == scopeLibrary {
		checkNondeterminism(p)
		checkMapOrder(p)
		checkPanicMsg(p)
		checkRngFlow(p)
		checkGoroutines(p)
	}
	if floatCmpDirs[p.relDir] {
		checkFloatCmp(p)
	}
	// hotalloc and barriersafe are annotation-driven opt-ins: they run in
	// every scope, and cost nothing where no annotations exist.
	checkHotAlloc(p)
	checkBarrierSafe(p)
	return nil
}

// scopeOf classifies a package directory. The facade (module root) and
// everything under internal/ is library scope; cmd/, examples/ and any other
// package main is binary scope.
func scopeOf(relDir, pkgName string) scope {
	if relDir == "." || relDir == "internal" || strings.HasPrefix(relDir, "internal/") {
		return scopeLibrary
	}
	if pkgName == "main" {
		return scopeMain
	}
	return scopeLibrary
}

// floatCmpDirs are the packages where float equality is a tie-break hazard:
// every ==/!= there orders the pull queue or selects a policy winner.
var floatCmpDirs = map[string]bool{
	"internal/sched":     true,
	"internal/pullqueue": true,
	"internal/policy":    true,
}

// typecheck runs go/types over the package with stubbed-out imports. Errors
// are expected (imports are opaque) and ignored; the point is the partial
// types.Info, which fully resolves intra-package types.
func typecheck(fset *token.FileSet, dir string, files []*ast.File) *types.Info {
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Importer:    stubImporter{cache: make(map[string]*types.Package)},
		Error:       func(error) {}, // partial information is fine
		FakeImportC: true,
	}
	// The returned error only repeats what Error already swallowed.
	conf.Check(dir, fset, files, info) //nolint:errcheck
	return info
}

// stubImporter satisfies every import with an empty package so isolated
// type-checking never touches the network, GOPATH or export data.
type stubImporter struct {
	cache map[string]*types.Package
}

func (s stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := s.cache[path]; ok {
		return p, nil
	}
	parts := strings.Split(path, "/")
	name := parts[len(parts)-1]
	if len(parts) > 1 && (name == "v2" || name == "v3") {
		name = parts[len(parts)-2]
	}
	p := types.NewPackage(path, name)
	// An importer must hand back complete packages or go/types drops the
	// import entirely (and with it the PkgName resolution the rules need);
	// an empty-but-complete package keeps selector errors local.
	p.MarkComplete()
	s.cache[path] = p
	return p, nil
}

// report files a diagnostic unless an allow comment covers it.
func (p *pkg) report(rule string, pos token.Pos, format string, args ...any) {
	position := p.fset.Position(pos)
	if p.allowed(rule, position) {
		return
	}
	p.out.diags = append(p.out.diags, Diagnostic{
		Pos:  position,
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// pkgPath reports the ident's package, or "" if it is not a package name.
// Used to tell time.Now (the package) from time.Now (a field on a local
// variable that happens to be called time).
func (p *pkg) pkgPath(id *ast.Ident) string {
	if obj, ok := p.info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return ""
	}
	return ""
}

// isBuiltin reports whether the ident resolves to the named builtin (panic,
// append, ...), guarding against local shadowing.
func (p *pkg) isBuiltin(id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	obj, ok := p.info.Uses[id]
	if !ok {
		// Unresolved (type-check noise): assume the spelling means the
		// builtin rather than silently skipping the check.
		return true
	}
	_, builtin := obj.(*types.Builtin)
	return builtin
}
