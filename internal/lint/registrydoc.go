package lint

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// registration records one policy name registered somewhere in the tree.
type registration struct {
	name string
	pos  token.Pos
	fset *token.FileSet
}

// checkRegistryCalls collects the string-literal names passed to the policy
// registry — policy.RegisterPull / policy.RegisterPush from outside, and the
// package's own mustRegisterPull / mustRegisterPush built-in installers.
// The registrydoc rule then requires each name to appear in the user-facing
// docs: an undocumented policy is unusable (nobody can know to pass it to
// -policy/-push) and undiscoverable in review.
func checkRegistryCalls(p *pkg) {
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			var fname string
			switch fn := call.Fun.(type) {
			case *ast.Ident:
				fname = fn.Name
			case *ast.SelectorExpr:
				fname = fn.Sel.Name
			default:
				return true
			}
			switch fname {
			case "RegisterPull", "RegisterPush", "mustRegisterPull", "mustRegisterPush":
			default:
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil || name == "" {
				return true
			}
			p.out.regs = append(p.out.regs, registration{name: name, pos: lit.Pos(), fset: p.fset})
			return true
		})
	}
}

// checkRegistryDoc resolves the collected registrations against the doc
// files once all packages are linted, honouring //lint:allow waivers at the
// registration site like every other rule.
func (r *Runner) checkRegistryDoc(regs []registration, diags *[]Diagnostic) error {
	if len(regs) == 0 {
		return nil
	}
	docFiles := r.DocFiles
	if len(docFiles) == 0 {
		docFiles = []string{"README.md", "DESIGN.md"}
	}
	var docs []string
	var present []string
	for _, df := range docFiles {
		b, err := os.ReadFile(filepath.Join(r.Root, df))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return err
		}
		docs = append(docs, string(b))
		present = append(present, df)
	}
	all := strings.Join(docs, "\n")
	for _, reg := range regs {
		// Word-bounded match so "none" is not satisfied by "nonetheless";
		// hyphens inside a name ("square-root") are part of the word.
		pat := regexp.MustCompile(`(^|[^A-Za-z0-9_-])` + regexp.QuoteMeta(reg.name) + `($|[^A-Za-z0-9_-])`)
		pos := reg.fset.Position(reg.pos)
		if !pat.MatchString(all) && !r.allowedAt(RuleRegistryDoc, pos) {
			*diags = append(*diags, Diagnostic{
				Pos:  pos,
				Rule: RuleRegistryDoc,
				Msg:  "registered policy name " + strconv.Quote(reg.name) + " is not documented in " + strings.Join(present, " or "),
			})
		}
	}
	return nil
}
