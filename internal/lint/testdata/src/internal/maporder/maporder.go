// Package maporder is a qoslint fixture: map iteration in deterministic
// code, both the violation and the sanctioned collect-then-sort idiom.
package maporder

import "sort"

// SumFloats accumulates floats in map order: finding (float addition is not
// associative, so the total depends on visit order).
func SumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// Keys collects then sorts: not flagged.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Emit writes values in map order with no sort in sight: finding.
func Emit(m map[int]string, out chan<- string) {
	for _, v := range m {
		out <- v
	}
}
