// Package panicmsg is a qoslint fixture: every panic shape the panicmsg
// rule distinguishes.
package panicmsg

import (
	"errors"
	"fmt"
)

type typedError struct{ msg string }

func (e *typedError) Error() string { return e.msg }

// Bare re-throws someone else's error with no context: finding.
func Bare(err error) {
	panic(err)
}

// Field panics with a struct field: finding (same shape as Bare).
func Field(e *typedError) {
	panic(e.msg)
}

// WrongPrefix carries a message for the wrong subsystem: finding.
func WrongPrefix() {
	panic("oops: broken invariant")
}

// WrongSprintf formats a message without the package prefix: finding.
func WrongSprintf(n int) {
	panic(fmt.Sprintf("other: n=%d", n))
}

// GoodLiteral follows the "<pkg>: ..." convention.
func GoodLiteral() {
	panic("panicmsg: invariant violated")
}

// GoodSprintf formats with the package prefix.
func GoodSprintf(n int) {
	panic(fmt.Sprintf("panicmsg: n=%d out of range", n))
}

// GoodConcat carries the prefix on the left of the concatenation.
func GoodConcat(err error) {
	panic("panicmsg: wrapping: " + err.Error())
}

// GoodTyped panics with a typed error that stringifies its own context.
func GoodTyped() {
	panic(&typedError{msg: "context"})
}

// GoodErrorsNew builds a prefixed error value.
func GoodErrorsNew() {
	panic(errors.New("panicmsg: exploded"))
}
