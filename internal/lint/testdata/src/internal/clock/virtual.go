// Package clock is a qoslint fixture: the wall-clock allowlist covers
// exactly one file (wall.go), not the whole package.
package clock

import "time"

// Leak reads the wall clock outside wall.go: finding, even though this file
// lives in internal/clock.
func Leak() time.Time { return time.Now() }
