package clock

import "time"

// Origin reads the wall clock: clean. wall.go inside internal/clock is the
// rule's one sanctioned home for real-time reads, allowlisted by package and
// file name rather than per-call waivers.
func Origin() time.Time { return time.Now() }

// Elapsed reads the wall clock: also clean here.
func Elapsed(t time.Time) time.Duration { return time.Since(t) }
