// Package workpool is on the goroutines allowlist: spawning here is the
// sanctioned fan-out point, so the rule stays silent.
package workpool

// Go forks a worker; legal only because of the package this lives in.
func Go(f func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		f()
	}()
	<-done
}
