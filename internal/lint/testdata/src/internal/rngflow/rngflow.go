// Package rngflow seeds every rngflow violation shape plus the good
// patterns: injected streams, Split derivation, Reseed, and a waived mint.
package rngflow

import "hybridqos/internal/rng"

var global = rng.New(1) // package-level stream, minted

var cached *rng.Source // package-level stream, declared

type sim struct {
	src *rng.Source
}

// good: draws on an injected parameter stream.
func good(r *rng.Source) float64 {
	return r.Float64()
}

// good: draws on a constructor-owned field.
func (s *sim) goodField() float64 {
	return s.src.Float64()
}

// good: derives a child from a seeded root.
func goodDerive(seed uint64) *rng.Source {
	root := rng.New(seed)
	return root.Split("child")
}

// loopMint mints an identical stream every iteration.
func loopMint(n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		r := rng.New(42)
		sum += r.Float64()
	}
	return sum
}

// constMint hardcodes the seed outside any loop.
func constMint() *rng.Source {
	return rng.New(7)
}

// zeroDraw draws from a stream that is never seeded on any path.
func zeroDraw() float64 {
	var r rng.Source
	return r.Float64()
}

// reseeded is the sanctioned way to use a zero declaration.
func reseeded(seed uint64) float64 {
	var r rng.Source
	r.Reseed(seed)
	return r.Float64()
}

// zeroSplit derives from a zero stream; the child inherits zero provenance.
func zeroSplit() float64 {
	var r rng.Source
	child := r.Split("child")
	return child.Float64()
}

// waived demonstrates the escape hatch on a constant mint.
func waived() *rng.Source {
	//lint:allow rngflow fixture: constant seed is the point of this corpus generator
	return rng.New(9)
}
