// Package cluster seeds the barriersafe violation shapes: sharded state
// touched outside a barrier function, and inside a closure (which never
// inherits the annotation). Barrier-phase access and a waived closure stay
// silent.
package cluster

// cellState is per-cell property of the parallel phase.
//
//qos:sharded
type cellState struct {
	id   int
	load int
}

// Cluster federates the cells.
type Cluster struct {
	cells []*cellState
}

// barrier runs single-threaded between epochs: cross-cell access is legal.
//
//qos:barrier
func (c *Cluster) barrier() {
	for _, cs := range c.cells {
		cs.load = 0
	}
}

// leak reads cell state outside any barrier function.
func (c *Cluster) leak() int {
	return c.cells[0].load
}

// step shows the closure trap: the parallel-phase closure does not inherit
// the enclosing function's annotation.
//
//qos:barrier
func (c *Cluster) step() {
	run(func(i int) {
		c.cells[i].load++
	})
}

// stepWaived is the sanctioned parallel phase: the shard-ownership argument
// is stated where review can see it.
//
//qos:barrier
func (c *Cluster) stepWaived() {
	run(func(i int) {
		//lint:allow barriersafe fixture: each job touches only its own shard
		c.cells[i].load++
	})
}

func run(f func(int)) { f(0) }
