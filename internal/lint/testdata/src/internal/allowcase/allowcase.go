// Package allowcase is a qoslint fixture for the //lint:allow escape hatch:
// a valid waiver, a waiver naming an unknown rule, and a waiver with no
// reason.
package allowcase

import "time"

// Waived reads the wall clock under a justified allow: suppressed.
func Waived() time.Time {
	//lint:allow nondeterminism fixture demonstrates a justified waiver
	return time.Now()
}

// BadRule names a rule that does not exist: the allow is a finding and the
// wall-clock read underneath is still reported.
func BadRule() time.Time {
	//lint:allow bogusrule this rule does not exist
	return time.Now()
}

// NoReason waives a real rule without saying why: the allow is a finding
// and the wall-clock read underneath is still reported.
func NoReason() time.Time {
	//lint:allow nondeterminism
	return time.Now()
}
