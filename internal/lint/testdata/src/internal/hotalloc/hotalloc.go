// Package hotalloc seeds every hotalloc violation shape plus the good
// patterns: reslice reuse, constant make, capture-free literals, and an
// annotated function with a justified waiver. Unannotated functions may
// allocate freely.
package hotalloc

type buf struct {
	items []int
	tmp   []int
}

// hotAppend grows its backing array.
//
//qos:hotpath
func (b *buf) hotAppend(v int) {
	b.items = append(b.items, v)
}

// hotReuse reuses capacity through a reslice: the sanctioned idiom.
//
//qos:hotpath
func (b *buf) hotReuse(vs []int) {
	b.tmp = append(b.tmp[:0], vs...)
}

// hotMake sizes its slice from a runtime value.
//
//qos:hotpath
func hotMake(n int) []int {
	return make([]int, n)
}

// hotMakeConst is fine: constant-size make is stack-allocatable.
//
//qos:hotpath
func hotMakeConst() []int {
	x := make([]int, 8)
	return x
}

// hotClosure returns a closure that captures its parameter.
//
//qos:hotpath
func hotClosure(n int) func() int {
	return func() int { return n }
}

// hotFuncValue is fine: a capture-free literal is a static func value.
//
//qos:hotpath
func hotFuncValue() func() int {
	return func() int { return 42 }
}

// hotConcat allocates a new string per call.
//
//qos:hotpath
func hotConcat(a, b string) string {
	return a + b
}

// hotIface boxes its operand.
//
//qos:hotpath
func hotIface(v int) any {
	return any(v)
}

// coldAppend is unannotated: hotalloc does not apply.
func coldAppend(xs []int, v int) []int {
	return append(xs, v)
}

// hotWaived carries the justification inline.
//
//qos:hotpath
func hotWaived(xs []int, v int) []int {
	//lint:allow hotalloc fixture: growth is amortized over the run
	return append(xs, v)
}
