// Package sched is a qoslint fixture: float equality in a scheduling
// package, where the floatcmp rule applies.
package sched

// Equal compares floats directly: finding.
func Equal(a, b float64) bool {
	return a == b
}

// TieBreak compares cached scores with a justified waiver: suppressed.
func TieBreak(a, b float64, i, j int) bool {
	//lint:allow floatcmp both scores come from the same cached evaluation
	if a != b {
		return a < b
	}
	return i < j
}

// MixedConst compares a float variable against an untyped constant: finding.
func MixedConst(x float64) bool {
	return x != 0.5
}

// Ints is integer equality: not flagged.
func Ints(i, j int) bool { return i == j }
