// Package nondet is a qoslint fixture: every determinism leak the
// nondeterminism rule must catch.
package nondet

import (
	"math/rand"
	"time"
)

// Clock reads the wall clock: finding.
func Clock() time.Time { return time.Now() }

// Age reads the wall clock: finding.
func Age(t time.Time) time.Duration { return time.Since(t) }

// Roll draws from the globally-seeded generator: the import is the finding.
func Roll() int { return rand.Intn(6) }

// Later is fine: time arithmetic on simulated instants is deterministic.
func Later(t time.Time) time.Time { return t.Add(time.Second) }
