// Package policy is a qoslint fixture: registry names that must appear in
// the documentation files.
package policy

// RegisterPull mimics the real registry entry point.
func RegisterPull(name string, f any) error { return nil }

// RegisterPush mimics the real registry entry point.
func RegisterPush(name string, f any) error { return nil }

func init() {
	RegisterPull("documented-policy", nil)
	RegisterPull("ghost-policy", nil)
	RegisterPush("phantom-push", nil)
}
