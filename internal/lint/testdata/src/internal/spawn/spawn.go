// Package spawn seeds the goroutines rule's violation shapes: a goroutine
// outside the sanctioned packages, and a lock with no balancing unlock on
// the fall-through path. The good patterns — defer pairing, same-block
// pairing, deferred-closure unlock, and a waived spawn — stay silent.
package spawn

import "sync"

type guard struct {
	mu sync.Mutex
	n  int
}

// spawnBad forks outside workpool/clock/httpserve.
func spawnBad() {
	go func() {}()
}

// spawnWaived carries the justification inline.
func spawnWaived() {
	//lint:allow goroutines fixture: supervised by the test harness
	go func() {}()
}

// lockDefer is the canonical balanced shape.
func (g *guard) lockDefer() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

// lockPaired is the sanctioned short critical section.
func (g *guard) lockPaired() int {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	return n
}

// lockClosureDefer unlocks through a deferred closure.
func (g *guard) lockClosureDefer() {
	g.mu.Lock()
	defer func() {
		g.n = 0
		g.mu.Unlock()
	}()
	g.n++
}

// lockLeak unlocks only on the early-return path and leaks the mutex on
// fall-through.
func (g *guard) lockLeak() {
	g.mu.Lock()
	if g.n > 0 {
		g.mu.Unlock()
		return
	}
	g.n++
}
