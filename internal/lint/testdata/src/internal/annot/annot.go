// Package annot seeds the annotation failure modes: a typo'd marker and a
// marker detached from any declaration. Both are [allow] diagnostics so an
// annotation typo cannot silently drop a function out of a gate.
package annot

// hotpth is misspelled, so this function is NOT gated — and the typo is a
// finding instead of a silent no-op.
//
//qos:hotpth
func notGated(xs []int, v int) []int {
	return append(xs, v)
}

func detached() int {
	//qos:hotpath
	x := 1
	return x
}
