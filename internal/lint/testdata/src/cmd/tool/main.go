// Command tool is a qoslint fixture: binaries (cmd/, examples/) may read
// the wall clock for progress reporting; only registrydoc applies here.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println("elapsed:", time.Since(start))
}
