package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureRun lints the testdata/src tree and returns findings keyed as
// "relpath:line [rule]".
func fixtureRun(t *testing.T, patterns ...string) ([]Diagnostic, []string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Root: root}
	diags, err := r.Run(patterns...)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(diags))
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		keys = append(keys, fmt.Sprintf("%s:%d [%s]", filepath.ToSlash(rel), d.Pos.Line, d.Rule))
	}
	return diags, keys
}

// TestFixtureFindings pins the exact finding set over the fixture tree: one
// entry per seeded violation, nothing for the good patterns (collect-then-
// sort, prefixed panics, typed errors, documented names, binaries reading
// the wall clock).
func TestFixtureFindings(t *testing.T) {
	want := []string{
		"internal/allowcase/allowcase.go:17 [allow]",
		"internal/allowcase/allowcase.go:18 [nondeterminism]",
		"internal/allowcase/allowcase.go:24 [allow]",
		"internal/allowcase/allowcase.go:25 [nondeterminism]",
		"internal/annot/annot.go:9 [allow]",
		"internal/annot/annot.go:15 [allow]",
		"internal/clock/virtual.go:9 [nondeterminism]",
		"internal/cluster/cluster.go:31 [barriersafe]",
		"internal/cluster/cluster.go:40 [barriersafe]",
		"internal/hotalloc/hotalloc.go:16 [hotalloc]",
		"internal/hotalloc/hotalloc.go:30 [hotalloc]",
		"internal/hotalloc/hotalloc.go:45 [hotalloc]",
		"internal/hotalloc/hotalloc.go:59 [hotalloc]",
		"internal/hotalloc/hotalloc.go:66 [hotalloc]",
		"internal/maporder/maporder.go:11 [maporder]",
		"internal/maporder/maporder.go:29 [maporder]",
		"internal/nondet/nondet.go:6 [nondeterminism]",
		"internal/nondet/nondet.go:11 [nondeterminism]",
		"internal/nondet/nondet.go:14 [nondeterminism]",
		"internal/panicmsg/panicmsg.go:16 [panicmsg]",
		"internal/panicmsg/panicmsg.go:21 [panicmsg]",
		"internal/panicmsg/panicmsg.go:26 [panicmsg]",
		"internal/panicmsg/panicmsg.go:31 [panicmsg]",
		"internal/policy/reg.go:13 [registrydoc]",
		"internal/policy/reg.go:14 [registrydoc]",
		"internal/rngflow/rngflow.go:7 [rngflow]",
		"internal/rngflow/rngflow.go:9 [rngflow]",
		"internal/rngflow/rngflow.go:35 [rngflow]",
		"internal/rngflow/rngflow.go:43 [rngflow]",
		"internal/rngflow/rngflow.go:49 [rngflow]",
		"internal/rngflow/rngflow.go:63 [rngflow]",
		"internal/sched/floatcmp.go:7 [floatcmp]",
		"internal/sched/floatcmp.go:21 [floatcmp]",
		"internal/spawn/spawn.go:16 [goroutines]",
		"internal/spawn/spawn.go:53 [goroutines]",
	}
	_, got := fixtureRun(t, "./...")
	if len(got) != len(want) {
		t.Errorf("got %d findings, want %d\ngot:\n  %s", len(got), len(want), strings.Join(got, "\n  "))
	}
	gotSet := make(map[string]bool, len(got))
	for _, k := range got {
		gotSet[k] = true
	}
	for _, w := range want {
		if !gotSet[w] {
			t.Errorf("missing expected finding %s", w)
		}
		delete(gotSet, w)
	}
	for k := range gotSet {
		t.Errorf("unexpected finding %s", k)
	}
}

// TestAllowSuppression distinguishes "suppressed" from "not detected": the
// justified waiver in allowcase.Waived silences its time.Now, while the
// identical calls under a bogus-rule allow and a reasonless allow are still
// reported. A valid waiver must also produce no [allow] diagnostic.
func TestAllowSuppression(t *testing.T) {
	_, got := fixtureRun(t, "internal/allowcase")
	keys := strings.Join(got, "\n")
	if strings.Contains(keys, "allowcase.go:11") {
		t.Errorf("time.Now under a justified allow was reported:\n%s", keys)
	}
	if strings.Contains(keys, "allowcase.go:10 [allow]") {
		t.Errorf("well-formed allow comment was itself reported:\n%s", keys)
	}
	for _, line := range []string{"allowcase.go:18 [nondeterminism]", "allowcase.go:25 [nondeterminism]"} {
		if !strings.Contains(keys, line) {
			t.Errorf("finding under a malformed allow must survive; missing %s in:\n%s", line, keys)
		}
	}
}

// TestMalformedAllowMessages pins the wording of the two allow failure
// modes, so the escape hatch stays self-explaining.
func TestMalformedAllowMessages(t *testing.T) {
	diags, _ := fixtureRun(t, "internal/allowcase")
	var unknown, reasonless bool
	for _, d := range diags {
		if d.Rule != RuleAllow {
			continue
		}
		switch {
		case strings.Contains(d.Msg, `unknown rule "bogusrule"`):
			unknown = true
		case strings.Contains(d.Msg, "needs a reason"):
			reasonless = true
		}
	}
	if !unknown {
		t.Error("allow naming an unknown rule was not reported as an error")
	}
	if !reasonless {
		t.Error("allow without a reason was not reported as an error")
	}
}

// TestSingleDirPattern checks that a bare directory pattern (no /...) lints
// exactly that package.
func TestSingleDirPattern(t *testing.T) {
	_, got := fixtureRun(t, "internal/sched")
	for _, k := range got {
		if !strings.HasPrefix(k, "internal/sched/") {
			t.Errorf("single-dir pattern leaked finding %s", k)
		}
	}
	if len(got) != 2 {
		t.Errorf("got %d findings for internal/sched, want 2:\n  %s", len(got), strings.Join(got, "\n  "))
	}
}

// TestRngFlowRule covers the dataflow rule's positive and negative space:
// package-level streams, loop and non-loop constant mints, zero-value draws
// (including through Split, which propagates provenance), while injected
// parameters, constructor fields, Reseed and the waived mint stay silent.
func TestRngFlowRule(t *testing.T) {
	diags, got := fixtureRun(t, "internal/rngflow")
	keys := strings.Join(got, "\n")
	for _, w := range []string{
		"rngflow.go:7 [rngflow]",  // var global = rng.New(1)
		"rngflow.go:9 [rngflow]",  // var cached *rng.Source
		"rngflow.go:35 [rngflow]", // rng.New(42) inside a loop
		"rngflow.go:43 [rngflow]", // rng.New(7) constant mint
		"rngflow.go:49 [rngflow]", // draw on zero-value stream
		"rngflow.go:63 [rngflow]", // draw on Split of a zero stream
	} {
		if !strings.Contains(keys, w) {
			t.Errorf("missing rngflow finding %s in:\n%s", w, keys)
		}
	}
	if n := strings.Count(keys, "[rngflow]"); n != 6 {
		t.Errorf("got %d rngflow findings, want 6 (good/reseeded/waived must stay silent):\n%s", n, keys)
	}
	var loopMsg, zeroMsg bool
	for _, d := range diags {
		if d.Pos.Line == 35 && strings.Contains(d.Msg, "inside a loop") {
			loopMsg = true
		}
		if d.Pos.Line == 49 && strings.Contains(d.Msg, "zero-value rng stream") {
			zeroMsg = true
		}
	}
	if !loopMsg {
		t.Error("loop mint should carry the hoist-and-Split message")
	}
	if !zeroMsg {
		t.Error("zero draw should name the zero-value stream")
	}
}

// TestHotAllocRule: the five allocating constructs are flagged in annotated
// functions; reslice reuse, constant make, capture-free literals,
// unannotated functions and the waived append stay silent.
func TestHotAllocRule(t *testing.T) {
	diags, got := fixtureRun(t, "internal/hotalloc")
	keys := strings.Join(got, "\n")
	for _, w := range []string{
		"hotalloc.go:16 [hotalloc]", // growing append
		"hotalloc.go:30 [hotalloc]", // non-constant make
		"hotalloc.go:45 [hotalloc]", // capturing closure
		"hotalloc.go:59 [hotalloc]", // string concat
		"hotalloc.go:66 [hotalloc]", // interface conversion
	} {
		if !strings.Contains(keys, w) {
			t.Errorf("missing hotalloc finding %s in:\n%s", w, keys)
		}
	}
	if n := strings.Count(keys, "[hotalloc]"); n != 5 {
		t.Errorf("got %d hotalloc findings, want 5:\n%s", n, keys)
	}
	var captureNames bool
	for _, d := range diags {
		if d.Pos.Line == 45 && strings.Contains(d.Msg, "captures n") {
			captureNames = true
		}
	}
	if !captureNames {
		t.Error("closure finding should name the captured variables")
	}
}

// TestGoroutinesRule: spawns outside the allowlist and the fall-through
// lock leak are flagged; defer pairing, same-block pairing, deferred-closure
// unlock, the waived spawn, and the allowlisted workpool package stay silent.
func TestGoroutinesRule(t *testing.T) {
	_, got := fixtureRun(t, "internal/spawn", "internal/workpool")
	keys := strings.Join(got, "\n")
	for _, w := range []string{
		"spawn.go:16 [goroutines]", // go outside allowlist
		"spawn.go:53 [goroutines]", // lock leak on fall-through
	} {
		if !strings.Contains(keys, w) {
			t.Errorf("missing goroutines finding %s in:\n%s", w, keys)
		}
	}
	if n := strings.Count(keys, "[goroutines]"); n != 2 {
		t.Errorf("got %d goroutines findings, want 2:\n%s", n, keys)
	}
	if strings.Contains(keys, "pool.go") {
		t.Errorf("allowlisted workpool package must stay silent:\n%s", keys)
	}
}

// TestGoroutineDirsConfig: Runner.GoroutineDirs extends the sanctioned-
// spawner set (rule configuration, not a waiver): the spawn finding
// disappears, while lock-balance checking in the same package is unaffected.
func TestGoroutineDirsConfig(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Root: root, GoroutineDirs: []string{"internal/spawn/"}}
	diags, err := r.Run("internal/spawn")
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, d := range diags {
		keys = append(keys, fmt.Sprintf("%s:%d [%s]", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule))
	}
	joined := strings.Join(keys, "\n")
	if strings.Contains(joined, "spawn.go:16") {
		t.Errorf("configured spawner dir must not be flagged:\n%s", joined)
	}
	if !strings.Contains(joined, "spawn.go:53 [goroutines]") {
		t.Errorf("lock-balance finding must survive the spawner config:\n%s", joined)
	}
	// The diagnostic for unsanctioned spawns must name configured extras.
	r2 := &Runner{Root: root, GoroutineDirs: []string{"internal/other"}}
	diags2, err := r2.Run("internal/spawn")
	if err != nil {
		t.Fatal(err)
	}
	named := false
	for _, d := range diags2 {
		if d.Rule == RuleGoroutines && strings.Contains(d.Msg, "internal/other") {
			named = true
		}
	}
	if !named {
		t.Error("goroutines diagnostic should list the configured sanctioned dirs")
	}
}

// TestBarrierSafeRule: sharded access outside a barrier function and inside
// a closure are flagged with distinct messages; barrier-phase access and the
// waived closure stay silent.
func TestBarrierSafeRule(t *testing.T) {
	diags, got := fixtureRun(t, "internal/cluster")
	keys := strings.Join(got, "\n")
	if n := strings.Count(keys, "[barriersafe]"); n != 2 {
		t.Errorf("got %d barriersafe findings, want 2:\n%s", n, keys)
	}
	var outside, closure bool
	for _, d := range diags {
		if d.Rule != RuleBarrierSafe {
			continue
		}
		switch d.Pos.Line {
		case 31:
			outside = strings.Contains(d.Msg, "outside a //qos:barrier function")
		case 40:
			closure = strings.Contains(d.Msg, "closures do not inherit")
		}
	}
	if !outside {
		t.Error("out-of-barrier access should say so")
	}
	if !closure {
		t.Error("closure access should explain the no-inherit rule")
	}
}

// TestAnnotationTypos: a misspelled or detached //qos: marker is an [allow]
// diagnostic — and the misspelled function is genuinely not gated, so its
// append produces no hotalloc finding.
func TestAnnotationTypos(t *testing.T) {
	diags, got := fixtureRun(t, "internal/annot")
	keys := strings.Join(got, "\n")
	if strings.Contains(keys, "[hotalloc]") {
		t.Errorf("misspelled annotation must not gate the function:\n%s", keys)
	}
	var unknown, detached bool
	for _, d := range diags {
		if d.Rule != RuleAllow {
			continue
		}
		if strings.Contains(d.Msg, `unknown //qos: annotation "hotpth"`) {
			unknown = true
		}
		if strings.Contains(d.Msg, "not attached to a function declaration") {
			detached = true
		}
	}
	if !unknown {
		t.Error("unknown //qos: marker was not reported")
	}
	if !detached {
		t.Error("detached //qos: marker was not reported")
	}
}

// TestParallelRunStable: the parallel per-package run must produce an
// identical diagnostic stream on every invocation — same findings, same
// order — regardless of worker interleaving.
func TestParallelRunStable(t *testing.T) {
	_, first := fixtureRun(t, "./...")
	for i := 0; i < 5; i++ {
		_, again := fixtureRun(t, "./...")
		if strings.Join(again, "\n") != strings.Join(first, "\n") {
			t.Fatalf("run %d diverged:\nfirst:\n  %s\nagain:\n  %s", i, strings.Join(first, "\n  "), strings.Join(again, "\n  "))
		}
	}
}

// TestSelfHost lints the real repository: the tree this test ships in must
// be clean, the same gate CI enforces with `go run ./cmd/qoslint ./...`.
func TestSelfHost(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Root: root}
	diags, err := r.Run("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repository is not qoslint-clean: %s", d)
	}
}
