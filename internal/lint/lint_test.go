package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureRun lints the testdata/src tree and returns findings keyed as
// "relpath:line [rule]".
func fixtureRun(t *testing.T, patterns ...string) ([]Diagnostic, []string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Root: root}
	diags, err := r.Run(patterns...)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(diags))
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		keys = append(keys, fmt.Sprintf("%s:%d [%s]", filepath.ToSlash(rel), d.Pos.Line, d.Rule))
	}
	return diags, keys
}

// TestFixtureFindings pins the exact finding set over the fixture tree: one
// entry per seeded violation, nothing for the good patterns (collect-then-
// sort, prefixed panics, typed errors, documented names, binaries reading
// the wall clock).
func TestFixtureFindings(t *testing.T) {
	want := []string{
		"internal/allowcase/allowcase.go:17 [allow]",
		"internal/allowcase/allowcase.go:18 [nondeterminism]",
		"internal/allowcase/allowcase.go:24 [allow]",
		"internal/allowcase/allowcase.go:25 [nondeterminism]",
		"internal/clock/virtual.go:9 [nondeterminism]",
		"internal/maporder/maporder.go:11 [maporder]",
		"internal/maporder/maporder.go:29 [maporder]",
		"internal/nondet/nondet.go:6 [nondeterminism]",
		"internal/nondet/nondet.go:11 [nondeterminism]",
		"internal/nondet/nondet.go:14 [nondeterminism]",
		"internal/panicmsg/panicmsg.go:16 [panicmsg]",
		"internal/panicmsg/panicmsg.go:21 [panicmsg]",
		"internal/panicmsg/panicmsg.go:26 [panicmsg]",
		"internal/panicmsg/panicmsg.go:31 [panicmsg]",
		"internal/policy/reg.go:13 [registrydoc]",
		"internal/policy/reg.go:14 [registrydoc]",
		"internal/sched/floatcmp.go:7 [floatcmp]",
		"internal/sched/floatcmp.go:21 [floatcmp]",
	}
	_, got := fixtureRun(t, "./...")
	if len(got) != len(want) {
		t.Errorf("got %d findings, want %d\ngot:\n  %s", len(got), len(want), strings.Join(got, "\n  "))
	}
	gotSet := make(map[string]bool, len(got))
	for _, k := range got {
		gotSet[k] = true
	}
	for _, w := range want {
		if !gotSet[w] {
			t.Errorf("missing expected finding %s", w)
		}
		delete(gotSet, w)
	}
	for k := range gotSet {
		t.Errorf("unexpected finding %s", k)
	}
}

// TestAllowSuppression distinguishes "suppressed" from "not detected": the
// justified waiver in allowcase.Waived silences its time.Now, while the
// identical calls under a bogus-rule allow and a reasonless allow are still
// reported. A valid waiver must also produce no [allow] diagnostic.
func TestAllowSuppression(t *testing.T) {
	_, got := fixtureRun(t, "internal/allowcase")
	keys := strings.Join(got, "\n")
	if strings.Contains(keys, "allowcase.go:11") {
		t.Errorf("time.Now under a justified allow was reported:\n%s", keys)
	}
	if strings.Contains(keys, "allowcase.go:10 [allow]") {
		t.Errorf("well-formed allow comment was itself reported:\n%s", keys)
	}
	for _, line := range []string{"allowcase.go:18 [nondeterminism]", "allowcase.go:25 [nondeterminism]"} {
		if !strings.Contains(keys, line) {
			t.Errorf("finding under a malformed allow must survive; missing %s in:\n%s", line, keys)
		}
	}
}

// TestMalformedAllowMessages pins the wording of the two allow failure
// modes, so the escape hatch stays self-explaining.
func TestMalformedAllowMessages(t *testing.T) {
	diags, _ := fixtureRun(t, "internal/allowcase")
	var unknown, reasonless bool
	for _, d := range diags {
		if d.Rule != RuleAllow {
			continue
		}
		switch {
		case strings.Contains(d.Msg, `unknown rule "bogusrule"`):
			unknown = true
		case strings.Contains(d.Msg, "needs a reason"):
			reasonless = true
		}
	}
	if !unknown {
		t.Error("allow naming an unknown rule was not reported as an error")
	}
	if !reasonless {
		t.Error("allow without a reason was not reported as an error")
	}
}

// TestSingleDirPattern checks that a bare directory pattern (no /...) lints
// exactly that package.
func TestSingleDirPattern(t *testing.T) {
	_, got := fixtureRun(t, "internal/sched")
	for _, k := range got {
		if !strings.HasPrefix(k, "internal/sched/") {
			t.Errorf("single-dir pattern leaked finding %s", k)
		}
	}
	if len(got) != 2 {
		t.Errorf("got %d findings for internal/sched, want 2:\n  %s", len(got), strings.Join(got, "\n  "))
	}
}

// TestSelfHost lints the real repository: the tree this test ships in must
// be clean, the same gate CI enforces with `go run ./cmd/qoslint ./...`.
func TestSelfHost(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Root: root}
	diags, err := r.Run("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repository is not qoslint-clean: %s", d)
	}
}
