package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkFloatCmp flags ==/!= between floating-point expressions in the
// scheduling packages (internal/sched, internal/pullqueue, internal/policy).
// Those comparisons are where ties are broken, and the paper's figures
// depend on exact tie-breaking order — two scores that "should" be equal can
// differ in the last ulp depending on evaluation order, silently reordering
// the pull queue. Intentional exact-equality tie-breaks (comparing cached
// score values computed by one code path) stay, with an
// //lint:allow floatcmp <reason> stating why exact equality is sound.
func checkFloatCmp(p *pkg) {
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if p.isFloat(be.X) || p.isFloat(be.Y) {
				p.report(RuleFloatCmp, be.OpPos,
					"float %s comparison orders the schedule: make the tie-break explicit, or //lint:allow floatcmp <reason>", be.Op)
			}
			return true
		})
	}
}

func (p *pkg) isFloat(e ast.Expr) bool {
	t := p.info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
