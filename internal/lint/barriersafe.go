package lint

import (
	"go/ast"
)

// barriersafe: the cluster's bulk-synchronous contract, statically. Types
// annotated //qos:sharded hold per-cell state that the parallel advance
// phase owns shard-by-shard; the single-threaded barrier phase is the only
// place cross-shard reads and writes are legal. Functions that make up the
// barrier phase carry //qos:barrier.
//
// Any field access rooted at a sharded-typed expression outside a barrier
// function is flagged. Closures never inherit the annotation — deliberately:
// the closure handed to workpool.Run *is* the parallel phase, and its
// each-job-touches-only-its-own-shard argument is exactly the kind of claim
// that belongs in a //lint:allow waiver where review can see it.
//
// The rule is opt-in per package: no //qos:sharded type, no work.

func checkBarrierSafe(p *pkg) {
	if len(p.ann.sharded) == 0 {
		return
	}
	p.eachFuncDecl(func(_ *ast.File, fd *ast.FuncDecl) {
		inBarrier := p.ann.barrier[fd]
		flow := newFuncFlow(p, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			typeName := p.namedLocalType(sel.X)
			if typeName == "" || !p.ann.sharded[typeName] {
				return true
			}
			switch {
			case inBarrier && !flow.inFuncLit(sel.Pos()):
				// Legal: barrier-phase code in the annotated function body.
			case flow.inFuncLit(sel.Pos()):
				p.report(RuleBarrierSafe, sel.Pos(),
					"sharded %s state touched inside a closure: closures do not inherit //qos:barrier (waive if each parallel job only touches its own shard)", typeName)
			default:
				p.report(RuleBarrierSafe, sel.Pos(),
					"sharded %s state touched outside a //qos:barrier function", typeName)
			}
			return true
		})
	})
}
