package lint

import (
	"go/ast"
	"go/types"
)

// checkMapOrder flags `for ... range` over a map in library code. Go
// randomises map iteration order on purpose, so any map range whose effect
// depends on visit order (emitting, appending, accumulating floats) produces
// run-to-run divergence that the golden replay tests only catch if the
// divergent path happens to execute.
//
// The sanctioned pattern is recognised and not flagged: collect the keys (or
// values) into a slice inside the loop, then sort that slice in the same
// function before use — e.g. the registry's Names(). Everything else needs
// an explicit //lint:allow maporder <reason>.
func checkMapOrder(p *pkg) {
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorted := sortedIdents(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.info.TypeOf(rs.X)
				if t == nil {
					return true // cross-package type; stay conservative
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if collectsInto(rs.Body, sorted) {
					return true
				}
				p.report(RuleMapOrder, rs.Pos(),
					"range over map: iteration order is randomised; collect and sort the keys first, or //lint:allow maporder <reason>")
				return true
			})
		}
	}
}

// sortedIdents returns the names of identifiers that appear as arguments to
// a sort.* or slices.Sort* call anywhere in the function body.
func sortedIdents(body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok || (pkgID.Name != "sort" && pkgID.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok {
					out[id.Name] = true
				}
				return true
			})
		}
		return true
	})
	return out
}

// collectsInto reports whether every statement in the loop body only feeds
// slices that the function later sorts: `s = append(s, ...)` or `s[i] = ...`
// where s is in the sorted set. That is the collect-then-sort idiom; any
// other effect in the body is order-sensitive.
func collectsInto(body *ast.BlockStmt, sorted map[string]bool) bool {
	if len(sorted) == 0 || len(body.List) == 0 {
		return false
	}
	for _, stmt := range body.List {
		assign, ok := stmt.(*ast.AssignStmt)
		if !ok {
			return false
		}
		for i, lhs := range assign.Lhs {
			var target *ast.Ident
			switch l := lhs.(type) {
			case *ast.Ident:
				target = l
			case *ast.IndexExpr:
				target, _ = l.X.(*ast.Ident)
			}
			if target == nil || !sorted[target.Name] {
				return false
			}
			// Plain `s[i] = v` is a collect; `s = rhs` must be an append
			// to s so the loop cannot smuggle in another map read.
			if id, isIdent := lhs.(*ast.Ident); isIdent {
				if i >= len(assign.Rhs) {
					return false
				}
				call, isCall := assign.Rhs[i].(*ast.CallExpr)
				if !isCall {
					return false
				}
				fn, isFn := call.Fun.(*ast.Ident)
				if !isFn || fn.Name != "append" || len(call.Args) == 0 {
					return false
				}
				base, isBase := call.Args[0].(*ast.Ident)
				if !isBase || base.Name != id.Name {
					return false
				}
			}
		}
	}
	return true
}
