package lint

import (
	"go/token"
	"strings"
)

// allowKey addresses an allow comment: one file, one line, one rule.
type allowKey struct {
	file string
	line int
	rule string
}

type allowEntry struct {
	reason string
}

// collectAllows parses every //lint:allow comment in the package and records
// which (file, line, rule) triples are waived. Malformed allows — unknown
// rule name, or a missing reason — are diagnostics themselves, so a typo
// cannot silently disable a rule. Waivers are kept package-local during the
// parallel run (rules only ever consult same-package allows) and exported
// through p.out for the post-merge cross-package registrydoc pass.
func (p *pkg) collectAllows() {
	for _, f := range p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				pos := p.fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					p.out.diags = append(p.out.diags, Diagnostic{
						Pos:  pos,
						Rule: RuleAllow,
						Msg:  "malformed allow comment: want //lint:allow <rule> <reason>",
					})
					continue
				}
				rule := fields[0]
				if !knownRules[rule] {
					p.out.diags = append(p.out.diags, Diagnostic{
						Pos:  pos,
						Rule: RuleAllow,
						Msg:  "allow names unknown rule " + quote(rule) + " (known: " + strings.Join(ruleNames(), ", ") + ")",
					})
					continue
				}
				if len(fields) < 2 {
					p.out.diags = append(p.out.diags, Diagnostic{
						Pos:  pos,
						Rule: RuleAllow,
						Msg:  "allow for " + quote(rule) + " needs a reason: //lint:allow " + rule + " <reason>",
					})
					continue
				}
				key := allowKey{file: pos.Filename, line: pos.Line, rule: rule}
				entry := allowEntry{reason: strings.Join(fields[1:], " ")}
				p.allows[key] = entry
				p.out.allows = append(p.out.allows, allowRecord{key: key, entry: entry})
			}
		}
	}
}

// allowed reports whether a finding at position is waived: an allow for the
// same rule sits on the finding's line (trailing comment) or the line
// directly above it (own-line comment).
func (p *pkg) allowed(rule string, pos token.Position) bool {
	if _, ok := p.allows[allowKey{file: pos.Filename, line: pos.Line, rule: rule}]; ok {
		return true
	}
	_, ok := p.allows[allowKey{file: pos.Filename, line: pos.Line - 1, rule: rule}]
	return ok
}

func (r *Runner) allowedAt(rule string, pos token.Position) bool {
	if _, ok := r.allows[allowKey{file: pos.Filename, line: pos.Line, rule: rule}]; ok {
		return true
	}
	_, ok := r.allows[allowKey{file: pos.Filename, line: pos.Line - 1, rule: rule}]
	return ok
}

func ruleNames() []string {
	return []string{
		RuleNondeterminism, RuleMapOrder, RulePanicMsg, RuleFloatCmp,
		RuleRegistryDoc, RuleRngFlow, RuleHotAlloc, RuleGoroutines,
		RuleBarrierSafe,
	}
}

func quote(s string) string { return "\"" + s + "\"" }
