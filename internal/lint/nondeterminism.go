package lint

import (
	"go/ast"
	"path/filepath"
	"strconv"
)

// checkNondeterminism bans the two classic determinism leaks in library
// code: wall-clock reads (time.Now, time.Since) and the globally-seeded
// math/rand generators. Simulated time comes from the event loop; randomness
// comes from internal/rng, whose splittable named streams make a single seed
// reproduce the whole experiment.
//
// internal/rng itself is exempt from the math/rand import ban so the
// sanctioned wrapper could build on the stdlib generator if it ever chose to.
//
// The wall-clock ban has exactly one sanctioned exception, expressed here as
// a package/file allowlist rather than per-call waivers: internal/clock's
// wall implementation (wall.go) exists to read real time, so every other
// package can stay clean. The virtual implementation in the same package is
// NOT exempt — only the one file.
func checkNondeterminism(p *pkg) {
	for _, f := range p.files {
		wallExempt := p.relDir == "internal/clock" &&
			filepath.Base(p.fset.Position(f.Pos()).Filename) == "wall.go"
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if (path == "math/rand" || path == "math/rand/v2") && p.relDir != "internal/rng" {
				p.report(RuleNondeterminism, imp.Pos(),
					"import of %s: global generators break replay; draw from internal/rng streams instead", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || p.pkgPath(id) != "time" {
				return true
			}
			switch sel.Sel.Name {
			case "Now", "Since":
				if wallExempt {
					return true
				}
				p.report(RuleNondeterminism, sel.Pos(),
					"time.%s reads the wall clock: simulated time must come from the event scheduler", sel.Sel.Name)
			}
			return true
		})
	}
}
