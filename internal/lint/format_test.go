package lint

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteJSON: the JSON emitter preserves the sorted order and renders
// root-relative slash paths.
func TestWriteJSON(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	diags, _ := fixtureRun(t, "./...")
	var buf bytes.Buffer
	if err := WriteJSON(&buf, root, diags); err != nil {
		t.Fatal(err)
	}
	var findings []struct {
		File   string `json:"file"`
		Line   int    `json:"line"`
		Column int    `json:"column"`
		Rule   string `json:"rule"`
		Msg    string `json:"msg"`
	}
	if err := json.Unmarshal(buf.Bytes(), &findings); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(findings) != len(diags) {
		t.Fatalf("got %d JSON findings, want %d", len(findings), len(diags))
	}
	for i, f := range findings {
		if strings.Contains(f.File, "\\") || filepath.IsAbs(f.File) {
			t.Errorf("finding %d file %q is not a root-relative slash path", i, f.File)
		}
		if f.Rule == "" || f.Msg == "" || f.Line == 0 {
			t.Errorf("finding %d is incomplete: %+v", i, f)
		}
		if f.Rule != diags[i].Rule || f.Line != diags[i].Pos.Line {
			t.Errorf("finding %d out of order: got %s:%d, want %s:%d", i, f.Rule, f.Line, diags[i].Rule, diags[i].Pos.Line)
		}
	}
}

// TestWriteSARIF: the SARIF emitter produces a parseable 2.1.0 log with the
// full rule table, index-consistent results, and physical locations.
func TestWriteSARIF(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	diags, _ := fixtureRun(t, "./...")
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, root, diags); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF does not parse: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("not a SARIF 2.1.0 log: version=%q schema=%q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "qoslint" {
		t.Errorf("driver name = %q, want qoslint", run.Tool.Driver.Name)
	}
	// All nine documented rules plus the allow meta-rule, each described.
	if len(run.Tool.Driver.Rules) != 10 {
		t.Errorf("got %d rules in driver metadata, want 10", len(run.Tool.Driver.Rules))
	}
	for _, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no short description", r.ID)
		}
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("got %d results, want %d", len(run.Results), len(diags))
	}
	for i, res := range run.Results {
		if res.Level != "error" {
			t.Errorf("result %d level = %q, want error", i, res.Level)
		}
		if res.RuleID != diags[i].Rule {
			t.Errorf("result %d ruleId = %q, want %q", i, res.RuleID, diags[i].Rule)
		}
		if got := run.Tool.Driver.Rules[res.RuleIndex].ID; got != res.RuleID {
			t.Errorf("result %d ruleIndex %d points at %q, want %q", i, res.RuleIndex, got, res.RuleID)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.Region.StartLine != diags[i].Pos.Line {
			t.Errorf("result %d startLine = %d, want %d", i, loc.Region.StartLine, diags[i].Pos.Line)
		}
		if strings.Contains(loc.ArtifactLocation.URI, "\\") || filepath.IsAbs(loc.ArtifactLocation.URI) {
			t.Errorf("result %d uri %q is not a root-relative slash path", i, loc.ArtifactLocation.URI)
		}
	}
}

// TestSARIFEmptyRun: a clean tree still emits a valid log (CI uploads it
// unconditionally), with the rule table present and zero results.
func TestSARIFEmptyRun(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "", nil); err != nil {
		t.Fatal(err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("empty SARIF does not parse: %v", err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("empty run should carry an explicit empty results array:\n%s", buf.String())
	}
}
