package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// goroutines: concurrency containment. Determinism rests on two structural
// facts — every parallel fan-out goes through internal/workpool (index-
// addressed result slots, deterministic merge), and every wall-clock or
// listener goroutine lives in internal/clock or internal/httpserve. A `go`
// statement anywhere else is an unaudited interleaving source.
//
// The same rule also checks mutex discipline: a Lock/RLock must be balanced
// either by a deferred Unlock/RUnlock anywhere in the function, or by a
// matching Unlock/RUnlock later in the same statement list (the sanctioned
// "short critical section" shape). An unlock that only exists on a nested
// early-return path leaks the lock on fall-through — exactly the bug shape
// this catches.

// goroutineDirs are the packages sanctioned to spawn goroutines by default;
// Runner.GoroutineDirs extends the set per invocation.
var goroutineDirs = map[string]bool{
	"internal/workpool":  true,
	"internal/clock":     true,
	"internal/httpserve": true,
}

// goroutineAllowed reports whether relDir may spawn goroutines: the built-in
// set plus the runner's configured extras.
func (r *Runner) goroutineAllowed(relDir string) bool {
	if goroutineDirs[relDir] {
		return true
	}
	for _, d := range r.GoroutineDirs {
		if strings.TrimSuffix(d, "/") == relDir {
			return true
		}
	}
	return false
}

// goroutineDirList renders the full sanctioned set for the diagnostic.
func (r *Runner) goroutineDirList() string {
	dirs := make([]string, 0, len(goroutineDirs)+len(r.GoroutineDirs))
	for d := range goroutineDirs {
		dirs = append(dirs, d)
	}
	for _, d := range r.GoroutineDirs {
		d = strings.TrimSuffix(d, "/")
		if !goroutineDirs[d] {
			dirs = append(dirs, d)
		}
	}
	sort.Strings(dirs)
	return strings.Join(dirs, ", ")
}

func checkGoroutines(p *pkg) {
	spawnAllowed := p.runner.goroutineAllowed(p.relDir)
	p.eachFuncDecl(func(_ *ast.File, fd *ast.FuncDecl) {
		if !spawnAllowed {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p.report(RuleGoroutines, g.Pos(),
						"goroutine spawned outside the sanctioned packages (%s); fan out through workpool.Run or a clock callback", p.runner.goroutineDirList())
				}
				return true
			})
		}
		checkLockBalance(p, fd)
	})
}

// lockCall matches recv.Lock() / recv.RLock() / recv.Unlock() / recv.RUnlock()
// and renders the receiver for pairing.
func (p *pkg) lockCall(e ast.Expr) (recv, method string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return p.exprText(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

func unlockFor(lock string) string {
	if lock == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// checkLockBalance flags Lock/RLock calls with no balancing unlock: neither
// a deferred unlock of the same receiver anywhere in the function, nor a
// plain unlock later in the same statement list.
func checkLockBalance(p *pkg, fd *ast.FuncDecl) {
	// Pass 1: receivers with a deferred unlock (direct or wrapped in a
	// deferred closure) are balanced on all paths by construction.
	deferred := make(map[string]bool) // "recv\x00method" of deferred unlocks
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if recv, method, ok := p.lockCall(d.Call); ok {
			deferred[recv+"\x00"+method] = true
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if es, ok := m.(*ast.ExprStmt); ok {
					if recv, method, ok := p.lockCall(es.X); ok {
						deferred[recv+"\x00"+method] = true
					}
				}
				return true
			})
		}
		return true
	})

	// Pass 2: every statement list, looking for Lock statements and their
	// same-block balance.
	eachStmtList(fd.Body, func(list []ast.Stmt) {
		for i, stmt := range list {
			es, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			recv, method, ok := p.lockCall(es.X)
			if !ok || (method != "Lock" && method != "RLock") {
				continue
			}
			want := unlockFor(method)
			if deferred[recv+"\x00"+want] {
				continue
			}
			balanced := false
			for _, later := range list[i+1:] {
				if les, ok := later.(*ast.ExprStmt); ok {
					if r2, m2, ok := p.lockCall(les.X); ok && r2 == recv && m2 == want {
						balanced = true
						break
					}
				}
				if ds, ok := later.(*ast.DeferStmt); ok {
					if r2, m2, ok := p.lockCall(ds.Call); ok && r2 == recv && m2 == want {
						balanced = true
						break
					}
				}
			}
			if !balanced {
				p.report(RuleGoroutines, es.Pos(),
					"%s.%s() has no balancing %s.%s() on all paths: defer it, or pair it in the same block", recv, method, recv, want)
			}
		}
	})
}

// eachStmtList visits every statement list in the body: blocks, case
// clauses, and select comm clauses.
func eachStmtList(body *ast.BlockStmt, visit func([]ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BlockStmt:
			visit(s.List)
		case *ast.CaseClause:
			visit(s.Body)
		case *ast.CommClause:
			visit(s.Body)
		}
		return true
	})
}
