package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// This file is the intra-procedural dataflow engine under the flow-sensitive
// rules (rngflow, hotalloc, goroutines, barriersafe). It deliberately stays
// small: no CFG, no inter-procedural summaries. Instead it offers three
// primitives that together cover what the determinism contract needs:
//
//   - //qos: annotations on declarations (collectAnnotations), the opt-in
//     marker set: hotpath functions, barrier-phase functions, sharded types.
//   - position classification (funcFlow): is this node inside a loop body?
//     inside a closure literal? which function encloses it?
//   - value provenance (funcFlow.solve): a fixpoint over the function's
//     assignment edges that joins abstract states per local variable. The
//     lattice is a set union, so iteration order never changes the result
//     and the analysis is deterministic by construction.

// Annotation markers recognised after the //qos: prefix.
const (
	annHotpath = "hotpath"
	annBarrier = "barrier"
	annSharded = "sharded"
)

// annotations is the package's parsed //qos: marker set.
type annotations struct {
	// hotpath and barrier are keyed by the annotated FuncDecl.
	hotpath map[*ast.FuncDecl]bool
	barrier map[*ast.FuncDecl]bool
	// sharded holds package-local type names whose fields are barrier-phase
	// property (cluster cell state).
	sharded map[string]bool
}

// collectAnnotations parses every //qos:<marker> comment in the package.
// Markers attach to the declaration they document (FuncDecl for hotpath and
// barrier, type declaration for sharded). Unknown markers and markers that
// are not attached to a compatible declaration are diagnostics, so a typo
// like //qos:hotpth cannot silently drop a function out of the alloc gate.
func (p *pkg) collectAnnotations() {
	p.ann = &annotations{
		hotpath: make(map[*ast.FuncDecl]bool),
		barrier: make(map[*ast.FuncDecl]bool),
		sharded: make(map[string]bool),
	}
	consumed := make(map[token.Pos]bool)
	for _, f := range p.files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				for _, marker := range qosMarkers(d.Doc) {
					switch marker.name {
					case annHotpath:
						p.ann.hotpath[d] = true
						consumed[marker.pos] = true
					case annBarrier:
						p.ann.barrier[d] = true
						consumed[marker.pos] = true
					}
				}
			case *ast.GenDecl:
				docs := []*ast.CommentGroup{d.Doc}
				for _, spec := range d.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok {
						docs = append(docs, ts.Doc)
						for _, doc := range docs {
							for _, marker := range qosMarkers(doc) {
								if marker.name == annSharded {
									p.ann.sharded[ts.Name.Name] = true
									consumed[marker.pos] = true
								}
							}
						}
					}
				}
			}
		}
	}
	// Second sweep: any //qos: comment not consumed above is either an
	// unknown marker or a marker detached from (or attached to the wrong
	// kind of) declaration.
	for _, f := range p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := strings.CutPrefix(c.Text, "//qos:")
				if !ok || consumed[c.Pos()] {
					continue
				}
				name = strings.TrimSpace(name)
				switch name {
				case annHotpath, annBarrier:
					p.report(RuleAllow, c.Pos(),
						"//qos:%s is not attached to a function declaration (it must be in the function's doc comment)", name)
				case annSharded:
					p.report(RuleAllow, c.Pos(),
						"//qos:sharded is not attached to a type declaration")
				default:
					p.report(RuleAllow, c.Pos(),
						"unknown //qos: annotation %s (known: %s, %s, %s)", quote(name), annHotpath, annBarrier, annSharded)
				}
			}
		}
	}
}

type qosMarker struct {
	name string
	pos  token.Pos
}

// qosMarkers extracts the //qos:<name> lines from a doc comment group.
func qosMarkers(doc *ast.CommentGroup) []qosMarker {
	if doc == nil {
		return nil
	}
	var out []qosMarker
	for _, c := range doc.List {
		if name, ok := strings.CutPrefix(c.Text, "//qos:"); ok {
			out = append(out, qosMarker{name: strings.TrimSpace(name), pos: c.Pos()})
		}
	}
	return out
}

// posSpan is a half-open source interval.
type posSpan struct {
	from, to token.Pos
}

func (s posSpan) contains(pos token.Pos) bool {
	return s.from <= pos && pos < s.to
}

// spans is an interval set with containment queries.
type spans []posSpan

func (ss spans) contains(pos token.Pos) bool {
	for _, s := range ss {
		if s.contains(pos) {
			return true
		}
	}
	return false
}

// funcFlow is the per-function dataflow context: loop-body and closure-body
// intervals plus the assignment edges feeding the provenance solver.
type funcFlow struct {
	p     *pkg
	body  *ast.BlockStmt
	loops spans // for/range bodies (any nesting depth)
	lits  spans // func-literal bodies
}

// newFuncFlow indexes one function body.
func newFuncFlow(p *pkg, body *ast.BlockStmt) *funcFlow {
	f := &funcFlow{p: p, body: body}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			f.loops = append(f.loops, posSpan{from: s.Body.Lbrace, to: s.Body.End()})
		case *ast.RangeStmt:
			f.loops = append(f.loops, posSpan{from: s.Body.Lbrace, to: s.Body.End()})
		case *ast.FuncLit:
			f.lits = append(f.lits, posSpan{from: s.Body.Lbrace, to: s.Body.End()})
		}
		return true
	})
	return f
}

// inLoop reports whether pos sits inside a loop body of this function.
func (f *funcFlow) inLoop(pos token.Pos) bool { return f.loops.contains(pos) }

// inFuncLit reports whether pos sits inside a closure literal nested in this
// function (annotations never transfer to closures).
func (f *funcFlow) inFuncLit(pos token.Pos) bool { return f.lits.contains(pos) }

// prov is the provenance lattice element for one variable: a bit-set joined
// by union, so the fixpoint is order-independent.
type prov uint8

const (
	// provSeeded: reached from a seeded constructor argument — a parameter,
	// receiver field, Reseed call, or derivation (Split) of a seeded stream.
	provSeeded prov = 1 << iota
	// provZero: the zero value — var decl without initializer, or an empty
	// composite literal / new(T). Drawing from it repeats the same sequence
	// in every run and every instance, which is exactly the bug rngflow
	// exists to catch.
	provZero
)

func (pv prov) seeded() bool { return pv&provSeeded != 0 }
func (pv prov) zeroOnly() bool {
	return pv&provZero != 0 && pv&provSeeded == 0
}

// classifyFunc maps one RHS expression to the provenance it confers, given
// the current variable states. Returning 0 means "not a tracked value".
type classifyFunc func(e ast.Expr, state map[types.Object]prov) prov

// solve runs the assignment-edge fixpoint: starting from the seed states
// (typically parameters and zero-value declarations), it re-applies every
// assignment edge until no variable's state grows. The lattice is finite
// (two bits) and join is monotone, so this terminates in at most two
// passes over the edges per variable. The seed map is taken over as the
// working state and mutated in place.
func (f *funcFlow) solve(seed map[types.Object]prov, classify classifyFunc) map[types.Object]prov {
	state := seed
	if state == nil {
		state = make(map[types.Object]prov)
	}
	type edge struct {
		obj types.Object
		rhs ast.Expr
	}
	var edges []edge
	ast.Inspect(f.body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := f.p.objectOf(id)
				if obj == nil {
					continue
				}
				edges = append(edges, edge{obj: obj, rhs: s.Rhs[i]})
			}
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for i, name := range vs.Names {
					obj := f.p.objectOf(name)
					if obj == nil {
						continue
					}
					edges = append(edges, edge{obj: obj, rhs: vs.Values[i]})
				}
			}
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			pv := classify(e.rhs, state)
			if pv == 0 {
				continue
			}
			if state[e.obj]|pv != state[e.obj] {
				state[e.obj] |= pv
				changed = true
			}
		}
	}
	return state
}

// objectOf resolves an identifier to its types.Object via Defs or Uses.
// With the stub importer, intra-package identifiers always resolve even when
// their types do not.
func (p *pkg) objectOf(id *ast.Ident) types.Object {
	if obj := p.info.Defs[id]; obj != nil {
		return obj
	}
	return p.info.Uses[id]
}

// constExpr reports whether the type-checker proved e constant. With stubbed
// imports, cross-package constants do not resolve, so this errs toward
// "not constant" — which for rngflow errs toward not flagging.
func (p *pkg) constExpr(e ast.Expr) bool {
	if tv, ok := p.info.Types[e]; ok && tv.Value != nil {
		return true
	}
	// Literal ints survive even when type-checking noise dropped the Types
	// entry (e.g. inside an argument list the checker abandoned).
	_, isLit := e.(*ast.BasicLit)
	return isLit
}

// exprText renders a (small) expression for receiver matching and messages.
func (p *pkg) exprText(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, p.fset, e); err != nil {
		return "?"
	}
	return buf.String()
}

// namedLocalType unwraps e's type to a package-local named type (through
// one level of pointer), or "" if it is anything else. Used by barriersafe
// to recognise sharded struct values.
func (p *pkg) namedLocalType(e ast.Expr) string {
	tv, ok := p.info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	// Only this package's types qualify: with stubbed imports a foreign
	// named type never resolves anyway, and if it did we would not want a
	// name collision to trigger the rule.
	if obj.Pkg().Name() != p.name {
		return ""
	}
	return obj.Name()
}

// eachFuncDecl visits every function declaration with a body.
func (p *pkg) eachFuncDecl(visit func(f *ast.File, fd *ast.FuncDecl)) {
	for _, f := range p.files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(f, fd)
			}
		}
	}
}
