package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// Output emitters for cmd/qoslint's -format flag. Both emitters take the
// already-sorted diagnostic slice, so every format shares the same
// (file, line, column, rule) order and CI annotations are stable across
// runs and worker counts.

// ruleDescriptions are the one-line docs surfaced in SARIF rule metadata
// (GitHub code scanning shows them next to each annotation).
var ruleDescriptions = map[string]string{
	RuleNondeterminism: "time.Now/time.Since and math/rand are banned in library code; randomness flows through internal/rng",
	RuleMapOrder:       "map iteration order leaks into output unless keys are collected and sorted",
	RulePanicMsg:       "library panics must carry a \"<pkg>: \" prefixed message or a typed error",
	RuleFloatCmp:       "float ==/!= in scheduling code hides tie-break behaviour",
	RuleRegistryDoc:    "registered policy names must be documented in README.md or DESIGN.md",
	RuleRngFlow:        "random draws must be reachable from a seeded constructor argument",
	RuleHotAlloc:       "//qos:hotpath functions may not contain allocating constructs",
	RuleGoroutines:     "goroutines are confined to workpool/clock/httpserve; mutex lock/unlock must balance",
	RuleBarrierSafe:    "//qos:sharded state is only touched inside //qos:barrier functions",
	RuleAllow:          "malformed //lint:allow or //qos: comments",
}

// jsonFinding is one diagnostic in -format json output.
type jsonFinding struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
	Rule   string `json:"rule"`
	Msg    string `json:"msg"`
}

// WriteJSON emits the diagnostics as a JSON array of findings with
// root-relative file paths.
func WriteJSON(w io.Writer, root string, diags []Diagnostic) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			File:   relPath(root, d.Pos.Filename),
			Line:   d.Pos.Line,
			Column: d.Pos.Column,
			Rule:   d.Rule,
			Msg:    d.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// SARIF 2.1.0 scaffolding — the minimal subset GitHub code scanning
// consumes: tool metadata with rule descriptors, and one result per
// diagnostic with a physical location.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits the diagnostics as a SARIF 2.1.0 log suitable for GitHub
// code-scanning upload. Rules are listed in documentation order (plus the
// allow meta-rule), results reference them by index, and file URIs are
// root-relative with forward slashes.
func WriteSARIF(w io.Writer, root string, diags []Diagnostic) error {
	ids := append(ruleNames(), RuleAllow)
	index := make(map[string]int, len(ids))
	rules := make([]sarifRule, 0, len(ids))
	for i, id := range ids {
		index[id] = i
		rules = append(rules, sarifRule{
			ID:               id,
			ShortDescription: sarifMessage{Text: ruleDescriptions[id]},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:    d.Rule,
			RuleIndex: index[d.Rule],
			Level:     "error",
			Message:   sarifMessage{Text: d.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       relPath(root, d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "qoslint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relPath renders filename relative to root with forward slashes, falling
// back to the input when it is not under root.
func relPath(root, filename string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}
