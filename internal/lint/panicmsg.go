package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// checkPanicMsg enforces the panic discipline in library packages: a panic
// is the simulator's assertion mechanism, so the value it carries must
// identify the failing subsystem. Accepted shapes:
//
//   - a string (literal, concatenation, or fmt.Sprintf/fmt.Errorf/
//     errors.New) whose text starts with the "<pkg>: " prefix, matching the
//     convention every package already follows ("catalog: rank 7 out of
//     [1,5]");
//   - a typed error value (&DuplicateError{...}, composite literals,
//     constructor calls) that stringifies its own context.
//
// Bare panic(err) is banned outright: it re-throws someone else's message
// with no indication of which Must-helper or invariant tripped.
func checkPanicMsg(p *pkg) {
	prefix := p.name + ": "
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || !p.isBuiltin(fn, "panic") || len(call.Args) != 1 {
				return true
			}
			p.checkPanicArg(call.Args[0], prefix)
			return true
		})
	}
}

func (p *pkg) checkPanicArg(arg ast.Expr, prefix string) {
	switch a := arg.(type) {
	case *ast.BasicLit:
		if s, err := strconv.Unquote(a.Value); err == nil && !strings.HasPrefix(s, prefix) {
			p.report(RulePanicMsg, a.Pos(), "panic message must start with %q, got %q", prefix, s)
		}
	case *ast.BinaryExpr:
		// "pkg: context: " + err.Error() — the leftmost operand carries
		// the prefix.
		p.checkPanicArg(leftmost(a), prefix)
	case *ast.CallExpr:
		if name, ok := formatterName(a.Fun); ok {
			if len(a.Args) == 0 {
				return
			}
			lit, isLit := a.Args[0].(*ast.BasicLit)
			if !isLit {
				return // dynamic format string; give it the benefit of the doubt
			}
			if s, err := strconv.Unquote(lit.Value); err == nil && !strings.HasPrefix(s, prefix) {
				p.report(RulePanicMsg, lit.Pos(), "panic %s message must start with %q, got %q", name, prefix, s)
			}
		}
		// Other calls construct typed errors; accepted.
	case *ast.Ident, *ast.SelectorExpr:
		p.report(RulePanicMsg, arg.Pos(),
			"bare panic(%s): wrap it in a %q-prefixed message or a typed error", exprString(arg), prefix)
	}
	// Composite literals, &T{...}, conversions: typed values, accepted.
}

// leftmost walks down the left spine of a concatenation chain.
func leftmost(e *ast.BinaryExpr) ast.Expr {
	left := e.X
	for {
		b, ok := left.(*ast.BinaryExpr)
		if !ok {
			return left
		}
		left = b.X
	}
}

// formatterName recognises the stdlib message builders whose first argument
// is the message text.
func formatterName(fun ast.Expr) (string, bool) {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	switch pkgID.Name + "." + sel.Sel.Name {
	case "fmt.Sprintf", "fmt.Errorf", "fmt.Sprint", "errors.New":
		return pkgID.Name + "." + sel.Sel.Name, true
	}
	return "", false
}

func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	}
	return "..."
}
