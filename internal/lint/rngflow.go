package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// rngflow: every random draw must be reachable from a seeded constructor
// argument. Three failure shapes are flagged:
//
//   - package-level stream variables: a global stream is shared mutable
//     state whose draw order depends on goroutine interleaving and package
//     init order, which destroys replay;
//   - rng.New with a constant seed in library code: the stream is seeded,
//     but not from configuration, so two components using the same literal
//     silently correlate. Inside a loop it is worse — every iteration mints
//     an identical stream;
//   - draws on a zero-value rng.Source that was never Reseed-ed: the zero
//     stream emits the same fixed sequence in every instance.
//
// The provenance solver (dataflow.go) tracks stream-typed locals through
// assignments: parameters and struct fields count as seeded (constructors
// validate them), zero-value declarations and empty composite literals count
// as zero, Split propagates the provenance of its receiver, and Reseed
// upgrades a variable to seeded. A variable that is zero on every edge and
// never seeded flags each of its draw sites.

// drawMethods are the rng.Source methods that consume stream state.
var drawMethods = map[string]bool{
	"Uint64":   true,
	"Float64":  true,
	"Intn":     true,
	"IntRange": true,
	"Exp":      true,
	"Poisson":  true,
	"Shuffle":  true,
	"Perm":     true,
}

// isRngPath reports whether an import path is the project's rng package.
func isRngPath(path string) bool {
	return path == "hybridqos/internal/rng" || strings.HasSuffix(path, "/internal/rng")
}

// isRngPkgIdent reports whether the identifier names the rng package
// (usually spelled "rng", but renamed imports resolve too).
func (p *pkg) isRngPkgIdent(id *ast.Ident) bool {
	return isRngPath(p.pkgPath(id))
}

// mentionsStreamType reports whether a type expression contains rng.Source.
// The check is syntactic on purpose: with stubbed imports the rng.Source
// type never resolves through go/types, but the selector in the source text
// is unambiguous.
func (p *pkg) mentionsStreamType(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Source" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && p.isRngPkgIdent(id) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isRngNew reports whether call is rng.New(...) and returns its seed arg.
func (p *pkg) isRngNew(call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "New" {
		return nil, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !p.isRngPkgIdent(id) {
		return nil, false
	}
	if len(call.Args) == 0 {
		return nil, false
	}
	return call.Args[0], true
}

func checkRngFlow(p *pkg) {
	imports := false
	for _, f := range p.files {
		for _, imp := range f.Imports {
			if isRngPath(strings.Trim(imp.Path.Value, `"`)) {
				imports = true
			}
		}
	}
	if !imports {
		return
	}
	checkPackageLevelStreams(p)
	p.eachFuncDecl(func(_ *ast.File, fd *ast.FuncDecl) {
		checkFuncRngFlow(p, fd)
	})
}

// checkPackageLevelStreams flags global stream variables, whether declared
// by type (var cached *rng.Source) or minted by initializer (= rng.New(1)).
func checkPackageLevelStreams(p *pkg) {
	for _, f := range p.files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				streamTyped := vs.Type != nil && p.mentionsStreamType(vs.Type)
				minted := false
				for _, v := range vs.Values {
					ast.Inspect(v, func(n ast.Node) bool {
						if call, ok := n.(*ast.CallExpr); ok {
							if _, isNew := p.isRngNew(call); isNew {
								minted = true
							}
						}
						return true
					})
				}
				if streamTyped || minted {
					p.report(RuleRngFlow, vs.Pos(),
						"package-level rng stream %s: streams must be minted from a configured seed and injected, never shared globally", vs.Names[0].Name)
				}
			}
		}
	}
}

// checkFuncRngFlow runs the provenance solver over one function and flags
// constant mints and zero-stream draws.
func checkFuncRngFlow(p *pkg, fd *ast.FuncDecl) {
	flow := newFuncFlow(p, fd.Body)

	// Seed states: parameters and receivers of stream type are trusted
	// (their constructors were checked where the stream was minted);
	// zero-value declarations start unseeded.
	seed := make(map[types.Object]prov)
	fields := []*ast.FieldList{fd.Recv, fd.Type.Params}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			if !p.mentionsStreamType(field.Type) {
				continue
			}
			for _, name := range field.Names {
				if obj := p.objectOf(name); obj != nil {
					seed[obj] |= provSeeded
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := ds.Decl.(*ast.GenDecl)
		if !ok {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) > 0 || vs.Type == nil {
				continue
			}
			// Only the value form is silently dangerous: a nil *rng.Source
			// panics on first draw, a zero rng.Source quietly replays the
			// same fixed sequence forever.
			if _, isPtr := vs.Type.(*ast.StarExpr); isPtr || !p.mentionsStreamType(vs.Type) {
				continue
			}
			for _, name := range vs.Names {
				if obj := p.objectOf(name); obj != nil {
					seed[obj] |= provZero
				}
			}
		}
		return true
	})
	// Reseed is the sanctioned way to bless a zero stream in place.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Reseed" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := p.objectOf(id); obj != nil {
				seed[obj] |= provSeeded
			}
		}
		return true
	})

	state := flow.solve(seed, func(e ast.Expr, st map[types.Object]prov) prov {
		return p.classifyStreamExpr(e, st)
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Constant mints, with a sharper message inside loops.
		if seedArg, isNew := p.isRngNew(call); isNew && p.constExpr(seedArg) {
			if flow.inLoop(call.Pos()) {
				p.report(RuleRngFlow, call.Pos(),
					"rng.New(%s) inside a loop mints an identical stream every iteration; hoist it and Split per-iteration streams instead", p.exprText(seedArg))
			} else {
				p.report(RuleRngFlow, call.Pos(),
					"rng.New(%s) with a constant seed in library code: derive the stream from a configured seed (cfg.Seed, a parameter, or Split of a seeded stream)", p.exprText(seedArg))
			}
			return true
		}
		// Draws on zero-only streams.
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !drawMethods[sel.Sel.Name] {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.objectOf(id)
		if obj == nil {
			return true
		}
		if state[obj].zeroOnly() {
			p.report(RuleRngFlow, call.Pos(),
				"%s.%s draws from a zero-value rng stream: %s is never seeded on any path (Reseed it or take a seeded stream as an argument)", id.Name, sel.Sel.Name, id.Name)
		}
		return true
	})
}

// classifyStreamExpr maps an assignment RHS to stream provenance.
func (p *pkg) classifyStreamExpr(e ast.Expr, state map[types.Object]prov) prov {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return p.classifyStreamExpr(v.X, state)
	case *ast.UnaryExpr:
		return p.classifyStreamExpr(v.X, state)
	case *ast.StarExpr:
		return p.classifyStreamExpr(v.X, state)
	case *ast.Ident:
		return state[p.objectOf(v)]
	case *ast.CompositeLit:
		if v.Type != nil && p.mentionsStreamType(v.Type) {
			return provZero
		}
	case *ast.CallExpr:
		if _, isNew := p.isRngNew(v); isNew {
			// Seeded for flow purposes even when the seed is a constant;
			// the constant itself is reported at the call site.
			return provSeeded
		}
		if id, ok := v.Fun.(*ast.Ident); ok && p.isBuiltin(id, "new") && len(v.Args) == 1 {
			if p.mentionsStreamType(v.Args[0]) {
				return provZero
			}
			return 0
		}
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Split" {
			// Split derives a child stream: it inherits the receiver's
			// provenance, so splitting a zero stream stays zero.
			if id, ok := sel.X.(*ast.Ident); ok {
				if pv := state[p.objectOf(id)]; pv != 0 {
					return pv
				}
			}
			return provSeeded
		}
	}
	return 0
}
