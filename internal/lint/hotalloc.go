package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotalloc: functions annotated //qos:hotpath may not contain allocating
// constructs. This is the static complement of the corebench
// allocs/request gate — the benchmark catches a regression after the fact,
// this rule points at the exact expression in review.
//
// Flagged constructs:
//
//   - append whose base is not a reslice (append(x[:0], ...) reuses
//     capacity; append(x, ...) may grow);
//   - make with a non-constant size (make([]T, 8) is a candidate for stack
//     allocation, make([]T, n) rarely is);
//   - closure literals that capture variables (a capturing closure allocates
//     its context; a capture-free literal compiles to a static func value);
//   - explicit conversions to an interface type, including any(x) (boxing);
//   - string concatenation outside constant folding.
//
// The rule is opt-in per function and applies in any scope. Intentional
// sites — amortized growth, freelist pushes — carry //lint:allow hotalloc
// waivers with the justification inline.

func checkHotAlloc(p *pkg) {
	if len(p.ann.hotpath) == 0 {
		return
	}
	p.eachFuncDecl(func(_ *ast.File, fd *ast.FuncDecl) {
		if !p.ann.hotpath[fd] {
			return
		}
		checkFuncHotAlloc(p, fd)
	})
}

func checkFuncHotAlloc(p *pkg, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			p.checkHotCall(name, v)
		case *ast.FuncLit:
			if captured := p.capturedVars(fd, v); len(captured) > 0 {
				p.report(RuleHotAlloc, v.Pos(),
					"closure in //qos:hotpath func %s captures %s: a capturing closure allocates per call (hoist the closure to a reused field, or waive with the amortization argument)", name, joinNames(captured))
			}
		case *ast.BinaryExpr:
			if v.Op == token.ADD && (p.isStringExpr(v.X) || p.isStringExpr(v.Y)) && !p.constExpr(v) {
				p.report(RuleHotAlloc, v.OpPos,
					"string concatenation in //qos:hotpath func %s allocates; precompute or use a byte buffer", name)
			}
		case *ast.AssignStmt:
			if v.Tok == token.ADD_ASSIGN && len(v.Lhs) == 1 && p.isStringExpr(v.Lhs[0]) {
				p.report(RuleHotAlloc, v.TokPos,
					"string += in //qos:hotpath func %s allocates; precompute or use a byte buffer", name)
			}
		}
		return true
	})
}

func (p *pkg) checkHotCall(fn string, call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch {
		case p.isBuiltin(id, "append") && len(call.Args) > 0:
			// append over a reslice (append(buf[:0], ...)) reuses capacity
			// and is the sanctioned hot-path idiom; anything else may grow.
			if _, reslice := call.Args[0].(*ast.SliceExpr); !reslice {
				p.report(RuleHotAlloc, call.Pos(),
					"append may grow %s in //qos:hotpath func %s; reuse capacity (append(x[:0], ...)) or waive with the amortization argument", p.exprText(call.Args[0]), fn)
			}
			return
		case p.isBuiltin(id, "make") && len(call.Args) >= 2:
			for _, arg := range call.Args[1:] {
				if !p.constExpr(arg) {
					p.report(RuleHotAlloc, call.Pos(),
						"make with non-constant size %s in //qos:hotpath func %s allocates per call; preallocate in the constructor", p.exprText(arg), fn)
					return
				}
			}
			return
		}
	}
	// Explicit conversion to an interface type (including any(x)): boxing.
	if tv, ok := p.info.Types[call.Fun]; ok && tv.IsType() && tv.Type != nil {
		if _, iface := tv.Type.Underlying().(*types.Interface); iface && len(call.Args) == 1 {
			p.report(RuleHotAlloc, call.Pos(),
				"conversion to interface type %s in //qos:hotpath func %s boxes its operand", p.exprText(call.Fun), fn)
		}
	}
}

// capturedVars returns the sorted names of variables a closure literal
// captures from its enclosing function: objects used inside the literal but
// declared between the function's start and the literal (receiver, params,
// locals). Package-level objects are not captures — referencing a global
// does not allocate a closure context.
func (p *pkg) capturedVars(fd *ast.FuncDecl, lit *ast.FuncLit) []string {
	seen := make(map[string]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		pos := obj.Pos()
		if pos >= fd.Pos() && pos < lit.Pos() && !seen[id.Name] {
			seen[id.Name] = true
			names = append(names, id.Name)
		}
		return true
	})
	sort.Strings(names)
	return names
}

// isStringExpr reports whether the type-checker resolved e to a string.
func (p *pkg) isStringExpr(e ast.Expr) bool {
	tv, ok := p.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func joinNames(names []string) string {
	return strings.Join(names, ", ")
}
