// Package rng provides the deterministic randomness substrate used by every
// stochastic component of the simulator: splittable named streams, and
// samplers for the exponential, Poisson, discrete (alias method) and uniform
// distributions.
//
// All simulation randomness flows through a *Source so that a single seed
// reproduces an entire experiment, and independent sub-streams (arrivals,
// item choice, class choice, bandwidth demand, ...) can be derived by name
// without correlating with each other.
package rng

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Source is a deterministic pseudo-random number generator. It implements the
// SplitMix64 -> xoshiro256** pipeline: seeds are expanded with SplitMix64 and
// the stream itself is xoshiro256**, which is fast, passes BigCrush, and needs
// no allocation. Source is NOT safe for concurrent use; derive one per
// goroutine with Split.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed. Two Sources created with the same
// seed produce identical streams.
func New(seed uint64) *Source {
	r := &Source{}
	r.Reseed(seed)
	return r
}

// Reseed re-initialises the Source in place from seed.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitMix64(sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
}

// splitMix64 advances a SplitMix64 state and returns (newState, output).
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return state, z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Split derives an independent child stream identified by name. The child's
// seed mixes the parent's current state with a hash of the name, so distinct
// names give decorrelated streams and the derivation itself is deterministic.
// Split advances the parent.
func (r *Source) Split(name string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return New(r.Uint64() ^ h.Sum64())
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits -> [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with n=%d", n))
	}
	// Lemire's nearly-divisionless bounded generation.
	v := r.Uint64()
	nn := uint64(n)
	hi, lo := mul64(v, nn)
	if lo < nn {
		thresh := (-nn) % nn
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, nn)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// IntRange returns a uniform int in [lo, hi] inclusive. Panics if hi < lo.
func (r *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic(fmt.Sprintf("rng: IntRange called with lo=%d > hi=%d", lo, hi))
	}
	return lo + r.Intn(hi-lo+1)
}

// Exp returns an exponentially distributed sample with the given rate
// (mean 1/rate). Panics if rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("rng: Exp called with rate=%g", rate))
	}
	u := r.Float64()
	// u is in [0,1); 1-u is in (0,1], so Log never sees 0.
	return -math.Log(1-u) / rate
}

// Poisson returns a Poisson-distributed sample with the given mean.
// Knuth's product method is used for small means; for mean >= 30 the
// transformed-rejection method PTRS (Hörmann 1993) is used, which has bounded
// expected iterations for any mean. Panics if mean < 0.
func (r *Source) Poisson(mean float64) int {
	switch {
	case mean < 0 || math.IsNaN(mean):
		panic(fmt.Sprintf("rng: Poisson called with mean=%g", mean))
	case mean == 0:
		return 0
	case mean < 30:
		return r.poissonKnuth(mean)
	default:
		return r.poissonPTRS(mean)
	}
}

func (r *Source) poissonKnuth(mean float64) int {
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// poissonPTRS implements Hörmann's transformed rejection with squeeze.
func (r *Source) poissonPTRS(mean float64) int {
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logMu := math.Log(mean)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logMu-mean-lg {
			return int(k)
		}
	}
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
