package rng

import (
	"fmt"
	"math"
)

// Alias is a Walker/Vose alias table: O(n) construction, O(1) sampling from an
// arbitrary discrete distribution. It is immutable after construction and safe
// for concurrent Sample calls (each call only reads the table and draws from
// the caller-supplied Source).
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table for the given non-negative weights. The
// weights need not sum to one; they are normalised internally. It returns an
// error if weights is empty, contains a negative/NaN/Inf entry, or sums to 0.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("rng: NewAlias: empty weight slice")
	}
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("rng: NewAlias: invalid weight %g at index %d", w, i)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("rng: NewAlias: weights sum to %g", sum)
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	// Scaled probabilities; the classic small/large worklist construction.
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w / sum * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers are 1 up to floating-point error.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// MustAlias is NewAlias that panics on error, for statically valid weights.
func MustAlias(weights []float64) *Alias {
	a, err := NewAlias(weights)
	if err != nil {
		panic(fmt.Errorf("rng: MustAlias: %w", err))
	}
	return a
}

// N returns the number of outcomes.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws an index in [0, N()) with probability proportional to the
// weight it was constructed with.
func (a *Alias) Sample(r *Source) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
