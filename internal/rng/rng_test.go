package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: sources with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("sources with different seeds produced %d/100 equal outputs", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("step %d after Reseed: got %d want %d", i, got, first[i])
		}
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	r := New(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("seed 0 produced %d zero outputs of 100", zeros)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	a := parent.Split("arrivals")
	parent2 := New(99)
	b := parent2.Split("arrivals")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-name splits from same parent state diverged at step %d", i)
		}
	}
	// Different names give different streams.
	p := New(99)
	c := p.Split("arrivals")
	p2 := New(99)
	d := p2.Split("lengths")
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("different-name splits produced %d/100 equal outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %g, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(13)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("Intn(%d): bucket %d has %d draws, want ~%g", n, i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(17)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.IntRange(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntRange(3,7) = %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 7; v++ {
		if !seen[v] {
			t.Fatalf("IntRange(3,7) never produced %d in 10000 draws", v)
		}
	}
}

func TestIntRangeSingleton(t *testing.T) {
	r := New(19)
	if v := r.IntRange(5, 5); v != 5 {
		t.Fatalf("IntRange(5,5) = %d", v)
	}
}

func TestExpMeanAndPositivity(t *testing.T) {
	r := New(23)
	for _, rate := range []float64{0.5, 1, 5} {
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			x := r.Exp(rate)
			if x < 0 {
				t.Fatalf("Exp(%g) returned negative %g", rate, x)
			}
			sum += x
		}
		mean := sum / n
		want := 1 / rate
		if math.Abs(mean-want)/want > 0.02 {
			t.Fatalf("Exp(%g) mean %g, want ~%g", rate, mean, want)
		}
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonMoments(t *testing.T) {
	r := New(29)
	// Covers both the Knuth branch (<30) and the PTRS branch (>=30).
	for _, mean := range []float64{0.3, 2, 12, 29.9, 30, 75, 500} {
		const n = 100000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			k := float64(r.Poisson(mean))
			sum += k
			sumSq += k * k
		}
		m := sum / n
		v := sumSq/n - m*m
		tol := 4 * math.Sqrt(mean/n) // ~4 sigma on the sample mean
		if math.Abs(m-mean) > tol+0.02 {
			t.Errorf("Poisson(%g): sample mean %g, want within %g", mean, m, tol)
		}
		if math.Abs(v-mean)/mean > 0.06 {
			t.Errorf("Poisson(%g): sample variance %g, want ~%g", mean, v, mean)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	r := New(31)
	for i := 0; i < 100; i++ {
		if k := r.Poisson(0); k != 0 {
			t.Fatalf("Poisson(0) = %d", k)
		}
	}
}

func TestPoissonPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Poisson(-1) did not panic")
		}
	}()
	New(1).Poisson(-1)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	check := func(n int) bool {
		if n < 0 || n > 5000 {
			return true
		}
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleUniformOnThree(t *testing.T) {
	r := New(41)
	counts := map[[3]int]int{}
	const draws = 60000
	for i := 0; i < draws; i++ {
		p := [3]int{0, 1, 2}
		r.Shuffle(3, func(a, b int) { p[a], p[b] = p[b], p[a] })
		counts[p]++
	}
	if len(counts) != 6 {
		t.Fatalf("Shuffle(3) produced %d distinct permutations, want 6", len(counts))
	}
	want := float64(draws) / 6
	for p, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.06 {
			t.Fatalf("permutation %v occurred %d times, want ~%g", p, c, want)
		}
	}
}

func TestMul64AgainstBig(t *testing.T) {
	cases := []struct{ a, b uint64 }{
		{0, 0}, {1, 1}, {math.MaxUint64, math.MaxUint64},
		{1 << 32, 1 << 32}, {0xDEADBEEF, 0xFEEDFACECAFEBEEF},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		// Verify via decomposition: a*b mod 2^64 must equal lo.
		if lo != c.a*c.b {
			t.Fatalf("mul64(%d,%d) lo=%d want %d", c.a, c.b, lo, c.a*c.b)
		}
		// hi spot checks.
		if c.a == math.MaxUint64 && c.b == math.MaxUint64 && hi != math.MaxUint64-1 {
			t.Fatalf("mul64(max,max) hi=%d", hi)
		}
		if c.a == 1<<32 && c.b == 1<<32 && hi != 1 {
			t.Fatalf("mul64(2^32,2^32) hi=%d want 1", hi)
		}
	}
}
