package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAliasErrors(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
	}{
		{"empty", nil},
		{"negative", []float64{1, -1}},
		{"nan", []float64{1, math.NaN()}},
		{"inf", []float64{math.Inf(1)}},
		{"all-zero", []float64{0, 0, 0}},
	}
	for _, c := range cases {
		if _, err := NewAlias(c.weights); err == nil {
			t.Errorf("NewAlias(%s) succeeded, want error", c.name)
		}
	}
}

func TestMustAliasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAlias(nil) did not panic")
		}
	}()
	MustAlias(nil)
}

func TestAliasSingleton(t *testing.T) {
	a := MustAlias([]float64{3.5})
	r := New(1)
	for i := 0; i < 100; i++ {
		if v := a.Sample(r); v != 0 {
			t.Fatalf("singleton alias sampled %d", v)
		}
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a := MustAlias([]float64{1, 0, 1})
	r := New(2)
	for i := 0; i < 100000; i++ {
		if a.Sample(r) == 1 {
			t.Fatal("zero-weight outcome was sampled")
		}
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := MustAlias(weights)
	r := New(3)
	const draws = 400000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(r)]++
	}
	for i, w := range weights {
		want := w / 10 * draws
		if math.Abs(float64(counts[i])-want)/want > 0.03 {
			t.Errorf("outcome %d: %d draws, want ~%g", i, counts[i], want)
		}
	}
}

func TestAliasSkewedWeights(t *testing.T) {
	// Very skewed distribution: the rare outcome must still appear with
	// roughly its assigned probability.
	weights := []float64{1000, 1}
	a := MustAlias(weights)
	r := New(5)
	const draws = 2000000
	rare := 0
	for i := 0; i < draws; i++ {
		if a.Sample(r) == 1 {
			rare++
		}
	}
	want := float64(draws) / 1001
	if math.Abs(float64(rare)-want)/want > 0.10 {
		t.Fatalf("rare outcome drawn %d times, want ~%g", rare, want)
	}
}

// Property: for arbitrary positive weight vectors the empirical distribution
// converges to the normalised weights.
func TestAliasPropertyDistribution(t *testing.T) {
	r := New(7)
	check := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		weights := make([]float64, len(raw))
		sum := 0.0
		for i, b := range raw {
			weights[i] = float64(b%16) + 1 // 1..16, strictly positive
			sum += weights[i]
		}
		a, err := NewAlias(weights)
		if err != nil {
			return false
		}
		const draws = 60000
		counts := make([]int, len(weights))
		for i := 0; i < draws; i++ {
			counts[a.Sample(r)]++
		}
		for i, w := range weights {
			want := w / sum * draws
			if math.Abs(float64(counts[i])-want) > 5*math.Sqrt(want)+10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAliasN(t *testing.T) {
	if n := MustAlias([]float64{1, 2, 3}).N(); n != 3 {
		t.Fatalf("N() = %d, want 3", n)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	weights := make([]float64, 1000)
	for i := range weights {
		weights[i] = 1 / float64(i+1)
	}
	a := MustAlias(weights)
	r := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Sample(r)
	}
}

func BenchmarkPoissonSmallMean(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Poisson(4)
	}
}

func BenchmarkPoissonLargeMean(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Poisson(200)
	}
}
