package svgplot

import (
	"math"
	"strings"
	"testing"
)

func sampleChart() Chart {
	return Chart{
		Title:  "Delay vs cutoff",
		XLabel: "K",
		YLabel: "delay",
		Series: []Series{
			{Name: "Class-A", X: []float64{10, 20, 30}, Y: []float64{5, 3, 4}},
			{Name: "Class-B", X: []float64{10, 20, 30}, Y: []float64{8, 6, 7}},
		},
	}
}

func TestRenderWellFormed(t *testing.T) {
	svg, err := sampleChart().Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<svg", "</svg>", "Delay vs cutoff", "Class-A", "Class-B",
		"polyline", "circle",
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("missing %q in output", want)
		}
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatalf("%d polylines, want 2", strings.Count(svg, "<polyline"))
	}
	if strings.Count(svg, "<circle") != 6 {
		t.Fatalf("%d markers, want 6", strings.Count(svg, "<circle"))
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := (Chart{}).Render(); err == nil {
		t.Fatal("empty chart accepted")
	}
	bad := sampleChart()
	bad.Series[0].Y = bad.Series[0].Y[:2]
	if _, err := bad.Render(); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	nan := sampleChart()
	nan.Series[0].Y[1] = math.NaN()
	if _, err := nan.Render(); err == nil {
		t.Fatal("NaN accepted")
	}
	empty := sampleChart()
	empty.Series[0].X = nil
	empty.Series[0].Y = nil
	if _, err := empty.Render(); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestRenderEscapesMarkup(t *testing.T) {
	c := sampleChart()
	c.Title = `<script>"evil" & more</script>`
	svg, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "<script>") {
		t.Fatal("markup not escaped")
	}
	if !strings.Contains(svg, "&lt;script&gt;") {
		t.Fatal("escaped title missing")
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	// Single point and constant series must not divide by zero.
	c := Chart{Series: []Series{{Name: "pt", X: []float64{5}, Y: []float64{7}}}}
	svg, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "circle") {
		t.Fatal("no marker for single point")
	}
	flat := Chart{Series: []Series{{Name: "flat", X: []float64{1, 2}, Y: []float64{3, 3}}}}
	if _, err := flat.Render(); err != nil {
		t.Fatal(err)
	}
}

func TestRenderNegativeValues(t *testing.T) {
	c := Chart{Series: []Series{{Name: "neg", X: []float64{0, 1}, Y: []float64{-5, 5}}}}
	if _, err := c.Render(); err != nil {
		t.Fatal(err)
	}
}

func TestCustomDimensions(t *testing.T) {
	c := sampleChart()
	c.Width, c.Height = 400, 300
	svg, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, `width="400" height="300"`) {
		t.Fatal("custom dimensions ignored")
	}
}

func TestTicksCoverRange(t *testing.T) {
	for _, tc := range []struct{ lo, hi float64 }{
		{0, 100}, {0.3, 0.9}, {-50, 50}, {7, 7.1},
	} {
		ts := ticks(tc.lo, tc.hi, 6)
		if len(ts) < 2 {
			t.Fatalf("range [%g,%g]: %d ticks", tc.lo, tc.hi, len(ts))
		}
		for i, v := range ts {
			if v < tc.lo-1e-9 || v > tc.hi+1e-9 {
				t.Fatalf("tick %g outside [%g,%g]", v, tc.lo, tc.hi)
			}
			if i > 0 && v <= ts[i-1] {
				t.Fatal("ticks not increasing")
			}
		}
	}
}

func TestFmtTick(t *testing.T) {
	if fmtTick(42) != "42" {
		t.Fatalf("fmtTick(42) = %q", fmtTick(42))
	}
	if fmtTick(0.25) != "0.25" {
		t.Fatalf("fmtTick(0.25) = %q", fmtTick(0.25))
	}
}

func TestSortedByName(t *testing.T) {
	ss := []Series{{Name: "b"}, {Name: "a"}, {Name: "c"}}
	got := SortedByName(ss)
	if got[0].Name != "a" || got[2].Name != "c" {
		t.Fatalf("sorted: %v", []string{got[0].Name, got[1].Name, got[2].Name})
	}
	if ss[0].Name != "b" {
		t.Fatal("input mutated")
	}
}
