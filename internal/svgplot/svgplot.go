// Package svgplot renders line charts as standalone SVG documents using
// only the standard library — enough to turn the experiment harness's
// figure series into viewable artefacts without any plotting dependency.
// The output is deliberately simple: one chart, linear axes with tick
// labels, colour-cycled polylines, point markers and a legend.
package svgplot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named polyline.
type Series struct {
	// Name appears in the legend.
	Name string
	// X and Y are the data points, index-aligned.
	X, Y []float64
}

// Chart is a renderable line chart.
type Chart struct {
	// Title is drawn across the top.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds the curves.
	Series []Series
	// Width and Height are the SVG pixel dimensions (0 → 760×440).
	Width, Height int
	// AllowGaps renders non-finite points (NaN/Inf) as gaps: they are
	// excluded from the axis bounds and split the series' polyline, instead
	// of failing the render. Each series still needs at least one finite
	// point. Useful for windowed time series where some windows are empty
	// (e.g. a percentile over an interval with no observations).
	AllowGaps bool
}

// palette is a colour-blind-friendly categorical cycle.
var palette = []string{
	"#4477AA", "#EE6677", "#228833", "#CCBB44", "#66CCEE", "#AA3377", "#BBBBBB",
	"#222255", "#225555", "#225522",
}

// Render produces the SVG document. It errors on an empty chart, series with
// mismatched X/Y lengths, or non-finite values.
func (c Chart) Render() (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("svgplot: no series")
	}
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 760
	}
	if h <= 0 {
		h = 440
	}

	// Data bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			return "", fmt.Errorf("svgplot: series %q has %d x vs %d y points", s.Name, len(s.X), len(s.Y))
		}
		finitePoints := 0
		for i := range s.X {
			if !finite(s.X[i]) || !finite(s.Y[i]) {
				if c.AllowGaps {
					continue
				}
				return "", fmt.Errorf("svgplot: series %q has non-finite point %d", s.Name, i)
			}
			finitePoints++
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
		if finitePoints == 0 {
			return "", fmt.Errorf("svgplot: series %q has no finite points", s.Name)
		}
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	// Y axis starts at 0 when the data is non-negative (bar-chart honesty).
	if minY >= 0 {
		minY = 0
	}
	if minY == maxY {
		maxY = minY + 1
	}
	// Head-room for the top tick.
	maxY += (maxY - minY) * 0.05

	const (
		padL, padR, padT, padB = 70, 160, 40, 50
	)
	plotW := float64(w - padL - padR)
	plotH := float64(h - padT - padB)
	sx := func(x float64) float64 { return float64(padL) + (x-minX)/(maxX-minX)*plotW }
	sy := func(y float64) float64 { return float64(padT) + (1-(y-minY)/(maxY-minY))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	b.WriteString(`<style>text{font-family:sans-serif;font-size:11px;fill:#333}.t{font-size:14px;font-weight:bold}</style>`)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, w, h)
	if c.Title != "" {
		fmt.Fprintf(&b, `<text class="t" x="%d" y="22" text-anchor="middle">%s</text>`, w/2, escape(c.Title))
	}

	// Gridlines and ticks.
	for _, t := range ticks(minY, maxY, 6) {
		y := sy(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`, padL, y, w-padR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`, padL-6, y+4, fmtTick(t))
	}
	for _, t := range ticks(minX, maxX, 8) {
		x := sx(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#eee"/>`, x, padT, x, h-padB)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`, x, h-padB+16, fmtTick(t))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`, padL, h-padB, w-padR, h-padB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`, padL, padT, padL, h-padB)
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`, (padL+w-padR)/2, h-12, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%d" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`,
			(padT+h-padB)/2, (padT+h-padB)/2, escape(c.YLabel))
	}

	// Series.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		// Non-finite points (only reachable under AllowGaps) end the current
		// polyline segment; finite runs on either side render separately.
		var segments [][]string
		var cur []string
		for j := range s.X {
			if !finite(s.X[j]) || !finite(s.Y[j]) {
				if len(cur) > 0 {
					segments = append(segments, cur)
					cur = nil
				}
				continue
			}
			cur = append(cur, fmt.Sprintf("%.1f,%.1f", sx(s.X[j]), sy(s.Y[j])))
		}
		if len(cur) > 0 {
			segments = append(segments, cur)
		}
		for _, seg := range segments {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`,
				strings.Join(seg, " "), color)
		}
		for j := range s.X {
			if !finite(s.X[j]) || !finite(s.Y[j]) {
				continue
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.4" fill="%s"/>`, sx(s.X[j]), sy(s.Y[j]), color)
		}
		// Legend entry.
		ly := padT + 14*i
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`,
			w-padR+8, ly, w-padR+28, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`, w-padR+33, ly+4, escape(s.Name))
	}
	b.WriteString(`</svg>`)
	return b.String(), nil
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// ticks returns ≈n nicely rounded tick positions covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/float64(n))))
	for _, m := range []float64{1, 2, 5, 10} {
		if span/(step*m) <= float64(n) {
			step *= m
			break
		}
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+1e-9; t += step {
		out = append(out, t)
	}
	return out
}

func fmtTick(t float64) string {
	if t == math.Trunc(t) && math.Abs(t) < 1e6 {
		return fmt.Sprintf("%d", int64(t))
	}
	return fmt.Sprintf("%.2g", t)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SortedByName returns the series sorted by name (stable output for tests
// and deterministic legends when the caller built them from a map).
func SortedByName(ss []Series) []Series {
	out := append([]Series(nil), ss...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
