package svgplot

import (
	"math"
	"strings"
	"testing"
)

func TestAllowGapsSplitsPolyline(t *testing.T) {
	nan := math.NaN()
	c := Chart{
		Title:     "gaps",
		AllowGaps: true,
		Series: []Series{{
			Name: "windowed p95",
			X:    []float64{1, 2, 3, 4, 5},
			Y:    []float64{10, 20, nan, 15, 12},
		}},
	}
	svg, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("%d polyline segments, want 2 (gap splits the line)", got)
	}
	if got := strings.Count(svg, "<circle"); got != 4 {
		t.Errorf("%d point markers, want 4 (gap point not drawn)", got)
	}
}

func TestGapsRejectedWithoutAllowGaps(t *testing.T) {
	c := Chart{Series: []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{1, math.NaN()}}}}
	if _, err := c.Render(); err == nil {
		t.Fatal("NaN accepted without AllowGaps")
	}
}

func TestAllNaNSeriesRejected(t *testing.T) {
	nan := math.NaN()
	c := Chart{AllowGaps: true, Series: []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{nan, nan}}}}
	if _, err := c.Render(); err == nil {
		t.Fatal("series with no finite points accepted")
	}
}

// TestGapPointExcludedFromBounds pins that a non-finite Y does not poison
// the axis range: the remaining points still produce tick labels around
// their own span.
func TestGapPointExcludedFromBounds(t *testing.T) {
	c := Chart{
		AllowGaps: true,
		Series: []Series{{
			Name: "s",
			X:    []float64{0, 1, 2},
			Y:    []float64{1, math.Inf(1), 3},
		}},
	}
	svg, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, ">3<") {
		t.Error("expected a tick near the finite maximum of 3")
	}
}
