// Package cache implements client-side item caches for the broadcast
// clients, with the three replacement policies of the broadcast-disk
// literature the paper builds on (Acharya et al., SIGMOD '95): LRU, LFU and
// PIX (probability inverse broadcast-frequency — evict the item with the
// lowest p/x, which keeps items that are popular but RARELY broadcast, i.e.
// exactly the pull items whose misses are expensive in a hybrid system).
//
// A cache hit costs zero access time and never reaches the server; the
// effect on the hybrid scheduler is a thinned, reshaped request stream.
package cache

import (
	"fmt"
	"math"
)

// PolicyKind selects the replacement policy.
type PolicyKind int

// Replacement policies.
const (
	LRU PolicyKind = iota
	LFU
	PIX
)

// String names the policy.
func (p PolicyKind) String() string {
	switch p {
	case LRU:
		return "lru"
	case LFU:
		return "lfu"
	case PIX:
		return "pix"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(p))
	}
}

// entry is one cached item's bookkeeping.
type entry struct {
	item     int
	lastUsed float64 // LRU clock
	uses     int64   // LFU counter
	pix      float64 // p/x score (PIX)
}

// Cache is one client's fixed-capacity item cache. Not safe for concurrent
// use (the simulator is single-threaded per run).
type Cache struct {
	policy   PolicyKind
	capacity int
	entries  map[int]*entry
	// Hits and Misses count lookups.
	Hits, Misses int64
}

// New builds a cache. capacity must be positive.
func New(capacity int, policy PolicyKind) (*Cache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity %d", capacity)
	}
	if policy < LRU || policy > PIX {
		return nil, fmt.Errorf("cache: unknown policy %d", int(policy))
	}
	return &Cache{
		policy:   policy,
		capacity: capacity,
		entries:  make(map[int]*entry),
	}, nil
}

// Len returns the number of cached items.
func (c *Cache) Len() int { return len(c.entries) }

// Capacity returns the configured capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Lookup checks for the item at simulated time now, updating hit/miss
// counters and recency/frequency bookkeeping.
func (c *Cache) Lookup(item int, now float64) bool {
	e, ok := c.entries[item]
	if !ok {
		c.Misses++
		return false
	}
	c.Hits++
	e.lastUsed = now
	e.uses++
	return true
}

// Insert caches an item the client just received. pix is the item's
// p/x score (access probability over broadcast frequency), used only by the
// PIX policy; pass 0 otherwise. Inserting an already-cached item refreshes
// its bookkeeping. When full, the policy's victim is evicted — unless the
// incoming item scores WORSE than every resident (PIX only), in which case
// the insert is skipped (cache pollution control, per the broadcast-disk
// paper).
func (c *Cache) Insert(item int, pix, now float64) {
	if math.IsNaN(pix) || pix < 0 {
		panic(fmt.Sprintf("cache: invalid pix score %g", pix))
	}
	if e, ok := c.entries[item]; ok {
		e.lastUsed = now
		e.uses++
		e.pix = pix
		return
	}
	if len(c.entries) >= c.capacity {
		victim := c.victim()
		if c.policy == PIX && c.entries[victim].pix >= pix {
			return // the newcomer is the worst candidate; do not pollute
		}
		delete(c.entries, victim)
	}
	c.entries[item] = &entry{item: item, lastUsed: now, uses: 1, pix: pix}
}

// victim returns the policy's eviction candidate. The cache must be
// non-empty. Ties break toward the smaller item rank for determinism.
func (c *Cache) victim() int {
	best := -1
	var bestEntry *entry
	better := func(a, b *entry) bool {
		switch c.policy {
		case LRU:
			if a.lastUsed != b.lastUsed {
				return a.lastUsed < b.lastUsed
			}
		case LFU:
			if a.uses != b.uses {
				return a.uses < b.uses
			}
		case PIX:
			if a.pix != b.pix {
				return a.pix < b.pix
			}
		}
		return a.item < b.item
	}
	//lint:allow maporder better() is a total order ending in the item id, so the minimum is independent of visit order
	for _, e := range c.entries {
		if bestEntry == nil || better(e, bestEntry) {
			best, bestEntry = e.item, e
		}
	}
	return best
}

// HitRate returns Hits/(Hits+Misses), 0 when unused.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Population is a set of per-client caches.
type Population struct {
	caches []*Cache
}

// NewPopulation builds n independent caches.
func NewPopulation(n, capacity int, policy PolicyKind) (*Population, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cache: population size %d", n)
	}
	p := &Population{caches: make([]*Cache, n)}
	for i := range p.caches {
		c, err := New(capacity, policy)
		if err != nil {
			return nil, err
		}
		p.caches[i] = c
	}
	return p, nil
}

// Size returns the number of clients.
func (p *Population) Size() int { return len(p.caches) }

// Client returns client id's cache.
func (p *Population) Client(id int) *Cache {
	if id < 0 || id >= len(p.caches) {
		panic(fmt.Sprintf("cache: client %d out of [0,%d)", id, len(p.caches)))
	}
	return p.caches[id]
}

// HitRate returns the population-wide hit rate.
func (p *Population) HitRate() float64 {
	var hits, total int64
	for _, c := range p.caches {
		hits += c.Hits
		total += c.Hits + c.Misses
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
