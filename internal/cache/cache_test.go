package cache

import (
	"testing"
	"testing/quick"

	"hybridqos/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, LRU); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := New(5, PolicyKind(9)); err == nil {
		t.Fatal("unknown policy accepted")
	}
	c, err := New(3, LRU)
	if err != nil || c.Capacity() != 3 || c.Len() != 0 {
		t.Fatalf("valid cache rejected: %v", err)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || LFU.String() != "lfu" || PIX.String() != "pix" {
		t.Fatal("policy names wrong")
	}
	if PolicyKind(9).String() != "PolicyKind(9)" {
		t.Fatal("unknown policy string wrong")
	}
}

func TestHitMissCounting(t *testing.T) {
	c, _ := New(2, LRU)
	if c.Lookup(1, 0) {
		t.Fatal("hit on empty cache")
	}
	c.Insert(1, 0, 1)
	if !c.Lookup(1, 2) {
		t.Fatal("miss after insert")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("counts: %d/%d", c.Hits, c.Misses)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate %g", c.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := New(2, LRU)
	c.Insert(1, 0, 1)
	c.Insert(2, 0, 2)
	c.Lookup(1, 3)    // refresh 1: now 2 is LRU
	c.Insert(3, 0, 4) // evicts 2
	if !c.Lookup(1, 5) || c.Lookup(2, 5) || !c.Lookup(3, 5) {
		t.Fatal("LRU evicted the wrong item")
	}
}

func TestLFUEviction(t *testing.T) {
	c, _ := New(2, LFU)
	c.Insert(1, 0, 1)
	c.Insert(2, 0, 2)
	c.Lookup(1, 3)
	c.Lookup(1, 4) // item 1 used 3x, item 2 used 1x
	c.Insert(3, 0, 5)
	if !c.Lookup(1, 6) || c.Lookup(2, 6) {
		t.Fatal("LFU evicted the wrong item")
	}
}

func TestPIXKeepsHighScores(t *testing.T) {
	c, _ := New(2, PIX)
	c.Insert(1, 10, 1) // popular, rarely broadcast: precious
	c.Insert(2, 1, 2)
	c.Insert(3, 5, 3) // evicts item 2 (lowest pix)
	if !c.Lookup(1, 4) || c.Lookup(2, 4) || !c.Lookup(3, 4) {
		t.Fatal("PIX evicted the wrong item")
	}
	// A newcomer scoring below every resident is refused.
	c.Insert(4, 0.5, 5)
	if c.Lookup(4, 6) {
		t.Fatal("PIX admitted a polluting item")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestReinsertRefreshes(t *testing.T) {
	c, _ := New(2, LRU)
	c.Insert(1, 0, 1)
	c.Insert(2, 0, 2)
	c.Insert(1, 0, 3) // refresh, must not evict
	if c.Len() != 2 {
		t.Fatalf("Len = %d after refresh", c.Len())
	}
	c.Insert(3, 0, 4) // evicts 2 (1 was refreshed)
	if !c.Lookup(1, 5) || c.Lookup(2, 5) {
		t.Fatal("refresh did not update recency")
	}
}

func TestInsertPanicsOnBadPix(t *testing.T) {
	c, _ := New(2, PIX)
	defer func() {
		if recover() == nil {
			t.Fatal("negative pix accepted")
		}
	}()
	c.Insert(1, -1, 0)
}

func TestPopulation(t *testing.T) {
	p, err := NewPopulation(10, 3, LRU)
	if err != nil || p.Size() != 10 {
		t.Fatalf("population: %v", err)
	}
	p.Client(0).Insert(1, 0, 1)
	if !p.Client(0).Lookup(1, 2) {
		t.Fatal("client 0 cache broken")
	}
	if p.Client(1).Lookup(1, 2) {
		t.Fatal("caches not independent")
	}
	if p.HitRate() != 0.5 {
		t.Fatalf("population hit rate %g", p.HitRate())
	}
	if _, err := NewPopulation(0, 3, LRU); err == nil {
		t.Fatal("empty population accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range client accepted")
		}
	}()
	p.Client(10)
}

// Property: the cache never exceeds capacity and a just-inserted item is
// present (except PIX pollution refusal, which keeps size ≤ capacity too).
func TestPropertyCapacityInvariant(t *testing.T) {
	r := rng.New(3)
	check := func(capRaw, polRaw uint8, ops []uint16) bool {
		capacity := int(capRaw%10) + 1
		policy := PolicyKind(polRaw % 3)
		c, err := New(capacity, policy)
		if err != nil {
			return false
		}
		now := 0.0
		for _, op := range ops {
			now += r.Float64()
			item := int(op%50) + 1
			if op%3 == 0 {
				c.Lookup(item, now)
			} else {
				c.Insert(item, float64(op%7), now)
			}
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: under a skewed reference stream, PIX with pull-biased scores
// must reach a hit rate at least comparable to LRU (it is designed for
// broadcast environments).
func TestPIXCompetitiveWithLRU(t *testing.T) {
	r := rng.New(9)
	run := func(policy PolicyKind) float64 {
		c, _ := New(5, policy)
		now := 0.0
		for i := 0; i < 50000; i++ {
			now++
			item := r.Intn(40) + 1
			if r.Float64() < 0.7 { // 70% of traffic on items 1..8
				item = r.Intn(8) + 1
			}
			if !c.Lookup(item, now) {
				c.Insert(item, 1/float64(item), now) // pix ∝ popularity
			}
		}
		return c.HitRate()
	}
	lru, pix := run(LRU), run(PIX)
	if pix < lru*0.9 {
		t.Fatalf("PIX hit rate %g far below LRU %g", pix, lru)
	}
}
