package httpserve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestStartServeShutdown(t *testing.T) {
	s, err := Start("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr.String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body %q", body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr.String() + "/"); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
}

func TestStartPortZeroReportsBoundAddr(t *testing.T) {
	s, err := Start("127.0.0.1:0", http.NotFoundHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr.String() == "127.0.0.1:0" {
		t.Error("Addr did not resolve the kernel-assigned port")
	}
}

func TestStartRejectsNilHandlerAndBadAddr(t *testing.T) {
	if _, err := Start("127.0.0.1:0", nil); err == nil {
		t.Error("Start(nil handler) succeeded")
	}
	if _, err := Start("256.0.0.1:bad", http.NotFoundHandler()); err == nil {
		t.Error("Start(bad addr) succeeded")
	}
}

func TestCloseDrainsErr(t *testing.T) {
	s, err := Start("127.0.0.1:0", http.NotFoundHandler())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case _, ok := <-s.Err:
		if ok {
			t.Error("Err yielded a second value")
		}
	default: // empty: Close consumed the single exit value
	}
}
